type rng = int -> string

let bits ~rng k =
  if k < 0 then invalid_arg "Nat_rand.bits: negative"
  else if k = 0 then Nat.zero
  else begin
    let nbytes = (k + 7) / 8 in
    let s = rng nbytes in
    assert (String.length s = nbytes);
    let excess = (8 * nbytes) - k in
    (* Mask the excess high bits of the first byte. *)
    let b0 = Char.code s.[0] land (0xff lsr excess) in
    let s = String.init nbytes (fun i -> if i = 0 then Char.chr b0 else s.[i]) in
    Nat.of_bytes_be s
  end

let bits_exact ~rng k =
  if k < 1 then invalid_arg "Nat_rand.bits_exact: k must be >= 1"
  else begin
    let low = bits ~rng (k - 1) in
    Nat.add (Nat.shift_left Nat.one (k - 1)) low
  end

let below ~rng bound =
  if Nat.is_zero bound then invalid_arg "Nat_rand.below: zero bound"
  else begin
    let k = Nat.num_bits bound in
    let rec draw () =
      let candidate = bits ~rng k in
      if Nat.compare candidate bound < 0 then candidate else draw ()
    in
    draw ()
  end

let range ~rng lo hi =
  if Nat.compare lo hi >= 0 then invalid_arg "Nat_rand.range: empty range"
  else Nat.add lo (below ~rng (Nat.sub hi lo))
