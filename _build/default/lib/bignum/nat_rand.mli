(** Uniform random sampling of natural numbers.

    The generator is abstracted as a function producing a requested number
    of random bytes, so this library stays independent of the CSPRNG (the
    [crypto] library supplies an HMAC-DRBG-backed [rng]). *)

(** [rng n] must return [n] fresh random bytes. *)
type rng = int -> string

(** [bits ~rng k] is a uniform number in [[0, 2^k)]. *)
val bits : rng:rng -> int -> Nat.t

(** [bits_exact ~rng k] is a uniform [k]-bit number, i.e. in
    [[2^(k-1), 2^k)]; [k] must be >= 1. *)
val bits_exact : rng:rng -> int -> Nat.t

(** [below ~rng bound] is uniform in [[0, bound)] by rejection sampling.
    @raise Invalid_argument if [bound] is zero. *)
val below : rng:rng -> Nat.t -> Nat.t

(** [range ~rng lo hi] is uniform in [[lo, hi)].
    @raise Invalid_argument if [lo >= hi]. *)
val range : rng:rng -> Nat.t -> Nat.t -> Nat.t
