lib/bignum/prime.mli: Nat Nat_rand
