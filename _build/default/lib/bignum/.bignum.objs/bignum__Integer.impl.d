lib/bignum/integer.ml: Format Nat Stdlib
