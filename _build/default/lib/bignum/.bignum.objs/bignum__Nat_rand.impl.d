lib/bignum/nat_rand.ml: Char Nat String
