lib/bignum/nat_rand.mli: Nat
