lib/bignum/prime.ml: Array Modular Nat Nat_rand
