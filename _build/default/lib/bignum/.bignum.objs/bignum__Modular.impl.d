lib/bignum/modular.ml: Array Integer Nat
