lib/bignum/nat.ml: Array Buffer Char Format List Printf Stdlib String
