lib/bignum/integer.mli: Format Nat
