(** Signed arbitrary-precision integers, layered over {!Nat}.

    Only the operations the cryptographic layer needs are exposed; the
    main client is the extended Euclidean algorithm used for modular
    inverses in the commutative-encryption scheme. *)

type t

val zero : t
val one : t
val minus_one : t

(** [of_nat n] embeds a natural number. *)
val of_nat : Nat.t -> t

(** [to_nat n] is the magnitude of a non-negative [n].
    @raise Invalid_argument if [n] is negative. *)
val to_nat : t -> Nat.t

val of_int : int -> t

(** [sign n] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** [ediv_rem a b] is Euclidean division: [(q, r)] with [a = q*b + r] and
    [0 <= r < |b|].
    @raise Division_by_zero if [b] is zero. *)
val ediv_rem : t -> t -> t * t

(** [erem a b] is the Euclidean remainder, always in [[0, |b|)]. *)
val erem : t -> t -> t

(** [egcd a b] is [(g, x, y)] such that [a*x + b*y = g = gcd(|a|, |b|)],
    with [g >= 0]. *)
val egcd : t -> t -> t * t * t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
