(* Small primes for trial division and sieving. *)
let small_primes =
  let limit = 2000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let jacobi a n =
  if Nat.is_zero n || Nat.is_even n then invalid_arg "Prime.jacobi: n must be odd"
  else begin
    (* Standard binary Jacobi algorithm via quadratic reciprocity. *)
    let low3 x = (if Nat.test_bit x 2 then 4 else 0)
                 lor (if Nat.test_bit x 1 then 2 else 0)
                 lor if Nat.test_bit x 0 then 1 else 0
    in
    let rec go a n acc =
      let a = Nat.rem a n in
      if Nat.is_zero a then if Nat.is_one n then acc else 0
      else begin
        (* Strip factors of two from a. *)
        let k = ref 0 in
        let a' = ref a in
        while Nat.is_even !a' do
          a' := Nat.shift_right !a' 1;
          incr k
        done;
        let n_mod8 = low3 n in
        let acc = if !k land 1 = 1 && (n_mod8 = 3 || n_mod8 = 5) then -acc else acc in
        let acc =
          if Nat.test_bit !a' 0 && Nat.test_bit !a' 1 && Nat.test_bit n 0 && Nat.test_bit n 1
          then -acc
          else acc
        in
        go n !a' acc
      end
    in
    go a n 1
  end

let miller_rabin_witness ctx ~d ~s a =
  (* true = a witnesses compositeness. *)
  let n = Modular.Mont.modulus ctx in
  let n1 = Nat.pred n in
  let x = Modular.Mont.pow ctx a d in
  if Nat.is_one x || Nat.equal x n1 then false
  else begin
    let rec squares i x =
      if i >= s - 1 then true
      else begin
        let x = Modular.Mont.mul ctx x x in
        if Nat.equal x n1 then false else squares (i + 1) x
      end
    in
    squares 0 x
  end

let is_probable_prime ~rng ?(rounds = 24) n =
  match Nat.to_int n with
  | Some v when v < 2 -> false
  | Some v when v <= small_primes.(Array.length small_primes - 1) ->
      Array.exists (fun p -> p = v) small_primes
  | _ ->
      if Nat.is_even n then false
      else if
        Array.exists
          (fun p ->
            let p' = Nat.of_int p in
            Nat.compare p' n < 0 && Nat.is_zero (Nat.rem n p'))
          small_primes
      then false
      else begin
        let ctx = Modular.Mont.create n in
        let n1 = Nat.pred n in
        (* n - 1 = d * 2^s with d odd *)
        let s = ref 0 and d = ref n1 in
        while Nat.is_even !d do
          d := Nat.shift_right !d 1;
          incr s
        done;
        let rec rounds_left r =
          if r = 0 then true
          else begin
            let a = Nat_rand.range ~rng Nat.two n1 in
            if miller_rabin_witness ctx ~d:!d ~s:!s a then false else rounds_left (r - 1)
          end
        in
        rounds_left rounds
      end

let is_safe_prime ~rng p =
  Nat.compare p (Nat.of_int 5) >= 0
  && (not (Nat.is_even p))
  && is_probable_prime ~rng p
  && is_probable_prime ~rng (Nat.shift_right (Nat.pred p) 1)

let gen_prime ~rng bits =
  if bits < 2 then invalid_arg "Prime.gen_prime: bits must be >= 2"
  else begin
    let rec try_candidate () =
      let c = Nat_rand.bits_exact ~rng bits in
      let c = if Nat.is_even c then Nat.succ c else c in
      if Nat.num_bits c = bits && is_probable_prime ~rng c then c else try_candidate ()
    in
    try_candidate ()
  end

let gen_safe_prime ~rng bits =
  if bits < 5 then invalid_arg "Prime.gen_safe_prime: bits must be >= 5"
  else if bits < 20 then begin
    (* Too small for the sieve (q itself may be a small prime): direct search. *)
    let rec try_candidate () =
      let q = Nat_rand.bits_exact ~rng (bits - 1) in
      let q = if Nat.is_even q then Nat.succ q else q in
      let p = Nat.succ (Nat.shift_left q 1) in
      if Nat.num_bits q = bits - 1 && is_probable_prime ~rng q && is_probable_prime ~rng p
      then p
      else try_candidate ()
    in
    try_candidate ()
  end
  else begin
    (* Search p = 2q+1 with both prime. Sieve candidates q by small primes
       to avoid the expensive Miller-Rabin on obvious composites: skip q if
       q or 2q+1 has a small factor. *)
    let rec attempt () =
      let q0 = Nat_rand.bits_exact ~rng (bits - 1) in
      let q0 = if Nat.is_even q0 then Nat.succ q0 else q0 in
      (* Residues of q0 modulo each small prime; scan q = q0 + 2i. *)
      let residues =
        Array.map (fun p -> (p, Nat.to_int_exn (Nat.rem q0 (Nat.of_int p)))) small_primes
      in
      let survives i =
        Array.for_all
          (fun (p, r) ->
            let qr = (r + (2 * i)) mod p in
            let pr = ((2 * qr) + 1) mod p in
            qr <> 0 && pr <> 0)
          residues
      in
      let max_scan = 4 * bits * bits in
      let rec scan i =
        if i >= max_scan then attempt ()
        else if not (survives i) then scan (i + 1)
        else begin
          let q = Nat.add q0 (Nat.of_int (2 * i)) in
          if Nat.num_bits q <> bits - 1 then attempt ()
          else begin
            let p = Nat.succ (Nat.shift_left q 1) in
            (* Cheap pre-check on p first (2^q test implied by MR), then q. *)
            if is_probable_prime ~rng ~rounds:4 p
               && is_probable_prime ~rng q
               && is_probable_prime ~rng p
            then p
            else scan (i + 1)
          end
        end
      in
      scan 0
    in
    attempt ()
  end
