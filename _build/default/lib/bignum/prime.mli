(** Primality testing and safe-prime generation.

    The paper's commutative encryption (Example 1) works over quadratic
    residues modulo a {e safe} prime [p], i.e. [p = 2q + 1] with [q] prime.
    This module supplies the number-theoretic machinery: Miller–Rabin,
    Jacobi symbols (used to recognize quadratic residues), and a sieved
    safe-prime generator. *)

(** [jacobi a n] is the Jacobi symbol [(a/n)] in {-1, 0, 1}.
    For prime [n] it is the Legendre symbol, so [jacobi a p = 1] iff [a]
    is a nonzero quadratic residue mod [p].
    @raise Invalid_argument if [n] is even or zero. *)
val jacobi : Nat.t -> Nat.t -> int

(** [is_probable_prime ~rng ?rounds n] runs trial division by small primes
    followed by [rounds] Miller–Rabin iterations with random bases
    (default 24, giving error probability <= 4^-24). *)
val is_probable_prime : rng:Nat_rand.rng -> ?rounds:int -> Nat.t -> bool

(** [is_safe_prime ~rng p] checks that both [p] and [(p-1)/2] are
    (probable) primes. *)
val is_safe_prime : rng:Nat_rand.rng -> Nat.t -> bool

(** [gen_prime ~rng bits] generates a random [bits]-bit probable prime
    ([bits >= 2]). *)
val gen_prime : rng:Nat_rand.rng -> int -> Nat.t

(** [gen_safe_prime ~rng bits] generates a random [bits]-bit safe prime
    [p = 2q + 1]. Expect this to be slow for [bits] much beyond ~256;
    larger named groups are hard-coded in [Crypto.Group].
    @raise Invalid_argument if [bits < 5]. *)
val gen_safe_prime : rng:Nat_rand.rng -> int -> Nat.t
