module Nat = Bignum.Nat
module Prime = Bignum.Prime

module Mul = struct
  (* A payload m is framed as 0x01 || payload, interpreted big-endian.
     The frame byte makes the value nonzero and preserves leading zero
     bytes of the payload. We need 0x01 || payload < p/2 = q, hence the
     size bound below. *)
  let max_payload g = ((Group.modulus_bits g - 2) / 8) - 1

  let encode g payload =
    if String.length payload > max_payload g then
      invalid_arg "Perfect_cipher.Mul.encode: payload too long"
    else begin
      let m = Nat.of_bytes_be ("\x01" ^ payload) in
      assert (Nat.compare m (Group.q g) < 0);
      if Prime.jacobi m (Group.p g) = 1 then m else Nat.sub (Group.p g) m
    end

  let decode g x =
    if Nat.is_zero x || Nat.compare x (Group.p g) >= 0 then
      invalid_arg "Perfect_cipher.Mul.decode: out of range"
    else begin
      let m = Nat.min x (Nat.sub (Group.p g) x) in
      let s = Nat.to_bytes_be m in
      if String.length s < 1 || s.[0] <> '\x01' then
        invalid_arg "Perfect_cipher.Mul.decode: bad frame"
      else String.sub s 1 (String.length s - 1)
    end

  let encrypt g ~key payload = Group.mul g key (encode g payload)
  let decrypt g ~key c = decode g (Group.mul g (Group.inv_elt g key) c)
end

module Stream = struct
  let keystream g ~key n =
    let drbg = Drbg.create ~seed:("psi:K:stream:" ^ Group.encode_elt g key) in
    Drbg.generate drbg n

  let encrypt g ~key payload =
    let ks = keystream g ~key (String.length payload) in
    String.init (String.length payload) (fun i ->
        Char.chr (Char.code payload.[i] lxor Char.code ks.[i]))

  let decrypt = encrypt
end

type scheme = Mul_cipher | Stream_cipher

let scheme_to_string = function
  | Mul_cipher -> "mul"
  | Stream_cipher -> "stream"
