let bxor s pad =
  String.init (String.length s) (fun i -> Char.chr (Char.code s.[i] lxor pad))

let prepare_key key =
  let key = if String.length key > Sha256.block_size then Sha256.digest key else key in
  key ^ String.make (Sha256.block_size - String.length key) '\x00'

let mac_concat ~key parts =
  let key = prepare_key key in
  let inner = Sha256.digest_concat (bxor key 0x36 :: parts) in
  Sha256.digest_concat [ bxor key 0x5c; inner ]

let mac ~key msg = mac_concat ~key [ msg ]

let hex ~key msg =
  let d = mac ~key msg in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
