(** Deterministic random bit generator in the style of NIST SP 800-90A
    HMAC-DRBG (SHA-256 instantiation).

    This is the only randomness source used by the protocols, which makes
    every protocol run reproducible from its seed — essential both for
    tests and for the benchmark harness. *)

type t

(** [create ~seed] instantiates a generator. Distinct seeds yield
    independent-looking streams; equal seeds yield equal streams. *)
val create : seed:string -> t

(** [generate t n] is [n] fresh pseudorandom bytes. *)
val generate : t -> int -> string

(** [reseed t ~entropy] mixes additional entropy into the state. *)
val reseed : t -> entropy:string -> unit

(** [to_rng t] adapts [t] to the byte-supplier interface consumed by
    [Bignum.Nat_rand]. *)
val to_rng : t -> Bignum.Nat_rand.rng

(** [split t ~label] derives an independent child generator; used to give
    each protocol party its own stream from a test seed. *)
val split : t -> label:string -> t
