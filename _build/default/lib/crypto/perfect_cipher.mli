(** The extra-information cipher [K : Dom F x V_ext -> C_ext] of §4.2.

    Two instantiations are provided:

    - {!Mul} is exactly the paper's Example 2: [K_kappa(ext) = kappa *
      ext] over [QR_p], information-theoretically secret for a uniform
      [kappa]. Payloads must fit in one group element.
    - {!Stream} XORs the payload with a keystream derived from [kappa]
      by HMAC-DRBG — computationally secret in the random-oracle model,
      but free of the length limit, so realistic multi-record [ext(v)]
      payloads work. The equijoin protocol is parametric in which one is
      used.

    Payload encoding for {!Mul} exploits safe primes: [p = 3 (mod 4)], so
    [-1] is a non-residue and exactly one of [x, p-x] is in [QR_p]; a
    payload [m < p/2] is stored as whichever of [m, p-m] is a residue and
    recovered as [min(x, p-x)]. *)

module Mul : sig
  (** [max_payload g] is the largest payload length in bytes. *)
  val max_payload : Group.t -> int

  (** [encode g payload] injects a payload into [QR_p].
      @raise Invalid_argument if longer than [max_payload]. *)
  val encode : Group.t -> string -> Group.elt

  (** [decode g x] inverts {!encode}.
      @raise Invalid_argument if [x] is not a valid encoding. *)
  val decode : Group.t -> Group.elt -> string

  (** [encrypt g ~key payload] is [key * encode payload mod p]. *)
  val encrypt : Group.t -> key:Group.elt -> string -> Group.elt

  (** [decrypt g ~key c] is [decode (key^-1 * c)]. *)
  val decrypt : Group.t -> key:Group.elt -> Group.elt -> string
end

module Stream : sig
  (** [encrypt g ~key payload] XORs [payload] with a keystream derived
      from the group element [key]. Involutive: applying it twice with
      the same key returns the payload. *)
  val encrypt : Group.t -> key:Group.elt -> string -> string

  val decrypt : Group.t -> key:Group.elt -> string -> string
end

(** Which instantiation a protocol should use. *)
type scheme = Mul_cipher | Stream_cipher

val scheme_to_string : scheme -> string
