lib/crypto/hmac.ml: Buffer Char Printf Sha256 String
