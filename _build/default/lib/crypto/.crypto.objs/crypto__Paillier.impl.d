lib/crypto/paillier.ml: Bignum String
