lib/crypto/perfect_cipher.mli: Group
