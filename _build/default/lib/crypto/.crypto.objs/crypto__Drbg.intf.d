lib/crypto/drbg.mli: Bignum
