lib/crypto/hash_to_group.mli: Group
