lib/crypto/hmac.mli:
