lib/crypto/group.ml: Bignum Hashtbl String
