lib/crypto/commutative.ml: Bignum Group
