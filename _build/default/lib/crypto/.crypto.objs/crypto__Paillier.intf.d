lib/crypto/paillier.mli: Bignum
