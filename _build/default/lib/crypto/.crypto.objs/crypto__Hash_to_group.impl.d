lib/crypto/hash_to_group.ml: Bignum Buffer Char Group Printf Sha256 String
