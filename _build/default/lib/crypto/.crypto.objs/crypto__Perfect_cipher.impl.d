lib/crypto/perfect_cipher.ml: Bignum Char Drbg Group String
