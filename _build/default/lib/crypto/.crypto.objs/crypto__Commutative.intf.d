lib/crypto/commutative.mli: Bignum Group
