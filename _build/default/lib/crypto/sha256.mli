(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used as the paper's ideal hash function [h] (random oracle model) and
    as the PRF inside {!Hmac}/{!Drbg}. Verified against the NIST example
    vectors in the test suite. *)

type ctx

(** [init ()] is a fresh hashing context. *)
val init : unit -> ctx

(** [update ctx s] absorbs [s]. Contexts are single-use after {!finalize}. *)
val update : ctx -> string -> unit

(** [finalize ctx] is the 32-byte digest of everything absorbed.
    @raise Invalid_argument if the context was already finalized. *)
val finalize : ctx -> string

(** [digest s] is the 32-byte SHA-256 of [s]. *)
val digest : string -> string

(** [digest_concat parts] hashes the concatenation of [parts] without
    building the concatenation. *)
val digest_concat : string list -> string

(** [hexdigest s] is {!digest} rendered as 64 lowercase hex characters. *)
val hexdigest : string -> string

val digest_size : int
val block_size : int
