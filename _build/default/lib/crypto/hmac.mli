(** HMAC-SHA256 (RFC 2104 / FIPS 198-1), the PRF underlying {!Drbg}. *)

(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys of any length are accepted (hashed down if longer than one
    block, zero-padded if shorter). *)
val mac : key:string -> string -> string

(** [mac_concat ~key parts] authenticates the concatenation of [parts]. *)
val mac_concat : key:string -> string list -> string

(** [hex ~key msg] is {!mac} in lowercase hex. *)
val hex : key:string -> string -> string
