module Nat = Bignum.Nat
module Modular = Bignum.Modular
module Prime = Bignum.Prime
module Nat_rand = Bignum.Nat_rand

type public = { n : Nat.t; n_sq : Nat.t; ctx : Modular.Mont.ctx (* mod n^2 *) }
type secret = { pub : public; lambda : Nat.t; mu : Nat.t }

let make_public n =
  let n_sq = Nat.mul n n in
  { n; n_sq; ctx = Modular.Mont.create n_sq }

let keygen ~rng ~bits =
  if bits < 64 then invalid_arg "Paillier.keygen: bits >= 64"
  else begin
    let half = bits / 2 in
    let rec gen () =
      let p = Prime.gen_prime ~rng half in
      let q = Prime.gen_prime ~rng (bits - half) in
      if Nat.equal p q then gen ()
      else begin
        let n = Nat.mul p q in
        (* lambda = lcm(p-1, q-1) *)
        let p1 = Nat.pred p and q1 = Nat.pred q in
        let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
        (* With g = n+1: mu = lambda^-1 mod n (lambda coprime to n since
           p, q are odd primes not dividing lambda... gcd check anyway). *)
        match Modular.inv lambda n with
        | None -> gen ()
        | Some mu ->
            let pub = make_public n in
            (pub, { pub; lambda; mu })
      end
    in
    gen ()
  end

let public_of_secret s = s.pub
let modulus pub = pub.n

let encrypt pub ~rng m =
  if Nat.compare m pub.n >= 0 then invalid_arg "Paillier.encrypt: plaintext >= n"
  else begin
    let rec draw_r () =
      let r = Nat_rand.range ~rng Nat.one pub.n in
      if Nat.is_one (Nat.gcd r pub.n) then r else draw_r ()
    in
    let r = draw_r () in
    (* (1 + m*n) * r^n mod n^2 *)
    let gm = Nat.rem (Nat.succ (Nat.mul m pub.n)) pub.n_sq in
    Modular.Mont.mul pub.ctx gm (Modular.Mont.pow pub.ctx (Nat.rem r pub.n_sq) pub.n)
  end

let decrypt sec c =
  let pub = sec.pub in
  if Nat.compare c pub.n_sq >= 0 then invalid_arg "Paillier.decrypt: ciphertext >= n^2"
  else begin
    let x = Modular.Mont.pow pub.ctx c sec.lambda in
    (* L(x) = (x - 1) / n; x = 1 mod n by construction. *)
    let l = Nat.div (Nat.pred x) pub.n in
    Nat.rem (Nat.mul l sec.mu) pub.n
  end

let add pub c1 c2 = Modular.Mont.mul pub.ctx c1 c2

let add_plain pub c m =
  let m = Nat.rem m pub.n in
  Modular.Mont.mul pub.ctx c (Nat.rem (Nat.succ (Nat.mul m pub.n)) pub.n_sq)

let mul_plain pub c k = Modular.Mont.pow pub.ctx c k
let zero pub ~rng = encrypt pub ~rng Nat.zero

let encode_public pub = Nat.to_bytes_be pub.n

let decode_public s =
  let n = Nat.of_bytes_be s in
  if Nat.compare n (Nat.of_int 4) < 0 || Nat.is_even n then
    invalid_arg "Paillier.decode_public: implausible modulus"
  else make_public n

let ciphertext_bytes pub = (Nat.num_bits pub.n_sq + 7) / 8
let encode_ciphertext pub c = Nat.to_bytes_be ~width:(ciphertext_bytes pub) c

let decode_ciphertext pub s =
  if String.length s <> ciphertext_bytes pub then
    invalid_arg "Paillier.decode_ciphertext: wrong width"
  else begin
    let c = Nat.of_bytes_be s in
    if Nat.compare c pub.n_sq >= 0 then
      invalid_arg "Paillier.decode_ciphertext: out of range"
    else c
  end
