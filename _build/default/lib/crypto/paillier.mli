(** The Paillier additively homomorphic cryptosystem, built on
    [Bignum].

    Used by [Psi.Aggregate] to answer the paper's §7 future-work
    question ("can we discover corresponding protocols for other
    database operations such as aggregations?"): ciphertexts of numbers
    can be multiplied to add their plaintexts without decrypting.

    Standard simplified variant: [n = p*q] with [g = n + 1],
    [Enc(m, r) = (1 + m*n) * r^n mod n^2],
    [Dec(c) = L(c^lambda mod n^2) / lambda mod n] where
    [L(x) = (x-1)/n]. *)

type public
type secret

(** [keygen ~rng ~bits] generates a key pair with a [bits]-bit modulus
    ([bits >= 64]; use 1024+ for anything non-test). *)
val keygen : rng:Bignum.Nat_rand.rng -> bits:int -> public * secret

val public_of_secret : secret -> public

(** [modulus pub] is [n]; plaintexts live in [[0, n)]. *)
val modulus : public -> Bignum.Nat.t

(** [encrypt pub ~rng m] encrypts [m < n].
    @raise Invalid_argument if [m >= n]. *)
val encrypt : public -> rng:Bignum.Nat_rand.rng -> Bignum.Nat.t -> Bignum.Nat.t

(** [decrypt sec c] recovers the plaintext. *)
val decrypt : secret -> Bignum.Nat.t -> Bignum.Nat.t

(** [add pub c1 c2] is a ciphertext of [m1 + m2 mod n]. *)
val add : public -> Bignum.Nat.t -> Bignum.Nat.t -> Bignum.Nat.t

(** [add_plain pub c m] is a ciphertext of [m1 + m mod n]. *)
val add_plain : public -> Bignum.Nat.t -> Bignum.Nat.t -> Bignum.Nat.t

(** [mul_plain pub c k] is a ciphertext of [m1 * k mod n]. *)
val mul_plain : public -> Bignum.Nat.t -> Bignum.Nat.t -> Bignum.Nat.t

(** [zero pub ~rng] is a fresh encryption of 0 (useful for blinding /
    re-randomization via {!add}). *)
val zero : public -> rng:Bignum.Nat_rand.rng -> Bignum.Nat.t

(** Fixed-width wire encodings of the public key and ciphertexts. *)
val encode_public : public -> string

val decode_public : string -> public
val ciphertext_bytes : public -> int
val encode_ciphertext : public -> Bignum.Nat.t -> string
val decode_ciphertext : public -> string -> Bignum.Nat.t
