module Nat = Bignum.Nat
module Modular = Bignum.Modular

type key = { e : Nat.t; e_inv : Nat.t }

let key_of_exponent g e =
  if Nat.is_zero e || Nat.compare e (Group.q g) >= 0 then
    invalid_arg "Commutative.key_of_exponent: exponent outside [1, q-1]"
  else begin
    (* q is prime, so every nonzero exponent is invertible mod q. *)
    let e_inv = Modular.inv_exn e (Group.q g) in
    { e; e_inv }
  end

let gen_key g ~rng = key_of_exponent g (Group.random_exponent g ~rng)
let exponent k = k.e
let encrypt g k x = Group.pow g x k.e
let decrypt g k y = Group.pow g y k.e_inv
