type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : string Queue.t; (* serialized messages in flight *)
  mutable closed : bool;
}

type counters = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_received : int;
  mutable bytes_received : int;
  mutable elements_sent : int;
  mutable sent_log : Message.t list; (* reversed *)
  mutable received_log : Message.t list; (* reversed *)
}

type endpoint = {
  inbox : shared;
  outbox : shared;
  c : counters;
}

let fresh_shared () =
  { mutex = Mutex.create (); cond = Condition.create (); queue = Queue.create (); closed = false }

let fresh_counters () =
  {
    messages_sent = 0;
    bytes_sent = 0;
    messages_received = 0;
    bytes_received = 0;
    elements_sent = 0;
    sent_log = [];
    received_log = [];
  }

let create () =
  let ab = fresh_shared () and ba = fresh_shared () in
  let a = { inbox = ba; outbox = ab; c = fresh_counters () } in
  let b = { inbox = ab; outbox = ba; c = fresh_counters () } in
  (a, b)

let send ep m =
  let bytes = Message.encode m in
  ep.c.messages_sent <- ep.c.messages_sent + 1;
  ep.c.bytes_sent <- ep.c.bytes_sent + String.length bytes;
  ep.c.elements_sent <- ep.c.elements_sent + Message.element_count m;
  ep.c.sent_log <- m :: ep.c.sent_log;
  let s = ep.outbox in
  Mutex.lock s.mutex;
  Queue.push bytes s.queue;
  Condition.signal s.cond;
  Mutex.unlock s.mutex

let recv ep =
  let s = ep.inbox in
  Mutex.lock s.mutex;
  let rec wait () =
    if not (Queue.is_empty s.queue) then Queue.pop s.queue
    else if s.closed then begin
      Mutex.unlock s.mutex;
      failwith "Channel.recv: peer closed the channel"
    end
    else begin
      Condition.wait s.cond s.mutex;
      wait ()
    end
  in
  let bytes = wait () in
  Mutex.unlock s.mutex;
  let m = Message.decode bytes in
  ep.c.messages_received <- ep.c.messages_received + 1;
  ep.c.bytes_received <- ep.c.bytes_received + String.length bytes;
  ep.c.received_log <- m :: ep.c.received_log;
  m

let close ep =
  let s = ep.outbox in
  Mutex.lock s.mutex;
  s.closed <- true;
  Condition.broadcast s.cond;
  Mutex.unlock s.mutex

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_received : int;
  bytes_received : int;
  elements_sent : int;
}

let stats ep =
  {
    messages_sent = ep.c.messages_sent;
    bytes_sent = ep.c.bytes_sent;
    messages_received = ep.c.messages_received;
    bytes_received = ep.c.bytes_received;
    elements_sent = ep.c.elements_sent;
  }

let received ep = List.rev ep.c.received_log
let sent ep = List.rev ep.c.sent_log
