lib/wire/buf.ml: Buffer Char Printf String
