lib/wire/channel.mli: Message
