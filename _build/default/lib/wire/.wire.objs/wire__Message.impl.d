lib/wire/message.ml: Buf Format List Printf String
