lib/wire/channel.ml: Condition List Message Mutex Queue String
