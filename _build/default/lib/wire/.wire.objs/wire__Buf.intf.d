lib/wire/buf.mli:
