lib/wire/message.mli: Format
