lib/wire/runner.ml: Channel Message Thread
