lib/wire/runner.mli: Channel Message
