(** The intersection protocol (§3.3 of the paper).

    Party [R] (receiver) learns [V_S ∩ V_R] and [|V_S|]; party [S]
    (sender) learns [|V_R|]; nothing else is revealed (Statement 2).

    Message flow (with the §6.1 optimization that [S] does not echo
    [R]'s ciphertexts — both sides preserve the lexicographic order of
    [Y_R] instead):

    {v
    R -> S   intersection/Y_R        f_eR(h(V_R)), sorted
    S -> R   intersection/Y_S        f_eS(h(V_S)), sorted
    S -> R   intersection/Y_R_enc    f_eS(y) for y in Y_R, in Y_R's order
    v} *)

type sender_report = {
  v_r_count : int;  (** |V_R|: all S learns *)
  ops : Protocol.ops;
}

type receiver_report = {
  intersection : string list;  (** V_S ∩ V_R, sorted *)
  v_s_count : int;  (** |V_S| (from |Y_S|) *)
  ops : Protocol.ops;
}

(** [sender cfg ~rng ~values ep] runs S's side over [ep]. [values] is
    [S]'s value list; duplicates are removed. *)
val sender :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  sender_report

(** [receiver cfg ~rng ~values ep] runs R's side over [ep]. *)
val receiver :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

(** [run cfg ~seed ~sender_values ~receiver_values ()] wires both parties
    over a fresh channel with per-party DRBGs derived from [seed]. *)
val run :
  Protocol.config ->
  ?seed:string ->
  sender_values:string list ->
  receiver_values:string list ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome
