lib/core/cost_model.ml: Crypto Float List Printf Unix
