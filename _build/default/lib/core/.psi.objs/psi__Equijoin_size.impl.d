lib/core/equijoin_size.ml: Crypto Hashtbl List Option Protocol Sset Stdlib Wire
