lib/core/insecure_hash.ml: Crypto List Protocol Sset Wire
