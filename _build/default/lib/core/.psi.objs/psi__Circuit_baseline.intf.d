lib/core/circuit_baseline.mli:
