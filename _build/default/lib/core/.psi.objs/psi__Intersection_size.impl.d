lib/core/intersection_size.ml: Crypto List Protocol Sset Wire
