lib/core/group_by.ml: Hashtbl Intersection_size List Minidb Printf Protocol Sset Stdlib String
