lib/core/pir.mli: Bignum Wire
