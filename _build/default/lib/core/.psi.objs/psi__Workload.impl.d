lib/core/workload.ml: Char Crypto Float Hashtbl List Minidb Printf Schema Stdlib String Table Value
