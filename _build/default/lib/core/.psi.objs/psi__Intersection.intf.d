lib/core/intersection.mli: Bignum Protocol Wire
