lib/core/intersection.ml: Crypto List Protocol Sset String Wire
