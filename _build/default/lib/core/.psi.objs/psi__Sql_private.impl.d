lib/core/sql_private.ml: Aggregate Array Equijoin Equijoin_size Group_by Intersection List Minidb Option Printf Protocol String Wire
