lib/core/workload.mli: Minidb
