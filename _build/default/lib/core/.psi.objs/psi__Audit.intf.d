lib/core/audit.mli:
