lib/core/medical.mli: Cost_model Minidb Protocol
