lib/core/doc_sharing.mli: Cost_model Protocol Workload
