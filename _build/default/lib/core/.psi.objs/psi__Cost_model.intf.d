lib/core/cost_model.mli: Crypto
