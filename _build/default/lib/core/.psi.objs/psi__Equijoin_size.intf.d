lib/core/equijoin_size.mli: Bignum Protocol Wire
