lib/core/aggregate.mli: Bignum Cost_model Protocol Wire
