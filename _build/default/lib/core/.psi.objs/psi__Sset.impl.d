lib/core/sset.ml: List Map Option Set String
