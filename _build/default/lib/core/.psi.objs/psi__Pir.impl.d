lib/core/pir.ml: Bignum Buffer Crypto List Protocol Stdlib String Wire
