lib/core/equijoin.mli: Bignum Protocol Wire
