lib/core/doc_sharing.ml: Cost_model Intersection_size List Printf Protocol Wire Workload
