lib/core/simulator.ml: Array Crypto List Protocol Stdlib Wire
