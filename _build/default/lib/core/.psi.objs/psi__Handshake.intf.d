lib/core/handshake.mli: Protocol Wire
