lib/core/leakage.ml: Hashtbl List Option Sset Stdlib String
