lib/core/audit.ml: Hashtbl List Option Printf Sset
