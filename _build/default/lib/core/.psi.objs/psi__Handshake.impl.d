lib/core/handshake.ml: Bignum Crypto Protocol String Wire
