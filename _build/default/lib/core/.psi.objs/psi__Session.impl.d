lib/core/session.ml: Crypto Equijoin Equijoin_size Handshake Intersection Intersection_size List Protocol Wire
