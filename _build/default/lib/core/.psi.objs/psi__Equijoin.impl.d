lib/core/equijoin.ml: Crypto Hashtbl List Protocol String Wire
