lib/core/aggregate.ml: Bignum Cost_model Crypto Hashtbl List Option Protocol String Wire
