lib/core/protocol.ml: Array Bignum Crypto Domain List Printf Stdlib String Wire
