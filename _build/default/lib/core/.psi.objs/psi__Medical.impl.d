lib/core/medical.ml: Cost_model Group_by List Minidb Protocol Relop Table Value
