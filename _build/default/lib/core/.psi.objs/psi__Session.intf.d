lib/core/session.mli: Protocol
