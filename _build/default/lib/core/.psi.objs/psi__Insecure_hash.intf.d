lib/core/insecure_hash.mli: Protocol Wire
