lib/core/simulator.mli: Bignum Crypto Protocol Wire
