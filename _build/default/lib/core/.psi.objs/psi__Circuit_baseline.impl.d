lib/core/circuit_baseline.ml: List
