lib/core/leakage.mli:
