lib/core/private_query.ml: Audit Equijoin Equijoin_size Intersection Intersection_size List Minidb Protocol Wire
