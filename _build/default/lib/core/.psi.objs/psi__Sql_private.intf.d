lib/core/sql_private.mli: Minidb Protocol
