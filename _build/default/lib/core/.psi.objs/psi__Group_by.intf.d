lib/core/group_by.mli: Minidb Protocol
