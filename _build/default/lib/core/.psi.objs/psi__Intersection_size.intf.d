lib/core/intersection_size.mli: Bignum Protocol Wire
