lib/core/protocol.mli: Crypto Wire
