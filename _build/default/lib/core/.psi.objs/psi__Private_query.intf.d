lib/core/private_query.mli: Audit Minidb Protocol
