(** Application 2: medical research (§1.1, Figure 2, §6.2.2).

    A researcher [T] validates a hypothesis linking DNA pattern [D] to a
    reaction to drug [G]:

    {v
    select pattern, reaction, count()
    from T_R, T_S
    where T_R.person_id = T_S.person_id and T_S.drug = true
    group by T_R.pattern, T_S.reaction
    v}

    [T_R(person_id, pattern)] and [T_S(person_id, drug, reaction)] live
    in different enterprises. Following Figure 2, the parties run four
    intersection-size protocols on the partitions [V'_R / V_R - V'_R]
    and [V'_S / V_S - V'_S], with the double-encrypted sets [Z] sent to
    [T] instead of to each other — [T] learns the four counts and
    nothing else; the enterprises learn nothing about individuals. *)

type counts = {
  pattern_and_reaction : int;
  pattern_no_reaction : int;
  no_pattern_and_reaction : int;
  no_pattern_no_reaction : int;
}

type report = {
  counts : counts;  (** what the researcher T learns *)
  total_bytes : int;
      (** bytes over all channels, including the Z sets shipped to T *)
  ops : Protocol.ops;
}

(** [run cfg ~t_r ~t_s ()] executes Figure 2. [t_r] must have columns
    [person_id] and [pattern]; [t_s] must have [person_id], [drug],
    [reaction]. *)
val run :
  Protocol.config -> ?seed:string -> t_r:Minidb.Table.t -> t_s:Minidb.Table.t -> unit -> report

(** [plaintext_counts ~t_r ~t_s] evaluates the same query with the
    {!Minidb.Relop} reference engine (test oracle). *)
val plaintext_counts : t_r:Minidb.Table.t -> t_s:Minidb.Table.t -> counts

(** [estimate params ~v_r ~v_s] applies the §6.2.2 formulas: combined
    computation [2(|V_R|+|V_S|) 2Ce], communication [2(|V_R|+|V_S|) 2k]. *)
val estimate : Cost_model.params -> v_r:int -> v_s:int -> Cost_model.estimate
