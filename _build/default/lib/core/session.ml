type op =
  | Intersect of { s_values : string list; r_values : string list }
  | Intersect_size of { s_values : string list; r_values : string list }
  | Equijoin of { s_records : (string * string) list; r_values : string list }
  | Equijoin_size of { s_values : string list; r_values : string list }

type result =
  | Values of string list
  | Size of int
  | Matches of (string * string list) list

type report = { results : result list; total_bytes : int; ops : Protocol.ops }

let run cfg ?(seed = "session") operations () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  let outcome =
    Wire.Runner.run
      ~sender:(fun ep ->
        Handshake.respond cfg ep;
        List.fold_left
          (fun acc op ->
            let o =
              match op with
              | Intersect { s_values; _ } ->
                  (Intersection.sender cfg ~rng:s_rng ~values:s_values ep).Intersection.ops
              | Intersect_size { s_values; _ } ->
                  (Intersection_size.sender cfg ~rng:s_rng ~values:s_values ep)
                    .Intersection_size.ops
              | Equijoin { s_records; _ } ->
                  (Equijoin.sender cfg ~rng:s_rng ~records:s_records ep).Equijoin.ops
              | Equijoin_size { s_values; _ } ->
                  (Equijoin_size.sender cfg ~rng:s_rng ~values:s_values ep).Equijoin_size.ops
            in
            Protocol.total acc o)
          (Protocol.new_ops ()) operations)
      ~receiver:(fun ep ->
        Handshake.initiate cfg ep;
        List.fold_left_map
          (fun acc op ->
            match op with
            | Intersect { r_values; _ } ->
                let r = Intersection.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Intersection.ops, Values r.Intersection.intersection)
            | Intersect_size { r_values; _ } ->
                let r = Intersection_size.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Intersection_size.ops, Size r.Intersection_size.size)
            | Equijoin { r_values; _ } ->
                let r = Equijoin.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Equijoin.ops, Matches r.Equijoin.matches)
            | Equijoin_size { r_values; _ } ->
                let r = Equijoin_size.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Equijoin_size.ops, Size r.Equijoin_size.join_size))
          (Protocol.new_ops ()) operations)
  in
  let s_ops = outcome.Wire.Runner.sender_result in
  let r_ops, results = outcome.Wire.Runner.receiver_result in
  {
    results;
    total_bytes = outcome.Wire.Runner.total_bytes;
    ops = Protocol.total s_ops r_ops;
  }
