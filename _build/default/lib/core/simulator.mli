(** The simulators from the paper's security proofs, implemented.

    Statements 2, 4 and 6 prove security by exhibiting, for each party,
    a {e simulator} that reproduces the party's entire view of the
    protocol from nothing but that party's prescribed outputs. This
    module implements those simulators literally; the test suite then
    checks that simulated views are structurally indistinguishable from
    real transcripts (same message shapes, counts, orderings, valid
    group elements, same statistical profile) — the machine-checkable
    shadow of the indistinguishability argument.

    Each simulator draws its own fresh keys, as in the proofs
    ("the simulator chooses a key ~e_S ∈r Key F"). *)

(** [intersection_sender_view cfg ~rng ~v_r_count] simulates everything
    [S] receives in the intersection protocol from [|V_R|] alone
    (Statement 2's simulator for S): one sorted [Y_R] of random
    elements. *)
val intersection_sender_view :
  Protocol.config -> rng:Bignum.Nat_rand.rng -> v_r_count:int -> Wire.Message.t list

(** [intersection_receiver_view cfg ~rng ~y_r ~intersection ~v_s_count]
    simulates everything [R] receives, from [R]'s outputs only
    (Statement 2's simulator for R): a [Y_S] containing
    [f_~eS(h(v))] for [v] in the intersection plus [|V_S| - |∩|] random
    elements, and [f_~eS] applied to the (public) [y_r] R sent. *)
val intersection_receiver_view :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  y_r:string list ->
  intersection:string list ->
  v_s_count:int ->
  Wire.Message.t list

(** [intersection_size_receiver_view cfg ~rng ~v_r_count ~v_s_count
    ~size] simulates [R]'s view of the intersection size protocol from
    the sizes alone (Statement 6's simulator): [n = |V_S ∪ V_R|] random
    elements [y_i]; [Y_S] is the first [|V_S|] of them; [Z_R] is
    [f_~eR] of the [|V_R|] elements starting at [|V_S| - size].

    As in the proof, the simulator may be given [R]'s key
    ([?receiver_key]); then processing the simulated view with that key
    yields exactly [size] matches — the consistency half of the
    simulation argument, which the tests exercise. *)
val intersection_size_receiver_view :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  ?receiver_key:Crypto.Commutative.key ->
  v_r_count:int ->
  v_s_count:int ->
  size:int ->
  unit ->
  Wire.Message.t list
