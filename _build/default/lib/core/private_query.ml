module Value = Minidb.Value
module Table = Minidb.Table
module Buf = Wire.Buf

type spec =
  | Intersect of { attr : string }
  | Intersect_size of { attr : string }
  | Equijoin of { attr : string; payload : string list }
  | Equijoin_size of { attr : string }

type rows = (Value.t * Value.t list list) list

type answer = Values of Value.t list | Size of int | Rows of rows

type outcome = {
  answer : answer;
  v_s : int;
  v_r : int;
  total_bytes : int;
  ops : Protocol.ops;
}

let operation_name = function
  | Intersect _ -> "intersect"
  | Intersect_size _ -> "intersect_size"
  | Equijoin _ -> "equijoin"
  | Equijoin_size _ -> "equijoin_size"

let attr_of = function
  | Intersect { attr }
  | Intersect_size { attr }
  | Equijoin { attr; _ }
  | Equijoin_size { attr } ->
      attr

(* Distinct non-null attribute values as protocol strings. *)
let values_of t attr = List.map Value.key (Table.distinct_values t attr)

(* Multiset variant (duplicates kept, nulls dropped). *)
let multiset_of t attr =
  List.filter_map
    (fun v -> if v = Value.Null then None else Some (Value.key v))
    (Table.column_values t attr)

(* ext(v) record payload: the projected columns, each as a typed key. *)
let encode_row t cols row =
  let w = Buf.writer () in
  Buf.write_varint w (List.length cols);
  List.iter (fun c -> Buf.write_bytes w (Value.key (Table.get t row c))) cols;
  Buf.contents w

let decode_row payload =
  let r = Buf.reader payload in
  let n = Buf.read_varint r in
  let rec go i acc =
    if i = n then List.rev acc else go (i + 1) (Value.of_key (Buf.read_bytes r) :: acc)
  in
  let vs = go 0 [] in
  Buf.expect_end r;
  vs

let plaintext spec ~sender ~receiver =
  let attr = attr_of spec in
  match spec with
  | Intersect _ -> Values (Minidb.Relop.intersect_values receiver sender ~on:(attr, attr))
  | Intersect_size _ ->
      Size (List.length (Minidb.Relop.intersect_values receiver sender ~on:(attr, attr)))
  | Equijoin_size _ -> Size (Minidb.Relop.equijoin_size receiver sender ~on:(attr, attr))
  | Equijoin { payload; _ } ->
      let matches = Minidb.Relop.intersect_values receiver sender ~on:(attr, attr) in
      Rows
        (List.map
           (fun v ->
             let recs =
               List.map
                 (fun row -> List.map (fun c -> Table.get sender row c) payload)
                 (Table.ext sender attr v)
             in
             (v, recs))
           matches)

let result_size_of = function
  | Values vs -> List.length vs
  | Size n -> n
  | Rows rs -> List.length rs

let execute cfg ~seed spec ~sender ~receiver =
  let attr = attr_of spec in
  match spec with
  | Intersect _ ->
      let o =
        Intersection.run cfg ~seed ~sender_values:(values_of sender attr)
          ~receiver_values:(values_of receiver attr) ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        answer =
          Values
            (List.sort Value.compare (List.map Value.of_key r.Intersection.intersection));
        v_s = r.Intersection.v_s_count;
        v_r = o.Wire.Runner.sender_result.Intersection.v_r_count;
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Intersection.ops o.Wire.Runner.sender_result.Intersection.ops;
      }
  | Intersect_size _ ->
      let o =
        Intersection_size.run cfg ~seed ~sender_values:(values_of sender attr)
          ~receiver_values:(values_of receiver attr) ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        answer = Size r.Intersection_size.size;
        v_s = r.Intersection_size.v_s_count;
        v_r = o.Wire.Runner.sender_result.Intersection_size.v_r_count;
        total_bytes = o.Wire.Runner.total_bytes;
        ops =
          Protocol.total r.Intersection_size.ops
            o.Wire.Runner.sender_result.Intersection_size.ops;
      }
  | Equijoin_size _ ->
      let o =
        Equijoin_size.run cfg ~seed ~sender_values:(multiset_of sender attr)
          ~receiver_values:(multiset_of receiver attr) ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        answer = Size r.Equijoin_size.join_size;
        v_s = r.Equijoin_size.v_s_multiset_size;
        v_r = o.Wire.Runner.sender_result.Equijoin_size.v_r_multiset_size;
        total_bytes = o.Wire.Runner.total_bytes;
        ops =
          Protocol.total r.Equijoin_size.ops o.Wire.Runner.sender_result.Equijoin_size.ops;
      }
  | Equijoin { payload; _ } ->
      let records =
        List.filter_map
          (fun row ->
            let v = Table.get sender row attr in
            if v = Value.Null then None
            else Some (Value.key v, encode_row sender payload row))
          (Table.rows sender)
      in
      let o =
        Equijoin.run cfg ~seed ~sender_records:records
          ~receiver_values:(values_of receiver attr) ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        answer =
          Rows
            (List.map
               (fun (v, recs) -> (Value.of_key v, List.map decode_row recs))
               r.Equijoin.matches);
        v_s = r.Equijoin.v_s_count;
        v_r = o.Wire.Runner.sender_result.Equijoin.v_r_count;
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Equijoin.ops o.Wire.Runner.sender_result.Equijoin.ops;
      }

let run cfg ?(seed = "private-query") ?audit ?(peer = "receiver") spec ~sender ~receiver
    () =
  let attr = attr_of spec in
  let gate () =
    match audit with
    | None -> Ok ()
    | Some a -> (
        match
          Audit.check_query a ~peer ~operation:(operation_name spec)
            ~input_values:(values_of receiver attr)
        with
        | Audit.Deny reason -> Error reason
        | Audit.Allow -> (
            (* Release gate: the data owner (or an agreed restriction
               mechanism, §2.3) evaluates the would-be answer against the
               result-size rules before participating. *)
            let size = result_size_of (plaintext spec ~sender ~receiver) in
            let own = List.length (values_of sender attr) in
            match Audit.check_result a ~peer ~result_size:size ~own_set_size:own with
            | Audit.Deny reason -> Error reason
            | Audit.Allow -> Ok ()))
  in
  match gate () with
  | Error reason -> Error reason
  | Ok () -> Ok (execute cfg ~seed spec ~sender ~receiver)
