(** The §6.1 cost model.

    Computation (exact, then the paper's approximation):
    - intersection: [(Ch + 2Ce)(|V_S| + |V_R|) + sorting  ~  2Ce(|V_S| + |V_R|)]
    - equijoin:     [~ 2Ce|V_S| + 5Ce|V_R|]

    Communication:
    - intersection (and both size protocols): [(|V_S| + 2|V_R|) k] bits
    - equijoin: [(|V_S| + 3|V_R|) k + |V_S| k'] bits

    The defaults reproduce the paper's §6.2 estimates: [Ce] = 0.02 s
    (1024-bit exponentiation, Pentium III, 2001), [k] = 1024 bits,
    [P] = 10 processors, T1 bandwidth 1.544 Mbit/s. *)

type params = {
  ce_seconds : float;  (** cost of one commutative encryption (modexp) *)
  ch_seconds : float;  (** cost of one ideal-hash evaluation *)
  ck_seconds : float;  (** cost of one K-cipher operation *)
  k_bits : int;  (** codeword size in bits *)
  k'_bits : int;  (** encrypted [ext(v)] size in bits *)
  processors : int;  (** parallelism P for computation *)
  bandwidth_bits_per_s : float;
}

(** The constants the paper uses in §6.2. *)
val paper_params : params

(** [measured_params ?samples group] measures [Ce] and [Ch] on this
    machine for [group] (median of [samples] timings) and keeps the
    paper's bandwidth/parallelism. *)
val measured_params : ?samples:int -> Crypto.Group.t -> params

type operation = Intersection | Equijoin | Intersection_size | Equijoin_size

type estimate = {
  encryptions : float;  (** total Ce count *)
  comp_seconds : float;  (** wall-clock with [processors]-way parallelism *)
  comm_bits : float;
  comm_seconds : float;
}

(** [estimate params op ~v_s ~v_r] applies the §6.1 formulas. *)
val estimate : params -> operation -> v_s:int -> v_r:int -> estimate

(** [exact_intersection_ops ~v_s ~v_r] is the un-approximated §6.1
    operation count for the intersection protocol, as
    [(hashes, encryptions)]. *)
val exact_intersection_ops : v_s:int -> v_r:int -> int * int

(** [exact_equijoin_ops ~v_s ~v_r ~intersection] is [(hashes,
    encryptions, cipher_ops)] for the equijoin. *)
val exact_equijoin_ops : v_s:int -> v_r:int -> intersection:int -> int * int * int

(** [format_seconds s] renders a duration like the paper's prose
    ("2.2 hours", "35 minutes"). *)
val format_seconds : float -> string

(** [format_bits b] renders e.g. "3.1 Gbits". *)
val format_bits : float -> string

(** [collision_probability ~modulus_bits ~n] is §3.2.2's birthday bound
    [1 - exp(-n(n-1)/2N)] with [N = 2^(modulus_bits) / 2] (half the
    values are quadratic residues). The paper's example: 1024-bit
    hashes, n = one million, probability ~10^-295. Returned as
    [(mantissa, exponent)] with probability = mantissa * 10^exponent,
    since the value underflows [float]. *)
val collision_probability : modulus_bits:int -> n:float -> float * int
