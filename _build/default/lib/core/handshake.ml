module Message = Wire.Message
module Channel = Wire.Channel

let tag = "handshake/config"

let fingerprint cfg =
  Crypto.Sha256.digest_concat
    [
      "psi-config-v1";
      Bignum.Nat.to_bytes_be (Crypto.Group.p cfg.Protocol.group);
      cfg.Protocol.domain;
      Crypto.Perfect_cipher.scheme_to_string cfg.Protocol.cipher;
    ]

let check mine theirs =
  if not (String.equal mine theirs) then
    failwith
      "handshake failed: parties disagree on group/domain/cipher configuration"

let recv_fp ep =
  match Channel.recv ep with
  | { Message.tag = t; payload = Message.Elements [ fp ] } when t = tag -> fp
  | _ -> failwith "handshake failed: unexpected message"

let initiate cfg ep =
  let mine = fingerprint cfg in
  Channel.send ep (Message.make ~tag (Message.Elements [ mine ]));
  check mine (recv_fp ep)

let respond cfg ep =
  let mine = fingerprint cfg in
  let theirs = recv_fp ep in
  Channel.send ep (Message.make ~tag (Message.Elements [ mine ]));
  check mine theirs
