(** The intersection size protocol (§5.1).

    [R] learns only [|V_S ∩ V_R|] and [|V_S|]; [S] learns only [|V_R|]
    (Statement 6). The crucial difference from the intersection protocol:
    in step 4(b), [S] returns [Z_R = f_eS(Y_R)] {e lexicographically
    reordered and unpaired}, so [R] cannot match its own values to the
    double encryptions.

    {v
    R -> S   intersection_size/Y_R   f_eR(h(V_R)), sorted
    S -> R   intersection_size/Y_S   f_eS(h(V_S)), sorted
    S -> R   intersection_size/Z_R   f_eS(f_eR(h(V_R))), re-sorted
    v} *)

type sender_report = { v_r_count : int; ops : Protocol.ops }

type receiver_report = {
  size : int;  (** |V_S ∩ V_R| *)
  v_s_count : int;
  ops : Protocol.ops;
}

val sender :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  sender_report

val receiver :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  Protocol.config ->
  ?seed:string ->
  sender_values:string list ->
  receiver_values:string list ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome

(** {1 Third-party variant (Figure 2)}

    "A slightly modified version of the intersection size protocol where
    [Z_R] and [Z_S] are sent to [T], the researcher, instead of to [S]
    and [R]" (§6.2.2). Neither data holder learns the size; only the
    third party does. *)

type third_party_report = {
  size : int;  (** what T (and only T) learns *)
  total_bytes : int;
      (** bytes over all links, including the two Z messages to T *)
  ops : Protocol.ops;  (** both data holders' operations combined *)
}

val run_to_third_party :
  Protocol.config ->
  ?seed:string ->
  sender_values:string list ->
  receiver_values:string list ->
  unit ->
  third_party_report
