type pair_result = {
  r_doc : string;
  s_doc : string;
  overlap : int;
  r_size : int;
  s_size : int;
  similarity : float;
}

type report = {
  matches : pair_result list;
  all_pairs : pair_result list;
  total_bytes : int;
  ops : Protocol.ops;
}

let similarity_default ~overlap ~r_size ~s_size =
  float_of_int overlap /. float_of_int (r_size + s_size)

let run cfg ?(seed = "doc-sharing") ?(similarity = similarity_default) ~docs_r ~docs_s
    ~threshold () =
  let total_bytes = ref 0 in
  let ops = ref (Protocol.new_ops ()) in
  let all_pairs =
    List.concat_map
      (fun (dr : Workload.document) ->
        List.map
          (fun (ds : Workload.document) ->
            let outcome =
              Intersection_size.run cfg
                ~seed:(Printf.sprintf "%s/%s/%s" seed dr.doc_id ds.doc_id)
                ~sender_values:ds.words ~receiver_values:dr.words ()
            in
            total_bytes := !total_bytes + outcome.Wire.Runner.total_bytes;
            ops :=
              Protocol.total !ops
                (Protocol.total outcome.Wire.Runner.sender_result.Intersection_size.ops
                   outcome.Wire.Runner.receiver_result.Intersection_size.ops);
            let overlap = outcome.Wire.Runner.receiver_result.Intersection_size.size in
            let r_size = List.length (Protocol.dedup dr.words) in
            let s_size = List.length (Protocol.dedup ds.words) in
            {
              r_doc = dr.doc_id;
              s_doc = ds.doc_id;
              overlap;
              r_size;
              s_size;
              similarity = similarity ~overlap ~r_size ~s_size;
            })
          docs_s)
      docs_r
  in
  {
    matches = List.filter (fun p -> p.similarity > threshold) all_pairs;
    all_pairs;
    total_bytes = !total_bytes;
    ops = !ops;
  }

let plaintext_matches ?(similarity = similarity_default) ~docs_r ~docs_s ~threshold () =
  List.concat_map
    (fun (dr : Workload.document) ->
      List.filter_map
        (fun (ds : Workload.document) ->
          let wr = Protocol.dedup dr.Workload.words in
          let ws = Protocol.dedup ds.Workload.words in
          let inter = List.filter (fun w -> List.mem w ws) wr in
          let s =
            similarity ~overlap:(List.length inter) ~r_size:(List.length wr)
              ~s_size:(List.length ws)
          in
          if s > threshold then Some (dr.Workload.doc_id, ds.Workload.doc_id) else None)
        docs_s)
    docs_r

let estimate (p : Cost_model.params) ~n_r ~n_s ~d_r ~d_s =
  let pairs = float_of_int (n_r * n_s) in
  let encryptions = pairs *. 2. *. float_of_int (d_r + d_s) in
  let comm_bits = pairs *. float_of_int ((d_r + (2 * d_s)) * p.Cost_model.k_bits) in
  {
    Cost_model.encryptions;
    comp_seconds =
      encryptions *. p.Cost_model.ce_seconds /. float_of_int p.Cost_model.processors;
    comm_bits;
    comm_seconds = comm_bits /. p.Cost_model.bandwidth_bits_per_s;
  }
