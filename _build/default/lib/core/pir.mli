(** Private information retrieval — the paper's pointer for the
    {e selection} operation (§2.4: "in the problem of private
    information retrieval, the receiver R obtains the i-th record from
    the set of n records held by the sender S without revealing i to S.
    ... This literature will be useful for developing protocols for the
    selection operation in our setting.")

    This module implements the simplest computational PIR from the
    additively homomorphic toolbox already built for {!Aggregate}:
    [R] keygens Paillier, sends encryptions of the unit vector
    [(delta_{ij})_j] for its secret index [i]; [S] replies with
    [prod_j c_j^{x_j} = Enc(x_i)] per record chunk; [R] decrypts.

    Guarantees (semi-honest): [S] learns nothing about [i] (the query is
    [n] ciphertexts of 0/1, indistinguishable under Paillier's CPA
    security); [R] learns record [i] and the public record count/width.
    Communication is [O(n)] ciphertexts upstream — the
    polylog-communication schemes the paper cites ([11, 32]) trade that
    off against heavier machinery.

    {v
    R -> S   pir/query     Paillier public key + n ciphertexts
    S -> R   pir/reply     one ciphertext per record chunk
    v} *)

type sender_report = {
  record_count : int;
  record_bytes : int;  (** fixed record width (padded) *)
}

type receiver_report = {
  record : string;  (** the retrieved record, padding stripped *)
}

(** [sender ~rng ~records ep]: [records] are arbitrary strings; they are
    padded to the longest one (the width is public). *)
val sender :
  rng:Bignum.Nat_rand.rng -> records:string list -> Wire.Channel.endpoint -> sender_report

(** [receiver ~rng ~key_bits ~count ~index ep] retrieves record [index]
    out of [count] (both known to R up front; [count] must match the
    sender's).
    @raise Invalid_argument if [index] is out of range. *)
val receiver :
  rng:Bignum.Nat_rand.rng ->
  ?key_bits:int ->
  count:int ->
  index:int ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  ?seed:string ->
  ?key_bits:int ->
  records:string list ->
  index:int ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome
