module Drbg = Crypto.Drbg

(* Small deterministic helpers over a DRBG. *)
let rand_int drbg bound =
  assert (bound > 0);
  let s = Drbg.generate drbg 8 in
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
  (!v land max_int) mod bound

let rand_float drbg = float_of_int (rand_int drbg 1_000_000) /. 1_000_000.

let value_sets ~seed ~n_s ~n_r ~overlap =
  if overlap > Stdlib.min n_s n_r then invalid_arg "Workload.value_sets: overlap too large"
  else begin
    ignore seed;
    (* Values are synthetic tokens; the shared block appears in both. *)
    let shared = List.init overlap (fun i -> Printf.sprintf "%s/shared/%d" seed i) in
    let s_only = List.init (n_s - overlap) (fun i -> Printf.sprintf "%s/s-only/%d" seed i) in
    let r_only = List.init (n_r - overlap) (fun i -> Printf.sprintf "%s/r-only/%d" seed i) in
    (shared @ s_only, shared @ r_only)
  end

let multiset ~seed ~values ~max_dup =
  if max_dup < 1 then invalid_arg "Workload.multiset: max_dup >= 1"
  else begin
    let drbg = Drbg.create ~seed:("multiset:" ^ seed) in
    List.concat_map
      (fun v ->
        let d = 1 + rand_int drbg max_dup in
        List.init d (fun _ -> v))
      values
  end

let records_for ~seed ~values ~records_per_value ~record_bytes =
  let drbg = Drbg.create ~seed:("records:" ^ seed) in
  List.concat_map
    (fun v ->
      List.init records_per_value (fun i ->
          let payload =
            Printf.sprintf "%s#%d:%s" v i
              (String.concat ""
                 (List.init (Stdlib.max 0 (record_bytes - String.length v - 8)) (fun _ ->
                      Printf.sprintf "%02x" (Char.code (Drbg.generate drbg 1).[0]))))
          in
          (v, payload)))
    values

type document = { doc_id : string; words : string list }

let sample_distinct drbg ~count ~universe ~to_word =
  (* Floyd's algorithm for a distinct sample. *)
  let chosen = Hashtbl.create count in
  for j = universe - count to universe - 1 do
    let t = rand_int drbg (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j () else Hashtbl.replace chosen t ()
  done;
  Hashtbl.fold (fun i () acc -> to_word i :: acc) chosen []

let documents ~seed ~n_docs ~words_per_doc ~vocabulary ~prefix =
  if words_per_doc > vocabulary then invalid_arg "Workload.documents: vocabulary too small"
  else begin
    let drbg = Drbg.create ~seed:(Printf.sprintf "docs:%s:%s" seed prefix) in
    List.init n_docs (fun d ->
        {
          doc_id = Printf.sprintf "%s-%04d" prefix d;
          words =
            sample_distinct drbg ~count:words_per_doc ~universe:vocabulary
              ~to_word:(Printf.sprintf "w%06d");
        })
  end

let plant_similar_pair ~seed docs_r docs_s ~fraction_shared =
  match (docs_r, docs_s) with
  | [], _ | _, [] -> invalid_arg "Workload.plant_similar_pair: empty collection"
  | dr :: rest_r, ds :: rest_s ->
      ignore seed;
      let n = List.length dr.words in
      let k = int_of_float (fraction_shared *. float_of_int n) in
      let shared = List.filteri (fun i _ -> i < k) ds.words in
      let keep = List.filteri (fun i _ -> i >= k) dr.words in
      ({ dr with words = shared @ keep } :: rest_r, ds :: rest_s)

type medical_truth = {
  pattern_and_reaction : int;
  pattern_no_reaction : int;
  no_pattern_and_reaction : int;
  no_pattern_no_reaction : int;
}

let medical_tables ~seed ~n_patients ~p_pattern ~p_drug ~p_reaction =
  let drbg = Drbg.create ~seed:("medical:" ^ seed) in
  let open Minidb in
  let r_schema = Schema.make [ Schema.col "person_id" Value.TInt; Schema.col "pattern" Value.TBool ] in
  let s_schema =
    Schema.make
      [
        Schema.col "person_id" Value.TInt;
        Schema.col "drug" Value.TBool;
        Schema.col "reaction" Value.TBool;
      ]
  in
  let truth = ref { pattern_and_reaction = 0; pattern_no_reaction = 0;
                    no_pattern_and_reaction = 0; no_pattern_no_reaction = 0 } in
  let r_rows = ref [] and s_rows = ref [] in
  for pid = 0 to n_patients - 1 do
    let pattern = rand_float drbg < p_pattern in
    let drug = rand_float drbg < p_drug in
    (* Pattern carriers react three times as often: the signal the
       researcher's hypothesis is after. *)
    let reaction =
      drug && rand_float drbg < (if pattern then Float.min 1. (3. *. p_reaction) else p_reaction)
    in
    r_rows := [| Value.Int pid; Value.Bool pattern |] :: !r_rows;
    s_rows := [| Value.Int pid; Value.Bool drug; Value.Bool reaction |] :: !s_rows;
    if drug then begin
      let t = !truth in
      truth :=
        (match (pattern, reaction) with
        | true, true -> { t with pattern_and_reaction = t.pattern_and_reaction + 1 }
        | true, false -> { t with pattern_no_reaction = t.pattern_no_reaction + 1 }
        | false, true -> { t with no_pattern_and_reaction = t.no_pattern_and_reaction + 1 }
        | false, false -> { t with no_pattern_no_reaction = t.no_pattern_no_reaction + 1 })
    end
  done;
  ( Table.create r_schema (List.rev !r_rows),
    Table.create s_schema (List.rev !s_rows),
    !truth )
