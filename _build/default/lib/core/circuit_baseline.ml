let w = 32
let k0 = 64
let k1 = 100
let gate_equal = (2 * w) - 1
let gate_less = (5 * w) - 3

(* [36] gives Cot = Ce/l + (2^l/l) Cmul with Ce = 1000 Cmul; l = 8 is the
   paper's optimum: (1000/8 + 256/8)/1000 = 0.157 Ce. *)
let ot_l = 8
let ot_cost_in_ce = (1. /. float_of_int ot_l) +. (2. ** float_of_int ot_l /. (float_of_int ot_l *. 1000.))
let ot_comm_bits = 2. ** float_of_int ot_l /. float_of_int ot_l *. float_of_int k1

let brute_force_gates n = n *. n *. float_of_int gate_equal

let partitioning_gates ~n ~m =
  if m < 2 then invalid_arg "Circuit_baseline.partitioning_gates: m >= 2"
  else begin
    let mf = float_of_int m in
    let coeff = (mf *. mf /. (mf -. 1.) *. float_of_int gate_less) +. float_of_int gate_equal in
    let exponent = log ((2. *. mf) -. 1.) /. log mf in
    coeff *. ((n ** exponent) -. 1.)
  end

let optimal_m n =
  let best = ref (2, partitioning_gates ~n ~m:2) in
  for m = 3 to 10_000 do
    let f = partitioning_gates ~n ~m in
    if f < snd !best then best := (m, f)
  done;
  !best

type computation_row = {
  n : float;
  circuit_input_ce : float;
  circuit_eval_cr : float;
  ours_ce : float;
}

let computation_table ns =
  List.map
    (fun n ->
      let _, f = optimal_m n in
      {
        n;
        circuit_input_ce = float_of_int w *. n *. ot_cost_in_ce;
        circuit_eval_cr = 2. *. f;
        ours_ce = 4. *. n;
      })
    ns

type communication_row = {
  n : float;
  circuit_input_bits : float;
  circuit_tables_bits : float;
  ours_bits : float;
}

let communication_table ?(k = 1024) ns =
  List.map
    (fun n ->
      let _, f = optimal_m n in
      {
        n;
        circuit_input_bits = float_of_int w *. n *. ot_comm_bits;
        circuit_tables_bits = 4. *. float_of_int k0 *. f;
        ours_bits = 3. *. n *. float_of_int k;
      })
    ns

let transfer_seconds bits = bits /. 1.544e6
