(** The simple-but-incorrect hash protocol of §3.1, kept as a baseline
    and as a demonstration of why the commutative-encryption protocol is
    needed.

    [S] ships [X_S = h(V_S)] in the clear (hashed but deterministically,
    with no party-private key), so any party holding the transcript can
    mount a dictionary attack: hash candidate values and test membership.
    The test suite shows {!dictionary_attack} recovers [V_S] from this
    protocol's transcript and recovers {e nothing} beyond the honest
    intersection from the real protocol's transcript. *)

type receiver_report = { intersection : string list; v_s_count : int }

val sender :
  Protocol.config -> values:string list -> Wire.Channel.endpoint -> unit

val receiver :
  Protocol.config ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  Protocol.config ->
  sender_values:string list ->
  receiver_values:string list ->
  unit ->
  (unit, receiver_report) Wire.Runner.outcome

(** [dictionary_attack cfg ~transcript ~candidates] plays the
    honest-but-curious receiver: it hashes every candidate value exactly
    as the protocol would and reports which ones provably belong to
    [V_S], given the hashed set observed in [transcript] (the receiver's
    view). Works against this protocol; returns only the honest
    intersection against the secure one (the double encryptions are
    unlinkable to candidate values). *)
val dictionary_attack :
  Protocol.config ->
  transcript:Wire.Message.t list ->
  candidates:string list ->
  string list
