(** Private equijoin aggregation — the paper's §7 future-work item
    ("protocols for other database operations such as aggregations"),
    built from the paper's own toolkit plus Paillier homomorphic
    encryption.

    Query: [select sum(s.x) from T_S s, T_R r where s.A = r.A].

    [R] learns the intersection [V_S ∩ V_R] (as in the intersection
    protocol), [|V_S|], and the {e sum} of [S]'s numeric attribute over
    the joining values — but not any individual [x_v]. [S] learns
    [|V_R|] and nothing else: the aggregate reaches it only once,
    blinded by a uniform random mask.

    {v
    R -> S   aggregate/Y_R      f_eR(h(V_R)), sorted
    S -> R   aggregate/pub      S's Paillier public key
    S -> R   aggregate/Y_R_enc  f_eS(y) for y in Y_R, Y_R order
    S -> R   aggregate/pairs    (f_eS(h(v)), Enc_S(x_v)), sorted
    R -> S   aggregate/blinded  Enc_S(sum + rho), rho uniform
    S -> R   aggregate/sum      sum + rho mod n (plaintext)
    v}

    The matching trick is the equijoin's: [R] strips its own layer from
    [f_eS(f_eR(h(v)))] (Property 3) to recognize its values among [S]'s
    first components. Sums must stay below the Paillier modulus
    (>= 2^(bits-1), far above any realistic aggregate). *)

type sender_report = { v_r_count : int; ops : Protocol.ops }

type receiver_report = {
  intersection : string list;  (** sorted *)
  sum : int;  (** sum of S's attribute over the intersection *)
  v_s_count : int;
  ops : Protocol.ops;
}

(** [sender cfg ~rng ~key_bits ~records ep]: [records] pairs each value
    with a non-negative integer contribution; several records may share
    a value. [key_bits] is the Paillier modulus size (default 512).
    @raise Invalid_argument on negative contributions. *)
val sender :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  ?key_bits:int ->
  records:(string * int) list ->
  Wire.Channel.endpoint ->
  sender_report

val receiver :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  Protocol.config ->
  ?seed:string ->
  ?key_bits:int ->
  sender_records:(string * int) list ->
  receiver_values:string list ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome

(** [exact_ops ~v_s ~v_r ~intersection] is the protocol's operation
    count in the style of §6.1: [(hashes, commutative encryptions,
    Paillier operations)]. Commutative encryptions total
    [|V_S| + 3|V_R|] (cheaper than the equijoin: one sender key instead
    of two); Paillier ops are [|V_S|] encryptions on [S]'s side plus
    [|∩| + 1] on [R]'s (the blinding encryption and the homomorphic
    accumulations). Validated against counted operations in the tests. *)
val exact_ops : v_s:int -> v_r:int -> intersection:int -> int * int * int

(** [estimate params ~v_s ~v_r ~paillier_ratio] applies the formula with
    [Ce_paillier = paillier_ratio * Ce] (Paillier ops at a [2048]-bit
    [n^2] cost roughly 4x a [1024]-bit exponentiation; default 4.0).
    Communication: [(|V_S| + 2|V_R|)k + (|V_S| + 2) * 2k_paillier]. *)
val estimate :
  Cost_model.params ->
  ?paillier_ratio:float ->
  v_s:int ->
  v_r:int ->
  unit ->
  Cost_model.estimate
