(** Multi-query defenses (§2.3).

    The protocols bound what one query reveals, but not what a party can
    learn by {e combining} queries. The paper's first line of defence is
    scrutiny of queries; the second is the query-restriction toolbox of
    the statistical-database literature it cites:

    - restricting result sizes (Fellegi [23]; tracker attacks, Denning
      et al. [17]),
    - controlling the overlap among successive queries (Dobkin, Jones &
      Lipton [19]),
    - keeping audit trails of answered queries (Chin & Ozsoyoglu [13]).

    This module implements all three as a policy object each party
    consults before participating in a protocol run. *)

type policy = {
  max_queries_per_peer : int option;
  min_result_size : int option;
      (** deny responses whose result would be smaller (tiny results
          isolate individuals) *)
  max_result_fraction : float option;
      (** deny responses revealing more than this fraction of one's own
          set *)
  max_input_overlap : float option;
      (** deny a query whose input set overlaps any earlier {e distinct}
          query from the same peer by more than this fraction
          (|new ∩ old| / |new|) — the tracker-style differencing
          defence. Exact repeats reveal nothing new and pass. *)
}

(** Everything allowed (audit trail only). *)
val permissive : policy

val default_policy : policy
(** [max_queries_per_peer = Some 100], [min_result_size = Some 2],
    [max_result_fraction = Some 0.5], [max_input_overlap = Some 0.9]. *)

type decision = Allow | Deny of string

type entry = {
  seq : int;
  peer : string;
  operation : string;
  input_size : int;
  result_size : int option;  (** filled by {!record_result} *)
  decision : decision;
}

type t

val create : policy -> t

(** [check_query t ~peer ~operation ~input_values] applies the
    count-limit and overlap rules, logs the query, and returns the
    decision. Allowed queries' input sets are remembered for future
    overlap checks. *)
val check_query :
  t -> peer:string -> operation:string -> input_values:string list -> decision

(** [check_result t ~peer ~result_size ~own_set_size] applies the
    result-size rules to a computed answer {e before} it is released,
    records it on the latest logged query from [peer], and returns the
    decision. *)
val check_result : t -> peer:string -> result_size:int -> own_set_size:int -> decision

(** [log t] is the audit trail, oldest first. *)
val log : t -> entry list

(** [queries_from t ~peer] counts allowed queries logged for [peer]. *)
val queries_from : t -> peer:string -> int
