type params = {
  ce_seconds : float;
  ch_seconds : float;
  ck_seconds : float;
  k_bits : int;
  k'_bits : int;
  processors : int;
  bandwidth_bits_per_s : float;
}

let paper_params =
  {
    ce_seconds = 0.02;
    (* The paper folds Ch and CK into Ce's dominance (Ce >> Ch, CK). *)
    ch_seconds = 0.;
    ck_seconds = 0.;
    k_bits = 1024;
    k'_bits = 1024;
    processors = 10;
    bandwidth_bits_per_s = 1.544e6 (* T1 *);
  }

let median l =
  let a = List.sort Float.compare l in
  List.nth a (List.length a / 2)

let time_one f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let measured_params ?(samples = 9) group =
  let rng = Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"cost-model-measure") in
  let x = Crypto.Group.random_element group ~rng in
  let e = Crypto.Commutative.gen_key group ~rng in
  let ce =
    median
      (List.init samples (fun _ ->
           time_one (fun () -> ignore (Crypto.Commutative.encrypt group e x))))
  in
  let ch =
    median
      (List.init samples (fun i ->
           time_one (fun () ->
               ignore (Crypto.Hash_to_group.hash group (string_of_int i)))))
  in
  {
    paper_params with
    ce_seconds = ce;
    ch_seconds = ch;
    ck_seconds = ch;
    k_bits = 8 * Crypto.Group.element_bytes group;
    k'_bits = 8 * Crypto.Group.element_bytes group;
  }

type operation = Intersection | Equijoin | Intersection_size | Equijoin_size

type estimate = {
  encryptions : float;
  comp_seconds : float;
  comm_bits : float;
  comm_seconds : float;
}

let estimate p op ~v_s ~v_r =
  let v_s = float_of_int v_s and v_r = float_of_int v_r in
  let encryptions, comm_bits =
    match op with
    | Intersection | Intersection_size | Equijoin_size ->
        (2. *. (v_s +. v_r), (v_s +. (2. *. v_r)) *. float_of_int p.k_bits)
    | Equijoin ->
        ( (2. *. v_s) +. (5. *. v_r),
          ((v_s +. (3. *. v_r)) *. float_of_int p.k_bits)
          +. (v_s *. float_of_int p.k'_bits) )
  in
  let comp_seconds = encryptions *. p.ce_seconds /. float_of_int p.processors in
  {
    encryptions;
    comp_seconds;
    comm_bits;
    comm_seconds = comm_bits /. p.bandwidth_bits_per_s;
  }

let exact_intersection_ops ~v_s ~v_r = (v_s + v_r, 2 * (v_s + v_r))

let exact_equijoin_ops ~v_s ~v_r ~intersection =
  ((v_s + v_r), (2 * v_s) + (5 * v_r), v_s + intersection)

let format_seconds s =
  if s < 1e-3 then Printf.sprintf "%.0f us" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1f ms" (s *. 1e3)
  else if s < 120. then Printf.sprintf "%.1f seconds" s
  else if s < 7200. then Printf.sprintf "%.1f minutes" (s /. 60.)
  else if s < 48. *. 3600. then Printf.sprintf "%.1f hours" (s /. 3600.)
  else Printf.sprintf "%.1f days" (s /. 86400.)

let collision_probability ~modulus_bits ~n =
  (* p = 1 - exp(-x) ~ x for tiny x, with x = n(n-1)/(2N), N = 2^(bits-1).
     Work in log10 to dodge float underflow. *)
  let log10_x =
    Float.log10 n
    +. Float.log10 (n -. 1.)
    -. Float.log10 2.
    -. (float_of_int (modulus_bits - 1) *. Float.log10 2.)
  in
  let e = int_of_float (Float.floor log10_x) in
  let mantissa = Float.pow 10. (log10_x -. float_of_int e) in
  (mantissa, e)

let format_bits b =
  if b < 1e3 then Printf.sprintf "%.0f bits" b
  else if b < 1e6 then Printf.sprintf "%.1f Kbits" (b /. 1e3)
  else if b < 1e9 then Printf.sprintf "%.1f Mbits" (b /. 1e6)
  else if b < 1e12 then Printf.sprintf "%.1f Gbits" (b /. 1e9)
  else Printf.sprintf "%.1f Tbits" (b /. 1e12)
