(** Configuration agreement check.

    The protocols silently assume both parties use the same group, hash
    domain and [K] cipher — a mismatch yields an empty intersection, not
    an error. This optional one-round handshake exchanges a fingerprint
    of the shared configuration and fails loudly on mismatch. Run it on
    a fresh channel before the protocol when the configs were not
    distributed out of band.

    The fingerprint commits to: wire-format version, group modulus,
    hash domain, cipher choice. It deliberately excludes [workers]
    (local parallelism does not affect the protocol). *)

(** [fingerprint cfg] is a 32-byte digest of the protocol-relevant
    configuration. *)
val fingerprint : Protocol.config -> string

(** [initiate cfg ep] sends this side's fingerprint, waits for the
    peer's, and checks.
    @raise Failure on mismatch. *)
val initiate : Protocol.config -> Wire.Channel.endpoint -> unit

(** [respond cfg ep] is the passive side. @raise Failure on mismatch. *)
val respond : Protocol.config -> Wire.Channel.endpoint -> unit
