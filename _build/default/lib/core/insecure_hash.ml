module Message = Wire.Message
module Channel = Wire.Channel

type receiver_report = { intersection : string list; v_s_count : int }

let tag_x_s = "insecure_hash/X_S"
let hash cfg v = Protocol.encode cfg (Crypto.Hash_to_group.hash_value cfg.Protocol.group ~domain:cfg.Protocol.domain v)

let sender cfg ~values ep =
  let x_s =
    Protocol.dedup values |> List.map (hash cfg) |> Protocol.sort_encoded
  in
  Channel.send ep (Message.make ~tag:tag_x_s (Message.Elements x_s))

let receiver cfg ~values ep =
  let x_s = Protocol.elements_of (Protocol.recv_tagged ep tag_x_s) in
  let set = List.fold_left (fun acc x -> Sset.add x acc) Sset.empty x_s in
  let intersection =
    Protocol.dedup values |> List.filter (fun v -> Sset.mem (hash cfg v) set)
  in
  { intersection; v_s_count = List.length x_s }

let run cfg ~sender_values ~receiver_values () =
  Wire.Runner.run
    ~sender:(fun ep -> sender cfg ~values:sender_values ep)
    ~receiver:(fun ep -> receiver cfg ~values:receiver_values ep)

let dictionary_attack cfg ~transcript ~candidates =
  (* Collect every element-sized string the curious party saw, then test
     candidate hashes against them. Against §3.1 the observed X_S values
     are unsalted hashes, so candidates in V_S match; against the secure
     protocol everything observed is encrypted under a key the attacker
     does not hold, so only coincidences (none) match. *)
  let observed =
    List.fold_left
      (fun acc (m : Message.t) ->
        match m.payload with
        | Message.Elements es -> List.fold_left (fun a e -> Sset.add e a) acc es
        | Message.Element_pairs ps ->
            List.fold_left (fun a (x, y) -> Sset.add x (Sset.add y a)) acc ps
        | Message.Element_triples ts ->
            List.fold_left (fun a (x, y, z) -> Sset.add x (Sset.add y (Sset.add z a))) acc ts
        | Message.Ciphertext_pairs ps -> List.fold_left (fun a (x, _) -> Sset.add x a) acc ps)
      Sset.empty transcript
  in
  List.filter (fun v -> Sset.mem (hash cfg v) observed) (Protocol.dedup candidates)
