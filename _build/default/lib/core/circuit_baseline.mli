(** The Yao-circuit baseline of Appendix A.

    The paper compares its protocols against secure-circuit evaluation
    ([33, 37]) analytically: gate counts for a brute-force and a
    partitioning intersection circuit, oblivious-transfer costs from
    [36], and the resulting computation/communication tables. This module
    reimplements those formulas and regenerates every number in
    Appendix A (checked against the paper in the test suite). *)

(** {1 The paper's constants (A.1)} *)

val w : int
(** input value width in bits (32) *)

val k0 : int
(** circuit-gate key size in bits (64) *)

val k1 : int
(** oblivious-transfer key size in bits (100) *)

val gate_equal : int
(** [Ge = 2w - 1]: gates to compare two w-bit values for equality *)

val gate_less : int
(** [Gl = 5w - 3]: gates for an ordered comparison *)

val ot_cost_in_ce : float
(** amortized oblivious-transfer computation, in units of [Ce]
    ([1/l + 2^l/(l*1000)] at the optimal [l = 8], i.e. 0.157) *)

val ot_comm_bits : float
(** amortized oblivious-transfer communication per input bit,
    [2^l/l * k1 = 3200] bits *)

(** {1 Gate counts (A.1.2)} *)

(** [brute_force_gates n] is the lower bound [n^2 * Ge]. *)
val brute_force_gates : float -> float

(** [partitioning_gates ~n ~m] is the recurrence lower bound
    [f(n) >= (m^2/(m-1) Gl + Ge)(n^(log_m(2m-1)) - 1)]. *)
val partitioning_gates : n:float -> m:int -> float

(** [optimal_m n] minimizes {!partitioning_gates} over integer [m >= 2];
    returns [(m, f(n))]. The paper's values: n=10^4 -> 11, 10^6 -> 19,
    10^8 -> 32. *)
val optimal_m : float -> int * float

(** {1 The Appendix A.2 tables} *)

type computation_row = {
  n : float;
  circuit_input_ce : float;  (** OT coding cost, units of Ce (= 5n) *)
  circuit_eval_cr : float;  (** evaluation cost, units of Cr (= 2 f(n)) *)
  ours_ce : float;  (** our intersection protocol (= 4n) *)
}

val computation_table : float list -> computation_row list

type communication_row = {
  n : float;
  circuit_input_bits : float;  (** OT communication (~ 10^5 n) *)
  circuit_tables_bits : float;  (** gate tables (= 4 k0 f(n) = 256 f(n)) *)
  ours_bits : float;  (** (|V_S| + 2|V_R|) k = 3nk *)
}

(** [communication_table ?k ns] with the paper's [k = 1024] by default. *)
val communication_table : ?k:int -> float list -> communication_row list

(** [transfer_seconds bits] on the paper's T1 line. *)
val transfer_seconds : float -> float
