module Message = Wire.Message
module Group = Crypto.Group
module Commutative = Crypto.Commutative

let random_encoded cfg ~rng n =
  List.init n (fun _ -> Protocol.encode cfg (Group.random_element cfg.Protocol.group ~rng))

let intersection_sender_view cfg ~rng ~v_r_count =
  (* "The simulator generates |V_R| random values z_i ∈r Dom F and
     orders them lexicographically." *)
  [
    Message.make ~tag:"intersection/Y_R"
      (Message.Elements (Protocol.sort_encoded (random_encoded cfg ~rng v_r_count)));
  ]

let intersection_receiver_view cfg ~rng ~y_r ~intersection ~v_s_count =
  let tilde_e_s = Commutative.gen_key cfg.Protocol.group ~rng in
  let ops = Protocol.new_ops () in
  (* Step 4(a): f_~eS(h(v)) for v in the intersection, plus |V_S - V_R|
     uniform elements. *)
  let known =
    Protocol.hash_values cfg ops intersection
    |> List.map (fun (_, h) ->
           Protocol.encode cfg (Commutative.encrypt cfg.Protocol.group tilde_e_s h))
  in
  let padding = random_encoded cfg ~rng (v_s_count - List.length intersection) in
  let y_s = Protocol.sort_encoded (known @ padding) in
  (* Step 4(b): encrypt each (public) y R sent, preserving order. *)
  let y_r_enc =
    List.map
      (fun y ->
        Protocol.encode cfg
          (Commutative.encrypt cfg.Protocol.group tilde_e_s (Protocol.decode cfg y)))
      y_r
  in
  [
    Message.make ~tag:"intersection/Y_S" (Message.Elements y_s);
    Message.make ~tag:"intersection/Y_R_enc" (Message.Elements y_r_enc);
  ]

let intersection_size_receiver_view cfg ~rng ?receiver_key ~v_r_count ~v_s_count ~size () =
  if size > Stdlib.min v_r_count v_s_count then
    invalid_arg "Simulator.intersection_size_receiver_view: size too large"
  else begin
    let tilde_e_r =
      match receiver_key with
      | Some k -> k
      | None -> Commutative.gen_key cfg.Protocol.group ~rng
    in
    (* n = |V_S ∪ V_R| random stand-ins for f_eS(h(v)); the first m are
       Y_S, and Z_R is f_~eR of the |V_R| of them that start at
       t = |V_S| - size (so exactly [size] are shared with Y_S). *)
    let t = v_s_count - size in
    let n = v_s_count + v_r_count - size in
    let y = Array.of_list (random_encoded cfg ~rng n) in
    let y_s = Protocol.sort_encoded (Array.to_list (Array.sub y 0 v_s_count)) in
    let z_r =
      Array.sub y t v_r_count |> Array.to_list
      |> List.map (fun s ->
             Protocol.encode cfg
               (Commutative.encrypt cfg.Protocol.group tilde_e_r (Protocol.decode cfg s)))
      |> Protocol.sort_encoded
    in
    [
      Message.make ~tag:"intersection_size/Y_S" (Message.Elements y_s);
      Message.make ~tag:"intersection_size/Z_R" (Message.Elements z_r);
    ]
  end
