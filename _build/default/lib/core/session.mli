(** Multi-query sessions: a {!Handshake} followed by any number of
    protocol runs over a single connection.

    §2.3 frames the multi-query setting (and its risks); this layer
    provides the mechanics: both parties verify configuration agreement
    once, then execute an agreed sequence of operations over the same
    channel, with cumulative traffic accounting. Pair it with {!Audit}
    to police what the sequence may reveal.

    Each operation is one of the paper's protocols; the parties must
    execute the same operation list in the same order (the protocol
    message tags catch divergence as a protocol error). *)

type op =
  | Intersect of { s_values : string list; r_values : string list }
  | Intersect_size of { s_values : string list; r_values : string list }
  | Equijoin of { s_records : (string * string) list; r_values : string list }
  | Equijoin_size of { s_values : string list; r_values : string list }

type result =
  | Values of string list
  | Size of int
  | Matches of (string * string list) list

type report = {
  results : result list;  (** one per op, in order — the receiver's outputs *)
  total_bytes : int;
  ops : Protocol.ops;  (** both parties combined *)
}

(** [run cfg ~seed ops ()] handshakes and executes [ops] sequentially
    over one channel.
    @raise Failure on handshake or protocol errors. *)
val run : Protocol.config -> ?seed:string -> op list -> unit -> report
