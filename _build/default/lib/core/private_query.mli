(** A small planner: run the paper's operations directly over
    {!Minidb.Table} relations.

    This layer does what §2.2's problem statement describes — "given a
    database query Q spanning the tables in D_R and D_S, compute the
    answer to Q and return it to R" — for the four supported operation
    shapes, mapping attribute values to protocol strings and back to
    typed values, and optionally consulting an {!Audit} policy (§2.3)
    on the sender's side before participating. *)

type spec =
  | Intersect of { attr : string }
      (** [V_S ∩ V_R] over a common attribute name *)
  | Intersect_size of { attr : string }
  | Equijoin of { attr : string; payload : string list }
      (** [ext(v)] carries the named sender columns *)
  | Equijoin_size of { attr : string }

type rows = (Minidb.Value.t * Minidb.Value.t list list) list
(** per joining value: the sender's rows, restricted to the payload
    columns, as typed values *)

type answer =
  | Values of Minidb.Value.t list
  | Size of int
  | Rows of rows

type outcome = {
  answer : answer;
  v_s : int;  (** |V_S| as learned by R *)
  v_r : int;  (** |V_R| as learned by S *)
  total_bytes : int;
  ops : Protocol.ops;
}

(** [run cfg spec ~sender ~receiver ()] executes the query; [sender] and
    [receiver] are the two private tables. With [?audit], the sender
    checks the receiver's query against the policy first and refuses
    with [Error reason] if denied (the result-size rules are applied to
    what the receiver would learn before it is "released" — in this
    in-process setting, before the run).
    @raise Not_found if a named column is absent from its table. *)
val run :
  Protocol.config ->
  ?seed:string ->
  ?audit:Audit.t ->
  ?peer:string ->
  spec ->
  sender:Minidb.Table.t ->
  receiver:Minidb.Table.t ->
  unit ->
  (outcome, string) result

(** [plaintext spec ~sender ~receiver] evaluates the same query with the
    reference engine (test oracle). *)
val plaintext : spec -> sender:Minidb.Table.t -> receiver:Minidb.Table.t -> answer
