(* String sets and multisets used throughout the protocol modules. *)

include Set.Make (String)

(* Multisets as count maps. *)
module Multi = struct
  module M = Map.Make (String)

  type t = int M.t

  let of_list l =
    List.fold_left (fun m s -> M.update s (fun n -> Some (1 + Option.value ~default:0 n)) m) M.empty l

  let count m s = Option.value ~default:0 (M.find_opt s m)

  (* Size of the multiset join: sum over distinct elements of the product
     of multiplicities. *)
  let join_size a b = M.fold (fun s na acc -> acc + (na * count b s)) a 0

  let distinct m = M.bindings m |> List.map fst
  let total m = M.fold (fun _ n acc -> acc + n) m 0
end
