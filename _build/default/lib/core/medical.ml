type counts = {
  pattern_and_reaction : int;
  pattern_no_reaction : int;
  no_pattern_and_reaction : int;
  no_pattern_no_reaction : int;
}

type report = { counts : counts; total_bytes : int; ops : Protocol.ops }

(* Figure 2 is the 2x2 instance of the private GROUP BY: R's keys
   partitioned by [pattern], S's drug-takers partitioned by [reaction],
   one third-party intersection-size protocol per cell. *)
let run cfg ?(seed = "medical") ~t_r ~t_s () =
  let open Minidb in
  let g =
    Group_by.run cfg ~seed ~t_r ~r_key:"person_id" ~r_class:"pattern" ~t_s
      ~s_key:"person_id" ~s_class:"reaction"
      ~s_filter:(fun t row -> Value.equal (Table.get t row "drug") (Value.Bool true))
      ()
  in
  let cell p r =
    match List.assoc_opt (Value.Bool p, Value.Bool r) g.Group_by.cells with
    | Some n -> n
    | None -> 0
  in
  {
    counts =
      {
        pattern_and_reaction = cell true true;
        pattern_no_reaction = cell true false;
        no_pattern_and_reaction = cell false true;
        no_pattern_no_reaction = cell false false;
      };
    total_bytes = g.Group_by.total_bytes;
    ops = g.Group_by.ops;
  }

let plaintext_counts ~t_r ~t_s =
  let open Minidb in
  let joined = Relop.equijoin t_r t_s ~on:("person_id", "person_id") in
  let takers = Relop.select_eq joined "r.drug" (Value.Bool true) in
  let groups = Relop.group_count takers [ "l.pattern"; "r.reaction" ] in
  let cell p r =
    match
      List.assoc_opt [ Value.Bool p; Value.Bool r ]
        (List.map (fun (k, n) -> (k, n)) groups)
    with
    | Some n -> n
    | None -> 0
  in
  {
    pattern_and_reaction = cell true true;
    pattern_no_reaction = cell true false;
    no_pattern_and_reaction = cell false true;
    no_pattern_no_reaction = cell false false;
  }

let estimate (p : Cost_model.params) ~v_r ~v_s =
  let encryptions = 2. *. float_of_int (v_r + v_s) *. 2. in
  let comm_bits = 2. *. float_of_int ((v_r + v_s) * 2 * p.Cost_model.k_bits) in
  {
    Cost_model.encryptions;
    comp_seconds =
      encryptions *. p.Cost_model.ce_seconds /. float_of_int p.Cost_model.processors;
    comm_bits;
    comm_seconds = comm_bits /. p.Cost_model.bandwidth_bits_per_s;
  }
