(** The equijoin protocol (§4.3).

    [R] learns [V_S ∩ V_R], [ext(v)] for every [v] in the intersection,
    and [|V_S|]; [S] learns [|V_R|] (Statement 4). [ext(v)] — all of
    [S]'s records joining on [v] — travels encrypted under
    [kappa(v) = f_e'S(h(v))], which [R] can only reconstruct for its own
    values (§4.1).

    {v
    R -> S   equijoin/Y_R    f_eR(h(V_R)), sorted
    S -> R   equijoin/pairs  (f_eS(y), f_e'S(y)) for y in Y_R, Y_R order
    S -> R   equijoin/ext    (f_eS(h(v)), K(kappa(v), ext v)), sorted
    v}

    Per §3.2.2 (footnote 2), [S] embeds [v] itself inside [ext(v)] so
    [R] can detect cross-party hash collisions; any detected collision is
    reported rather than silently joined. *)

type sender_report = { v_r_count : int; ops : Protocol.ops }

type receiver_report = {
  matches : (string * string list) list;
      (** [(v, records of S joining on v)] for [v] in [V_S ∩ V_R],
          sorted by [v] *)
  v_s_count : int;
  collisions : string list;
      (** values whose embedded identity check failed (hash collision
          between [V_S] and [V_R]; astronomically unlikely) *)
  ops : Protocol.ops;
}

(** [sender cfg ~rng ~records ep]: [records] pairs each value with one
    record payload; multiple records may share a value ([ext(v)] is the
    list of all of them).
    @raise Invalid_argument under [Mul_cipher] if some [ext(v)] exceeds
    the one-group-element payload limit. *)
val sender :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  records:(string * string) list ->
  Wire.Channel.endpoint ->
  sender_report

val receiver :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  Protocol.config ->
  ?seed:string ->
  sender_records:(string * string) list ->
  receiver_values:string list ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome
