(** Private two-table GROUP BY — the generalization of Figure 2.

    The paper's medical application is the 2x2 instance of a general
    pattern: party R partitions its keys by a categorical attribute,
    party S partitions its (optionally filtered) keys by another, and a
    researcher T learns the full contingency table

    {v
    select r.class, s.class, count()
    from T_R r, T_S s
    where r.key = s.key [and s_filter]
    group by r.class, s.class
    v}

    via one third-party intersection-size protocol per cell pair
    (|classes_R| x |classes_S| subprotocols). T learns only the counts;
    R and S learn only each other's partition {e sizes} (the per-class
    |V| values, the same "additional information I" as in §2.2); no
    party learns anything about individual keys.

    This is also a direct answer to the paper's §7 future-work question
    about protocols for aggregations. *)

type report = {
  cells : ((Minidb.Value.t * Minidb.Value.t) * int) list;
      (** count per (R class value, S class value), sorted; what T
          learns *)
  r_class_sizes : (Minidb.Value.t * int) list;  (** leaked to S *)
  s_class_sizes : (Minidb.Value.t * int) list;  (** leaked to R *)
  total_bytes : int;
  ops : Protocol.ops;
}

(** [run cfg ~t_r ~r_key ~r_class ~t_s ~s_key ~s_class ?s_filter ()]
    executes the protocol. [r_key]/[s_key] are the join columns;
    [r_class]/[s_class] the grouping columns. Rows with [Null] in the
    key or class are excluded (as in SQL joins/grouping semantics here).
    @raise Not_found if a named column is absent. *)
val run :
  Protocol.config ->
  ?seed:string ->
  t_r:Minidb.Table.t ->
  r_key:string ->
  r_class:string ->
  t_s:Minidb.Table.t ->
  s_key:string ->
  s_class:string ->
  ?s_filter:(Minidb.Table.t -> Minidb.Table.row -> bool) ->
  unit ->
  report

(** [plaintext ...] computes the same table with the reference engine
    (test oracle). *)
val plaintext :
  t_r:Minidb.Table.t ->
  r_key:string ->
  r_class:string ->
  t_s:Minidb.Table.t ->
  s_key:string ->
  s_class:string ->
  ?s_filter:(Minidb.Table.t -> Minidb.Table.row -> bool) ->
  unit ->
  ((Minidb.Value.t * Minidb.Value.t) * int) list
