(** The equijoin size protocol (§5.2).

    The intersection size protocol run on {e multisets}: duplicates in
    [T_S.A] and [T_R.A] are preserved, and in step 6 [R] computes
    [|T_S >< T_R| = sum_v mult_S(v) * mult_R(v)] instead of the
    intersection size.

    This protocol deliberately trades leakage for functionality (§5.2):
    [S] learns the duplicate distribution of [T_R.A], [R] learns the
    duplicate distribution of [T_S.A], and [R] additionally learns
    [|V_R(d) ∩ V_S(d')|] for every pair of duplicate classes — in the
    extreme where all duplicate counts are distinct, that identifies
    [V_R ∩ V_S] exactly. {!Leakage} quantifies this, and the tests check
    the protocol reveals exactly that much. *)

type sender_report = {
  v_r_multiset_size : int;  (** |T_R.A| with duplicates *)
  r_duplicate_distribution : (int * int) list;
      (** [(d, number of V_R values with d duplicates)] — what S learns *)
  ops : Protocol.ops;
}

type receiver_report = {
  join_size : int;  (** |T_S >< T_R| *)
  v_s_multiset_size : int;
  s_duplicate_distribution : (int * int) list;  (** what R learns *)
  class_intersections : ((int * int) * int) list;
      (** [((d, d'), |V_R(d) ∩ V_S(d')|)] — the §5.2 leakage, as
          reconstructed by R from its view *)
  ops : Protocol.ops;
}

val sender :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  sender_report

val receiver :
  Protocol.config ->
  rng:Bignum.Nat_rand.rng ->
  values:string list ->
  Wire.Channel.endpoint ->
  receiver_report

val run :
  Protocol.config ->
  ?seed:string ->
  sender_values:string list ->
  receiver_values:string list ->
  unit ->
  (sender_report, receiver_report) Wire.Runner.outcome
