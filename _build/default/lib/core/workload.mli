(** Synthetic workload generators.

    The paper's evaluation uses scale parameters, not public datasets
    (documents of ~1000 significant words; patient tables of ~10^6 ids),
    so reproduction needs generators exposing the same knobs. Everything
    is deterministic in the [seed]. *)

(** [value_sets ~seed ~n_s ~n_r ~overlap] is [(V_S, V_R)] with
    [|V_S| = n_s], [|V_R| = n_r] and [|V_S ∩ V_R| = overlap].
    @raise Invalid_argument if [overlap > min n_s n_r]. *)
val value_sets : seed:string -> n_s:int -> n_r:int -> overlap:int -> string list * string list

(** [multiset ~seed ~values ~max_dup] replicates each value a
    deterministic pseudorandom number of times in [[1, max_dup]]. *)
val multiset : seed:string -> values:string list -> max_dup:int -> string list

(** [records_for ~seed ~values ~records_per_value ~record_bytes] attaches
    synthetic record payloads to each value (equijoin sender input). *)
val records_for :
  seed:string ->
  values:string list ->
  records_per_value:int ->
  record_bytes:int ->
  (string * string) list

(** {1 Application 1: document corpora (§6.2.1)} *)

(** A document is its set of significant words (already preprocessed in
    the paper's abstraction). *)
type document = { doc_id : string; words : string list }

(** [documents ~seed ~n_docs ~words_per_doc ~vocabulary ~prefix]
    generates documents by sampling [words_per_doc] distinct words from a
    [vocabulary]-word universe. Smaller vocabularies produce higher
    pairwise overlap. *)
val documents :
  seed:string -> n_docs:int -> words_per_doc:int -> vocabulary:int -> prefix:string -> document list

(** [plant_similar_pair ~seed docs_r docs_s ~fraction_shared] rewrites the
    first document of each collection so they share
    [fraction_shared * words_per_doc] words — guaranteeing at least one
    above-threshold pair for the demo. *)
val plant_similar_pair :
  seed:string -> document list -> document list -> fraction_shared:float -> document list * document list

(** {1 Application 2: medical tables (Figure 2, §6.2.2)} *)

(** Ground-truth cell counts for the 2x2 study table. *)
type medical_truth = {
  pattern_and_reaction : int;
  pattern_no_reaction : int;
  no_pattern_and_reaction : int;
  no_pattern_no_reaction : int;
}

(** [medical_tables ~seed ~n_patients ~p_pattern ~p_drug ~p_reaction]
    builds [T_R(person_id, pattern)] and [T_S(person_id, drug,
    reaction)] over a shared id universe, plus the ground truth for
    patients who took the drug. Reactions only occur for drug takers;
    [p_reaction] is boosted for pattern carriers so the study has signal. *)
val medical_tables :
  seed:string ->
  n_patients:int ->
  p_pattern:float ->
  p_drug:float ->
  p_reaction:float ->
  Minidb.Table.t * Minidb.Table.t * medical_truth
