(** Application 1: selective document sharing (§1.1, §6.2.1).

    [R] and [S] each hold a document collection; they run the
    intersection size protocol on every pair [(d_R, d_S)] of word sets
    and compute a similarity [f(|d_R ∩ d_S|, |d_R|, |d_S|)], revealing
    only the matching pairs' overlap sizes. The paper notes this also
    reveals to [R], per document, which of [S]'s documents matched and
    the overlap size — the price of the pairwise-protocol design. *)

type pair_result = {
  r_doc : string;
  s_doc : string;
  overlap : int;  (** |d_R ∩ d_S| *)
  r_size : int;
  s_size : int;
  similarity : float;
}

type report = {
  matches : pair_result list;  (** pairs with similarity > threshold *)
  all_pairs : pair_result list;  (** every pair (what R actually learns) *)
  total_bytes : int;
  ops : Protocol.ops;  (** both parties' operations combined *)
}

(** The paper's example similarity: [|∩| / (|d_R| + |d_S|)]. *)
val similarity_default : overlap:int -> r_size:int -> s_size:int -> float

(** [run cfg ~docs_r ~docs_s ~threshold ()] executes the §6.2.1
    implementation: one intersection-size protocol per document pair. *)
val run :
  Protocol.config ->
  ?seed:string ->
  ?similarity:(overlap:int -> r_size:int -> s_size:int -> float) ->
  docs_r:Workload.document list ->
  docs_s:Workload.document list ->
  threshold:float ->
  unit ->
  report

(** [plaintext_matches ~docs_r ~docs_s ~threshold] is the ground truth
    computed with no privacy (test oracle). *)
val plaintext_matches :
  ?similarity:(overlap:int -> r_size:int -> s_size:int -> float) ->
  docs_r:Workload.document list ->
  docs_s:Workload.document list ->
  threshold:float ->
  unit ->
  (string * string) list

(** [estimate params ~n_r ~n_s ~d_r ~d_s] applies the §6.2.1 cost
    formulas: computation [|D_R||D_S|(|d_R|+|d_S|) 2Ce], communication
    [|D_R||D_S|(|d_R|+2|d_S|) k]. *)
val estimate :
  Cost_model.params -> n_r:int -> n_s:int -> d_r:int -> d_s:int -> Cost_model.estimate
