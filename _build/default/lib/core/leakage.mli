(** Exact characterization of the §5.2 equijoin-size leakage.

    Beyond [|V_R|], [|V_S|] and the join size, the equijoin size
    protocol reveals: to each party, the other side's duplicate
    distribution; and to [R], for every pair of duplicate classes
    [(d, d')], the count [|V_R(d) ∩ V_S(d')|]. When all duplicate counts
    are distinct, this pins down [V_R ∩ V_S] exactly; when all are equal,
    it degenerates to just the intersection size.

    This module computes the predicted leakage from the {e plaintext}
    inputs; the tests check that the protocol's receiver report matches
    the prediction and contains nothing more. *)

(** [duplicate_classes values] partitions a multiset by multiplicity:
    [(d, set of values occurring d times)], sorted by [d]. *)
val duplicate_classes : string list -> (int * string list) list

(** [class_intersections ~r_values ~s_values] is the §5.2 leakage matrix
    [((d, d'), |V_R(d) ∩ V_S(d')|)], including only nonzero cells,
    sorted. *)
val class_intersections :
  r_values:string list -> s_values:string list -> ((int * int) * int) list

(** [identified_values ~r_values ~s_values] is the subset of
    [V_R ∩ V_S] that [R] can {e identify} from the leakage: the values
    in intersection cells where the [(d, d')] class pair contains exactly
    one shared value. *)
val identified_values : r_values:string list -> s_values:string list -> string list

(** [join_size ~r_values ~s_values] is the plaintext ground truth
    [sum_v mult_R(v) * mult_S(v)]. *)
val join_size : r_values:string list -> s_values:string list -> int
