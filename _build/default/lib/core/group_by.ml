module Value = Minidb.Value
module Table = Minidb.Table

type report = {
  cells : ((Value.t * Value.t) * int) list;
  r_class_sizes : (Value.t * int) list;
  s_class_sizes : (Value.t * int) list;
  total_bytes : int;
  ops : Protocol.ops;
}

(* Partition a table's key column by a class column: class value ->
   sorted distinct key encodings. Null keys and null classes drop out. *)
let partition t ~key ~cls ~filter =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun row ->
      if filter t row then begin
        let k = Table.get t row key in
        let c = Table.get t row cls in
        if k <> Value.Null && c <> Value.Null then begin
          let ck = Value.key c in
          match Hashtbl.find_opt tbl ck with
          | Some (c0, keys) -> Hashtbl.replace tbl ck (c0, Value.key k :: keys)
          | None -> Hashtbl.add tbl ck (c, [ Value.key k ])
        end
      end)
    (Table.rows t);
  Hashtbl.fold (fun _ (c, keys) acc -> (c, List.sort_uniq String.compare keys) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let run cfg ?(seed = "group-by") ~t_r ~r_key ~r_class ~t_s ~s_key ~s_class
    ?(s_filter = fun _ _ -> true) () =
  let r_parts = partition t_r ~key:r_key ~cls:r_class ~filter:(fun _ _ -> true) in
  let s_parts = partition t_s ~key:s_key ~cls:s_class ~filter:s_filter in
  let total_bytes = ref 0 in
  let ops = ref (Protocol.new_ops ()) in
  let cells =
    List.concat_map
      (fun (rc, r_keys) ->
        List.map
          (fun (sc, s_keys) ->
            let cell_seed =
              Printf.sprintf "%s/%s/%s" seed (Value.key rc) (Value.key sc)
            in
            let result =
              Intersection_size.run_to_third_party cfg ~seed:cell_seed
                ~sender_values:s_keys ~receiver_values:r_keys ()
            in
            total_bytes := !total_bytes + result.Intersection_size.total_bytes;
            ops := Protocol.total !ops result.Intersection_size.ops;
            ((rc, sc), result.Intersection_size.size))
          s_parts)
      r_parts
  in
  {
    cells = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) cells;
    r_class_sizes = List.map (fun (c, ks) -> (c, List.length ks)) r_parts;
    s_class_sizes = List.map (fun (c, ks) -> (c, List.length ks)) s_parts;
    total_bytes = !total_bytes;
    ops = !ops;
  }

let plaintext ~t_r ~r_key ~r_class ~t_s ~s_key ~s_class ?(s_filter = fun _ _ -> true) () =
  let r_parts = partition t_r ~key:r_key ~cls:r_class ~filter:(fun _ _ -> true) in
  let s_parts = partition t_s ~key:s_key ~cls:s_class ~filter:s_filter in
  List.concat_map
    (fun (rc, r_keys) ->
      List.map
        (fun (sc, s_keys) ->
          let s_set = List.fold_left (fun acc k -> Sset.add k acc) Sset.empty s_keys in
          ((rc, sc), List.length (List.filter (fun k -> Sset.mem k s_set) r_keys)))
        s_parts)
    r_parts
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
