(** Private execution of SQL queries spanning two private tables — the
    full §2.2 problem statement: "given a database query Q spanning the
    tables in D_R and D_S, compute the answer to Q and return it to R".

    [run] parses a query over the two named tables, recognizes which of
    the paper's protocols answers it, and executes that protocol; the
    answer comes back as an ordinary {!Minidb.Table}. Predicates local
    to one table are applied by that table's owner before the protocol
    (each party may filter its own rows freely); cross-table predicates
    must be equalities and together form the (possibly composite,
    multi-column) join key. Composite keys work for every shape except
    GROUP BY.

    Recognized shapes (R = receiver table, S = sender table):

    {v
    SELECT r.a FROM ... WHERE r.a = s.b             intersection (§3)
    SELECT COUNT( * ) FROM ... WHERE r.a = s.b        equijoin size (§5.2)
    SELECT SUM(s.x) FROM ... WHERE r.a = s.b        private sum (§7 ext.)
    SELECT s.x, s.y FROM ... WHERE r.a = s.b        equijoin (§4)
    SELECT r.c, s.d, COUNT( * ) FROM ...
      WHERE r.a = s.b GROUP BY r.c, s.d             group-by (Fig. 2 gen.)
    v}

    Semantics note: the receiver side contributes its {e set} of join
    values (the paper's [V_R]); rows of [R] beyond the first per value do
    not multiply intersection/equijoin results (COUNT and SUM shapes use
    multiset semantics via the equijoin-size and aggregation protocols
    respectively, with SUM counting each S-row once per distinct R
    match, i.e. R's keys deduplicated). *)

type outcome = {
  table : Minidb.Table.t;  (** the answer, as a relation *)
  total_bytes : int;
  ops : Protocol.ops;
}

(** [run cfg ~sql ~sender:(s_name, t_s) ~receiver:(r_name, t_r) ()]
    parses and privately executes [sql]. Table names in the query must
    be exactly [s_name] and [r_name] (aliases allowed). Returns
    [Error reason] for parse errors and unsupported shapes. *)
val run :
  Protocol.config ->
  ?seed:string ->
  sql:string ->
  sender:string * Minidb.Table.t ->
  receiver:string * Minidb.Table.t ->
  unit ->
  (outcome, string) result

(** [explain ~sql ~sender_name ~receiver_name] names the protocol [run]
    would use, without executing (or an error). Unqualified column
    references resolve only when the tables are supplied. *)
val explain :
  ?sender:Minidb.Table.t ->
  ?receiver:Minidb.Table.t ->
  sql:string ->
  sender_name:string ->
  receiver_name:string ->
  unit ->
  (string, string) result
