(** 1-out-of-2 oblivious transfer, semi-honest (Bellare–Micali style),
    over the same [QR_p] groups as the main protocols.

    The sender holds messages [m0, m1]; the receiver holds a choice bit
    and learns exactly [m_choice]; the sender learns nothing about the
    choice. Used by {!Yao_psi} to deliver the evaluator's input-wire
    labels — the "coding the input" phase whose cost Appendix A models
    as [Cot ~ 0.157 Ce] per transferred bit.

    Three-message flow per batch (all transfers of a batch share the
    sender's randomness setup, as in the amortized protocol of [36]):

    {v
    S -> R   ot/setup      C (a random group element)
    R -> S   ot/keys       PK_0 per transfer (PK_choice = g^k,
                           PK_{1-choice} = C / g^k)
    S -> R   ot/payload    g^r, m_0 ^ H(PK_0^r), m_1 ^ H(PK_1^r)
    v} *)

(** [sender g ~rng ~pairs ep] transfers [fst pairs.(i)] or
    [snd pairs.(i)] according to the receiver's [i]-th choice bit.
    Message pairs must be equal-length strings per pair. *)
val sender :
  Crypto.Group.t ->
  rng:Bignum.Nat_rand.rng ->
  pairs:(string * string) array ->
  Wire.Channel.endpoint ->
  unit

(** [receiver g ~rng ~choices ep] is the received message for each
    choice bit. *)
val receiver :
  Crypto.Group.t ->
  rng:Bignum.Nat_rand.rng ->
  choices:bool array ->
  Wire.Channel.endpoint ->
  string array

(** [run g ~seed ~pairs ~choices ()] wires both ends together
    (testing convenience). *)
val run :
  Crypto.Group.t ->
  ?seed:string ->
  pairs:(string * string) array ->
  choices:bool array ->
  unit ->
  (unit, string array) Wire.Runner.outcome
