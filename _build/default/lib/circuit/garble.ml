module Buf = Wire.Buf

type label = string

let perm_bit (l : label) = Char.code l.[String.length l - 1] land 1 = 1

type garbled = {
  circuit : Circuit.t;
  label_bytes : int;
  wire_labels : (label * label) array; (* (false, true) per wire *)
  tables : string array array; (* per gate: 4 rows *)
}

type evaluator_view = {
  inputs_a : int;
  inputs_b : int;
  num_wires : int;
  (* wiring only -- gate semantics stay hidden in the tables *)
  gate_a : int array;
  gate_b : int array;
  gate_out : int array;
  v_tables : string array array;
  v_label_bytes : int;
  outputs : int list;
  output_perm_false : bool list; (* permute bit of each output's FALSE label *)
}

(* KDF: H(la || lb || gate index), truncated to the label size. *)
let kdf ~label_bytes la lb idx =
  let h = Crypto.Sha256.digest_concat [ la; lb; string_of_int idx ] in
  String.sub h 0 label_bytes

let xor a b = String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let garble ?(label_bytes = 8) ~seed (c : Circuit.t) =
  if label_bytes < 4 || label_bytes > 32 then invalid_arg "Garble.garble: label_bytes in [4,32]"
  else begin
    let drbg = Crypto.Drbg.create ~seed:("garble:" ^ seed) in
    let fresh_pair () =
      let l0 = Crypto.Drbg.generate drbg label_bytes in
      let l1 = Crypto.Drbg.generate drbg label_bytes in
      (* Force complementary permute bits. *)
      let fix l bit =
        let last = Char.code l.[label_bytes - 1] in
        let last = if bit then last lor 1 else last land lnot 1 in
        String.init label_bytes (fun i -> if i = label_bytes - 1 then Char.chr (last land 0xff) else l.[i])
      in
      let p0 = perm_bit l0 in
      (fix l0 p0, fix l1 (not p0))
    in
    let wire_labels = Array.init c.Circuit.num_wires (fun _ -> fresh_pair ()) in
    let tables =
      Array.mapi
        (fun idx (g : Circuit.gate) ->
          let rows = Array.make 4 "" in
          for va = 0 to 1 do
            for vb = 0 to 1 do
              let la = (fun (l0, l1) -> if va = 1 then l1 else l0) wire_labels.(g.Circuit.a) in
              let lb = (fun (l0, l1) -> if vb = 1 then l1 else l0) wire_labels.(g.Circuit.b) in
              let out_bit = g.Circuit.table.((2 * va) + vb) in
              let lout =
                (fun (l0, l1) -> if out_bit then l1 else l0) wire_labels.(g.Circuit.out)
              in
              let row = (2 * if perm_bit la then 1 else 0) + if perm_bit lb then 1 else 0 in
              rows.(row) <- xor (kdf ~label_bytes la lb idx) lout
            done
          done;
          rows)
        c.Circuit.gates
    in
    { circuit = c; label_bytes; wire_labels; tables }
  end

let view g =
  {
    inputs_a = g.circuit.Circuit.inputs_a;
    inputs_b = g.circuit.Circuit.inputs_b;
    num_wires = g.circuit.Circuit.num_wires;
    gate_a = Array.map (fun (gt : Circuit.gate) -> gt.Circuit.a) g.circuit.Circuit.gates;
    gate_b = Array.map (fun (gt : Circuit.gate) -> gt.Circuit.b) g.circuit.Circuit.gates;
    gate_out = Array.map (fun (gt : Circuit.gate) -> gt.Circuit.out) g.circuit.Circuit.gates;
    v_tables = g.tables;
    v_label_bytes = g.label_bytes;
    outputs = g.circuit.Circuit.outputs;
    output_perm_false =
      List.map (fun w -> perm_bit (fst g.wire_labels.(w))) g.circuit.Circuit.outputs;
  }

let input_labels_a g bits =
  if Array.length bits <> g.circuit.Circuit.inputs_a then
    invalid_arg "Garble.input_labels_a: wrong input size"
  else
    Array.mapi (fun i bit -> (fun (l0, l1) -> if bit then l1 else l0) g.wire_labels.(i)) bits

let label_pairs_b g =
  Array.init g.circuit.Circuit.inputs_b (fun i ->
      g.wire_labels.(g.circuit.Circuit.inputs_a + i))

let evaluate v ~a_labels ~b_labels =
  if Array.length a_labels <> v.inputs_a || Array.length b_labels <> v.inputs_b then
    invalid_arg "Garble.evaluate: input label count mismatch"
  else begin
    let held = Array.make v.num_wires "" in
    Array.blit a_labels 0 held 0 v.inputs_a;
    Array.blit b_labels 0 held v.inputs_a v.inputs_b;
    Array.iteri
      (fun idx a_wire ->
        let la = held.(a_wire) and lb = held.(v.gate_b.(idx)) in
        if String.length la <> v.v_label_bytes || String.length lb <> v.v_label_bytes then
          failwith "Garble.evaluate: missing input label"
        else begin
          let row = (2 * if perm_bit la then 1 else 0) + if perm_bit lb then 1 else 0 in
          held.(v.gate_out.(idx)) <- xor (kdf ~label_bytes:v.v_label_bytes la lb idx) v.v_tables.(idx).(row)
        end)
      v.gate_a;
    List.map2
      (fun w p0 -> Bool.equal (perm_bit held.(w)) (not p0))
      v.outputs v.output_perm_false
  end

let table_bytes g = 4 * g.label_bytes * Array.length g.tables

(* ------------------------------------------------------------------ *)
(* Serialization of the evaluator's view                               *)
(* ------------------------------------------------------------------ *)

let encode_view v =
  let w = Buf.writer () in
  Buf.write_varint w v.inputs_a;
  Buf.write_varint w v.inputs_b;
  Buf.write_varint w v.num_wires;
  Buf.write_varint w v.v_label_bytes;
  Buf.write_varint w (Array.length v.gate_a);
  Array.iteri
    (fun i a ->
      Buf.write_varint w a;
      Buf.write_varint w v.gate_b.(i);
      Buf.write_varint w v.gate_out.(i);
      Array.iter (Buf.write_raw w) v.v_tables.(i))
    v.gate_a;
  Buf.write_varint w (List.length v.outputs);
  List.iter2
    (fun o p ->
      Buf.write_varint w o;
      Buf.write_u8 w (if p then 1 else 0))
    v.outputs v.output_perm_false;
  Buf.contents w

let decode_view s =
  let r = Buf.reader s in
  let inputs_a = Buf.read_varint r in
  let inputs_b = Buf.read_varint r in
  let num_wires = Buf.read_varint r in
  let v_label_bytes = Buf.read_varint r in
  let n_gates = Buf.read_varint r in
  let gate_a = Array.make n_gates 0 in
  let gate_b = Array.make n_gates 0 in
  let gate_out = Array.make n_gates 0 in
  let v_tables = Array.make n_gates [||] in
  for i = 0 to n_gates - 1 do
    gate_a.(i) <- Buf.read_varint r;
    gate_b.(i) <- Buf.read_varint r;
    gate_out.(i) <- Buf.read_varint r;
    let rows = Array.make 4 "" in
    for j = 0 to 3 do
      rows.(j) <- Buf.read_raw r v_label_bytes
    done;
    v_tables.(i) <- rows
  done;
  let n_out = Buf.read_varint r in
  let rec read_outputs i acc_o acc_p =
    if i = n_out then (List.rev acc_o, List.rev acc_p)
    else begin
      let o = Buf.read_varint r in
      let p = Buf.read_u8 r = 1 in
      read_outputs (i + 1) (o :: acc_o) (p :: acc_p)
    end
  in
  let outputs, output_perm_false = read_outputs 0 [] [] in
  Buf.expect_end r;
  {
    inputs_a;
    inputs_b;
    num_wires;
    gate_a;
    gate_b;
    gate_out;
    v_tables;
    v_label_bytes;
    outputs;
    output_perm_false;
  }
