(** Yao garbling with point-and-permute.

    The garbler assigns each wire two random labels (with complementary
    permute bits) and publishes, per gate, four ciphertexts of the
    output labels keyed by the input labels (SHA-256 as the KDF). The
    evaluator, holding exactly one label per input wire, decrypts
    exactly one row per gate and learns nothing but the output bits.

    Appendix A charges [4 k0] bits of communication per gate for these
    tables and two pseudorandom-function calls per gate for evaluation;
    {!table_bytes} and the evaluator implement precisely that, so the
    measured baseline in the bench matches the paper's model. *)

type label = string

(** The garbler's full view: secrets included. *)
type garbled

(** What the evaluator receives: tables + output permute bits, no label
    pairs. *)
type evaluator_view

(** [garble ?label_bytes ~seed c] garbles [c] deterministically from
    [seed]. [label_bytes] defaults to 8 (the paper's [k0 = 64] bits). *)
val garble : ?label_bytes:int -> seed:string -> Circuit.t -> garbled

val view : garbled -> evaluator_view

(** [input_labels_a g bits] selects the garbler-side (A) input labels
    for concrete input bits. *)
val input_labels_a : garbled -> bool array -> label array

(** [label_pairs_b g] is, per B input bit, the (false, true) label pair
    — what OT transfers one of. *)
val label_pairs_b : garbled -> (label * label) array

(** [evaluate v ~a_labels ~b_labels] runs the garbled circuit and
    decodes the output bits.
    @raise Failure if labels are inconsistent with the tables. *)
val evaluate : evaluator_view -> a_labels:label array -> b_labels:label array -> bool list

(** [table_bytes g] is the total size of the garbled tables
    ([4 * label_bytes * gate_count]). *)
val table_bytes : garbled -> int

(** [encode_view v] / [decode_view s] serialize the evaluator's view for
    transmission. *)
val encode_view : evaluator_view -> string

val decode_view : string -> evaluator_view
