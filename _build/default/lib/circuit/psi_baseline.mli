(** The complete circuit-based intersection protocol of Appendix A,
    {e executed} rather than modeled: the sender garbles the brute-force
    membership circuit over [w]-bit values, the receiver obtains its
    input-wire labels by oblivious transfer and evaluates.

    This is the baseline the paper compares against analytically; running
    it lets the bench measure real gate counts, garbled-table bytes and
    OT traffic at small [n] and confirm the models of
    [Psi.Circuit_baseline] — including the headline result that its
    communication is orders of magnitude above the commutative-encryption
    protocols. Semi-honest, like everything else in this repository. *)

type report = {
  intersection : int list;
      (** receiver's values that occur in the sender's set, ascending *)
  gates : int;
  table_bytes : int;  (** garbled tables only (the paper's [4 k0 C] term) *)
  total_bytes : int;  (** everything on the wire, OT included *)
}

(** [run ~group ?w ?label_bytes ?seed ~sender_values ~receiver_values ()]
    runs garbler (sender) and evaluator (receiver) over a metered
    channel. [w] defaults to 16 bits; values must fit in [w] bits.
    [label_bytes] defaults to 8 (the paper's [k0 = 64]).
    @raise Invalid_argument on empty inputs or out-of-range values. *)
val run :
  group:Crypto.Group.t ->
  ?w:int ->
  ?label_bytes:int ->
  ?seed:string ->
  sender_values:int list ->
  receiver_values:int list ->
  unit ->
  report
