lib/circuit/circuit.mli:
