lib/circuit/ot.ml: Array Bignum Char Crypto List Printf String Wire
