lib/circuit/psi_baseline.mli: Crypto
