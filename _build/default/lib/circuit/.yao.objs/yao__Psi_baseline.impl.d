lib/circuit/psi_baseline.ml: Array Circuit Crypto Garble Int List Ot Wire
