lib/circuit/garble.ml: Array Bool Char Circuit Crypto List String Wire
