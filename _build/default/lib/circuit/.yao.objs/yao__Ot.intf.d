lib/circuit/ot.mli: Bignum Crypto Wire
