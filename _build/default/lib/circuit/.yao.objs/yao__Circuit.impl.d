lib/circuit/circuit.ml: Array List
