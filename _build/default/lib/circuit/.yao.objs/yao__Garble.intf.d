lib/circuit/garble.mli: Circuit
