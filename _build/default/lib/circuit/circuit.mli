(** Boolean circuits with arbitrary two-input gates.

    Appendix A of the paper compares its protocols against Yao-style
    secure circuit evaluation analytically. This library makes the
    baseline {e executable}: circuits are built with {!Builder}, counted
    (validating the paper's [Ge]/[Gl]/[f(n)] formulas), evaluated in the
    clear, and garbled/evaluated obliviously by {!Garble} + {!Ot}.

    Wires are integers. Wires [0 .. num_inputs-1] are the circuit inputs
    (party A's bits first, then party B's); every gate writes a fresh
    wire. *)

type wire = int

(** A gate combines two earlier wires through an arbitrary 2-input truth
    table: [table.(2*a + b)] is the output for input bits [(a, b)]. *)
type gate = { out : wire; a : wire; b : wire; table : bool array }

type t = private {
  inputs_a : int;  (** number of input bits belonging to party A *)
  inputs_b : int;  (** number of input bits belonging to party B *)
  gates : gate array;  (** in topological (construction) order *)
  outputs : wire list;
  num_wires : int;
}

val gate_count : t -> int

(** [eval c ~a ~b] evaluates in the clear. [a] and [b] are the two
    parties' input bits.
    @raise Invalid_argument on input-length mismatch. *)
val eval : t -> a:bool array -> b:bool array -> bool list

(** {1 Building circuits} *)

module Builder : sig
  type circuit = t
  type b

  (** [create ~inputs_a ~inputs_b] starts a circuit with the given
      numbers of per-party input bits. *)
  val create : inputs_a:int -> inputs_b:int -> b

  (** [input_a b i] is the wire of A's [i]-th input bit. *)
  val input_a : b -> int -> wire

  val input_b : b -> int -> wire

  (** Primitive gates; each emits one gate. *)
  val band : b -> wire -> wire -> wire

  val bor : b -> wire -> wire -> wire
  val bxor : b -> wire -> wire -> wire
  val bxnor : b -> wire -> wire -> wire

  (** [andn (not x) y]-style gates, each still a single 2-input gate. *)
  val band_not_l : b -> wire -> wire -> wire

  (** [finish b ~outputs] freezes the circuit. *)
  val finish : b -> outputs:wire list -> circuit
end

(** {1 Comparators (Appendix A constructions)} *)

(** [equal ~w] compares two [w]-bit numbers (A's then B's bits,
    little-endian) for equality. Gate count is exactly [Ge = 2w - 1]. *)
val equal : w:int -> t

(** [compare_lt_eq ~w] outputs [[lt; eq]] for two [w]-bit numbers.
    Gate count is exactly [Gl = 5w - 3]. *)
val compare_lt_eq : w:int -> t

(** [brute_force_intersection ~w ~n_a ~n_b] is Appendix A's brute-force
    membership circuit: A supplies [n_a] values, B supplies [n_b] values
    ([w] bits each); output bit [j] says whether B's [j]-th value equals
    at least one of A's. Gate count is
    [n_a*n_b*(2w-1) + n_b*(n_a-1)] — at least the paper's
    [|V_R|*|V_S|*Ge] lower bound. *)
val brute_force_intersection : w:int -> n_a:int -> n_b:int -> t

(** [int_to_bits ~w v] little-endian bits of [v].
    @raise Invalid_argument if [v] needs more than [w] bits or is
    negative. *)
val int_to_bits : w:int -> int -> bool array
