module Group = Crypto.Group
module Message = Wire.Message
module Channel = Wire.Channel
module Nat = Bignum.Nat

let tag_setup = "ot/setup"
let tag_keys = "ot/keys"
let tag_payload = "ot/payload"

(* Keystream for one branch of one transfer, derived from the shared
   group element. *)
let pad g key ~index ~branch ~len =
  let seed =
    Printf.sprintf "ot:pad:%d:%d:%s" index branch (Group.encode_elt g key)
  in
  Crypto.Drbg.generate (Crypto.Drbg.create ~seed) len

let xor a b = String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let elements_of = function
  | Message.Elements es -> es
  | Message.Element_pairs _ | Message.Element_triples _ | Message.Ciphertext_pairs _ ->
      failwith "ot: unexpected payload shape"

let triples_of = function
  | Message.Element_triples ts -> ts
  | Message.Elements _ | Message.Element_pairs _ | Message.Ciphertext_pairs _ ->
      failwith "ot: unexpected payload shape"

let recv_tagged ep tag =
  let m = Channel.recv ep in
  if m.Message.tag <> tag then failwith ("ot: expected " ^ tag) else m.Message.payload

let sender g ~rng ~pairs ep =
  Array.iter
    (fun (m0, m1) ->
      if String.length m0 <> String.length m1 then
        invalid_arg "Ot.sender: message pair length mismatch")
    pairs;
  (* Setup: a random element whose discrete log nobody knows on the
     receiver side. *)
  let c = Group.random_element g ~rng in
  Channel.send ep (Message.make ~tag:tag_setup (Message.Elements [ Group.encode_elt g c ]));
  let pks = elements_of (recv_tagged ep tag_keys) in
  if List.length pks <> Array.length pairs then failwith "ot: key count mismatch"
  else begin
    let payload =
      List.mapi
        (fun i pk0_enc ->
          let pk0 = Group.decode_elt g pk0_enc in
          let pk1 = Group.mul g c (Group.inv_elt g pk0) in
          let r = Group.random_exponent g ~rng in
          let gr = Group.pow g (Group.generator g) r in
          let m0, m1 = pairs.(i) in
          let e0 = xor m0 (pad g (Group.pow g pk0 r) ~index:i ~branch:0 ~len:(String.length m0)) in
          let e1 = xor m1 (pad g (Group.pow g pk1 r) ~index:i ~branch:1 ~len:(String.length m1)) in
          (Group.encode_elt g gr, e0, e1))
        pks
    in
    Channel.send ep (Message.make ~tag:tag_payload (Message.Element_triples payload))
  end

let receiver g ~rng ~choices ep =
  let c =
    match elements_of (recv_tagged ep tag_setup) with
    | [ e ] -> Group.decode_elt g e
    | _ -> failwith "ot: bad setup"
  in
  let secrets = Array.map (fun _ -> Group.random_exponent g ~rng) choices in
  let pk0s =
    Array.to_list
      (Array.mapi
         (fun i choice ->
           let gk = Group.pow g (Group.generator g) secrets.(i) in
           let pk0 = if choice then Group.mul g c (Group.inv_elt g gk) else gk in
           Group.encode_elt g pk0)
         choices)
  in
  Channel.send ep (Message.make ~tag:tag_keys (Message.Elements pk0s));
  let payload = Array.of_list (triples_of (recv_tagged ep tag_payload)) in
  if Array.length payload <> Array.length choices then failwith "ot: payload count mismatch"
  else
    Array.mapi
      (fun i choice ->
        let gr_enc, e0, e1 = payload.(i) in
        let gr = Group.decode_elt g gr_enc in
        let key = Group.pow g gr secrets.(i) in
        let e = if choice then e1 else e0 in
        xor e (pad g key ~index:i ~branch:(if choice then 1 else 0) ~len:(String.length e)))
      choices

let run g ?(seed = "ot-run") ~pairs ~choices () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  Wire.Runner.run
    ~sender:(fun ep -> sender g ~rng:s_rng ~pairs ep)
    ~receiver:(fun ep -> receiver g ~rng:r_rng ~choices ep)
