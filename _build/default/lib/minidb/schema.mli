(** Table schemas: ordered, uniquely named, typed columns. *)

type column = { name : string; ty : Value.ty; nullable : bool }

type t

(** [make cols] validates that column names are distinct and non-empty.
    @raise Invalid_argument otherwise. *)
val make : column list -> t

(** [col ?nullable name ty] is a column (non-nullable by default). *)
val col : ?nullable:bool -> string -> Value.ty -> column

val columns : t -> column list
val arity : t -> int

(** [index_of s name] is the position of column [name].
    @raise Not_found if absent. *)
val index_of : t -> string -> int

val mem : t -> string -> bool
val column_type : t -> string -> Value.ty

(** [rename_with_prefix s prefix] prefixes every column name with
    [prefix ^ "."] (used to disambiguate join outputs). *)
val rename_with_prefix : t -> string -> t

(** [concat a b] appends the columns of [b] to those of [a].
    @raise Invalid_argument on name collision. *)
val concat : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
