(* RFC 4180-style records: fields separated by commas, quoted with double
   quotes when they contain commas/quotes/newlines, quotes escaped by
   doubling. *)

let split_records s =
  (* Split into records honoring quoted newlines. *)
  let records = ref [] in
  let cur = Buffer.create 64 in
  let in_quotes = ref false in
  let flush () =
    records := Buffer.contents cur :: !records;
    Buffer.clear cur
  in
  String.iteri
    (fun i c ->
      match c with
      | '"' ->
          in_quotes := not !in_quotes;
          Buffer.add_char cur c
      | '\n' when not !in_quotes ->
          (* Tolerate \r\n. *)
          if Buffer.length cur > 0 && Buffer.nth cur (Buffer.length cur - 1) = '\r' then begin
            let s' = Buffer.sub cur 0 (Buffer.length cur - 1) in
            Buffer.clear cur;
            Buffer.add_string cur s'
          end;
          flush ()
      | _ ->
          ignore i;
          Buffer.add_char cur c)
    s;
  if Buffer.length cur > 0 then flush ();
  List.rev (List.filter (fun r -> r <> "") !records)

let split_fields record =
  let fields = ref [] in
  let cur = Buffer.create 32 in
  let n = String.length record in
  let i = ref 0 in
  let flush () =
    fields := Buffer.contents cur :: !fields;
    Buffer.clear cur
  in
  while !i < n do
    (match record.[!i] with
    | '"' ->
        (* Quoted field: consume to the closing quote. *)
        incr i;
        let fin = ref false in
        while not !fin do
          if !i >= n then invalid_arg "Csv: unterminated quote"
          else if record.[!i] = '"' then
            if !i + 1 < n && record.[!i + 1] = '"' then begin
              Buffer.add_char cur '"';
              i := !i + 1
            end
            else fin := true
          else Buffer.add_char cur record.[!i];
          incr i
        done;
        i := !i - 1
    | ',' -> flush ()
    | c -> Buffer.add_char cur c);
    incr i
  done;
  flush ();
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let parse_header fields =
  Schema.make
    (List.map
       (fun f ->
         match String.index_opt f ':' with
         | None -> invalid_arg ("Csv: header field missing type: " ^ f)
         | Some i ->
             let name = String.sub f 0 i in
             let rest = String.sub f (i + 1) (String.length f - i - 1) in
             let nullable = String.length rest > 0 && rest.[String.length rest - 1] = '?' in
             let ty_s = if nullable then String.sub rest 0 (String.length rest - 1) else rest in
             Schema.col ~nullable name (Value.ty_of_string ty_s))
       fields)

let parse_string s =
  match split_records s with
  | [] -> invalid_arg "Csv: empty document"
  | header :: body ->
      let schema = parse_header (split_fields header) in
      let cols = Schema.columns schema in
      let rows =
        List.map
          (fun record ->
            let fields = split_fields record in
            if List.length fields <> List.length cols then
              invalid_arg ("Csv: wrong field count in record: " ^ record)
            else
              Array.of_list
                (List.map2 (fun (c : Schema.column) f -> Value.of_string c.ty f) cols fields))
          body
      in
      Table.create schema rows

let to_string t =
  let buf = Buffer.create 1024 in
  let cols = Schema.columns (Table.schema t) in
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (c : Schema.column) ->
            Printf.sprintf "%s:%s%s" c.name (Value.ty_to_string c.ty)
              (if c.nullable then "?" else ""))
          cols));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (String.concat ","
           (List.map quote_field (Array.to_list (Array.map Value.to_string r))));
      Buffer.add_char buf '\n')
    (Table.rows t);
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let save path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
