(** Persistent, log-structured storage for {!Table}s — the "Database"
    box of the paper's Figure 1 made real.

    One file holds many named tables. Every mutation appends a
    checksummed record; {!open_db} replays the log and silently stops at
    the first torn or corrupt record (crash-tolerant tail), so a partial
    final write never corrupts earlier data. {!checkpoint} compacts the
    log by rewriting current state atomically (write temp + rename).

    This is deliberately minimal: no concurrency control, no in-place
    updates (tables are append/drop granularity like the rest of
    [minidb]). *)

type t

(** [open_db path] opens or creates a database file and replays it.
    @raise Invalid_argument if the file exists but is not a database. *)
val open_db : string -> t

(** [close t] flushes and closes the underlying file. Using [t]
    afterwards raises. *)
val close : t -> unit

val path : t -> string

(** [create_table t name schema] appends a table-creation record.
    @raise Invalid_argument if [name] already exists or is empty. *)
val create_table : t -> string -> Schema.t -> unit

(** [insert t name rows] appends rows (type-checked against the schema).
    @raise Not_found if the table does not exist. *)
val insert : t -> string -> Table.row list -> unit

(** [drop_table t name] removes the table.
    @raise Not_found if absent. *)
val drop_table : t -> string -> unit

(** [table t name] is the current contents.
    @raise Not_found if absent. *)
val table : t -> string -> Table.t

(** [tables t] is the sorted list of table names. *)
val tables : t -> string list

(** [checkpoint t] compacts the log file to the current state. *)
val checkpoint : t -> unit
