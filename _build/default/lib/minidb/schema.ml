type column = { name : string; ty : Value.ty; nullable : bool }
type t = column list

let make cols =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if c.name = "" then invalid_arg "Schema.make: empty column name"
      else if Hashtbl.mem seen c.name then
        invalid_arg ("Schema.make: duplicate column: " ^ c.name)
      else Hashtbl.add seen c.name ())
    cols;
  cols

let col ?(nullable = false) name ty = { name; ty; nullable }
let columns s = s
let arity = List.length

let index_of s name =
  let rec go i = function
    | [] -> raise Not_found
    | c :: _ when c.name = name -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 s

let mem s name = List.exists (fun c -> c.name = name) s
let column_type s name = (List.nth s (index_of s name)).ty
let rename_with_prefix s prefix = List.map (fun c -> { c with name = prefix ^ "." ^ c.name }) s
let concat a b = make (a @ b)
let equal a b = a = b

let pp fmt s =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.name (Value.ty_to_string c.ty)
              (if c.nullable then "?" else ""))
          s))
