(** Minimal CSV reader/writer (RFC 4180 quoting) so the CLI can load
    real tables.

    The first line must be a header of [name:type] pairs, e.g.
    [id:int,name:text,score:float]. *)

(** [parse_string s] parses a CSV document into a table.
    @raise Invalid_argument on malformed input. *)
val parse_string : string -> Table.t

(** [to_string t] renders a table (with typed header) as CSV. *)
val to_string : Table.t -> string

val load : string -> Table.t
val save : string -> Table.t -> unit
