type row = Value.t array
type t = { schema : Schema.t; rows : row list }

let typecheck schema r =
  let cols = Schema.columns schema in
  if Array.length r <> List.length cols then
    invalid_arg "Table: row arity does not match schema"
  else
    List.iteri
      (fun i (c : Schema.column) ->
        if not (Value.conforms r.(i) c.ty ~nullable:c.nullable) then
          invalid_arg
            (Printf.sprintf "Table: value %s does not conform to column %s %s"
               (Value.to_string r.(i)) c.name
               (Value.ty_to_string c.ty)))
      cols

let create schema rows =
  List.iter (typecheck schema) rows;
  { schema; rows }

let empty schema = { schema; rows = [] }
let schema t = t.schema
let rows t = t.rows
let cardinality t = List.length t.rows

let append t new_rows =
  List.iter (typecheck t.schema) new_rows;
  { t with rows = t.rows @ new_rows }

let get t r name = r.(Schema.index_of t.schema name)
let column_values t name = List.map (fun r -> get t r name) t.rows

let distinct_values t name =
  let module VS = Set.Make (struct
    type nonrec t = Value.t

    let compare = Value.compare
  end) in
  column_values t name
  |> List.filter (fun v -> v <> Value.Null)
  |> VS.of_list |> VS.elements

let duplicate_distribution t name =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if v <> Value.Null then
        Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    (column_values t name);
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let ext t name v = List.filter (fun r -> Value.equal (get t r name) v) t.rows

let equal a b =
  Schema.equal a.schema b.schema
  && List.length a.rows = List.length b.rows
  && List.for_all2 (fun x y -> Array.for_all2 Value.equal x y) a.rows b.rows

let pp fmt t =
  Format.fprintf fmt "%a@." Schema.pp t.schema;
  List.iter
    (fun r ->
      Format.fprintf fmt "| %s |@."
        (String.concat " | " (Array.to_list (Array.map Value.to_string r))))
    t.rows
