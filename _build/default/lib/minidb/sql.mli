(** A small SQL subset: parser and local (plaintext) evaluator.

    The paper's problem statement (§2.2) is "given a database query Q
    spanning the tables in D_R and D_S, compute the answer to Q" — this
    module supplies the query language. [Psi.Sql_private] recognizes
    the query shapes the protocols support and runs them privately;
    this evaluator is the local engine and the test oracle.

    Supported grammar (case-insensitive keywords):

    {v
    query   := SELECT items FROM tables [WHERE pred] [GROUP BY exprs]
    items   := item (',' item)*
    item    := '*' | COUNT '(' '*' ')' [AS id] | SUM '(' expr ')' [AS id]
             | expr [AS id]
    tables  := tref [',' tref] | tref JOIN tref ON pred
    tref    := ident [[AS] ident]
    pred    := cmp (AND cmp)*
    cmp     := expr ('=' | '<>' | '!=' | '<' | '<=' | '>' | '>=') expr
    expr    := ident ['.' ident] | literal
    literal := integer | float | 'string' | TRUE | FALSE | NULL
    v}

    Restrictions: at most two tables; no OR, no subqueries, no ORDER BY;
    aggregates cannot be mixed with bare columns unless those columns
    are grouped. *)

(** {1 AST} *)

type expr = Col of string option * string  (** [qualifier.column] *) | Lit of Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type predicate = Cmp of cmp * expr * expr | And of predicate * predicate

type item =
  | Star
  | Column of expr * string option
  | Count_star of string option
  | Sum of expr * string option

type table_ref = { table : string; alias : string }

type query = {
  select : item list;
  from : table_ref list;
  where : predicate option;
  group_by : expr list;
}

exception Parse_error of string

(** [parse s] parses one query.
    @raise Parse_error with a position-bearing message. *)
val parse : string -> query

(** [pp_query] prints a normalized rendering (debugging). *)
val pp_query : Format.formatter -> query -> unit

(** {1 Local evaluation} *)

(** [execute resolve q] evaluates [q] against the tables returned by
    [resolve name].
    @raise Invalid_argument for semantic errors (unknown table/column,
    ambiguous reference, unsupported shape)
    @raise Not_found if [resolve] does. *)
val execute : (string -> Table.t) -> query -> Table.t
