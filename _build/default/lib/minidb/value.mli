(** Typed scalar values for the relational substrate. *)

type ty = TBool | TInt | TFloat | TText

type t = Null | Bool of bool | Int of int | Float of float | Text of string

(** [type_of v] is [None] for [Null]. *)
val type_of : t -> ty option

(** [conforms v ty ~nullable] checks that [v] may inhabit a column of
    type [ty]. *)
val conforms : t -> ty -> nullable:bool -> bool

(** Total order: [Null] sorts first, then by type, then by value. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val to_string : t -> string

(** [of_string ty s] parses a value of type [ty]; the literal [""] is
    [Null].
    @raise Invalid_argument on unparsable input. *)
val of_string : ty -> string -> t

val ty_to_string : ty -> string

(** [ty_of_string s] inverts {!ty_to_string}.
    @raise Invalid_argument on unknown names. *)
val ty_of_string : string -> ty

val pp : Format.formatter -> t -> unit

(** [key v] is a canonical string encoding, injective per type, suitable
    as the join attribute fed into the PSI protocols. *)
val key : t -> string

(** [of_key s] inverts {!key}.
    @raise Invalid_argument on strings not produced by {!key}. *)
val of_key : string -> t
