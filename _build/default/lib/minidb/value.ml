type ty = TBool | TInt | TFloat | TText
type t = Null | Bool of bool | Int of int | Float of float | Text of string

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Text _ -> Some TText

let conforms v ty ~nullable =
  match type_of v with None -> nullable | Some t -> t = ty

let rank = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | Text _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Text x, Text y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Text _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Text s -> s

let of_string ty s =
  if s = "" then Null
  else
    match ty with
    | TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Bool true
        | "false" | "f" | "0" -> Bool false
        | _ -> invalid_arg ("Value.of_string: bad bool: " ^ s))
    | TInt -> (
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> invalid_arg ("Value.of_string: bad int: " ^ s))
    | TFloat -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> invalid_arg ("Value.of_string: bad float: " ^ s))
    | TText -> Text s

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TText -> "text"

let ty_of_string = function
  | "bool" -> TBool
  | "int" -> TInt
  | "float" -> TFloat
  | "text" -> TText
  | s -> invalid_arg ("Value.ty_of_string: unknown type: " ^ s)

let pp fmt v = Format.pp_print_string fmt (to_string v)

let key = function
  | Null -> "N"
  | Bool b -> if b then "B1" else "B0"
  | Int i -> "I" ^ string_of_int i
  | Float f -> "F" ^ string_of_float f
  | Text s -> "T" ^ s

let of_key s =
  let rest () = String.sub s 1 (String.length s - 1) in
  if s = "N" then Null
  else if s = "B1" then Bool true
  else if s = "B0" then Bool false
  else if String.length s < 1 then invalid_arg "Value.of_key: empty"
  else
    match s.[0] with
    | 'I' -> (
        match int_of_string_opt (rest ()) with
        | Some i -> Int i
        | None -> invalid_arg ("Value.of_key: bad int key: " ^ s))
    | 'F' -> (
        match float_of_string_opt (rest ()) with
        | Some f -> Float f
        | None -> invalid_arg ("Value.of_key: bad float key: " ^ s))
    | 'T' -> Text (rest ())
    | _ -> invalid_arg ("Value.of_key: unknown tag: " ^ s)
