lib/minidb/schema.ml: Format Hashtbl List Printf String Value
