lib/minidb/sql.mli: Format Table Value
