lib/minidb/table.mli: Format Schema Value
