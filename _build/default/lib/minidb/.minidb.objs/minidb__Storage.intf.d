lib/minidb/storage.mli: Schema Table
