lib/minidb/value.ml: Bool Float Format Int Printf String
