lib/minidb/relop.mli: Table Value
