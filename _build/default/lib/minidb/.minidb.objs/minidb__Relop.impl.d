lib/minidb/relop.ml: Array Hashtbl List Option Schema Set Stdlib String Table Value
