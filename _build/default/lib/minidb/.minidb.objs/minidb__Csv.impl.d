lib/minidb/csv.ml: Array Buffer Fun List Printf Schema String Table Value
