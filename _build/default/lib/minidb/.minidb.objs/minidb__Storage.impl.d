lib/minidb/storage.ml: Array Buffer Char Fun Hashtbl List Schema String Sys Table Unix Value
