lib/minidb/table.ml: Array Format Hashtbl List Option Printf Schema Set String Value
