lib/minidb/csv.mli: Table
