lib/minidb/sql.ml: Array Buffer Format Hashtbl List Option Printf Relop Schema String Table Value
