(** In-memory relations: a schema plus typed rows.

    Tables are immutable; operations in {!Relop} return new tables. Rows
    are arrays of {!Value.t} in schema column order. *)

type row = Value.t array

type t

(** [create schema rows] type-checks every row against [schema].
    @raise Invalid_argument on arity or type mismatch. *)
val create : Schema.t -> row list -> t

val empty : Schema.t -> t
val schema : t -> Schema.t
val rows : t -> row list
val cardinality : t -> int

(** [append t rows] is [t] with [rows] added (type-checked). *)
val append : t -> row list -> t

(** [get t row name] is the value of column [name] in [row].
    @raise Not_found if the column is absent. *)
val get : t -> row -> string -> Value.t

(** [column_values t name] is the values of column [name] in row order,
    duplicates preserved. *)
val column_values : t -> string -> Value.t list

(** [distinct_values t name] is the sorted set of values in column
    [name], [Null] excluded — the paper's [V_S]/[V_R] for attribute
    [name]. *)
val distinct_values : t -> string -> Value.t list

(** [duplicate_distribution t name] maps each distinct non-null value to
    its multiplicity — §5.2's "distribution of duplicates". *)
val duplicate_distribution : t -> string -> (Value.t * int) list

(** [ext t name v] is all rows with [name = v] — the paper's [ext(v)]. *)
val ext : t -> string -> Value.t -> row list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
