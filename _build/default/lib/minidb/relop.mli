(** Relational operators over {!Table}.

    This is the plaintext reference engine: the applications run their
    queries both through the private protocols and through these
    operators, and the test suite checks the answers coincide. *)

(** [select p t] keeps the rows satisfying [p]. *)
val select : (Table.t -> Table.row -> bool) -> Table.t -> Table.t

(** [select_eq t col v] keeps rows with [col = v]. *)
val select_eq : Table.t -> string -> Value.t -> Table.t

(** [project t cols] reorders/restricts columns.
    @raise Not_found if a column is absent. *)
val project : Table.t -> string list -> Table.t

(** [distinct t] removes duplicate rows (order not preserved). *)
val distinct : Table.t -> Table.t

(** [equijoin l r ~on:(lc, rc)] is the hash equijoin of [l] and [r] on
    [l.lc = r.rc]. Output columns are prefixed ["l."] and ["r."].
    [Null] never joins. *)
val equijoin : Table.t -> Table.t -> on:string * string -> Table.t

(** [equijoin_size l r ~on] is [|l >< r|] without materializing it. *)
val equijoin_size : Table.t -> Table.t -> on:string * string -> int

(** [cross l r] is the Cartesian product, with output columns prefixed
    ["l."] and ["r."] like {!equijoin}. *)
val cross : Table.t -> Table.t -> Table.t

(** [intersect_values l r ~on:(lc, rc)] is the sorted set
    [V_l ∩ V_r] of join-attribute values — the paper's intersection
    query, computed in plaintext. *)
val intersect_values : Table.t -> Table.t -> on:string * string -> Value.t list

(** [group_count t cols] maps each distinct tuple of [cols] to its row
    count (SQL's [GROUP BY cols] with [count]), sorted by key. *)
val group_count : Table.t -> string list -> (Value.t list * int) list

(** [order_by t cols] sorts rows lexicographically by [cols]. *)
val order_by : Table.t -> string list -> Table.t
