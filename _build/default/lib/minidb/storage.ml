(* Log-structured store. Record framing:
     u32 body_length | body | u32 adler32(body)
   replay stops at EOF, a short read, or a checksum mismatch. *)

let magic = "MDB1"

type t = {
  file_path : string;
  mutable oc : out_channel option; (* append handle; None after close *)
  tables : (string, Table.t) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Checksum                                                            *)
(* ------------------------------------------------------------------ *)

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

(* ------------------------------------------------------------------ *)
(* Body encoding                                                       *)
(* ------------------------------------------------------------------ *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u32 buf n =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let rec w_varint buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
    w_varint buf (n lsr 7)
  end

let w_bytes buf s =
  w_varint buf (String.length s);
  Buffer.add_string buf s

type reader = { s : string; mutable pos : int }

exception Short

let r_u8 r =
  if r.pos >= String.length r.s then raise Short
  else begin
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v
  end

let r_varint r =
  let rec go shift acc =
    let b = r_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_bytes r =
  let n = r_varint r in
  if r.pos + n > String.length r.s then raise Short
  else begin
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v
  end

(* Record kinds. *)
let k_create = 1
let k_insert = 2
let k_drop = 3

let encode_schema buf schema =
  let cols = Schema.columns schema in
  w_varint buf (List.length cols);
  List.iter
    (fun (c : Schema.column) ->
      w_bytes buf c.Schema.name;
      w_bytes buf (Value.ty_to_string c.Schema.ty);
      w_u8 buf (if c.Schema.nullable then 1 else 0))
    cols

let decode_schema r =
  let n = r_varint r in
  let rec go i acc =
    if i = n then Schema.make (List.rev acc)
    else begin
      let name = r_bytes r in
      let ty = Value.ty_of_string (r_bytes r) in
      let nullable = r_u8 r = 1 in
      go (i + 1) (Schema.col ~nullable name ty :: acc)
    end
  in
  go 0 []

let encode_rows buf rows =
  w_varint buf (List.length rows);
  List.iter
    (fun row ->
      w_varint buf (Array.length row);
      Array.iter (fun v -> w_bytes buf (Value.key v)) row)
    rows

let decode_rows r =
  let n = r_varint r in
  let rec go i acc =
    if i = n then List.rev acc
    else begin
      let arity = r_varint r in
      let row = Array.make arity Value.Null in
      for j = 0 to arity - 1 do
        row.(j) <- Value.of_key (r_bytes r)
      done;
      go (i + 1) (row :: acc)
    end
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* State transitions (shared by replay and live mutation)              *)
(* ------------------------------------------------------------------ *)

let apply_create tables name schema =
  if name = "" then invalid_arg "Storage: empty table name"
  else if Hashtbl.mem tables name then
    invalid_arg ("Storage: table already exists: " ^ name)
  else Hashtbl.replace tables name (Table.empty schema)

let apply_insert tables name rows =
  match Hashtbl.find_opt tables name with
  | None -> raise Not_found
  | Some t -> Hashtbl.replace tables name (Table.append t rows)

let apply_drop tables name =
  if not (Hashtbl.mem tables name) then raise Not_found
  else Hashtbl.remove tables name

(* ------------------------------------------------------------------ *)
(* Log IO                                                              *)
(* ------------------------------------------------------------------ *)

let append_record t body =
  match t.oc with
  | None -> invalid_arg "Storage: database is closed"
  | Some oc ->
      let buf = Buffer.create (String.length body + 8) in
      w_u32 buf (String.length body);
      Buffer.add_string buf body;
      w_u32 buf (adler32 body);
      output_string oc (Buffer.contents buf);
      flush oc

let body_of_create name schema =
  let buf = Buffer.create 64 in
  w_u8 buf k_create;
  w_bytes buf name;
  encode_schema buf schema;
  Buffer.contents buf

let body_of_insert name rows =
  let buf = Buffer.create 256 in
  w_u8 buf k_insert;
  w_bytes buf name;
  encode_rows buf rows;
  Buffer.contents buf

let body_of_drop name =
  let buf = Buffer.create 32 in
  w_u8 buf k_drop;
  w_bytes buf name;
  Buffer.contents buf

let apply_body tables body =
  let r = { s = body; pos = 0 } in
  let kind = r_u8 r in
  if kind = k_create then begin
    let name = r_bytes r in
    apply_create tables name (decode_schema r)
  end
  else if kind = k_insert then begin
    let name = r_bytes r in
    apply_insert tables name (decode_rows r)
  end
  else if kind = k_drop then apply_drop tables (r_bytes r)
  else invalid_arg "Storage: unknown record kind"

(* Replay: returns the byte offset of the valid prefix. *)
let replay path tables =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let hdr = really_input_string ic (String.length magic) in
      if hdr <> magic then invalid_arg "Storage: not a minidb database file"
      else begin
        let valid = ref (String.length magic) in
        (try
           while pos_in ic < len do
             if len - pos_in ic < 4 then raise Short;
             let blen =
               let b = really_input_string ic 4 in
               (Char.code b.[0] lsl 24) lor (Char.code b.[1] lsl 16)
               lor (Char.code b.[2] lsl 8) lor Char.code b.[3]
             in
             if len - pos_in ic < blen + 4 then raise Short;
             let body = really_input_string ic blen in
             let csum =
               let b = really_input_string ic 4 in
               (Char.code b.[0] lsl 24) lor (Char.code b.[1] lsl 16)
               lor (Char.code b.[2] lsl 8) lor Char.code b.[3]
             in
             if csum <> adler32 body then raise Short;
             apply_body tables body;
             valid := pos_in ic
           done
         with Short | End_of_file -> ());
        !valid
      end)

let open_db file_path =
  let tables = Hashtbl.create 8 in
  let valid =
    if Sys.file_exists file_path then replay file_path tables
    else begin
      let oc = open_out_bin file_path in
      output_string oc magic;
      close_out oc;
      String.length magic
    end
  in
  (* Truncate any torn tail, then reopen for appending. *)
  let fd = Unix.openfile file_path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd valid;
  Unix.close fd;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 file_path in
  { file_path; oc = Some oc; tables }

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.oc <- None

let path t = t.file_path

let create_table t name schema =
  apply_create t.tables name schema;
  append_record t (body_of_create name schema)

let insert t name rows =
  apply_insert t.tables name rows;
  append_record t (body_of_insert name rows)

let drop_table t name =
  apply_drop t.tables name;
  append_record t (body_of_drop name)

let table t name =
  match Hashtbl.find_opt t.tables name with Some tbl -> tbl | None -> raise Not_found

let tables t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let checkpoint t =
  let tmp = t.file_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  let write_record body =
    let buf = Buffer.create (String.length body + 8) in
    w_u32 buf (String.length body);
    Buffer.add_string buf body;
    w_u32 buf (adler32 body);
    output_string oc (Buffer.contents buf)
  in
  List.iter
    (fun name ->
      let tbl = Hashtbl.find t.tables name in
      write_record (body_of_create name (Table.schema tbl));
      if Table.cardinality tbl > 0 then write_record (body_of_insert name (Table.rows tbl)))
    (tables t);
  close_out oc;
  (match t.oc with Some oc -> close_out oc | None -> ());
  Sys.rename tmp t.file_path;
  t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.file_path)
