(* End-to-end integration / outsourcing (§1's motivating trends):
   a manufacturer outsources fulfilment to a logistics partner. They
   need to reconcile inventory on common SKUs without opening their
   databases to each other:

   1. which SKUs do both stock?            -> private intersection
   2. warehouse records for those SKUs     -> private equijoin (typed)
   3. how big is the full record overlap?  -> private equijoin size

   The manufacturer additionally runs every incoming query through the
   §2.3 audit policy, so a curious partner cannot drain its catalog
   through repeated probing.

   Run with: dune exec examples/supply_chain.exe *)

open Minidb

let manufacturer =
  Csv.parse_string
    "sku:text,product:text,unit_cost:float,reorder:int\n\
     SKU-1001,compressor,149.5,20\n\
     SKU-1002,condenser,89.0,35\n\
     SKU-1003,evaporator,120.25,10\n\
     SKU-1004,thermostat,19.9,100\n\
     SKU-1005,fan-blade,7.5,250\n"

let logistics =
  Csv.parse_string
    "sku:text,warehouse:text,on_hand:int\n\
     SKU-1002,FRA,340\n\
     SKU-1002,AMS,120\n\
     SKU-1004,FRA,90\n\
     SKU-1006,AMS,15\n"

let () =
  let group = Crypto.Group.named Crypto.Group.Test256 in
  let cfg = Psi.Protocol.config ~domain:"supply:sku" group in
  (* The manufacturer's release policy for partner queries. *)
  let audit = Psi.Audit.create Psi.Audit.default_policy in

  Printf.printf "manufacturer: %d SKUs; logistics partner: %d stock rows\n\n"
    (Table.cardinality manufacturer) (Table.cardinality logistics);

  let run spec =
    Psi.Private_query.run cfg ~audit ~peer:"logistics" spec ~sender:manufacturer
      ~receiver:logistics ()
  in

  (* 1. Common SKUs. *)
  (match run (Psi.Private_query.Intersect { attr = "sku" }) with
  | Ok { Psi.Private_query.answer = Psi.Private_query.Values vs; total_bytes; _ } ->
      Printf.printf "1. SKUs stocked by both (%d bytes of protocol traffic):\n" total_bytes;
      List.iter (fun v -> Printf.printf "   %s\n" (Value.to_string v)) vs
  | Ok _ -> assert false
  | Error reason -> Printf.printf "1. DENIED by audit: %s\n" reason);

  (* 2. Reorder data for the common SKUs, typed. *)
  (match
     run (Psi.Private_query.Equijoin { attr = "sku"; payload = [ "product"; "reorder" ] })
   with
  | Ok { Psi.Private_query.answer = Psi.Private_query.Rows rows; _ } ->
      Printf.printf "\n2. Joined reorder data (only for matching SKUs):\n";
      List.iter
        (fun (sku, recs) ->
          List.iter
            (fun cols ->
              Printf.printf "   %s -> %s\n" (Value.to_string sku)
                (String.concat ", " (List.map Value.to_string cols)))
            recs)
        rows
  | Ok _ -> assert false
  | Error reason -> Printf.printf "\n2. DENIED by audit: %s\n" reason);

  (* 3. Overall record overlap (a multiset join: the partner has several
     rows per SKU). *)
  (match run (Psi.Private_query.Equijoin_size { attr = "sku" }) with
  | Ok { Psi.Private_query.answer = Psi.Private_query.Size n; _ } ->
      Printf.printf "\n3. |manufacturer >< logistics| on sku = %d rows\n" n
  | Ok _ -> assert false
  | Error reason -> Printf.printf "\n3. DENIED by audit: %s\n" reason);

  (* 4. A curious partner mounts a differencing attack: re-issue the
     query with one SKU removed each time and subtract the answers to
     isolate individual SKUs. The §2.3 overlap defence shuts it down. *)
  Printf.printf "\n4. Differencing attack simulation (drop one SKU per probe):\n";
  let rec probe i rows =
    match rows with
    | [] | [ _ ] -> ()
    | _ :: rest when i > 3 -> ignore rest
    | _ :: rest ->
        let probe_table = Table.create (Table.schema logistics) rest in
        (match
           Psi.Private_query.run cfg ~audit ~peer:"logistics"
             (Psi.Private_query.Intersect { attr = "sku" })
             ~sender:manufacturer ~receiver:probe_table ()
         with
        | Ok _ -> Printf.printf "   probe %d: allowed\n" i
        | Error reason -> Printf.printf "   probe %d: DENIED (%s)\n" i reason);
        probe (i + 1) rest
  in
  probe 1 (Table.rows logistics);

  Printf.printf "\nAudit trail at the manufacturer:\n";
  List.iter
    (fun (e : Psi.Audit.entry) ->
      Printf.printf "   #%d peer=%s op=%s |input|=%d result=%s %s\n" e.Psi.Audit.seq
        e.Psi.Audit.peer e.Psi.Audit.operation e.Psi.Audit.input_size
        (match e.Psi.Audit.result_size with Some n -> string_of_int n | None -> "-")
        (match e.Psi.Audit.decision with
        | Psi.Audit.Allow -> "ALLOW"
        | Psi.Audit.Deny r -> "DENY: " ^ r))
    (Psi.Audit.log audit)
