(* §5.2 in action: what the equijoin size protocol leaks, and when.

   The protocol computes |T_S >< T_R| over multisets, but R additionally
   learns the duplicate-class intersection matrix |V_R(d) ∩ V_S(d')|.
   This example runs the protocol on two workloads — uniform duplicate
   counts (benign) and all-distinct duplicate counts (worst case) — and
   shows the leakage predicted by Psi.Leakage matching what the protocol
   actually reveals.

   Run with: dune exec examples/equijoin_size_leakage.exe *)

let show_case name ~s_values ~r_values =
  let group = Crypto.Group.named Crypto.Group.Test128 in
  let cfg = Psi.Protocol.config ~domain:"leakage-demo" group in
  Printf.printf "=== %s ===\n" name;
  Printf.printf "S multiset: %s\n" (String.concat " " s_values);
  Printf.printf "R multiset: %s\n" (String.concat " " r_values);
  let o = Psi.Equijoin_size.run cfg ~sender_values:s_values ~receiver_values:r_values () in
  let r = o.Wire.Runner.receiver_result in
  Printf.printf "join size (R learns): %d  [ground truth %d]\n"
    r.Psi.Equijoin_size.join_size
    (Psi.Leakage.join_size ~r_values ~s_values);
  Printf.printf "R also sees S's duplicate distribution: %s\n"
    (String.concat ", "
       (List.map
          (fun (d, n) -> Printf.sprintf "%d value(s) x%d" n d)
          r.Psi.Equijoin_size.s_duplicate_distribution));
  Printf.printf "class-intersection matrix |V_R(d) ∩ V_S(d')| from R's view:\n";
  List.iter
    (fun ((d, d'), n) -> Printf.printf "  (d=%d, d'=%d) -> %d\n" d d' n)
    r.Psi.Equijoin_size.class_intersections;
  let identified = Psi.Leakage.identified_values ~r_values ~s_values in
  (match identified with
  | [] -> Printf.printf "=> R cannot identify any specific shared value.\n"
  | vs ->
      Printf.printf "=> R can INFER these values are in V_S: %s\n" (String.concat ", " vs));
  print_newline ()

let () =
  (* Benign: every value occurs once; only the size leaks. *)
  show_case "uniform duplicates (benign)"
    ~s_values:[ "anemia"; "bruxism"; "colitis"; "dermatitis" ]
    ~r_values:[ "bruxism"; "colitis"; "eczema" ];

  (* Worst case: distinct duplicate counts fingerprint each value. *)
  show_case "distinct duplicate counts (worst case)"
    ~s_values:[ "anemia"; "bruxism"; "bruxism"; "colitis"; "colitis"; "colitis" ]
    ~r_values:
      [ "anemia"; "bruxism"; "bruxism"; "colitis"; "colitis"; "colitis"; "eczema"; "eczema"; "eczema"; "eczema" ];

  (* Middle ground: some classes shared, some not. *)
  show_case "mixed duplicates"
    ~s_values:[ "a"; "a"; "b"; "c"; "c"; "d" ]
    ~r_values:[ "a"; "b"; "b"; "c"; "c"; "e" ];

  Printf.printf
    "Conclusion (§5.2): if all values have the same number of duplicates, R\n\
     learns only |V_R ∩ V_S|; if no two values share a duplicate count, R\n\
     learns V_R ∩ V_S exactly. Use the intersection-size protocol on\n\
     deduplicated sets when that leakage is unacceptable.\n"
