(* Quickstart: two parties privately intersect their customer lists.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Agree on a group (a safe prime; use Modp1536/Modp2048 for real
     deployments, Test256 for a fast demo) and a hash domain. *)
  let group = Crypto.Group.named Crypto.Group.Test256 in
  let cfg = Psi.Protocol.config ~domain:"customers:email" group in

  (* 2. Each party's private values (the join attribute). *)
  let s_customers =
    [ "ada@example.com"; "bob@example.com"; "cleo@example.com"; "dan@example.com" ]
  in
  let r_customers =
    [ "bob@example.com"; "cleo@example.com"; "eve@example.com" ]
  in

  (* 3. Run the intersection protocol. The two parties execute in
     separate threads and exchange serialized messages over a metered
     channel. *)
  let outcome =
    Psi.Intersection.run cfg ~seed:"quickstart-demo" ~sender_values:s_customers
      ~receiver_values:r_customers ()
  in

  (* 4. What each side learned. *)
  let r = outcome.Wire.Runner.receiver_result in
  Printf.printf "R learned the intersection (%d values):\n" (List.length r.Psi.Intersection.intersection);
  List.iter (Printf.printf "  - %s\n") r.Psi.Intersection.intersection;
  Printf.printf "R also learned |V_S| = %d (and nothing else)\n" r.Psi.Intersection.v_s_count;
  Printf.printf "S learned |V_R| = %d (and nothing else)\n"
    outcome.Wire.Runner.sender_result.Psi.Intersection.v_r_count;

  (* 5. The communication cost is measured, not estimated. *)
  Printf.printf "wire traffic: %d bytes in %d messages\n" outcome.Wire.Runner.total_bytes
    (outcome.Wire.Runner.sender_stats.Wire.Channel.messages_sent
    + outcome.Wire.Runner.receiver_stats.Wire.Channel.messages_sent);

  (* 6. An intersection *size* query reveals even less. *)
  let size_outcome =
    Psi.Intersection_size.run cfg ~seed:"quickstart-demo-2" ~sender_values:s_customers
      ~receiver_values:r_customers ()
  in
  Printf.printf "\nIntersection size protocol: R learns only |V_S ∩ V_R| = %d\n"
    size_outcome.Wire.Runner.receiver_result.Psi.Intersection_size.size
