(* Application 2 (§1.1, Figure 2, §6.2.2): medical research.

   A researcher T validates a hypothesis connecting DNA pattern D with a
   reaction to drug G. T_R(person_id, pattern) and T_S(person_id, drug,
   reaction) belong to different enterprises; T learns only the four
   GROUP BY counts, via four intersection-size protocols whose encrypted
   sets are shipped to T (Figure 2).

   Run with: dune exec examples/medical_research.exe *)

let () =
  let group = Crypto.Group.named Crypto.Group.Test128 in
  let cfg = Psi.Protocol.config ~domain:"medical:person_id" group in

  let t_r, t_s, _truth =
    Psi.Workload.medical_tables ~seed:"cohort-2026" ~n_patients:400 ~p_pattern:0.3
      ~p_drug:0.55 ~p_reaction:0.12
  in
  Printf.printf "T_R: %d patients (DNA pattern flags) at enterprise R\n"
    (Minidb.Table.cardinality t_r);
  Printf.printf "T_S: %d patients (drug/reaction history) at enterprise S\n\n"
    (Minidb.Table.cardinality t_s);

  let report = Psi.Medical.run cfg ~t_r ~t_s () in
  let c = report.Psi.Medical.counts in

  Printf.printf "What the researcher T learns (and nothing else):\n\n";
  Printf.printf "                    reaction   no reaction\n";
  Printf.printf "  pattern           %8d   %11d\n" c.Psi.Medical.pattern_and_reaction
    c.Psi.Medical.pattern_no_reaction;
  Printf.printf "  no pattern        %8d   %11d\n\n" c.Psi.Medical.no_pattern_and_reaction
    c.Psi.Medical.no_pattern_no_reaction;

  (* Cross-check against the reference SQL engine (the researcher could
     not run this -- it requires both plaintext tables). *)
  let oracle = Psi.Medical.plaintext_counts ~t_r ~t_s in
  assert (oracle = c);
  Printf.printf "(verified against the plaintext GROUP BY: identical)\n";

  let reaction_rate p n = 100. *. float_of_int p /. float_of_int (p + n) in
  Printf.printf "\nAdverse reaction rate: %.1f%% with pattern vs %.1f%% without\n"
    (reaction_rate c.Psi.Medical.pattern_and_reaction c.Psi.Medical.pattern_no_reaction)
    (reaction_rate c.Psi.Medical.no_pattern_and_reaction c.Psi.Medical.no_pattern_no_reaction);

  Printf.printf "\nProtocol cost: %d bytes, %d encryptions across the four subprotocols\n"
    report.Psi.Medical.total_bytes report.Psi.Medical.ops.Psi.Protocol.encryptions;

  let e = Psi.Medical.estimate Psi.Cost_model.paper_params ~v_r:1_000_000 ~v_s:1_000_000 in
  Printf.printf
    "\nPaper-scale estimate (|V_R| = |V_S| = 1M, 2001 hardware, T1, P=10):\n\
    \  computation %s, communication %s (%s)\n"
    (Psi.Cost_model.format_seconds e.Psi.Cost_model.comp_seconds)
    (Psi.Cost_model.format_bits e.Psi.Cost_model.comm_bits)
    (Psi.Cost_model.format_seconds e.Psi.Cost_model.comm_seconds)
