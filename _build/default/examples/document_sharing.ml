(* Application 1 (§1.1, §6.2.1): selective document sharing.

   Enterprise R shops for technology; enterprise S holds unpublished IP.
   They find similar document pairs without revealing the rest of their
   repositories, by running the intersection-size protocol on every pair
   of word sets and thresholding f = |dR ∩ dS| / (|dR| + |dS|).

   Run with: dune exec examples/document_sharing.exe *)

let () =
  let group = Crypto.Group.named Crypto.Group.Test128 in
  let cfg = Psi.Protocol.config ~domain:"documents:words" group in

  (* Synthetic corpora standing in for the paper's preprocessed documents
     (top significant words by tf-idf). One similar pair is planted. *)
  let docs_r =
    Psi.Workload.documents ~seed:"shopping-list" ~n_docs:4 ~words_per_doc:120
      ~vocabulary:20_000 ~prefix:"R"
  in
  let docs_s =
    Psi.Workload.documents ~seed:"ip-portfolio" ~n_docs:6 ~words_per_doc:120
      ~vocabulary:20_000 ~prefix:"S"
  in
  let docs_r, docs_s =
    Psi.Workload.plant_similar_pair ~seed:"planted" docs_r docs_s ~fraction_shared:0.7
  in
  let threshold = 0.15 in

  Printf.printf "R has %d documents, S has %d; similarity threshold %.2f\n\n"
    (List.length docs_r) (List.length docs_s) threshold;

  let report = Psi.Doc_sharing.run cfg ~docs_r ~docs_s ~threshold () in

  Printf.printf "%-8s %-8s %8s %8s %8s  %s\n" "R doc" "S doc" "|dR|" "|dS|" "overlap" "similarity";
  List.iter
    (fun (p : Psi.Doc_sharing.pair_result) ->
      Printf.printf "%-8s %-8s %8d %8d %8d  %.3f%s\n" p.Psi.Doc_sharing.r_doc
        p.Psi.Doc_sharing.s_doc p.Psi.Doc_sharing.r_size p.Psi.Doc_sharing.s_size
        p.Psi.Doc_sharing.overlap p.Psi.Doc_sharing.similarity
        (if p.Psi.Doc_sharing.similarity > threshold then "   <-- MATCH" else ""))
    report.Psi.Doc_sharing.all_pairs;

  Printf.printf "\n%d matching pair(s) found; %d bytes of protocol traffic; %d encryptions.\n"
    (List.length report.Psi.Doc_sharing.matches)
    report.Psi.Doc_sharing.total_bytes report.Psi.Doc_sharing.ops.Psi.Protocol.encryptions;

  (* The paper's §6.2.1 estimate at full scale, for comparison. *)
  let e =
    Psi.Doc_sharing.estimate Psi.Cost_model.paper_params ~n_r:10 ~n_s:100 ~d_r:1000 ~d_s:1000
  in
  Printf.printf
    "\nPaper-scale estimate (10 x 100 docs of 1000 words, 2001 hardware, T1, P=10):\n\
    \  computation %s, communication %s (%s)\n"
    (Psi.Cost_model.format_seconds e.Psi.Cost_model.comp_seconds)
    (Psi.Cost_model.format_bits e.Psi.Cost_model.comm_bits)
    (Psi.Cost_model.format_seconds e.Psi.Cost_model.comm_seconds)
