examples/private_sql.mli:
