examples/medical_research.mli:
