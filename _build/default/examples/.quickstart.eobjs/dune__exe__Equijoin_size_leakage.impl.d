examples/equijoin_size_leakage.ml: Crypto List Printf Psi String Wire
