examples/quickstart.ml: Crypto List Printf Psi Wire
