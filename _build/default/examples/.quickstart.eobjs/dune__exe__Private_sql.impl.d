examples/private_sql.ml: Array Crypto Csv List Minidb Printf Psi String Table Value
