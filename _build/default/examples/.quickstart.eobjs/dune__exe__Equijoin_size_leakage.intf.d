examples/equijoin_size_leakage.mli:
