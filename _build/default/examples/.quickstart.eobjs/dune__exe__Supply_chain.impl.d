examples/supply_chain.ml: Crypto Csv List Minidb Printf Psi String Table Value
