examples/enterprise_dbs.ml: Array Crypto Filename List Minidb Printf Psi Schema Sql Storage String Sys Table Value
