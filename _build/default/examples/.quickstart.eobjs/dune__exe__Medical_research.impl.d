examples/medical_research.ml: Crypto Minidb Printf Psi
