examples/document_sharing.ml: Crypto List Printf Psi
