examples/document_sharing.mli:
