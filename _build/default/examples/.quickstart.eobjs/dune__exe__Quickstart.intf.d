examples/quickstart.mli:
