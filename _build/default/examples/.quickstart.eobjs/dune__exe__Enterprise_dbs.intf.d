examples/enterprise_dbs.mli:
