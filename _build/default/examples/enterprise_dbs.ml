(* Full-stack run of Figure 1: each enterprise keeps its data in an
   on-disk minidb database (the "Database" layer), answers its own
   local SQL, and answers cross-enterprise queries only through the
   private protocols (the "Cryptographic Protocol" layer), with an
   audit trail per §2.3.

   Run with: dune exec examples/enterprise_dbs.exe *)

open Minidb

let setup_insurer path =
  (if Sys.file_exists path then Sys.remove path);
  let db = Storage.open_db path in
  Storage.create_table db "claims"
    (Schema.make
       [ Schema.col "patient" Value.TText; Schema.col "amount" Value.TInt;
         Schema.col "approved" Value.TBool ]);
  Storage.insert db "claims"
    [
      [| Value.Text "P-01"; Value.Int 900; Value.Bool true |];
      [| Value.Text "P-02"; Value.Int 150; Value.Bool false |];
      [| Value.Text "P-03"; Value.Int 4200; Value.Bool true |];
      [| Value.Text "P-03"; Value.Int 80; Value.Bool true |];
      [| Value.Text "P-07"; Value.Int 60; Value.Bool true |];
    ];
  db

let setup_hospital path =
  (if Sys.file_exists path then Sys.remove path);
  let db = Storage.open_db path in
  Storage.create_table db "patients"
    (Schema.make [ Schema.col "patient" Value.TText; Schema.col "ward" Value.TText ]);
  Storage.insert db "patients"
    [
      [| Value.Text "P-02"; Value.Text "cardio" |];
      [| Value.Text "P-03"; Value.Text "ortho" |];
      [| Value.Text "P-05"; Value.Text "cardio" |];
    ];
  db

let () =
  let insurer_path = Filename.temp_file "insurer" ".mdb" in
  let hospital_path = Filename.temp_file "hospital" ".mdb" in
  let insurer = setup_insurer insurer_path in
  let hospital = setup_hospital hospital_path in

  (* Durability check: close and reopen both stores (crash-safe log). *)
  Storage.close insurer;
  Storage.close hospital;
  let insurer = Storage.open_db insurer_path in
  let hospital = Storage.open_db hospital_path in
  Printf.printf "insurer db:  %s (tables: %s)\n" (Storage.path insurer)
    (String.concat ", " (Storage.tables insurer));
  Printf.printf "hospital db: %s (tables: %s)\n\n" (Storage.path hospital)
    (String.concat ", " (Storage.tables hospital));

  (* Each side can run arbitrary LOCAL SQL on its own database. *)
  let local_report =
    Sql.execute
      (fun name -> Storage.table insurer name)
      (Sql.parse "select approved, count(*), sum(amount) from claims group by approved")
  in
  Printf.printf "insurer's local query (approved, count, total):\n";
  List.iter
    (fun row ->
      Printf.printf "  %s\n"
        (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
    (Table.rows local_report);

  (* Cross-enterprise questions go through the private protocols. *)
  let group = Crypto.Group.named Crypto.Group.Test256 in
  let cfg = Psi.Protocol.config ~domain:"claims:patient" group in
  let claims = Storage.table insurer "claims" in
  let patients = Storage.table hospital "patients" in
  let ask sql =
    Printf.printf "\nhospital asks: %s\n" sql;
    match
      Psi.Sql_private.run cfg ~sql ~sender:("claims", claims)
        ~receiver:("patients", patients) ()
    with
    | Ok o ->
        List.iter
          (fun row ->
            Printf.printf "  %s\n"
              (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
          (Table.rows o.Psi.Sql_private.table)
    | Error e -> Printf.printf "  rejected: %s\n" e
  in
  (* Which of our patients have claims with this insurer? *)
  ask "select patients.patient from patients, claims where patients.patient = claims.patient";
  (* Total approved claim volume for our patients, without seeing any
     individual claim. *)
  ask
    "select sum(amount) from patients, claims \
     where patients.patient = claims.patient and approved = true";

  Storage.close insurer;
  Storage.close hospital;
  Sys.remove insurer_path;
  Sys.remove hospital_path
