(* §2.2's problem statement, end to end: "given a database query Q
   spanning the tables in D_R and D_S, compute the answer to Q and
   return it to R without revealing any additional information."

   Two retailers hold private tables; every query below is ordinary SQL,
   parsed and mapped onto whichever of the paper's protocols answers it.

   Run with: dune exec examples/private_sql.exe *)

open Minidb

(* S: a wholesaler's private catalog. *)
let catalog =
  Csv.parse_string
    "sku:text,product:text,stock:int,price:int\n\
     A-100,anvil,12,8000\n\
     B-200,bolt,9000,2\n\
     C-300,crate,40,1500\n\
     D-400,drill,7,12000\n\
     E-500,engine,2,99000\n"

(* R: a retailer's private demand list. *)
let demand =
  Csv.parse_string
    "sku:text,channel:text,needed:int\n\
     B-200,web,500\n\
     C-300,store,10\n\
     D-400,web,2\n\
     Z-999,store,1\n"

let () =
  let group = Crypto.Group.named Crypto.Group.Test256 in
  let cfg = Psi.Protocol.config ~domain:"retail:sku" group in
  let run sql =
    Printf.printf "\nSQL> %s\n" sql;
    (match Psi.Sql_private.explain ~sender:catalog ~receiver:demand ~sql ~sender_name:"catalog"
             ~receiver_name:"demand" () with
    | Ok plan -> Printf.printf "  -> protocol: %s\n" plan
    | Error e -> Printf.printf "  -> %s\n" e);
    match
      Psi.Sql_private.run cfg ~sql ~sender:("catalog", catalog) ~receiver:("demand", demand) ()
    with
    | Ok o ->
        Table.rows o.Psi.Sql_private.table
        |> List.iter (fun row ->
               Printf.printf "  | %s\n"
                 (String.concat " | " (Array.to_list (Array.map Value.to_string row))));
        Printf.printf "  (%d bytes on the wire, %d commutative encryptions)\n"
          o.Psi.Sql_private.total_bytes o.Psi.Sql_private.ops.Psi.Protocol.encryptions
    | Error e -> Printf.printf "  REJECTED: %s\n" e
  in
  Printf.printf "catalog (S): %d SKUs | demand (R): %d SKUs\n"
    (Table.cardinality catalog) (Table.cardinality demand);

  (* Which SKUs can be sourced? (intersection) *)
  run "select demand.sku from demand, catalog where demand.sku = catalog.sku";

  (* How many? (equijoin size) *)
  run "select count(*) from demand, catalog where demand.sku = catalog.sku";

  (* Catalog details for just the needed SKUs. (equijoin) *)
  run
    "select catalog.sku, product, price from demand, catalog where demand.sku = catalog.sku";

  (* Total exposure if R bought one of each matching item, computed
     without revealing any individual price. (private SUM) *)
  run "select sum(price) from demand, catalog where demand.sku = catalog.sku";

  (* Availability per sales channel (private GROUP BY), restricted to
     items S actually has in stock -- a sender-local filter. *)
  run
    "select channel, product, count(*) from demand, catalog \
     where demand.sku = catalog.sku and stock > 5 group by channel, product";

  (* Unsupported shapes are refused with a reason, not silently wrong. *)
  run "select channel from demand, catalog where demand.sku = catalog.sku and price > needed"
