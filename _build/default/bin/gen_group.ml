(* Developer tool: generate safe primes for Group's named test groups and
   re-verify the hard-coded RFC 3526 moduli. Usage:
     dune exec bin/gen_group.exe -- gen <bits> [seed]
     dune exec bin/gen_group.exe -- verify *)

module Nat = Bignum.Nat
module Prime = Bignum.Prime

let rng_of_seed seed =
  let d = Crypto.Drbg.create ~seed in
  Crypto.Drbg.to_rng d

let () =
  match Array.to_list Sys.argv with
  | _ :: "gen" :: bits :: rest ->
      let bits = int_of_string bits in
      let seed = match rest with s :: _ -> s | [] -> "psi-group-params" in
      let t0 = Unix.gettimeofday () in
      let p = Prime.gen_safe_prime ~rng:(rng_of_seed seed) bits in
      Printf.printf "(* %d-bit safe prime, seed %S, %.1fs *)\n%s\n" bits seed
        (Unix.gettimeofday () -. t0)
        (Nat.to_hex p)
  | _ :: "verify" :: _ ->
      let rng = rng_of_seed "verify" in
      List.iter
        (fun name ->
          let g = Crypto.Group.named name in
          let ok = Prime.is_safe_prime ~rng (Crypto.Group.p g) in
          Printf.printf "%s (%d bits): %s\n%!"
            (Crypto.Group.name_to_string name)
            (Crypto.Group.modulus_bits g)
            (if ok then "safe prime OK" else "NOT A SAFE PRIME");
          if not ok then exit 1)
        Crypto.Group.all_names
  | _ ->
      prerr_endline "usage: gen_group (gen <bits> [seed] | verify)";
      exit 2
