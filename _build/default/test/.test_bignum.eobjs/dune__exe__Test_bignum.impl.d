test/test_bignum.ml: Alcotest Array Bignum Bignum_fixtures Bool Char Fun List Printf QCheck2 QCheck_alcotest Random String
