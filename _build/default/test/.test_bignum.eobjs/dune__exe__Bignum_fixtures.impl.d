test/bignum_fixtures.ml:
