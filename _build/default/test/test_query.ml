(* Tests for the query-layer extensions: the third-party intersection
   size (Figure 2's variant), the generalized private GROUP BY, the
   §2.3 audit policies, and the Private_query planner. *)

module Runner = Wire.Runner
module Group = Crypto.Group
module P = Psi.Protocol
open Minidb

let g64 = Group.named Group.Test64
let cfg = P.config g64
let value = Alcotest.testable Value.pp Value.equal

(* Two small private tables used throughout. *)
let customers_s =
  Table.create
    (Schema.make
       [ Schema.col "email" Value.TText; Schema.col "plan" Value.TText; Schema.col "spend" Value.TInt ])
    [
      [| Value.Text "ada@x.com"; Value.Text "pro"; Value.Int 120 |];
      [| Value.Text "bob@x.com"; Value.Text "free"; Value.Int 0 |];
      [| Value.Text "cleo@x.com"; Value.Text "pro"; Value.Int 310 |];
      [| Value.Text "dan@x.com"; Value.Text "team"; Value.Int 75 |];
    ]

let customers_r =
  Table.create
    (Schema.make [ Schema.col "email" Value.TText; Schema.col "region" Value.TText ])
    [
      [| Value.Text "bob@x.com"; Value.Text "eu" |];
      [| Value.Text "cleo@x.com"; Value.Text "us" |];
      [| Value.Text "eve@x.com"; Value.Text "eu" |];
    ]

(* ------------------------------------------------------------------ *)
(* Third-party intersection size                                       *)
(* ------------------------------------------------------------------ *)

let test_third_party_size () =
  let r =
    Psi.Intersection_size.run_to_third_party cfg ~sender_values:[ "a"; "b"; "c" ]
      ~receiver_values:[ "b"; "c"; "d"; "e" ] ()
  in
  Alcotest.(check int) "size" 2 r.Psi.Intersection_size.size;
  Alcotest.(check bool) "bytes counted" true (r.Psi.Intersection_size.total_bytes > 0);
  (* Figure 2's cost: comm = 2(|a| + |b|) codewords (Y's + Z's to T). *)
  let k = Group.element_bytes g64 in
  let payload = 2 * (3 + 4) * k in
  Alcotest.(check bool) "comm ~ 2(|V_R|+|V_S|)k" true
    (r.Psi.Intersection_size.total_bytes >= payload
    && r.Psi.Intersection_size.total_bytes <= payload + 256)

let test_third_party_size_empty () =
  let r =
    Psi.Intersection_size.run_to_third_party cfg ~sender_values:[] ~receiver_values:[ "x" ] ()
  in
  Alcotest.(check int) "empty sender" 0 r.Psi.Intersection_size.size

(* ------------------------------------------------------------------ *)
(* Group_by                                                            *)
(* ------------------------------------------------------------------ *)

let test_group_by_matches_plaintext () =
  let run_both ?s_filter () =
    let private_cells =
      (Psi.Group_by.run cfg ~t_r:customers_r ~r_key:"email" ~r_class:"region"
         ~t_s:customers_s ~s_key:"email" ~s_class:"plan" ?s_filter ())
        .Psi.Group_by.cells
    in
    let plain =
      Psi.Group_by.plaintext ~t_r:customers_r ~r_key:"email" ~r_class:"region"
        ~t_s:customers_s ~s_key:"email" ~s_class:"plan" ?s_filter ()
    in
    Alcotest.(check (list (pair (pair value value) int))) "cells" plain private_cells
  in
  run_both ();
  run_both ~s_filter:(fun t row -> Value.compare (Table.get t row "spend") (Value.Int 50) > 0) ()

let test_group_by_cell_values () =
  let g =
    Psi.Group_by.run cfg ~t_r:customers_r ~r_key:"email" ~r_class:"region" ~t_s:customers_s
      ~s_key:"email" ~s_class:"plan" ()
  in
  (* bob (eu, free) and cleo (us, pro) join. *)
  Alcotest.(check int) "eu-free" 1
    (Option.value ~default:0
       (List.assoc_opt (Value.Text "eu", Value.Text "free") g.Psi.Group_by.cells));
  Alcotest.(check int) "us-pro" 1
    (Option.value ~default:0
       (List.assoc_opt (Value.Text "us", Value.Text "pro") g.Psi.Group_by.cells));
  Alcotest.(check int) "eu-pro" 0
    (Option.value ~default:0
       (List.assoc_opt (Value.Text "eu", Value.Text "pro") g.Psi.Group_by.cells));
  (* Class sizes (the leaked "additional information I"). *)
  Alcotest.(check (list (pair value int))) "R class sizes"
    [ (Value.Text "eu", 2); (Value.Text "us", 1) ]
    g.Psi.Group_by.r_class_sizes

let test_group_by_medical_consistency () =
  (* Medical.run is the 2x2 instance; the two layers must agree. *)
  let t_r, t_s, _ =
    Psi.Workload.medical_tables ~seed:"gb" ~n_patients:150 ~p_pattern:0.4 ~p_drug:0.6
      ~p_reaction:0.2
  in
  let m = (Psi.Medical.run cfg ~t_r ~t_s ()).Psi.Medical.counts in
  let g =
    Psi.Group_by.run cfg ~t_r ~r_key:"person_id" ~r_class:"pattern" ~t_s ~s_key:"person_id"
      ~s_class:"reaction"
      ~s_filter:(fun t row -> Value.equal (Table.get t row "drug") (Value.Bool true))
      ()
  in
  let cell p r =
    Option.value ~default:0 (List.assoc_opt (Value.Bool p, Value.Bool r) g.Psi.Group_by.cells)
  in
  Alcotest.(check int) "tt" m.Psi.Medical.pattern_and_reaction (cell true true);
  Alcotest.(check int) "ff" m.Psi.Medical.no_pattern_no_reaction (cell false false)

let test_group_by_degenerate_cohorts () =
  (* Nobody took the drug: S-side partition is empty -> no cells, and
     the medical wrapper reports all-zero counts without crashing. *)
  let open Minidb in
  let t_r =
    Table.create
      (Schema.make [ Schema.col "person_id" Value.TInt; Schema.col "pattern" Value.TBool ])
      [ [| Value.Int 1; Value.Bool true |]; [| Value.Int 2; Value.Bool false |] ]
  in
  let t_s =
    Table.create
      (Schema.make
         [ Schema.col "person_id" Value.TInt; Schema.col "drug" Value.TBool;
           Schema.col "reaction" Value.TBool ])
      [ [| Value.Int 1; Value.Bool false; Value.Bool false |] ]
  in
  let m = (Psi.Medical.run cfg ~t_r ~t_s ()).Psi.Medical.counts in
  Alcotest.(check int) "all zero" 0
    (m.Psi.Medical.pattern_and_reaction + m.Psi.Medical.pattern_no_reaction
    + m.Psi.Medical.no_pattern_and_reaction + m.Psi.Medical.no_pattern_no_reaction);
  (* Single-class sides work too (everyone has the pattern). *)
  let t_r1 =
    Table.create (Table.schema t_r)
      [ [| Value.Int 1; Value.Bool true |]; [| Value.Int 3; Value.Bool true |] ]
  in
  let t_s1 =
    Table.create (Table.schema t_s)
      [ [| Value.Int 1; Value.Bool true; Value.Bool true |];
        [| Value.Int 3; Value.Bool true; Value.Bool true |] ]
  in
  let g =
    Psi.Group_by.run cfg ~t_r:t_r1 ~r_key:"person_id" ~r_class:"pattern" ~t_s:t_s1
      ~s_key:"person_id" ~s_class:"reaction" ()
  in
  Alcotest.(check (list (pair (pair value value) int))) "single cell"
    [ ((Value.Bool true, Value.Bool true), 2) ]
    g.Psi.Group_by.cells

let test_group_by_multiclass () =
  (* More than two classes per side. *)
  let t_r =
    Table.create
      (Schema.make [ Schema.col "id" Value.TInt; Schema.col "tier" Value.TInt ])
      (List.init 30 (fun i -> [| Value.Int i; Value.Int (i mod 3) |]))
  in
  let t_s =
    Table.create
      (Schema.make [ Schema.col "id" Value.TInt; Schema.col "bucket" Value.TInt ])
      (List.init 20 (fun i -> [| Value.Int (2 * i); Value.Int (i mod 4) |]))
  in
  let g =
    Psi.Group_by.run cfg ~t_r ~r_key:"id" ~r_class:"tier" ~t_s ~s_key:"id" ~s_class:"bucket" ()
  in
  let plain =
    Psi.Group_by.plaintext ~t_r ~r_key:"id" ~r_class:"tier" ~t_s ~s_key:"id"
      ~s_class:"bucket" ()
  in
  Alcotest.(check int) "12 cells" 12 (List.length g.Psi.Group_by.cells);
  Alcotest.(check (list (pair (pair value value) int))) "matches oracle" plain
    g.Psi.Group_by.cells;
  (* Total of the table = join size of the filtered keys. *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 g.Psi.Group_by.cells in
  Alcotest.(check int) "sums to join size" (Relop.equijoin_size t_r t_s ~on:("id", "id")) total

(* ------------------------------------------------------------------ *)
(* Audit (§2.3)                                                        *)
(* ------------------------------------------------------------------ *)

let test_audit_query_limit () =
  let a = Psi.Audit.create { Psi.Audit.permissive with Psi.Audit.max_queries_per_peer = Some 2 } in
  let q i =
    Psi.Audit.check_query a ~peer:"r1" ~operation:"intersect"
      ~input_values:[ string_of_int i ]
  in
  Alcotest.(check bool) "q1" true (q 1 = Psi.Audit.Allow);
  Alcotest.(check bool) "q2" true (q 2 = Psi.Audit.Allow);
  Alcotest.(check bool) "q3 denied" true (match q 3 with Psi.Audit.Deny _ -> true | Psi.Audit.Allow -> false);
  (* Another peer is unaffected. *)
  Alcotest.(check bool) "other peer" true
    (Psi.Audit.check_query a ~peer:"r2" ~operation:"intersect" ~input_values:[ "x" ]
    = Psi.Audit.Allow)

let test_audit_overlap_defence () =
  let a =
    Psi.Audit.create { Psi.Audit.permissive with Psi.Audit.max_input_overlap = Some 0.5 }
  in
  let q vs = Psi.Audit.check_query a ~peer:"r" ~operation:"intersect" ~input_values:vs in
  Alcotest.(check bool) "first allowed" true (q [ "a"; "b"; "c"; "d" ] = Psi.Audit.Allow);
  (* Identical repeat reveals nothing new: allowed. *)
  Alcotest.(check bool) "exact repeat allowed" true
    (q [ "a"; "b"; "c"; "d" ] = Psi.Audit.Allow);
  (* 3/4 of the new query repeats the old one: tracker-style differencing. *)
  Alcotest.(check bool) "tracker denied" true
    (match q [ "a"; "b"; "c"; "e" ] with Psi.Audit.Deny _ -> true | Psi.Audit.Allow -> false);
  (* Disjoint query is fine. *)
  Alcotest.(check bool) "disjoint allowed" true (q [ "p"; "q"; "r"; "s" ] = Psi.Audit.Allow);
  (* Denied queries are not remembered for overlap purposes. *)
  Alcotest.(check bool) "repeat of denied still judged vs allowed set" true
    (q [ "p"; "q"; "x"; "y" ] = Psi.Audit.Allow)

let test_audit_result_rules () =
  let a =
    Psi.Audit.create
      {
        Psi.Audit.permissive with
        Psi.Audit.min_result_size = Some 3;
        Psi.Audit.max_result_fraction = Some 0.5;
      }
  in
  ignore (Psi.Audit.check_query a ~peer:"r" ~operation:"intersect" ~input_values:[ "a" ]);
  Alcotest.(check bool) "tiny result denied" true
    (match Psi.Audit.check_result a ~peer:"r" ~result_size:2 ~own_set_size:100 with
    | Psi.Audit.Deny _ -> true
    | Psi.Audit.Allow -> false);
  Alcotest.(check bool) "zero result fine" true
    (Psi.Audit.check_result a ~peer:"r" ~result_size:0 ~own_set_size:100 = Psi.Audit.Allow);
  Alcotest.(check bool) "over-revealing denied" true
    (match Psi.Audit.check_result a ~peer:"r" ~result_size:80 ~own_set_size:100 with
    | Psi.Audit.Deny _ -> true
    | Psi.Audit.Allow -> false);
  Alcotest.(check bool) "normal result fine" true
    (Psi.Audit.check_result a ~peer:"r" ~result_size:30 ~own_set_size:100 = Psi.Audit.Allow)

let test_audit_trail () =
  let a = Psi.Audit.create Psi.Audit.default_policy in
  ignore
    (Psi.Audit.check_query a ~peer:"r" ~operation:"intersect" ~input_values:[ "a"; "b" ]);
  ignore (Psi.Audit.check_result a ~peer:"r" ~result_size:5 ~own_set_size:50);
  match Psi.Audit.log a with
  | [ e ] ->
      Alcotest.(check string) "peer" "r" e.Psi.Audit.peer;
      Alcotest.(check string) "op" "intersect" e.Psi.Audit.operation;
      Alcotest.(check int) "input size" 2 e.Psi.Audit.input_size;
      Alcotest.(check (option int)) "result recorded" (Some 5) e.Psi.Audit.result_size
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Private_query planner                                               *)
(* ------------------------------------------------------------------ *)

let run_ok spec =
  match Psi.Private_query.run cfg spec ~sender:customers_s ~receiver:customers_r () with
  | Ok o -> o
  | Error e -> Alcotest.failf "unexpected denial: %s" e

let test_pq_intersect () =
  let o = run_ok (Psi.Private_query.Intersect { attr = "email" }) in
  (match o.Psi.Private_query.answer with
  | Psi.Private_query.Values vs ->
      Alcotest.(check (list value)) "values"
        [ Value.Text "bob@x.com"; Value.Text "cleo@x.com" ]
        vs
  | Psi.Private_query.Size _ | Psi.Private_query.Rows _ -> Alcotest.fail "wrong shape");
  Alcotest.(check int) "|V_S|" 4 o.Psi.Private_query.v_s;
  Alcotest.(check int) "|V_R|" 3 o.Psi.Private_query.v_r

let test_pq_intersect_size () =
  let o = run_ok (Psi.Private_query.Intersect_size { attr = "email" }) in
  match o.Psi.Private_query.answer with
  | Psi.Private_query.Size n -> Alcotest.(check int) "size" 2 n
  | Psi.Private_query.Values _ | Psi.Private_query.Rows _ -> Alcotest.fail "wrong shape"

let test_pq_equijoin_typed_payload () =
  let o =
    run_ok (Psi.Private_query.Equijoin { attr = "email"; payload = [ "plan"; "spend" ] })
  in
  match o.Psi.Private_query.answer with
  | Psi.Private_query.Rows rows ->
      Alcotest.(check int) "two joining values" 2 (List.length rows);
      let cleo = List.assoc (Value.Text "cleo@x.com") rows in
      Alcotest.(check (list (list value))) "typed payload round-trip"
        [ [ Value.Text "pro"; Value.Int 310 ] ]
        cleo
  | Psi.Private_query.Values _ | Psi.Private_query.Size _ -> Alcotest.fail "wrong shape"

let test_pq_equijoin_size () =
  let o = run_ok (Psi.Private_query.Equijoin_size { attr = "email" }) in
  match o.Psi.Private_query.answer with
  | Psi.Private_query.Size n ->
      Alcotest.(check int) "size matches relop"
        (Relop.equijoin_size customers_r customers_s ~on:("email", "email"))
        n
  | Psi.Private_query.Values _ | Psi.Private_query.Rows _ -> Alcotest.fail "wrong shape"

let test_pq_matches_plaintext_all_specs () =
  List.iter
    (fun spec ->
      let o = run_ok spec in
      let plain = Psi.Private_query.plaintext spec ~sender:customers_s ~receiver:customers_r in
      Alcotest.(check bool)
        ("oracle agreement: " ^
          (match spec with
          | Psi.Private_query.Intersect _ -> "intersect"
          | Psi.Private_query.Intersect_size _ -> "intersect_size"
          | Psi.Private_query.Equijoin _ -> "equijoin"
          | Psi.Private_query.Equijoin_size _ -> "equijoin_size"))
        true
        (o.Psi.Private_query.answer = plain))
    [
      Psi.Private_query.Intersect { attr = "email" };
      Psi.Private_query.Intersect_size { attr = "email" };
      Psi.Private_query.Equijoin { attr = "email"; payload = [ "plan" ] };
      Psi.Private_query.Equijoin_size { attr = "email" };
    ]

let test_pq_audit_denies_over_revealing () =
  (* R's set is a subset probe revealing 100% of what it asks about;
     with max_result_fraction = 0.4 over S's 4 values, the 2-element
     answer (50%) is denied. *)
  let audit =
    Psi.Audit.create
      { Psi.Audit.permissive with Psi.Audit.max_result_fraction = Some 0.4 }
  in
  match
    Psi.Private_query.run cfg ~audit (Psi.Private_query.Intersect { attr = "email" })
      ~sender:customers_s ~receiver:customers_r ()
  with
  | Error reason -> Alcotest.(check bool) "denied with reason" true (String.length reason > 0)
  | Ok _ -> Alcotest.fail "expected denial"

let test_pq_audit_allows_and_logs () =
  let audit = Psi.Audit.create Psi.Audit.permissive in
  (match
     Psi.Private_query.run cfg ~audit ~peer:"acme"
       (Psi.Private_query.Intersect_size { attr = "email" })
       ~sender:customers_s ~receiver:customers_r ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected denial: %s" e);
  Alcotest.(check int) "logged" 1 (Psi.Audit.queries_from audit ~peer:"acme")

let test_pq_missing_column () =
  Alcotest.(check bool) "raises Not_found" true
    (try
       ignore
         (Psi.Private_query.run cfg (Psi.Private_query.Intersect { attr = "nope" })
            ~sender:customers_s ~receiver:customers_r ());
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Aggregate (private equijoin SUM, §7 future work)                    *)
(* ------------------------------------------------------------------ *)

let agg_records = [ ("a", 10); ("b", 20); ("b", 5); ("c", 7); ("d", 100) ]

let test_aggregate_basic () =
  let o =
    Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:agg_records
      ~receiver_values:[ "b"; "c"; "x" ] ()
  in
  let r = o.Runner.receiver_result in
  (* b contributes 25 (two records), c contributes 7. *)
  Alcotest.(check int) "sum" 32 r.Psi.Aggregate.sum;
  Alcotest.(check (list string)) "intersection" [ "b"; "c" ] r.Psi.Aggregate.intersection;
  Alcotest.(check int) "|V_S|" 4 r.Psi.Aggregate.v_s_count;
  Alcotest.(check int) "|V_R|" 3 o.Runner.sender_result.Psi.Aggregate.v_r_count

let test_aggregate_empty_intersection () =
  let o =
    Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:agg_records
      ~receiver_values:[ "q"; "z" ] ()
  in
  Alcotest.(check int) "sum 0" 0 o.Runner.receiver_result.Psi.Aggregate.sum;
  Alcotest.(check (list string)) "no matches" []
    o.Runner.receiver_result.Psi.Aggregate.intersection

let test_aggregate_full_overlap () =
  let o =
    Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:agg_records
      ~receiver_values:[ "a"; "b"; "c"; "d" ] ()
  in
  Alcotest.(check int) "total" 142 o.Runner.receiver_result.Psi.Aggregate.sum

let test_aggregate_zero_contributions () =
  let o =
    Psi.Aggregate.run cfg ~key_bits:128
      ~sender_records:[ ("a", 0); ("b", 0) ]
      ~receiver_values:[ "a"; "b" ] ()
  in
  Alcotest.(check int) "all zeros" 0 o.Runner.receiver_result.Psi.Aggregate.sum

let test_aggregate_negative_rejected () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore
         (Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:[ ("a", -1) ]
            ~receiver_values:[ "a" ] ());
       false
     with Invalid_argument _ -> true)

let test_aggregate_sender_never_sees_plaintext_sum () =
  (* S's view: Y_R (sorted group elements) and one Paillier ciphertext.
     The decrypted value S sees is sum + rho, uniform mod n -- here we
     check the structural property: the blinded message is a single
     ciphertext-sized blob, not a plaintext integer. *)
  let o =
    Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:agg_records
      ~receiver_values:[ "b"; "c" ] ()
  in
  let blinded =
    List.find
      (fun (m : Wire.Message.t) -> m.Wire.Message.tag = "aggregate/blinded")
      o.Runner.sender_view
  in
  match blinded.Wire.Message.payload with
  | Wire.Message.Elements [ c ] ->
      Alcotest.(check bool) "ciphertext sized" true (String.length c >= 32)
  | _ -> Alcotest.fail "expected a single ciphertext"

let test_aggregate_op_counts_match_model () =
  let o =
    Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:agg_records
      ~receiver_values:[ "b"; "c"; "x" ] ()
  in
  let s = o.Runner.sender_result.Psi.Aggregate.ops in
  let r = o.Runner.receiver_result.Psi.Aggregate.ops in
  (* |V_S| = 4 distinct sender values, |V_R| = 3, intersection = 2. *)
  let hashes, ce, pail = Psi.Aggregate.exact_ops ~v_s:4 ~v_r:3 ~intersection:2 in
  Alcotest.(check int) "hashes" hashes (s.P.hashes + r.P.hashes);
  Alcotest.(check int) "Ce = |V_S| + 3|V_R|" ce (s.P.encryptions + r.P.encryptions);
  Alcotest.(check int) "Paillier ops" pail (s.P.cipher_ops + r.P.cipher_ops)

let test_aggregate_estimate_shape () =
  let e =
    Psi.Aggregate.estimate Psi.Cost_model.paper_params ~v_s:1000 ~v_r:1000 ()
  in
  (* Ce part: 1000 + 3000 = 4000; Paillier: 1002*4 = 4008. *)
  Alcotest.(check bool) "encryptions ~ 8008" true
    (Float.abs (e.Psi.Cost_model.encryptions -. 8008.) < 1.);
  Alcotest.(check bool) "comm > plain intersection size" true
    (e.Psi.Cost_model.comm_bits > 3000. *. 1024.)

let test_aggregate_randomized () =
  List.iter
    (fun seed ->
      let base_s, base_r =
        Psi.Workload.value_sets ~seed ~n_s:20 ~n_r:15 ~overlap:8
      in
      let records = List.mapi (fun i v -> (v, (i * 13) mod 97)) base_s in
      let o =
        Psi.Aggregate.run cfg ~key_bits:128 ~seed ~sender_records:records
          ~receiver_values:base_r ()
      in
      let expected =
        List.fold_left
          (fun acc (v, x) -> if List.mem v base_r then acc + x else acc)
          0 records
      in
      Alcotest.(check int) (seed ^ ": sum") expected
        o.Runner.receiver_result.Psi.Aggregate.sum)
    [ "agg-1"; "agg-2"; "agg-3" ]

(* ------------------------------------------------------------------ *)
(* PIR (private selection, §2.4)                                       *)
(* ------------------------------------------------------------------ *)

let pir_records = [ "alpha"; "bravo-longer-record"; ""; "delta\x00with\x00nuls"; "echo" ]

let test_pir_retrieves_every_index () =
  List.iteri
    (fun i expected ->
      let o = Psi.Pir.run ~key_bits:128 ~records:pir_records ~index:i () in
      Alcotest.(check string)
        (Printf.sprintf "record %d" i)
        expected o.Runner.receiver_result.Psi.Pir.record)
    pir_records

let test_pir_single_record () =
  let o = Psi.Pir.run ~key_bits:128 ~records:[ "only" ] ~index:0 () in
  Alcotest.(check string) "single" "only" o.Runner.receiver_result.Psi.Pir.record

let test_pir_long_records_chunked () =
  (* Records longer than one Paillier chunk (128-bit key => ~14-byte
     chunks) exercise the multi-chunk reply path. *)
  let records = [ String.make 100 'a'; String.make 100 'b'; String.make 37 'c' ] in
  let o = Psi.Pir.run ~key_bits:128 ~records ~index:1 () in
  Alcotest.(check string) "100-byte record" (String.make 100 'b')
    o.Runner.receiver_result.Psi.Pir.record;
  Alcotest.(check int) "count" 3 o.Runner.sender_result.Psi.Pir.record_count

let test_pir_index_validation () =
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Psi.Pir.run ~key_bits:128 ~records:pir_records ~index:5 ());
       false
     with Invalid_argument _ -> true)

let test_pir_query_hides_index () =
  (* S's view: the public key plus [count] ciphertexts — same shape and
     sizes whatever the index. *)
  let view index =
    let o = Psi.Pir.run ~key_bits:128 ~seed:"fixed" ~records:pir_records ~index () in
    List.map
      (fun (m : Wire.Message.t) ->
        match m.Wire.Message.payload with
        | Wire.Message.Elements es -> (m.Wire.Message.tag, List.map String.length es)
        | _ -> Alcotest.fail "unexpected payload")
      o.Runner.sender_view
  in
  Alcotest.(check (list (pair string (list int)))) "identical shapes" (view 0) (view 4)

(* ------------------------------------------------------------------ *)
(* Value.of_key (used by the planner round-trip)                       *)
(* ------------------------------------------------------------------ *)

let test_value_of_key_roundtrip () =
  List.iter
    (fun v -> Alcotest.check value (Value.key v) v (Value.of_key (Value.key v)))
    [
      Value.Null; Value.Bool true; Value.Bool false; Value.Int 0; Value.Int (-42);
      Value.Int max_int; Value.Float 2.5; Value.Float (-0.125); Value.Text "";
      Value.Text "I42"; Value.Text "naïve";
    ];
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Value.of_key "Zwat");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "query-layer"
    [
      ( "third-party-size",
        [
          Alcotest.test_case "size and bytes" `Quick test_third_party_size;
          Alcotest.test_case "empty side" `Quick test_third_party_size_empty;
        ] );
      ( "group-by",
        [
          Alcotest.test_case "matches plaintext (with/without filter)" `Quick
            test_group_by_matches_plaintext;
          Alcotest.test_case "cell values" `Quick test_group_by_cell_values;
          Alcotest.test_case "medical = 2x2 instance" `Quick test_group_by_medical_consistency;
          Alcotest.test_case "multi-class tables" `Quick test_group_by_multiclass;
          Alcotest.test_case "degenerate cohorts" `Quick test_group_by_degenerate_cohorts;
        ] );
      ( "audit",
        [
          Alcotest.test_case "query limit per peer" `Quick test_audit_query_limit;
          Alcotest.test_case "overlap (tracker) defence" `Quick test_audit_overlap_defence;
          Alcotest.test_case "result-size rules" `Quick test_audit_result_rules;
          Alcotest.test_case "audit trail" `Quick test_audit_trail;
        ] );
      ( "private-query",
        [
          Alcotest.test_case "intersect" `Quick test_pq_intersect;
          Alcotest.test_case "intersect size" `Quick test_pq_intersect_size;
          Alcotest.test_case "equijoin typed payload" `Quick test_pq_equijoin_typed_payload;
          Alcotest.test_case "equijoin size" `Quick test_pq_equijoin_size;
          Alcotest.test_case "all specs match oracle" `Quick test_pq_matches_plaintext_all_specs;
          Alcotest.test_case "audit denies over-revealing" `Quick test_pq_audit_denies_over_revealing;
          Alcotest.test_case "audit allows and logs" `Quick test_pq_audit_allows_and_logs;
          Alcotest.test_case "missing column" `Quick test_pq_missing_column;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "basic sum with multi-records" `Quick test_aggregate_basic;
          Alcotest.test_case "empty intersection" `Quick test_aggregate_empty_intersection;
          Alcotest.test_case "full overlap" `Quick test_aggregate_full_overlap;
          Alcotest.test_case "zero contributions" `Quick test_aggregate_zero_contributions;
          Alcotest.test_case "negative rejected" `Quick test_aggregate_negative_rejected;
          Alcotest.test_case "sender sees only blinded ciphertext" `Quick
            test_aggregate_sender_never_sees_plaintext_sum;
          Alcotest.test_case "op counts match model" `Quick test_aggregate_op_counts_match_model;
          Alcotest.test_case "estimate shape" `Quick test_aggregate_estimate_shape;
          Alcotest.test_case "randomized sums" `Slow test_aggregate_randomized;
        ] );
      ( "pir",
        [
          Alcotest.test_case "retrieves every index" `Quick test_pir_retrieves_every_index;
          Alcotest.test_case "single record" `Quick test_pir_single_record;
          Alcotest.test_case "multi-chunk records" `Quick test_pir_long_records_chunked;
          Alcotest.test_case "index validation" `Quick test_pir_index_validation;
          Alcotest.test_case "query shape hides index" `Quick test_pir_query_hides_index;
        ] );
      ( "value-keys",
        [ Alcotest.test_case "of_key inverts key" `Quick test_value_of_key_roundtrip ] );
    ]
