(* Tests for the wire substrate: serialization primitives, message
   encoding, the metered channel, and the two-thread runner. *)

module Buf = Wire.Buf
module Message = Wire.Message
module Channel = Wire.Channel
module Runner = Wire.Runner

let msg = Alcotest.testable Message.pp Message.equal

let qtest name ?(count = 200) gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let gen_string max_len =
  QCheck2.Gen.(
    bind (int_range 0 max_len) (fun n ->
        map
          (fun l -> String.init n (List.nth l))
          (list_repeat n (map Char.chr (int_range 0 255)))))

(* ------------------------------------------------------------------ *)
(* Buf                                                                 *)
(* ------------------------------------------------------------------ *)

let test_varint_known () =
  let enc n =
    let w = Buf.writer () in
    Buf.write_varint w n;
    Buf.contents w
  in
  Alcotest.(check string) "0" "\x00" (enc 0);
  Alcotest.(check string) "127" "\x7f" (enc 127);
  Alcotest.(check string) "128" "\x80\x01" (enc 128);
  Alcotest.(check string) "300" "\xac\x02" (enc 300)

let prop_varint_roundtrip =
  qtest "varint roundtrip"
    QCheck2.Gen.(int_range 0 max_int)
    string_of_int
    (fun n ->
      let w = Buf.writer () in
      Buf.write_varint w n;
      let r = Buf.reader (Buf.contents w) in
      let v = Buf.read_varint r in
      Buf.at_end r && v = n)

let prop_bytes_roundtrip =
  qtest "length-prefixed bytes roundtrip" (gen_string 300) String.escaped (fun s ->
      let w = Buf.writer () in
      Buf.write_bytes w s;
      let r = Buf.reader (Buf.contents w) in
      String.equal (Buf.read_bytes r) s && Buf.at_end r)

let test_u32_roundtrip () =
  List.iter
    (fun n ->
      let w = Buf.writer () in
      Buf.write_u32 w n;
      let r = Buf.reader (Buf.contents w) in
      Alcotest.(check int) (string_of_int n) n (Buf.read_u32 r))
    [ 0; 1; 255; 65536; 0xffffffff ]

let test_truncated_input () =
  let r = Buf.reader "\x05abc" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Buf.read_bytes r);
       false
     with Buf.Parse_error _ -> true)

let test_trailing_bytes () =
  let r = Buf.reader "\x00extra" in
  ignore (Buf.read_u8 r);
  Alcotest.(check bool) "raises" true
    (try
       Buf.expect_end r;
       false
     with Buf.Parse_error _ -> true)

let test_writer_bounds () =
  let w = Buf.writer () in
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try
           f ();
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Buf.write_u8 w 256);
      (fun () -> Buf.write_u8 w (-1));
      (fun () -> Buf.write_u32 w (-1));
      (fun () -> Buf.write_u32 w 0x1_0000_0000);
      (fun () -> Buf.write_varint w (-5));
    ];
  (* Reader: negative raw length is a parse error, not a crash. *)
  Alcotest.(check bool) "negative read_raw" true
    (try
       ignore (Buf.read_raw (Buf.reader "abc") (-2));
       false
     with Buf.Parse_error _ -> true)

let test_sequenced_fields () =
  let w = Buf.writer () in
  Buf.write_u8 w 7;
  Buf.write_bytes w "hello";
  Buf.write_varint w 1000;
  Buf.write_raw w "xy";
  let r = Buf.reader (Buf.contents w) in
  Alcotest.(check int) "u8" 7 (Buf.read_u8 r);
  Alcotest.(check string) "bytes" "hello" (Buf.read_bytes r);
  Alcotest.(check int) "varint" 1000 (Buf.read_varint r);
  Alcotest.(check string) "raw" "xy" (Buf.read_raw r 2);
  Buf.expect_end r

(* ------------------------------------------------------------------ *)
(* Message                                                             *)
(* ------------------------------------------------------------------ *)

let gen_message =
  QCheck2.Gen.(
    let elt = gen_string 40 in
    bind (int_range 0 3) (fun kind ->
        bind (list_size (int_range 0 10) elt) (fun es ->
            map
              (fun tag ->
                let payload =
                  match kind with
                  | 0 -> Message.Elements es
                  | 1 -> Message.Element_pairs (List.map (fun e -> (e, e ^ "x")) es)
                  | 2 -> Message.Element_triples (List.map (fun e -> (e, e ^ "y", "z")) es)
                  | _ -> Message.Ciphertext_pairs (List.map (fun e -> (e, "ct" ^ e)) es)
                in
                Message.make ~tag payload)
              (map (fun i -> "tag" ^ string_of_int i) (int_range 0 99)))))

let prop_message_roundtrip =
  qtest "message encode/decode roundtrip" gen_message
    (fun m -> Format.asprintf "%a" Message.pp m)
    (fun m -> Message.equal m (Message.decode (Message.encode m)))

let test_message_element_count () =
  Alcotest.(check int) "elements" 3
    (Message.element_count (Message.make ~tag:"t" (Message.Elements [ "a"; "b"; "c" ])));
  Alcotest.(check int) "pairs" 4
    (Message.element_count (Message.make ~tag:"t" (Message.Element_pairs [ ("a", "b"); ("c", "d") ])));
  Alcotest.(check int) "triples" 6
    (Message.element_count
       (Message.make ~tag:"t" (Message.Element_triples [ ("a", "b", "c"); ("d", "e", "f") ])));
  Alcotest.(check int) "ciphertext pairs" 2
    (Message.element_count
       (Message.make ~tag:"t" (Message.Ciphertext_pairs [ ("a", "b"); ("c", "d") ])))

let test_message_decode_garbage () =
  (* Valid magic/version/tag but an unknown payload kind. *)
  Alcotest.(check bool) "bad kind raises" true
    (try
       ignore (Message.decode "\xa5\x01\x01t\x09\x00");
       false
     with Buf.Parse_error _ -> true)

let test_message_versioning () =
  let m = Message.make ~tag:"t" (Message.Elements [ "a" ]) in
  let enc = Message.encode m in
  Alcotest.(check char) "magic byte" '\xa5' enc.[0];
  Alcotest.(check char) "version byte" '\x01' enc.[1];
  (* Wrong magic / unknown version are rejected. *)
  let patch i c = String.mapi (fun j x -> if j = i then c else x) enc in
  List.iter
    (fun s ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Message.decode s);
           false
         with Buf.Parse_error _ -> true))
    [ patch 0 '\x00'; patch 1 '\x02' ]

let test_message_size () =
  let m = Message.make ~tag:"t" (Message.Elements [ "aaaa" ]) in
  Alcotest.(check int) "size = encoded length" (String.length (Message.encode m))
    (Message.size m)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let m1 = Message.make ~tag:"m1" (Message.Elements [ "hello"; "world" ])
let m2 = Message.make ~tag:"m2" (Message.Element_pairs [ ("a", "b") ])

let test_channel_order () =
  let a, b = Channel.create () in
  Channel.send a m1;
  Channel.send a m2;
  Alcotest.check msg "first" m1 (Channel.recv b);
  Alcotest.check msg "second" m2 (Channel.recv b);
  Channel.send b m2;
  Alcotest.check msg "reverse direction" m2 (Channel.recv a)

let test_channel_stats () =
  let a, b = Channel.create () in
  Channel.send a m1;
  Channel.send a m2;
  ignore (Channel.recv b);
  ignore (Channel.recv b);
  let sa = Channel.stats a and sb = Channel.stats b in
  Alcotest.(check int) "a sent msgs" 2 sa.Channel.messages_sent;
  Alcotest.(check int) "a sent bytes" (Message.size m1 + Message.size m2) sa.Channel.bytes_sent;
  Alcotest.(check int) "a sent elements" 4 sa.Channel.elements_sent;
  Alcotest.(check int) "b recv msgs" 2 sb.Channel.messages_received;
  Alcotest.(check int) "b recv bytes" sa.Channel.bytes_sent sb.Channel.bytes_received;
  Alcotest.(check int) "a largest frame"
    (max (Message.size m1) (Message.size m2))
    sa.Channel.max_message_bytes;
  Alcotest.(check int) "b sent nothing, no max" 0 sb.Channel.max_message_bytes;
  Alcotest.(check int) "no closes yet" 0 sa.Channel.closes;
  Channel.close a;
  Channel.close a;
  Alcotest.(check int) "a closes counted" 2 (Channel.stats a).Channel.closes;
  Alcotest.(check int) "b never closed" 0 (Channel.stats b).Channel.closes

let test_channel_transcripts () =
  let a, b = Channel.create () in
  Channel.send a m1;
  Channel.send b m2;
  ignore (Channel.recv b);
  ignore (Channel.recv a);
  Alcotest.(check (list msg)) "a sent" [ m1 ] (Channel.sent a);
  Alcotest.(check (list msg)) "b view" [ m1 ] (Channel.received b);
  Alcotest.(check (list msg)) "a view" [ m2 ] (Channel.received a)

let test_channel_close_unblocks () =
  let a, b = Channel.create () in
  let t = Thread.create (fun () -> Channel.close a) () in
  Alcotest.(check bool) "recv fails after close" true
    (try
       ignore (Channel.recv b);
       false
     with Wire.Protocol_error _ -> true);
  Thread.join t

let test_channel_oversized_frame () =
  let a, b = Channel.create () in
  let big = Message.make ~tag:"big" (Message.Elements [ String.make 200 'x' ]) in
  Channel.send a big;
  Alcotest.(check bool) "oversized frame rejected" true
    (try
       ignore (Channel.recv ~max_bytes:64 b);
       false
     with Wire.Protocol_error _ -> true);
  (* A small frame under the same bound still goes through. *)
  Channel.send a m1;
  Alcotest.check msg "small frame ok" m1 (Channel.recv ~max_bytes:64 b)

let test_bounded_read_bytes () =
  let w = Buf.writer () in
  Buf.write_bytes w (String.make 100 'a');
  let enc = Buf.contents w in
  (* Claimed length over the caller's bound: typed parse error, before
     any allocation. *)
  Alcotest.(check bool) "over bound rejected" true
    (try
       ignore (Buf.read_bytes ~max:99 (Buf.reader enc));
       false
     with Buf.Parse_error _ -> true);
  Alcotest.(check string) "at bound ok" (String.make 100 'a')
    (Buf.read_bytes ~max:100 (Buf.reader enc));
  (* A length prefix claiming far more than the input holds: the bound
     check fires first (no dependence on the truncation check). *)
  let w = Buf.writer () in
  Buf.write_varint w max_int;
  Alcotest.(check bool) "huge claimed length rejected" true
    (try
       ignore (Buf.read_bytes (Buf.reader (Buf.contents w)));
       false
     with Buf.Parse_error _ -> true)

let test_truncated_frame_typed_error () =
  (* A frame cut mid-element decodes to Parse_error, not a crash. *)
  let enc = Message.encode m1 in
  let cut = String.sub enc 0 (String.length enc - 3) in
  Alcotest.(check bool) "truncated frame rejected" true
    (try
       ignore (Message.decode cut);
       false
     with Buf.Parse_error _ -> true)

let test_channel_threads () =
  (* Concurrent producer/consumer of 100 messages. *)
  let a, b = Channel.create () in
  let t =
    Thread.create
      (fun () ->
        for i = 1 to 100 do
          Channel.send a (Message.make ~tag:(string_of_int i) (Message.Elements []))
        done)
      ()
  in
  for i = 1 to 100 do
    let m = Channel.recv b in
    Alcotest.(check string) "ordered" (string_of_int i) m.Message.tag
  done;
  Thread.join t

(* ------------------------------------------------------------------ *)
(* Channel edge cases, transports, fault injection                     *)
(* ------------------------------------------------------------------ *)

module Transport = Wire.Transport
module Fault = Wire.Fault

let test_recv_after_close_with_pending () =
  (* A peer that sends then closes: the message must still arrive, and
     only the next recv fails. *)
  let a, b = Channel.create () in
  Channel.send a m1;
  Channel.close a;
  Alcotest.check msg "pending message delivered" m1 (Channel.recv b);
  Alcotest.(check bool) "then peer-closed" true
    (try
       ignore (Channel.recv b);
       false
     with Wire.Protocol_error _ -> true)

let test_double_close () =
  let a, b = Channel.create () in
  Channel.send a m1;
  Channel.close a;
  Channel.close a;
  Alcotest.(check int) "closes counted" 2 (Channel.stats a).Channel.closes;
  Alcotest.check msg "pending survives double close" m1 (Channel.recv b);
  (* Closing after the peer closed is still fine, on both ends. *)
  Channel.close b;
  Channel.close b;
  Alcotest.(check int) "peer closes counted" 2 (Channel.stats b).Channel.closes

let test_zero_byte_frame () =
  (* An empty frame is a transport-level possibility (truncation fault,
     hostile peer); it must fail message decoding, not crash. *)
  let a, b = Transport.Memory.pair () in
  let ep = Channel.of_transport b in
  Transport.send a "";
  Alcotest.(check bool) "zero-byte frame is a parse error" true
    (try
       ignore (Channel.recv ep);
       false
     with Buf.Parse_error _ -> true)

let test_recv_timeout () =
  let _, b = Channel.create () in
  Alcotest.(check bool) "per-call timeout fires" true
    (try
       ignore (Channel.recv ~timeout_s:0.02 b);
       false
     with Wire.Timeout _ -> true);
  Channel.set_timeout b (Some 0.02);
  Alcotest.(check bool) "endpoint default timeout fires" true
    (try
       ignore (Channel.recv b);
       false
     with Wire.Timeout _ -> true)

let test_timeout_then_delivery () =
  (* A timeout is transient: the same endpoint still works afterwards. *)
  let a, b = Channel.create () in
  (try ignore (Channel.recv ~timeout_s:0.01 b) with Wire.Timeout _ -> ());
  Channel.send a m1;
  Alcotest.check msg "delivery after a timeout" m1 (Channel.recv ~timeout_s:1.0 b)

let test_socket_channel_roundtrip () =
  let ta, tb = Transport.Socket.pair () in
  let a = Channel.of_transport ta and b = Channel.of_transport tb in
  Alcotest.(check string) "backend name" "socket" (Channel.transport_name a);
  Channel.send a m1;
  Channel.send a m2;
  Channel.send b m2;
  Alcotest.check msg "first" m1 (Channel.recv ~timeout_s:5. b);
  Alcotest.check msg "second" m2 (Channel.recv ~timeout_s:5. b);
  Alcotest.check msg "reverse" m2 (Channel.recv ~timeout_s:5. a);
  (* Payload accounting is identical to the memory transport. *)
  Alcotest.(check int) "byte accounting"
    (Message.size m1 + Message.size m2)
    (Channel.stats a).Channel.bytes_sent;
  Channel.close a;
  Alcotest.(check bool) "close reaches the peer" true
    (try
       ignore (Channel.recv ~timeout_s:5. b);
       false
     with Wire.Protocol_error _ -> true)

let test_socket_oversized_frame () =
  let ta, tb = Transport.Socket.pair () in
  let a = Channel.of_transport ta and b = Channel.of_transport tb in
  let big = Message.make ~tag:"big" (Message.Elements [ String.make 200 'x' ]) in
  Channel.send a big;
  (* The prefix is checked against the bound before the payload buffer
     is allocated or read. *)
  Alcotest.(check bool) "oversized socket frame rejected" true
    (try
       ignore (Channel.recv ~timeout_s:5. ~max_bytes:64 b);
       false
     with Wire.Protocol_error _ -> true)

let test_socket_deadline_mid_frame () =
  (* A frame that stalls after the header: the deadline must fire even
     though the transfer already started. *)
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ep = Channel.of_transport (Transport.Socket.of_fd fd_a) in
  (* Header claims 10 bytes; only 3 ever arrive. *)
  let partial = "\x00\x00\x00\x0aabc" in
  let n = Unix.write_substring fd_b partial 0 (String.length partial) in
  Alcotest.(check int) "partial frame written" (String.length partial) n;
  Alcotest.(check bool) "deadline fires mid-frame" true
    (try
       ignore (Channel.recv ~timeout_s:0.05 ep);
       false
     with Wire.Timeout _ -> true);
  Unix.close fd_a;
  Unix.close fd_b

let test_socket_peer_vanishes_mid_frame () =
  (* EOF inside a frame is a protocol error, not a clean close. *)
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ep = Channel.of_transport (Transport.Socket.of_fd fd_a) in
  let partial = "\x00\x00\x00\x0aabc" in
  ignore (Unix.write_substring fd_b partial 0 (String.length partial));
  Unix.close fd_b;
  Alcotest.(check bool) "EOF mid-frame is a protocol error" true
    (try
       ignore (Channel.recv ~timeout_s:5. ep);
       false
     with Wire.Protocol_error _ -> true);
  Unix.close fd_a

(* ------------------------------------------------------------------ *)
(* Streaming sends                                                     *)
(* ------------------------------------------------------------------ *)

(* A [next] that hands out [xs] in chunks of [k]. *)
let chunked k xs =
  let rest = ref xs in
  fun () ->
    match !rest with
    | [] -> None
    | _ ->
        let rec take n = function
          | x :: tl when n > 0 ->
              let hd, rest = take (n - 1) tl in
              (x :: hd, rest)
          | l -> ([], l)
        in
        let hd, tl = take k !rest in
        rest := tl;
        Some hd

let test_stream_elements_byte_identical () =
  let width = 7 in
  let els = List.init 9 (fun i -> String.init width (fun j -> Char.chr (i + j))) in
  let plain = Message.make ~tag:"ys" (Message.Elements els) in
  let a, b = Channel.create () in
  (* Uneven chunking (4+4+1) must still assemble the exact frame
     [send a plain] would produce. *)
  Channel.send_elements_stream a ~tag:"ys" ~width ~count:(List.length els)
    (chunked 4 els);
  Alcotest.check msg "streamed frame decodes to the plain message" plain
    (Channel.recv b);
  Alcotest.(check int) "streamed frame length = Message.size"
    (Message.size plain)
    (Channel.stats a).Channel.bytes_sent;
  Alcotest.(check (list msg)) "transcript records the assembled message"
    [ plain ] (Channel.sent a)

let test_stream_pairs_byte_identical () =
  let width = 5 in
  let mk i c = String.init width (fun j -> Char.chr (i + j + Char.code c)) in
  let prs = List.init 11 (fun i -> (mk i 'a', mk i 'B')) in
  let plain = Message.make ~tag:"y-fy" (Message.Element_pairs prs) in
  let a, b = Channel.create () in
  Channel.send_pairs_stream a ~tag:"y-fy" ~width ~count:(List.length prs)
    (chunked 3 prs);
  Alcotest.check msg "streamed pairs decode to the plain message" plain
    (Channel.recv b);
  Alcotest.(check int) "streamed pairs frame length = Message.size"
    (Message.size plain)
    (Channel.stats a).Channel.bytes_sent

let test_stream_header_math () =
  (* The incremental encode writes [encode_header] then [count] fields
     of [field_len width] bytes each; that arithmetic must agree with
     the one-shot [encode] for every payload kind that streams. *)
  let check ~kind ~tag ~width m =
    let n = Message.element_count m in
    let per_item = match kind with 0 -> 1 | _ -> 2 in
    Alcotest.(check int)
      (Printf.sprintf "size arithmetic (kind %d)" kind)
      (String.length (Message.encode m))
      (String.length (Message.encode_header ~tag ~kind ~count:(n / per_item))
      + n * Message.field_len width)
  in
  let els = List.init 5 (fun _ -> String.make 4 'x') in
  check ~kind:0 ~tag:"t" ~width:4 (Message.make ~tag:"t" (Message.Elements els));
  let prs = List.init 6 (fun _ -> (String.make 9 'p', String.make 9 'q')) in
  check ~kind:1 ~tag:"pairs" ~width:9
    (Message.make ~tag:"pairs" (Message.Element_pairs prs));
  (* field_len folds the varint length prefix in. *)
  Alcotest.(check int) "field_len small" (1 + 4) (Message.field_len 4);
  Alcotest.(check int) "field_len at varint boundary" (2 + 128)
    (Message.field_len 128);
  Alcotest.(check int) "varint_len 0" 1 (Message.varint_len 0);
  Alcotest.(check int) "varint_len 127" 1 (Message.varint_len 127);
  Alcotest.(check int) "varint_len 128" 2 (Message.varint_len 128)

let test_stream_mismatch_rejected () =
  let a, _b = Channel.create () in
  Alcotest.(check bool) "wrong width rejected" true
    (try
       Channel.send_elements_stream a ~tag:"w" ~width:4 ~count:1
         (chunked 1 [ "toolong" ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "short count rejected" true
    (try
       Channel.send_elements_stream a ~tag:"w" ~width:4 ~count:3
         (chunked 2 [ "aaaa"; "bbbb" ]);
       false
     with Invalid_argument _ -> true)

let test_stream_over_socket () =
  let ta, tb = Transport.Socket.pair () in
  let a = Channel.of_transport ta and b = Channel.of_transport tb in
  let width = 8 in
  let els = List.init 100 (fun i -> Printf.sprintf "%08d" i) in
  let plain = Message.make ~tag:"ys" (Message.Elements els) in
  let got = ref None in
  let t = Thread.create (fun () -> got := Some (Channel.recv ~timeout_s:5. b)) () in
  Channel.send_elements_stream a ~tag:"ys" ~width ~count:(List.length els)
    (chunked 16 els);
  Thread.join t;
  (match !got with
  | Some m -> Alcotest.check msg "socket streamed frame" plain m
  | None -> Alcotest.fail "no message received");
  Alcotest.(check int) "socket streamed bytes = Message.size"
    (Message.size plain)
    (Channel.stats a).Channel.bytes_sent

let test_record_views_off () =
  let a, b = Channel.create () in
  Channel.send a m1;
  ignore (Channel.recv b);
  Channel.set_record_views a false;
  Channel.set_record_views b false;
  (* Turning recording off also releases what was already logged. *)
  Alcotest.(check (list msg)) "sent log released" [] (Channel.sent a);
  Alcotest.(check (list msg)) "received log released" [] (Channel.received b);
  let width = 5 in
  let els = List.init 8 (fun i -> Printf.sprintf "%05d" i) in
  let plain = Message.make ~tag:"ys" (Message.Elements els) in
  Channel.send a m2;
  Channel.send_elements_stream a ~tag:"ys" ~width ~count:(List.length els)
    (chunked 3 els);
  Alcotest.check msg "plain frame unaffected" m2 (Channel.recv b);
  Alcotest.check msg "streamed frame byte-identical with logs off" plain
    (Channel.recv b);
  Alcotest.(check (list msg)) "nothing new logged on a" [] (Channel.sent a);
  Alcotest.(check (list msg)) "nothing new logged on b" [] (Channel.received b);
  (* Counters keep full fidelity either way. *)
  let st = Channel.stats a in
  Alcotest.(check int) "messages counted" 3 st.Channel.messages_sent;
  Alcotest.(check int) "elements counted"
    (Message.element_count m1 + Message.element_count m2 + List.length els)
    st.Channel.elements_sent;
  Alcotest.(check int) "bytes counted"
    (Message.size m1 + Message.size m2 + Message.size plain)
    st.Channel.bytes_sent

let fault_pair plan =
  let a, b = Transport.Memory.pair () in
  let (fa, fb), stats = Fault.wrap_pair plan (a, b) in
  (Channel.of_transport fa, Channel.of_transport fb, stats)

let test_fault_drop () =
  let a, b, stats = fault_pair (Fault.plan ~drop:1.0 ~seed:"drop" ()) in
  Channel.send a m1;
  Alcotest.(check int) "drop counted" 1 stats.Fault.drops;
  Alcotest.(check bool) "dropped frame never arrives" true
    (try
       ignore (Channel.recv ~timeout_s:0.02 b);
       false
     with Wire.Timeout _ -> true)

let test_fault_duplicate () =
  let a, b, stats = fault_pair (Fault.plan ~duplicate:1.0 ~seed:"dup" ()) in
  Channel.send a m1;
  Alcotest.check msg "first copy" m1 (Channel.recv ~timeout_s:1. b);
  Alcotest.check msg "second copy" m1 (Channel.recv ~timeout_s:1. b);
  Alcotest.(check int) "duplicate counted" 1 stats.Fault.duplicates

let test_fault_truncate () =
  let a, b, stats = fault_pair (Fault.plan ~truncate:1.0 ~seed:"trunc" ()) in
  Channel.send a m1;
  Alcotest.(check bool) "truncated frame fails to parse" true
    (try
       ignore (Channel.recv ~timeout_s:1. b);
       false
     with Buf.Parse_error _ -> true);
  Alcotest.(check int) "truncation counted" 1 stats.Fault.truncates

let test_fault_cut_after () =
  let a, b, stats = fault_pair (Fault.plan ~cut_after:1 ~seed:"cut" ()) in
  Channel.send a m1;
  Alcotest.(check bool) "second send disconnects" true
    (try
       Channel.send a m2;
       false
     with Wire.Protocol_error _ -> true);
  Alcotest.(check int) "disconnect counted" 1 stats.Fault.disconnects;
  (* The frame sent before the cut still drains; then the close shows. *)
  Alcotest.check msg "pre-cut frame drains" m1 (Channel.recv ~timeout_s:1. b);
  Alcotest.(check bool) "then peer-closed" true
    (try
       ignore (Channel.recv ~timeout_s:1. b);
       false
     with Wire.Protocol_error _ -> true)

let test_fault_determinism () =
  (* Same seed, same frame sequence: identical fault schedule. *)
  let run () =
    let a, b, stats =
      fault_pair
        (Fault.plan ~drop:0.3 ~truncate:0.2 ~duplicate:0.2 ~seed:"determinism" ())
    in
    for i = 1 to 30 do
      Channel.send a (Message.make ~tag:(string_of_int i) (Message.Elements []))
    done;
    let received = ref 0 in
    (try
       while true do
         match Channel.recv ~timeout_s:0.01 b with
         | _ -> incr received
         | exception Buf.Parse_error _ -> incr received
       done
     with Wire.Timeout _ -> ());
    (stats.Fault.drops, stats.Fault.truncates, stats.Fault.duplicates, !received)
  in
  let d1, t1, u1, r1 = run () in
  let d2, t2, u2, r2 = run () in
  Alcotest.(check (list int))
    "fault schedule replays from the seed" [ d1; t1; u1; r1 ] [ d2; t2; u2; r2 ];
  Alcotest.(check bool) "schedule actually injected faults" true (d1 > 0 && t1 > 0 && u1 > 0)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_pingpong () =
  let outcome =
    Runner.run
      ~sender:(fun ep ->
        Channel.send ep m1;
        let got = Channel.recv ep in
        got.Message.tag)
      ~receiver:(fun ep ->
        let got = Channel.recv ep in
        Channel.send ep m2;
        got.Message.tag)
  in
  Alcotest.(check string) "sender got" "m2" outcome.Runner.sender_result;
  Alcotest.(check string) "receiver got" "m1" outcome.Runner.receiver_result;
  Alcotest.(check int) "total bytes" (Message.size m1 + Message.size m2) outcome.Runner.total_bytes;
  Alcotest.(check (list msg)) "receiver view" [ m1 ] outcome.Runner.receiver_view;
  Alcotest.(check (list msg)) "sender view" [ m2 ] outcome.Runner.sender_view

let test_runner_sender_exception () =
  Alcotest.check_raises "propagates" (Failure "sender boom") (fun () ->
      ignore
        (Runner.run
           ~sender:(fun _ -> failwith "sender boom")
           ~receiver:(fun ep ->
             try ignore (Channel.recv ep) with Wire.Protocol_error _ -> ())))

let test_runner_receiver_exception () =
  Alcotest.check_raises "propagates" (Failure "receiver boom") (fun () ->
      ignore
        (Runner.run
           ~sender:(fun ep ->
             try ignore (Channel.recv ep) with Wire.Protocol_error _ -> ())
           ~receiver:(fun _ -> failwith "receiver boom")))

let test_runner_deadlock_free_on_crash () =
  (* Receiver crashes while sender waits forever: close must unblock. *)
  match
    Runner.run
      ~sender:(fun ep ->
        try ignore (Channel.recv ep); "no" with Wire.Protocol_error _ -> "unblocked")
      ~receiver:(fun _ -> failwith "early crash")
  with
  | exception Failure m -> Alcotest.(check string) "receiver error wins" "early crash" m
  | _ -> Alcotest.fail "expected exception"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wire"
    [
      ( "buf",
        [
          Alcotest.test_case "varint known encodings" `Quick test_varint_known;
          prop_varint_roundtrip;
          prop_bytes_roundtrip;
          Alcotest.test_case "u32 roundtrip" `Quick test_u32_roundtrip;
          Alcotest.test_case "truncated input" `Quick test_truncated_input;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
          Alcotest.test_case "writer bounds" `Quick test_writer_bounds;
          Alcotest.test_case "bounded read_bytes" `Quick test_bounded_read_bytes;
          Alcotest.test_case "sequenced fields" `Quick test_sequenced_fields;
        ] );
      ( "message",
        [
          prop_message_roundtrip;
          Alcotest.test_case "element counts" `Quick test_message_element_count;
          Alcotest.test_case "garbage rejected" `Quick test_message_decode_garbage;
          Alcotest.test_case "truncated frame typed error" `Quick
            test_truncated_frame_typed_error;
          Alcotest.test_case "magic and version" `Quick test_message_versioning;
          Alcotest.test_case "size" `Quick test_message_size;
        ] );
      ( "channel",
        [
          Alcotest.test_case "FIFO order" `Quick test_channel_order;
          Alcotest.test_case "stats" `Quick test_channel_stats;
          Alcotest.test_case "transcripts" `Quick test_channel_transcripts;
          Alcotest.test_case "record views off" `Quick test_record_views_off;
          Alcotest.test_case "close unblocks" `Quick test_channel_close_unblocks;
          Alcotest.test_case "oversized frame" `Quick test_channel_oversized_frame;
          Alcotest.test_case "cross-thread" `Quick test_channel_threads;
          Alcotest.test_case "recv after close with pending" `Quick
            test_recv_after_close_with_pending;
          Alcotest.test_case "double close" `Quick test_double_close;
          Alcotest.test_case "zero-byte frame" `Quick test_zero_byte_frame;
          Alcotest.test_case "recv timeout" `Quick test_recv_timeout;
          Alcotest.test_case "timeout then delivery" `Quick test_timeout_then_delivery;
        ] );
      ( "transport",
        [
          Alcotest.test_case "socket channel roundtrip" `Quick
            test_socket_channel_roundtrip;
          Alcotest.test_case "socket oversized frame" `Quick test_socket_oversized_frame;
          Alcotest.test_case "socket deadline mid-frame" `Quick
            test_socket_deadline_mid_frame;
          Alcotest.test_case "socket EOF mid-frame" `Quick
            test_socket_peer_vanishes_mid_frame;
        ] );
      ( "stream",
        [
          Alcotest.test_case "elements frame byte-identical" `Quick
            test_stream_elements_byte_identical;
          Alcotest.test_case "pairs frame byte-identical" `Quick
            test_stream_pairs_byte_identical;
          Alcotest.test_case "header/field size arithmetic" `Quick
            test_stream_header_math;
          Alcotest.test_case "width/count mismatch rejected" `Quick
            test_stream_mismatch_rejected;
          Alcotest.test_case "streamed over socket" `Quick test_stream_over_socket;
        ] );
      ( "fault",
        [
          Alcotest.test_case "drop" `Quick test_fault_drop;
          Alcotest.test_case "duplicate" `Quick test_fault_duplicate;
          Alcotest.test_case "truncate" `Quick test_fault_truncate;
          Alcotest.test_case "cut after" `Quick test_fault_cut_after;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
        ] );
      ( "runner",
        [
          Alcotest.test_case "ping-pong" `Quick test_runner_pingpong;
          Alcotest.test_case "sender exception" `Quick test_runner_sender_exception;
          Alcotest.test_case "receiver exception" `Quick test_runner_receiver_exception;
          Alcotest.test_case "crash does not deadlock" `Quick test_runner_deadlock_free_on_crash;
        ] );
    ]
