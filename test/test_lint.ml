(* psi_lint unit tests: the lexer against tricky OCaml surface syntax,
   every rule both firing and suppressed, and the baseline freeze /
   unfreeze workflow. All fixtures are in-memory sources fed through
   [Analysis.Driver.analyze] — the linter never touches the filesystem
   here, exactly as in production (the binary does the IO). *)

module Lexer = Analysis.Lexer
module Rule = Analysis.Rule
module Suppress = Analysis.Suppress
module Driver = Analysis.Driver

let no_baseline = Suppress.Baseline.empty

let analyze ?(baseline = no_baseline) ~path src =
  Driver.analyze ~baseline [ { Driver.path; content = src } ]

let new_rules o = List.map (fun (f : Rule.finding) -> f.rule) (Driver.new_findings o)

let suppressed_rules (o : Driver.outcome) =
  List.filter_map
    (fun (c : Driver.classified) ->
      match c.status with `Suppressed _ -> Some c.finding.Rule.rule | _ -> None)
    o.results

let baselined_rules (o : Driver.outcome) =
  List.filter_map
    (fun (c : Driver.classified) ->
      match c.status with `Baselined _ -> Some c.finding.Rule.rule | _ -> None)
    o.results

let check_rules = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

(* Concatenating token texts must reproduce the source minus layout:
   nothing is lost and nothing is invented, whatever the nesting. *)
let strip_ws s =
  String.to_seq s
  |> Seq.filter (fun c -> not (c = ' ' || c = '\t' || c = '\n' || c = '\r'))
  |> String.of_seq

let roundtrip src =
  let toks = Lexer.tokens_of_string src in
  Alcotest.(check string)
    "token texts reproduce the source" (strip_ws src)
    (strip_ws (String.concat "" (List.map (fun (t : Lexer.token) -> t.text) toks)))

let test_lexer_roundtrip () =
  roundtrip {x|let f (a : int) = a + 1|x};
  roundtrip {x|let s = "quote \" and (* not a comment *) inside"|x};
  roundtrip {x|(* outer (* nested *) and a "string *) inside" *) let x = 1|x};
  roundtrip {x|let c = 'a' and nl = '\n' and hex = '\x41' and poly : 'a t = v|x};
  roundtrip {x|let raw = {q|verbatim "no escapes" here|q} and empty = {||}|x};
  roundtrip {x|let n = 0xFF_EC and f = 1.5e-3 and g = 0x1p+4|x}

let kinds src = List.map (fun (t : Lexer.token) -> t.Lexer.kind) (Lexer.tokens_of_string src)

let test_lexer_kinds () =
  (* A nested comment is ONE token; the string inside does not escape. *)
  (match kinds {x|(* a (* b *) "c *) d" *) x|x} with
  | [ Lexer.Comment; Lexer.Ident ] -> ()
  | _ -> Alcotest.fail "nested comment with embedded string should be one Comment token");
  (* Char literal vs type-variable quote. *)
  (match kinds {x|'a' 'b|x} with
  | [ Lexer.Char_lit; Lexer.Symbol; Lexer.Ident ] -> ()
  | _ -> Alcotest.fail "char literal then type variable");
  (* Qualified access lexes as Uident / "." / Ident. *)
  match Lexer.significant (Lexer.tokens_of_string "Stdlib.compare") with
  | [ { kind = Lexer.Uident; text = "Stdlib"; _ }; { kind = Lexer.Symbol; text = "."; _ };
      { kind = Lexer.Ident; text = "compare"; _ } ] ->
      ()
  | _ -> Alcotest.fail "qualified path token shape"

let test_lexer_positions () =
  match Lexer.tokens_of_string "let x =\n  y" with
  | [ _let; _x; _eq; y ] ->
      Alcotest.(check int) "line" 2 y.Lexer.line;
      Alcotest.(check int) "col" 3 y.Lexer.col
  | _ -> Alcotest.fail "expected four tokens"

let test_lexer_errors () =
  let expect_error src =
    match Lexer.tokens_of_string src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("lexer accepted: " ^ src)
  in
  expect_error "(* never closed";
  expect_error {x|let s = "no closing quote|x};
  expect_error "let c = '\\n";
  (* A lexer failure surfaces as a run error, not a crash. *)
  let o = analyze ~path:"lib/core/broken.ml" "(* open" in
  Alcotest.(check bool) "lexer error fails the run" false (Driver.clean o);
  Alcotest.(check int) "one error" 1 (List.length o.errors)

(* ------------------------------------------------------------------ *)
(* CT01                                                                *)
(* ------------------------------------------------------------------ *)

let test_ct01_fires () =
  let o = analyze ~path:"lib/bignum/fixture.ml" "let f a b = Stdlib.compare a b" in
  check_rules "qualified Stdlib.compare" [ "CT01" ] (new_rules o);
  let o = analyze ~path:"lib/crypto/fixture.ml" "let eq a b = a == b" in
  check_rules "physical equality" [ "CT01" ] (new_rules o);
  let o = analyze ~path:"lib/bignum/fixture.ml" "let m xs x = List.mem x xs" in
  check_rules "List.mem" [ "CT01" ] (new_rules o);
  let o = analyze ~path:"lib/bignum/fixture.ml" "let s xs = List.sort ( <> ) xs" in
  check_rules "operator section" [ "CT01" ] (new_rules o);
  (* Unqualified compare means Stdlib's unless the file defined one. *)
  let o = analyze ~path:"lib/bignum/fixture.ml" "let g x y = compare x y" in
  check_rules "bare compare" [ "CT01" ] (new_rules o)

let test_ct01_shadowing_and_scope () =
  let shadowed =
    "let compare a b = Int.compare a b\nlet g x y = compare x y\nlet h a = Nat.compare a a"
  in
  check_rules "local definition shadows Stdlib" []
    (new_rules (analyze ~path:"lib/bignum/fixture.ml" shadowed));
  (* Qualified use of another module's compare is monomorphic: fine. *)
  check_rules "Int.compare is fine" []
    (new_rules (analyze ~path:"lib/bignum/fixture.ml" "let f a b = Int.compare a b"));
  (* Outside the secret-bearing modules the rule does not apply. *)
  check_rules "lib/core is out of scope" []
    (new_rules (analyze ~path:"lib/core/fixture.ml" "let f a b = Stdlib.compare a b"))

let test_ct01_suppressed () =
  let src =
    "(* psi-lint: allow CT01 — fixture: operands are public lengths *)\n\
     let f a b = Stdlib.compare a b"
  in
  let o = analyze ~path:"lib/bignum/fixture.ml" src in
  check_rules "no new findings" [] (new_rules o);
  check_rules "suppressed instead" [ "CT01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* RNG01                                                               *)
(* ------------------------------------------------------------------ *)

let test_rng01_fires () =
  let o = analyze ~path:"lib/core/fixture.ml" "let x = Random.int 5" in
  check_rules "Random.int" [ "RNG01" ] (new_rules o);
  let o = analyze ~path:"bin/fixture.ml" "let s = Random.State.make [| 1 |]" in
  check_rules "Random.State in bin/" [ "RNG01" ] (new_rules o);
  (* A constructor named Random is not a module use. *)
  let o = analyze ~path:"lib/core/fixture.ml" "let src = Random" in
  check_rules "bare constructor" [] (new_rules o)

let test_rng01_suppressed () =
  let src =
    "let jitter () = Random.int 3 (* psi-lint: allow RNG01 — fixture: jitter is not \
     protocol randomness *)"
  in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "suppressed" [ "RNG01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* EXN01                                                               *)
(* ------------------------------------------------------------------ *)

let test_exn01_fires () =
  let o = analyze ~path:"lib/core/fixture.ml" "let f g = try g () with _ -> 0" in
  check_rules "catch-all" [ "EXN01" ] (new_rules o);
  let o = analyze ~path:"lib/core/fixture.ml" "let f g = try g () with | _ -> 0" in
  check_rules "catch-all with leading bar" [ "EXN01" ] (new_rules o)

let test_exn01_negatives () =
  let ok src = check_rules src [] (new_rules (analyze ~path:"lib/core/fixture.ml" src)) in
  ok "let f x = match x with _ -> 0";
  ok "let f g = try g () with Not_found -> 0";
  ok "let g r = { r with x = 1 }";
  (* A match nested inside a try must not eat the try's [with]. *)
  ok "let f g x = try (match x with _ -> g ()) with Not_found -> 0"

let test_exn01_suppressed () =
  let src =
    "(* psi-lint: allow EXN01 — fixture: best-effort cleanup may not fail *)\n\
     let f g = try g () with _ -> ()"
  in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "suppressed" [ "EXN01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* WIRE01                                                              *)
(* ------------------------------------------------------------------ *)

let test_wire01_fires () =
  let o =
    analyze ~path:"lib/wire/fixture.ml" "let read_bytes r = read_raw r (read_varint r)"
  in
  check_rules "inline varint into read_raw" [ "WIRE01" ] (new_rules o);
  let o =
    analyze ~path:"lib/wire/fixture.ml" "let f r b = String.sub b 0 (read_u32 r)"
  in
  check_rules "inline u32 into String.sub" [ "WIRE01" ] (new_rules o);
  let o = analyze ~path:"lib/wire/fixture.ml" "let g r = Bytes.create (read_varint r)" in
  check_rules "inline varint into Bytes.create" [ "WIRE01" ] (new_rules o)

let test_wire01_negatives () =
  (* The enforced fix shape: name the length, bound it, then allocate. *)
  let fixed =
    "let read_bytes ?(max = max_chunk_bytes) r =\n\
    \  let n = read_varint r in\n\
    \  if n > max then fail n;\n\
    \  read_raw r n"
  in
  check_rules "bounded read passes" []
    (new_rules (analyze ~path:"lib/wire/fixture.ml" fixed));
  (* Outside lib/wire the rule does not apply. *)
  check_rules "out of scope" []
    (new_rules
       (analyze ~path:"lib/core/fixture.ml" "let f r = read_raw r (read_varint r)"))

let test_wire01_suppressed () =
  let src =
    "(* psi-lint: allow WIRE01 — fixture: length was bounded by the framing layer *)\n\
     let f r = read_raw r (read_varint r)"
  in
  let o = analyze ~path:"lib/wire/fixture.ml" src in
  check_rules "suppressed" [ "WIRE01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* DBG01                                                               *)
(* ------------------------------------------------------------------ *)

let test_dbg01_fires () =
  let o = analyze ~path:"lib/core/fixture.ml" {|let f () = print_endline "x"|} in
  check_rules "print_endline" [ "DBG01" ] (new_rules o);
  let o = analyze ~path:"lib/core/fixture.ml" {|let f () = Printf.printf "%d" 1|} in
  check_rules "Printf.printf" [ "DBG01" ] (new_rules o);
  let o = analyze ~path:"lib/core/fixture.ml" "let g () = assert false" in
  check_rules "assert false" [ "DBG01" ] (new_rules o)

let test_dbg01_negatives () =
  let ok path src = check_rules src [] (new_rules (analyze ~path src)) in
  ok "lib/core/fixture.ml" {|let s = Printf.sprintf "%d" 1|};
  ok "lib/core/fixture.ml" "let ok x = assert (x > 0)";
  (* Binaries own their stdout. *)
  ok "bin/fixture.ml" {|let () = print_endline "usage"|}

let test_dbg01_suppressed () =
  let src =
    "let g = function\n\
    \  (* psi-lint: allow DBG01 — fixture: list is non-empty by construction *)\n\
    \  | [] -> assert false\n\
    \  | x :: _ -> x"
  in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "suppressed" [ "DBG01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* DOM01                                                               *)
(* ------------------------------------------------------------------ *)

let test_dom01_fires () =
  let o = analyze ~path:"lib/core/fixture.ml" "let d f = Domain.spawn f" in
  check_rules "Domain.spawn" [ "DOM01" ] (new_rules o);
  let o = analyze ~path:"bin/fixture.ml" "let r d = Domain.join d" in
  check_rules "Domain.join in bin/" [ "DOM01" ] (new_rules o)

let test_dom01_negatives () =
  let ok path src = check_rules src [] (new_rules (analyze ~path src)) in
  (* The pool implementation is the one place raw domains are allowed. *)
  ok "lib/parallel/pool.ml" "let d f = Domain.spawn f";
  (* Reading the core count is not spawning. *)
  ok "lib/core/fixture.ml" "let n () = Domain.recommended_domain_count ()";
  (* A constructor named Domain is not the module. *)
  ok "lib/core/fixture.ml" "let d = Domain"

let test_dom01_suppressed () =
  let src =
    "(* psi-lint: allow DOM01 — fixture: one-shot helper domain in a test rig *)\n\
     let d f = Domain.spawn f"
  in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "suppressed" [ "DOM01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* OBS01                                                               *)
(* ------------------------------------------------------------------ *)

let test_obs01_fires () =
  let o =
    analyze ~path:"lib/core/fixture.ml"
      "let f () = let h = Obs.Span.enter \"x\" in work ()"
  in
  check_rules "enter without exit" [ "OBS01" ] (new_rules o);
  (* Two enters, one exit: only the surplus enter is flagged. *)
  let o =
    analyze ~path:"lib/core/fixture.ml"
      "let f () =\n\
      \  let a = Span.enter \"x\" in\n\
      \  let b = Span.enter \"y\" in\n\
      \  Span.exit a; work b"
  in
  check_rules "surplus enter flagged once" [ "OBS01" ] (new_rules o)

let test_obs01_negatives () =
  let ok path src = check_rules src [] (new_rules (analyze ~path src)) in
  (* Balanced bracketing within one top-level item. *)
  ok "lib/core/fixture.ml"
    "let f () = let h = Obs.Span.enter \"x\" in work (); Obs.Span.exit h";
  (* with_ is the recommended scoped form; nothing to pair. *)
  ok "lib/core/fixture.ml" "let f () = Obs.Span.with_ \"x\" work";
  (* Counting resets at each top-level item: a balanced pair in one item
     does not excuse (or condemn) its neighbour. *)
  ok "lib/core/fixture.ml"
    "let f h = Span.exit h\nlet g () = let h = Span.enter \"x\" in f h; Span.exit h";
  (* bin/ may hand-bracket across scopes (interactive CLIs). *)
  ok "bin/fixture.ml" "let f () = ignore (Obs.Span.enter \"x\")";
  (* The Ring constructor Enter is not Span.enter. *)
  ok "lib/core/fixture.ml" "let e = Ring.Enter \"x\""

let test_obs01_suppressed () =
  let src =
    "(* psi-lint: allow OBS01 — fixture: handle escapes to the caller *)\n\
     let begin_step () = Obs.Span.enter \"step\""
  in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "suppressed" [ "OBS01" ] (suppressed_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* Annotations                                                         *)
(* ------------------------------------------------------------------ *)

let test_annotation_reason_mandatory () =
  let src = "(* psi-lint: allow DBG01 *)\nlet g () = assert false" in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  Alcotest.(check bool) "missing reason is an error" false (Driver.clean o);
  Alcotest.(check int) "one error" 1 (List.length o.errors)

let test_annotation_range () =
  (* Coverage is the annotation's line and the next line only. *)
  let src = "(* psi-lint: allow DBG01 — fixture: too far away *)\nlet a = 1\nlet g () = assert false" in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "two lines below: not covered" [ "DBG01" ] (new_rules o)

let test_annotation_wrong_rule () =
  let src = "(* psi-lint: allow CT01 — fixture: wrong rule id *)\nlet g () = assert false" in
  let o = analyze ~path:"lib/core/fixture.ml" src in
  check_rules "annotation for another rule does not cover" [ "DBG01" ] (new_rules o)

let test_annotation_multi_rule () =
  let src =
    "(* psi-lint: allow CT01,DBG01 — fixture: one reason for both *)\n\
     let g a b = if compare a b = 0 then assert false"
  in
  let o = analyze ~path:"lib/bignum/fixture.ml" src in
  check_rules "both suppressed" [] (new_rules o);
  Alcotest.(check int) "two suppressions" 2 (List.length (suppressed_rules o))

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let fixture_path = "lib/core/fixture.ml"
let fixture_src = "let g () = assert false"

let entry ?(reason = "fixture: frozen pre-existing finding") fingerprint =
  { Suppress.Baseline.rule = "DBG01"; file = fixture_path; fingerprint; reason }

(* Fingerprints are context hashes, not line numbers — compute them the
   way --update-baseline does rather than hardcoding the hash. *)
let fingerprints_of ~path src =
  List.map
    (fun (e : Suppress.Baseline.entry) -> e.fingerprint)
    (Driver.updated_baseline (analyze ~path src))

let fingerprint_of ~path src =
  match fingerprints_of ~path src with
  | [ fp ] -> fp
  | fps -> Alcotest.failf "expected one finding, got %d" (List.length fps)

let test_baseline_freezes () =
  let baseline = [ entry (fingerprint_of ~path:fixture_path fixture_src) ] in
  let o = analyze ~baseline ~path:fixture_path fixture_src in
  check_rules "no new findings" [] (new_rules o);
  check_rules "baselined instead" [ "DBG01" ] (baselined_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

let stem fp =
  match String.rindex_opt fp '#' with
  | Some i -> String.sub fp 0 i
  | None -> fp

let test_baseline_does_not_cover_new () =
  (* Three identical lines: the first two asserts see identical ±3 token
     windows, so they share a context hash and disambiguate by
     occurrence index; freezing occurrence #1 must not cover the rest. *)
  let src = String.concat "\n" [ fixture_src; fixture_src; fixture_src ] in
  let fps = fingerprints_of ~path:fixture_path src in
  Alcotest.(check int) "three findings" 3 (List.length fps);
  let fp1 = List.nth fps 0 and fp2 = List.nth fps 1 in
  Alcotest.(check string) "same context hash" (stem fp1) (stem fp2);
  Alcotest.(check bool) "distinct occurrence index" true (not (String.equal fp1 fp2));
  let o = analyze ~baseline:[ entry fp1 ] ~path:fixture_path src in
  check_rules "later occurrences are new" [ "DBG01"; "DBG01" ] (new_rules o);
  check_rules "first stays frozen" [ "DBG01" ] (baselined_rules o);
  Alcotest.(check bool) "not clean" false (Driver.clean o)

let test_baseline_line_move_tolerant () =
  (* The whole point of context fingerprints: prepending unrelated code
     and comments moves the finding's line but not its identity. *)
  let fp = fingerprint_of ~path:fixture_path fixture_src in
  let moved = "(* a new leading comment *)\n\nlet added = 1\n\n" ^ fixture_src in
  let o = analyze ~baseline:[ entry fp ] ~path:fixture_path moved in
  check_rules "no new findings after the move" [] (new_rules o);
  check_rules "moved finding still frozen" [ "DBG01" ] (baselined_rules o);
  Alcotest.(check bool) "clean" true (Driver.clean o)

let test_baseline_stale_entry () =
  (* Finding fixed but entry left behind: the baseline can only shrink. *)
  let baseline = [ entry (fingerprint_of ~path:fixture_path fixture_src) ] in
  let o = analyze ~baseline ~path:fixture_path "let g () = 0" in
  Alcotest.(check bool) "stale entry fails the run" false (Driver.clean o);
  Alcotest.(check int) "one error" 1 (List.length o.errors)

let test_baseline_todo_rejected () =
  let fp = fingerprint_of ~path:fixture_path fixture_src in
  let baseline = [ entry ~reason:"TODO — justify or fix" fp ] in
  let o = analyze ~baseline ~path:fixture_path fixture_src in
  Alcotest.(check bool) "TODO reason is an error" false (Driver.clean o)

let test_baseline_update_roundtrip () =
  (* --update-baseline: new findings become TODO entries; rendering and
     re-parsing reproduces them; once justified, the run is clean. *)
  let o = analyze ~path:fixture_path fixture_src in
  let entries = Driver.updated_baseline o in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  let e = List.hd entries in
  let fp = e.Suppress.Baseline.fingerprint in
  let prefix = "assert false@" in
  Alcotest.(check string) "fingerprint token prefix" prefix
    (String.sub fp 0 (min (String.length fp) (String.length prefix)));
  Alcotest.(check bool) "fingerprint has an occurrence index" true
    (String.length fp > 2 && String.equal (String.sub fp (String.length fp - 2) 2) "#1");
  Alcotest.(check bool) "TODO entry is unexplained" false
    (Suppress.Baseline.is_explained e);
  (match Suppress.Baseline.parse (Suppress.Baseline.render entries) with
  | Ok parsed ->
      Alcotest.(check int) "render/parse round-trip" (List.length entries)
        (List.length parsed)
  | Error e -> Alcotest.fail e);
  let justified = [ { e with Suppress.Baseline.reason = "fixture: justified" } ] in
  let o = analyze ~baseline:justified ~path:fixture_path fixture_src in
  Alcotest.(check bool) "clean once justified" true (Driver.clean o)

(* ------------------------------------------------------------------ *)
(* Semantic rules (parser + resolver + taint engine)                   *)
(* ------------------------------------------------------------------ *)

let analyze_sem ?(baseline = no_baseline) ~path src =
  Driver.analyze ~sem_rules:Analysis.Registry.sem_rules ~baseline
    [ { Driver.path; content = src } ]

let uniq_rules o = List.sort_uniq compare (new_rules o)

let test_sec01_fires () =
  let src = "let leak st ep = Channel.send ep (Drbg.generate st 32)" in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "raw secret to the channel" [ "SEC01" ] (uniq_rules o)

let test_sec01_interprocedural () =
  (* The sink is one call deep: taint must flow through [forward]'s
     parameter summary and the finding lands at the tainted call site. *)
  let src =
    "let forward ep x = Channel.send ep x\n\
     let leak st ep = forward ep (Drbg.generate st 32)"
  in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "leak through helper" [ "SEC01" ] (uniq_rules o);
  match Driver.new_findings o with
  | [ f ] -> Alcotest.(check int) "reported at the call site" 2 f.Rule.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_sec01_sanitized () =
  let src =
    "let ok g key ep x = Channel.send ep (Commutative.encrypt g key x)\n\
     let ok2 st ep = Channel.send ep (Sha256.hex_digest (Drbg.generate st 32))"
  in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "sanitizers clear the taint" [] (uniq_rules o)

let test_sec01_suppressed () =
  let src =
    "(* psi-lint: allow SEC01 — fixture: deliberate leak *)\n\
     let leak st ep = Channel.send ep (Drbg.generate st 32)"
  in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "no new findings" [] (uniq_rules o);
  check_rules "suppressed instead" [ "SEC01" ] (suppressed_rules o)

let test_ct02_fires () =
  let src = "let f st = if Drbg.generate st 32 = \"\" then 0 else 1" in
  let o = analyze_sem ~path:"lib/bignum/fixture.ml" src in
  check_rules "secret-dependent branch" [ "CT02" ] (uniq_rules o)

let test_ct02_scope () =
  (* Same branch outside the constant-time kernels: out of scope. *)
  let src = "let f st = if Drbg.generate st 32 = \"\" then 0 else 1" in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "no finding outside lib/bignum and lib/crypto" [] (uniq_rules o)

let test_ct02_sanitized () =
  let src = "let f st = if Sha256.hex_digest (Drbg.generate st 32) = \"\" then 0 else 1" in
  let o = analyze_sem ~path:"lib/bignum/fixture.ml" src in
  check_rules "digest is public" [] (uniq_rules o)

let test_race01_fires () =
  let src =
    "let tally pool xs =\n\
    \  let hits = ref 0 in\n\
    \  Pool.map pool (fun x -> hits := !hits + x) xs"
  in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "unmediated shared ref" [ "RACE01" ] (uniq_rules o)

let test_race01_mediated () =
  let src =
    "let tally pool xs =\n\
    \  let hits = Atomic.make 0 in\n\
    \  Pool.map pool (fun x -> Atomic.fetch_and_add hits x) xs"
  in
  let o = analyze_sem ~path:"lib/core/fixture.ml" src in
  check_rules "Atomic mediation accepted" [] (uniq_rules o)

let test_sem_parse_error_reported () =
  (* A file the parser cannot handle must surface as an error, never be
     silently skipped by the semantic analyses. *)
  let o = analyze_sem ~path:"lib/core/fixture.ml" "let f x = (x" in
  Alcotest.(check bool) "parse error recorded" true (List.length o.Driver.errors > 0);
  Alcotest.(check bool) "not clean" false (Driver.clean o)

let test_baseline_parse_rejects_malformed () =
  match Suppress.Baseline.parse "DBG01 lib/x.ml assert_false#1 spaces not tabs" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "space-separated line should be rejected"

(* ------------------------------------------------------------------ *)

let tc = Alcotest.test_case

let () =
  Alcotest.run "lint"
    [
      ( "lexer",
        [
          tc "roundtrip" `Quick test_lexer_roundtrip;
          tc "kinds" `Quick test_lexer_kinds;
          tc "positions" `Quick test_lexer_positions;
          tc "errors" `Quick test_lexer_errors;
        ] );
      ( "ct01",
        [
          tc "fires" `Quick test_ct01_fires;
          tc "shadowing & scope" `Quick test_ct01_shadowing_and_scope;
          tc "suppressed" `Quick test_ct01_suppressed;
        ] );
      ( "rng01",
        [ tc "fires" `Quick test_rng01_fires; tc "suppressed" `Quick test_rng01_suppressed ] );
      ( "exn01",
        [
          tc "fires" `Quick test_exn01_fires;
          tc "negatives" `Quick test_exn01_negatives;
          tc "suppressed" `Quick test_exn01_suppressed;
        ] );
      ( "wire01",
        [
          tc "fires" `Quick test_wire01_fires;
          tc "negatives" `Quick test_wire01_negatives;
          tc "suppressed" `Quick test_wire01_suppressed;
        ] );
      ( "dbg01",
        [
          tc "fires" `Quick test_dbg01_fires;
          tc "negatives" `Quick test_dbg01_negatives;
          tc "suppressed" `Quick test_dbg01_suppressed;
        ] );
      ( "dom01",
        [
          tc "fires" `Quick test_dom01_fires;
          tc "negatives" `Quick test_dom01_negatives;
          tc "suppressed" `Quick test_dom01_suppressed;
        ] );
      ( "obs01",
        [
          tc "fires" `Quick test_obs01_fires;
          tc "negatives" `Quick test_obs01_negatives;
          tc "suppressed" `Quick test_obs01_suppressed;
        ] );
      ( "annotations",
        [
          tc "reason mandatory" `Quick test_annotation_reason_mandatory;
          tc "range" `Quick test_annotation_range;
          tc "wrong rule" `Quick test_annotation_wrong_rule;
          tc "multi-rule" `Quick test_annotation_multi_rule;
        ] );
      ( "sec01",
        [
          tc "fires" `Quick test_sec01_fires;
          tc "interprocedural" `Quick test_sec01_interprocedural;
          tc "sanitized" `Quick test_sec01_sanitized;
          tc "suppressed" `Quick test_sec01_suppressed;
        ] );
      ( "ct02",
        [
          tc "fires" `Quick test_ct02_fires;
          tc "scope" `Quick test_ct02_scope;
          tc "sanitized" `Quick test_ct02_sanitized;
        ] );
      ( "race01",
        [
          tc "fires" `Quick test_race01_fires;
          tc "mediated" `Quick test_race01_mediated;
        ] );
      ( "semantic",
        [ tc "parse error reported" `Quick test_sem_parse_error_reported ] );
      ( "baseline",
        [
          tc "freezes" `Quick test_baseline_freezes;
          tc "new finding not covered" `Quick test_baseline_does_not_cover_new;
          tc "line-move tolerant" `Quick test_baseline_line_move_tolerant;
          tc "stale entry" `Quick test_baseline_stale_entry;
          tc "TODO rejected" `Quick test_baseline_todo_rejected;
          tc "update round-trip" `Quick test_baseline_update_roundtrip;
          tc "parse rejects malformed" `Quick test_baseline_parse_rejects_malformed;
        ] );
    ]
