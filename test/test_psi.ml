(* Tests for the core protocols of Agrawal, Evfimievski & Srikant
   (SIGMOD 2003): correctness against plaintext oracles, the exact §6.1
   operation/communication counts, the security-checkable transcript
   properties, the §5.2 leakage characterization, the §3.1 strawman
   attack, the Appendix A baseline numbers, and the two applications. *)

module Runner = Wire.Runner
module Message = Wire.Message
module Group = Crypto.Group
module P = Psi.Protocol

let g64 = Group.named Group.Test64
let g256 = Group.named Group.Test256
let cfg = P.config g64
let cfg256 = P.config g256

let sorted_strings l = List.sort String.compare l

let plain_intersection a b =
  let sb = List.sort_uniq String.compare b in
  List.filter (fun x -> List.mem x sb) (List.sort_uniq String.compare a)

(* Some reusable inputs. *)
let vs1 = [ "apple"; "beet"; "corn"; "dill"; "endive" ]
let vr1 = [ "beet"; "corn"; "fig"; "grape" ]

let check_intersection ?(cfg = cfg) ~name ~vs ~vr expected =
  let o = Psi.Intersection.run cfg ~seed:("t:" ^ name) ~sender_values:vs ~receiver_values:vr () in
  let r = o.Runner.receiver_result in
  Alcotest.(check (list string)) (name ^ ": intersection") (sorted_strings expected)
    r.Psi.Intersection.intersection;
  Alcotest.(check int) (name ^ ": |V_S|")
    (List.length (List.sort_uniq String.compare vs))
    r.Psi.Intersection.v_s_count;
  Alcotest.(check int) (name ^ ": |V_R|")
    (List.length (List.sort_uniq String.compare vr))
    o.Runner.sender_result.Psi.Intersection.v_r_count

(* ------------------------------------------------------------------ *)
(* Intersection: correctness                                           *)
(* ------------------------------------------------------------------ *)

let test_intersection_basic () = check_intersection ~name:"basic" ~vs:vs1 ~vr:vr1 [ "beet"; "corn" ]

let test_intersection_disjoint () =
  check_intersection ~name:"disjoint" ~vs:[ "a"; "b" ] ~vr:[ "c"; "d" ] []

let test_intersection_identical () =
  check_intersection ~name:"identical" ~vs:vs1 ~vr:vs1 vs1

let test_intersection_subset () =
  check_intersection ~name:"subset" ~vs:vs1 ~vr:[ "beet"; "dill" ] [ "beet"; "dill" ]

let test_intersection_empty_sides () =
  check_intersection ~name:"empty-s" ~vs:[] ~vr:vr1 [];
  check_intersection ~name:"empty-r" ~vs:vs1 ~vr:[] [];
  check_intersection ~name:"empty-both" ~vs:[] ~vr:[] []

let test_intersection_dedups_input () =
  check_intersection ~name:"dups" ~vs:[ "a"; "a"; "b" ] ~vr:[ "a"; "b"; "b"; "c" ] [ "a"; "b" ]

let test_intersection_binary_values () =
  (* Values with NULs, unicode, long strings. *)
  let weird = [ "\x00\x01\x02"; "naïve-ключ-鍵"; String.make 5000 'x'; "" ] in
  check_intersection ~name:"weird" ~vs:weird ~vr:(List.tl weird) (List.tl weird)

let test_intersection_randomized () =
  List.iter
    (fun (n_s, n_r, overlap) ->
      let vs, vr =
        Psi.Workload.value_sets
          ~seed:(Printf.sprintf "rand-%d-%d-%d" n_s n_r overlap)
          ~n_s ~n_r ~overlap
      in
      check_intersection
        ~name:(Printf.sprintf "random %d/%d/%d" n_s n_r overlap)
        ~vs ~vr (plain_intersection vs vr))
    [ (1, 1, 0); (1, 1, 1); (10, 10, 5); (50, 20, 20); (20, 50, 1); (100, 100, 37) ]

let test_intersection_larger_group () =
  check_intersection ~cfg:cfg256 ~name:"256-bit group" ~vs:vs1 ~vr:vr1 [ "beet"; "corn" ]

let test_intersection_deterministic_given_seed () =
  let run () =
    (Psi.Intersection.run cfg ~seed:"det" ~sender_values:vs1 ~receiver_values:vr1 ())
      .Runner.receiver_view
  in
  Alcotest.(check bool) "same transcript" true (List.equal Message.equal (run ()) (run ()))

(* ------------------------------------------------------------------ *)
(* Intersection: §6.1 cost accounting                                  *)
(* ------------------------------------------------------------------ *)

let test_intersection_op_counts () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let s_ops = o.Runner.sender_result.Psi.Intersection.ops in
  let r_ops = o.Runner.receiver_result.Psi.Intersection.ops in
  let v_s = 5 and v_r = 4 in
  let hashes, encryptions = Psi.Cost_model.exact_intersection_ops ~v_s ~v_r in
  Alcotest.(check int) "total hashes = |V_S| + |V_R|" hashes (s_ops.P.hashes + r_ops.P.hashes);
  Alcotest.(check int) "total Ce = 2(|V_S| + |V_R|)" encryptions
    (s_ops.P.encryptions + r_ops.P.encryptions);
  Alcotest.(check int) "S's Ce = |V_S| + |V_R|" (v_s + v_r) s_ops.P.encryptions;
  Alcotest.(check int) "no K ops" 0 (s_ops.P.cipher_ops + r_ops.P.cipher_ops)

let test_intersection_comm_counts () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let v_s = 5 and v_r = 4 in
  (* (|V_S| + 2|V_R|) codewords: S ships |V_S| + |V_R|, R ships |V_R|. *)
  Alcotest.(check int) "S codewords" (v_s + v_r)
    o.Runner.sender_stats.Wire.Channel.elements_sent;
  Alcotest.(check int) "R codewords" v_r o.Runner.receiver_stats.Wire.Channel.elements_sent;
  (* Bytes: within framing overhead of k/8 per codeword. *)
  let k_bytes = Group.element_bytes g64 in
  let payload = (v_s + (2 * v_r)) * k_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "bytes %d close to payload %d" o.Runner.total_bytes payload)
    true
    (o.Runner.total_bytes >= payload && o.Runner.total_bytes <= payload + (3 * 64))

(* ------------------------------------------------------------------ *)
(* Intersection: transcript (security-checkable) properties            *)
(* ------------------------------------------------------------------ *)

let elements_of_view view tag =
  match List.find_opt (fun (m : Message.t) -> m.tag = tag) view with
  | Some m -> P.elements_of m.Message.payload
  | None -> Alcotest.failf "message %s not in view" tag

let test_intersection_sender_view_shape () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  (* S's entire view is one message: Y_R with |V_R| elements, sorted. *)
  (match o.Runner.sender_view with
  | [ m ] ->
      Alcotest.(check string) "tag" "intersection/Y_R" m.Message.tag;
      let es = P.elements_of m.Message.payload in
      Alcotest.(check int) "|Y_R|" 4 (List.length es);
      Alcotest.(check bool) "lexicographically reordered" true (P.is_sorted es);
      List.iter
        (fun e ->
          Alcotest.(check int) "fixed width" (Group.element_bytes g64) (String.length e))
        es
  | _ -> Alcotest.fail "S's view should be exactly one message");
  (* R's view: Y_S (sorted) then the encryptions of Y_R. *)
  let y_s = elements_of_view o.Runner.receiver_view "intersection/Y_S" in
  Alcotest.(check bool) "Y_S sorted" true (P.is_sorted y_s);
  Alcotest.(check int) "|Y_S|" 5 (List.length y_s)

let test_intersection_transcript_reveals_no_plaintext () =
  (* No value (nor its unkeyed hash) appears in any message on the wire. *)
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let all_fields =
    List.concat_map
      (fun (m : Message.t) -> P.elements_of m.Message.payload)
      (o.Runner.sender_view @ o.Runner.receiver_view)
  in
  List.iter
    (fun v ->
      let h =
        Group.encode_elt g64 (Crypto.Hash_to_group.hash_value g64 ~domain:"default" v)
      in
      Alcotest.(check bool) ("hash of " ^ v ^ " not on wire") false (List.mem h all_fields);
      Alcotest.(check bool) ("plaintext " ^ v ^ " not on wire") false (List.mem v all_fields))
    (vs1 @ vr1)

let test_intersection_views_differ_across_seeds () =
  (* Fresh keys => fresh-looking transcripts for identical inputs. *)
  let view seed =
    List.concat_map
      (fun (m : Message.t) -> P.elements_of m.Message.payload)
      (Psi.Intersection.run cfg ~seed ~sender_values:vs1 ~receiver_values:vr1 ())
        .Runner.receiver_view
  in
  let a = view "seed-a" and b = view "seed-b" in
  Alcotest.(check bool) "no common ciphertext" true
    (List.for_all (fun x -> not (List.mem x b)) a)

(* ------------------------------------------------------------------ *)
(* Property tests: random inputs through every protocol vs oracles     *)
(* ------------------------------------------------------------------ *)

let qtest name ?(count = 25) gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* Small random value multisets over a tiny alphabet (forces overlaps
   and duplicates). *)
let gen_values =
  QCheck2.Gen.(list_size (int_range 0 12) (map (Printf.sprintf "v%d") (int_range 0 9)))

let gen_pair = QCheck2.Gen.pair gen_values gen_values

let pair_print (a, b) =
  Printf.sprintf "S=[%s] R=[%s]" (String.concat ";" a) (String.concat ";" b)

let prop_intersection_oracle =
  qtest "intersection = oracle (random)" gen_pair pair_print (fun (vs, vr) ->
      let o = Psi.Intersection.run cfg ~sender_values:vs ~receiver_values:vr () in
      o.Runner.receiver_result.Psi.Intersection.intersection = plain_intersection vs vr)

let prop_intersection_size_oracle =
  qtest "intersection size = oracle (random)" gen_pair pair_print (fun (vs, vr) ->
      let o = Psi.Intersection_size.run cfg ~sender_values:vs ~receiver_values:vr () in
      o.Runner.receiver_result.Psi.Intersection_size.size
      = List.length (plain_intersection vs vr))

let prop_equijoin_size_oracle =
  qtest "equijoin size = oracle (random multisets)" gen_pair pair_print (fun (vs, vr) ->
      let o = Psi.Equijoin_size.run cfg ~sender_values:vs ~receiver_values:vr () in
      o.Runner.receiver_result.Psi.Equijoin_size.join_size
      = Psi.Leakage.join_size ~r_values:vr ~s_values:vs)

let prop_equijoin_oracle =
  qtest "equijoin = oracle (random)" gen_pair pair_print (fun (vs, vr) ->
      let records = List.mapi (fun i v -> (v, Printf.sprintf "%s#%d" v i)) vs in
      let o = Psi.Equijoin.run cfg ~sender_records:records ~receiver_values:vr () in
      let expected =
        plain_intersection vs vr
        |> List.map (fun v -> (v, List.filter_map
                                    (fun (v', p) -> if v' = v then Some p else None)
                                    records))
      in
      o.Runner.receiver_result.Psi.Equijoin.matches = expected
      && o.Runner.receiver_result.Psi.Equijoin.collisions = [])

let prop_aggregate_oracle =
  qtest "aggregate sum = oracle (random)" ~count:10 gen_pair pair_print (fun (vs, vr) ->
      let records = List.mapi (fun i v -> (v, i mod 17)) vs in
      let o =
        Psi.Aggregate.run cfg ~key_bits:128 ~sender_records:records ~receiver_values:vr ()
      in
      let expected =
        List.fold_left
          (fun acc (v, x) ->
            if List.mem v (List.sort_uniq String.compare vr) then acc + x else acc)
          0 records
      in
      o.Runner.receiver_result.Psi.Aggregate.sum = expected)

(* ------------------------------------------------------------------ *)
(* Parallel encryption (the paper's P processors)                      *)
(* ------------------------------------------------------------------ *)

let test_parallel_map_matches_sequential () =
  let xs = List.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun workers ->
      Alcotest.(check (list int))
        (Printf.sprintf "workers=%d" workers)
        (List.map f xs)
        (P.parallel_map ~workers f xs))
    [ 1; 2; 3; 8; 1000; 2000 ]

let test_parallel_map_short_lists () =
  Alcotest.(check (list int)) "short" [ 2; 3 ] (P.parallel_map ~workers:8 succ [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (P.parallel_map ~workers:8 succ [])

let test_parallel_protocols_same_results () =
  let vs, vr = Psi.Workload.value_sets ~seed:"par" ~n_s:80 ~n_r:80 ~overlap:33 in
  let cfg1 = P.config ~workers:1 g64 in
  let cfg4 = P.config ~workers:4 g64 in
  let run cfg =
    let o = Psi.Intersection.run cfg ~seed:"par-seed" ~sender_values:vs ~receiver_values:vr () in
    ( o.Runner.receiver_result.Psi.Intersection.intersection,
      o.Runner.receiver_result.Psi.Intersection.ops.P.encryptions,
      o.Runner.sender_result.Psi.Intersection.ops.P.encryptions )
  in
  Alcotest.(check (triple (list string) int int)) "identical" (run cfg1) (run cfg4);
  (* Equijoin too (distinct code path through parallel_map). *)
  let records = List.map (fun v -> (v, "rec:" ^ v)) vs in
  let join cfg =
    (Psi.Equijoin.run cfg ~seed:"par-seed" ~sender_records:records ~receiver_values:vr ())
      .Runner.receiver_result
      .Psi.Equijoin.matches
  in
  Alcotest.(check (list (pair string (list string)))) "join identical" (join cfg1) (join cfg4)

let test_parallel_workers_validated () =
  Alcotest.check_raises "workers 0" (Invalid_argument "Protocol.config: workers >= 1")
    (fun () -> ignore (P.config ~workers:0 g64))

(* Pool-size independence across all four protocols: identical results
   AND identical leakage shapes (the full message transcripts, which the
   streamed sends must reproduce byte-for-byte) at every pool size. *)
let views o = (o.Runner.sender_view, o.Runner.receiver_view)

let same_views (sv1, rv1) (sv2, rv2) =
  List.equal Message.equal sv1 sv2 && List.equal Message.equal rv1 rv2

let prop_pool_size_invariance =
  qtest "protocols are pool-size invariant (results + transcripts)" ~count:10 gen_pair
    pair_print (fun (vs, vr) ->
      let records = List.mapi (fun i v -> (v, Printf.sprintf "%s#%d" v i)) vs in
      let run_all workers =
        let cfg = P.config ~workers g64 in
        let oi = Psi.Intersection.run cfg ~seed:"pool" ~sender_values:vs ~receiver_values:vr () in
        let oj = Psi.Equijoin.run cfg ~seed:"pool" ~sender_records:records ~receiver_values:vr () in
        let os = Psi.Intersection_size.run cfg ~seed:"pool" ~sender_values:vs ~receiver_values:vr () in
        let oz = Psi.Equijoin_size.run cfg ~seed:"pool" ~sender_values:vs ~receiver_values:vr () in
        ( ( oi.Runner.receiver_result.Psi.Intersection.intersection,
            oj.Runner.receiver_result.Psi.Equijoin.matches,
            os.Runner.receiver_result.Psi.Intersection_size.size,
            oz.Runner.receiver_result.Psi.Equijoin_size.join_size ),
          [ views oi; views oj; views os; views oz ] )
      in
      let base_results, base_views = run_all 1 in
      List.for_all
        (fun workers ->
          let results, views = run_all workers in
          results = base_results && List.for_all2 same_views base_views views)
        [ 2; 4 ])

(* Kernel independence: the fixed-width Montgomery kernels change
   wall-clock only, never bytes. All four protocols, run over a fresh
   256-bit group with the fixed kernel selected and again with it
   forced off, must produce identical results and byte-identical
   transcripts. Fresh [of_prime] contexts each time — [Group.named]
   memoizes, so the cached g256 would pin whichever kernel came
   first. *)
let test_kernel_transcript_invariance () =
  let p256 = Group.p (Group.named Group.Test256) in
  let vs = vs1 and vr = vr1 in
  let records = List.mapi (fun i v -> (v, Printf.sprintf "%s#%d" v i)) vs in
  let run_all () =
    let cfg = P.config (Group.of_prime p256) in
    let oi = Psi.Intersection.run cfg ~seed:"kern" ~sender_values:vs ~receiver_values:vr () in
    let oj = Psi.Equijoin.run cfg ~seed:"kern" ~sender_records:records ~receiver_values:vr () in
    let os = Psi.Intersection_size.run cfg ~seed:"kern" ~sender_values:vs ~receiver_values:vr () in
    let oz = Psi.Equijoin_size.run cfg ~seed:"kern" ~sender_values:vs ~receiver_values:vr () in
    ( ( oi.Runner.receiver_result.Psi.Intersection.intersection,
        oj.Runner.receiver_result.Psi.Equijoin.matches,
        os.Runner.receiver_result.Psi.Intersection_size.size,
        oz.Runner.receiver_result.Psi.Equijoin_size.join_size ),
      [ views oi; views oj; views os; views oz ] )
  in
  Alcotest.(check string) "fixed kernel on" "fixed-256"
    (Group.kernel_name (Group.of_prime p256));
  let on_results, on_views = run_all () in
  Fun.protect
    ~finally:(fun () -> Bignum.Modular.Mont.set_force_generic false)
    (fun () ->
      Bignum.Modular.Mont.set_force_generic true;
      Alcotest.(check string) "kernel forced off" "generic"
        (Group.kernel_name (Group.of_prime p256));
      let off_results, off_views = run_all () in
      Alcotest.(check bool) "results identical" true (on_results = off_results);
      Alcotest.(check bool) "transcripts byte-identical" true
        (List.for_all2 same_views on_views off_views))

(* ------------------------------------------------------------------ *)
(* Equijoin                                                            *)
(* ------------------------------------------------------------------ *)

let records1 =
  [
    ("beet", "beet-record-1");
    ("beet", "beet-record-2");
    ("corn", "corn-record-1");
    ("apple", "apple-record-1");
    ("dill", "dill-record-1");
  ]

let test_equijoin_basic () =
  let o = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:vr1 () in
  let r = o.Runner.receiver_result in
  Alcotest.(check (list (pair string (list string)))) "matches with ext"
    [ ("beet", [ "beet-record-1"; "beet-record-2" ]); ("corn", [ "corn-record-1" ]) ]
    r.Psi.Equijoin.matches;
  Alcotest.(check int) "|V_S|" 4 r.Psi.Equijoin.v_s_count;
  Alcotest.(check (list string)) "no collisions" [] r.Psi.Equijoin.collisions;
  Alcotest.(check int) "S learns |V_R|" 4 o.Runner.sender_result.Psi.Equijoin.v_r_count

let test_equijoin_no_matches () =
  let o =
    Psi.Equijoin.run cfg ~sender_records:[ ("x", "rx") ] ~receiver_values:[ "y"; "z" ] ()
  in
  Alcotest.(check int) "no matches" 0
    (List.length o.Runner.receiver_result.Psi.Equijoin.matches)

let test_equijoin_empty_sides () =
  let o = Psi.Equijoin.run cfg ~sender_records:[] ~receiver_values:vr1 () in
  Alcotest.(check int) "empty sender" 0 (List.length o.Runner.receiver_result.Psi.Equijoin.matches);
  let o = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:[] () in
  Alcotest.(check int) "empty receiver" 0 (List.length o.Runner.receiver_result.Psi.Equijoin.matches)

let test_equijoin_mul_cipher () =
  let cfg_mul = P.config ~cipher:Crypto.Perfect_cipher.Mul_cipher g256 in
  let o = Psi.Equijoin.run cfg_mul ~sender_records:[ ("beet", "r1"); ("fig", "r2") ]
      ~receiver_values:vr1 () in
  Alcotest.(check (list (pair string (list string)))) "mul cipher matches"
    [ ("beet", [ "r1" ]); ("fig", [ "r2" ]) ]
    o.Runner.receiver_result.Psi.Equijoin.matches

let test_equijoin_mul_cipher_payload_limit () =
  let cfg_mul = P.config ~cipher:Crypto.Perfect_cipher.Mul_cipher g256 in
  (* A payload beyond one group element must raise (documented limit). *)
  Alcotest.(check bool) "too-long payload raises" true
    (try
       ignore
         (Psi.Equijoin.run cfg_mul
            ~sender_records:[ ("v", String.make 100 'x') ]
            ~receiver_values:[ "v" ] ());
       false
     with Invalid_argument _ -> true)

let test_equijoin_stream_large_payload () =
  let big = String.make 50_000 'p' in
  let o = Psi.Equijoin.run cfg ~sender_records:[ ("beet", big) ] ~receiver_values:vr1 () in
  Alcotest.(check (list (pair string (list string)))) "50KB record round-trips"
    [ ("beet", [ big ]) ]
    o.Runner.receiver_result.Psi.Equijoin.matches

let test_equijoin_op_counts () =
  let o = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:vr1 () in
  let s_ops = o.Runner.sender_result.Psi.Equijoin.ops in
  let r_ops = o.Runner.receiver_result.Psi.Equijoin.ops in
  let v_s = 4 and v_r = 4 and inter = 2 in
  let hashes, encryptions, cipher_ops =
    Psi.Cost_model.exact_equijoin_ops ~v_s ~v_r ~intersection:inter
  in
  Alcotest.(check int) "hashes" hashes (s_ops.P.hashes + r_ops.P.hashes);
  Alcotest.(check int) "Ce = 2|V_S| + 5|V_R|" encryptions
    (s_ops.P.encryptions + r_ops.P.encryptions);
  Alcotest.(check int) "K ops = |V_S| + |inter|" cipher_ops
    (s_ops.P.cipher_ops + r_ops.P.cipher_ops)

let test_equijoin_comm_counts () =
  let o = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:vr1 () in
  let v_s = 4 and v_r = 4 in
  (* (|V_S| + 3|V_R|) codewords + |V_S| ciphertexts. *)
  Alcotest.(check int) "S codewords" (v_s + (2 * v_r))
    o.Runner.sender_stats.Wire.Channel.elements_sent;
  Alcotest.(check int) "R codewords" v_r o.Runner.receiver_stats.Wire.Channel.elements_sent

let test_equijoin_ext_pairs_sorted () =
  let o = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:vr1 () in
  match List.find_opt (fun (m : Message.t) -> m.tag = "equijoin/ext") o.Runner.receiver_view with
  | Some { payload = Message.Ciphertext_pairs ps; _ } ->
      Alcotest.(check bool) "ext pairs sorted by key" true (P.is_sorted (List.map fst ps));
      Alcotest.(check int) "|V_S| pairs" 4 (List.length ps)
  | _ -> Alcotest.fail "missing equijoin/ext message"

let test_equijoin_matches_minidb_join () =
  (* End-to-end against the relational oracle: join two small tables. *)
  let open Minidb in
  let l =
    Table.create
      (Schema.make [ Schema.col "k" Value.TInt; Schema.col "a" Value.TText ])
      [
        [| Value.Int 1; Value.Text "x" |];
        [| Value.Int 2; Value.Text "y" |];
        [| Value.Int 3; Value.Text "z" |];
      ]
  in
  let r =
    Table.create
      (Schema.make [ Schema.col "k" Value.TInt; Schema.col "b" Value.TText ])
      [
        [| Value.Int 2; Value.Text "m" |];
        [| Value.Int 2; Value.Text "n" |];
        [| Value.Int 4; Value.Text "o" |];
      ]
  in
  (* S holds [r] (with payload = column b), R holds [l]'s keys. *)
  let records =
    List.map
      (fun row -> (Value.key (Table.get r row "k"), Value.to_string (Table.get r row "b")))
      (Table.rows r)
  in
  let values = List.map Value.key (Table.distinct_values l "k") in
  let o = Psi.Equijoin.run cfg ~sender_records:records ~receiver_values:values () in
  let protocol_join_size =
    List.fold_left (fun acc (_, recs) -> acc + List.length recs) 0
      o.Runner.receiver_result.Psi.Equijoin.matches
  in
  Alcotest.(check int) "join size matches minidb"
    (Relop.equijoin_size l r ~on:("k", "k"))
    protocol_join_size

(* ------------------------------------------------------------------ *)
(* Intersection size                                                   *)
(* ------------------------------------------------------------------ *)

let test_intersection_size_basic () =
  let o = Psi.Intersection_size.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  Alcotest.(check int) "size" 2 o.Runner.receiver_result.Psi.Intersection_size.size;
  Alcotest.(check int) "|V_S|" 5 o.Runner.receiver_result.Psi.Intersection_size.v_s_count;
  Alcotest.(check int) "|V_R|" 4 o.Runner.sender_result.Psi.Intersection_size.v_r_count

let test_intersection_size_cases () =
  List.iter
    (fun (n_s, n_r, overlap) ->
      let vs, vr =
        Psi.Workload.value_sets
          ~seed:(Printf.sprintf "isize-%d-%d-%d" n_s n_r overlap)
          ~n_s ~n_r ~overlap
      in
      let o = Psi.Intersection_size.run cfg ~sender_values:vs ~receiver_values:vr () in
      Alcotest.(check int)
        (Printf.sprintf "%d/%d/%d" n_s n_r overlap)
        overlap o.Runner.receiver_result.Psi.Intersection_size.size)
    [ (0, 0, 0); (5, 5, 0); (5, 5, 5); (40, 60, 13); (100, 3, 3) ]

let test_intersection_size_z_r_resorted () =
  (* The Z_R message must be re-sorted: otherwise R could align it with
     its own Y_R order and learn which values matched (§5.1). *)
  let o = Psi.Intersection_size.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let z_r = elements_of_view o.Runner.receiver_view "intersection_size/Z_R" in
  Alcotest.(check bool) "Z_R sorted" true (P.is_sorted z_r);
  Alcotest.(check int) "|Z_R| = |V_R|" 4 (List.length z_r);
  (* And it is a plain element list (unpaired), not pairs. *)
  match List.find_opt (fun (m : Message.t) -> m.tag = "intersection_size/Z_R") o.Runner.receiver_view with
  | Some { payload = Message.Elements _; _ } -> ()
  | _ -> Alcotest.fail "Z_R must be an unpaired element list"

let test_intersection_size_op_counts () =
  let o = Psi.Intersection_size.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let s = o.Runner.sender_result.Psi.Intersection_size.ops in
  let r = o.Runner.receiver_result.Psi.Intersection_size.ops in
  Alcotest.(check int) "Ce = 2(|V_S|+|V_R|)" (2 * (5 + 4)) (s.P.encryptions + r.P.encryptions)

(* ------------------------------------------------------------------ *)
(* Equijoin size (§5.2)                                                *)
(* ------------------------------------------------------------------ *)

let ms_s = [ "a"; "a"; "a"; "b"; "c"; "c"; "d" ]
let ms_r = [ "a"; "b"; "b"; "c"; "c"; "e" ]

let test_equijoin_size_basic () =
  let o = Psi.Equijoin_size.run cfg ~sender_values:ms_s ~receiver_values:ms_r () in
  let r = o.Runner.receiver_result in
  (* a: 3*1, b: 1*2, c: 2*2 => 9. *)
  Alcotest.(check int) "join size" 9 r.Psi.Equijoin_size.join_size;
  Alcotest.(check int) "matches Leakage.join_size"
    (Psi.Leakage.join_size ~r_values:ms_r ~s_values:ms_s)
    r.Psi.Equijoin_size.join_size;
  Alcotest.(check int) "|T_S.A| multiset" 7 r.Psi.Equijoin_size.v_s_multiset_size;
  Alcotest.(check int) "|T_R.A| multiset" 6 o.Runner.sender_result.Psi.Equijoin_size.v_r_multiset_size

let test_equijoin_size_duplicate_distributions () =
  let o = Psi.Equijoin_size.run cfg ~sender_values:ms_s ~receiver_values:ms_r () in
  (* S's multiset: one value x3 (a), two x1 (b, d), one x2 (c). *)
  Alcotest.(check (list (pair int int))) "R learns S's distribution"
    [ (1, 2); (2, 1); (3, 1) ]
    o.Runner.receiver_result.Psi.Equijoin_size.s_duplicate_distribution;
  (* R's multiset: a x1, e x1, b x2, c x2. *)
  Alcotest.(check (list (pair int int))) "S learns R's distribution"
    [ (1, 2); (2, 2) ]
    o.Runner.sender_result.Psi.Equijoin_size.r_duplicate_distribution

let test_equijoin_size_class_leakage_matches_prediction () =
  let o = Psi.Equijoin_size.run cfg ~sender_values:ms_s ~receiver_values:ms_r () in
  Alcotest.(check (list (pair (pair int int) int))) "§5.2 leakage matrix"
    (Psi.Leakage.class_intersections ~r_values:ms_r ~s_values:ms_s)
    o.Runner.receiver_result.Psi.Equijoin_size.class_intersections

let test_equijoin_size_no_duplicates_degenerates () =
  (* With all multiplicities 1 the protocol reveals only the size — the
     leakage matrix collapses to a single cell. *)
  let o = Psi.Equijoin_size.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  Alcotest.(check int) "join size = intersection size" 2
    o.Runner.receiver_result.Psi.Equijoin_size.join_size;
  Alcotest.(check (list (pair (pair int int) int))) "single cell"
    [ ((1, 1), 2) ]
    o.Runner.receiver_result.Psi.Equijoin_size.class_intersections

let test_equijoin_size_randomized () =
  List.iter
    (fun (n, max_dup, seed) ->
      let base_s, base_r = Psi.Workload.value_sets ~seed ~n_s:n ~n_r:n ~overlap:(n / 2) in
      let s = Psi.Workload.multiset ~seed:(seed ^ "s") ~values:base_s ~max_dup in
      let r = Psi.Workload.multiset ~seed:(seed ^ "r") ~values:base_r ~max_dup in
      let o = Psi.Equijoin_size.run cfg ~sender_values:s ~receiver_values:r () in
      Alcotest.(check int) (seed ^ ": join size")
        (Psi.Leakage.join_size ~r_values:r ~s_values:s)
        o.Runner.receiver_result.Psi.Equijoin_size.join_size)
    [ (10, 3, "ejs1"); (25, 5, "ejs2"); (40, 2, "ejs3") ]

(* ------------------------------------------------------------------ *)
(* Leakage analysis                                                    *)
(* ------------------------------------------------------------------ *)

let test_leakage_duplicate_classes () =
  Alcotest.(check (list (pair int (list string)))) "classes"
    [ (1, [ "b"; "d" ]); (2, [ "c" ]); (3, [ "a" ]) ]
    (Psi.Leakage.duplicate_classes ms_s)

let test_leakage_unique_dups_identify_everything () =
  (* All duplicate counts distinct: R identifies the whole intersection. *)
  let r_values = [ "x"; "y"; "y"; "z"; "z"; "z" ] in
  let s_values = [ "x"; "y"; "y"; "q" ] in
  Alcotest.(check (list string)) "identified"
    [ "x"; "y" ]
    (Psi.Leakage.identified_values ~r_values ~s_values)

let test_leakage_uniform_dups_identify_nothing () =
  (* All counts equal and only part of R's set is shared: R cannot pin
     down which values are in V_S. *)
  let r_values = [ "x"; "y"; "z" ] in
  let s_values = [ "x"; "y"; "q" ] in
  Alcotest.(check (list string)) "nothing identified" []
    (Psi.Leakage.identified_values ~r_values ~s_values)

let test_leakage_full_class_shared_identifies () =
  (* Every R value of a class is shared: identified despite equal counts. *)
  let r_values = [ "x"; "y" ] in
  let s_values = [ "x"; "y"; "q" ] in
  Alcotest.(check (list string)) "whole class identified" [ "x"; "y" ]
    (Psi.Leakage.identified_values ~r_values ~s_values)

(* ------------------------------------------------------------------ *)
(* §3.1 strawman and the dictionary attack                             *)
(* ------------------------------------------------------------------ *)

let domain_universe =
  (* A small value domain the attacker can exhaust (the paper's point:
     small domains are fully recoverable under the strawman). *)
  vs1 @ vr1 @ [ "quince"; "radish"; "squash" ]

let test_insecure_protocol_correct () =
  let o = Psi.Insecure_hash.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  Alcotest.(check (list string)) "intersection still correct" [ "beet"; "corn" ]
    o.Runner.receiver_result.Psi.Insecure_hash.intersection

let test_dictionary_attack_breaks_strawman () =
  let o = Psi.Insecure_hash.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let recovered =
    Psi.Insecure_hash.dictionary_attack cfg ~transcript:o.Runner.receiver_view
      ~candidates:domain_universe
  in
  (* The attacker recovers ALL of V_S — including values outside V_R. *)
  Alcotest.(check (list string)) "V_S fully recovered" (sorted_strings vs1) recovered

let test_dictionary_attack_fails_against_secure_protocol () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let recovered =
    Psi.Insecure_hash.dictionary_attack cfg
      ~transcript:(o.Runner.receiver_view @ o.Runner.sender_view)
      ~candidates:domain_universe
  in
  Alcotest.(check (list string)) "nothing recovered" [] recovered;
  (* Same for the size protocols and the equijoin. *)
  let o2 = Psi.Intersection_size.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  Alcotest.(check (list string)) "nothing from size protocol" []
    (Psi.Insecure_hash.dictionary_attack cfg
       ~transcript:(o2.Runner.receiver_view @ o2.Runner.sender_view)
       ~candidates:domain_universe);
  let o3 = Psi.Equijoin.run cfg ~sender_records:records1 ~receiver_values:vr1 () in
  Alcotest.(check (list string)) "nothing from equijoin" []
    (Psi.Insecure_hash.dictionary_attack cfg
       ~transcript:(o3.Runner.receiver_view @ o3.Runner.sender_view)
       ~candidates:domain_universe)

(* ------------------------------------------------------------------ *)
(* Simulators (the proofs of Statements 2 and 6, executed)             *)
(* ------------------------------------------------------------------ *)

let sim_rng = Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"simulator-tests")

(* Structural profile of a view: tags, element counts, validity. *)
let profile cfg view =
  List.map
    (fun (m : Message.t) ->
      let es = P.elements_of m.Message.payload in
      List.iter
        (fun e ->
          Alcotest.(check bool) "valid group element" true
            (Group.is_element cfg.P.group (Group.decode_elt cfg.P.group e)))
        es;
      (m.Message.tag, List.length es))
    view

let pooled_bit_fraction view =
  let ones = ref 0 and bits = ref 0 in
  List.iter
    (fun (m : Message.t) ->
      List.iter
        (fun e ->
          String.iter
            (fun c ->
              let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
              ones := !ones + pop (Char.code c);
              bits := !bits + 8)
            e)
        (P.elements_of m.Message.payload))
    view;
  float_of_int !ones /. float_of_int (Stdlib.max 1 !bits)

let test_simulator_sender_view () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  let simulated = Psi.Simulator.intersection_sender_view cfg ~rng:sim_rng ~v_r_count:4 in
  Alcotest.(check (list (pair string int))) "same shape" (profile cfg o.Runner.sender_view)
    (profile cfg simulated);
  (match simulated with
  | [ m ] -> Alcotest.(check bool) "sorted" true (P.is_sorted (P.elements_of m.Message.payload))
  | _ -> Alcotest.fail "one message");
  (* No ciphertext coincides between real and simulated (fresh keys). *)
  let elements v = List.concat_map (fun (m : Message.t) -> P.elements_of m.Message.payload) v in
  Alcotest.(check bool) "disjoint ciphertexts" true
    (List.for_all (fun e -> not (List.mem e (elements o.Runner.sender_view))) (elements simulated))

let test_simulator_receiver_view_structure () =
  let o = Psi.Intersection.run cfg ~sender_values:vs1 ~receiver_values:vr1 () in
  (* What R sent (public to the distinguisher). *)
  let y_r =
    match Wire.Runner.(o.sender_view) with
    | [ m ] -> P.elements_of m.Message.payload
    | _ -> Alcotest.fail "expected one message in S's view"
  in
  let simulated =
    Psi.Simulator.intersection_receiver_view cfg ~rng:sim_rng ~y_r
      ~intersection:o.Runner.receiver_result.Psi.Intersection.intersection ~v_s_count:5
  in
  Alcotest.(check (list (pair string int))) "same shape"
    (profile cfg o.Runner.receiver_view)
    (profile cfg simulated);
  (* Statistical smoke: both views look like random bits. *)
  let real_frac = pooled_bit_fraction o.Runner.receiver_view in
  let sim_frac = pooled_bit_fraction simulated in
  Alcotest.(check bool)
    (Printf.sprintf "bit balance real=%.3f sim=%.3f" real_frac sim_frac)
    true
    (Float.abs (real_frac -. 0.5) < 0.05 && Float.abs (sim_frac -. 0.5) < 0.05)

let test_simulator_receiver_view_consistency () =
  (* The proof's consistency requirement: R, processing the SIMULATED
     view with its real key and values, must output exactly the correct
     intersection. We play R's decision procedure by hand. *)
  let rng = Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"sim-consistency") in
  let e_r = Crypto.Commutative.gen_key g64 ~rng in
  let v_r = P.dedup vr1 in
  let ops = P.new_ops () in
  let encoded =
    P.hash_values cfg ops v_r
    |> List.map (fun (v, h) -> (P.encode cfg (Crypto.Commutative.encrypt g64 e_r h), v))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let expected = plain_intersection vs1 vr1 in
  let simulated =
    Psi.Simulator.intersection_receiver_view cfg ~rng:sim_rng
      ~y_r:(List.map fst encoded) ~intersection:expected ~v_s_count:5
  in
  match simulated with
  | [ { Message.payload = Message.Elements y_s; _ }; { Message.payload = Message.Elements y_r_enc; _ } ]
    ->
      let z_s =
        List.map
          (fun y -> P.encode cfg (Crypto.Commutative.encrypt g64 e_r (P.decode cfg y)))
          y_s
      in
      let decision =
        List.map2
          (fun z (_, v) -> (v, List.mem z z_s))
          y_r_enc encoded
        |> List.filter_map (fun (v, hit) -> if hit then Some v else None)
        |> List.sort String.compare
      in
      Alcotest.(check (list string)) "R's output on the simulated view" expected decision
  | _ -> Alcotest.fail "unexpected simulated view shape"

let test_simulator_intersection_size_consistency () =
  let rng = Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"sim-size") in
  let e_r = Crypto.Commutative.gen_key g64 ~rng in
  List.iter
    (fun (v_r_count, v_s_count, size) ->
      let view =
        Psi.Simulator.intersection_size_receiver_view cfg ~rng:sim_rng ~receiver_key:e_r
          ~v_r_count ~v_s_count ~size ()
      in
      match view with
      | [ { Message.payload = Message.Elements y_s; _ }; { Message.payload = Message.Elements z_r; _ } ]
        ->
          Alcotest.(check int) "|Y_S|" v_s_count (List.length y_s);
          Alcotest.(check int) "|Z_R|" v_r_count (List.length z_r);
          Alcotest.(check bool) "Z_R sorted" true (P.is_sorted z_r);
          let z_s =
            List.map
              (fun y -> P.encode cfg (Crypto.Commutative.encrypt g64 e_r (P.decode cfg y)))
              y_s
          in
          let matches = List.length (List.filter (fun z -> List.mem z z_s) z_r) in
          Alcotest.(check int)
            (Printf.sprintf "R computes size %d/%d/%d" v_r_count v_s_count size)
            size matches
      | _ -> Alcotest.fail "unexpected simulated view shape")
    [ (4, 5, 2); (10, 10, 0); (10, 10, 10); (7, 3, 3); (1, 1, 1) ]

let test_simulator_rejects_impossible_size () =
  Alcotest.(check bool) "size > min rejected" true
    (try
       ignore
         (Psi.Simulator.intersection_size_receiver_view cfg ~rng:sim_rng ~v_r_count:2
            ~v_s_count:3 ~size:3 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Robustness: malformed peers cause clean failures                    *)
(* ------------------------------------------------------------------ *)

(* Drive R's side of the intersection protocol against a scripted fake
   sender and return R's outcome. *)
let against_fake_sender script =
  let s_ep, r_ep = Wire.Channel.create () in
  let rng = Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"robust") in
  let t =
    Thread.create
      (fun () ->
        (try script s_ep with _ -> ());
        Wire.Channel.close s_ep)
      ()
  in
  let result =
    try Ok (Psi.Intersection.receiver cfg ~rng ~values:vr1 r_ep) with e -> Error e
  in
  Thread.join t;
  result

let expect_protocol_error name result =
  match result with
  | Error (Wire.Protocol_error msg) ->
      Alcotest.(check bool) (name ^ ": " ^ msg) true
        (String.length msg > 0)
  | Error (Failure msg) ->
      Alcotest.(check bool) (name ^ ": " ^ msg) true
        (String.length msg > 0)
  | Error (Invalid_argument msg) ->
      Alcotest.(check bool) (name ^ ": " ^ msg) true (String.length msg > 0)
  | Error e -> Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)
  | Ok _ -> Alcotest.failf "%s: protocol accepted malformed input" name

let test_robust_wrong_tag () =
  expect_protocol_error "wrong tag"
    (against_fake_sender (fun ep ->
         let _ = Wire.Channel.recv ep in
         Wire.Channel.send ep
           (Message.make ~tag:"equijoin/pairs" (Message.Elements []))))

let test_robust_count_mismatch () =
  expect_protocol_error "count mismatch"
    (against_fake_sender (fun ep ->
         let yr = P.elements_of (Wire.Channel.recv ep).Message.payload in
         Wire.Channel.send ep (Message.make ~tag:"intersection/Y_S" (Message.Elements []));
         (* Echo one element short. *)
         Wire.Channel.send ep
           (Message.make ~tag:"intersection/Y_R_enc" (Message.Elements (List.tl yr)))))

let test_robust_out_of_range_element () =
  expect_protocol_error "out-of-range element"
    (against_fake_sender (fun ep ->
         let _ = Wire.Channel.recv ep in
         (* An all-zero "element" is not in [1, p-1]. *)
         let bogus = String.make (Group.element_bytes g64) '\x00' in
         Wire.Channel.send ep
           (Message.make ~tag:"intersection/Y_S" (Message.Elements [ bogus ]))))

let test_robust_wrong_width_element () =
  expect_protocol_error "wrong width"
    (against_fake_sender (fun ep ->
         let _ = Wire.Channel.recv ep in
         Wire.Channel.send ep
           (Message.make ~tag:"intersection/Y_S" (Message.Elements [ "short" ]))))

let test_robust_wrong_payload_shape () =
  expect_protocol_error "pairs instead of elements"
    (against_fake_sender (fun ep ->
         let _ = Wire.Channel.recv ep in
         Wire.Channel.send ep
           (Message.make ~tag:"intersection/Y_S" (Message.Element_pairs [ ("a", "b") ]))))

let test_robust_early_close () =
  expect_protocol_error "peer vanishes"
    (against_fake_sender (fun ep ->
         let _ = Wire.Channel.recv ep in
         ()))

(* ------------------------------------------------------------------ *)
(* Cost model (§6) and circuit baseline (Appendix A)                   *)
(* ------------------------------------------------------------------ *)

let close ?(tol = 0.05) expected actual =
  Float.abs (actual -. expected) <= tol *. Float.abs expected

let test_cost_model_doc_sharing_paper_numbers () =
  (* §6.2.1: 10 x 100 documents of 1000 words. *)
  let e =
    Psi.Doc_sharing.estimate Psi.Cost_model.paper_params ~n_r:10 ~n_s:100 ~d_r:1000 ~d_s:1000
  in
  Alcotest.(check bool) "4e6 Ce" true (close 4e6 e.Psi.Cost_model.encryptions);
  (* 4e6 * 0.02 / 10 = 8000 s ~ 2.2 hours. *)
  Alcotest.(check bool) "~2 hours" true (close 8000. e.Psi.Cost_model.comp_seconds);
  Alcotest.(check bool) "~3 Gbits" true (close 3.07e9 ~tol:0.03 e.Psi.Cost_model.comm_bits);
  (* ~33 minutes on a T1. *)
  Alcotest.(check bool) "~35 minutes" true
    (e.Psi.Cost_model.comm_seconds > 30. *. 60. && e.Psi.Cost_model.comm_seconds < 36. *. 60.)

let test_cost_model_medical_paper_numbers () =
  (* §6.2.2: |V_R| = |V_S| = 1 million. *)
  let e = Psi.Medical.estimate Psi.Cost_model.paper_params ~v_r:1_000_000 ~v_s:1_000_000 in
  Alcotest.(check bool) "8e6 Ce" true (close 8e6 e.Psi.Cost_model.encryptions);
  (* 8e6 * 0.02 / 10 = 16000 s ~ 4.4 hours. *)
  Alcotest.(check bool) "~4 hours" true (close 16000. e.Psi.Cost_model.comp_seconds);
  Alcotest.(check bool) "~8 Gbits" true (close 8.19e9 ~tol:0.03 e.Psi.Cost_model.comm_bits);
  (* ~1.5 hours on a T1. *)
  Alcotest.(check bool) "~1.5 hours" true
    (e.Psi.Cost_model.comm_seconds > 1.3 *. 3600. && e.Psi.Cost_model.comm_seconds < 1.6 *. 3600.)

let test_cost_model_formulas () =
  let p = Psi.Cost_model.paper_params in
  let e = Psi.Cost_model.estimate p Psi.Cost_model.Intersection ~v_s:100 ~v_r:50 in
  Alcotest.(check bool) "Ce" true (close 300. e.Psi.Cost_model.encryptions);
  Alcotest.(check bool) "bits" true (close (200. *. 1024.) e.Psi.Cost_model.comm_bits);
  let j = Psi.Cost_model.estimate p Psi.Cost_model.Equijoin ~v_s:100 ~v_r:50 in
  Alcotest.(check bool) "join Ce = 2*100 + 5*50" true (close 450. j.Psi.Cost_model.encryptions);
  Alcotest.(check bool) "join bits = (100+150)k + 100k'" true
    (close (350. *. 1024.) j.Psi.Cost_model.comm_bits)

let test_obs_telemetry_matches_cost_model () =
  (* End-to-end through the telemetry layer: run a small intersection
     with Obs enabled and check the observed Ce count equals the §6.1
     prediction exactly — both at the protocol level (psi.* counters via
     Obs_report) and at the crypto level (every modexp the Commutative
     module performed). *)
  Obs.Runtime.with_enabled (fun () ->
      Obs.Metrics.reset ();
      let vs, vr = Psi.Workload.value_sets ~seed:"obs-psi" ~n_s:9 ~n_r:7 ~overlap:3 in
      ignore (Psi.Intersection.run cfg ~seed:"t:obs" ~sender_values:vs ~receiver_values:vr ());
      let snap = Obs.Metrics.snapshot () in
      let p = { Psi.Cost_model.paper_params with k_bits = 8 * Group.element_bytes g64 } in
      let c = Psi.Obs_report.model_vs_measured p Psi.Cost_model.Intersection snap in
      Alcotest.(check (float 0.)) "predicted Ce = 2(|V_S|+|V_R|)" 32.
        c.Obs.Report.predicted_ce;
      Alcotest.(check (float 0.)) "observed = predicted, exactly" 0.
        c.Obs.Report.ce_rel_error;
      let crypto_modexps =
        Option.value ~default:0 (Obs.Metrics.find_counter snap "crypto.commutative.encrypts")
        + Option.value ~default:0
            (Obs.Metrics.find_counter snap "crypto.commutative.decrypts")
      in
      Alcotest.(check int) "crypto layer agrees" 32 crypto_modexps;
      (* Framing (tags, length varints) only ever adds bytes, so the
         wire can't undershoot the model. *)
      Alcotest.(check bool) "wire bits >= model bits" true
        (c.Obs.Report.observed_bits >= c.Obs.Report.predicted_bits);
      Obs.Metrics.reset ())

let test_tracing_leaves_transcript_identical () =
  (* The observability layer must never change what crosses the wire:
     with trace context, span collection and the flight recorder all
     switched on, the Message-level transcript of a seeded run is
     identical to the untraced run's — no new wire bytes, ever. *)
  let run () =
    let o =
      Psi.Intersection.run cfg ~seed:"t:traced" ~sender_values:vs1
        ~receiver_values:vr1 ()
    in
    (o.Runner.sender_view, o.Runner.receiver_view)
  in
  let plain_s, plain_r = run () in
  Obs.Ring.install ();
  Obs.Context.set_trace_id "feedbeeffeedbeeffeedbeeffeedbeef";
  Obs.Context.set_party "R";
  let (traced_s, traced_r), _roots, _snap =
    Fun.protect
      ~finally:(fun () ->
        Obs.Context.clear ();
        Obs.Ring.uninstall ())
      (fun () -> Obs.trace run)
  in
  Alcotest.(check bool) "sender view identical under tracing" true
    (List.equal Message.equal plain_s traced_s);
  Alcotest.(check bool) "receiver view identical under tracing" true
    (List.equal Message.equal plain_r traced_r)

let test_collision_probability_paper_example () =
  (* §3.2.2: 1024-bit hash values, half are quadratic residues, n = 1
     million => collision probability ~= 10^12 / 10^307 = 10^-295. *)
  let mantissa, e = Psi.Cost_model.collision_probability ~modulus_bits:1024 ~n:1e6 in
  (* The paper rounds N = 2^1023 to 10^307 and reports ~10^-295; the
     exact exponent is -297..-296. *)
  Alcotest.(check bool)
    (Printf.sprintf "%.2fe%d ~ 1e-295" mantissa e)
    true
    (e >= -297 && e <= -295);
  Alcotest.(check bool) "mantissa sane" true (mantissa >= 1. && mantissa < 10.);
  (* Sanity at small scale against direct evaluation: 64-bit modulus,
     n = 2^20: x = n^2/2^64 ~ 6e-8. *)
  let m2, e2 = Psi.Cost_model.collision_probability ~modulus_bits:64 ~n:(2. ** 20.) in
  let direct = (2. ** 40.) /. (2. ** 64.) in
  Alcotest.(check bool) "agrees with direct computation" true
    (Float.abs ((m2 *. (10. ** float_of_int e2)) -. direct) /. direct < 0.01)

let test_circuit_optimal_m_matches_paper () =
  List.iter
    (fun (n, m_expected) ->
      let m, _ = Psi.Circuit_baseline.optimal_m n in
      Alcotest.(check int) (Printf.sprintf "m for n=%g" n) m_expected m)
    [ (1e4, 11); (1e6, 19); (1e8, 32) ]

let test_circuit_gate_counts_match_paper () =
  List.iter
    (fun (n, f_expected) ->
      let _, f = Psi.Circuit_baseline.optimal_m n in
      Alcotest.(check bool)
        (Printf.sprintf "f(%g) = %g (got %g)" n f_expected f)
        true (close f_expected f))
    [ (1e4, 2.3e8); (1e6, 7.3e10); (1e8, 1.9e13) ];
  List.iter
    (fun (n, bf) ->
      Alcotest.(check bool) "brute force" true
        (close bf (Psi.Circuit_baseline.brute_force_gates n)))
    [ (1e4, 6.3e9); (1e6, 6.3e13); (1e8, 6.3e17) ]

let test_circuit_computation_table () =
  let rows = Psi.Circuit_baseline.computation_table [ 1e4; 1e6; 1e8 ] in
  List.iter2
    (fun (input, eval, ours) (row : Psi.Circuit_baseline.computation_row) ->
      Alcotest.(check bool) "input" true (close input row.Psi.Circuit_baseline.circuit_input_ce);
      Alcotest.(check bool) "eval" true (close eval row.Psi.Circuit_baseline.circuit_eval_cr);
      Alcotest.(check bool) "ours" true (close ours row.Psi.Circuit_baseline.ours_ce))
    [ (5e4, 4.7e8, 4e4); (5e6, 1.5e11, 4e6); (5e8, 3.8e13, 4e8) ]
    rows

let test_circuit_communication_table () =
  let rows = Psi.Circuit_baseline.communication_table [ 1e4; 1e6; 1e8 ] in
  List.iter2
    (fun (input, tables, ours) (row : Psi.Circuit_baseline.communication_row) ->
      Alcotest.(check bool) "input" true (close input row.Psi.Circuit_baseline.circuit_input_bits);
      Alcotest.(check bool) "tables" true
        (close tables row.Psi.Circuit_baseline.circuit_tables_bits);
      Alcotest.(check bool) "ours" true (close ours row.Psi.Circuit_baseline.ours_bits))
    [ (1.02e9, 6.0e10, 3.07e7); (1.02e11, 1.88e13, 3.07e9); (1.02e13, 4.9e15, 3.07e11) ]
    rows

let test_circuit_headline_claim () =
  (* "For n = 1 million, 144 days versus 0.5 hours": the circuit needs
     ~1000x more communication time than our protocol. *)
  let row = List.hd (Psi.Circuit_baseline.communication_table [ 1e6 ]) in
  let circuit_s =
    Psi.Circuit_baseline.transfer_seconds
      (row.Psi.Circuit_baseline.circuit_input_bits +. row.Psi.Circuit_baseline.circuit_tables_bits)
  in
  let ours_s = Psi.Circuit_baseline.transfer_seconds row.Psi.Circuit_baseline.ours_bits in
  Alcotest.(check bool) "circuit ~140 days" true (circuit_s > 120. *. 86400. && circuit_s < 160. *. 86400.);
  Alcotest.(check bool) "ours ~0.5 hours" true (ours_s > 0.4 *. 3600. && ours_s < 0.7 *. 3600.);
  Alcotest.(check bool) ">1000x gap" true (circuit_s /. ours_s > 1000.)

(* ------------------------------------------------------------------ *)
(* Workload generators                                                 *)
(* ------------------------------------------------------------------ *)

let test_workload_value_sets () =
  let vs, vr = Psi.Workload.value_sets ~seed:"w" ~n_s:30 ~n_r:20 ~overlap:7 in
  Alcotest.(check int) "|V_S|" 30 (List.length (List.sort_uniq String.compare vs));
  Alcotest.(check int) "|V_R|" 20 (List.length (List.sort_uniq String.compare vr));
  Alcotest.(check int) "overlap" 7 (List.length (plain_intersection vs vr));
  Alcotest.(check bool) "overlap too large rejected" true
    (try
       ignore (Psi.Workload.value_sets ~seed:"w" ~n_s:3 ~n_r:2 ~overlap:3);
       false
     with Invalid_argument _ -> true)

let test_workload_documents () =
  let docs =
    Psi.Workload.documents ~seed:"d" ~n_docs:5 ~words_per_doc:50 ~vocabulary:200 ~prefix:"r"
  in
  Alcotest.(check int) "5 docs" 5 (List.length docs);
  List.iter
    (fun (d : Psi.Workload.document) ->
      Alcotest.(check int) "50 distinct words" 50
        (List.length (List.sort_uniq String.compare d.Psi.Workload.words)))
    docs;
  (* Determinism. *)
  let again =
    Psi.Workload.documents ~seed:"d" ~n_docs:5 ~words_per_doc:50 ~vocabulary:200 ~prefix:"r"
  in
  Alcotest.(check bool) "deterministic" true (docs = again)

let test_workload_medical_tables () =
  let t_r, t_s, truth =
    Psi.Workload.medical_tables ~seed:"m" ~n_patients:500 ~p_pattern:0.3 ~p_drug:0.5
      ~p_reaction:0.1
  in
  Alcotest.(check int) "T_R rows" 500 (Minidb.Table.cardinality t_r);
  Alcotest.(check int) "T_S rows" 500 (Minidb.Table.cardinality t_s);
  (* Ground truth agrees with the reference SQL evaluation. *)
  let c = Psi.Medical.plaintext_counts ~t_r ~t_s in
  Alcotest.(check int) "cell pr" truth.Psi.Workload.pattern_and_reaction c.Psi.Medical.pattern_and_reaction;
  Alcotest.(check int) "cell pn" truth.Psi.Workload.pattern_no_reaction c.Psi.Medical.pattern_no_reaction;
  Alcotest.(check int) "cell nr" truth.Psi.Workload.no_pattern_and_reaction c.Psi.Medical.no_pattern_and_reaction;
  Alcotest.(check int) "cell nn" truth.Psi.Workload.no_pattern_no_reaction c.Psi.Medical.no_pattern_no_reaction

(* ------------------------------------------------------------------ *)
(* Applications                                                        *)
(* ------------------------------------------------------------------ *)

let test_app_doc_sharing () =
  let docs_r =
    Psi.Workload.documents ~seed:"app-doc" ~n_docs:3 ~words_per_doc:40 ~vocabulary:2000 ~prefix:"R"
  in
  let docs_s =
    Psi.Workload.documents ~seed:"app-doc" ~n_docs:3 ~words_per_doc:40 ~vocabulary:2000 ~prefix:"S"
  in
  let docs_r, docs_s = Psi.Workload.plant_similar_pair ~seed:"app-doc" docs_r docs_s ~fraction_shared:0.8 in
  let threshold = 0.2 in
  let report = Psi.Doc_sharing.run cfg ~docs_r ~docs_s ~threshold () in
  let expected = Psi.Doc_sharing.plaintext_matches ~docs_r ~docs_s ~threshold () in
  Alcotest.(check (list (pair string string))) "matches = plaintext oracle" expected
    (List.map (fun (p : Psi.Doc_sharing.pair_result) -> (p.Psi.Doc_sharing.r_doc, p.Psi.Doc_sharing.s_doc))
       report.Psi.Doc_sharing.matches);
  Alcotest.(check bool) "planted pair found" true (List.length report.Psi.Doc_sharing.matches >= 1);
  Alcotest.(check int) "all pairs explored" 9 (List.length report.Psi.Doc_sharing.all_pairs)

let test_app_medical () =
  let t_r, t_s, truth =
    Psi.Workload.medical_tables ~seed:"app-med" ~n_patients:300 ~p_pattern:0.25 ~p_drug:0.6
      ~p_reaction:0.15
  in
  let report = Psi.Medical.run cfg ~t_r ~t_s () in
  let c = report.Psi.Medical.counts in
  Alcotest.(check int) "pattern+reaction" truth.Psi.Workload.pattern_and_reaction
    c.Psi.Medical.pattern_and_reaction;
  Alcotest.(check int) "pattern only" truth.Psi.Workload.pattern_no_reaction
    c.Psi.Medical.pattern_no_reaction;
  Alcotest.(check int) "reaction only" truth.Psi.Workload.no_pattern_and_reaction
    c.Psi.Medical.no_pattern_and_reaction;
  Alcotest.(check int) "neither" truth.Psi.Workload.no_pattern_no_reaction
    c.Psi.Medical.no_pattern_no_reaction;
  Alcotest.(check bool) "bytes accounted" true (report.Psi.Medical.total_bytes > 0)

let test_app_medical_ce_budget () =
  (* Figure 2's four protocols cost 2(|V_R|+|V_S|) * 2 Ce in total. *)
  let t_r, t_s, _ =
    Psi.Workload.medical_tables ~seed:"budget" ~n_patients:200 ~p_pattern:0.5 ~p_drug:0.5
      ~p_reaction:0.2
  in
  let report = Psi.Medical.run cfg ~t_r ~t_s () in
  let v_r = 200 in
  let v_s =
    Minidb.Table.cardinality (Minidb.Relop.select_eq t_s "drug" (Minidb.Value.Bool true))
  in
  Alcotest.(check int) "total Ce = 4(|V_R| + |V_S|)"
    (4 * (v_r + v_s))
    report.Psi.Medical.ops.P.encryptions

(* ------------------------------------------------------------------ *)
(* Incremental sessions: persistent cache + snapshot diffs             *)
(* ------------------------------------------------------------------ *)

let tmp_dir_counter = ref 0

let fresh_cache_dir () =
  incr tmp_dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "psi-incr-test-%d-%d" (Unix.getpid ()) !tmp_dir_counter)

let session_result_equal a b =
  match (a, b) with
  | Psi.Session.Values x, Psi.Session.Values y -> List.equal String.equal x y
  | Psi.Session.Size x, Psi.Session.Size y -> Int.equal x y
  | Psi.Session.Matches x, Psi.Session.Matches y ->
      List.equal
        (fun (v1, r1) (v2, r2) -> String.equal v1 v2 && List.equal String.equal r1 r2)
        x y
  | _ -> false

let all_four_ops ~r_values =
  [
    Psi.Session.Intersect { s_values = vs1; r_values };
    Psi.Session.Intersect_size { s_values = vs1; r_values };
    Psi.Session.Equijoin { s_records = records1; r_values };
    Psi.Session.Equijoin_size { s_values = vs1; r_values };
  ]

(* The tentpole's correctness claim: a warm (cached) re-run produces
   results identical to a cold run of the same inputs, for all four
   protocols, with identical wire traffic. *)
let test_incremental_identical_to_cold () =
  let dir = fresh_cache_dir () in
  let seed = "t:incremental" in
  let run ops = Psi.Session.run_incremental cfg ~seed ~cache_dir:dir ops () in
  let cold = run (all_four_ops ~r_values:vr1) in
  Alcotest.(check bool) "first run is cold" true cold.Psi.Session.incremental.cold;
  Alcotest.(check int) "run 1" 1 cold.Psi.Session.incremental.run_id;
  (* Mutate the receiver set: drop "fig", add two new values. *)
  let vr' = [ "beet"; "corn"; "grape"; "hazel"; "iris" ] in
  let warm = run (all_four_ops ~r_values:vr') in
  Alcotest.(check bool) "second run is warm" false warm.Psi.Session.incremental.cold;
  Alcotest.(check int) "run 2" 2 warm.Psi.Session.incremental.run_id;
  (* Reference: the exact same session without any cache. *)
  let reference = Psi.Session.run cfg ~seed (all_four_ops ~r_values:vr') () in
  Alcotest.(check bool) "results byte-identical to cold" true
    (List.equal session_result_equal reference.Psi.Session.results
       warm.Psi.Session.report.Psi.Session.results);
  Alcotest.(check int) "wire traffic identical" reference.Psi.Session.total_bytes
    warm.Psi.Session.report.Psi.Session.total_bytes

(* Warm-run hit/miss counts are deterministic (unlike a cold run's,
   where the two parties race to populate the shared hash namespace):
   a receiver-side delta of [d] values costs exactly 3d misses on the
   intersection — hash d, encrypt-own d, sender re-encrypt d. *)
let test_incremental_miss_counts_match_delta () =
  let dir = fresh_cache_dir () in
  let seed = "t:misses" in
  let op r_values = [ Psi.Session.Intersect { s_values = vs1; r_values } ] in
  ignore (Psi.Session.run_incremental cfg ~seed ~cache_dir:dir (op vr1) ());
  let vr' = [ "beet"; "corn"; "grape"; "huckle" ] in
  let warm = Psi.Session.run_incremental cfg ~seed ~cache_dir:dir (op vr') () in
  let i = warm.Psi.Session.incremental in
  let n_s = 5 and n_r = 4 and d = 1 in
  Alcotest.(check int) "added" d i.Psi.Session.added;
  Alcotest.(check int) "removed" 1 i.Psi.Session.removed;
  Alcotest.(check int) "unchanged" (n_s + n_r - 1) i.Psi.Session.unchanged;
  Alcotest.(check int) "misses = 3·|Δ|" (3 * d) i.Psi.Session.misses;
  Alcotest.(check int) "hits = 3(n_s + n_r) - 3·|Δ|"
    ((3 * (n_s + n_r)) - (3 * d))
    i.Psi.Session.hits;
  (* Ce actually paid on the warm run: own-encrypt + peer re-encrypt. *)
  Alcotest.(check int) "warm Ce = 2·|Δ|" (2 * d)
    warm.Psi.Session.report.Psi.Session.ops.P.encryptions

(* `Fresh keys miss every cached ciphertext by construction; only the
   key-independent hashing amortizes. *)
let test_incremental_fresh_keys_invalidate () =
  let dir = fresh_cache_dir () in
  let seed = "t:fresh" in
  let op = [ Psi.Session.Intersect { s_values = vs1; r_values = vr1 } ] in
  let run () = Psi.Session.run_incremental cfg ~seed ~keys:`Fresh ~cache_dir:dir op () in
  ignore (run ());
  let warm = run () in
  let n = 5 + 4 in
  let i = warm.Psi.Session.incremental in
  (* Unchanged inputs, but the key policy rotated the exponents: all
     2(n_s+n_r) encryption lookups miss, all n_s+n_r hash lookups hit. *)
  Alcotest.(check int) "hash hits only" n i.Psi.Session.hits;
  Alcotest.(check int) "all ciphertexts recomputed" (2 * n) i.Psi.Session.misses;
  Alcotest.(check int) "full Ce paid" (2 * n)
    warm.Psi.Session.report.Psi.Session.ops.P.encryptions;
  let reference = Psi.Session.run cfg ~seed:(seed ^ "/run-2") op () in
  Alcotest.(check bool) "results still correct" true
    (List.equal session_result_equal reference.Psi.Session.results
       warm.Psi.Session.report.Psi.Session.results)

(* A damaged cache degrades to recompute with identical results. *)
let test_incremental_survives_cache_damage () =
  let dir = fresh_cache_dir () in
  let seed = "t:damage" in
  let op = [ Psi.Session.Intersect { s_values = vs1; r_values = vr1 } ] in
  ignore (Psi.Session.run_incremental cfg ~seed ~cache_dir:dir op ());
  (* Flip a byte in the middle of the cache file. *)
  let path = Filename.concat dir "ecache.psi" in
  let data = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let mid = Bytes.length data / 2 in
  Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 0xFF));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Bytes.to_string data));
  let warm = Psi.Session.run_incremental cfg ~seed ~cache_dir:dir op () in
  let reference = Psi.Session.run cfg ~seed op () in
  Alcotest.(check bool) "results unharmed" true
    (List.equal session_result_equal reference.Psi.Session.results
       warm.Psi.Session.report.Psi.Session.results)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "psi"
    [
      ( "intersection",
        [
          Alcotest.test_case "basic" `Quick test_intersection_basic;
          Alcotest.test_case "disjoint" `Quick test_intersection_disjoint;
          Alcotest.test_case "identical" `Quick test_intersection_identical;
          Alcotest.test_case "subset" `Quick test_intersection_subset;
          Alcotest.test_case "empty sides" `Quick test_intersection_empty_sides;
          Alcotest.test_case "input deduplication" `Quick test_intersection_dedups_input;
          Alcotest.test_case "binary/unicode/long values" `Quick test_intersection_binary_values;
          Alcotest.test_case "randomized sizes" `Slow test_intersection_randomized;
          Alcotest.test_case "256-bit group" `Quick test_intersection_larger_group;
          Alcotest.test_case "deterministic given seed" `Quick test_intersection_deterministic_given_seed;
        ] );
      ( "intersection-costs",
        [
          Alcotest.test_case "op counts = §6.1" `Quick test_intersection_op_counts;
          Alcotest.test_case "comm counts = §6.1" `Quick test_intersection_comm_counts;
        ] );
      ( "intersection-security",
        [
          Alcotest.test_case "sender view shape" `Quick test_intersection_sender_view_shape;
          Alcotest.test_case "no plaintext or raw hash on wire" `Quick
            test_intersection_transcript_reveals_no_plaintext;
          Alcotest.test_case "transcripts differ across seeds" `Quick
            test_intersection_views_differ_across_seeds;
        ] );
      ( "property-oracles",
        [
          prop_intersection_oracle;
          prop_intersection_size_oracle;
          prop_equijoin_size_oracle;
          prop_equijoin_oracle;
          prop_aggregate_oracle;
        ] );
      ( "parallelism",
        [
          Alcotest.test_case "parallel_map = map" `Quick test_parallel_map_matches_sequential;
          Alcotest.test_case "short lists stay sequential" `Quick test_parallel_map_short_lists;
          Alcotest.test_case "protocols agree across worker counts" `Quick
            test_parallel_protocols_same_results;
          Alcotest.test_case "worker validation" `Quick test_parallel_workers_validated;
          prop_pool_size_invariance;
          Alcotest.test_case "kernels on/off leave transcripts identical" `Quick
            test_kernel_transcript_invariance;
        ] );
      ( "equijoin",
        [
          Alcotest.test_case "basic with multi-record ext" `Quick test_equijoin_basic;
          Alcotest.test_case "no matches" `Quick test_equijoin_no_matches;
          Alcotest.test_case "empty sides" `Quick test_equijoin_empty_sides;
          Alcotest.test_case "Mul cipher (Example 2)" `Quick test_equijoin_mul_cipher;
          Alcotest.test_case "Mul cipher payload limit" `Quick test_equijoin_mul_cipher_payload_limit;
          Alcotest.test_case "Stream cipher 50KB record" `Quick test_equijoin_stream_large_payload;
          Alcotest.test_case "op counts = §6.1" `Quick test_equijoin_op_counts;
          Alcotest.test_case "comm counts = §6.1" `Quick test_equijoin_comm_counts;
          Alcotest.test_case "ext pairs sorted" `Quick test_equijoin_ext_pairs_sorted;
          Alcotest.test_case "matches minidb join" `Quick test_equijoin_matches_minidb_join;
        ] );
      ( "intersection-size",
        [
          Alcotest.test_case "basic" `Quick test_intersection_size_basic;
          Alcotest.test_case "size sweep" `Slow test_intersection_size_cases;
          Alcotest.test_case "Z_R re-sorted and unpaired" `Quick test_intersection_size_z_r_resorted;
          Alcotest.test_case "op counts" `Quick test_intersection_size_op_counts;
        ] );
      ( "equijoin-size",
        [
          Alcotest.test_case "basic multiset join size" `Quick test_equijoin_size_basic;
          Alcotest.test_case "duplicate distributions" `Quick test_equijoin_size_duplicate_distributions;
          Alcotest.test_case "class leakage = prediction" `Quick
            test_equijoin_size_class_leakage_matches_prediction;
          Alcotest.test_case "no duplicates degenerates" `Quick test_equijoin_size_no_duplicates_degenerates;
          Alcotest.test_case "randomized" `Slow test_equijoin_size_randomized;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "duplicate classes" `Quick test_leakage_duplicate_classes;
          Alcotest.test_case "unique dups identify" `Quick test_leakage_unique_dups_identify_everything;
          Alcotest.test_case "uniform dups hide" `Quick test_leakage_uniform_dups_identify_nothing;
          Alcotest.test_case "fully shared class identifies" `Quick
            test_leakage_full_class_shared_identifies;
        ] );
      ( "strawman-attack",
        [
          Alcotest.test_case "strawman computes intersection" `Quick test_insecure_protocol_correct;
          Alcotest.test_case "dictionary attack recovers V_S" `Quick test_dictionary_attack_breaks_strawman;
          Alcotest.test_case "attack fails vs secure protocols" `Quick
            test_dictionary_attack_fails_against_secure_protocol;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "matching configs agree" `Quick (fun () ->
              let o =
                Runner.run
                  ~sender:(fun ep -> Psi.Handshake.respond cfg ep)
                  ~receiver:(fun ep -> Psi.Handshake.initiate cfg ep)
              in
              Alcotest.(check int) "one message each way" 2
                (o.Runner.sender_stats.Wire.Channel.messages_sent
                + o.Runner.receiver_stats.Wire.Channel.messages_sent));
          Alcotest.test_case "group mismatch detected" `Quick (fun () ->
              Alcotest.(check bool) "fails" true
                (try
                   ignore
                     (Runner.run
                        ~sender:(fun ep -> Psi.Handshake.respond cfg256 ep)
                        ~receiver:(fun ep -> Psi.Handshake.initiate cfg ep));
                   false
                 with Failure _ -> true));
          Alcotest.test_case "domain mismatch detected" `Quick (fun () ->
              let cfg_b = P.config ~domain:"other" g64 in
              Alcotest.(check bool) "fails" true
                (try
                   ignore
                     (Runner.run
                        ~sender:(fun ep -> Psi.Handshake.respond cfg_b ep)
                        ~receiver:(fun ep -> Psi.Handshake.initiate cfg ep));
                   false
                 with Failure _ -> true));
          Alcotest.test_case "cipher mismatch detected" `Quick (fun () ->
              let cfg_b = P.config ~cipher:Crypto.Perfect_cipher.Mul_cipher g64 in
              Alcotest.(check bool) "fails" true
                (try
                   ignore
                     (Runner.run
                        ~sender:(fun ep -> Psi.Handshake.respond cfg_b ep)
                        ~receiver:(fun ep -> Psi.Handshake.initiate cfg ep));
                   false
                 with Failure _ -> true));
          Alcotest.test_case "workers do not affect fingerprint" `Quick (fun () ->
              Alcotest.(check string) "equal"
                (Psi.Handshake.fingerprint (P.config ~workers:1 g64))
                (Psi.Handshake.fingerprint (P.config ~workers:8 g64)));
        ] );
      ( "session",
        [
          Alcotest.test_case "handshake + three protocols, one channel" `Quick (fun () ->
              let report =
                Psi.Session.run cfg
                  [
                    Psi.Session.Intersect { s_values = vs1; r_values = vr1 };
                    Psi.Session.Intersect_size { s_values = vs1; r_values = vr1 };
                    Psi.Session.Equijoin
                      { s_records = records1; r_values = vr1 };
                    Psi.Session.Equijoin_size
                      { s_values = [ "a"; "a"; "b" ]; r_values = [ "a"; "c" ] };
                  ]
                  ()
              in
              match report.Psi.Session.results with
              | [ Psi.Session.Values inter; Psi.Session.Size sz;
                  Psi.Session.Matches m; Psi.Session.Size jsz ] ->
                  Alcotest.(check (list string)) "intersect" [ "beet"; "corn" ] inter;
                  Alcotest.(check int) "size" 2 sz;
                  Alcotest.(check int) "join matches" 2 (List.length m);
                  Alcotest.(check int) "join size" 2 jsz;
                  Alcotest.(check bool) "bytes accumulate" true
                    (report.Psi.Session.total_bytes > 0)
              | _ -> Alcotest.fail "wrong result shapes");
          Alcotest.test_case "session ops accounting" `Quick (fun () ->
              let report =
                Psi.Session.run cfg
                  [ Psi.Session.Intersect { s_values = vs1; r_values = vr1 } ]
                  ()
              in
              (* Handshake adds no encryptions; counts match a plain run. *)
              Alcotest.(check int) "Ce" (2 * (5 + 4)) report.Psi.Session.ops.P.encryptions);
        ] );
      ( "incremental",
        [
          Alcotest.test_case "warm run identical to cold (all four protocols)" `Quick
            test_incremental_identical_to_cold;
          Alcotest.test_case "miss counts match the delta" `Quick
            test_incremental_miss_counts_match_delta;
          Alcotest.test_case "`Fresh keys invalidate by construction" `Quick
            test_incremental_fresh_keys_invalidate;
          Alcotest.test_case "cache damage degrades to recompute" `Quick
            test_incremental_survives_cache_damage;
        ] );
      ( "proof-simulators",
        [
          Alcotest.test_case "sender view simulator (Stmt 2)" `Quick test_simulator_sender_view;
          Alcotest.test_case "receiver view simulator: structure" `Quick
            test_simulator_receiver_view_structure;
          Alcotest.test_case "receiver view simulator: consistency" `Quick
            test_simulator_receiver_view_consistency;
          Alcotest.test_case "size simulator: consistency (Stmt 6)" `Quick
            test_simulator_intersection_size_consistency;
          Alcotest.test_case "size simulator: validation" `Quick
            test_simulator_rejects_impossible_size;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "wrong tag rejected" `Quick test_robust_wrong_tag;
          Alcotest.test_case "count mismatch rejected" `Quick test_robust_count_mismatch;
          Alcotest.test_case "out-of-range element rejected" `Quick test_robust_out_of_range_element;
          Alcotest.test_case "wrong-width element rejected" `Quick test_robust_wrong_width_element;
          Alcotest.test_case "wrong payload shape rejected" `Quick test_robust_wrong_payload_shape;
          Alcotest.test_case "early close fails cleanly" `Quick test_robust_early_close;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "§6.2.1 document sharing numbers" `Quick
            test_cost_model_doc_sharing_paper_numbers;
          Alcotest.test_case "§6.2.2 medical numbers" `Quick test_cost_model_medical_paper_numbers;
          Alcotest.test_case "§6.1 formulas" `Quick test_cost_model_formulas;
          Alcotest.test_case "telemetry matches §6.1" `Quick
            test_obs_telemetry_matches_cost_model;
          Alcotest.test_case "tracing leaves transcript identical" `Quick
            test_tracing_leaves_transcript_identical;
          Alcotest.test_case "§3.2.2 collision probability" `Quick
            test_collision_probability_paper_example;
        ] );
      ( "circuit-baseline",
        [
          Alcotest.test_case "optimal m = paper" `Quick test_circuit_optimal_m_matches_paper;
          Alcotest.test_case "gate counts = paper table" `Quick test_circuit_gate_counts_match_paper;
          Alcotest.test_case "computation table (A.2)" `Quick test_circuit_computation_table;
          Alcotest.test_case "communication table (A.2)" `Quick test_circuit_communication_table;
          Alcotest.test_case "144 days vs 0.5 hours" `Quick test_circuit_headline_claim;
        ] );
      ( "workload",
        [
          Alcotest.test_case "value sets" `Quick test_workload_value_sets;
          Alcotest.test_case "documents" `Quick test_workload_documents;
          Alcotest.test_case "medical tables vs reference SQL" `Quick test_workload_medical_tables;
        ] );
      ( "applications",
        [
          Alcotest.test_case "document sharing = oracle" `Slow test_app_doc_sharing;
          Alcotest.test_case "medical counts = ground truth" `Slow test_app_medical;
          Alcotest.test_case "medical Ce budget" `Slow test_app_medical_ce_budget;
        ] );
    ]
