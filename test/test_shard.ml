(* Sharded driver suite: the bucket partition is stable and uniform
   enough, the sharded result is identical to the monolithic one for
   all four protocols across bucket counts (deterministic and
   property-based), spilled inputs stream back to the same answer, a
   killed run resumes at per-bucket granularity, and the sharded
   transcript leaks only bucket sizes and a constant-shape resume frame
   beyond the monolithic shape. *)

module Session = Psi.Session
module Shard = Psi.Shard
module P = Psi.Protocol
module Runner = Wire.Runner
module Message = Wire.Message
module Channel = Wire.Channel
module Fault = Wire.Fault
module Transport = Wire.Transport

let cfg = P.config ~domain:"shard-test" (Crypto.Group.named Crypto.Group.Test64)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psi-shard-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  rm d;
  d

let s_values = [ "apple"; "banana"; "cherry"; "damson"; "elder"; "fig" ]
let r_values = [ "banana"; "cherry"; "grape"; "fig"; "quince" ]
let s_records = List.map (fun v -> (v, "row:" ^ v)) s_values
let s_multiset = "banana" :: "fig" :: "fig" :: s_values
let r_multiset = "fig" :: r_values

let all_ops =
  [
    Session.Intersect { s_values; r_values };
    Session.Intersect_size { s_values; r_values };
    Session.Equijoin { s_records; r_values };
    Session.Equijoin_size { s_values = s_multiset; r_values = r_multiset };
  ]

let result_equal a b =
  match (a, b) with
  | Session.Values x, Session.Values y -> List.equal String.equal x y
  | Session.Size x, Session.Size y -> Int.equal x y
  | Session.Matches x, Session.Matches y ->
      List.equal
        (fun (v1, r1) (v2, r2) -> String.equal v1 v2 && List.equal String.equal r1 r2)
        x y
  | (Session.Values _ | Session.Size _ | Session.Matches _), _ -> false

let result_pp fmt = function
  | Session.Values vs -> Format.fprintf fmt "Values [%s]" (String.concat "; " vs)
  | Session.Size n -> Format.fprintf fmt "Size %d" n
  | Session.Matches ms -> Format.fprintf fmt "Matches (%d values)" (List.length ms)

let result_t = Alcotest.testable result_pp result_equal

(* ------------------------------------------------------------------ *)
(* Bucket assignment                                                   *)
(* ------------------------------------------------------------------ *)

let test_bucket_of_stable () =
  let vs = List.init 200 (fun i -> Printf.sprintf "elem-%d" i) in
  List.iter
    (fun k ->
      let assign = List.map (Shard.bucket_of cfg ~buckets:k) vs in
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "bucket in range (k=%d)" k)
            true
            (b >= 0 && b < k))
        assign;
      (* A pure function of the element: recomputing (in any order)
         gives the same assignment. *)
      let again = List.rev_map (Shard.bucket_of cfg ~buckets:k) (List.rev vs) in
      Alcotest.(check (list int)) (Printf.sprintf "stable (k=%d)" k) assign again)
    [ 1; 2; 4; 16; 64 ]

let test_bucket_of_covers () =
  (* Hash uniformity: 200 elements over 4 buckets leave none empty. *)
  let vs = List.init 200 (fun i -> Printf.sprintf "elem-%d" i) in
  let seen = Array.make 4 0 in
  List.iter (fun v -> seen.(Shard.bucket_of cfg ~buckets:4 v) <- 1) vs;
  Alcotest.(check int) "all buckets hit" 4 (Array.fold_left ( + ) 0 seen)

(* ------------------------------------------------------------------ *)
(* Sharded = monolithic, all four protocols                            *)
(* ------------------------------------------------------------------ *)

let test_parity_all_protocols () =
  let plain = Session.run cfg ~seed:"shard-parity" all_ops () in
  List.iter
    (fun k ->
      let sharded =
        Session.run cfg ~seed:"shard-parity"
          ~shard:(Shard.plan ~buckets:k ())
          all_ops ()
      in
      Alcotest.(check (list result_t))
        (Printf.sprintf "results (k=%d)" k)
        plain.Session.results sharded.Session.results;
      (* Total crypto work is identical: the partition reshuffles the
         elements but every element is hashed and encrypted exactly as
         often as in the monolithic run. *)
      Alcotest.(check int)
        (Printf.sprintf "encryptions (k=%d)" k)
        plain.Session.ops.P.encryptions sharded.Session.ops.P.encryptions)
    [ 1; 4; 16 ]

let test_parity_with_state_dir () =
  let plain = Session.run cfg ~seed:"shard-spill-parity" all_ops () in
  let dir = fresh_dir () in
  let sharded =
    Session.run cfg ~seed:"shard-spill-parity"
      ~shard:(Shard.plan ~state_dir:dir ~buckets:5 ())
      all_ops ()
  in
  Alcotest.(check (list result_t)) "results" plain.Session.results sharded.Session.results

let test_shard_run_report () =
  let r =
    Shard.run cfg ~seed:"shard-report"
      (Shard.plan ~buckets:4 ())
      (Shard.Intersect { s_values; r_values })
  in
  (match r.Shard.result with
  | Shard.Values vs ->
      Alcotest.(check (list string)) "intersection" [ "banana"; "cherry"; "fig" ] vs
  | _ -> Alcotest.fail "expected Values");
  let st = r.Shard.receiver_stats in
  Alcotest.(check int) "buckets" 4 st.Shard.buckets;
  Alcotest.(check int)
    "sizes sum to |V_R|"
    (List.length (P.dedup r_values))
    (List.fold_left ( + ) 0 st.Shard.sizes);
  Alcotest.(check int) "cold run starts at 0" 0 st.Shard.start

(* Property: for random sets and bucket counts, the sharded
   intersection equals the plaintext oracle (hence also the monolithic
   protocol, which the psi suite pins to the oracle). *)
let value_gen =
  QCheck.Gen.(map (Printf.sprintf "v%d") (int_bound 60))

let sets_gen =
  QCheck.Gen.(
    triple (list_size (int_bound 25) value_gen) (list_size (int_bound 25) value_gen)
      (oneofl [ 1; 3; 4; 7; 16 ]))

let prop_sharded_intersection =
  QCheck.Test.make ~count:30 ~name:"sharded intersection = oracle"
    (QCheck.make ~print:(fun (s, r, k) ->
         Printf.sprintf "s=[%s] r=[%s] k=%d" (String.concat ";" s) (String.concat ";" r) k)
       sets_gen)
    (fun (s, r, k) ->
      let oracle =
        let sr = List.sort_uniq String.compare r in
        List.filter (fun x -> List.mem x sr) (List.sort_uniq String.compare s)
      in
      let rep =
        Shard.run cfg ~seed:"qc" (Shard.plan ~buckets:k ())
          (Shard.Intersect { s_values = s; r_values = r })
      in
      rep.Shard.result = Shard.Values oracle)

let prop_sharded_join_size =
  QCheck.Test.make ~count:15 ~name:"sharded equijoin size = oracle"
    (QCheck.make ~print:(fun (s, r, k) ->
         Printf.sprintf "s=[%s] r=[%s] k=%d" (String.concat ";" s) (String.concat ";" r) k)
       sets_gen)
    (fun (s, r, k) ->
      let oracle =
        List.fold_left
          (fun n v -> n + List.length (List.filter (String.equal v) s))
          0 r
      in
      let rep =
        Shard.run cfg ~seed:"qc-js" (Shard.plan ~buckets:k ())
          (Shard.Equijoin_size { s_values = s; r_values = r })
      in
      rep.Shard.result = Shard.Size oracle)

(* ------------------------------------------------------------------ *)
(* Spilled inputs                                                      *)
(* ------------------------------------------------------------------ *)

let test_spill_then_stream () =
  let dir = fresh_dir () in
  let plan = Shard.plan ~state_dir:dir ~buckets:6 () in
  let ns = Shard.spill_values cfg plan `Sender (List.to_seq s_values) in
  let nr = Shard.spill_values cfg plan `Receiver (List.to_seq r_values) in
  Alcotest.(check int) "sender spill count" (List.length s_values) ns;
  Alcotest.(check int) "receiver spill count" (List.length r_values) nr;
  (* Empty op-side lists: the driver streams the spilled buckets. *)
  let rep =
    Shard.run cfg ~seed:"spill" plan (Shard.Intersect { s_values = []; r_values = [] })
  in
  Alcotest.(check result_t) "result from spill"
    (Shard.Values [ "banana"; "cherry"; "fig" ])
    rep.Shard.result;
  (* And a run with explicit lists over the same plan re-spills. *)
  let rep2 = Shard.run cfg ~seed:"spill" plan (Shard.Intersect { s_values; r_values }) in
  Alcotest.(check result_t) "result re-spilled" rep.Shard.result rep2.Shard.result

let test_spill_records () =
  let dir = fresh_dir () in
  let plan = Shard.plan ~state_dir:dir ~buckets:3 () in
  let n = Shard.spill_records cfg plan `Sender (List.to_seq s_records) in
  Alcotest.(check int) "records spilled" (List.length s_records) n;
  let rep =
    Shard.run cfg ~seed:"spill-rec" plan (Shard.Equijoin { s_records = []; r_values }) in
  match rep.Shard.result with
  | Shard.Matches ms ->
      Alcotest.(check (list string)) "matched values" [ "banana"; "cherry"; "fig" ]
        (List.map fst ms);
      List.iter
        (fun (v, rows) ->
          Alcotest.(check (list string)) ("rows of " ^ v) [ "row:" ^ v ] rows)
        ms
  | _ -> Alcotest.fail "expected Matches"

(* ------------------------------------------------------------------ *)
(* Incremental sessions over shards                                    *)
(* ------------------------------------------------------------------ *)

let test_incremental_sharded_warm () =
  let dir = fresh_dir () in
  let shard = Shard.plan ~buckets:4 () in
  let run () =
    Session.run_incremental cfg ~seed:"inc-shard" ~cache_dir:dir ~shard all_ops ()
  in
  let cold = run () in
  let warm = run () in
  Alcotest.(check (list result_t)) "warm = cold" cold.Session.report.Session.results
    warm.Session.report.Session.results;
  Alcotest.(check bool) "first run cold" true cold.Session.incremental.Session.cold;
  Alcotest.(check bool) "second run warm" false warm.Session.incremental.Session.cold;
  Alcotest.(check int) "no new elements" 0 warm.Session.incremental.Session.added;
  (* O(|Δ|): the warm run answers its encryptions from the cache. *)
  Alcotest.(check bool)
    (Printf.sprintf "warm hits (%d) cover most crypto" warm.Session.incremental.Session.hits)
    true
    (warm.Session.incremental.Session.hits > 0
    && warm.Session.incremental.Session.misses = 0)

let test_incremental_per_bucket_cache () =
  let dir = fresh_dir () in
  let shard = Shard.plan ~buckets:4 ~state_dir:(Filename.concat dir "st") ~cache:true () in
  let run () =
    Session.run_incremental cfg ~seed:"inc-shard-pb" ~cache_dir:dir ~shard
      [ Session.Intersect { s_values; r_values } ]
      ()
  in
  let cold = run () in
  let warm = run () in
  Alcotest.(check (list result_t)) "warm = cold" cold.Session.report.Session.results
    warm.Session.report.Session.results

(* ------------------------------------------------------------------ *)
(* Kill mid-bucket, resume from per-bucket checkpoints                 *)
(* ------------------------------------------------------------------ *)

let resilience =
  { Session.max_attempts = 60; backoff_s = 0.; max_backoff_s = 0.; recv_timeout_s = Some 5. }

let faulty_connect plan_of ~attempt =
  let a, b = Transport.Memory.pair () in
  let (fa, fb), _stats = Fault.wrap_pair (plan_of attempt) (a, b) in
  (Channel.of_transport fa, Channel.of_transport fb)

let test_killed_mid_bucket_resumes () =
  let dir = fresh_dir () in
  let shard = Shard.plan ~state_dir:dir ~buckets:8 () in
  let plain = Session.run cfg ~seed:"shard-kill" [ List.hd all_ops ] () in
  let resumes = Obs.Metrics.counter "shard.resumes" in
  let buckets_run = Obs.Metrics.counter "shard.buckets_run" in
  let before_resumes = Obs.Metrics.counter_value resumes in
  let before_buckets = Obs.Metrics.counter_value buckets_run in
  (* Cut the connection a few frames further along on each attempt, so
     the run dies mid-op several times before completing. (Telemetry on:
     the per-bucket skip assertions read the shard counters.) *)
  let r =
    Obs.Runtime.with_enabled @@ fun () ->
    Session.run_resilient ~resilience cfg ~seed:"shard-kill" ~shard
      ~connect:
        (faulty_connect (fun attempt ->
             Fault.plan ~cut_after:(4 + (3 * attempt)) ~seed:"kill-mid-bucket" ()))
      [ List.hd all_ops ]
  in
  Alcotest.(check (list result_t)) "results" plain.Session.results
    r.Session.report.Session.results;
  Alcotest.(check bool) "reconnected at least once" true (r.Session.attempts >= 2);
  Alcotest.(check bool) "resumed from per-bucket checkpoints" true
    (Obs.Metrics.counter_value resumes > before_resumes);
  (* Per-bucket granularity: resuming attempts skip completed buckets,
     so strictly fewer buckets execute than attempts * k. *)
  let ran = Obs.Metrics.counter_value buckets_run - before_buckets in
  Alcotest.(check bool)
    (Printf.sprintf "skipped completed buckets (%d ran over %d attempts)" ran
       r.Session.attempts)
    true
    (ran < 8 * r.Session.attempts)

let test_killed_state_is_consumed () =
  (* After a completed run, no progress or result checkpoints remain:
     crash-recovery state must never act as a cross-run memo. *)
  let dir = fresh_dir () in
  let shard = Shard.plan ~state_dir:dir ~buckets:4 () in
  let _ = Session.run cfg ~seed:"consumed" ~shard [ List.hd all_ops ] () in
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".prog" || Filename.check_suffix f ".result")
  in
  Alcotest.(check (list string)) "no checkpoint leftovers" [] leftovers;
  (* Changing the peer's set between runs must change the result — the
     receiver may not replay a checkpointed bucket result. *)
  let r2 =
    Session.run cfg ~seed:"consumed" ~shard
      [ Session.Intersect { s_values = [ "banana" ]; r_values } ]
      ()
  in
  Alcotest.(check (list result_t)) "fresh result, not memo"
    [ Session.Values [ "banana" ] ]
    r2.Session.results

(* ------------------------------------------------------------------ *)
(* Leakage shape                                                       *)
(* ------------------------------------------------------------------ *)

(* What §5 + sharding permits the transcript to reveal: every message is
   either the handshake, one constant-shape resume frame per party, or
   a monolithic protocol message re-tagged into a bucket namespace
   [b<i>/...]. Beyond the monolithic shape, the only new information is
   the per-bucket element counts (bucket sizes) and the bucket count
   itself. *)
let test_leakage_shape () =
  let k = 4 in
  let op = Session.Intersect { s_values; r_values } in
  let mono = Session.run cfg ~seed:"leak" [ op ] () in
  ignore mono;
  let mono_view =
    Runner.run
      ~sender:(fun ep ->
        Psi.Handshake.respond cfg ep;
        Session.sender_op cfg
          ~rng:(Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"leak-mono-s"))
          ep op)
      ~receiver:(fun ep ->
        Psi.Handshake.initiate cfg ep;
        Session.receiver_op cfg
          ~rng:(Crypto.Drbg.to_rng (Crypto.Drbg.create ~seed:"leak-mono-r"))
          ep op)
  in
  let mono_tags =
    List.map (fun m -> m.Message.tag) (mono_view.Runner.sender_view @ mono_view.Runner.receiver_view)
    |> List.filter (fun t -> t <> "handshake/config")
    |> List.sort_uniq String.compare
  in
  let plan = Shard.plan ~buckets:k () in
  let o =
    Runner.run
      ~sender:(fun ep ->
        Psi.Handshake.respond cfg ep;
        Shard.sender_op cfg plan ~drbg:(Crypto.Drbg.create ~seed:"leak-s") ep
          (Shard.Intersect { s_values; r_values }))
      ~receiver:(fun ep ->
        Psi.Handshake.initiate cfg ep;
        Shard.receiver_op cfg plan ~drbg:(Crypto.Drbg.create ~seed:"leak-r") ep
          (Shard.Intersect { s_values; r_values }))
  in
  let check_view who view =
    let resume = List.filter (fun m -> m.Message.tag = "shard/resume") view in
    (* Exactly one resume frame per party, of constant shape: three
       fields regardless of inputs or progress. *)
    Alcotest.(check int) (who ^ ": one resume frame") 1 (List.length resume);
    List.iter
      (fun m ->
        Alcotest.(check int) (who ^ ": resume frame shape") 3 (Message.element_count m))
      resume;
    List.iter
      (fun m ->
        let tag = m.Message.tag in
        if tag <> "handshake/config" && tag <> "shard/resume" then begin
          (* Every other message lives in a bucket namespace and, with
             the prefix stripped, is a monolithic protocol tag. *)
          match String.index_opt tag '/' with
          | None -> Alcotest.failf "%s: unscoped tag %s" who tag
          | Some i ->
              let prefix = String.sub tag 0 i in
              let rest = String.sub tag (i + 1) (String.length tag - i - 1) in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s is a bucket namespace" who prefix)
                true
                (String.length prefix >= 2
                && prefix.[0] = 'b'
                &&
                match int_of_string_opt (String.sub prefix 1 (String.length prefix - 1)) with
                | Some b -> b >= 0 && b < k
                | None -> false);
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s beyond monolithic shape" who rest)
                true
                (List.mem rest mono_tags)
        end)
      view
  in
  check_view "sender" o.Runner.sender_view;
  check_view "receiver" o.Runner.receiver_view;
  (* The per-bucket counts the receiver sees sum to what the monolithic
     transcript already revealed: |V_S|. The split itself (bucket
     sizes) is the documented §5 delta. *)
  let y_s_counts =
    List.filter_map
      (fun m ->
        if Filename.check_suffix m.Message.tag "intersection/Y_S" then
          Some (Message.element_count m)
        else None)
      o.Runner.receiver_view
  in
  Alcotest.(check int) "bucket sizes sum to |V_S|"
    (List.length (P.dedup s_values))
    (List.fold_left ( + ) 0 y_s_counts)

let () =
  QCheck_base_runner.set_seed 20260809;
  Alcotest.run "shard"
    [
      ( "bucket",
        [
          Alcotest.test_case "assignment stable and in range" `Quick test_bucket_of_stable;
          Alcotest.test_case "assignment covers buckets" `Quick test_bucket_of_covers;
        ] );
      ( "parity",
        [
          Alcotest.test_case "all four protocols, k in {1,4,16}" `Quick
            test_parity_all_protocols;
          Alcotest.test_case "with spill state_dir" `Quick test_parity_with_state_dir;
          Alcotest.test_case "shard report" `Quick test_shard_run_report;
          QCheck_alcotest.to_alcotest prop_sharded_intersection;
          QCheck_alcotest.to_alcotest prop_sharded_join_size;
        ] );
      ( "spill",
        [
          Alcotest.test_case "spill then stream" `Quick test_spill_then_stream;
          Alcotest.test_case "spill records" `Quick test_spill_records;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "sharded warm run" `Quick test_incremental_sharded_warm;
          Alcotest.test_case "per-bucket caches" `Quick test_incremental_per_bucket_cache;
        ] );
      ( "resume",
        [
          Alcotest.test_case "killed mid-bucket resumes" `Quick
            test_killed_mid_bucket_resumes;
          Alcotest.test_case "checkpoints are consumed" `Quick test_killed_state_is_consumed;
        ] );
      ( "leakage",
        [ Alcotest.test_case "shape delta is bucket sizes only" `Quick test_leakage_shape ] );
    ]
