(* Tests for the executable Appendix A baseline: boolean circuits,
   gate-count formulas, Yao garbling, oblivious transfer, and the full
   circuit-based intersection protocol. *)

module Group = Crypto.Group
module Circuit = Yao.Circuit
module Garble = Yao.Garble
module Ot = Yao.Ot
module Psi_baseline = Yao.Psi_baseline

let g64 = Group.named Group.Test64

let test_rng : Bignum.Nat_rand.rng =
  let d = Crypto.Drbg.create ~seed:"test-yao" in
  Crypto.Drbg.to_rng d

let qtest name ?(count = 100) gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* ------------------------------------------------------------------ *)
(* Plain circuits                                                      *)
(* ------------------------------------------------------------------ *)

let test_equal_circuit_semantics () =
  let w = 8 in
  let c = Circuit.equal ~w in
  List.iter
    (fun (x, y) ->
      Alcotest.(check (list bool))
        (Printf.sprintf "%d = %d" x y)
        [ x = y ]
        (Circuit.eval c ~a:(Circuit.int_to_bits ~w x) ~b:(Circuit.int_to_bits ~w y)))
    [ (0, 0); (0, 1); (255, 255); (170, 85); (200, 200); (1, 128) ]

let test_equal_gate_count_is_ge () =
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "Ge at w=%d" w)
        ((2 * w) - 1)
        (Circuit.gate_count (Circuit.equal ~w)))
    [ 1; 2; 8; 16; 32 ]

let prop_compare_circuit_semantics =
  qtest "compare circuit: lt/eq correct"
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (x, y) -> Printf.sprintf "%d vs %d" x y)
    (fun (x, y) ->
      let w = 16 in
      let c = Circuit.compare_lt_eq ~w in
      Circuit.eval c ~a:(Circuit.int_to_bits ~w x) ~b:(Circuit.int_to_bits ~w y)
      = [ x < y; x = y ])

let test_compare_gate_count_is_gl () =
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "Gl at w=%d" w)
        ((5 * w) - 3)
        (Circuit.gate_count (Circuit.compare_lt_eq ~w)))
    [ 1; 2; 8; 16; 32 ]

let test_brute_force_circuit_semantics () =
  let w = 6 in
  let v_a = [ 3; 17; 42 ] and v_b = [ 17; 5; 42; 63 ] in
  let c = Circuit.brute_force_intersection ~w ~n_a:3 ~n_b:4 in
  let pack vals = Array.concat (List.map (Circuit.int_to_bits ~w) vals) in
  Alcotest.(check (list bool)) "membership bits"
    [ true; false; true; false ]
    (Circuit.eval c ~a:(pack v_a) ~b:(pack v_b))

let test_brute_force_gate_count () =
  (* n_a*n_b*(2w-1) XNOR/AND equality subcircuits + n_b*(n_a-1) ORs:
     matches (and exceeds) Appendix A's n^2 * Ge lower bound. *)
  let w = 32 and n_a = 7 and n_b = 5 in
  let c = Circuit.brute_force_intersection ~w ~n_a ~n_b in
  Alcotest.(check int) "exact count"
    ((n_a * n_b * ((2 * w) - 1)) + (n_b * (n_a - 1)))
    (Circuit.gate_count c);
  Alcotest.(check bool) "at least n_a*n_b*Ge" true
    (Circuit.gate_count c >= n_a * n_b * ((2 * w) - 1))

let test_int_to_bits () =
  Alcotest.(check bool) "5 = 101" true
    (Circuit.int_to_bits ~w:4 5 = [| true; false; true; false |]);
  Alcotest.(check bool) "overflow rejected" true
    (try
       ignore (Circuit.int_to_bits ~w:3 8);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Garbling                                                            *)
(* ------------------------------------------------------------------ *)

let eval_garbled ?(label_bytes = 8) c ~a ~b =
  let g = Garble.garble ~label_bytes ~seed:"gtest" c in
  let view = Garble.decode_view (Garble.encode_view (Garble.view g)) in
  let a_labels = Garble.input_labels_a g a in
  let pairs = Garble.label_pairs_b g in
  let b_labels = Array.mapi (fun i bit -> (fun (l0, l1) -> if bit then l1 else l0) pairs.(i)) b in
  Garble.evaluate view ~a_labels ~b_labels

let prop_garbled_equals_plain =
  qtest "garbled evaluation = plain evaluation" ~count:60
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (x, y) -> Printf.sprintf "%d vs %d" x y)
    (fun (x, y) ->
      let w = 8 in
      let c = Circuit.compare_lt_eq ~w in
      let a = Circuit.int_to_bits ~w x and b = Circuit.int_to_bits ~w y in
      eval_garbled c ~a ~b = Circuit.eval c ~a ~b)

let test_garbled_brute_force () =
  let w = 5 in
  let c = Circuit.brute_force_intersection ~w ~n_a:3 ~n_b:3 in
  let pack vals = Array.concat (List.map (Circuit.int_to_bits ~w) vals) in
  let a = pack [ 1; 9; 27 ] and b = pack [ 9; 2; 27 ] in
  Alcotest.(check (list bool)) "garbled membership"
    (Circuit.eval c ~a ~b)
    (eval_garbled c ~a ~b)

let test_table_bytes_formula () =
  (* Appendix A charges 4 * k0 bits per gate. *)
  let c = Circuit.equal ~w:16 in
  let g = Garble.garble ~label_bytes:8 ~seed:"s" c in
  Alcotest.(check int) "4 * 8 bytes per gate" (4 * 8 * Circuit.gate_count c)
    (Garble.table_bytes g)

let test_garble_label_sizes () =
  let c = Circuit.equal ~w:4 in
  let g = Garble.garble ~label_bytes:16 ~seed:"s" c in
  Array.iter
    (fun l -> Alcotest.(check int) "a-label width" 16 (String.length l))
    (Garble.input_labels_a g (Circuit.int_to_bits ~w:4 7));
  Alcotest.(check bool) "label_bytes bounds" true
    (try
       ignore (Garble.garble ~label_bytes:2 ~seed:"s" c);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Oblivious transfer                                                  *)
(* ------------------------------------------------------------------ *)

let test_ot_delivers_chosen () =
  let pairs = Array.init 16 (fun i -> (Printf.sprintf "zero-%02d" i, Printf.sprintf "one!-%02d" i)) in
  let choices = Array.init 16 (fun i -> i mod 3 = 0) in
  let o = Ot.run g64 ~pairs ~choices () in
  Array.iteri
    (fun i got ->
      let expected = if choices.(i) then snd pairs.(i) else fst pairs.(i) in
      Alcotest.(check string) (Printf.sprintf "transfer %d" i) expected got)
    o.Wire.Runner.receiver_result

let test_ot_single_and_empty_edgecases () =
  let o = Ot.run g64 ~pairs:[| ("a0", "a1") |] ~choices:[| true |] () in
  Alcotest.(check string) "single" "a1" o.Wire.Runner.receiver_result.(0);
  let o = Ot.run g64 ~pairs:[||] ~choices:[||] () in
  Alcotest.(check int) "empty" 0 (Array.length o.Wire.Runner.receiver_result)

let test_ot_mismatched_lengths_rejected () =
  Alcotest.(check bool) "length mismatch raises" true
    (try
       ignore (Ot.run g64 ~pairs:[| ("short", "longer!") |] ~choices:[| false |] ());
       false
     with Invalid_argument _ -> true)

let test_ot_transcript_hides_choice () =
  (* The receiver's only outbound message is PK_0 per transfer — a group
     element whose distribution is identical for both choices, so the
     transcript alone cannot reveal the choice bits. We check the shape:
     one key per transfer, all fixed-width elements. *)
  let pairs = Array.init 4 (fun i -> (Printf.sprintf "m0-%d" i, Printf.sprintf "m1-%d" i)) in
  let o = Ot.run g64 ~pairs ~choices:[| true; false; true; false |] () in
  match o.Wire.Runner.sender_view with
  | [ { Wire.Message.payload = Wire.Message.Elements keys; _ } ] ->
      Alcotest.(check int) "one PK per transfer" 4 (List.length keys);
      List.iter
        (fun k -> Alcotest.(check int) "fixed width" (Group.element_bytes g64) (String.length k))
        keys
  | _ -> Alcotest.fail "sender view should be exactly the key message"

(* ------------------------------------------------------------------ *)
(* Full circuit-based intersection                                     *)
(* ------------------------------------------------------------------ *)

let test_yao_psi_correct () =
  let r =
    Psi_baseline.run ~group:g64 ~w:10 ~sender_values:[ 5; 800; 77; 1023 ]
      ~receiver_values:[ 77; 3; 1023; 500 ] ()
  in
  Alcotest.(check (list int)) "intersection" [ 77; 1023 ] r.Psi_baseline.intersection

let test_yao_psi_gate_count () =
  let n_a = 4 and n_b = 3 and w = 10 in
  let r =
    Psi_baseline.run ~group:g64 ~w
      ~sender_values:(List.init n_a (fun i -> i))
      ~receiver_values:(List.init n_b (fun i -> 100 + i))
      ()
  in
  Alcotest.(check int) "gates" ((n_a * n_b * ((2 * w) - 1)) + (n_b * (n_a - 1))) r.Psi_baseline.gates;
  Alcotest.(check int) "table bytes = 4*k0*gates" (4 * 8 * r.Psi_baseline.gates)
    r.Psi_baseline.table_bytes;
  Alcotest.(check bool) "tables dominate traffic" true
    (r.Psi_baseline.total_bytes > r.Psi_baseline.table_bytes)

let test_yao_psi_matches_commutative_protocol () =
  (* Both the baseline and the paper's protocol must compute the same
     intersection. *)
  let vs = [ 11; 22; 33; 44; 55 ] and vr = [ 22; 44; 66 ] in
  let yao =
    (Psi_baseline.run ~group:g64 ~w:8 ~sender_values:vs ~receiver_values:vr ()).Psi_baseline.intersection
  in
  let cfg = Psi.Protocol.config g64 in
  let psi =
    (Psi.Intersection.run cfg
       ~sender_values:(List.map string_of_int vs)
       ~receiver_values:(List.map string_of_int vr)
       ())
      .Wire.Runner.receiver_result
      .Psi.Intersection.intersection
  in
  Alcotest.(check (list string)) "same result"
    (List.sort String.compare (List.map string_of_int yao))
    (List.sort String.compare psi)

let test_yao_psi_much_more_expensive () =
  (* The reproduction's headline: at equal n the circuit baseline ships
     orders of magnitude more bytes than the commutative protocol. *)
  let n = 8 in
  let vs = List.init n (fun i -> 2 * i) and vr = List.init n (fun i -> 3 * i) in
  let yao = Psi_baseline.run ~group:g64 ~w:16 ~sender_values:vs ~receiver_values:vr () in
  let cfg = Psi.Protocol.config g64 in
  let psi =
    Psi.Intersection.run cfg
      ~sender_values:(List.map string_of_int vs)
      ~receiver_values:(List.map string_of_int vr)
      ()
  in
  let ratio = float_of_int yao.Psi_baseline.total_bytes /. float_of_int psi.Wire.Runner.total_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "circuit %.0fx more traffic" ratio)
    true (ratio > 50.)

let test_yao_psi_rejects_bad_inputs () =
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Psi_baseline.run ~group:g64 ~sender_values:[] ~receiver_values:[ 1 ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore
         (Psi_baseline.run ~group:g64 ~w:4 ~sender_values:[ 16 ] ~receiver_values:[ 1 ] ());
       false
     with Invalid_argument _ -> true)

let prop_yao_psi_randomized =
  qtest "yao psi = plaintext intersection" ~count:15
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6) (int_range 0 255))
        (list_size (int_range 1 6) (int_range 0 255)))
    (fun (a, b) ->
      Printf.sprintf "%s / %s"
        (String.concat "," (List.map string_of_int a))
        (String.concat "," (List.map string_of_int b)))
    (fun (vs, vr) ->
      let r = Psi_baseline.run ~group:g64 ~w:8 ~sender_values:vs ~receiver_values:vr () in
      let expected =
        List.sort_uniq Int.compare (List.filter (fun v -> List.mem v vs) vr)
      in
      List.sort_uniq Int.compare r.Psi_baseline.intersection = expected)

(* ------------------------------------------------------------------ *)

let () =
  ignore test_rng;
  Alcotest.run "yao"
    [
      ( "circuits",
        [
          Alcotest.test_case "equality semantics" `Quick test_equal_circuit_semantics;
          Alcotest.test_case "equality gate count = Ge" `Quick test_equal_gate_count_is_ge;
          prop_compare_circuit_semantics;
          Alcotest.test_case "comparison gate count = Gl" `Quick test_compare_gate_count_is_gl;
          Alcotest.test_case "brute-force semantics" `Quick test_brute_force_circuit_semantics;
          Alcotest.test_case "brute-force gate count" `Quick test_brute_force_gate_count;
          Alcotest.test_case "int_to_bits" `Quick test_int_to_bits;
        ] );
      ( "garbling",
        [
          prop_garbled_equals_plain;
          Alcotest.test_case "garbled brute-force circuit" `Quick test_garbled_brute_force;
          Alcotest.test_case "table bytes = 4*k0*gates" `Quick test_table_bytes_formula;
          Alcotest.test_case "label sizes and bounds" `Quick test_garble_label_sizes;
        ] );
      ( "oblivious-transfer",
        [
          Alcotest.test_case "delivers chosen message" `Quick test_ot_delivers_chosen;
          Alcotest.test_case "edge cases" `Quick test_ot_single_and_empty_edgecases;
          Alcotest.test_case "length mismatch rejected" `Quick test_ot_mismatched_lengths_rejected;
          Alcotest.test_case "transcript shape hides choice" `Quick test_ot_transcript_hides_choice;
        ] );
      ( "circuit-psi",
        [
          Alcotest.test_case "correct intersection" `Quick test_yao_psi_correct;
          Alcotest.test_case "gate/table accounting" `Quick test_yao_psi_gate_count;
          Alcotest.test_case "agrees with commutative protocol" `Quick
            test_yao_psi_matches_commutative_protocol;
          Alcotest.test_case "orders of magnitude more traffic" `Quick
            test_yao_psi_much_more_expensive;
          Alcotest.test_case "input validation" `Quick test_yao_psi_rejects_bad_inputs;
          prop_yao_psi_randomized;
        ] );
    ]
