(* Tests for the SQL subset: lexer/parser, the local evaluator (against
   hand-computed results), and the private executor (against the local
   evaluator as oracle). *)

open Minidb
module Sql = Minidb.Sql

let g64 = Crypto.Group.named Crypto.Group.Test64
let cfg = Psi.Protocol.config g64

let people =
  Csv.parse_string
    "id:int,name:text,age:int?,city:text\n\
     1,ana,34,berlin\n\
     2,bo,,paris\n\
     3,cy,19,berlin\n\
     4,dee,34,oslo\n"

let orders =
  Csv.parse_string
    "person:int,item:text,amount:int\n\
     1,apple,5\n\
     1,beet,3\n\
     3,corn,7\n\
     9,dill,2\n"

let resolve = function
  | "people" -> people
  | "orders" -> orders
  | t -> raise Not_found |> fun _ -> failwith ("unknown table " ^ t)

(* Compare tables by cell content, order-insensitively. *)
let cells t =
  Table.rows t
  |> List.map (fun r -> List.map Value.key (Array.to_list r))
  |> List.sort (List.compare String.compare)

let check_cells name expected t = Alcotest.(check (list (list string))) name expected (cells t)

let keys l = List.map (List.map Value.key) l

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let normalize s = Format.asprintf "%a" Sql.pp_query (Sql.parse s)

let test_parse_roundtrip () =
  List.iter
    (fun (input, expected) -> Alcotest.(check string) input expected (normalize input))
    [
      ("select * from people", "SELECT * FROM people");
      ( "SELECT name, age FROM people WHERE age >= 21",
        "SELECT name, age FROM people WHERE age >= 21" );
      ( "select p.name from people p where p.city = 'berlin'",
        "SELECT p.name FROM people p WHERE p.city = 'berlin'" );
      ( "select count(*) from people group by city",
        "SELECT COUNT(*) FROM people GROUP BY city" );
      ( "select sum(amount) as total from orders",
        "SELECT SUM(amount) AS total FROM orders" );
      ( "select * from people, orders where id = person and age > 20",
        "SELECT * FROM people, orders WHERE id = person AND age > 20" );
      ( "select * from people join orders on id = person where amount <> 3",
        "SELECT * FROM people, orders WHERE id = person AND amount <> 3" );
      ("select * from people where age != 34", "SELECT * FROM people WHERE age <> 34");
      ("select * from people where name = 'o''hara'",
        "SELECT * FROM people WHERE name = 'o'hara'");
      ("select * from people where age = -5", "SELECT * FROM people WHERE age = -5");
      ("select * from people where age = 2.5", "SELECT * FROM people WHERE age = 2.5");
      ("SELECT * FROM people;", "SELECT * FROM people");
    ]

let test_parse_errors () =
  List.iter
    (fun q ->
      Alcotest.(check bool) ("rejects: " ^ q) true
        (try
           ignore (Sql.parse q);
           false
         with Sql.Parse_error _ -> true))
    [
      "";
      "select";
      "select from people";
      "select * people";
      "select * from";
      "select * from people where";
      "select * from people where age >";
      "select * from people where age = 'unterminated";
      "select * from people extra garbage";
      "select count(x) from people";
      "select * from people where age ! 3";
    ]

let fuzz_parser_never_crashes =
  (* Arbitrary input must either parse or raise Parse_error — nothing
     else (no Not_found, no array bounds, no stack overflow). *)
  let gen =
    QCheck2.Gen.(
      let atom =
        oneof
          [
            return "select"; return "from"; return "where"; return "and"; return "group";
            return "by"; return "*"; return ","; return "."; return "("; return ")";
            return "="; return "<"; return ">="; return "'txt'"; return "42"; return "-3.5";
            return "tbl"; return "col"; return "sum"; return "count"; return "join";
            return "on"; return "as"; return "null"; return "'"; return "!"; return "@";
          ]
      in
      map (String.concat " ") (list_size (int_range 0 15) atom))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser total on fuzz input" ~count:2000 ~print:(fun s -> s) gen
       (fun input ->
         match Sql.parse input with
         | _ -> true
         | exception Sql.Parse_error _ -> true))

let fuzz_parser_random_bytes =
  let gen =
    QCheck2.Gen.(
      bind (int_range 0 60) (fun n ->
          map
            (fun l -> String.init n (List.nth l))
            (list_repeat n (map Char.chr (int_range 1 127)))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser total on random bytes" ~count:2000 ~print:String.escaped
       gen (fun input ->
         match Sql.parse input with
         | _ -> true
         | exception Sql.Parse_error _ -> true))

(* ------------------------------------------------------------------ *)
(* Local evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let run_sql q = Sql.execute resolve (Sql.parse q)

let test_select_star () =
  Alcotest.(check int) "all rows" 4 (Table.cardinality (run_sql "select * from people"))

let test_projection () =
  let t = run_sql "select name, city from people where id = 3" in
  check_cells "projection" (keys [ [ Value.Text "cy"; Value.Text "berlin" ] ]) t

let test_where_operators () =
  let count q = Table.cardinality (run_sql q) in
  Alcotest.(check int) "eq" 2 (count "select * from people where age = 34");
  Alcotest.(check int) "ne" 1 (count "select * from people where age <> 34");
  Alcotest.(check int) "lt" 1 (count "select * from people where age < 34");
  Alcotest.(check int) "le" 3 (count "select * from people where age <= 34");
  Alcotest.(check int) "gt" 0 (count "select * from people where age > 34");
  Alcotest.(check int) "ge" 2 (count "select * from people where age >= 34");
  Alcotest.(check int) "and" 1
    (count "select * from people where age = 34 and city = 'berlin'");
  Alcotest.(check int) "text cmp" 2 (count "select * from people where city = 'berlin'")

let test_null_semantics () =
  (* bo's age is NULL: never matches any comparison. *)
  Alcotest.(check int) "null never equal" 0
    (Table.cardinality (run_sql "select * from people where age = null"));
  Alcotest.(check int) "null not counted" 3
    (Table.cardinality (run_sql "select * from people where age >= 0"))

let test_group_by_count () =
  let t = run_sql "select city, count(*) from people group by city" in
  check_cells "city counts"
    (keys
       [
         [ Value.Text "berlin"; Value.Int 2 ];
         [ Value.Text "oslo"; Value.Int 1 ];
         [ Value.Text "paris"; Value.Int 1 ];
       ])
    t

let test_group_by_sum () =
  let t = run_sql "select person, sum(amount) from orders group by person" in
  check_cells "sum per person"
    (keys
       [
         [ Value.Int 1; Value.Int 8 ];
         [ Value.Int 3; Value.Int 7 ];
         [ Value.Int 9; Value.Int 2 ];
       ])
    t

let test_whole_table_aggregate () =
  check_cells "count all" (keys [ [ Value.Int 4 ] ]) (run_sql "select count(*) from people");
  check_cells "sum all" (keys [ [ Value.Int 17 ] ]) (run_sql "select sum(amount) from orders");
  (* Aggregate over an empty relation still yields one row. *)
  check_cells "count none" (keys [ [ Value.Int 0 ] ])
    (run_sql "select count(*) from people where age > 99");
  check_cells "sum none is null" [ [ Value.key Value.Null ] ]
    (run_sql "select sum(amount) from orders where amount > 99")

let test_two_table_join () =
  let t = run_sql "select name, item from people, orders where id = person" in
  check_cells "join rows"
    (keys
       [
         [ Value.Text "ana"; Value.Text "apple" ];
         [ Value.Text "ana"; Value.Text "beet" ];
         [ Value.Text "cy"; Value.Text "corn" ];
       ])
    t;
  (* JOIN ... ON spelling is equivalent. *)
  let t2 = run_sql "select name, item from people join orders on id = person" in
  Alcotest.(check (list (list string))) "join on equivalent" (cells t) (cells t2)

let test_join_with_filters () =
  let t =
    run_sql
      "select name, amount from people p join orders o on p.id = o.person where o.amount > 3"
  in
  check_cells "filtered join"
    (keys [ [ Value.Text "ana"; Value.Int 5 ]; [ Value.Text "cy"; Value.Int 7 ] ])
    t

let test_join_group_by () =
  let t =
    run_sql
      "select city, count(*) from people join orders on id = person group by city"
  in
  check_cells "per-city order counts"
    (keys [ [ Value.Text "berlin"; Value.Int 3 ] ])
    t

let test_cross_product () =
  Alcotest.(check int) "4 x 4" 16
    (Table.cardinality (run_sql "select * from people, orders"))

let test_semantic_errors () =
  List.iter
    (fun q ->
      Alcotest.(check bool) ("rejects: " ^ q) true
        (try
           ignore (run_sql q);
           false
         with Invalid_argument _ -> true))
    [
      "select nope from people";
      "select name from people group by city";
      "select sum(name) from people";
      "select *, name from people";
      "select p.id from people p, orders p";
    ]

let test_ambiguous_column () =
  (* Both tables given the same column name via aliasing is fine, but a
     truly shared name must be qualified. *)
  let dup =
    Table.create (Schema.make [ Schema.col "id" Value.TInt ]) [ [| Value.Int 1 |] ]
  in
  let resolve = function "a" -> dup | "b" -> dup | t -> failwith t in
  Alcotest.(check bool) "ambiguous rejected" true
    (try
       ignore (Sql.execute resolve (Sql.parse "select id from a, b"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "qualified ok" 1
    (Table.cardinality (Sql.execute resolve (Sql.parse "select a.id from a, b where a.id = b.id")))

(* ------------------------------------------------------------------ *)
(* Private execution                                                   *)
(* ------------------------------------------------------------------ *)

(* The receiver-side table should have unique keys for the set-semantics
   shapes; [people] has unique ids. *)
let run_private sql =
  match
    Psi.Sql_private.run cfg ~sql ~sender:("orders", orders) ~receiver:("people", people) ()
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "unexpected rejection: %s" e

let check_against_oracle name sql =
  let private_t = (run_private sql).Psi.Sql_private.table in
  let local_t = run_sql sql in
  Alcotest.(check (list (list string))) name (cells local_t) (cells private_t)

let test_private_intersection () =
  (* Set semantics: the intersection protocol returns each joining value
     once, unlike the SQL multiset join (ana has two orders). *)
  let o = run_private "select id from people, orders where id = person" in
  check_cells "matching ids, distinct"
    (keys [ [ Value.Int 1 ]; [ Value.Int 3 ] ])
    o.Psi.Sql_private.table

let test_private_count () =
  check_against_oracle "count(*) = equijoin size"
    "select count(*) from people, orders where id = person"

let test_private_sum () =
  check_against_oracle "sum over join"
    "select sum(amount) from people, orders where id = person"

let test_private_equijoin_payload () =
  check_against_oracle "payload columns"
    "select item, amount from people, orders where id = person";
  check_against_oracle "payload with join key"
    "select id, item, amount from people, orders where id = person"

let test_private_group_by () =
  check_against_oracle "contingency table"
    "select city, item, count(*) from people, orders where id = person group by city, item"

let test_private_with_local_filters () =
  check_against_oracle "sender-side filter"
    "select count(*) from people, orders where id = person and amount > 3";
  check_against_oracle "receiver-side filter"
    "select count(*) from people, orders where id = person and city = 'berlin'";
  check_against_oracle "filters on both sides"
    "select sum(amount) from people, orders where id = person and city = 'berlin' and amount < 6"

(* Composite (multi-column) join keys. *)
let ship_s =
  Csv.parse_string
    "sku:text,site:text,qty:int\n\
     A,eu,5\n\
     A,us,9\n\
     B,eu,2\n\
     C,us,4\n"

let ship_r =
  Csv.parse_string
    "sku:text,site:text,want:int\n\
     A,eu,1\n\
     A,apac,1\n\
     B,eu,1\n\
     C,eu,1\n"

let run_private_ship sql =
  match Psi.Sql_private.run cfg ~sql ~sender:("stock", ship_s) ~receiver:("orders", ship_r) () with
  | Ok o -> o
  | Error e -> Alcotest.failf "unexpected rejection: %s" e

let test_private_composite_intersection () =
  let o =
    run_private_ship
      "select orders.sku, orders.site from orders, stock \
       where orders.sku = stock.sku and orders.site = stock.site"
  in
  (* Pairs in both: (A,eu) and (B,eu). *)
  check_cells "composite intersection"
    (keys
       [ [ Value.Text "A"; Value.Text "eu" ]; [ Value.Text "B"; Value.Text "eu" ] ])
    o.Psi.Sql_private.table

let test_private_composite_count_and_sum () =
  let o =
    run_private_ship
      "select count(*) from orders, stock \
       where orders.sku = stock.sku and orders.site = stock.site"
  in
  check_cells "composite count" (keys [ [ Value.Int 2 ] ]) o.Psi.Sql_private.table;
  let o =
    run_private_ship
      "select sum(qty) from orders, stock \
       where orders.sku = stock.sku and orders.site = stock.site"
  in
  (* qty of (A,eu)=5 and (B,eu)=2. *)
  check_cells "composite sum" (keys [ [ Value.Int 7 ] ]) o.Psi.Sql_private.table

let test_private_composite_join_payload () =
  let o =
    run_private_ship
      "select orders.sku, orders.site, qty from orders, stock \
       where orders.sku = stock.sku and orders.site = stock.site"
  in
  check_cells "composite join with payload"
    (keys
       [
         [ Value.Text "A"; Value.Text "eu"; Value.Int 5 ];
         [ Value.Text "B"; Value.Text "eu"; Value.Int 2 ];
       ])
    o.Psi.Sql_private.table

let test_private_join_on_syntax_and_aliases () =
  (* JOIN ... ON with table aliases routes through the same analysis. *)
  let o =
    run_private
      "select count(*) from people p join orders o on p.id = o.person where o.amount >= 3"
  in
  check_cells "aliased join-on" (keys [ [ Value.Int 3 ] ]) o.Psi.Sql_private.table

let test_private_explain () =
  let explain sql =
    match Psi.Sql_private.explain ~sender:orders ~receiver:people ~sql ~sender_name:"orders" ~receiver_name:"people" () with
    | Ok s -> s
    | Error e -> "ERROR: " ^ e
  in
  Alcotest.(check string) "intersection" "intersection (§3.3)"
    (explain "select p.id from people p, orders o where p.id = o.person");
  Alcotest.(check string) "size" "equijoin size (§5.2)"
    (explain "select count(*) from people p, orders o where p.id = o.person");
  Alcotest.(check string) "sum" "private equijoin SUM (§7 extension)"
    (explain "select sum(o.amount) from people p, orders o where p.id = o.person");
  Alcotest.(check string) "join" "equijoin (§4.3)"
    (explain "select o.item from people p, orders o where p.id = o.person");
  Alcotest.(check string) "group by" "private GROUP BY (Figure 2 generalized)"
    (explain
       "select p.city, o.item, count(*) from people p, orders o where p.id = o.person \
        group by p.city, o.item")

let test_private_rejections () =
  let run sql =
    Psi.Sql_private.run cfg ~sql ~sender:("orders", orders) ~receiver:("people", people) ()
  in
  List.iter
    (fun (sql, why) ->
      match run sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should have rejected (%s): %s" why sql)
    [
      ("select * from people", "no join");
      ("select name from people, orders where id = person", "receiver payload column");
      ("select nonsense syntax", "parse error");
      ("select count(*) from people, orders where id = person and name < item",
        "cross-table inequality");
      ("select id from people, orders where id = person and name = item",
        "intersection must select the full composite key");
      ("select city, item, count(*) from people, orders \
        where id = person and name = item group by city, item",
        "composite key with group by");
      ("select sum(age) from people, orders where id = person", "sum over receiver column");
      ("select name, count(*) from people, orders where id = person group by name",
        "one-sided group by");
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "roundtrip via printer" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          fuzz_parser_never_crashes;
          fuzz_parser_random_bytes;
        ] );
      ( "local-eval",
        [
          Alcotest.test_case "select *" `Quick test_select_star;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "where operators" `Quick test_where_operators;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "group by count" `Quick test_group_by_count;
          Alcotest.test_case "group by sum" `Quick test_group_by_sum;
          Alcotest.test_case "whole-table aggregates" `Quick test_whole_table_aggregate;
          Alcotest.test_case "two-table join" `Quick test_two_table_join;
          Alcotest.test_case "join with filters" `Quick test_join_with_filters;
          Alcotest.test_case "join + group by" `Quick test_join_group_by;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
          Alcotest.test_case "ambiguity" `Quick test_ambiguous_column;
        ] );
      ( "private-execution",
        [
          Alcotest.test_case "intersection" `Quick test_private_intersection;
          Alcotest.test_case "count" `Quick test_private_count;
          Alcotest.test_case "sum" `Quick test_private_sum;
          Alcotest.test_case "equijoin payload" `Quick test_private_equijoin_payload;
          Alcotest.test_case "group by" `Quick test_private_group_by;
          Alcotest.test_case "local filters" `Quick test_private_with_local_filters;
          Alcotest.test_case "composite-key intersection" `Quick test_private_composite_intersection;
          Alcotest.test_case "composite-key count/sum" `Quick test_private_composite_count_and_sum;
          Alcotest.test_case "composite-key join payload" `Quick test_private_composite_join_payload;
          Alcotest.test_case "JOIN ON with aliases" `Quick test_private_join_on_syntax_and_aliases;
          Alcotest.test_case "explain" `Quick test_private_explain;
          Alcotest.test_case "rejections" `Quick test_private_rejections;
        ] );
    ]
