(* Tests for the minidb relational substrate: values, schemas, tables,
   relational operators (the plaintext oracle for the protocols), CSV. *)

open Minidb

let value = Alcotest.testable Value.pp Value.equal
let table = Alcotest.testable Table.pp Table.equal

(* A small pair of test tables reused across relop tests. *)
let people =
  Table.create
    (Schema.make
       [ Schema.col "id" Value.TInt; Schema.col "name" Value.TText; Schema.col ~nullable:true "age" Value.TInt ])
    [
      [| Value.Int 1; Value.Text "ana"; Value.Int 34 |];
      [| Value.Int 2; Value.Text "bo"; Value.Null |];
      [| Value.Int 3; Value.Text "cy"; Value.Int 19 |];
      [| Value.Int 4; Value.Text "dee"; Value.Int 34 |];
    ]

let orders =
  Table.create
    (Schema.make [ Schema.col "person" Value.TInt; Schema.col "item" Value.TText ])
    [
      [| Value.Int 1; Value.Text "apple" |];
      [| Value.Int 1; Value.Text "beet" |];
      [| Value.Int 3; Value.Text "corn" |];
      [| Value.Int 9; Value.Text "dill" |];
    ]

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (Value.Int (-5)) < 0);
  Alcotest.(check bool) "ints" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "text" true (Value.compare (Value.Text "a") (Value.Text "b") < 0);
  Alcotest.(check bool) "cross-type by rank" true
    (Value.compare (Value.Bool true) (Value.Int 0) < 0)

let test_value_parse () =
  Alcotest.check value "int" (Value.Int 42) (Value.of_string Value.TInt "42");
  Alcotest.check value "negative" (Value.Int (-7)) (Value.of_string Value.TInt "-7");
  Alcotest.check value "bool" (Value.Bool true) (Value.of_string Value.TBool "TRUE");
  Alcotest.check value "float" (Value.Float 2.5) (Value.of_string Value.TFloat "2.5");
  Alcotest.check value "null" Value.Null (Value.of_string Value.TInt "");
  Alcotest.check value "text" (Value.Text "x y") (Value.of_string Value.TText "x y");
  Alcotest.(check bool) "bad int raises" true
    (try
       ignore (Value.of_string Value.TInt "4x");
       false
     with Invalid_argument _ -> true)

let test_value_key_injective () =
  (* Distinct values of distinct types never share a key. *)
  let vs =
    [
      Value.Null; Value.Bool true; Value.Bool false; Value.Int 1; Value.Int 0;
      Value.Float 1.; Value.Text "1"; Value.Text "I1"; Value.Text "";
    ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool)
              (Printf.sprintf "keys differ: %d %d" i j)
              false
              (String.equal (Value.key a) (Value.key b)))
        vs)
    vs

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "ty roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = ty))
    [ Value.TBool; Value.TInt; Value.TFloat; Value.TText ]

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_validation () =
  Alcotest.(check bool) "dup name raises" true
    (try
       ignore (Schema.make [ Schema.col "a" Value.TInt; Schema.col "a" Value.TText ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty name raises" true
    (try
       ignore (Schema.make [ Schema.col "" Value.TInt ]);
       false
     with Invalid_argument _ -> true)

let test_schema_lookup () =
  let s = Table.schema people in
  Alcotest.(check int) "id" 0 (Schema.index_of s "id");
  Alcotest.(check int) "age" 2 (Schema.index_of s "age");
  Alcotest.(check bool) "mem" true (Schema.mem s "name");
  Alcotest.(check bool) "not mem" false (Schema.mem s "salary");
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Schema.index_of s "salary");
       false
     with Not_found -> true)

let test_schema_prefix_concat () =
  let s = Schema.make [ Schema.col "x" Value.TInt ] in
  let t = Schema.make [ Schema.col "x" Value.TText ] in
  let joined = Schema.concat (Schema.rename_with_prefix s "l") (Schema.rename_with_prefix t "r") in
  Alcotest.(check int) "l.x" 0 (Schema.index_of joined "l.x");
  Alcotest.(check int) "r.x" 1 (Schema.index_of joined "r.x");
  Alcotest.(check bool) "collision raises" true
    (try
       ignore (Schema.concat s s);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_typecheck () =
  let s = Schema.make [ Schema.col "id" Value.TInt ] in
  Alcotest.(check bool) "wrong type raises" true
    (try
       ignore (Table.create s [ [| Value.Text "nope" |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong arity raises" true
    (try
       ignore (Table.create s [ [| Value.Int 1; Value.Int 2 |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "null in non-nullable raises" true
    (try
       ignore (Table.create s [ [| Value.Null |] ]);
       false
     with Invalid_argument _ -> true)

let test_table_distinct_values () =
  Alcotest.(check (list value)) "ages (null excluded, sorted, distinct)"
    [ Value.Int 19; Value.Int 34 ]
    (Table.distinct_values people "age")

let test_table_duplicate_distribution () =
  Alcotest.(check (list (pair value int))) "order counts"
    [ (Value.Int 1, 2); (Value.Int 3, 1); (Value.Int 9, 1) ]
    (Table.duplicate_distribution orders "person")

let test_table_ext () =
  Alcotest.(check int) "ext(1) has 2 rows" 2 (List.length (Table.ext orders "person" (Value.Int 1)));
  Alcotest.(check int) "ext(9) has 1 row" 1 (List.length (Table.ext orders "person" (Value.Int 9)));
  Alcotest.(check int) "ext(5) empty" 0 (List.length (Table.ext orders "person" (Value.Int 5)))

let test_table_append () =
  let t = Table.append (Table.empty (Table.schema orders)) (Table.rows orders) in
  Alcotest.check table "append from empty" orders t

(* ------------------------------------------------------------------ *)
(* Relop                                                               *)
(* ------------------------------------------------------------------ *)

let test_select () =
  let adults = Relop.select (fun t r -> Value.compare (Table.get t r "age") (Value.Int 30) > 0) people in
  Alcotest.(check int) "two adults over 30" 2 (Table.cardinality adults)

let test_select_eq () =
  Alcotest.(check int) "bo by name" 1 (Table.cardinality (Relop.select_eq people "name" (Value.Text "bo")))

let test_project () =
  let p = Relop.project people [ "name"; "id" ] in
  Alcotest.(check int) "arity" 2 (Schema.arity (Table.schema p));
  Alcotest.(check int) "reordered: name first" 0 (Schema.index_of (Table.schema p) "name");
  Alcotest.check value "first row name" (Value.Text "ana")
    (Table.get p (List.hd (Table.rows p)) "name")

let test_distinct () =
  let dup = Table.append orders (Table.rows orders) in
  Alcotest.(check int) "8 rows with dups" 8 (Table.cardinality dup);
  Alcotest.(check int) "4 distinct" 4 (Table.cardinality (Relop.distinct dup))

let test_equijoin () =
  let j = Relop.equijoin people orders ~on:("id", "person") in
  (* ids 1 (x2 orders) and 3 join; 2, 4 and order-person 9 do not. *)
  Alcotest.(check int) "3 joined rows" 3 (Table.cardinality j);
  let names =
    List.sort String.compare (List.map Value.to_string (Table.column_values j "l.name"))
  in
  Alcotest.(check (list string)) "join partners" [ "ana"; "ana"; "cy" ] names

let test_equijoin_null_never_joins () =
  let l =
    Table.create
      (Schema.make [ Schema.col ~nullable:true "k" Value.TInt ])
      [ [| Value.Null |]; [| Value.Int 1 |] ]
  in
  let r = l in
  Alcotest.(check int) "only the non-null pair joins" 1
    (Table.cardinality (Relop.equijoin l r ~on:("k", "k")))

let test_equijoin_size_matches_materialized () =
  Alcotest.(check int) "size = |join|"
    (Table.cardinality (Relop.equijoin people orders ~on:("id", "person")))
    (Relop.equijoin_size people orders ~on:("id", "person"))

let test_intersect_values () =
  Alcotest.(check (list value)) "V_l ∩ V_r"
    [ Value.Int 1; Value.Int 3 ]
    (Relop.intersect_values people orders ~on:("id", "person"))

let test_group_count () =
  let g = Relop.group_count orders [ "person" ] in
  Alcotest.(check (list (pair (list value) int))) "counts"
    [ ([ Value.Int 1 ], 2); ([ Value.Int 3 ], 1); ([ Value.Int 9 ], 1) ]
    g

let test_group_count_multi_key () =
  let g = Relop.group_count people [ "age" ] in
  Alcotest.(check (list (pair (list value) int))) "group by nullable age"
    [ ([ Value.Null ], 1); ([ Value.Int 19 ], 1); ([ Value.Int 34 ], 2) ]
    g

let test_order_by () =
  let o = Relop.order_by people [ "age"; "name" ] in
  let names = List.map (fun r -> Value.to_string (Table.get o r "name")) (Table.rows o) in
  Alcotest.(check (list string)) "null-first age order" [ "bo"; "cy"; "ana"; "dee" ] names

(* ------------------------------------------------------------------ *)
(* Csv                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  Alcotest.check table "roundtrip people" people (Csv.parse_string (Csv.to_string people));
  Alcotest.check table "roundtrip orders" orders (Csv.parse_string (Csv.to_string orders))

let test_csv_quoting () =
  let t =
    Table.create
      (Schema.make [ Schema.col "s" Value.TText ])
      [
        [| Value.Text "with,comma" |];
        [| Value.Text "with\"quote" |];
        [| Value.Text "with\nnewline" |];
      ]
  in
  Alcotest.check table "quoted roundtrip" t (Csv.parse_string (Csv.to_string t))

let test_csv_parse_known () =
  let t = Csv.parse_string "id:int,name:text\n1,ana\n2,\"bo,zo\"\n" in
  Alcotest.(check int) "2 rows" 2 (Table.cardinality t);
  Alcotest.check value "quoted field" (Value.Text "bo,zo")
    (Table.get t (List.nth (Table.rows t) 1) "name")

let test_csv_nullable () =
  let t = Csv.parse_string "id:int,age:int?\n1,\n2,5\n" in
  Alcotest.check value "null age" Value.Null (Table.get t (List.hd (Table.rows t)) "age")

let test_csv_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects: " ^ String.escaped s) true
        (try
           ignore (Csv.parse_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "noheadertype\n1\n"; "a:int\n1,2\n"; "a:wat\n1\n" ]

let test_csv_file_io () =
  let path = Filename.temp_file "psi_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save path people;
      Alcotest.check table "load . save = id" people (Csv.load path))

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

let with_db f =
  let path = Filename.temp_file "psi_storage" ".mdb" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_storage_roundtrip () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "people" (Table.schema people);
      Storage.insert db "people" (Table.rows people);
      Storage.create_table db "orders" (Table.schema orders);
      Storage.insert db "orders" (Table.rows orders);
      Storage.close db;
      let db2 = Storage.open_db path in
      Alcotest.(check (list string)) "catalog" [ "orders"; "people" ] (Storage.tables db2);
      Alcotest.check table "people survive" people (Storage.table db2 "people");
      Alcotest.check table "orders survive" orders (Storage.table db2 "orders");
      Storage.close db2)

let test_storage_incremental_inserts () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      List.iter (fun r -> Storage.insert db "t" [ r ]) (Table.rows orders);
      Storage.close db;
      let db2 = Storage.open_db path in
      Alcotest.check table "one-at-a-time inserts" orders (Storage.table db2 "t");
      Storage.close db2)

let test_storage_drop () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      Storage.drop_table db "t";
      Storage.close db;
      let db2 = Storage.open_db path in
      Alcotest.(check (list string)) "dropped" [] (Storage.tables db2);
      Alcotest.(check bool) "table raises" true
        (try
           ignore (Storage.table db2 "t");
           false
         with Not_found -> true);
      Storage.close db2)

let test_storage_validation () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      Alcotest.(check bool) "duplicate create" true
        (try
           Storage.create_table db "t" (Table.schema orders);
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "insert into missing" true
        (try
           Storage.insert db "nope" [];
           false
         with Not_found -> true);
      Alcotest.(check bool) "type mismatch rejected" true
        (try
           Storage.insert db "t" [ [| Value.Text "x" |] ];
           false
         with Invalid_argument _ -> true);
      Storage.close db;
      Alcotest.(check bool) "use after close" true
        (try
           Storage.insert db "t" [];
           false
         with Invalid_argument _ -> true))

let test_storage_torn_tail_recovery () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      Storage.insert db "t" (Table.rows orders);
      Storage.close db;
      let good_len = (Unix.stat path).Unix.st_size in
      (* Simulate a crash mid-append: a truncated record at the tail. *)
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\xffgarbage-that-is-too-short";
      close_out oc;
      let db2 = Storage.open_db path in
      Alcotest.check table "prefix recovered" orders (Storage.table db2 "t");
      (* The torn tail was truncated away; new appends replay cleanly. *)
      Storage.insert db2 "t" [ [| Value.Int 5; Value.Text "extra" |] ];
      Storage.close db2;
      let db3 = Storage.open_db path in
      Alcotest.(check int) "append after recovery" 5
        (Table.cardinality (Storage.table db3 "t"));
      Storage.close db3;
      ignore good_len)

let test_storage_corrupt_checksum () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      Storage.insert db "t" (Table.rows orders);
      Storage.close db;
      (* Flip a byte inside the last record's body. *)
      let ic = open_in_bin path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let flipped =
        String.mapi
          (fun i c -> if i = String.length content - 6 then Char.chr (Char.code c lxor 0xff) else c)
          content
      in
      let oc = open_out_bin path in
      output_string oc flipped;
      close_out oc;
      let db2 = Storage.open_db path in
      (* The corrupted insert record is dropped; the create survives. *)
      Alcotest.(check (list string)) "table exists" [ "t" ] (Storage.tables db2);
      Alcotest.(check int) "corrupt insert dropped" 0
        (Table.cardinality (Storage.table db2 "t"));
      Storage.close db2)

let test_storage_checkpoint () =
  with_db (fun path ->
      let db = Storage.open_db path in
      Storage.create_table db "t" (Table.schema orders);
      (* Many tiny inserts bloat the log... *)
      for _ = 1 to 20 do
        Storage.insert db "t" (Table.rows orders)
      done;
      Storage.drop_table db "t";
      Storage.create_table db "t" (Table.schema orders);
      Storage.insert db "t" (Table.rows orders);
      let before = (Unix.stat path).Unix.st_size in
      Storage.checkpoint db;
      let after = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool)
        (Printf.sprintf "compacted %d -> %d" before after)
        true (after < before);
      (* State unchanged, and the file still appends/replays fine. *)
      Alcotest.check table "state preserved" orders (Storage.table db "t");
      Storage.insert db "t" [ [| Value.Int 7; Value.Text "post" |] ];
      Storage.close db;
      let db2 = Storage.open_db path in
      Alcotest.(check int) "replay after checkpoint" 5
        (Table.cardinality (Storage.table db2 "t"));
      Storage.close db2)

let test_storage_rejects_foreign_file () =
  with_db (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a database";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Storage.open_db path);
           false
         with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "minidb"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "parsing" `Quick test_value_parse;
          Alcotest.test_case "key injectivity" `Quick test_value_key_injective;
          Alcotest.test_case "type name roundtrip" `Quick test_ty_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "prefix/concat" `Quick test_schema_prefix_concat;
        ] );
      ( "table",
        [
          Alcotest.test_case "typechecking" `Quick test_table_typecheck;
          Alcotest.test_case "distinct_values" `Quick test_table_distinct_values;
          Alcotest.test_case "duplicate_distribution" `Quick test_table_duplicate_distribution;
          Alcotest.test_case "ext" `Quick test_table_ext;
          Alcotest.test_case "append" `Quick test_table_append;
        ] );
      ( "relop",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "select_eq" `Quick test_select_eq;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "equijoin" `Quick test_equijoin;
          Alcotest.test_case "null never joins" `Quick test_equijoin_null_never_joins;
          Alcotest.test_case "equijoin_size" `Quick test_equijoin_size_matches_materialized;
          Alcotest.test_case "intersect_values" `Quick test_intersect_values;
          Alcotest.test_case "group_count" `Quick test_group_count;
          Alcotest.test_case "group_count nullable key" `Quick test_group_count_multi_key;
          Alcotest.test_case "order_by" `Quick test_order_by;
        ] );
      ( "storage",
        [
          Alcotest.test_case "create/insert/reopen roundtrip" `Quick test_storage_roundtrip;
          Alcotest.test_case "incremental inserts" `Quick test_storage_incremental_inserts;
          Alcotest.test_case "drop table" `Quick test_storage_drop;
          Alcotest.test_case "validation" `Quick test_storage_validation;
          Alcotest.test_case "torn-tail crash recovery" `Quick test_storage_torn_tail_recovery;
          Alcotest.test_case "corrupt checksum dropped" `Quick test_storage_corrupt_checksum;
          Alcotest.test_case "checkpoint compacts" `Quick test_storage_checkpoint;
          Alcotest.test_case "foreign file rejected" `Quick test_storage_rejects_foreign_file;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "parse known" `Quick test_csv_parse_known;
          Alcotest.test_case "nullable" `Quick test_csv_nullable;
          Alcotest.test_case "malformed rejected" `Quick test_csv_errors;
          Alcotest.test_case "file io" `Quick test_csv_file_io;
        ] );
    ]
