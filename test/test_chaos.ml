(* Chaos suite: the four protocols run to completion under seeded fault
   schedules (drops, delays, truncations, duplications, disconnects),
   with receiver outputs identical to the fault-free run and no message
   shapes beyond the fault-free leakage profile. Also covers the
   killed-then-resumed session and the socket-backed session. *)

module Session = Psi.Session
module Transport = Wire.Transport
module Fault = Wire.Fault
module Channel = Wire.Channel
module Message = Wire.Message

let cfg = Psi.Protocol.config ~domain:"chaos" (Crypto.Group.named Crypto.Group.Test64)

let s_values = [ "apple"; "banana"; "cherry"; "damson"; "elder"; "fig" ]
let r_values = [ "banana"; "cherry"; "grape"; "fig"; "quince" ]
let s_records = List.map (fun v -> (v, "row:" ^ v)) s_values
let s_multiset = "banana" :: "fig" :: "fig" :: s_values
let r_multiset = "fig" :: r_values

let all_ops =
  [
    Session.Intersect { s_values; r_values };
    Session.Intersect_size { s_values; r_values };
    Session.Equijoin { s_records; r_values };
    Session.Equijoin_size { s_values = s_multiset; r_values = r_multiset };
  ]

let result_equal a b =
  match (a, b) with
  | Session.Values x, Session.Values y -> List.equal String.equal x y
  | Session.Size x, Session.Size y -> Int.equal x y
  | Session.Matches x, Session.Matches y ->
      List.equal
        (fun (v1, r1) (v2, r2) ->
          String.equal v1 v2 && List.equal String.equal r1 r2)
        x y
  | (Session.Values _ | Session.Size _ | Session.Matches _), _ -> false

let result_pp fmt = function
  | Session.Values vs -> Format.fprintf fmt "Values [%s]" (String.concat "; " vs)
  | Session.Size n -> Format.fprintf fmt "Size %d" n
  | Session.Matches ms -> Format.fprintf fmt "Matches (%d values)" (List.length ms)

let result_t = Alcotest.testable result_pp result_equal

(* Connectors ------------------------------------------------------- *)

let memory_connect ~attempt:_ = Channel.create ()

let socket_connect ~attempt:_ =
  let a, b = Transport.Socket.pair () in
  (Channel.of_transport a, Channel.of_transport b)

let faulty_connect plan_of ~attempt =
  let a, b = Transport.Memory.pair () in
  let (fa, fb), _stats = Fault.wrap_pair (plan_of attempt) (a, b) in
  (Channel.of_transport fa, Channel.of_transport fb)

let clean_resilience =
  { Session.max_attempts = 1; backoff_s = 0.; max_backoff_s = 0.; recv_timeout_s = Some 10. }

let chaos_resilience =
  {
    Session.max_attempts = 80;
    backoff_s = 0.001;
    max_backoff_s = 0.01;
    recv_timeout_s = Some 0.08;
  }

(* Leakage profile: the (tag, element-count) shapes a transcript may
   contain. A faulty run may replay shapes from the fault-free profile
   (that is what resume does) but must never produce a new one. *)
let shapes views =
  List.concat_map (List.map (fun m -> (m.Message.tag, Message.element_count m))) views

let shape_mem (t, n) profile =
  List.exists (fun (t', n') -> String.equal t t' && Int.equal n n') profile

(* Fault-free runs -------------------------------------------------- *)

let baseline = lazy (Session.run cfg ~seed:"chaos-baseline" all_ops ())

let baseline_profile =
  lazy
    (let r =
       Session.run_resilient ~resilience:clean_resilience cfg ~seed:"chaos-baseline"
         ~connect:memory_connect all_ops
     in
     shapes r.Session.receiver_views)

let check_results what expected (actual : Session.report) =
  Alcotest.(check (list result_t)) what expected.Session.results actual.Session.results

(* Tests ------------------------------------------------------------ *)

let test_resilient_matches_plain () =
  let plain = Lazy.force baseline in
  let r =
    Session.run_resilient ~resilience:clean_resilience cfg ~seed:"chaos-baseline"
      ~connect:memory_connect all_ops
  in
  Alcotest.(check int) "single attempt" 1 r.Session.attempts;
  Alcotest.(check int) "no replays" 0 r.Session.replays;
  check_results "results" plain r.Session.report

let test_socket_session () =
  let plain = Lazy.force baseline in
  let r =
    Session.run_resilient ~resilience:clean_resilience cfg ~seed:"chaos-baseline"
      ~connect:socket_connect all_ops
  in
  check_results "results over sockets" plain r.Session.report;
  (* Payload byte accounting is transport-independent: the resilient
     memory run moves exactly the same bytes (both add one resume
     exchange on top of Session.run). *)
  let mem =
    Session.run_resilient ~resilience:clean_resilience cfg ~seed:"chaos-baseline"
      ~connect:memory_connect all_ops
  in
  Alcotest.(check int) "byte parity with memory transport"
    mem.Session.report.Session.total_bytes r.Session.report.Session.total_bytes

let chaos_plan seed attempt =
  Fault.plan ~drop:0.05 ~truncate:0.03 ~duplicate:0.04 ~disconnect:0.02 ~delay:0.10
    ~max_delay_s:0.002
    ~seed:(Printf.sprintf "chaos-%s/attempt-%d" seed attempt)
    ()

let run_chaos ?(ops = all_ops) seed =
  Session.run_resilient ~resilience:chaos_resilience cfg ~seed:("session-" ^ seed)
    ~connect:(faulty_connect (chaos_plan seed)) ops

let test_chaos_all_protocols seed () =
  let plain = Lazy.force baseline in
  let r = run_chaos seed in
  check_results ("results under faults, seed " ^ seed) plain r.Session.report;
  (* Every message the receiver ever saw — across every attempt — has a
     shape from the fault-free profile: faults and replays leak no new
     message kinds. *)
  let profile = Lazy.force baseline_profile in
  List.iter
    (fun (tag, n) ->
      if not (shape_mem (tag, n) profile) then
        Alcotest.failf "unexpected message shape under faults: (%s, %d)" tag n)
    (shapes r.Session.receiver_views)

let test_chaos_each_protocol seed () =
  let ops_of op = [ op ] in
  List.iteri
    (fun i op ->
      let name = Printf.sprintf "op %d seed %s" i seed in
      let plain = Session.run cfg ~seed:("single-" ^ seed) (ops_of op) () in
      let r =
        Session.run_resilient ~resilience:chaos_resilience cfg
          ~seed:("single-" ^ seed)
          ~connect:(faulty_connect (fun attempt -> chaos_plan (Printf.sprintf "%s-op%d" seed i) attempt))
          (ops_of op)
      in
      check_results name plain r.Session.report)
    all_ops

let test_chaos_streaming_parallel () =
  (* The streaming compute/I-O pipeline with the batch engine enabled:
     faults now land on partially-streamed frames while later chunks
     are still being encrypted. Results and leakage shapes must match
     the sequential fault-free baseline at every pool size. *)
  let plain = Lazy.force baseline in
  let profile = Lazy.force baseline_profile in
  List.iter
    (fun workers ->
      let cfg =
        Psi.Protocol.config ~workers ~domain:"chaos"
          (Crypto.Group.named Crypto.Group.Test64)
      in
      let r =
        Session.run_resilient ~resilience:chaos_resilience cfg
          ~seed:"session-stream"
          ~connect:(faulty_connect (chaos_plan (Printf.sprintf "stream-w%d" workers)))
          all_ops
      in
      check_results
        (Printf.sprintf "streamed under faults, workers=%d" workers)
        plain r.Session.report;
      List.iter
        (fun (tag, n) ->
          if not (shape_mem (tag, n) profile) then
            Alcotest.failf
              "unexpected shape under faults at workers=%d: (%s, %d)" workers tag
              n)
        (shapes r.Session.receiver_views))
    [ 2; 4 ]

let test_killed_then_resumed () =
  let plain = Lazy.force baseline in
  (* First connection is cut after a handful of frames — mid-session,
     past the handshake; later connections are clean. *)
  let connect ~attempt =
    if attempt = 1 then
      faulty_connect (fun _ -> Fault.plan ~cut_after:5 ~seed:"kill" ()) ~attempt
    else memory_connect ~attempt
  in
  let r =
    Session.run_resilient
      ~resilience:{ chaos_resilience with Session.max_attempts = 4 }
      cfg ~seed:"chaos-baseline" ~connect all_ops
  in
  Alcotest.(check bool) "resumed at least once" true (r.Session.attempts >= 2);
  check_results "killed-then-resumed results" plain r.Session.report

let test_replay_counted () =
  (* Cut the connection late on every odd attempt: some operations land
     on one side but not the other, forcing replays; the final results
     still match. *)
  let plain = Lazy.force baseline in
  let connect ~attempt =
    if attempt mod 2 = 1 then
      faulty_connect (fun _ -> Fault.plan ~cut_after:7 ~seed:"replay" ()) ~attempt
    else memory_connect ~attempt
  in
  let r =
    Session.run_resilient
      ~resilience:{ chaos_resilience with Session.max_attempts = 6 }
      cfg ~seed:"chaos-baseline" ~connect all_ops
  in
  check_results "replayed results" plain r.Session.report;
  Alcotest.(check bool) "made progress across cuts" true (r.Session.attempts >= 2)

let test_unrecoverable_raises () =
  (* Dropping every frame makes every attempt time out; after
     max_attempts the typed error surfaces. *)
  let connect = faulty_connect (fun _ -> Fault.plan ~drop:1.0 ~seed:"blackhole" ()) in
  let resilience =
    { Session.max_attempts = 2; backoff_s = 0.; max_backoff_s = 0.; recv_timeout_s = Some 0.03 }
  in
  match
    Session.run_resilient ~resilience cfg ~connect
      [ Session.Intersect { s_values; r_values } ]
  with
  | _ -> Alcotest.fail "expected the blackhole session to fail"
  | exception (Wire.Timeout _ | Wire.Protocol_error _) -> ()

let test_retry_metrics () =
  let _, _, snapshot =
    Obs.trace (fun () ->
        let connect ~attempt =
          if attempt = 1 then
            faulty_connect (fun _ -> Fault.plan ~cut_after:5 ~seed:"metrics" ()) ~attempt
          else memory_connect ~attempt
        in
        Session.run_resilient
          ~resilience:{ chaos_resilience with Session.max_attempts = 4 }
          cfg ~connect all_ops)
  in
  let counter name =
    match Obs.Metrics.find_counter snapshot name with Some v -> v | None -> 0
  in
  Alcotest.(check bool) "session.retries > 0" true (counter "session.retries" > 0);
  Alcotest.(check bool) "session.reconnects > 0" true (counter "session.reconnects" > 0);
  Alcotest.(check bool) "wire.fault.disconnects > 0" true
    (counter "wire.fault.disconnects" > 0)

let test_ring_forensic_trail () =
  (* The always-on flight recorder must hold a forensic trail of the
     retry path after a killed-then-resumed session: the failed
     attempt's note and the reconnect note both survive in the ring. *)
  let plain = Lazy.force baseline in
  Obs.Ring.install ~capacity:65536 ();
  Fun.protect ~finally:Obs.Ring.uninstall (fun () ->
      let connect ~attempt =
        if attempt = 1 then
          faulty_connect (fun _ -> Fault.plan ~cut_after:5 ~seed:"ring" ()) ~attempt
        else memory_connect ~attempt
      in
      let r =
        Session.run_resilient
          ~resilience:{ chaos_resilience with Session.max_attempts = 4 }
          cfg ~seed:"chaos-baseline" ~connect all_ops
      in
      Alcotest.(check bool) "resumed at least once" true (r.Session.attempts >= 2);
      check_results "results with recorder installed" plain r.Session.report;
      let notes =
        List.filter_map
          (fun (e : Obs.Ring.event) ->
            match e.Obs.Ring.kind with Obs.Ring.Note n -> Some n | _ -> None)
          (Obs.Ring.dump ())
      in
      let has_prefix p s =
        String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p
      in
      Alcotest.(check bool) "failed attempt noted" true
        (List.exists (has_prefix "session: attempt") notes);
      Alcotest.(check bool) "reconnect noted" true
        (List.exists (has_prefix "session: reconnecting") notes);
      (* The recorder also saw the protocol's spans, not just notes. *)
      Alcotest.(check bool) "span events recorded" true
        (List.exists
           (fun (e : Obs.Ring.event) ->
             match e.Obs.Ring.kind with Obs.Ring.Enter _ -> true | _ -> false)
           (Obs.Ring.dump ())))

let () =
  Alcotest.run "chaos"
    [
      ( "fault-free",
        [
          Alcotest.test_case "resilient = plain" `Quick test_resilient_matches_plain;
          Alcotest.test_case "session over sockets" `Quick test_socket_session;
        ] );
      ( "chaos",
        List.map
          (fun seed ->
            Alcotest.test_case ("all protocols, seed " ^ seed) `Slow
              (test_chaos_all_protocols seed))
          [ "1"; "2"; "3" ]
        @ List.map
            (fun seed ->
              Alcotest.test_case ("each protocol alone, seed " ^ seed) `Slow
                (test_chaos_each_protocol seed))
            [ "1"; "2"; "3" ]
        @ [
            Alcotest.test_case "streaming pipeline under faults" `Slow
              test_chaos_streaming_parallel;
          ] );
      ( "resume",
        [
          Alcotest.test_case "killed then resumed" `Quick test_killed_then_resumed;
          Alcotest.test_case "replays converge" `Quick test_replay_counted;
          Alcotest.test_case "unrecoverable surfaces typed error" `Quick
            test_unrecoverable_raises;
          Alcotest.test_case "retry metrics" `Quick test_retry_metrics;
          Alcotest.test_case "flight-recorder forensic trail" `Quick
            test_ring_forensic_trail;
        ] );
    ]
