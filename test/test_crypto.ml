(* Tests for the crypto substrate: SHA-256 against NIST/FIPS vectors,
   HMAC against RFC 4231 vectors, DRBG determinism, the QR group,
   commutative encryption (Definition 2 properties), hash-to-group, and
   both perfect-cipher instantiations. *)

module Nat = Bignum.Nat
module Sha256 = Crypto.Sha256
module Hmac = Crypto.Hmac
module Drbg = Crypto.Drbg
module Group = Crypto.Group
module Hash_to_group = Crypto.Hash_to_group
module Commutative = Crypto.Commutative
module Perfect_cipher = Crypto.Perfect_cipher

let nat = Alcotest.testable Nat.pp Nat.equal

let test_rng : Bignum.Nat_rand.rng =
  let d = Drbg.create ~seed:"test-crypto" in
  Drbg.to_rng d

let g64 = Group.named Group.Test64
let g128 = Group.named Group.Test128
let g256 = Group.named Group.Test256

let qtest name ?(count = 100) gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let gen_string max_len =
  QCheck2.Gen.(
    bind (int_range 0 max_len) (fun n ->
        map (fun l -> String.init n (List.nth l)) (list_repeat n (map Char.chr (int_range 0 255)))))

(* ------------------------------------------------------------------ *)
(* SHA-256                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha256_nist_vectors () =
  let check msg expected = Alcotest.(check string) "digest" expected (Sha256.hexdigest msg) in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check "The quick brown fox jumps over the lazy dog"
    "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  let chunk = String.make 10_000 'a' in
  for _ = 1 to 100 do
    Sha256.update ctx chunk
  done;
  let d = Sha256.finalize ctx in
  let hex = String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                                (List.init 32 (String.get d))) in
  Alcotest.(check string) "1M a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" hex

let test_sha256_streaming_equals_oneshot () =
  (* Splitting the input at every boundary must not change the digest;
     this exercises the partial-block buffering paths. *)
  let msg = String.init 300 (fun i -> Char.chr (i * 7 mod 256)) in
  let expected = Sha256.digest msg in
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.update ctx (String.sub msg 0 cut);
      Sha256.update ctx (String.sub msg cut (String.length msg - cut));
      Alcotest.(check string) (Printf.sprintf "cut %d" cut) expected (Sha256.finalize ctx))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 200; 300 ]

let test_sha256_length_boundaries () =
  (* Padding boundaries: messages of length 55, 56, 63, 64 bytes. *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (String.make 1 c)) msg;
      Alcotest.(check string)
        (Printf.sprintf "len %d byte-by-byte" n)
        (Sha256.hexdigest msg |> String.lowercase_ascii)
        (let d = Sha256.finalize ctx in
         String.concat ""
           (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init 32 (String.get d)))))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120 ]

let test_sha256_finalize_twice () =
  let ctx = Sha256.init () in
  Sha256.update ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "finalize twice" (Invalid_argument "Sha256.finalize: finalized context")
    (fun () -> ignore (Sha256.finalize ctx))

let prop_digest_concat =
  qtest "digest_concat = digest of concat"
    QCheck2.Gen.(list_size (int_range 0 5) (gen_string 100))
    (fun l -> String.concat "|" (List.map String.escaped l))
    (fun parts -> String.equal (Sha256.digest_concat parts) (Sha256.digest (String.concat "" parts)))

(* ------------------------------------------------------------------ *)
(* HMAC                                                                *)
(* ------------------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  let check ~key data expected = Alcotest.(check string) "hmac" expected (Hmac.hex ~key data) in
  check ~key:(String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check ~key:"Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* Key longer than one block (131 bytes of 0xaa). *)
  check ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let prop_hmac_key_padding_irrelevant =
  qtest "hmac distinct under key tweak" (gen_string 64) String.escaped (fun msg ->
      not (String.equal (Hmac.mac ~key:"k1" msg) (Hmac.mac ~key:"k2" msg)))

(* ------------------------------------------------------------------ *)
(* DRBG                                                                *)
(* ------------------------------------------------------------------ *)

let test_drbg_edge_lengths () =
  let d = Drbg.create ~seed:"edge" in
  Alcotest.(check int) "zero bytes" 0 (String.length (Drbg.generate d 0));
  Alcotest.(check int) "one byte" 1 (String.length (Drbg.generate d 1));
  Alcotest.(check int) "odd size" 100001 (String.length (Drbg.generate d 100001));
  Alcotest.(check bool) "negative raises" true
    (try
       ignore (Drbg.generate d (-1));
       false
     with Invalid_argument _ -> true)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same stream" (Drbg.generate a 100) (Drbg.generate b 100);
  Alcotest.(check string) "continues equal" (Drbg.generate a 37) (Drbg.generate b 37)

let test_drbg_seed_sensitivity () =
  let a = Drbg.create ~seed:"seed-a" and b = Drbg.create ~seed:"seed-b" in
  Alcotest.(check bool) "different" false
    (String.equal (Drbg.generate a 64) (Drbg.generate b 64))

let test_drbg_reseed_changes_stream () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  ignore (Drbg.generate a 16);
  ignore (Drbg.generate b 16);
  Drbg.reseed a ~entropy:"fresh";
  Alcotest.(check bool) "diverged" false
    (String.equal (Drbg.generate a 32) (Drbg.generate b 32))

let test_drbg_split_independent () =
  let parent = Drbg.create ~seed:"s" in
  let c1 = Drbg.split parent ~label:"one" in
  let c2 = Drbg.split parent ~label:"one" in
  (* Two splits consume parent entropy, so even same labels differ. *)
  Alcotest.(check bool) "children differ" false
    (String.equal (Drbg.generate c1 32) (Drbg.generate c2 32))

let test_drbg_fork_non_mutating () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  let _c = Drbg.fork a ~label:"child" in
  (* Unlike [split], forking does not advance the parent stream. *)
  Alcotest.(check string) "parent stream unchanged" (Drbg.generate b 64)
    (Drbg.generate a 64)

let test_drbg_fork_deterministic_and_separated () =
  let mk () = Drbg.create ~seed:"s" in
  let c1 = Drbg.fork (mk ()) ~label:"one" in
  let c2 = Drbg.fork (mk ()) ~label:"one" in
  Alcotest.(check string) "same label, same stream" (Drbg.generate c1 32)
    (Drbg.generate c2 32);
  let d1 = Drbg.fork (mk ()) ~label:"one" in
  let d2 = Drbg.fork (mk ()) ~label:"two" in
  Alcotest.(check bool) "labels separate domains" false
    (String.equal (Drbg.generate d1 32) (Drbg.generate d2 32));
  (* Fork and parent produce unrelated streams. *)
  let p = mk () in
  let c = Drbg.fork p ~label:"one" in
  Alcotest.(check bool) "child differs from parent" false
    (String.equal (Drbg.generate c 32) (Drbg.generate p 32))

let test_drbg_chi_square () =
  (* Chi-square goodness of fit over byte values: 64 KiB of output, 256
     cells, expected 256 per cell. 99.9% critical value for 255 degrees
     of freedom is ~330.5; a correct generator fails this with
     probability 0.1%. Deterministic seed => no flakiness. *)
  let d = Drbg.create ~seed:"chi-square" in
  let s = Drbg.generate d 65536 in
  let counts = Array.make 256 0 in
  String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) s;
  let expected = 65536. /. 256. in
  let chi2 =
    Array.fold_left
      (fun acc n ->
        let d = float_of_int n -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.1f < 330.5" chi2) true (chi2 < 330.5)

let test_drbg_serial_correlation () =
  (* Lag-1 serial correlation of bytes should be near zero. *)
  let d = Drbg.create ~seed:"serial" in
  let s = Drbg.generate d 65536 in
  let n = String.length s - 1 in
  let f i = float_of_int (Char.code s.[i]) in
  let mean = ref 0. in
  String.iter (fun c -> mean := !mean +. float_of_int (Char.code c)) s;
  let mean = !mean /. float_of_int (String.length s) in
  let num = ref 0. and den = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. ((f i -. mean) *. (f (i + 1) -. mean));
    den := !den +. ((f i -. mean) *. (f i -. mean))
  done;
  let rho = !num /. !den in
  Alcotest.(check bool) (Printf.sprintf "lag-1 correlation %.4f" rho) true
    (Float.abs rho < 0.02)

let test_h2g_uniform_top_bits () =
  (* The top 4 bits of h(v) over 2000 values should be ~uniform over the
     16 buckets reachable below p (Test128's top limb starts 0xfc...,
     so all 16 top-nibble values occur). Chi-square, 15 dof, 99.9%
     critical ~37.7. *)
  let counts = Array.make 16 0 in
  let bits = Group.modulus_bits g128 in
  for i = 0 to 1999 do
    let h = Hash_to_group.hash g128 (Printf.sprintf "u%d" i) in
    let nib =
      (if Nat.test_bit h (bits - 1) then 8 else 0)
      lor (if Nat.test_bit h (bits - 2) then 4 else 0)
      lor (if Nat.test_bit h (bits - 3) then 2 else 0)
      lor if Nat.test_bit h (bits - 4) then 1 else 0
    in
    counts.(nib) <- counts.(nib) + 1
  done;
  let expected = 2000. /. 16. in
  let chi2 =
    Array.fold_left
      (fun acc n ->
        let d = float_of_int n -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.1f < 37.7" chi2) true (chi2 < 37.7)

let test_drbg_byte_balance () =
  (* Crude statistical sanity: bit frequency of 64 KiB within 2%. *)
  let d = Drbg.create ~seed:"balance" in
  let s = Drbg.generate d 65536 in
  let ones = ref 0 in
  String.iter
    (fun c ->
      let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
      ones := !ones + popcount (Char.code c))
    s;
  let frac = float_of_int !ones /. float_of_int (8 * 65536) in
  Alcotest.(check bool) (Printf.sprintf "bit balance %.4f" frac) true
    (frac > 0.49 && frac < 0.51)

(* ------------------------------------------------------------------ *)
(* Group                                                               *)
(* ------------------------------------------------------------------ *)

let test_group_accessors () =
  Alcotest.(check int) "test64 bits" 64 (Group.modulus_bits g64);
  Alcotest.(check int) "test64 bytes" 8 (Group.element_bytes g64);
  Alcotest.check nat "q = (p-1)/2" (Group.q g64)
    (Nat.shift_right (Nat.pred (Group.p g64)) 1)

let test_group_generator_is_element () =
  List.iter
    (fun name ->
      let g = Group.named name in
      Alcotest.(check bool)
        (Group.name_to_string name ^ " generator")
        true
        (Group.is_element g (Group.generator g)))
    [ Group.Test64; Group.Test128; Group.Test256; Group.Test512 ]

let test_group_membership () =
  (* 4 = 2^2 is a residue; p-4 is not (p = 3 mod 4 makes -1 a non-residue). *)
  Alcotest.(check bool) "4 in QR" true (Group.is_element g64 (Nat.of_int 4));
  Alcotest.(check bool) "p-4 not in QR" false
    (Group.is_element g64 (Nat.sub (Group.p g64) (Nat.of_int 4)));
  Alcotest.(check bool) "0 not element" false (Group.is_element g64 Nat.zero);
  Alcotest.(check bool) "p not element" false (Group.is_element g64 (Group.p g64))

let test_group_random_element_member () =
  for _ = 1 to 50 do
    let x = Group.random_element g128 ~rng:test_rng in
    Alcotest.(check bool) "member" true (Group.is_element g128 x)
  done

let test_group_mul_closure_and_inverse () =
  for _ = 1 to 30 do
    let x = Group.random_element g128 ~rng:test_rng in
    let y = Group.random_element g128 ~rng:test_rng in
    Alcotest.(check bool) "closed" true (Group.is_element g128 (Group.mul g128 x y));
    Alcotest.check nat "x * x^-1 = 1" Nat.one (Group.mul g128 x (Group.inv_elt g128 x))
  done

let test_group_element_order () =
  (* Every element's order divides q; x^q = 1. *)
  for _ = 1 to 10 do
    let x = Group.random_element g128 ~rng:test_rng in
    Alcotest.check nat "x^q = 1" Nat.one (Group.pow g128 x (Group.q g128))
  done

let test_group_encode_decode () =
  for _ = 1 to 30 do
    let x = Group.random_element g256 ~rng:test_rng in
    let s = Group.encode_elt g256 x in
    Alcotest.(check int) "fixed width" (Group.element_bytes g256) (String.length s);
    Alcotest.check nat "roundtrip" x (Group.decode_elt g256 s)
  done;
  Alcotest.check_raises "wrong width" (Invalid_argument "Group.decode_elt: wrong width")
    (fun () -> ignore (Group.decode_elt g256 "short"));
  Alcotest.check_raises "zero" (Invalid_argument "Group.decode_elt: out of range")
    (fun () -> ignore (Group.decode_elt g256 (String.make (Group.element_bytes g256) '\x00')))

let test_group_of_prime_rejects () =
  Alcotest.check_raises "too small" (Invalid_argument "Group.of_prime: p too small")
    (fun () -> ignore (Group.of_prime (Nat.of_int 5)));
  (* 13 = 1 mod 4 *)
  Alcotest.check_raises "1 mod 4" (Invalid_argument "Group.of_prime: p must be 3 mod 4")
    (fun () -> ignore (Group.of_prime (Nat.of_int 13)));
  Alcotest.check_raises "not safe" (Invalid_argument "Group.of_prime_checked: not a safe prime")
    (fun () -> ignore (Group.of_prime_checked ~rng:test_rng (Nat.of_int 19)))

let test_group_checked_accepts () =
  let g = Group.of_prime_checked ~rng:test_rng (Nat.of_int 23) in
  Alcotest.check nat "q=11" (Nat.of_int 11) (Group.q g)

(* ------------------------------------------------------------------ *)
(* Commutative encryption: Definition 2                                *)
(* ------------------------------------------------------------------ *)

let test_commutativity () =
  (* Property 1: f_e . f_e' = f_e' . f_e, on many random elements. *)
  for _ = 1 to 25 do
    let e1 = Commutative.gen_key g128 ~rng:test_rng in
    let e2 = Commutative.gen_key g128 ~rng:test_rng in
    let x = Group.random_element g128 ~rng:test_rng in
    Alcotest.check nat "commute"
      (Commutative.encrypt g128 e1 (Commutative.encrypt g128 e2 x))
      (Commutative.encrypt g128 e2 (Commutative.encrypt g128 e1 x))
  done

let test_encrypt_decrypt () =
  (* Properties 2-3: bijectivity via exact inversion. *)
  for _ = 1 to 25 do
    let k = Commutative.gen_key g128 ~rng:test_rng in
    let x = Group.random_element g128 ~rng:test_rng in
    Alcotest.check nat "decrypt . encrypt = id" x
      (Commutative.decrypt g128 k (Commutative.encrypt g128 k x));
    Alcotest.check nat "encrypt . decrypt = id" x
      (Commutative.encrypt g128 k (Commutative.decrypt g128 k x))
  done

let test_encrypt_stays_in_group () =
  for _ = 1 to 25 do
    let k = Commutative.gen_key g128 ~rng:test_rng in
    let x = Group.random_element g128 ~rng:test_rng in
    Alcotest.(check bool) "in group" true (Group.is_element g128 (Commutative.encrypt g128 k x))
  done

let test_encrypt_injective_sample () =
  (* Distinct inputs map to distinct ciphertexts under one key. *)
  let k = Commutative.gen_key g256 ~rng:test_rng in
  let n = 200 in
  let seen = Hashtbl.create n in
  for i = 0 to n - 1 do
    let x = Hash_to_group.hash g256 (string_of_int i) in
    let c = Group.encode_elt g256 (Commutative.encrypt g256 k x) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen c);
    Hashtbl.add seen c ()
  done

let test_key_of_exponent_validation () =
  Alcotest.check_raises "zero exponent"
    (Invalid_argument "Commutative.key_of_exponent: exponent outside [1, q-1]") (fun () ->
      ignore (Commutative.key_of_exponent g64 Nat.zero));
  Alcotest.check_raises "exponent = q"
    (Invalid_argument "Commutative.key_of_exponent: exponent outside [1, q-1]") (fun () ->
      ignore (Commutative.key_of_exponent g64 (Group.q g64)))

let test_double_encryption_decodes_in_any_order () =
  (* The protocols rely on applying/removing layers in either order. *)
  for _ = 1 to 10 do
    let e1 = Commutative.gen_key g128 ~rng:test_rng in
    let e2 = Commutative.gen_key g128 ~rng:test_rng in
    let x = Group.random_element g128 ~rng:test_rng in
    let c = Commutative.encrypt g128 e1 (Commutative.encrypt g128 e2 x) in
    Alcotest.check nat "peel e1 then e2" x
      (Commutative.decrypt g128 e2 (Commutative.decrypt g128 e1 c));
    Alcotest.check nat "peel e2 then e1" x
      (Commutative.decrypt g128 e1 (Commutative.decrypt g128 e2 c))
  done

(* ------------------------------------------------------------------ *)
(* Hash to group                                                       *)
(* ------------------------------------------------------------------ *)

let test_h2g_membership () =
  List.iter
    (fun v ->
      Alcotest.(check bool) ("member: " ^ v) true
        (Group.is_element g128 (Hash_to_group.hash g128 v)))
    [ ""; "a"; "hello"; String.make 1000 'z' ]

let test_h2g_deterministic () =
  Alcotest.check nat "same input same hash" (Hash_to_group.hash g128 "v")
    (Hash_to_group.hash g128 "v")

let test_h2g_distinct () =
  let n = 500 in
  let seen = Hashtbl.create n in
  for i = 0 to n - 1 do
    let h = Nat.to_hex (Hash_to_group.hash g128 (string_of_int i)) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let test_h2g_domain_separation () =
  Alcotest.(check bool) "domains differ" false
    (Nat.equal
       (Hash_to_group.hash_value g128 ~domain:"a" "v")
       (Hash_to_group.hash_value g128 ~domain:"b" "v"))

(* ------------------------------------------------------------------ *)
(* Batch crypto over the domain pool                                   *)
(* ------------------------------------------------------------------ *)

(* [~force:true] spawns real worker domains even on one core, so these
   parity checks exercise actual cross-domain use of the shared
   Montgomery context and hash machinery. *)
let with_forced_pool size f =
  let p = Parallel.Pool.create ~force:true size in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown p) (fun () -> f p)

let test_batch_encrypt_parity () =
  let key = Commutative.gen_key g256 ~rng:test_rng in
  let xs = List.init 100 (fun i -> Hash_to_group.hash g256 (string_of_int i)) in
  let expected = List.map (Commutative.encrypt g256 key) xs in
  Alcotest.(check bool) "no pool = sequential" true
    (List.equal Nat.equal expected (Commutative.encrypt_batch g256 key xs));
  List.iter
    (fun size ->
      with_forced_pool size (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "encrypt_batch pool=%d" size)
            true
            (List.equal Nat.equal expected
               (Commutative.encrypt_batch ~pool g256 key xs));
          Alcotest.(check bool)
            (Printf.sprintf "decrypt_batch pool=%d roundtrips" size)
            true
            (List.equal Nat.equal xs
               (Commutative.decrypt_batch ~pool g256 key expected))))
    [ 1; 2; 4 ]

let test_batch_hash_parity () =
  let vs = List.init 100 string_of_int in
  let expected = List.map (Hash_to_group.hash_value g256 ~domain:"batch") vs in
  List.iter
    (fun size ->
      with_forced_pool size (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "hash_batch pool=%d" size)
            true
            (List.equal Nat.equal expected
               (Hash_to_group.hash_batch ~pool g256 ~domain:"batch" vs))))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Perfect cipher                                                      *)
(* ------------------------------------------------------------------ *)

let test_mul_cipher_roundtrip () =
  List.iter
    (fun payload ->
      let key = Group.random_element g256 ~rng:test_rng in
      let c = Perfect_cipher.Mul.encrypt g256 ~key payload in
      Alcotest.(check string) ("roundtrip: " ^ String.escaped payload) payload
        (Perfect_cipher.Mul.decrypt g256 ~key c))
    [ ""; "x"; "\x00\x00"; "hello world"; String.make 28 '\xff'; "\x00beef\x00" ]

let test_mul_cipher_max_payload () =
  let maxp = Perfect_cipher.Mul.max_payload g256 in
  Alcotest.(check int) "max payload for 256-bit group" 30 maxp;
  let payload = String.make maxp 'q' in
  let key = Group.random_element g256 ~rng:test_rng in
  Alcotest.(check string) "max-length roundtrip" payload
    (Perfect_cipher.Mul.decrypt g256 ~key (Perfect_cipher.Mul.encrypt g256 ~key payload));
  Alcotest.check_raises "too long" (Invalid_argument "Perfect_cipher.Mul.encode: payload too long")
    (fun () -> ignore (Perfect_cipher.Mul.encode g256 (String.make (maxp + 1) 'q')))

let test_mul_cipher_encoding_is_residue () =
  for i = 0 to 50 do
    let e = Perfect_cipher.Mul.encode g256 (string_of_int i) in
    Alcotest.(check bool) "encoded value is a residue" true (Group.is_element g256 e)
  done

let test_mul_cipher_wrong_key_garbles () =
  let k1 = Group.random_element g256 ~rng:test_rng in
  let k2 = Group.random_element g256 ~rng:test_rng in
  let c = Perfect_cipher.Mul.encrypt g256 ~key:k1 "secret" in
  let garbled = try Perfect_cipher.Mul.decrypt g256 ~key:k2 c with Invalid_argument _ -> "<reject>" in
  Alcotest.(check bool) "wrong key does not decrypt" false (String.equal garbled "secret")

let test_stream_cipher_roundtrip () =
  List.iter
    (fun payload ->
      let key = Group.random_element g128 ~rng:test_rng in
      let c = Perfect_cipher.Stream.encrypt g128 ~key payload in
      Alcotest.(check int) "length preserved" (String.length payload) (String.length c);
      Alcotest.(check string) "roundtrip" payload (Perfect_cipher.Stream.decrypt g128 ~key c))
    [ ""; "x"; "a longer record with several fields|42|true"; String.make 10_000 'r' ]

let test_stream_cipher_key_sensitivity () =
  let k1 = Group.random_element g128 ~rng:test_rng in
  let k2 = Group.random_element g128 ~rng:test_rng in
  let c1 = Perfect_cipher.Stream.encrypt g128 ~key:k1 "payload-payload" in
  let c2 = Perfect_cipher.Stream.encrypt g128 ~key:k2 "payload-payload" in
  Alcotest.(check bool) "different keys, different ciphertexts" false (String.equal c1 c2)

let prop_stream_involutive =
  qtest "stream cipher is involutive" (gen_string 200) String.escaped (fun payload ->
      let key = Group.random_element g64 ~rng:test_rng in
      String.equal payload
        (Perfect_cipher.Stream.encrypt g64 ~key (Perfect_cipher.Stream.encrypt g64 ~key payload)))

(* ------------------------------------------------------------------ *)
(* Paillier                                                            *)
(* ------------------------------------------------------------------ *)

module Paillier = Crypto.Paillier

let pail_pub, pail_sec = Paillier.keygen ~rng:test_rng ~bits:128

let test_paillier_roundtrip () =
  List.iter
    (fun m ->
      let m = Nat.of_int m in
      let c = Paillier.encrypt pail_pub ~rng:test_rng m in
      Alcotest.check nat "dec . enc = id" m (Paillier.decrypt pail_sec c))
    [ 0; 1; 42; 1_000_000; max_int / 4 ]

let test_paillier_randomized_ciphertexts () =
  let m = Nat.of_int 7 in
  let c1 = Paillier.encrypt pail_pub ~rng:test_rng m in
  let c2 = Paillier.encrypt pail_pub ~rng:test_rng m in
  Alcotest.(check bool) "probabilistic encryption" false (Nat.equal c1 c2);
  Alcotest.check nat "both decrypt" (Paillier.decrypt pail_sec c1) (Paillier.decrypt pail_sec c2)

let test_paillier_homomorphic_add () =
  let enc m = Paillier.encrypt pail_pub ~rng:test_rng (Nat.of_int m) in
  let c = Paillier.add pail_pub (enc 1234) (enc 8766) in
  Alcotest.check nat "1234 + 8766" (Nat.of_int 10000) (Paillier.decrypt pail_sec c);
  let c = Paillier.add_plain pail_pub (enc 50) (Nat.of_int 8) in
  Alcotest.check nat "add_plain" (Nat.of_int 58) (Paillier.decrypt pail_sec c);
  let c = Paillier.mul_plain pail_pub (enc 6) (Nat.of_int 7) in
  Alcotest.check nat "mul_plain" (Nat.of_int 42) (Paillier.decrypt pail_sec c);
  let c = Paillier.add pail_pub (enc 5) (Paillier.zero pail_pub ~rng:test_rng) in
  Alcotest.check nat "zero is neutral" (Nat.of_int 5) (Paillier.decrypt pail_sec c)

let test_paillier_sum_chain () =
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let acc =
    List.fold_left
      (fun acc x -> Paillier.add pail_pub acc (Paillier.encrypt pail_pub ~rng:test_rng (Nat.of_int x)))
      (Paillier.zero pail_pub ~rng:test_rng)
      xs
  in
  Alcotest.check nat "chain sums" (Nat.of_int (List.fold_left ( + ) 0 xs))
    (Paillier.decrypt pail_sec acc)

let test_paillier_modular_wraparound () =
  (* m1 + m2 is reduced mod n. *)
  let n = Paillier.modulus pail_pub in
  let big = Nat.pred n in
  let c =
    Paillier.add pail_pub
      (Paillier.encrypt pail_pub ~rng:test_rng big)
      (Paillier.encrypt pail_pub ~rng:test_rng (Nat.of_int 5))
  in
  Alcotest.check nat "wraps mod n" (Nat.of_int 4) (Paillier.decrypt pail_sec c)

let test_paillier_wire () =
  let pub2 = Paillier.decode_public (Paillier.encode_public pail_pub) in
  Alcotest.check nat "public key roundtrip" (Paillier.modulus pail_pub) (Paillier.modulus pub2);
  let c = Paillier.encrypt pail_pub ~rng:test_rng (Nat.of_int 99) in
  let s = Paillier.encode_ciphertext pail_pub c in
  Alcotest.(check int) "fixed width" (Paillier.ciphertext_bytes pail_pub) (String.length s);
  Alcotest.check nat "ciphertext roundtrip" c (Paillier.decode_ciphertext pail_pub s);
  (* A ciphertext encrypted under the decoded key decrypts fine. *)
  let c2 = Paillier.encrypt pub2 ~rng:test_rng (Nat.of_int 123) in
  Alcotest.check nat "cross-key" (Nat.of_int 123) (Paillier.decrypt pail_sec c2)

let test_paillier_validation () =
  Alcotest.(check bool) "plaintext >= n rejected" true
    (try
       ignore (Paillier.encrypt pail_pub ~rng:test_rng (Paillier.modulus pail_pub));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tiny keys rejected" true
    (try
       ignore (Paillier.keygen ~rng:test_rng ~bits:32);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_nist_vectors;
          Alcotest.test_case "one million a's" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming = one-shot" `Quick test_sha256_streaming_equals_oneshot;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_length_boundaries;
          Alcotest.test_case "finalize twice rejected" `Quick test_sha256_finalize_twice;
          prop_digest_concat;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          prop_hmac_key_padding_irrelevant;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "edge lengths" `Quick test_drbg_edge_lengths;
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_drbg_seed_sensitivity;
          Alcotest.test_case "reseed diverges" `Quick test_drbg_reseed_changes_stream;
          Alcotest.test_case "split independence" `Quick test_drbg_split_independent;
          Alcotest.test_case "fork leaves parent intact" `Quick test_drbg_fork_non_mutating;
          Alcotest.test_case "fork deterministic + domain-separated" `Quick
            test_drbg_fork_deterministic_and_separated;
          Alcotest.test_case "bit balance" `Quick test_drbg_byte_balance;
          Alcotest.test_case "chi-square byte distribution" `Quick test_drbg_chi_square;
          Alcotest.test_case "serial correlation" `Quick test_drbg_serial_correlation;
        ] );
      ( "group",
        [
          Alcotest.test_case "accessors" `Quick test_group_accessors;
          Alcotest.test_case "generator membership" `Quick test_group_generator_is_element;
          Alcotest.test_case "membership test" `Quick test_group_membership;
          Alcotest.test_case "random elements are members" `Quick test_group_random_element_member;
          Alcotest.test_case "closure and inverses" `Quick test_group_mul_closure_and_inverse;
          Alcotest.test_case "element order divides q" `Quick test_group_element_order;
          Alcotest.test_case "encode/decode" `Quick test_group_encode_decode;
          Alcotest.test_case "of_prime validation" `Quick test_group_of_prime_rejects;
          Alcotest.test_case "of_prime_checked accepts 23" `Quick test_group_checked_accepts;
        ] );
      ( "commutative",
        [
          Alcotest.test_case "property 1: commutativity" `Quick test_commutativity;
          Alcotest.test_case "properties 2-3: bijection/inverse" `Quick test_encrypt_decrypt;
          Alcotest.test_case "closure" `Quick test_encrypt_stays_in_group;
          Alcotest.test_case "injectivity sample" `Quick test_encrypt_injective_sample;
          Alcotest.test_case "key validation" `Quick test_key_of_exponent_validation;
          Alcotest.test_case "double-layer peeling" `Quick test_double_encryption_decodes_in_any_order;
        ] );
      ( "batch",
        [
          Alcotest.test_case "encrypt/decrypt parity across pool sizes" `Quick
            test_batch_encrypt_parity;
          Alcotest.test_case "hash parity across pool sizes" `Quick test_batch_hash_parity;
        ] );
      ( "hash-to-group",
        [
          Alcotest.test_case "membership" `Quick test_h2g_membership;
          Alcotest.test_case "deterministic" `Quick test_h2g_deterministic;
          Alcotest.test_case "distinctness over 500 values" `Quick test_h2g_distinct;
          Alcotest.test_case "domain separation" `Quick test_h2g_domain_separation;
          Alcotest.test_case "top-bit uniformity (chi-square)" `Quick test_h2g_uniform_top_bits;
        ] );
      ( "paillier",
        [
          Alcotest.test_case "encrypt/decrypt roundtrip" `Quick test_paillier_roundtrip;
          Alcotest.test_case "probabilistic" `Quick test_paillier_randomized_ciphertexts;
          Alcotest.test_case "homomorphic operations" `Quick test_paillier_homomorphic_add;
          Alcotest.test_case "sum chain" `Quick test_paillier_sum_chain;
          Alcotest.test_case "wraps mod n" `Quick test_paillier_modular_wraparound;
          Alcotest.test_case "wire encodings" `Quick test_paillier_wire;
          Alcotest.test_case "validation" `Quick test_paillier_validation;
        ] );
      ( "perfect-cipher",
        [
          Alcotest.test_case "mul: roundtrip" `Quick test_mul_cipher_roundtrip;
          Alcotest.test_case "mul: max payload" `Quick test_mul_cipher_max_payload;
          Alcotest.test_case "mul: encoding lands in QR" `Quick test_mul_cipher_encoding_is_residue;
          Alcotest.test_case "mul: wrong key fails" `Quick test_mul_cipher_wrong_key_garbles;
          Alcotest.test_case "stream: roundtrip" `Quick test_stream_cipher_roundtrip;
          Alcotest.test_case "stream: key sensitivity" `Quick test_stream_cipher_key_sensitivity;
          prop_stream_involutive;
        ] );
    ]
