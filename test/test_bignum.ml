(* Tests for the bignum substrate: Nat, Integer, Modular, Prime, Nat_rand.
   The division and Montgomery kernels are the foundation of every
   protocol, so they are cross-checked against independent oracles
   (binary long division, pow_binary) with property-based tests. *)

module Nat = Bignum.Nat
module Integer = Bignum.Integer
module Modular = Bignum.Modular
module Prime = Bignum.Prime
module Nat_rand = Bignum.Nat_rand

let nat = Alcotest.testable Nat.pp Nat.equal

(* Deterministic rng for number-theory tests. *)
let test_rng : Nat_rand.rng =
  let st = Random.State.make [| 0x5eed; 42 |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

let gen_nat_bytes max_bytes =
  QCheck2.Gen.(
    bind (int_range 0 max_bytes) (fun n ->
        map (fun l -> Nat.of_bytes_be (String.init n (List.nth l)))
          (list_repeat n (map Char.chr (int_range 0 255)))))

(* Helper to register a qcheck property as an alcotest case. *)
let qtest name ?(count = 300) gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen prop)

let nat_print = Nat.to_decimal
let nat_gen = gen_nat_bytes 48
let nat_pair = QCheck2.Gen.pair nat_gen nat_gen
let nat_pair_print (a, b) = nat_print a ^ ", " ^ nat_print b
let nat_triple = QCheck2.Gen.triple nat_gen nat_gen nat_gen

let nat_triple_print (a, b, c) =
  nat_print a ^ ", " ^ nat_print b ^ ", " ^ nat_print c

(* ------------------------------------------------------------------ *)
(* Nat: conversions                                                    *)
(* ------------------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun i -> Alcotest.(check (option int)) "roundtrip" (Some i) (Nat.to_int (Nat.of_int i)))
    [ 0; 1; 2; 25; 26; 63; 64; 0x3ffffff; 0x4000000; 0x4000001; max_int ]

let test_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_decimal_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_decimal (Nat.of_decimal s)))
    [
      "0";
      "1";
      "10000000";
      "99999999999999999999999999999999";
      "123456789012345678901234567890123456789012345678901234567890";
      (* 2^128 *)
      "340282366920938463463374607431768211456";
    ]

let test_factorial_50 () =
  (* Independent ground truth for multiplication chains. *)
  let rec fact n = if n = 0 then Nat.one else Nat.mul (Nat.of_int n) (fact (n - 1)) in
  Alcotest.(check string)
    "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (Nat.to_decimal (fact 50))

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_hex (Nat.of_hex s)))
    [ "0"; "1"; "ff"; "deadbeef"; "123456789abcdef0123456789abcdef" ]

let test_hex_known () =
  Alcotest.(check string) "255" "255" (Nat.to_decimal (Nat.of_hex "FF"));
  Alcotest.(check string) "2^64" "10000000000000000" (Nat.to_hex (Nat.shift_left Nat.one 64));
  Alcotest.(check string) "sep" "deadbeef" (Nat.to_hex (Nat.of_hex "dead_beef"))

let test_bytes_known () =
  Alcotest.check nat "of_bytes" (Nat.of_int 0x0102) (Nat.of_bytes_be "\x01\x02");
  Alcotest.(check string) "to_bytes" "\x01\x02" (Nat.to_bytes_be (Nat.of_int 0x0102));
  Alcotest.(check string) "padded" "\x00\x00\x01\x02"
    (Nat.to_bytes_be ~width:4 (Nat.of_int 0x0102));
  Alcotest.check nat "empty" Nat.zero (Nat.of_bytes_be "");
  Alcotest.(check string) "zero byte" "\x00" (Nat.to_bytes_be Nat.zero)

let prop_bytes_roundtrip =
  qtest "of_bytes_be/to_bytes_be roundtrip" nat_gen nat_print (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_decimal_roundtrip =
  qtest "decimal roundtrip" nat_gen nat_print (fun a ->
      Nat.equal a (Nat.of_decimal (Nat.to_decimal a)))

let prop_hex_roundtrip =
  qtest "hex roundtrip" nat_gen nat_print (fun a -> Nat.equal a (Nat.of_hex (Nat.to_hex a)))

(* ------------------------------------------------------------------ *)
(* Nat: ordering and bits                                              *)
(* ------------------------------------------------------------------ *)

let test_compare_basic () =
  Alcotest.(check bool) "0<1" true (Nat.compare Nat.zero Nat.one < 0);
  Alcotest.(check bool) "2^26-1 < 2^26" true
    (Nat.compare (Nat.of_int 0x3ffffff) (Nat.of_int 0x4000000) < 0);
  Alcotest.(check bool) "eq" true (Nat.equal (Nat.of_int 12345) (Nat.of_int 12345))

let prop_compare_agrees_with_sub =
  qtest "compare consistent with sub" nat_pair nat_pair_print (fun (a, b) ->
      match Nat.compare a b with
      | 0 -> Nat.equal a b
      | c when c < 0 -> Nat.equal (Nat.add a (Nat.sub b a)) b
      | _ -> Nat.equal (Nat.add b (Nat.sub a b)) a)

let test_num_bits () =
  Alcotest.(check int) "0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "255" 8 (Nat.num_bits (Nat.of_int 255));
  Alcotest.(check int) "256" 9 (Nat.num_bits (Nat.of_int 256));
  Alcotest.(check int) "2^100" 101 (Nat.num_bits (Nat.shift_left Nat.one 100))

let prop_num_bits_bound =
  qtest "2^(bits-1) <= n < 2^bits" nat_gen nat_print (fun a ->
      Nat.is_zero a
      ||
      let k = Nat.num_bits a in
      Nat.compare a (Nat.shift_left Nat.one k) < 0
      && Nat.compare a (Nat.shift_left Nat.one (k - 1)) >= 0)

let prop_test_bit_matches_shift =
  qtest "test_bit = parity of shift_right"
    QCheck2.Gen.(pair nat_gen (int_range 0 400))
    (fun (a, i) -> nat_print a ^ " bit " ^ string_of_int i)
    (fun (a, i) ->
      Bool.equal (Nat.test_bit a i) (not (Nat.is_even (Nat.shift_right a i))))

let prop_shift_roundtrip =
  qtest "shift left then right"
    QCheck2.Gen.(pair nat_gen (int_range 0 200))
    (fun (a, s) -> nat_print a ^ " << " ^ string_of_int s)
    (fun (a, s) -> Nat.equal a (Nat.shift_right (Nat.shift_left a s) s))

let prop_shift_is_mul_pow2 =
  qtest "shift_left = mul by 2^s"
    QCheck2.Gen.(pair nat_gen (int_range 0 120))
    (fun (a, s) -> nat_print a ^ " << " ^ string_of_int s)
    (fun (a, s) ->
      Nat.equal (Nat.shift_left a s) (Nat.mul a (Nat.pow Nat.two s)))

(* ------------------------------------------------------------------ *)
(* Nat: ring laws                                                      *)
(* ------------------------------------------------------------------ *)

let prop_add_comm =
  qtest "add commutative" nat_pair nat_pair_print (fun (a, b) ->
      Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_assoc =
  qtest "add associative" nat_triple nat_triple_print (fun (a, b, c) ->
      Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c))

let prop_add_sub =
  qtest "(a+b)-b = a" nat_pair nat_pair_print (fun (a, b) ->
      Nat.equal (Nat.sub (Nat.add a b) b) a)

let prop_mul_comm =
  qtest "mul commutative" nat_pair nat_pair_print (fun (a, b) ->
      Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  qtest "mul associative" ~count:120 nat_triple nat_triple_print (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.mul b c)) (Nat.mul (Nat.mul a b) c))

let prop_mul_distrib =
  qtest "mul distributes over add" ~count:120 nat_triple nat_triple_print
    (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_mul_matches_schoolbook =
  (* Large operands so the Karatsuba path actually triggers (threshold is
     32 limbs = 832 bits = 104 bytes). *)
  qtest "karatsuba = schoolbook" ~count:60
    QCheck2.Gen.(pair (gen_nat_bytes 400) (gen_nat_bytes 400))
    nat_pair_print
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b))

let prop_sqr =
  qtest "sqr = mul self" nat_gen nat_print (fun a -> Nat.equal (Nat.sqr a) (Nat.mul a a))

let test_pow_small () =
  Alcotest.check nat "3^7" (Nat.of_int 2187) (Nat.pow (Nat.of_int 3) 7);
  Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 9999) 0);
  Alcotest.check nat "0^0" Nat.one (Nat.pow Nat.zero 0);
  Alcotest.check nat "0^5" Nat.zero (Nat.pow Nat.zero 5);
  Alcotest.(check string) "2^200"
    (Nat.to_decimal (Nat.shift_left Nat.one 200))
    (Nat.to_decimal (Nat.pow Nat.two 200))

let test_sub_underflow () =
  Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

(* ------------------------------------------------------------------ *)
(* Nat: division                                                       *)
(* ------------------------------------------------------------------ *)

let prop_divmod_invariant =
  qtest "a = q*b + r, r < b" ~count:500 nat_pair nat_pair_print (fun (a, b) ->
      if Nat.is_zero b then true
      else begin
        let q, r = Nat.divmod a b in
        Nat.compare r b < 0 && Nat.equal a (Nat.add (Nat.mul q b) r)
      end)

let prop_divmod_matches_binary_oracle =
  qtest "Knuth D = binary long division" ~count:300
    QCheck2.Gen.(pair (gen_nat_bytes 64) (gen_nat_bytes 32))
    nat_pair_print
    (fun (a, b) ->
      if Nat.is_zero b then true
      else begin
        let q, r = Nat.divmod a b in
        let q', r' = Nat.divmod_binary a b in
        Nat.equal q q' && Nat.equal r r'
      end)

let test_divmod_edge_cases () =
  let check_div a b eq er =
    let q, r = Nat.divmod (Nat.of_decimal a) (Nat.of_decimal b) in
    Alcotest.(check string) (a ^ " / " ^ b) eq (Nat.to_decimal q);
    Alcotest.(check string) (a ^ " % " ^ b) er (Nat.to_decimal r)
  in
  check_div "0" "7" "0" "0";
  check_div "6" "7" "0" "6";
  check_div "7" "7" "1" "0";
  check_div "100000000000000000000000000" "3" "33333333333333333333333333" "1";
  (* Divisor exactly a power of the limb base. *)
  check_div "340282366920938463463374607431768211456" "67108864"
    "5070602400912917605986812821504" "0";
  (* Known add-back-provoking shape: dividend just below divisor * base. *)
  check_div "18446744073709551615" "4294967296" "4294967295" "4294967295"

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_divmod_add_back_branch () =
  (* These inputs provoke Algorithm D's rare add-back correction (found
     by directed search; the branch fires with probability ~2^-25 per
     quotient digit on random inputs, so ordinary property tests never
     reach it). Verify the branch executes AND the result is right. *)
  let cases =
    [
      ("10141204499594384811913140764747", "151115727451828713947096");
      ("10141204499594384811913140764748", "151115727451828713947096");
      ("10141204499594384811913140764751", "151115727451828713947096");
    ]
  in
  List.iter
    (fun (u_s, v_s) ->
      let u = Nat.of_decimal u_s and v = Nat.of_decimal v_s in
      let before = !Nat.Internal.add_back_count in
      let q, r = Nat.divmod u v in
      Alcotest.(check bool) ("add-back fired for " ^ u_s) true
        (!Nat.Internal.add_back_count > before);
      let q', r' = Nat.divmod_binary u v in
      Alcotest.check nat "quotient" q' q;
      Alcotest.check nat "remainder" r' r;
      Alcotest.check nat "reconstructs" u (Nat.add (Nat.mul q v) r))
    cases

let prop_gcd =
  qtest "gcd divides both and is maximal-ish" nat_pair nat_pair_print (fun (a, b) ->
      let g = Nat.gcd a b in
      if Nat.is_zero g then Nat.is_zero a && Nat.is_zero b
      else
        Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g)
        && Nat.equal (Nat.gcd (Nat.div a g) (Nat.div b g)) Nat.one)

let test_gcd_known () =
  Alcotest.check nat "gcd(12,18)" (Nat.of_int 6) (Nat.gcd (Nat.of_int 12) (Nat.of_int 18));
  Alcotest.check nat "gcd(0,5)" (Nat.of_int 5) (Nat.gcd Nat.zero (Nat.of_int 5));
  Alcotest.check nat "coprime" Nat.one (Nat.gcd (Nat.of_int 35) (Nat.of_int 64))

(* ------------------------------------------------------------------ *)
(* Cross-validation against an independent implementation              *)
(* ------------------------------------------------------------------ *)

let test_fixtures_mul_div () =
  List.iter
    (fun (a_s, b_s, prod_s, quot_s, rem_s) ->
      let a = Nat.of_decimal a_s and b = Nat.of_decimal b_s in
      Alcotest.(check string) "a*b" prod_s (Nat.to_decimal (Nat.mul a b));
      let q, r = Nat.divmod a b in
      Alcotest.(check string) "a/b" quot_s (Nat.to_decimal q);
      Alcotest.(check string) "a mod b" rem_s (Nat.to_decimal r))
    Bignum_fixtures.mul_div_cases

let test_fixtures_powmod () =
  List.iter
    (fun (b_s, e_s, m_s, exp_s) ->
      let b = Nat.of_decimal b_s and e = Nat.of_decimal e_s and m = Nat.of_decimal m_s in
      Alcotest.(check string) "pow(b,e,m)" exp_s (Nat.to_decimal (Modular.pow b e m)))
    Bignum_fixtures.powmod_cases

let test_fixtures_gcd () =
  List.iter
    (fun (a_s, b_s, g_s) ->
      Alcotest.(check string) "gcd" g_s
        (Nat.to_decimal (Nat.gcd (Nat.of_decimal a_s) (Nat.of_decimal b_s))))
    Bignum_fixtures.gcd_cases

(* ------------------------------------------------------------------ *)
(* Integer                                                             *)
(* ------------------------------------------------------------------ *)

let int_of_pair (s, n) =
  let v = Integer.of_nat n in
  if s then v else Integer.neg v

let gen_integer = QCheck2.Gen.(map int_of_pair (pair bool (gen_nat_bytes 24)))
let integer_print = Integer.to_string

let prop_integer_ring =
  qtest "integer ring laws"
    QCheck2.Gen.(triple gen_integer gen_integer gen_integer)
    (fun (a, b, c) ->
      String.concat ", " [ integer_print a; integer_print b; integer_print c ])
    (fun (a, b, c) ->
      Integer.equal (Integer.add a b) (Integer.add b a)
      && Integer.equal (Integer.mul a (Integer.add b c))
           (Integer.add (Integer.mul a b) (Integer.mul a c))
      && Integer.equal (Integer.sub a a) Integer.zero
      && Integer.equal (Integer.add a (Integer.neg a)) Integer.zero)

let prop_integer_ediv =
  qtest "euclidean division invariant"
    QCheck2.Gen.(pair gen_integer gen_integer)
    (fun (a, b) -> integer_print a ^ ", " ^ integer_print b)
    (fun (a, b) ->
      if Integer.equal b Integer.zero then true
      else begin
        let q, r = Integer.ediv_rem a b in
        Integer.equal a (Integer.add (Integer.mul q b) r)
        && Integer.sign r >= 0
        && Integer.compare r (Integer.abs b) < 0
      end)

let prop_integer_egcd =
  qtest "egcd: a*x + b*y = g = gcd"
    QCheck2.Gen.(pair gen_integer gen_integer)
    (fun (a, b) -> integer_print a ^ ", " ^ integer_print b)
    (fun (a, b) ->
      let g, x, y = Integer.egcd a b in
      Integer.equal (Integer.add (Integer.mul a x) (Integer.mul b y)) g
      && Integer.sign g >= 0
      && Integer.equal (Integer.of_nat (Nat.gcd (Integer.to_nat (Integer.abs a))
                                          (Integer.to_nat (Integer.abs b))))
           g)

let test_integer_signs () =
  let i = Integer.of_int in
  Alcotest.(check string) "-5+3" "-2" (Integer.to_string (Integer.add (i (-5)) (i 3)));
  Alcotest.(check string) "(-5)*(-3)" "15" (Integer.to_string (Integer.mul (i (-5)) (i (-3))));
  let q, r = Integer.ediv_rem (i (-7)) (i 3) in
  Alcotest.(check string) "(-7) ediv 3 q" "-3" (Integer.to_string q);
  Alcotest.(check string) "(-7) ediv 3 r" "2" (Integer.to_string r);
  let q, r = Integer.ediv_rem (i 7) (i (-3)) in
  Alcotest.(check string) "7 ediv -3 q" "-2" (Integer.to_string q);
  Alcotest.(check string) "7 ediv -3 r" "1" (Integer.to_string r)

(* ------------------------------------------------------------------ *)
(* Modular                                                             *)
(* ------------------------------------------------------------------ *)

(* A fixed odd 155-bit modulus for property tests. *)
let test_modulus = Nat.of_decimal "57896044618658097711785492504343953926634992332820282019729"

let gen_mod_elt = QCheck2.Gen.map (fun n -> Nat.rem n test_modulus) (gen_nat_bytes 40)

let prop_mont_pow_matches_binary =
  qtest "Montgomery pow = binary pow" ~count:80
    QCheck2.Gen.(pair gen_mod_elt (gen_nat_bytes 24))
    nat_pair_print
    (fun (b, e) ->
      Nat.equal (Modular.pow b e test_modulus) (Modular.pow_binary b e test_modulus))

let prop_pow_homomorphic =
  qtest "a^(x+y) = a^x * a^y mod m" ~count:60
    QCheck2.Gen.(triple gen_mod_elt (gen_nat_bytes 16) (gen_nat_bytes 16))
    nat_triple_print
    (fun (a, x, y) ->
      let ctx = Modular.Mont.create test_modulus in
      Nat.equal
        (Modular.Mont.pow ctx a (Nat.add x y))
        (Modular.Mont.mul ctx (Modular.Mont.pow ctx a x) (Modular.Mont.pow ctx a y)))

let prop_mont_mul_matches_naive =
  qtest "Mont.mul = naive mod mul" ~count:200
    QCheck2.Gen.(pair gen_mod_elt gen_mod_elt)
    nat_pair_print
    (fun (a, b) ->
      let ctx = Modular.Mont.create test_modulus in
      Nat.equal (Modular.Mont.mul ctx a b) (Modular.mul a b test_modulus))

let prop_pow_tower =
  qtest "(a^x)^y = a^(x*y) mod m" ~count:40
    QCheck2.Gen.(triple gen_mod_elt (gen_nat_bytes 12) (gen_nat_bytes 12))
    nat_triple_print
    (fun (a, x, y) ->
      let ctx = Modular.Mont.create test_modulus in
      Nat.equal
        (Modular.Mont.pow ctx (Modular.Mont.pow ctx a x) y)
        (Modular.Mont.pow ctx a (Nat.mul x y)))

let prop_sqr_matches_mul =
  qtest "Mont.sqr = Mont.mul a a" ~count:200 gen_mod_elt nat_print (fun a ->
      let ctx = Modular.Mont.create test_modulus in
      Nat.equal (Modular.Mont.sqr ctx a) (Modular.Mont.mul ctx a a))

let prop_pow_exp_matches_pow =
  qtest "Mont.pow_exp over precompute_exp = Mont.pow" ~count:80
    QCheck2.Gen.(pair gen_mod_elt (gen_nat_bytes 24))
    nat_pair_print
    (fun (b, e) ->
      let ctx = Modular.Mont.create test_modulus in
      let w = Modular.Mont.precompute_exp e in
      Nat.equal (Modular.Mont.pow_exp ctx b w) (Modular.Mont.pow ctx b e))

let test_pow_exp_corners () =
  let ctx = Modular.Mont.create test_modulus in
  let check name e b =
    Alcotest.check nat name
      (Modular.Mont.pow ctx b e)
      (Modular.Mont.pow_exp ctx b (Modular.Mont.precompute_exp e))
  in
  check "e=0" Nat.zero (Nat.of_int 7);
  check "e=1" Nat.one (Nat.of_int 7);
  check "e=15 (one full window)" (Nat.of_int 15) (Nat.of_int 7);
  check "e=16 (window boundary)" (Nat.of_int 16) (Nat.of_int 7);
  check "b=0" (Nat.of_int 9) Nat.zero

let test_pow_known () =
  let m = Nat.of_int 1000000007 in
  Alcotest.check nat "2^10 mod p" (Nat.of_int 1024) (Modular.pow Nat.two (Nat.of_int 10) m);
  (* Fermat: a^(p-1) = 1 mod p. *)
  Alcotest.check nat "fermat" Nat.one
    (Modular.pow (Nat.of_int 123456789) (Nat.pred m) m);
  Alcotest.check nat "e=0" Nat.one (Modular.pow (Nat.of_int 5) Nat.zero m);
  Alcotest.check nat "b=0" Nat.zero (Modular.pow Nat.zero (Nat.of_int 5) m)

let test_pow_even_modulus () =
  let m = Nat.of_int 100 in
  Alcotest.check nat "7^2 mod 100" (Nat.of_int 49) (Modular.pow (Nat.of_int 7) Nat.two m);
  Alcotest.check nat "7^4 mod 100" (Nat.of_int 1) (Modular.pow (Nat.of_int 7) (Nat.of_int 4) m)

let prop_inverse =
  qtest "a * inv(a) = 1 mod m" ~count:200 gen_mod_elt nat_print (fun a ->
      match Modular.inv a test_modulus with
      | None -> Nat.is_zero a || not (Nat.is_one (Nat.gcd a test_modulus))
      | Some ai -> Nat.is_one (Modular.mul a ai test_modulus))

let test_inverse_none () =
  Alcotest.(check bool) "inv 0" true (Modular.inv Nat.zero (Nat.of_int 7) = None);
  Alcotest.(check bool) "inv 6 mod 9" true (Modular.inv (Nat.of_int 6) (Nat.of_int 9) = None);
  Alcotest.check nat "inv 3 mod 7" (Nat.of_int 5)
    (Modular.inv_exn (Nat.of_int 3) (Nat.of_int 7))

(* ------------------------------------------------------------------ *)
(* Montgomery kernels                                                  *)
(*                                                                     *)
(* Mont.create selects a fixed-width kernel (30-bit limbs, lazy        *)
(* reduction, unrolled at 256 bits) for the three hard-coded group     *)
(* widths. Every kernel entry point — single pow_exp, pow_batch's      *)
(* interleaved lanes, sqr_batch — is pinned to the pow_binary oracle   *)
(* at every width, across edge exponents and edge bases, and the       *)
(* window loop is asserted allocation-free.                            *)
(* ------------------------------------------------------------------ *)

(* The moduli psi actually runs on (Group's test256 / RFC 3526 groups
   5 and 14), restated here so bignum's tests stay self-contained. *)
let p256 =
  Nat.of_hex "fc9ef2546731204952720f1668ba4e40320056f94b2bd0a0b311f3c42da6b03f"

let p1536 =
  Nat.of_hex
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
     98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
     9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

let p2048 =
  Nat.of_hex
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
     98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
     9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
     E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
     3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"

let fixed_widths =
  [ ("fixed-256", p256, 30); ("fixed-1536", p1536, 6); ("fixed-2048", p2048, 6) ]

let test_kernel_selection () =
  List.iter
    (fun (kname, m, _) ->
      let ctx = Modular.Mont.create m in
      Alcotest.(check string) kname kname (Modular.Mont.kernel_name ctx))
    fixed_widths;
  Alcotest.(check string) "155-bit -> generic" "generic"
    (Modular.Mont.kernel_name (Modular.Mont.create test_modulus));
  Alcotest.(check bool) "force_generic defaults off" false (Modular.Mont.force_generic ())

(* Generator for elements of [0, m): rejection-free via rem. *)
let gen_elt_of m =
  QCheck2.Gen.map (fun n -> Nat.rem n m) (gen_nat_bytes ((Nat.num_bits m + 7) / 8 + 8))

let kernel_parity_props =
  List.concat_map
    (fun (kname, m, count) ->
      let ctx = Modular.Mont.create m in
      [
        qtest
          (Printf.sprintf "%s pow_exp = pow_binary" kname)
          ~count
          QCheck2.Gen.(pair (gen_elt_of m) (gen_nat_bytes 32))
          nat_pair_print
          (fun (b, e) ->
            Nat.equal
              (Modular.Mont.pow_exp ctx b (Modular.Mont.precompute_exp e))
              (Modular.pow_binary b e m));
        (* Batch lengths 0..9 cover empty input, partial final blocks and
           several full interleave blocks at every lane width. *)
        qtest
          (Printf.sprintf "%s pow_batch = pow_binary, each lane" kname)
          ~count
          QCheck2.Gen.(
            pair
              (bind (int_range 0 9) (fun n -> list_repeat n (gen_elt_of m)))
              (gen_nat_bytes 32))
          (fun (bs, e) ->
            String.concat ", " (List.map nat_print bs) ^ " ^ " ^ nat_print e)
          (fun (bs, e) ->
            let w = Modular.Mont.precompute_exp e in
            List.for_all2 Nat.equal
              (Modular.Mont.pow_batch ctx bs w)
              (List.map (fun b -> Modular.pow_binary b e m) bs));
        qtest
          (Printf.sprintf "%s sqr_batch = naive mod mul" kname)
          ~count
          QCheck2.Gen.(bind (int_range 0 9) (fun n -> list_repeat n (gen_elt_of m)))
          (fun xs -> String.concat ", " (List.map nat_print xs))
          (fun xs ->
            List.for_all2 Nat.equal
              (Modular.Mont.sqr_batch ctx xs)
              (List.map (fun x -> Modular.mul x x m) xs));
      ])
    fixed_widths

(* Edge exponents (0, 1, 2, p-2, top-bit-only, all-ones) x edge bases
   (0, 1, m-1, small): the cases that stress window-digit handling (all
   zero digits, all maximal digits), the lazy-reduction bound (m-1 is
   the largest reduced operand) and the Fermat identity. *)
let test_kernel_edges () =
  List.iter
    (fun (kname, m, _) ->
      let ctx = Modular.Mont.create m in
      let bits = Nat.num_bits m in
      let exponents =
        [
          ("e=0", Nat.zero);
          ("e=1", Nat.one);
          ("e=2", Nat.two);
          ("e=p-2", Nat.sub m Nat.two);
          ("e=2^(bits-1)", Nat.shift_left Nat.one (bits - 1));
          ("e=all-ones", Nat.pred (Nat.shift_left Nat.one bits));
        ]
      in
      let bases =
        [ Nat.zero; Nat.one; Nat.pred m; Nat.of_int 0x1234567 ]
      in
      List.iter
        (fun (ename, e) ->
          let w = Modular.Mont.precompute_exp e in
          List.iter
            (fun b ->
              Alcotest.check nat
                (Printf.sprintf "%s %s b=%s" kname ename (Nat.to_hex b))
                (Modular.pow_binary b e m)
                (Modular.Mont.pow_exp ctx b w))
            bases;
          (* The same edges through the interleaved batch path. *)
          List.iter2 (fun b r ->
              Alcotest.check nat
                (Printf.sprintf "%s %s batch b=%s" kname ename (Nat.to_hex b))
                (Modular.pow_binary b e m) r)
            bases
            (Modular.Mont.pow_batch ctx bases w))
        exponents)
    fixed_widths

(* Kernel choice must be invisible: a context forced onto the generic
   path computes bit-identical results to the fixed-width context for
   the same modulus. *)
let test_force_generic_parity () =
  Fun.protect
    ~finally:(fun () -> Modular.Mont.set_force_generic false)
    (fun () ->
      List.iter
        (fun (kname, m, _) ->
          let fixed = Modular.Mont.create m in
          Modular.Mont.set_force_generic true;
          let generic = Modular.Mont.create m in
          Modular.Mont.set_force_generic false;
          Alcotest.(check string) (kname ^ " forced") "generic"
            (Modular.Mont.kernel_name generic);
          let b = Nat.rem (Nat.of_decimal "987654321987654321987654321") m in
          let e = Nat.sub m Nat.two in
          let w = Modular.Mont.precompute_exp e in
          Alcotest.check nat (kname ^ " = generic")
            (Modular.Mont.pow_exp generic b w)
            (Modular.Mont.pow_exp fixed b w))
        fixed_widths)

(* The steady-state window loop runs out of the preallocated arena: a
   full multi-lane scan over a maximal exponent must allocate nothing
   on the minor heap. Loading bases and extracting results may allocate
   (they build Nats); only run_windows is pinned. *)
let test_zero_alloc_window_loop () =
  List.iter
    (fun (kname, m, _) ->
      let ctx = Modular.Mont.create m in
      match Modular.Mont.Internal.arena ctx with
      | None -> Alcotest.failf "%s: expected a fixed-width arena" kname
      | Some ar ->
          let lanes = Modular.Mont.Internal.lanes ctx in
          let bits = Nat.num_bits m in
          let w =
            Modular.Mont.precompute_exp (Nat.pred (Nat.shift_left Nat.one bits))
          in
          for lane = 0 to lanes - 1 do
            Modular.Mont.Internal.load_base ar ~lane
              (Nat.rem (Nat.of_int (0xbeef + lane)) m)
          done;
          (* Warm once (first call may trigger lazy runtime setup),
             then measure. *)
          Modular.Mont.Internal.run_windows ar ~lanes w;
          let w0 = Gc.minor_words () in
          Modular.Mont.Internal.run_windows ar ~lanes w;
          let allocated = Gc.minor_words () -. w0 in
          Alcotest.(check (float 0.0))
            (kname ^ " run_windows minor words") 0.0 allocated)
    fixed_widths

(* ------------------------------------------------------------------ *)
(* Prime                                                               *)
(* ------------------------------------------------------------------ *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 13; 1009; 104729; 1000000007 ] in
  let composites = [ 0; 1; 4; 6; 9; 15; 1001; 104730; 561; 41041; 825265 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (string_of_int p) true
        (Prime.is_probable_prime ~rng:test_rng (Nat.of_int p)))
    primes;
  (* 561, 41041, 825265 are Carmichael numbers. *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (string_of_int c) false
        (Prime.is_probable_prime ~rng:test_rng (Nat.of_int c)))
    composites

let test_mersenne () =
  (* 2^127 - 1 is prime; 2^128 - 1 is not. *)
  let m127 = Nat.pred (Nat.shift_left Nat.one 127) in
  let m128 = Nat.pred (Nat.shift_left Nat.one 128) in
  Alcotest.(check bool) "M127" true (Prime.is_probable_prime ~rng:test_rng m127);
  Alcotest.(check bool) "2^128-1" false (Prime.is_probable_prime ~rng:test_rng m128)

let test_jacobi_known () =
  let j a n = Prime.jacobi (Nat.of_int a) (Nat.of_int n) in
  (* Legendre symbols mod 7: QRs are 1,2,4. *)
  Alcotest.(check int) "(1/7)" 1 (j 1 7);
  Alcotest.(check int) "(2/7)" 1 (j 2 7);
  Alcotest.(check int) "(3/7)" (-1) (j 3 7);
  Alcotest.(check int) "(4/7)" 1 (j 4 7);
  Alcotest.(check int) "(5/7)" (-1) (j 5 7);
  Alcotest.(check int) "(6/7)" (-1) (j 6 7);
  Alcotest.(check int) "(0/7)" 0 (j 0 7);
  (* Jacobi with composite lower argument. *)
  Alcotest.(check int) "(2/15)" 1 (j 2 15);
  Alcotest.(check int) "(7/15)" (-1) (j 7 15)

let prop_jacobi_is_legendre =
  (* For odd prime p: jacobi a p = a^((p-1)/2) mod p, mapping p-1 -> -1. *)
  let p = Nat.of_int 1000003 in
  qtest "jacobi = euler criterion mod 1000003" ~count:300
    QCheck2.Gen.(int_range 0 999_999)
    string_of_int
    (fun a ->
      let an = Nat.of_int a in
      let e = Modular.pow an (Nat.shift_right (Nat.pred p) 1) p in
      let expected =
        if Nat.is_zero e then 0 else if Nat.is_one e then 1 else -1
      in
      Prime.jacobi an p = expected)

let prop_jacobi_multiplicative =
  qtest "jacobi (ab/n) = (a/n)(b/n)" ~count:300
    QCheck2.Gen.(triple (int_range 0 100000) (int_range 0 100000) (int_range 0 5000))
    (fun (a, b, k) -> Printf.sprintf "%d %d %d" a b k)
    (fun (a, b, k) ->
      let n = (2 * k) + 1 in
      if n < 3 then true
      else begin
        let j x = Prime.jacobi (Nat.of_int x) (Nat.of_int n) in
        j (a * b mod n) = j a * j b
      end)

let test_safe_primes_known () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p) true
        (Prime.is_safe_prime ~rng:test_rng (Nat.of_int p)))
    [ 5; 7; 11; 23; 47; 59; 83; 107; 167; 179; 227; 263; 347; 359 ];
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p) false
        (Prime.is_safe_prime ~rng:test_rng (Nat.of_int p)))
    [ 3; 13; 17; 29; 31; 37; 41; 97; 15 ]

let test_gen_prime () =
  List.iter
    (fun bits ->
      let p = Prime.gen_prime ~rng:test_rng bits in
      Alcotest.(check int) (Printf.sprintf "%d bits" bits) bits (Nat.num_bits p);
      Alcotest.(check bool) "prime" true (Prime.is_probable_prime ~rng:test_rng p))
    [ 8; 16; 32; 64; 128 ]

let test_gen_safe_prime () =
  List.iter
    (fun bits ->
      let p = Prime.gen_safe_prime ~rng:test_rng bits in
      Alcotest.(check int) (Printf.sprintf "%d bits" bits) bits (Nat.num_bits p);
      Alcotest.(check bool) "safe" true (Prime.is_safe_prime ~rng:test_rng p);
      (* Safe primes > 5 are 3 mod 4 (q odd), which Perfect_cipher relies on. *)
      if Nat.compare p (Nat.of_int 5) > 0 then
        Alcotest.(check bool) "p = 3 mod 4" true
          (Nat.test_bit p 0 && Nat.test_bit p 1))
    [ 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Nat_rand                                                            *)
(* ------------------------------------------------------------------ *)

let test_rand_below () =
  let bound = Nat.of_decimal "123456789123456789" in
  for _ = 1 to 200 do
    let x = Nat_rand.below ~rng:test_rng bound in
    Alcotest.(check bool) "in range" true (Nat.compare x bound < 0)
  done

let test_rand_bits_exact () =
  for _ = 1 to 50 do
    let x = Nat_rand.bits_exact ~rng:test_rng 97 in
    Alcotest.(check int) "exact bits" 97 (Nat.num_bits x)
  done

let test_rand_range () =
  let lo = Nat.of_int 1000 and hi = Nat.of_int 1010 in
  let seen = Array.make 10 false in
  for _ = 1 to 500 do
    let x = Nat_rand.range ~rng:test_rng lo hi in
    let i = Nat.to_int_exn x - 1000 in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 10);
    seen.(i) <- true
  done;
  (* All ten values should appear in 500 draws. *)
  Alcotest.(check bool) "covers range" true (Array.for_all Fun.id seen)

let test_rand_zero_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Nat_rand.below: zero bound")
    (fun () -> ignore (Nat_rand.below ~rng:test_rng Nat.zero))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bignum"
    [
      ( "nat-conversions",
        [
          Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
          Alcotest.test_case "decimal roundtrip (known)" `Quick test_decimal_roundtrip;
          Alcotest.test_case "50! decimal" `Quick test_factorial_50;
          Alcotest.test_case "hex roundtrip (known)" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex known values" `Quick test_hex_known;
          Alcotest.test_case "bytes known values" `Quick test_bytes_known;
          prop_bytes_roundtrip;
          prop_decimal_roundtrip;
          prop_hex_roundtrip;
        ] );
      ( "nat-bits",
        [
          Alcotest.test_case "compare basics" `Quick test_compare_basic;
          Alcotest.test_case "num_bits known" `Quick test_num_bits;
          prop_compare_agrees_with_sub;
          prop_num_bits_bound;
          prop_test_bit_matches_shift;
          prop_shift_roundtrip;
          prop_shift_is_mul_pow2;
        ] );
      ( "nat-ring",
        [
          prop_add_comm;
          prop_add_assoc;
          prop_add_sub;
          prop_mul_comm;
          prop_mul_assoc;
          prop_mul_distrib;
          prop_mul_matches_schoolbook;
          prop_sqr;
          Alcotest.test_case "pow small" `Quick test_pow_small;
          Alcotest.test_case "sub underflow" `Quick test_sub_underflow;
        ] );
      ( "nat-division",
        [
          prop_divmod_invariant;
          prop_divmod_matches_binary_oracle;
          Alcotest.test_case "divmod edge cases" `Quick test_divmod_edge_cases;
          Alcotest.test_case "division by zero" `Quick test_divmod_by_zero;
          Alcotest.test_case "add-back branch" `Quick test_divmod_add_back_branch;
          prop_gcd;
          Alcotest.test_case "gcd known" `Quick test_gcd_known;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "mul/div vs CPython" `Quick test_fixtures_mul_div;
          Alcotest.test_case "powmod vs CPython" `Quick test_fixtures_powmod;
          Alcotest.test_case "gcd vs CPython" `Quick test_fixtures_gcd;
        ] );
      ( "integer",
        [
          prop_integer_ring;
          prop_integer_ediv;
          prop_integer_egcd;
          Alcotest.test_case "sign handling" `Quick test_integer_signs;
        ] );
      ( "modular",
        [
          prop_mont_pow_matches_binary;
          prop_pow_homomorphic;
          prop_mont_mul_matches_naive;
          prop_pow_tower;
          prop_sqr_matches_mul;
          prop_pow_exp_matches_pow;
          Alcotest.test_case "pow_exp corner exponents" `Quick test_pow_exp_corners;
          Alcotest.test_case "pow known values" `Quick test_pow_known;
          Alcotest.test_case "pow even modulus" `Quick test_pow_even_modulus;
          prop_inverse;
          Alcotest.test_case "inverse corner cases" `Quick test_inverse_none;
        ] );
      ( "mont-kernels",
        Alcotest.test_case "kernel selection" `Quick test_kernel_selection
        :: Alcotest.test_case "edge exponents and bases" `Quick test_kernel_edges
        :: Alcotest.test_case "fixed = forced-generic" `Quick test_force_generic_parity
        :: Alcotest.test_case "window loop allocates nothing" `Quick
             test_zero_alloc_window_loop
        :: kernel_parity_props );
      ( "prime",
        [
          Alcotest.test_case "small primes & carmichael" `Quick test_small_primes;
          Alcotest.test_case "mersenne 127" `Quick test_mersenne;
          Alcotest.test_case "jacobi known" `Quick test_jacobi_known;
          prop_jacobi_is_legendre;
          prop_jacobi_multiplicative;
          Alcotest.test_case "known safe primes" `Quick test_safe_primes_known;
          Alcotest.test_case "gen_prime" `Slow test_gen_prime;
          Alcotest.test_case "gen_safe_prime" `Slow test_gen_safe_prime;
        ] );
      ( "nat-rand",
        [
          Alcotest.test_case "below stays below" `Quick test_rand_below;
          Alcotest.test_case "bits_exact" `Quick test_rand_bits_exact;
          Alcotest.test_case "range covers" `Quick test_rand_range;
          Alcotest.test_case "zero bound" `Quick test_rand_zero_bound;
        ] );
    ]
