(* Tests for the Obs telemetry library: runtime gating, metric
   registry semantics, histogram bucketing, span nesting, and the
   exporter round-trips. *)

module Metrics = Obs.Metrics
module Span = Obs.Span
module Export = Obs.Export

let with_enabled = Obs.Runtime.with_enabled

(* ------------------------------------------------------------------ *)
(* Runtime gating                                                      *)
(* ------------------------------------------------------------------ *)

let test_disabled_probes_are_noops () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.off.counter" in
  let g = Metrics.gauge ~registry:r "t.off.gauge" in
  let h = Metrics.histogram ~registry:r "t.off.hist" in
  Obs.Runtime.disable ();
  Metrics.incr c;
  Metrics.set g 42.;
  Metrics.observe h 7.;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "histogram untouched" 0
    (match Metrics.find_histogram s "t.off.hist" with
    | Some h -> h.Metrics.count
    | None -> -1)

let test_with_enabled_restores () =
  Obs.Runtime.disable ();
  with_enabled (fun () ->
      Alcotest.(check bool) "enabled inside" true (Obs.Runtime.is_enabled ()));
  Alcotest.(check bool) "disabled after" false (Obs.Runtime.is_enabled ());
  Alcotest.(check bool) "restores even on raise" true
    (try
       with_enabled (fun () -> failwith "boom")
     with Failure _ -> not (Obs.Runtime.is_enabled ()))

(* ------------------------------------------------------------------ *)
(* Counters, gauges, reset                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.c" in
  let g = Metrics.gauge ~registry:r "t.g" in
  let h = Metrics.histogram ~registry:r "t.h" in
  with_enabled (fun () ->
      Metrics.incr c;
      Metrics.incr ~by:41 c;
      Metrics.set g 2.5;
      Metrics.observe h 3.);
  Alcotest.(check int) "accumulated" 42 (Metrics.counter_value c);
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge zeroed" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot ~registry:r () in
  (match Metrics.find_histogram s "t.h" with
  | Some h ->
      Alcotest.(check int) "histogram count zeroed" 0 h.Metrics.count;
      Alcotest.(check (float 0.)) "histogram sum zeroed" 0. h.Metrics.sum
  | None -> Alcotest.fail "histogram vanished on reset");
  (* Instruments stay registered and usable after reset. *)
  with_enabled (fun () -> Metrics.incr c);
  Alcotest.(check int) "still wired" 1 (Metrics.counter_value c)

let test_name_type_clash () =
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "t.clash" in
  Alcotest.check_raises "same name, other type"
    (Invalid_argument "Metrics: \"t.clash\" already registered with another type")
    (fun () -> ignore (Metrics.gauge ~registry:r "t.clash"))

let test_find_same_instrument () =
  let r = Metrics.create () in
  let c1 = Metrics.counter ~registry:r "t.same" in
  let c2 = Metrics.counter ~registry:r "t.same" in
  with_enabled (fun () ->
      Metrics.incr c1;
      Metrics.incr c2);
  Alcotest.(check int) "one cell behind both handles" 2 (Metrics.counter_value c1)

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundaries                                         *)
(* ------------------------------------------------------------------ *)

let bucket_count s name bound =
  match Metrics.find_histogram s name with
  | None -> Alcotest.fail ("no histogram " ^ name)
  | Some h -> (
      match List.assoc_opt bound h.Metrics.buckets with
      | Some n -> n
      | None -> Alcotest.fail (Printf.sprintf "no bucket with bound %g" bound))

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "t.buckets" in
  with_enabled (fun () ->
      List.iter (Metrics.observe h)
        [ 0.5; 1.0 (* both land in the 2^0 bucket *); 1.5; 2.0 (* 2^1 *);
          2.0001 (* 2^2 *); 1024. (* 2^10, exactly on the bound *) ]);
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "<= 1" 2 (bucket_count s "t.buckets" 1.);
  Alcotest.(check int) "<= 2" 2 (bucket_count s "t.buckets" 2.);
  Alcotest.(check int) "<= 4" 1 (bucket_count s "t.buckets" 4.);
  Alcotest.(check int) "<= 1024 (on the boundary)" 1 (bucket_count s "t.buckets" 1024.);
  (match Metrics.find_histogram s "t.buckets" with
  | Some hs ->
      Alcotest.(check int) "count" 6 hs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 1031.0001 hs.Metrics.sum;
      Alcotest.(check (float 0.)) "max" 1024. hs.Metrics.max_value
  | None -> assert false);
  (* Overflow: beyond the last power-of-two bound. *)
  with_enabled (fun () -> Metrics.observe h (Float.ldexp 1. 45));
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "overflow bucket" 1 (bucket_count s "t.buckets" infinity)

let test_bucket_bounds_shape () =
  let b = Metrics.bucket_bounds in
  Alcotest.(check (float 0.)) "first bound" 1. b.(0);
  Alcotest.(check bool) "strictly increasing powers of two" true
    (Array.for_all
       (fun i -> b.(i) = 2. *. b.(i - 1))
       (Array.init (Array.length b - 1) (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Span nesting                                                        *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let result, roots =
    with_enabled (fun () ->
        Span.collect (fun () ->
            Span.with_ "root" (fun () ->
                Span.with_ "child-a"
                  ~attrs:[ ("k", "v") ]
                  (fun () -> Span.with_ "grandchild" (fun () -> ()));
                Span.with_ "child-b" (fun () -> ()));
            17))
  in
  Alcotest.(check int) "result threads through" 17 result;
  Alcotest.(check int) "one root" 1 (List.length roots);
  let root = List.hd roots in
  Alcotest.(check string) "root name" "root" (Span.name root);
  let children = Span.children root in
  Alcotest.(check (list string)) "children in order" [ "child-a"; "child-b" ]
    (List.map Span.name children);
  let child_a = List.hd children in
  Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ]
    (Span.attrs child_a);
  Alcotest.(check (list string)) "grandchild under child-a" [ "grandchild" ]
    (List.map Span.name (Span.children child_a));
  (* Durations nest: parent >= each child. *)
  Alcotest.(check bool) "parent covers child" true
    (Span.dur_ns root >= Span.dur_ns child_a)

let test_span_exception_safe () =
  let roots =
    with_enabled (fun () ->
        Span.start_trace ();
        (try Span.with_ "outer" (fun () -> failwith "inner crash")
         with Failure _ -> ());
        Span.stop_trace ())
  in
  Alcotest.(check (list string)) "span closed despite raise" [ "outer" ]
    (List.map Span.name roots)

let test_span_without_trace () =
  (* No trace installed: with_ must be a pass-through. *)
  Alcotest.(check int) "plain call" 5 (Span.with_ "ghost" (fun () -> 5));
  Alcotest.(check bool) "not tracing" false (Span.tracing ())

let test_spans_across_threads () =
  let _, roots =
    with_enabled (fun () ->
        Span.collect (fun () ->
            let t =
              Thread.create
                (fun () -> Span.with_ "thread-root" (fun () -> Thread.yield ()))
                ()
            in
            Span.with_ "main-root" (fun () -> ());
            Thread.join t))
  in
  let names = List.sort String.compare (List.map Span.name roots) in
  Alcotest.(check (list string)) "one root per thread" [ "main-root"; "thread-root" ]
    names;
  let by_name n = List.find (fun s -> Span.name s = n) roots in
  Alcotest.(check bool) "distinct thread ids" true
    (Span.thread (by_name "main-root") <> Span.thread (by_name "thread-root"))

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let rec span_equal a b =
  Span.name a = Span.name b
  && Span.attrs a = Span.attrs b
  && Span.thread a = Span.thread b
  && Span.start_ns a = Span.start_ns b
  && Span.dur_ns a = Span.dur_ns b
  && List.length (Span.children a) = List.length (Span.children b)
  && List.for_all2 span_equal (Span.children a) (Span.children b)

let test_jsonl_span_roundtrip () =
  (* Hand-built forest with an int64 timestamp beyond 2^53 to make sure
     the raw-literal JSON numbers preserve it exactly. *)
  let leaf =
    Span.make ~name:"leaf" ~attrs:[ ("n", "3") ] ~thread:7
      ~start_ns:9_007_199_254_740_993L ~dur_ns:12L ~children:[]
  in
  let root =
    Span.make ~name:"root" ~attrs:[] ~thread:7 ~start_ns:9_007_199_254_740_990L
      ~dur_ns:100L ~children:[ leaf ]
  in
  let lone =
    Span.make ~name:"lone" ~attrs:[ ("x", "y"); ("z", "w") ] ~thread:8 ~start_ns:5L
      ~dur_ns:0L ~children:[]
  in
  let text = Export.jsonl (Export.span_events [ root; lone ]) in
  let rebuilt = Export.spans_of_events (Export.events_of_jsonl text) in
  Alcotest.(check int) "two roots" 2 (List.length rebuilt);
  Alcotest.(check bool) "forest preserved" true
    (List.for_all2 span_equal [ root; lone ] rebuilt)

let test_jsonl_snapshot_roundtrip () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.rt.counter" in
  let g = Metrics.gauge ~registry:r "t.rt.gauge" in
  let h = Metrics.histogram ~registry:r "t.rt.hist" in
  with_enabled (fun () ->
      Metrics.incr ~by:3 c;
      Metrics.set g 1.5;
      Metrics.observe h 2.;
      Metrics.observe h 300.);
  let events = Export.snapshot_events (Metrics.snapshot ~registry:r ()) in
  let rebuilt = Export.events_of_jsonl (Export.jsonl events) in
  Alcotest.(check int) "same number of events" (List.length events)
    (List.length rebuilt);
  Alcotest.(check string) "events identical" (Export.jsonl events)
    (Export.jsonl rebuilt)

let test_jsonl_rejects_garbage () =
  Alcotest.(check bool) "malformed line raises" true
    (try
       ignore (Export.events_of_jsonl "{\"type\":\"span\",\"id\":");
       false
     with Export.Parse_error _ | Export.Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Prometheus exporter                                                 *)
(* ------------------------------------------------------------------ *)

let test_prometheus_format () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.prom.counter" in
  let h = Metrics.histogram ~registry:r "t.prom.hist" in
  with_enabled (fun () ->
      Metrics.incr ~by:5 c;
      Metrics.observe h 3.);
  let text = Export.prometheus (Metrics.snapshot ~registry:r ()) in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (has "t_prom_counter 5");
  Alcotest.(check bool) "histogram count" true (has "t_prom_hist_count 1");
  Alcotest.(check bool) "+Inf bucket" true (has "le=\"+Inf\"")

let has_sub text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  go 0

let test_prometheus_bucket_boundaries () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "t.promb" in
  (* Observations exactly on power-of-two bounds land in that bound's
     bucket; prometheus buckets are cumulative. *)
  with_enabled (fun () -> List.iter (Metrics.observe h) [ 1.; 2.; 2.; 4. ]);
  let text = Export.prometheus (Metrics.snapshot ~registry:r ()) in
  Alcotest.(check bool) "le=1 cumulative 1" true (has_sub text "t_promb_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "le=2 cumulative 3" true (has_sub text "t_promb_bucket{le=\"2\"} 3");
  Alcotest.(check bool) "le=4 cumulative 4" true (has_sub text "t_promb_bucket{le=\"4\"} 4");
  Alcotest.(check bool) "+Inf cumulative 4" true (has_sub text "t_promb_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "count 4" true (has_sub text "t_promb_count 4")

let test_prometheus_zero_observation_series () =
  (* A registered-but-never-observed instrument must still export: a
     scrape that silently drops idle series can't tell "no work" from
     "no instrumentation". *)
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "t.zero.counter" in
  let _ = Metrics.histogram ~registry:r "t.zero.hist" in
  let text = Export.prometheus (Metrics.snapshot ~registry:r ()) in
  Alcotest.(check bool) "counter at 0" true (has_sub text "t_zero_counter 0");
  Alcotest.(check bool) "histogram count at 0" true (has_sub text "t_zero_hist_count 0");
  Alcotest.(check bool) "+Inf bucket at 0" true
    (has_sub text "t_zero_hist_bucket{le=\"+Inf\"} 0")

let test_concurrent_pool_increments () =
  (* Counter increments from pool worker domains must not lose updates;
     ~force:true spawns real domains even on a single-core box. *)
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.pool.counter" in
  let items = 1_000 in
  let p = Parallel.Pool.create ~chunk:16 ~force:true 4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown p)
    (fun () ->
      with_enabled (fun () ->
          ignore
            (Parallel.Pool.map p
               (fun i ->
                 Metrics.incr c;
                 i)
               (List.init items Fun.id))));
  Alcotest.(check int) "no lost increments" items (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Attr escaping: arbitrary bytes must round-trip the JSONL exporter    *)
(* ------------------------------------------------------------------ *)

let nasty_string =
  (* Newlines, quotes, backslashes, control chars, and non-ASCII bytes:
     everything that has ever broken a hand-rolled JSON layer. *)
  QCheck.(
    string_gen_of_size (Gen.int_range 0 40)
      (Gen.frequency
         [
           (4, Gen.printable);
           (2, Gen.oneofl [ '\n'; '\r'; '\t'; '"'; '\\'; '\x00'; '\x1f' ]);
           (2, Gen.char_range '\x80' '\xff');
         ]))

let qcheck_attr_roundtrip =
  QCheck.Test.make ~name:"jsonl attr escaping round-trips" ~count:200
    QCheck.(pair nasty_string nasty_string)
    (fun (k, v) ->
      let span =
        Span.make ~name:"q" ~attrs:[ ("k" ^ k, v) ] ~thread:1 ~start_ns:1L
          ~dur_ns:1L ~children:[]
      in
      let text = Export.jsonl (Export.span_events [ span ]) in
      match Export.spans_of_events (Export.events_of_jsonl text) with
      | [ s ] -> Span.attrs s = [ ("k" ^ k, v) ]
      | _ -> false)

let test_unicode_escape_parsing () =
  (* \u escapes decode to UTF-8; broken escapes raise Parse_error (not
     a stray Failure from int_of_string). *)
  let str s =
    match Export.Json.of_string s with
    | Export.Json.Obj [ ("k", Export.Json.Str v) ] -> v
    | _ -> Alcotest.fail ("unexpected parse of " ^ s)
  in
  Alcotest.(check string) "ascii escape" "A" (str "{\"k\":\"\\u0041\"}");
  Alcotest.(check string) "2-byte utf-8" "\xc3\xa9" (str "{\"k\":\"\\u00e9\"}");
  Alcotest.(check string) "3-byte utf-8" "\xe2\x82\xac" (str "{\"k\":\"\\u20ac\"}");
  let rejects s =
    match Export.Json.of_string s with
    | exception Export.Json.Parse_error _ -> true
    | exception _ -> false
    | _ -> false
  in
  Alcotest.(check bool) "non-hex digits" true (rejects "{\"k\":\"\\uZZ12\"}");
  Alcotest.(check bool) "truncated escape" true (rejects "{\"k\":\"\\u00\"}");
  Alcotest.(check bool) "surrogate half" true (rejects "{\"k\":\"\\ud800\"}")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let with_ring ?capacity f =
  Obs.Ring.install ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Ring.set_sink None;
      Obs.Ring.uninstall ())
    f

let test_ring_wraps () =
  with_ring ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Obs.Ring.note (Printf.sprintf "n%d" i)
      done;
      let events = Obs.Ring.dump () in
      Alcotest.(check int) "keeps only the last capacity events" 4
        (List.length events);
      let notes =
        List.filter_map
          (fun (e : Obs.Ring.event) ->
            match e.Obs.Ring.kind with Obs.Ring.Note n -> Some n | _ -> None)
          events
      in
      Alcotest.(check (list string)) "latest notes, oldest first"
        [ "n7"; "n8"; "n9"; "n10" ] notes)

let test_ring_trip_sink () =
  let dumped = ref [] in
  with_ring (fun () ->
      Obs.Ring.set_sink (Some (fun events -> dumped := events));
      Obs.Ring.note "before";
      Obs.Ring.trip "forensic dump";
      let kinds =
        List.filter_map
          (fun (e : Obs.Ring.event) ->
            match e.Obs.Ring.kind with Obs.Ring.Note n -> Some n | _ -> None)
          !dumped
      in
      Alcotest.(check (list string)) "sink saw the trail, reason last"
        [ "before"; "forensic dump" ] kinds)

let test_ring_records_spans_and_counts () =
  with_ring (fun () ->
      (* Spans bracket into the ring even with no trace collector
         installed — that is the always-on part of the flight recorder. *)
      Span.with_ "ringed" (fun () -> ());
      let r = Metrics.create () in
      let c = Metrics.counter ~registry:r "t.ring.counter" in
      with_enabled (fun () -> Metrics.incr ~by:2 c);
      let kinds = List.map (fun (e : Obs.Ring.event) -> e.Obs.Ring.kind) (Obs.Ring.dump ()) in
      Alcotest.(check bool) "enter recorded" true
        (List.mem (Obs.Ring.Enter "ringed") kinds);
      Alcotest.(check bool) "exit recorded" true
        (List.exists
           (function Obs.Ring.Exit ("ringed", _) -> true | _ -> false)
           kinds);
      Alcotest.(check bool) "count recorded" true
        (List.mem (Obs.Ring.Count ("t.ring.counter", 2)) kinds))

(* ------------------------------------------------------------------ *)
(* Trace context, headers, chrome export, merge                        *)
(* ------------------------------------------------------------------ *)

let with_context ~trace_id ~party f =
  Obs.Context.set_trace_id trace_id;
  Obs.Context.set_party party;
  Fun.protect ~finally:Obs.Context.clear f

let test_context_stamps_roots () =
  with_context ~trace_id:"cafe" ~party:"R" (fun () ->
      let _, roots =
        with_enabled (fun () ->
            Span.collect (fun () ->
                Span.with_ "root" (fun () -> Span.with_ "child" (fun () -> ()))))
      in
      let root = List.hd roots in
      Alcotest.(check (option string)) "trace id on root" (Some "cafe")
        (List.assoc_opt Obs.Context.trace_id_attr (Span.attrs root));
      Alcotest.(check (option string)) "party on root" (Some "R")
        (List.assoc_opt Obs.Context.party_attr (Span.attrs root));
      (* Children inherit structurally; no per-span stamping. *)
      let child = List.hd (Span.children root) in
      Alcotest.(check (option string)) "child not stamped" None
        (List.assoc_opt Obs.Context.trace_id_attr (Span.attrs child)))

let test_trace_header_roundtrip () =
  Alcotest.(check bool) "no context, no header" true
    (Obs.Context.clear ();
     Export.trace_header () = None);
  with_context ~trace_id:"feed" ~party:"S" (fun () ->
      match Export.trace_header () with
      | None -> Alcotest.fail "header missing with context set"
      | Some h -> (
          match Export.events_of_jsonl (Export.jsonl [ h ]) with
          | [ Export.Header_event { version; trace_id; party } ] ->
              Alcotest.(check int) "version" Export.trace_header_version version;
              Alcotest.(check string) "trace id" "feed" trace_id;
              Alcotest.(check string) "party" "S" party
          | _ -> Alcotest.fail "header did not round-trip"))

let test_chrome_trace_structure () =
  let span =
    Span.make ~name:"work" ~attrs:[ ("k", "v") ] ~thread:3 ~start_ns:2_000L
      ~dur_ns:1_000L ~children:[]
  in
  let doc =
    Export.chrome_trace
      [ ("R", Export.span_events [ span ]); ("S", Export.span_events [ span ]) ]
  in
  (* Must itself be valid JSON with the trace-event envelope. *)
  (match Export.Json.of_string doc with
  | Export.Json.Obj fields ->
      Alcotest.(check bool) "traceEvents array" true
        (match List.assoc_opt "traceEvents" fields with
        | Some (Export.Json.Arr _) -> true
        | _ -> false)
  | _ -> Alcotest.fail "chrome trace is not a JSON object");
  Alcotest.(check bool) "process metadata" true (has_sub doc "process_name");
  Alcotest.(check bool) "duration slices" true (has_sub doc "\"ph\":\"X\"");
  Alcotest.(check bool) "both parties" true
    (has_sub doc "\"pid\":1" && has_sub doc "\"pid\":2")

(* Two synthetic party streams: same trace id, clocks skewed by 1ms,
   each with a handshake span and a wire child under the root. *)
let mk_stream ~party ~skew_ns =
  let base = Int64.add 1_000_000L skew_ns in
  let at off = Int64.add base off in
  let handshake =
    Span.make ~name:"handshake" ~attrs:[] ~thread:1 ~start_ns:(at 0L)
      ~dur_ns:100_000L ~children:[]
  in
  let wire =
    Span.make ~name:"wire/recv" ~attrs:[] ~thread:1 ~start_ns:(at 150_000L)
      ~dur_ns:200_000L ~children:[]
  in
  let root =
    Span.make ~name:("party:" ^ party)
      ~attrs:[ (Obs.Context.trace_id_attr, "beef"); (Obs.Context.party_attr, party) ]
      ~thread:1 ~start_ns:(at 0L) ~dur_ns:500_000L
      ~children:[ handshake; wire ]
  in
  let header = Export.Header_event
      { version = Export.trace_header_version; trace_id = "beef"; party }
  in
  let counters =
    [
      Export.Counter_event { name = "pool.items"; value = (if party = "R" then 7 else 0) };
      Export.Counter_event { name = "leakage.key.abc.runs"; value = 2 };
    ]
  in
  Export.jsonl ((header :: Export.span_events [ root ]) @ counters)

let test_merge_two_streams () =
  let m =
    Obs.Merge.of_files
      [ ("r.jsonl", mk_stream ~party:"R" ~skew_ns:0L);
        ("s.jsonl", mk_stream ~party:"S" ~skew_ns:1_000_000L) ]
  in
  Alcotest.(check (list string)) "one shared trace" [ "beef" ] m.Obs.Merge.traces;
  Alcotest.(check (list string)) "both parties labelled" [ "R"; "S" ]
    (List.map (fun p -> p.Obs.Merge.p_label) m.Obs.Merge.parties);
  Alcotest.(check int) "no orphans" 0 (Obs.Merge.total_orphans m);
  (* Clock alignment: S's handshake midpoint must now equal R's, so the
     1ms skew shows up as a -1ms shift on S. *)
  let s = List.find (fun p -> p.Obs.Merge.p_label = "S") m.Obs.Merge.parties in
  Alcotest.(check int64) "skew recovered" (-1_000_000L) s.Obs.Merge.p_offset_ns;
  (* Steps carry the wire-wait attribution. *)
  let root_step =
    List.find
      (fun st -> st.Obs.Merge.s_party = "R" && st.Obs.Merge.s_path = "party:R")
      m.Obs.Merge.steps
  in
  Alcotest.(check int64) "wire wait summed" 200_000L root_step.Obs.Merge.s_wire_ns;
  (* Zero-valued counters are dropped from attribution; leakage rows are
     de-duplicated across parties by max. *)
  Alcotest.(check (list (triple string string int))) "attribution skips zeros"
    [ ("R", "pool.items", 7) ]
    (Obs.Merge.attribution m);
  Alcotest.(check (list (pair string int))) "leakage deduped"
    [ ("leakage.key.abc.runs", 2) ]
    (Obs.Merge.leakage m)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_compare () =
  let c =
    Obs.Report.compare ~label:"x" ~predicted_ce:100. ~observed_ce:100.
      ~predicted_bits:1000. ~observed_bits:1050. ()
  in
  Alcotest.(check (float 0.)) "exact ce" 0. c.Obs.Report.ce_rel_error;
  Alcotest.(check (float 1e-9)) "5% bits" 0.05 c.Obs.Report.bits_rel_error;
  Alcotest.(check bool) "within default 10%" true c.Obs.Report.within_tolerance;
  let c =
    Obs.Report.compare ~tolerance:0.01 ~label:"x" ~predicted_ce:100. ~observed_ce:100.
      ~predicted_bits:1000. ~observed_bits:1050. ()
  in
  Alcotest.(check bool) "beyond tight tolerance" false c.Obs.Report.within_tolerance;
  let c =
    Obs.Report.compare ~label:"x" ~predicted_ce:0. ~observed_ce:3. ~predicted_bits:1.
      ~observed_bits:1. ()
  in
  Alcotest.(check bool) "zero prediction, nonzero observation" true
    (c.Obs.Report.ce_rel_error = infinity && not c.Obs.Report.within_tolerance)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "runtime",
        [
          Alcotest.test_case "disabled probes are no-ops" `Quick
            test_disabled_probes_are_noops;
          Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
          Alcotest.test_case "name/type clash" `Quick test_name_type_clash;
          Alcotest.test_case "same name, same cell" `Quick test_find_same_instrument;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bucket bounds shape" `Quick test_bucket_bounds_shape;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "no trace, no overhead" `Quick test_span_without_trace;
          Alcotest.test_case "one subtree per thread" `Quick test_spans_across_threads;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl span round-trip" `Quick test_jsonl_span_roundtrip;
          Alcotest.test_case "jsonl snapshot round-trip" `Quick
            test_jsonl_snapshot_roundtrip;
          Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus bucket boundaries" `Quick
            test_prometheus_bucket_boundaries;
          Alcotest.test_case "prometheus zero-observation series" `Quick
            test_prometheus_zero_observation_series;
          Alcotest.test_case "concurrent pool increments" `Quick
            test_concurrent_pool_increments;
          QCheck_alcotest.to_alcotest qcheck_attr_roundtrip;
          Alcotest.test_case "unicode escape parsing" `Quick
            test_unicode_escape_parsing;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraps at capacity" `Quick test_ring_wraps;
          Alcotest.test_case "trip reaches the sink" `Quick test_ring_trip_sink;
          Alcotest.test_case "records spans and counts" `Quick
            test_ring_records_spans_and_counts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "context stamps roots" `Quick test_context_stamps_roots;
          Alcotest.test_case "trace header round-trip" `Quick
            test_trace_header_roundtrip;
          Alcotest.test_case "chrome trace structure" `Quick
            test_chrome_trace_structure;
          Alcotest.test_case "merge two streams" `Quick test_merge_two_streams;
        ] );
      ("report", [ Alcotest.test_case "compare" `Quick test_report_compare ]);
    ]
