(* Tests for the Obs telemetry library: runtime gating, metric
   registry semantics, histogram bucketing, span nesting, and the
   exporter round-trips. *)

module Metrics = Obs.Metrics
module Span = Obs.Span
module Export = Obs.Export

let with_enabled = Obs.Runtime.with_enabled

(* ------------------------------------------------------------------ *)
(* Runtime gating                                                      *)
(* ------------------------------------------------------------------ *)

let test_disabled_probes_are_noops () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.off.counter" in
  let g = Metrics.gauge ~registry:r "t.off.gauge" in
  let h = Metrics.histogram ~registry:r "t.off.hist" in
  Obs.Runtime.disable ();
  Metrics.incr c;
  Metrics.set g 42.;
  Metrics.observe h 7.;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "histogram untouched" 0
    (match Metrics.find_histogram s "t.off.hist" with
    | Some h -> h.Metrics.count
    | None -> -1)

let test_with_enabled_restores () =
  Obs.Runtime.disable ();
  with_enabled (fun () ->
      Alcotest.(check bool) "enabled inside" true (Obs.Runtime.is_enabled ()));
  Alcotest.(check bool) "disabled after" false (Obs.Runtime.is_enabled ());
  Alcotest.(check bool) "restores even on raise" true
    (try
       with_enabled (fun () -> failwith "boom")
     with Failure _ -> not (Obs.Runtime.is_enabled ()))

(* ------------------------------------------------------------------ *)
(* Counters, gauges, reset                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.c" in
  let g = Metrics.gauge ~registry:r "t.g" in
  let h = Metrics.histogram ~registry:r "t.h" in
  with_enabled (fun () ->
      Metrics.incr c;
      Metrics.incr ~by:41 c;
      Metrics.set g 2.5;
      Metrics.observe h 3.);
  Alcotest.(check int) "accumulated" 42 (Metrics.counter_value c);
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge zeroed" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot ~registry:r () in
  (match Metrics.find_histogram s "t.h" with
  | Some h ->
      Alcotest.(check int) "histogram count zeroed" 0 h.Metrics.count;
      Alcotest.(check (float 0.)) "histogram sum zeroed" 0. h.Metrics.sum
  | None -> Alcotest.fail "histogram vanished on reset");
  (* Instruments stay registered and usable after reset. *)
  with_enabled (fun () -> Metrics.incr c);
  Alcotest.(check int) "still wired" 1 (Metrics.counter_value c)

let test_name_type_clash () =
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "t.clash" in
  Alcotest.check_raises "same name, other type"
    (Invalid_argument "Metrics: \"t.clash\" already registered with another type")
    (fun () -> ignore (Metrics.gauge ~registry:r "t.clash"))

let test_find_same_instrument () =
  let r = Metrics.create () in
  let c1 = Metrics.counter ~registry:r "t.same" in
  let c2 = Metrics.counter ~registry:r "t.same" in
  with_enabled (fun () ->
      Metrics.incr c1;
      Metrics.incr c2);
  Alcotest.(check int) "one cell behind both handles" 2 (Metrics.counter_value c1)

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundaries                                         *)
(* ------------------------------------------------------------------ *)

let bucket_count s name bound =
  match Metrics.find_histogram s name with
  | None -> Alcotest.fail ("no histogram " ^ name)
  | Some h -> (
      match List.assoc_opt bound h.Metrics.buckets with
      | Some n -> n
      | None -> Alcotest.fail (Printf.sprintf "no bucket with bound %g" bound))

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "t.buckets" in
  with_enabled (fun () ->
      List.iter (Metrics.observe h)
        [ 0.5; 1.0 (* both land in the 2^0 bucket *); 1.5; 2.0 (* 2^1 *);
          2.0001 (* 2^2 *); 1024. (* 2^10, exactly on the bound *) ]);
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "<= 1" 2 (bucket_count s "t.buckets" 1.);
  Alcotest.(check int) "<= 2" 2 (bucket_count s "t.buckets" 2.);
  Alcotest.(check int) "<= 4" 1 (bucket_count s "t.buckets" 4.);
  Alcotest.(check int) "<= 1024 (on the boundary)" 1 (bucket_count s "t.buckets" 1024.);
  (match Metrics.find_histogram s "t.buckets" with
  | Some hs ->
      Alcotest.(check int) "count" 6 hs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 1031.0001 hs.Metrics.sum;
      Alcotest.(check (float 0.)) "max" 1024. hs.Metrics.max_value
  | None -> assert false);
  (* Overflow: beyond the last power-of-two bound. *)
  with_enabled (fun () -> Metrics.observe h (Float.ldexp 1. 45));
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "overflow bucket" 1 (bucket_count s "t.buckets" infinity)

let test_bucket_bounds_shape () =
  let b = Metrics.bucket_bounds in
  Alcotest.(check (float 0.)) "first bound" 1. b.(0);
  Alcotest.(check bool) "strictly increasing powers of two" true
    (Array.for_all
       (fun i -> b.(i) = 2. *. b.(i - 1))
       (Array.init (Array.length b - 1) (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Span nesting                                                        *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let result, roots =
    with_enabled (fun () ->
        Span.collect (fun () ->
            Span.with_ "root" (fun () ->
                Span.with_ "child-a"
                  ~attrs:[ ("k", "v") ]
                  (fun () -> Span.with_ "grandchild" (fun () -> ()));
                Span.with_ "child-b" (fun () -> ()));
            17))
  in
  Alcotest.(check int) "result threads through" 17 result;
  Alcotest.(check int) "one root" 1 (List.length roots);
  let root = List.hd roots in
  Alcotest.(check string) "root name" "root" (Span.name root);
  let children = Span.children root in
  Alcotest.(check (list string)) "children in order" [ "child-a"; "child-b" ]
    (List.map Span.name children);
  let child_a = List.hd children in
  Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ]
    (Span.attrs child_a);
  Alcotest.(check (list string)) "grandchild under child-a" [ "grandchild" ]
    (List.map Span.name (Span.children child_a));
  (* Durations nest: parent >= each child. *)
  Alcotest.(check bool) "parent covers child" true
    (Span.dur_ns root >= Span.dur_ns child_a)

let test_span_exception_safe () =
  let roots =
    with_enabled (fun () ->
        Span.start_trace ();
        (try Span.with_ "outer" (fun () -> failwith "inner crash")
         with Failure _ -> ());
        Span.stop_trace ())
  in
  Alcotest.(check (list string)) "span closed despite raise" [ "outer" ]
    (List.map Span.name roots)

let test_span_without_trace () =
  (* No trace installed: with_ must be a pass-through. *)
  Alcotest.(check int) "plain call" 5 (Span.with_ "ghost" (fun () -> 5));
  Alcotest.(check bool) "not tracing" false (Span.tracing ())

let test_spans_across_threads () =
  let _, roots =
    with_enabled (fun () ->
        Span.collect (fun () ->
            let t =
              Thread.create
                (fun () -> Span.with_ "thread-root" (fun () -> Thread.yield ()))
                ()
            in
            Span.with_ "main-root" (fun () -> ());
            Thread.join t))
  in
  let names = List.sort String.compare (List.map Span.name roots) in
  Alcotest.(check (list string)) "one root per thread" [ "main-root"; "thread-root" ]
    names;
  let by_name n = List.find (fun s -> Span.name s = n) roots in
  Alcotest.(check bool) "distinct thread ids" true
    (Span.thread (by_name "main-root") <> Span.thread (by_name "thread-root"))

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let rec span_equal a b =
  Span.name a = Span.name b
  && Span.attrs a = Span.attrs b
  && Span.thread a = Span.thread b
  && Span.start_ns a = Span.start_ns b
  && Span.dur_ns a = Span.dur_ns b
  && List.length (Span.children a) = List.length (Span.children b)
  && List.for_all2 span_equal (Span.children a) (Span.children b)

let test_jsonl_span_roundtrip () =
  (* Hand-built forest with an int64 timestamp beyond 2^53 to make sure
     the raw-literal JSON numbers preserve it exactly. *)
  let leaf =
    Span.make ~name:"leaf" ~attrs:[ ("n", "3") ] ~thread:7
      ~start_ns:9_007_199_254_740_993L ~dur_ns:12L ~children:[]
  in
  let root =
    Span.make ~name:"root" ~attrs:[] ~thread:7 ~start_ns:9_007_199_254_740_990L
      ~dur_ns:100L ~children:[ leaf ]
  in
  let lone =
    Span.make ~name:"lone" ~attrs:[ ("x", "y"); ("z", "w") ] ~thread:8 ~start_ns:5L
      ~dur_ns:0L ~children:[]
  in
  let text = Export.jsonl (Export.span_events [ root; lone ]) in
  let rebuilt = Export.spans_of_events (Export.events_of_jsonl text) in
  Alcotest.(check int) "two roots" 2 (List.length rebuilt);
  Alcotest.(check bool) "forest preserved" true
    (List.for_all2 span_equal [ root; lone ] rebuilt)

let test_jsonl_snapshot_roundtrip () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.rt.counter" in
  let g = Metrics.gauge ~registry:r "t.rt.gauge" in
  let h = Metrics.histogram ~registry:r "t.rt.hist" in
  with_enabled (fun () ->
      Metrics.incr ~by:3 c;
      Metrics.set g 1.5;
      Metrics.observe h 2.;
      Metrics.observe h 300.);
  let events = Export.snapshot_events (Metrics.snapshot ~registry:r ()) in
  let rebuilt = Export.events_of_jsonl (Export.jsonl events) in
  Alcotest.(check int) "same number of events" (List.length events)
    (List.length rebuilt);
  Alcotest.(check string) "events identical" (Export.jsonl events)
    (Export.jsonl rebuilt)

let test_jsonl_rejects_garbage () =
  Alcotest.(check bool) "malformed line raises" true
    (try
       ignore (Export.events_of_jsonl "{\"type\":\"span\",\"id\":");
       false
     with Export.Parse_error _ | Export.Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Prometheus exporter                                                 *)
(* ------------------------------------------------------------------ *)

let test_prometheus_format () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.prom.counter" in
  let h = Metrics.histogram ~registry:r "t.prom.hist" in
  with_enabled (fun () ->
      Metrics.incr ~by:5 c;
      Metrics.observe h 3.);
  let text = Export.prometheus (Metrics.snapshot ~registry:r ()) in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (has "t_prom_counter 5");
  Alcotest.(check bool) "histogram count" true (has "t_prom_hist_count 1");
  Alcotest.(check bool) "+Inf bucket" true (has "le=\"+Inf\"")

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_compare () =
  let c =
    Obs.Report.compare ~label:"x" ~predicted_ce:100. ~observed_ce:100.
      ~predicted_bits:1000. ~observed_bits:1050. ()
  in
  Alcotest.(check (float 0.)) "exact ce" 0. c.Obs.Report.ce_rel_error;
  Alcotest.(check (float 1e-9)) "5% bits" 0.05 c.Obs.Report.bits_rel_error;
  Alcotest.(check bool) "within default 10%" true c.Obs.Report.within_tolerance;
  let c =
    Obs.Report.compare ~tolerance:0.01 ~label:"x" ~predicted_ce:100. ~observed_ce:100.
      ~predicted_bits:1000. ~observed_bits:1050. ()
  in
  Alcotest.(check bool) "beyond tight tolerance" false c.Obs.Report.within_tolerance;
  let c =
    Obs.Report.compare ~label:"x" ~predicted_ce:0. ~observed_ce:3. ~predicted_bits:1.
      ~observed_bits:1. ()
  in
  Alcotest.(check bool) "zero prediction, nonzero observation" true
    (c.Obs.Report.ce_rel_error = infinity && not c.Obs.Report.within_tolerance)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "runtime",
        [
          Alcotest.test_case "disabled probes are no-ops" `Quick
            test_disabled_probes_are_noops;
          Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
          Alcotest.test_case "name/type clash" `Quick test_name_type_clash;
          Alcotest.test_case "same name, same cell" `Quick test_find_same_instrument;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bucket bounds shape" `Quick test_bucket_bounds_shape;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "no trace, no overhead" `Quick test_span_without_trace;
          Alcotest.test_case "one subtree per thread" `Quick test_spans_across_threads;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl span round-trip" `Quick test_jsonl_span_roundtrip;
          Alcotest.test_case "jsonl snapshot round-trip" `Quick
            test_jsonl_snapshot_roundtrip;
          Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_format;
        ] );
      ("report", [ Alcotest.test_case "compare" `Quick test_report_compare ]);
    ]
