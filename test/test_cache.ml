(* Tests for the persistent encrypted-set cache (Psi.Ecache) and the
   run snapshots it pairs with: round-trip durability, LRU bounds, and
   — the load-bearing property — that a damaged file degrades to a
   miss/rebuild, never to serving a wrong value. *)

module Ecache = Cache.Ecache
module Snapshot = Wire.Snapshot

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psi-ecache-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let cache_file dir = Filename.concat dir "ecache.psi"
let value_of input = "value-of:" ^ input
let inputs n = List.init n (fun i -> Printf.sprintf "elt-%04d" i)

let fill dir ns xs =
  let c = Ecache.open_ ~dir () in
  List.iter (fun x -> Ecache.put c ~ns ~key_fp:"fp" x (value_of x)) xs;
  Ecache.close c;
  c

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* Every lookup must be either the exact stored value or a miss. *)
let check_never_wrong ~msg dir ns xs =
  let c = Ecache.open_ ~dir () in
  let ok =
    List.for_all
      (fun x ->
        match Ecache.find c ~ns ~key_fp:"fp" x with
        | None -> true
        | Some v -> String.equal v (value_of x))
      xs
  in
  Ecache.close c;
  Alcotest.(check bool) msg true ok

(* ------------------------------------------------------------------ *)
(* Round trip and stats                                                *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  let dir = fresh_dir () in
  let xs = inputs 20 in
  ignore (fill dir "enc" xs);
  let c = Ecache.open_ ~dir () in
  List.iter
    (fun x ->
      match Ecache.find c ~ns:"enc" ~key_fp:"fp" x with
      | Some v -> Alcotest.(check string) "reloaded value" (value_of x) v
      | None -> Alcotest.fail ("missing after reload: " ^ x))
    xs;
  let s = Ecache.stats c in
  Alcotest.(check int) "loaded" 20 s.Ecache.loaded;
  Alcotest.(check int) "hits" 20 s.Ecache.hits;
  Alcotest.(check int) "misses" 0 s.Ecache.misses;
  Alcotest.(check int) "entries" 20 s.Ecache.entries;
  (* Distinct coordinates never alias. *)
  Alcotest.(check bool) "other ns misses" true
    (Option.is_none (Ecache.find c ~ns:"dec" ~key_fp:"fp" "elt-0000"));
  Alcotest.(check bool) "other key misses" true
    (Option.is_none (Ecache.find c ~ns:"enc" ~key_fp:"fp2" "elt-0000"));
  Ecache.close c

let test_missing_file_is_empty () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~dir () in
  Alcotest.(check int) "empty" 0 (Ecache.entries c);
  Alcotest.(check bool) "miss" true
    (Option.is_none (Ecache.find c ~ns:"enc" ~key_fp:"fp" "x"));
  Ecache.close c

let test_closed_cache_raises () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~dir () in
  Ecache.close c;
  Ecache.close c;
  Alcotest.check_raises "find after close"
    (Invalid_argument "Ecache: cache is closed") (fun () ->
      ignore (Ecache.find c ~ns:"enc" ~key_fp:"fp" "x"))

(* ------------------------------------------------------------------ *)
(* Corruption: miss/rebuild, never a wrong value                       *)
(* ------------------------------------------------------------------ *)

let test_truncated_file () =
  let dir = fresh_dir () in
  let xs = inputs 10 in
  ignore (fill dir "enc" xs);
  let data = read_file (cache_file dir) in
  (* Cut at several depths, including mid-header and mid-entry. *)
  List.iter
    (fun keep ->
      let keep = min keep (String.length data) in
      write_file (cache_file dir) (String.sub data 0 keep);
      check_never_wrong ~msg:(Printf.sprintf "truncated at %d" keep) dir "enc" xs)
    [ 0; 4; 9; 15; String.length data / 2; String.length data - 3 ]

let test_flipped_checksum_byte () =
  let dir = fresh_dir () in
  let xs = inputs 5 in
  ignore (fill dir "enc" xs);
  let data = read_file (cache_file dir) in
  (* The file ends with the newest entry's 8-byte checksum: flipping
     its last byte must invalidate exactly that entry. *)
  let b = Bytes.of_string data in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
  write_file (cache_file dir) (Bytes.to_string b);
  let c = Ecache.open_ ~dir () in
  let s = Ecache.stats c in
  Alcotest.(check int) "one entry rejected" 4 s.Ecache.loaded;
  Alcotest.(check int) "counted corrupt" 1 s.Ecache.corrupt;
  Ecache.close c;
  check_never_wrong ~msg:"flipped checksum byte" dir "enc" xs

let test_corrupt_entry_skipped () =
  let dir = fresh_dir () in
  let xs = inputs 6 in
  ignore (fill dir "enc" xs);
  let data = read_file (cache_file dir) in
  (* Header is magic (8) + version (1); byte 13 sits inside the first
     entry's body. The frame stays intact, so later entries load. *)
  let b = Bytes.of_string data in
  Bytes.set b 13 (Char.chr (Char.code (Bytes.get b 13) lxor 0xFF));
  write_file (cache_file dir) (Bytes.to_string b);
  let c = Ecache.open_ ~dir () in
  let s = Ecache.stats c in
  Alcotest.(check int) "later entries survive" 5 s.Ecache.loaded;
  Alcotest.(check int) "counted corrupt" 1 s.Ecache.corrupt;
  Ecache.close c;
  check_never_wrong ~msg:"corrupt entry body" dir "enc" xs

let test_stale_version_header () =
  let dir = fresh_dir () in
  let xs = inputs 8 in
  ignore (fill dir "enc" xs);
  let data = read_file (cache_file dir) in
  let b = Bytes.of_string data in
  Bytes.set b 8 (Char.chr 99);
  write_file (cache_file dir) (Bytes.to_string b);
  let c = Ecache.open_ ~dir () in
  Alcotest.(check int) "stale version loads nothing" 0 (Ecache.entries c);
  Ecache.close c;
  check_never_wrong ~msg:"stale version" dir "enc" xs

let qcheck_case ?(count = 60) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* store → corrupt one byte anywhere → load ≡ miss (or the untouched
   original); any single-byte flip must never surface a wrong value. *)
let corrupt_one_byte_prop =
  qcheck_case ~name:"single byte flip never serves a wrong value"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos_seed, flip) ->
      let dir = fresh_dir () in
      let xs = inputs 7 in
      ignore (fill dir "enc" xs);
      let data = read_file (cache_file dir) in
      let b = Bytes.of_string data in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      write_file (cache_file dir) (Bytes.to_string b);
      let c = Ecache.open_ ~dir () in
      let ok =
        List.for_all
          (fun x ->
            match Ecache.find c ~ns:"enc" ~key_fp:"fp" x with
            | None -> true
            | Some v -> String.equal v (value_of x))
          xs
      in
      Ecache.close c;
      ok)

(* ------------------------------------------------------------------ *)
(* LRU bound and eviction order                                        *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction_order () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~max_entries:4 ~dir () in
  let put x = Ecache.put c ~ns:"enc" ~key_fp:"fp" x (value_of x) in
  let present x = Option.is_some (Ecache.find c ~ns:"enc" ~key_fp:"fp" x) in
  List.iter put [ "a"; "b"; "c"; "d" ];
  (* Touch "a": "b" becomes the least recently used. *)
  Alcotest.(check bool) "a cached" true (present "a");
  put "e";
  Alcotest.(check bool) "b evicted first" false (present "b");
  Alcotest.(check bool) "a survives (recently used)" true (present "a");
  Alcotest.(check bool) "c survives" true (present "c");
  Alcotest.(check bool) "e cached" true (present "e");
  put "f";
  (* "c" is now oldest: a,c,e touched above... order after touches:
     d < a < c < e (d untouched since insert). *)
  Alcotest.(check bool) "d evicted next" false (present "d");
  let s = Ecache.stats c in
  Alcotest.(check int) "evictions counted" 2 s.Ecache.evictions;
  Alcotest.(check int) "bounded" 4 s.Ecache.entries;
  Ecache.close c

let test_lru_survives_reload () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~max_entries:8 ~dir () in
  let put x = Ecache.put c ~ns:"enc" ~key_fp:"fp" x (value_of x) in
  List.iter put [ "a"; "b"; "c" ];
  ignore (Ecache.find c ~ns:"enc" ~key_fp:"fp" "a");
  Ecache.close c;
  (* Reload with a tight bound: recency order persisted, so "b" (the
     least recently used) is the one evicted. *)
  let c = Ecache.open_ ~max_entries:2 ~dir () in
  Alcotest.(check bool) "b evicted on reload" true
    (Option.is_none (Ecache.find c ~ns:"enc" ~key_fp:"fp" "b"));
  Alcotest.(check bool) "a kept on reload" true
    (Option.is_some (Ecache.find c ~ns:"enc" ~key_fp:"fp" "a"));
  Ecache.close c

(* ------------------------------------------------------------------ *)
(* Warm-up                                                             *)
(* ------------------------------------------------------------------ *)

let test_warm_computes_misses_only () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~dir () in
  Ecache.put c ~ns:"enc" ~key_fp:"fp" "a" (value_of "a");
  let computed = ref [] in
  let f x =
    computed := x :: !computed;
    value_of x
  in
  Ecache.warm c ~ns:"enc" ~key_fp:"fp" ~f [ "a"; "b"; "c"; "b" ];
  Alcotest.(check (list string)) "computes each miss once" [ "b"; "c" ]
    (List.sort String.compare !computed);
  let s = Ecache.stats c in
  Alcotest.(check int) "warm peeks don't count" 0 (s.Ecache.hits + s.Ecache.misses);
  Alcotest.(check int) "entries" 3 s.Ecache.entries;
  Ecache.close c

let test_concurrent_warm_two_pools () =
  let dir = fresh_dir () in
  let c = Ecache.open_ ~dir () in
  let xs = inputs 200 in
  (* Two parties warm overlapping ranges concurrently, each through its
     own forced pool (exercises the worker path even on 1-core hosts). *)
  let warm_with lo hi =
    let pool = Parallel.Pool.create ~force:true 2 in
    let slice = List.filteri (fun i _ -> i >= lo && i < hi) xs in
    Ecache.warm c ~pool ~ns:"h2g:test" ~key_fp:"" ~f:value_of slice;
    Parallel.Pool.shutdown pool
  in
  let t1 = Thread.create (fun () -> warm_with 0 150) () in
  let t2 = Thread.create (fun () -> warm_with 50 200) () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check int) "all entries present" 200 (Ecache.entries c);
  List.iter
    (fun x ->
      match Ecache.find c ~ns:"h2g:test" ~key_fp:"" x with
      | Some v -> Alcotest.(check string) "warmed value" (value_of x) v
      | None -> Alcotest.fail ("missing after concurrent warm: " ^ x))
    xs;
  Ecache.close c

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snap =
  {
    Snapshot.run_id = 7;
    entries =
      [
        {
          Snapshot.op = "intersect";
          key_fp = "abcd";
          s_elements = [ "a"; "b" ];
          r_elements = [ "b"; "c"; "d" ];
        };
        { Snapshot.op = "equijoin"; key_fp = "abcd"; s_elements = []; r_elements = [ "x" ] };
      ];
  }

let test_snapshot_round_trip () =
  match Snapshot.decode (Snapshot.encode snap) with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "run_id" 7 s.Snapshot.run_id;
      Alcotest.(check int) "entries" 2 (List.length s.Snapshot.entries);
      let e0 = List.hd s.Snapshot.entries in
      Alcotest.(check (list string)) "r_elements" [ "b"; "c"; "d" ] e0.Snapshot.r_elements

let snapshot_corruption_prop =
  qcheck_case ~name:"snapshot: any single byte flip is rejected"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos_seed, flip) ->
      let data = Bytes.of_string (Snapshot.encode snap) in
      let pos = pos_seed mod Bytes.length data in
      Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor flip));
      match Snapshot.decode (Bytes.to_string data) with
      | Error _ -> true
      | Ok _ -> false)

let test_snapshot_load_missing () =
  Alcotest.(check bool) "missing file" true
    (Option.is_none (Snapshot.load ~path:"/nonexistent/psi-snap-test"))

let () =
  Alcotest.run "cache"
    [
      ( "durability",
        [
          Alcotest.test_case "round trip through disk" `Quick test_round_trip;
          Alcotest.test_case "missing file is empty" `Quick test_missing_file_is_empty;
          Alcotest.test_case "closed cache raises" `Quick test_closed_cache_raises;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncated file" `Quick test_truncated_file;
          Alcotest.test_case "flipped checksum byte" `Quick test_flipped_checksum_byte;
          Alcotest.test_case "corrupt entry is skipped" `Quick test_corrupt_entry_skipped;
          Alcotest.test_case "stale version header" `Quick test_stale_version_header;
          corrupt_one_byte_prop;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "recency survives reload" `Quick test_lru_survives_reload;
        ] );
      ( "warm",
        [
          Alcotest.test_case "computes misses only" `Quick test_warm_computes_misses_only;
          Alcotest.test_case "concurrent warm from two pools" `Quick
            test_concurrent_warm_two_pools;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round trip" `Quick test_snapshot_round_trip;
          snapshot_corruption_prop;
          Alcotest.test_case "load missing" `Quick test_snapshot_load_missing;
        ] );
    ]
