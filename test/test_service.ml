(* Tests for the service layer (psid): control-protocol parsing and
   authentication, admission-control bounds, concurrent sessions with
   byte-identical-per-session transcripts, typed busy backpressure,
   graceful drain, and tenant cache isolation. *)

let group = Crypto.Group.named Crypto.Group.Test64

let source values =
  {
    Service.Tenant.values_for = (fun _attr -> values);
    records_for = (fun _attr -> List.map (fun v -> (v, "rec:" ^ v)) values);
  }

let tenant ?(secret = "s3cret") id values =
  { Service.Tenant.id; secret; source = source values }

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "psi-service-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let s_values = [ "ada"; "bob"; "eve"; "mallory"; "trent" ]
let r_values = [ "bob"; "carol"; "eve"; "zed" ]
let expected_intersection = [ "bob"; "eve" ]

let daemon ?(max_sessions = 8) ?(max_ops = 64) ?cache_root ?(tenants = []) () =
  let cfg = Service.Daemon.config group ~tenants in
  Service.Daemon.start
    { cfg with max_sessions; max_ops_per_session = max_ops; cache_root }

let connect ?seed ?nonce ?(tenant = "acme") ?(secret = "s3cret")
    ?(attr = "email") d =
  Service.Client.connect ?seed ?nonce ~timeout_s:10.0 ~host:"127.0.0.1"
    ~port:(Service.Daemon.port d) ~tenant ~secret ~attr group

let run_intersect c =
  match
    Service.Client.run c (Psi.Session.Intersect { s_values = []; r_values })
  with
  | Psi.Session.Values vs, _enc -> List.sort String.compare vs
  | _ -> Alcotest.fail "expected Values result"

(* ---------------- proto ---------------- *)

let test_proto_roundtrip () =
  let m = Service.Proto.hello ~tenant:"t" ~attr:"a" ~client_nonce:"n" in
  let v, t, a, n = Service.Proto.parse_hello m in
  Alcotest.(check int) "version" Service.Proto.version v;
  Alcotest.(check (list string)) "fields" [ "t"; "a"; "n" ] [ t; a; n ];
  Alcotest.(check int) "done" 42
    (Service.Proto.parse_done (Service.Proto.done_ ~encryptions:42));
  Alcotest.check_raises "busy raises" (Service.Busy "full") (fun () ->
      ignore (Service.Proto.parse_admitted (Service.Proto.busy ~reason:"full")));
  Alcotest.check_raises "denied raises" (Service.Denied "no") (fun () ->
      ignore (Service.Proto.parse_admitted (Service.Proto.denied ~reason:"no")));
  Alcotest.check_raises "wrong tag"
    (Wire.Protocol_error "psid: expected psid/ok, got psid/op") (fun () ->
      ignore (Service.Proto.parse_admitted (Service.Proto.op ~name:"x")))

let test_proto_auth_mac () =
  let mac = Service.Proto.auth_mac ~secret:"k" ~client_nonce:"cn" ~server_nonce:"sn" in
  let m1 = mac ~tenant:"ab" ~attr:"c" and m2 = mac ~tenant:"a" ~attr:"bc" in
  Alcotest.(check bool) "field framing prevents collisions" false
    (String.equal m1 m2);
  Alcotest.(check bool) "deterministic" true
    (String.equal m1 (mac ~tenant:"ab" ~attr:"c"));
  Alcotest.(check bool) "ct_equal accepts equal" true
    (Service.Proto.ct_equal m1 (String.sub m1 0 (String.length m1)));
  Alcotest.(check bool) "ct_equal rejects" false (Service.Proto.ct_equal m1 m2);
  Alcotest.(check bool) "ct_equal length mismatch" false
    (Service.Proto.ct_equal m1 (m1 ^ "x"))

(* ---------------- admission ---------------- *)

let test_admission_bounds () =
  let a = Service.Admission.create ~max_inflight:2 in
  Alcotest.(check bool) "1st" true (Service.Admission.try_admit a);
  Alcotest.(check bool) "2nd" true (Service.Admission.try_admit a);
  Alcotest.(check bool) "3rd rejected" false (Service.Admission.try_admit a);
  Service.Admission.release a;
  Alcotest.(check bool) "slot freed" true (Service.Admission.try_admit a);
  Service.Admission.release a;
  Service.Admission.release a;
  Alcotest.(check int) "idle" 0 (Service.Admission.inflight a);
  Alcotest.(check bool) "await_idle immediate" true
    (Service.Admission.await_idle ~timeout_s:1.0 a)

let test_admission_concurrent () =
  (* 16 threads hammer admit/release; the bound must never be exceeded
     and the final state must be idle. *)
  let a = Service.Admission.create ~max_inflight:4 in
  let over = Atomic.make false in
  let threads =
    List.init 16 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 200 do
              if Service.Admission.try_admit a then begin
                if Service.Admission.inflight a > 4 then Atomic.set over true;
                Thread.yield ();
                Service.Admission.release a
              end
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check bool) "bound held" false (Atomic.get over);
  Alcotest.(check int) "drained to idle" 0 (Service.Admission.inflight a)

(* ---------------- sessions ---------------- *)

let test_single_session () =
  let d = daemon ~tenants:[ tenant "acme" s_values ] () in
  let c = connect d in
  Alcotest.(check (list string)) "intersection" expected_intersection
    (run_intersect c);
  (match
     Service.Client.run c
       (Psi.Session.Intersect_size { s_values = []; r_values })
   with
  | Psi.Session.Size n, _ -> Alcotest.(check int) "size" 2 n
  | _ -> Alcotest.fail "expected Size result");
  (match
     Service.Client.run c (Psi.Session.Equijoin { s_records = []; r_values })
   with
  | Psi.Session.Matches ms, _ ->
      Alcotest.(check (list string)) "join keys" expected_intersection
        (List.sort String.compare (List.map fst ms));
      List.iter
        (fun (v, recs) ->
          Alcotest.(check (list string))
            ("records for " ^ v)
            [ "rec:" ^ v ] recs)
        ms
  | _ -> Alcotest.fail "expected Matches result");
  Service.Client.close c;
  Alcotest.(check bool) "drained" true (Service.Daemon.wait ~timeout_s:10.0 d)

let test_concurrent_sessions_correct_and_deterministic () =
  let d = daemon ~tenants:[ tenant "acme" s_values ] () in
  (* Reference: the same session params run with zero concurrency. *)
  let reference =
    let c = connect ~seed:"client-0" d in
    let r = run_intersect c in
    let view = Service.Client.view c in
    Service.Client.close c;
    (r, view)
  in
  let n = 6 in
  let results = Array.make n ([], []) in
  let errors = Atomic.make [] in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            try
              let c = connect ~seed:(Printf.sprintf "client-%d" i) d in
              let r = run_intersect c in
              let view = Service.Client.view c in
              Service.Client.close c;
              results.(i) <- (r, view)
            with e ->
              Atomic.set errors (Printexc.to_string e :: Atomic.get errors))
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check (list string)) "no client errors" [] (Atomic.get errors);
  Array.iteri
    (fun i (r, _) ->
      Alcotest.(check (list string))
        (Printf.sprintf "client %d correct" i)
        expected_intersection r)
    results;
  (* client-0 ran alone first and again among n-1 others: its view —
     every byte the server sent it — must be identical. *)
  let ref_result, ref_view = reference in
  let conc_result, conc_view = results.(0) in
  Alcotest.(check (list string)) "same result" ref_result conc_result;
  Alcotest.(check (list string))
    "byte-identical transcript under concurrency"
    (List.map Wire.Message.encode ref_view)
    (List.map Wire.Message.encode conc_view);
  ignore (Service.Daemon.wait ~timeout_s:10.0 d)

let test_busy_backpressure () =
  let d = daemon ~max_sessions:1 ~tenants:[ tenant "acme" s_values ] () in
  let c1 = connect d in
  (* c1 holds the only slot until closed. *)
  let busy_reason =
    match connect ~seed:"second" d with
    | c2 ->
        Service.Client.close c2;
        Alcotest.fail "second client should have been rejected"
    | exception Service.Busy reason -> reason
  in
  Alcotest.(check bool) "busy names the capacity" true
    (String.length busy_reason > 0);
  Alcotest.(check (list string)) "first session unaffected"
    expected_intersection (run_intersect c1);
  Service.Client.close c1;
  (* The slot frees when the server finishes the session; retry
     briefly rather than racing it. *)
  let rec retry n =
    match connect ~seed:"third" d with
    | c -> c
    | exception Service.Busy _ when n > 0 ->
        Thread.delay 0.05;
        retry (n - 1)
  in
  let c3 = retry 40 in
  Alcotest.(check (list string)) "after release" expected_intersection
    (run_intersect c3);
  Service.Client.close c3;
  ignore (Service.Daemon.wait ~timeout_s:10.0 d)

let test_op_budget () =
  let d = daemon ~max_ops:1 ~tenants:[ tenant "acme" s_values ] () in
  let c = connect d in
  Alcotest.(check (list string)) "first op ok" expected_intersection
    (run_intersect c);
  (match run_intersect c with
  | _ -> Alcotest.fail "second op should exceed the budget"
  | exception Service.Busy reason ->
      Alcotest.(check string) "typed budget rejection"
        "session op budget exhausted" reason);
  (* The session survives the rejection for a clean goodbye. *)
  Service.Client.close c;
  Alcotest.(check bool) "drained" true (Service.Daemon.wait ~timeout_s:10.0 d)

let test_drain () =
  let d = daemon ~tenants:[ tenant "acme" s_values ] () in
  let c = connect d in
  let finished = Atomic.make None in
  let worker =
    Thread.create
      (fun () ->
        (* Session already in flight when drain hits: must finish. *)
        Atomic.set finished (Some (run_intersect c)))
      ()
  in
  Service.Daemon.drain d;
  Alcotest.(check bool) "draining" true (Service.Daemon.draining d);
  (match connect ~seed:"late" d with
  | c2 ->
      Service.Client.close c2;
      Alcotest.fail "new session admitted while draining"
  | exception Service.Busy reason ->
      Alcotest.(check string) "drain reason" "draining" reason
  | exception Wire.Protocol_error _ ->
      (* Listener already closed — equally a refusal. *)
      ());
  Thread.join worker;
  Service.Client.close c;
  Alcotest.(check bool) "in-flight run completed" true
    (Atomic.get finished = Some expected_intersection);
  Alcotest.(check bool) "drained cleanly" true
    (Service.Daemon.wait ~timeout_s:10.0 d)

(* ---------------- auth ---------------- *)

let test_auth_rejections () =
  let d = daemon ~tenants:[ tenant "acme" s_values ] () in
  (match connect ~secret:"wrong" d with
  | c ->
      Service.Client.close c;
      Alcotest.fail "wrong secret accepted"
  | exception Service.Denied reason ->
      Alcotest.(check string) "wrong secret" "authentication failed" reason);
  (match connect ~tenant:"ghost" d with
  | c ->
      Service.Client.close c;
      Alcotest.fail "unknown tenant accepted"
  | exception Service.Denied reason ->
      (* Same message as a bad secret: no tenant-existence oracle. *)
      Alcotest.(check string) "unknown tenant" "authentication failed" reason);
  let c = connect d in
  Alcotest.(check (list string)) "good credentials still work"
    expected_intersection (run_intersect c);
  Service.Client.close c;
  ignore (Service.Daemon.wait ~timeout_s:10.0 d)

(* ---------------- tenants ---------------- *)

let test_tenant_cache_isolation () =
  let root = fresh_dir () in
  let t_a = tenant ~secret:"ka" "tenant-a" s_values in
  let t_b = tenant ~secret:"kb" "tenant/b" [ "only-b" ] in
  let reg = Service.Tenant.create ~cache_root:root [ t_a; t_b ] in
  let dir_a = Option.get (Service.Tenant.cache_dir reg t_a) in
  let dir_b = Option.get (Service.Tenant.cache_dir reg t_b) in
  Alcotest.(check bool) "distinct dirs" false (String.equal dir_a dir_b);
  Alcotest.(check bool) "ids sanitized for the filesystem" false
    (String.contains (Filename.basename dir_b) '/');
  let c_a = Option.get (Service.Tenant.ecache reg t_a) in
  let c_b = Option.get (Service.Tenant.ecache reg t_b) in
  Cache.Ecache.put c_a ~ns:"h2g:x" ~key_fp:"" "in-a" "out-a";
  Alcotest.(check (option string)) "A sees its entry" (Some "out-a")
    (Cache.Ecache.find c_a ~ns:"h2g:x" ~key_fp:"" "in-a");
  Alcotest.(check (option string)) "B cannot see A's entry" None
    (Cache.Ecache.find c_b ~ns:"h2g:x" ~key_fp:"" "in-a");
  Service.Tenant.close_all reg;
  Alcotest.(check bool) "A persisted under its own dir" true
    (Sys.file_exists (Filename.concat dir_a "ecache.psi"))

let test_tenant_sessions_end_to_end_with_cache () =
  let root = fresh_dir () in
  let d =
    daemon ~cache_root:root
      ~tenants:[ tenant ~secret:"ka" "a" s_values; tenant ~secret:"kb" "b" [ "zed" ] ]
      ()
  in
  let c_a = connect ~tenant:"a" ~secret:"ka" d in
  Alcotest.(check (list string)) "tenant a result" expected_intersection
    (run_intersect c_a);
  Service.Client.close c_a;
  let c_b = connect ~tenant:"b" ~secret:"kb" d in
  Alcotest.(check (list string)) "tenant b result" [ "zed" ] (run_intersect c_b);
  Service.Client.close c_b;
  (* Cross-tenant credentials must not work. *)
  (match connect ~tenant:"a" ~secret:"kb" d with
  | c ->
      Service.Client.close c;
      Alcotest.fail "tenant b's secret opened tenant a"
  | exception Service.Denied _ -> ());
  Alcotest.(check bool) "drained" true (Service.Daemon.wait ~timeout_s:10.0 d);
  Alcotest.(check bool) "tenant a cache persisted" true
    (Sys.file_exists (Filename.concat (Filename.concat root "a") "ecache.psi"));
  Alcotest.(check bool) "tenant b cache persisted" true
    (Sys.file_exists (Filename.concat (Filename.concat root "b") "ecache.psi"))

(* ---------------- metrics endpoint ---------------- *)

let test_metrics_endpoint () =
  let cfg =
    Service.Daemon.config group ~tenants:[ tenant "acme" s_values ]
  in
  let d = Service.Daemon.start { cfg with metrics_port = Some 0 } in
  let port = Option.get (Service.Daemon.metrics_port d) in
  let status, body = Service.Http.get ~host:"127.0.0.1" ~port ~path:"/healthz" () in
  Alcotest.(check int) "healthz status" 200 status;
  Alcotest.(check string) "healthz body" "ok\n" body;
  let c = connect d in
  Alcotest.(check (list string)) "session over metrics-enabled daemon"
    expected_intersection (run_intersect c);
  Service.Client.close c;
  let status, body = Service.Http.get ~host:"127.0.0.1" ~port ~path:"/metrics" () in
  Alcotest.(check int) "metrics status" 200 status;
  let has needle =
    Alcotest.(check bool) (needle ^ " exported") true
      (let nl = String.length needle and bl = String.length body in
       let rec scan i = i + nl <= bl && (String.sub body i nl = needle || scan (i + 1)) in
       scan 0)
  in
  has "service_sessions";
  has "service_admitted";
  has "service_inflight";
  let status, _ = Service.Http.get ~host:"127.0.0.1" ~port ~path:"/nope" () in
  Alcotest.(check int) "unknown path" 404 status;
  Service.Daemon.drain d;
  let status, body = Service.Http.get ~host:"127.0.0.1" ~port ~path:"/healthz" () in
  Alcotest.(check int) "healthz while draining" 200 status;
  Alcotest.(check string) "draining body" "draining\n" body;
  ignore (Service.Daemon.wait ~timeout_s:10.0 d)

(* ---------------- listener ---------------- *)

let test_listener_max_conns_and_stop () =
  let l = Service.Listener.create ~port:0 () in
  let served = Atomic.make 0 in
  let t =
    Thread.create
      (fun () ->
        Service.Listener.run ~max_conns:2 l (fun conn ->
            ignore (Atomic.fetch_and_add served 1);
            Service.Listener.close_conn conn))
      ()
  in
  let poke () =
    let fd = Service.Listener.connect ~host:"127.0.0.1" ~port:(Service.Listener.port l) in
    Unix.close fd
  in
  poke ();
  poke ();
  Thread.join t;
  Alcotest.(check int) "served max_conns then exited" 2 (Atomic.get served);
  (* stop wakes an idle run. *)
  let l2 = Service.Listener.create ~port:0 () in
  let t2 = Thread.create (fun () -> Service.Listener.run l2 (fun _ -> ())) () in
  Service.Listener.stop l2;
  Thread.join t2;
  Alcotest.(check bool) "stopped" true (Service.Listener.stopped l2)

let () =
  Obs.enable ();
  Alcotest.run "service"
    [
      ( "proto",
        [
          Alcotest.test_case "roundtrip and typed rejections" `Quick
            test_proto_roundtrip;
          Alcotest.test_case "auth mac framing" `Quick test_proto_auth_mac;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounds" `Quick test_admission_bounds;
          Alcotest.test_case "concurrent hammer" `Quick test_admission_concurrent;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "single session, three ops" `Quick
            test_single_session;
          Alcotest.test_case "concurrent sessions: correct + deterministic"
            `Quick test_concurrent_sessions_correct_and_deterministic;
          Alcotest.test_case "busy backpressure" `Quick test_busy_backpressure;
          Alcotest.test_case "per-session op budget" `Quick test_op_budget;
          Alcotest.test_case "drain finishes in-flight work" `Quick test_drain;
        ] );
      ( "auth",
        [ Alcotest.test_case "denied paths" `Quick test_auth_rejections ] );
      ( "tenants",
        [
          Alcotest.test_case "cache namespace isolation" `Quick
            test_tenant_cache_isolation;
          Alcotest.test_case "end-to-end with per-tenant caches" `Quick
            test_tenant_sessions_end_to_end_with_cache;
        ] );
      ( "metrics",
        [ Alcotest.test_case "http endpoint" `Quick test_metrics_endpoint ] );
      ( "listener",
        [
          Alcotest.test_case "max-conns and stop" `Quick
            test_listener_max_conns_and_stop;
        ] );
    ]
