(* Parser tests: one fixture per supported construct, checked by the
   strongest cheap invariant we have — pretty-print the parsed AST with
   [Ast.to_source] and reparse; the two trees must be structurally equal
   (positions ignored). A QCheck property then drives the same invariant
   over randomly generated ASTs, which exercises the pretty-printer's
   parenthesization against the parser's precedence table. *)

module Ast = Analysis.Ast
module Parser = Analysis.Parser

let parse src =
  try Parser.structure_of_string src
  with Parser.Error { line; col; message } ->
    Alcotest.failf "parse error at %d:%d: %s\nin:\n%s" line col message src

let reparses src =
  let s1 = parse src in
  let printed = Ast.to_source s1 in
  let s2 = parse printed in
  if not (Ast.equal_structure s1 s2) then
    Alcotest.failf "print/reparse mismatch\nsource:\n%s\nprinted:\n%s" src printed

(* ------------------------------------------------------------------ *)
(* Construct fixtures                                                  *)
(* ------------------------------------------------------------------ *)

let test_let_bindings () =
  reparses "let x = 1";
  reparses "let x = 1\nlet y = x";
  reparses "let rec f n = if n = 0 then 1 else n * f (n - 1)";
  reparses "let rec even n = n = 0 || odd (n - 1)\nand odd n = n > 0 && even (n - 1)";
  reparses "let f x =\n  let y = x + 1 in\n  let z = y * 2 in\n  z";
  reparses "let (a, b) = (1, 2)";
  reparses "let { x; y = z } = p";
  reparses "let _ = ignore 3"

let test_functions () =
  reparses "let f = fun x -> x";
  reparses "let f = fun x y -> x + y";
  reparses "let f ~label x = label + x";
  reparses "let f ?(opt = 3) x = opt + x";
  reparses "let f ?opt x = (opt, x)";
  reparses "let g = function 0 -> true | _ -> false";
  reparses "let apply f ~x = f ~x";
  reparses "let h = f ~x:1 ?y:None 2"

let test_match_and_try () =
  reparses "let f x = match x with 0 -> a | 1 -> b | _ -> c";
  reparses "let f x = match x with n when n > 0 -> n | n -> -n";
  reparses "let f x = match x with Some y -> y | None -> 0";
  reparses "let f x = match x with A | B -> 1 | C as c -> g c";
  reparses "let f x = match x with [] -> 0 | h :: t -> h + len t";
  reparses "let f x = match x with (a, b) -> a + b";
  reparses "let f x = match x with { a; b = c; _ } -> a + c";
  reparses "let f x = match x with exception Not_found -> 0 | v -> v";
  reparses "let f x = match x with lazy v -> v";
  reparses "let f x = try g x with Failure m -> h m | Not_found -> 0";
  reparses "let f x = match x with 'a' .. 'z' -> true | _ -> false"

let test_data_constructs () =
  reparses "let t = (1, 2, 3)";
  reparses "let v = Some (x + 1)";
  reparses "let v = Pair (a, b)";
  reparses "let r = { a = 1; b = 2 }";
  reparses "let r2 = { r with b = 3 }";
  reparses "let x = r.a + p.M.f";
  reparses "let () = r.a <- 4";
  reparses "let xs = [ 1; 2; 3 ]";
  reparses "let ys = [| 1; 2 |]";
  reparses "let h = a.(i)";
  reparses "let c = s.[i]";
  reparses "let () = a.(i) <- 3";
  reparses "let z = lazy (f x)";
  reparses "let () = assert (x > 0)"

let test_control_flow () =
  reparses "let f x = if x then 1 else 2";
  reparses "let f x = if x then g ()";
  reparses "let f () = a (); b (); c ()";
  reparses "let f n =\n  for i = 0 to n do\n    g i\n  done";
  reparses "let f n =\n  for i = n downto 0 do\n    g i\n  done";
  reparses "let f () =\n  while running () do\n    step ()\n  done"

let test_modules () =
  reparses "let f x = let open List in map g x";
  reparses "let f x = List.(map g x)";
  reparses "let f () = let module M = Make (X) in 0";
  reparses "let m = (module M)";
  reparses "module A = struct\n  let x = 1\nend";
  reparses "module B = A";
  reparses "module C = Make (A)";
  reparses "open A\nlet y = x";
  reparses "include A";
  reparses "type t = int\nlet x = 3";
  reparses "exception E of string\nlet f () = raise (E \"boom\")"

(* Shape checks: the AST really is what the analyses walk, not just a
   reprintable blob. *)
let test_shapes () =
  (match parse "let f ~a ?(b = 1) c = a + b + c" with
  | [ Ast.Ilet { bindings = [ { b_params; _ } ]; _ } ] ->
      let labels =
        List.map
          (fun (p : Ast.param) ->
            match p.label with
            | Ast.Nolabel -> "_"
            | Ast.Labelled l -> "~" ^ l
            | Ast.Optional l -> "?" ^ l)
          b_params
      in
      Alcotest.(check (list string)) "param labels" [ "~a"; "?b"; "_" ] labels
  | _ -> Alcotest.fail "unexpected structure for labeled params");
  (match parse "let f x = match x with 0 -> a | _ when g x -> b | _ -> c" with
  | [ Ast.Ilet { bindings = [ { b_params = [ _ ]; b_body; _ } ]; _ } ] -> (
      match b_body.Ast.desc with
      | Ast.Match (_, cases) ->
          Alcotest.(check int) "three cases" 3 (List.length cases);
          Alcotest.(check bool) "second case guarded" true
            (Option.is_some (List.nth cases 1).Ast.guard)
      | _ -> Alcotest.fail "body is not a match")
  | _ -> Alcotest.fail "unexpected structure for match");
  match parse "module M = struct\n  let inner = 1\nend" with
  | [ Ast.Imodule ("M", [ Ast.Ilet _ ], _) ] -> ()
  | _ -> Alcotest.fail "unexpected structure for module"

let test_positions () =
  match parse "let a = 1\nlet b =\n  f (x + 1)" with
  | [ Ast.Ilet { i_pos = p1; _ }; Ast.Ilet { bindings = [ { b_body; _ } ]; i_pos = p2; _ } ]
    ->
      Alcotest.(check int) "first item line" 1 p1.Ast.line;
      Alcotest.(check int) "second item line" 2 p2.Ast.line;
      Alcotest.(check int) "body expr line" 3 b_body.Ast.pos.Ast.line
  | _ -> Alcotest.fail "unexpected structure"

let test_errors () =
  let fails src =
    match Parser.structure_of_string src with
    | _ -> Alcotest.failf "expected a parse error for: %s" src
    | exception Parser.Error _ -> ()
  in
  fails "let = 3";
  fails "let f x = match x with";
  fails "let f x = (x";
  fails "let r = { a = 1;"

(* ------------------------------------------------------------------ *)
(* QCheck: generated AST -> to_source -> parse = same AST              *)
(* ------------------------------------------------------------------ *)

let gen_ast =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "acc"; "f" ] in
  (* [true]/[false] parse as [Var], not [Const] — keep them out. *)
  let const = oneofl [ "0"; "1"; "42"; "\"s\""; "'c'"; "()" ] in
  let label = oneofl [ "key"; "len" ] in
  let e d = Ast.{ desc = d; pos = Ast.no_pos } in
  let rec expr depth =
    if depth = 0 then
      oneof [ map (fun v -> e (Ast.Var [ v ])) var; map (fun c -> e (Ast.Const c)) const ]
    else
      let sub = expr (depth - 1) in
      let arg =
        oneof
          [
            map (fun a -> (Ast.Nolabel, a)) sub;
            map2 (fun l a -> (Ast.Labelled l, a)) label sub;
          ]
      in
      frequency
        [
          (2, map (fun v -> e (Ast.Var [ v ])) var);
          (2, map (fun c -> e (Ast.Const c)) const);
          ( 3,
            map2
              (fun f args -> e (Ast.Apply (e (Ast.Var [ f ]), args)))
              var
              (list_size (int_range 1 3) arg) );
          (2, map3 (fun c t f -> e (Ast.If (c, t, Some f))) sub sub sub);
          (1, map2 (fun c t -> e (Ast.If (c, t, None))) sub sub);
          (2, map2 (fun a b -> e (Ast.Tuple [ a; b ])) sub sub);
          ( 2,
            map3
              (fun v b body ->
                e
                  (Ast.Let
                     {
                       recursive = false;
                       bindings =
                         [
                           {
                             Ast.b_pat = Ast.Pvar (v, Ast.no_pos);
                             b_params = [];
                             b_body = b;
                             b_pos = Ast.no_pos;
                           };
                         ];
                       body;
                     }))
              var sub sub );
          ( 2,
            map2
              (fun v body ->
                e
                  (Ast.Fun
                     ( [ { Ast.label = Ast.Nolabel; pat = Ast.Pvar (v, Ast.no_pos); default = None } ],
                       body )))
              var sub );
          ( 2,
            map3
              (fun scrut a b ->
                e
                  (Ast.Match
                     ( scrut,
                       [
                         { Ast.lhs = Ast.Pconst "0"; guard = None; rhs = a };
                         { Ast.lhs = Ast.Pany; guard = None; rhs = b };
                       ] )))
              sub sub sub );
          (1, map2 (fun a b -> e (Ast.Sequence (a, b))) sub sub);
          (1, map (fun xs -> e (Ast.List_lit xs)) (list_size (int_range 0 3) sub));
          (1, map (fun a -> e (Ast.Construct ([ "Some" ], Some a))) sub);
          (1, return (e (Ast.Construct ([ "None" ], None))));
          (1, map (fun a -> e (Ast.Assert a)) sub);
          (1, map (fun a -> e (Ast.Lazy_ a)) sub);
          (1, map (fun a -> e (Ast.Field (a, [ "contents" ]))) sub);
          (1, map2 (fun a i -> e (Ast.Index_get (a, i))) sub sub);
        ]
  in
  let item =
    let* depth = int_range 1 4 in
    let* name = var in
    let* body = expr depth in
    return
      (Ast.Ilet
         {
           recursive = false;
           bindings =
             [
               {
                 Ast.b_pat = Ast.Pvar (name, Ast.no_pos);
                 b_params = [];
                 b_body = body;
                 b_pos = Ast.no_pos;
               };
             ];
           i_pos = Ast.no_pos;
         })
  in
  QCheck.Gen.list_size (QCheck.Gen.int_range 1 3) item

let arb_ast = QCheck.make ~print:Ast.to_source gen_ast

let prop_print_reparse =
  QCheck.Test.make ~name:"to_source output reparses to an equal AST" ~count:500 arb_ast
    (fun s ->
      let printed = Ast.to_source s in
      match Parser.structure_of_string printed with
      | reparsed -> Ast.equal_structure s reparsed
      | exception Parser.Error { line; col; message } ->
          QCheck.Test.fail_reportf "parse error at %d:%d: %s\nprinted:\n%s" line col
            message printed)

(* ------------------------------------------------------------------ *)

let tc = Alcotest.test_case

let () =
  Alcotest.run "parser"
    [
      ( "constructs",
        [
          tc "let bindings" `Quick test_let_bindings;
          tc "functions" `Quick test_functions;
          tc "match & try" `Quick test_match_and_try;
          tc "data" `Quick test_data_constructs;
          tc "control flow" `Quick test_control_flow;
          tc "modules" `Quick test_modules;
          tc "shapes" `Quick test_shapes;
          tc "positions" `Quick test_positions;
          tc "errors" `Quick test_errors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_print_reparse ]);
    ]
