(* The domain pool: parity with sequential map at every pool size,
   deterministic chunking, exception propagation, shutdown semantics,
   reentrancy, and concurrent use from systhreads (the wire runner
   drives both protocol parties as threads of one domain, so pools
   must tolerate two callers mapping at once). *)

module Pool = Parallel.Pool

let tc = Alcotest.test_case

(* [~force:true] spawns real worker domains even on a single-core host
   (where [create] would otherwise fall back to its sequential path),
   so these tests always exercise the queue/worker machinery. *)
let with_pool ?chunk size f =
  let p = Pool.create ?chunk ~force:true size in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Parity and ordering                                                 *)
(* ------------------------------------------------------------------ *)

let test_map_parity () =
  let f x = (x * 31) lxor 5 in
  List.iter
    (fun size ->
      List.iter
        (fun n ->
          let xs = List.init n (fun i -> i) in
          with_pool size (fun p ->
              Alcotest.(check (list int))
                (Printf.sprintf "size=%d n=%d" size n)
                (List.map f xs) (Pool.map p f xs)))
        [ 0; 1; 15; 16; 17; 33; 100 ])
    [ 1; 2; 4 ]

let test_map_qcheck =
  QCheck.Test.make ~count:100 ~name:"Pool.map = List.map at every pool size"
    QCheck.(pair (small_list small_int) (int_range 1 4))
    (fun (xs, size) ->
      with_pool size (fun p ->
          Pool.map p (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs))

(* Chunk-level map: same boundaries as [map], so for a pure
   length-preserving [f] the results equal [f xs] at every pool size;
   a chunk body that changes the length is rejected. *)
let test_map_chunks () =
  let f chunk = List.map (fun x -> (x * 7) + 1) chunk in
  List.iter
    (fun size ->
      List.iter
        (fun n ->
          let xs = List.init n (fun i -> i) in
          with_pool size (fun p ->
              Alcotest.(check (list int))
                (Printf.sprintf "size=%d n=%d" size n)
                (f xs) (Pool.map_chunks p f xs)))
        [ 0; 1; 15; 16; 17; 33; 100 ])
    [ 1; 2; 4 ];
  with_pool 2 (fun p ->
      Alcotest.(check bool) "length change rejected" true
        (try
           ignore (Pool.map_chunks p (fun chunk -> List.tl chunk)
                     (List.init 20 Fun.id));
           false
         with Invalid_argument _ -> true))

let test_map_reduce () =
  let xs = List.init 100 (fun i -> i + 1) in
  List.iter
    (fun size ->
      with_pool size (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "sum at size=%d" size)
            (List.fold_left ( + ) 0 xs)
            (Pool.map_reduce p ~map:Fun.id ~combine:( + ) ~init:0 xs)))
    [ 1; 2; 4 ];
  with_pool 2 (fun p ->
      Alcotest.(check int) "empty list is init" 42
        (Pool.map_reduce p ~map:Fun.id ~combine:( + ) ~init:42 []))

(* The seed derivations must run on the caller in chunk order, so a
   stateful seed source (like a DRBG) is consumed identically at every
   pool size. *)
let test_map_seeded_deterministic () =
  let run size =
    let counter = ref 0 in
    let seed _chunk_index =
      incr counter;
      !counter
    in
    let xs = List.init 70 (fun i -> i) in
    let r = with_pool size (fun p -> Pool.map_seeded p ~seed (fun s x -> (s, x)) xs) in
    (r, !counter)
  in
  let r1, c1 = run 1 in
  List.iter
    (fun size ->
      let r, c = run size in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "results at size=%d" size)
        r1 r;
      Alcotest.(check int) (Printf.sprintf "seed draws at size=%d" size) c1 c)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun size ->
      with_pool size (fun p ->
          match Pool.map p (fun x -> if x = 37 then raise (Boom x) else x)
                  (List.init 64 (fun i -> i))
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom 37 -> ());
      (* The pool survives a failed map and stays usable. *)
      with_pool size (fun p ->
          (try ignore (Pool.map p (fun _ -> raise Exit) [ 1; 2; 3 ]) with Exit -> ());
          Alcotest.(check (list int)) "pool usable after failure" [ 2; 4; 6 ]
            (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ])))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let test_unforced_create_degrades () =
  (* Without [~force] a single-core host gets a sequential pool; on a
     multicore host this is a real pool. Either way the contract holds. *)
  let p = Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.(check bool) "size is 3 (real) or 1 (sequential fallback)" true
        (List.mem (Pool.size p) [ 1; 3 ]);
      Alcotest.(check (list int)) "map" [ 0; 2; 4 ]
        (Pool.map p (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_shutdown_idempotent () =
  let p = Pool.create ~force:true 2 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* Shutting down an already-shut pool is a no-op, using it raises. *)
  (match Pool.map p Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  (* Sequential pools follow the same contract. *)
  let s = Pool.create 1 in
  Pool.shutdown s;
  match Pool.map s Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown (sequential)"
  | exception Invalid_argument _ -> ()

let test_registry_replaces_closed () =
  let p = Pool.get 2 in
  Pool.shutdown p;
  let q = Pool.get 2 in
  Alcotest.(check (list int)) "registry hands out a live pool" [ 1; 2 ]
    (Pool.map q Fun.id [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Reentrancy and concurrent callers                                   *)
(* ------------------------------------------------------------------ *)

let test_nested_map_runs_inline () =
  with_pool 2 (fun p ->
      let r =
        Pool.map p
          (fun x -> List.fold_left ( + ) 0 (Pool.map p (fun y -> x * y) [ 1; 2; 3 ]))
          (List.init 40 (fun i -> i))
      in
      Alcotest.(check (list int)) "nested map"
        (List.init 40 (fun i -> 6 * i))
        r)

let test_concurrent_systhread_callers () =
  (* Both protocol parties hammer one pool from plain threads, as the
     in-process wire runner does. *)
  with_pool 2 (fun p ->
      let xs = List.init 200 (fun i -> i) in
      let expected = List.map (fun x -> x + 7) xs in
      let results = Array.make 4 [] in
      let threads =
        Array.init 4 (fun t ->
            Thread.create
              (fun () -> results.(t) <- Pool.map p (fun x -> x + 7) xs)
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun t r ->
          Alcotest.(check (list int)) (Printf.sprintf "thread %d" t) expected r)
        results)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          tc "parity across sizes and lengths" `Quick test_map_parity;
          QCheck_alcotest.to_alcotest test_map_qcheck;
          tc "map_chunks" `Quick test_map_chunks;
          tc "map_reduce" `Quick test_map_reduce;
          tc "map_seeded deterministic" `Quick test_map_seeded_deterministic;
        ] );
      ( "exceptions",
        [ tc "propagates and pool survives" `Quick test_exception_propagates ] );
      ( "shutdown",
        [
          tc "unforced create degrades gracefully" `Quick test_unforced_create_degrades;
          tc "idempotent, use-after raises" `Quick test_shutdown_idempotent;
          tc "registry replaces closed pools" `Quick test_registry_replaces_closed;
        ] );
      ( "reentrancy",
        [
          tc "nested map runs inline" `Quick test_nested_map_runs_inline;
          tc "concurrent systhread callers" `Quick test_concurrent_systhread_callers;
        ] );
    ]
