(* psid: the PSI service daemon. Serves many concurrent client
   sessions (psi_demo service / Service.Client) over loopback TCP,
   with admission control, per-tenant encrypted-work caches, an HTTP
   /metrics endpoint, and graceful drain on SIGTERM/SIGINT.

   Examples:
     psid serve --port 7100 --metrics-port 7101 \
          --tenant hospital:s3cret:ts.csv --cache-root /var/tmp/psid
     psid scrape --port 7101 --path /metrics
*)

open Cmdliner

let group_names =
  List.map (fun n -> (Crypto.Group.name_to_string n, n)) Crypto.Group.all_names

let group_arg =
  let doc =
    Printf.sprintf "Named group to use (%s)."
      (String.concat ", " (List.map fst group_names))
  in
  Arg.(value & opt (enum group_names) Crypto.Group.Test256 & info [ "group" ] ~doc)

(* --tenant ID:SECRET:CSV — the daemon-side tenant registry. The CSV
   is the tenant's private table (party S's data); column choice comes
   from each session's requested attribute. *)
let tenant_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ id; secret; csv ] when id <> "" && secret <> "" ->
        if Sys.file_exists csv then Ok (id, secret, csv)
        else Error (`Msg (Printf.sprintf "--tenant %s: no such file %s" id csv))
    | _ -> Error (`Msg (Printf.sprintf "--tenant expects ID:SECRET:CSV, got %S" s))
  in
  let print fmt (id, _secret, csv) = Format.fprintf fmt "%s:<secret>:%s" id csv in
  Arg.conv (parse, print)

let tenants_arg =
  Arg.(non_empty & opt_all tenant_conv []
       & info [ "tenant" ] ~docv:"ID:SECRET:CSV"
           ~doc:"Register a tenant (repeatable): its id, the shared secret \
                 clients must prove knowledge of, and the CSV table holding \
                 this tenant's private data. The daemon plays the paper's \
                 sender S with that table; it learns nothing about client \
                 values beyond their count.")

(* A tenant's CSV is loaded once at startup; sessions only index into
   it. Loading per-session would let one slow disk stall the admission
   window for everyone. *)
let source_of_csv csv =
  let table = Minidb.Csv.load csv in
  let values_for attr =
    List.map Minidb.Value.key (Minidb.Table.distinct_values table attr)
  in
  let records_for attr =
    List.filter_map
      (fun row ->
        let v = Minidb.Table.get table row attr in
        if v = Minidb.Value.Null then None
        else
          Some
            ( Minidb.Value.key v,
              String.concat ","
                (Array.to_list (Array.map Minidb.Value.to_string row)) ))
      (Minidb.Table.rows table)
  in
  { Service.Tenant.values_for; records_for }

let log_to_stderr line = Printf.eprintf "psid: %s\n%!" line

let run_serve group port metrics_port seed jobs max_sessions max_ops timeout
    cache_root cache_entries tenant_specs =
  Service.Log.set_sink (Some log_to_stderr);
  Obs.Ring.install ();
  Obs.Ring.set_sink
    (Some
       (fun events ->
         prerr_string (Format.asprintf "%a" Obs.Ring.pp events)));
  Obs.Ring.install_signal Sys.sigusr1;
  let tenants =
    List.map
      (fun (id, secret, csv) ->
        { Service.Tenant.id; secret; source = source_of_csv csv })
      tenant_specs
  in
  let cfg =
    {
      (Service.Daemon.config (Crypto.Group.named group) ~tenants) with
      port;
      metrics_port;
      workers = jobs;
      max_sessions;
      max_ops_per_session = max_ops;
      recv_timeout_s = (if timeout <= 0. then None else Some timeout);
      seed;
      cache_root;
      cache_entries;
    }
  in
  let d = Service.Daemon.start cfg in
  (* stdout lines are the scriptable interface (tools/service_smoke.sh
     greps them); the operational narrative goes to stderr. *)
  Printf.printf "psid: listening on port %d\n%!" (Service.Daemon.port d);
  Option.iter
    (fun p -> Printf.printf "psid: metrics on port %d\n%!" p)
    (Service.Daemon.metrics_port d);
  let on_signal _ = Service.Daemon.drain d in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not (Service.Daemon.draining d) do
    Thread.delay 0.2
  done;
  let clean = Service.Daemon.wait ~timeout_s:30.0 d in
  Printf.printf "psid: drained\n%!";
  exit (if clean then 0 else 1)

let serve_cmd =
  let port =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Protocol port on loopback (0 picks a free one; the bound \
                   port is printed on stdout).")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"Serve HTTP GET /metrics (Prometheus text) and /healthz on \
                   this loopback port (0 = ephemeral). Off by default.")
  in
  let seed =
    Arg.(value & opt string "psid" & info [ "seed" ]
         ~doc:"Key-derivation seed. All server-side session keys derive from \
               it deterministically; rotate it to unlink sessions across \
               daemon restarts (see docs/SERVICE.md).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains for each session's bulk crypto. Total \
                   parallelism is bounded by --max-sessions * N; keep the \
                   product near the core count.")
  in
  let max_sessions =
    Arg.(value & opt int 8
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Admission bound: sessions allowed in flight at once. The \
                   N+1st client is refused with a typed busy response instead \
                   of queueing.")
  in
  let max_ops =
    Arg.(value & opt int 64
         & info [ "max-ops" ] ~docv:"N"
             ~doc:"Operations one session may run before further psid/op \
                   requests are refused (busy).")
  in
  let timeout =
    Arg.(value & opt float 30.
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Per-message receive deadline inside a session; 0 disables \
                   (a stalled client then occupies its admission slot \
                   forever — don't).")
  in
  let cache_root =
    Arg.(value & opt (some string) None
         & info [ "cache-root" ] ~docv:"DIR"
             ~doc:"Per-tenant encrypted-work caches under $(docv)/<tenant>/. \
                   Off by default; see the linkability discussion in \
                   docs/SERVICE.md before enabling.")
  in
  let cache_entries =
    Arg.(value & opt int 65536
         & info [ "cache-entries" ] ~docv:"N"
             ~doc:"Per-tenant cache LRU bound.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the PSI service daemon until SIGTERM.")
    Term.(const run_serve $ group_arg $ port $ metrics_port $ seed $ jobs
          $ max_sessions $ max_ops $ timeout $ cache_root $ cache_entries
          $ tenants_arg)

let run_scrape host port path =
  match Service.Http.get ~host ~port ~path () with
  | 200, body ->
      print_string body;
      exit 0
  | status, body ->
      Printf.eprintf "psid scrape: HTTP %d\n%s" status body;
      exit 1
  | exception Wire.Protocol_error msg ->
      Printf.eprintf "psid scrape: %s\n" msg;
      exit 1

let scrape_cmd =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Endpoint host.") in
  let port =
    Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"The daemon's --metrics-port.")
  in
  let path =
    Arg.(value & opt string "/metrics" & info [ "path" ] ~doc:"Path to fetch.")
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:"Fetch the daemon's /metrics (or /healthz) without needing curl.")
    Term.(const run_scrape $ host $ port $ path)

let main_cmd =
  Cmd.group
    (Cmd.info "psid" ~version:"1.0.0"
       ~doc:"Multi-session PSI service daemon (SIGMOD 2003 protocols as a \
             service)")
    [ serve_cmd; scrape_cmd ]

let () = exit (Cmd.eval main_cmd)
