(* psi_lint — crypto-hygiene static analyzer for the protocol stack.

   Scans lib/ and bin/ (by default) for the rule families documented in
   docs/STATIC_ANALYSIS.md: CT01 (polymorphic comparison in
   secret-bearing modules), RNG01 (ad-hoc randomness), EXN01 (exception
   swallowing), WIRE01 (unbounded length-prefixed reads), DBG01 (stray
   console output / assert false in libraries). Exit status 0 iff there
   are no non-baselined findings and no errors. *)

let usage = "psi_lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline] [--list-rules] [DIR...]"

let root = ref "."
let baseline_path = ref "tools/lint_baseline.txt"
let json_out = ref ""
let update_baseline = ref false
let list_rules = ref false
let dirs = ref []

let spec =
  [
    ("--root", Arg.Set_string root, "DIR repository root (default .)");
    ( "--baseline",
      Arg.Set_string baseline_path,
      "FILE baseline file, relative to root (default tools/lint_baseline.txt)" );
    ( "--json",
      Arg.Set_string json_out,
      "FILE write a JSONL report (findings + summary) to FILE, '-' for stdout" );
    ( "--update-baseline",
      Arg.Set update_baseline,
      " rewrite the baseline from current findings (keeps existing justifications, \
       marks new entries TODO)" );
    ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
  ]

(* Collect RULE.ml files under [dir] (repo-relative), skipping build and
   hidden directories. Deterministic order. *)
let rec collect acc dir =
  let entries = try Sys.readdir (Filename.concat !root dir) with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || name.[0] = '_' then acc
      else begin
        let rel = if String.equal dir "" then name else dir ^ "/" ^ name in
        let full = Filename.concat !root rel in
        if Sys.is_directory full then collect acc rel
        else if Filename.check_suffix name ".ml" then rel :: acc
        else acc
      end)
    acc entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let () =
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Analysis.Rule.t) -> Printf.printf "%s  %s\n" r.id r.summary)
      Analysis.Driver.rules;
    exit 0
  end;
  let scan_dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let files = List.concat_map (fun d -> List.rev (collect [] d)) scan_dirs in
  let sources =
    List.map
      (fun rel ->
        { Analysis.Driver.path = rel; content = read_file (Filename.concat !root rel) })
      files
  in
  let baseline_file = Filename.concat !root !baseline_path in
  let baseline =
    if Sys.file_exists baseline_file then
      match Analysis.Suppress.Baseline.parse (read_file baseline_file) with
      | Ok b -> b
      | Error e ->
          Printf.eprintf "psi_lint: %s: %s\n" !baseline_path e;
          exit 2
    else Analysis.Suppress.Baseline.empty
  in
  let outcome = Analysis.Driver.analyze ~baseline sources in
  if !update_baseline then begin
    let entries = Analysis.Driver.updated_baseline outcome in
    write_file baseline_file (Analysis.Suppress.Baseline.render entries);
    Printf.printf "psi_lint: wrote %d entr%s to %s\n" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      !baseline_path;
    exit 0
  end;
  (match !json_out with
  | "" -> ()
  | "-" -> print_string (Analysis.Report.jsonl outcome)
  | path -> write_file path (Analysis.Report.jsonl outcome));
  Format.printf "%a@?" Analysis.Report.pp_console outcome;
  exit (if Analysis.Driver.clean outcome then 0 else 1)
