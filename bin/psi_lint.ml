(* psi_lint — crypto-hygiene static analyzer for the protocol stack.

   Scans lib/ and bin/ (by default) for the rule families documented in
   docs/STATIC_ANALYSIS.md. Token rules (CT01, RNG01, EXN01, WIRE01,
   DBG01, DOM01, OBS01) run per file over the token stream; semantic
   rules (SEC01, CT02, RACE01) run after the parse/resolve/taint phases
   over the whole program at once. Exit status 0 iff there are no
   non-baselined findings and no errors.

   --selfcheck DIR runs the engine over the seeded-bad fixture corpus:
   every `(* lint-expect: RULE *)` comment in DIR must be matched by a
   finding of that rule on that line, and every finding must be
   expected — the corpus is the executable spec of the rules.

   --bench-out / --check-bench write and verify BENCH_lint.json
   (per-phase and per-rule wall times plus counts); the @bench-gate
   alias uses the latter so analysis runtime is regression-gated. *)

let usage =
  "psi_lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline] \
   [--list-rules] [--selfcheck DIR] [--bench-out FILE] [--check-bench FILE] [DIR...]"

let root = ref "."
let baseline_path = ref "tools/lint_baseline.txt"
let json_out = ref ""
let update_baseline = ref false
let list_rules = ref false
let selfcheck_root = ref ""
let bench_out = ref ""
let check_bench = ref ""
let dirs = ref []

let spec =
  [
    ("--root", Arg.Set_string root, "DIR repository root (default .)");
    ( "--baseline",
      Arg.Set_string baseline_path,
      "FILE baseline file, relative to root (default tools/lint_baseline.txt)" );
    ( "--json",
      Arg.Set_string json_out,
      "FILE write a JSONL report (header + findings + summary) to FILE, '-' for stdout" );
    ( "--update-baseline",
      Arg.Set update_baseline,
      " rewrite the baseline from current findings (keeps existing justifications, \
       marks new entries TODO)" );
    ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
    ( "--selfcheck",
      Arg.Set_string selfcheck_root,
      "DIR verify every lint-expect annotation in the fixture corpus at DIR fires" );
    ( "--bench-out",
      Arg.Set_string bench_out,
      "FILE write BENCH_lint.json-style timing/counts to FILE" );
    ( "--check-bench",
      Arg.Set_string check_bench,
      "FILE compare this run's counts and wall time against a committed \
       BENCH_lint.json" );
  ]

(* Collect RULE.ml files under [dir] (repo-relative), skipping build and
   hidden directories. Deterministic order. *)
let rec collect acc dir =
  let entries = try Sys.readdir (Filename.concat !root dir) with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || name.[0] = '_' then acc
      else begin
        let rel = if String.equal dir "" then name else dir ^ "/" ^ name in
        let full = Filename.concat !root rel in
        if Sys.is_directory full then collect acc rel
        else if Filename.check_suffix name ".ml" then rel :: acc
        else acc
      end)
    acc entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let sources_of files =
  List.map
    (fun rel ->
      { Analysis.Driver.path = rel; content = read_file (Filename.concat !root rel) })
    files

(* ------------------------------------------------------------------ *)
(* --list-rules                                                        *)
(* ------------------------------------------------------------------ *)

let print_rules () =
  List.iter
    (fun (e : Analysis.Registry.entry) ->
      Printf.printf "%-7s %-9s %s\n        scope: %s\n        %s\n" e.e_id
        (match e.e_kind with `Token -> "token" | `Semantic -> "semantic")
        e.e_summary e.e_scope e.e_description)
    Analysis.Registry.entries

(* ------------------------------------------------------------------ *)
(* --selfcheck                                                         *)
(* ------------------------------------------------------------------ *)

(* Expected findings are written next to the seeded violation:
   [(* lint-expect: SEC01 *)] (comma-separated for several rules) on
   the offending line. *)
let expectations_of ~path content =
  let marker = "lint-expect:" in
  let find_marker text =
    let n = String.length text and m = String.length marker in
    let rec go i =
      if i + m > n then None
      else if String.equal (String.sub text i m) marker then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  match Analysis.Lexer.tokens_of_string ~file:path content with
  | exception Analysis.Lexer.Error _ -> []
  | toks ->
      List.concat_map
        (fun (t : Analysis.Lexer.token) ->
          if t.kind <> Analysis.Lexer.Comment then []
          else
            match find_marker t.text with
            | None -> []
            | Some start ->
                let rest = String.sub t.text start (String.length t.text - start) in
                let rest =
                  match String.index_opt rest '*' with
                  | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' ->
                      String.sub rest 0 j
                  | _ -> rest
                in
                String.split_on_char ',' rest
                |> List.filter_map (fun r ->
                       match String.trim r with
                       | "" -> None
                       | r -> Some (path, t.line, r)))
        toks

let selfcheck dir =
  root := dir;
  let files = List.rev (collect [] "") in
  if files = [] then begin
    Printf.eprintf "psi_lint: selfcheck: no fixture files under %s\n" dir;
    exit 2
  end;
  let sources = sources_of files in
  let expected =
    List.concat_map
      (fun (s : Analysis.Driver.source) -> expectations_of ~path:s.path s.content)
      sources
  in
  if expected = [] then begin
    Printf.eprintf "psi_lint: selfcheck: no lint-expect annotations under %s\n" dir;
    exit 2
  end;
  let outcome =
    Analysis.Driver.analyze ~sem_rules:Analysis.Registry.sem_rules
      ~baseline:Analysis.Suppress.Baseline.empty sources
  in
  List.iter (fun e -> Printf.eprintf "psi_lint: selfcheck: error: %s\n" e) outcome.errors;
  let found =
    List.map
      (fun (f : Analysis.Rule.finding) -> (f.file, f.line, f.rule))
      (Analysis.Driver.new_findings outcome)
  in
  let failures = ref (List.length outcome.errors) in
  List.iter
    (fun ((file, line, rule) as e) ->
      if List.mem e found then Printf.printf "ok   %s:%d: %s\n" file line rule
      else begin
        Printf.printf "MISS %s:%d: seeded %s violation not reported\n" file line rule;
        incr failures
      end)
    expected;
  List.iter
    (fun ((file, line, rule) as f) ->
      if not (List.mem f expected) then begin
        Printf.printf "EXTRA %s:%d: unexpected %s finding\n" file line rule;
        incr failures
      end)
    found;
  Printf.printf "psi_lint: selfcheck: %d expectation%s, %d finding%s, %d failure%s\n"
    (List.length expected)
    (if List.length expected = 1 then "" else "s")
    (List.length found)
    (if List.length found = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  exit (if !failures = 0 then 0 else 1)

(* ------------------------------------------------------------------ *)
(* --check-bench                                                       *)
(* ------------------------------------------------------------------ *)

module Json = Obs.Export.Json

let bench_compare path (outcome : Analysis.Driver.outcome) =
  let j =
    match Json.of_string (read_file path) with
    | j -> j
    | exception Json.Parse_error msg ->
        Printf.eprintf "psi_lint: %s: %s\n" path msg;
        exit 2
  in
  let failures = ref 0 in
  let check label ok detail =
    Printf.printf "%s %-40s %s\n" (if ok then "ok  " else "FAIL") label detail;
    if not ok then incr failures
  in
  (match Option.bind (Json.member "version" j) Json.to_i with
  | Some v ->
      check "bench schema version"
        (v = Analysis.Report.json_version)
        (Printf.sprintf "%d = %d" v Analysis.Report.json_version)
  | None -> check "bench schema version" false "missing");
  (* Counts are box-independent: a fresh run must reproduce them
     exactly, per rule. *)
  let committed_rules =
    match Json.member "rules" j with Some (Json.Obj o) -> o | _ -> []
  in
  List.iter
    (fun (id, n, b, s) ->
      match List.assoc_opt id committed_rules with
      | None ->
          check (id ^ " counts") false
            "not in committed file (regenerate with --bench-out)"
      | Some r ->
          let f field = Option.bind (Json.member field r) Json.to_i in
          let ok =
            f "new" = Some n && f "baselined" = Some b && f "suppressed" = Some s
          in
          check (id ^ " counts") ok
            (Printf.sprintf "new=%d baselined=%d suppressed=%d" n b s))
    (Analysis.Report.tally outcome);
  (* Wall clock is box-dependent: compare total analysis time within a
     slack factor plus a small absolute grace (single runs of a
     millisecond-scale tool are noisy), and only on a box with the same
     core count as the committed file — same convention as
     bench/regress.ml. *)
  let fresh_total = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. outcome.phases in
  (match Option.bind (Json.member "cores" j) Json.to_i with
  | Some c when c = Domain.recommended_domain_count () ->
      let committed_total =
        match Json.member "phases" j with
        | Some (Json.Obj ps) ->
            List.fold_left
              (fun acc (_, v) -> acc +. Option.value ~default:0. (Json.to_f v))
              0. ps
        | _ -> 0.
      in
      let slack =
        match Option.bind (Sys.getenv_opt "PSI_BENCH_SLACK") float_of_string_opt with
        | Some v when v >= 1.0 -> v
        | _ -> 1.6
      in
      let grace_ms = 50. in
      let ceiling = (committed_total *. slack) +. grace_ms in
      check "analysis wall time" (fresh_total <= ceiling)
        (Printf.sprintf "%.1fms <= %.1fms (committed %.1fms * slack %.2f + %.0fms)"
           fresh_total ceiling committed_total slack grace_ms)
  | Some c ->
      Printf.printf
        "skip analysis wall time: committed on a %d-core box, this one has %d\n" c
        (Domain.recommended_domain_count ())
  | None -> check "analysis wall time" false "committed file has no box profile");
  if !failures > 0 then begin
    Printf.printf "psi_lint: bench check: %d FAILED\n" !failures;
    exit 1
  end;
  Printf.printf "psi_lint: bench check: all passed\n"

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    print_rules ();
    exit 0
  end;
  if not (String.equal !selfcheck_root "") then selfcheck !selfcheck_root;
  let scan_dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let files = List.concat_map (fun d -> List.rev (collect [] d)) scan_dirs in
  let sources = sources_of files in
  let baseline_file = Filename.concat !root !baseline_path in
  let baseline =
    if Sys.file_exists baseline_file then
      match Analysis.Suppress.Baseline.parse (read_file baseline_file) with
      | Ok b -> b
      | Error e ->
          Printf.eprintf "psi_lint: %s: %s\n" !baseline_path e;
          exit 2
    else Analysis.Suppress.Baseline.empty
  in
  let outcome =
    Analysis.Driver.analyze ~sem_rules:Analysis.Registry.sem_rules ~baseline sources
  in
  if !update_baseline then begin
    let entries = Analysis.Driver.updated_baseline outcome in
    write_file baseline_file (Analysis.Suppress.Baseline.render entries);
    Printf.printf "psi_lint: wrote %d entr%s to %s\n" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      !baseline_path;
    exit 0
  end;
  (match !json_out with
  | "" -> ()
  | "-" -> print_string (Analysis.Report.jsonl outcome)
  | path -> write_file path (Analysis.Report.jsonl outcome));
  (match !bench_out with
  | "" -> ()
  | path -> write_file path (Json.to_string (Analysis.Report.bench_json outcome) ^ "\n"));
  if not (String.equal !check_bench "") then bench_compare !check_bench outcome;
  Format.printf "%a@?" Analysis.Report.pp_console outcome;
  exit (if Analysis.Driver.clean outcome then 0 else 1)
