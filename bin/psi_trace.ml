(* Cross-party trace analyzer: merge the JSONL files both parties of a
   protocol run wrote (psi_demo --trace-out) into one timeline.

   Usage:
     psi_trace a.jsonl b.jsonl [--chrome trace.json]

   Joins the files on the handshake-derived trace id, aligns the two
   clocks on the handshake span, and prints trace/party/orphan tallies,
   the critical path, a compute-vs-wire-wait breakdown per protocol
   step, pool/ecache counter attribution, and the per-key leakage
   ledger. --chrome additionally writes a Chrome trace-event file that
   loads in Perfetto (ui.perfetto.dev) or chrome://tracing. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run files chrome_out =
  if files = [] then begin
    Printf.eprintf "psi_trace: pass at least one JSONL trace file\n";
    exit 2
  end;
  let merged =
    match Obs.Merge.of_files (List.map (fun f -> (f, read_file f)) files) with
    | m -> m
    | exception Obs.Export.Parse_error msg ->
        Printf.eprintf "psi_trace: malformed trace: %s\n" msg;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "psi_trace: %s\n" msg;
        exit 1
  in
  Format.printf "%a@?" Obs.Merge.pp_summary merged;
  match chrome_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Merge.chrome merged);
      close_out oc;
      Printf.printf "chrome trace: %s (load in ui.perfetto.dev)\n" path

let files_arg =
  Arg.(value & pos_all file []
       & info [] ~docv:"FILE"
           ~doc:"JSONL trace files, one per party (psi_demo --trace-out).")

let chrome_arg =
  Arg.(value & opt (some string) None
       & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also write the merged timeline as a Chrome trace-event file \
                 loadable in Perfetto or chrome://tracing.")

let cmd =
  Cmd.v
    (Cmd.info "psi_trace" ~version:"1.0.0"
       ~doc:"Merge per-party telemetry JSONL into one cross-party timeline."
       ~man:
         [
           `S Manpage.s_examples;
           `P "psi_demo net --listen 0 --csv s.csv --trace-out s.jsonl &";
           `P "psi_demo net --connect 127.0.0.1:PORT --csv r.csv --trace-out r.jsonl";
           `P "psi_trace s.jsonl r.jsonl --chrome trace.json";
         ])
    Term.(const run $ files_arg $ chrome_arg)

let () = exit (Cmd.eval cmd)
