(* Command-line driver: run the four protocols over CSV tables, generate
   synthetic workloads, and print cost estimates.

   Examples:
     psi_demo gen-medical --patients 500 --out-r /tmp/tr.csv --out-s /tmp/ts.csv
     psi_demo medical --table-r /tmp/tr.csv --table-s /tmp/ts.csv
     psi_demo intersect --op size --csv-s s.csv --csv-r r.csv --attr email
     psi_demo estimate --op equijoin --vs 1000000 --vr 1000000
*)

open Cmdliner

let group_names = List.map (fun n -> (Crypto.Group.name_to_string n, n)) Crypto.Group.all_names

let group_arg =
  let doc =
    Printf.sprintf "Named group to use (%s)."
      (String.concat ", " (List.map fst group_names))
  in
  Arg.(value & opt (enum group_names) Crypto.Group.Test256 & info [ "group" ] ~doc)

let seed_arg =
  Arg.(value & opt string "psi-demo" & info [ "seed" ] ~doc:"Deterministic RNG seed.")

(* Validated at parse time: a pool of zero (or negative) workers is a
   usage error, not a silent fall-through to the sequential path. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "--jobs must be at least 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "--jobs expects an integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(value
       & opt jobs_conv (Psi.Pool.default_jobs ())
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the bulk hash/encryption steps (defaults to \
                 the machine's available cores; minimum 1). Results are identical \
                 at every setting; only wall-clock changes.")

(* Validated at parse time like --jobs: a bucket count outside the
   planner's accepted range is a usage error with a typed message, not a
   runtime Invalid_argument out of Shard.plan. *)
let buckets_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 && n <= Psi.Shard.max_buckets -> Ok n
    | Some n ->
        Error
          (`Msg
             (Printf.sprintf "--buckets must be in 1..%d, got %d" Psi.Shard.max_buckets n))
    | None -> Error (`Msg (Printf.sprintf "--buckets expects an integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let buckets_arg =
  Arg.(value
       & opt buckets_conv 1
       & info [ "buckets" ] ~docv:"K"
           ~doc:"Shard each set into $(docv) hash-prefix buckets and run the \
                 protocol as $(docv) pipelined sub-protocols with bounded peak \
                 memory (1 = the classic monolithic path). Results are identical \
                 at every setting; the transcript additionally reveals the \
                 per-bucket set sizes (see docs/PROTOCOLS.md, \"Sharding and \
                 leakage\").")

let spill_dir_conv =
  let parse s =
    if s = "" then Error (`Msg "--spill-dir expects a directory path, got \"\"")
    else if Sys.file_exists s && not (Sys.is_directory s) then
      Error (`Msg (Printf.sprintf "--spill-dir %S exists and is not a directory" s))
    else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

let spill_dir_arg =
  Arg.(value
       & opt (some spill_dir_conv) None
       & info [ "spill-dir" ] ~docv:"DIR"
           ~doc:"Root the sharded run's on-disk state (bucket spill files and \
                 per-bucket checkpoints) under $(docv), created on demand. \
                 Buckets then stream from disk one at a time — peak memory \
                 O(n/K) — and a killed run resumes at its first unfinished \
                 bucket. Implies the sharded path even with --buckets 1.")

(* The effective bucket count, printed under --trace next to the worker
   report: --spill-dir engages the sharded driver even at K=1, and
   K buckets over an empty spill still run K (empty) sub-protocols. *)
let shard_plan_of ~buckets ~spill_dir =
  if buckets = 1 && spill_dir = None then None
  else Some (Psi.Shard.plan ?state_dir:spill_dir ~buckets ())

let report_buckets ~trace buckets spill_dir =
  if trace then
    match shard_plan_of ~buckets ~spill_dir with
    | None -> Printf.eprintf "buckets: requested 1, effective 1 — monolithic path\n%!"
    | Some plan ->
        Printf.eprintf "buckets: requested %d, effective %d — sharded path%s\n%!" buckets
          (Psi.Shard.buckets plan)
          (match Psi.Shard.state_dir plan with
          | None -> " (in-memory partitions)"
          | Some d -> Printf.sprintf " (spill: %s)" d)

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Collect telemetry during the run and print the span tree \
                 (per party and protocol phase) plus counters to stderr. Also \
                 installs the flight recorder: the last telemetry events are \
                 dumped to stderr on a fatal exception or SIGUSR1.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write this run's telemetry to $(docv) as JSONL: a versioned \
                 trace header (handshake-derived trace_id and party), the span \
                 events, and the final counter snapshot. Feed both parties' \
                 files to psi_trace to merge them into one timeline. Implies \
                 telemetry collection even without --trace.")

(* What the pool will actually do with the requested --jobs: Pool.create
   degrades to the sequential path for a single worker or a single-core
   host. Printed under --trace (stderr) so ~1x wall-clock on a 1-core
   box is explainable rather than mistaken for a regression. *)
let report_workers ~trace jobs =
  if trace then begin
    let cores = Psi.Pool.default_jobs () in
    let effective = if jobs <= 1 || cores <= 1 then 1 else jobs in
    Printf.eprintf "workers: requested %d, effective %d (%d core%s available)%s\n%!" jobs
      effective cores
      (if cores = 1 then "" else "s")
      (if effective = 1 then " — sequential path" else "")
  end

(* Which Montgomery kernel the group's context selected: the fixed-width
   kernels (fixed-256/1536/2048) only change wall-clock, never the wire,
   so the choice is invisible everywhere except here and the bench
   ablation rows. Printed under --trace next to the workers line. *)
let report_kernel ~trace g =
  if trace then
    Printf.eprintf "kernel: %s (modulus %d bits)\n%!" (Crypto.Group.kernel_name g)
      (Crypto.Group.modulus_bits g)

(* Wrap a command body in span collection; the report goes to stderr so
   stdout stays pipeable. With [out] set, the run's telemetry (header +
   spans + counters) is also written as JSONL for psi_trace. While
   tracing, a flight recorder rides along: its recent-event window is
   dumped to stderr if the run dies (or on SIGUSR1). *)
let with_trace ?out trace f =
  if (not trace) && out = None then f ()
  else begin
    Obs.Context.clear ();
    Obs.Ring.install ();
    Obs.Ring.set_sink
      (Some (fun events -> prerr_string (Format.asprintf "%a" Obs.Ring.pp events)));
    Obs.Ring.install_signal Sys.sigusr1;
    let r, roots, snapshot =
      match Obs.trace f with
      | v -> v
      | exception e ->
          Obs.Ring.trip "psi_demo: fatal exception";
          Obs.Ring.uninstall ();
          raise e
    in
    Obs.Ring.uninstall ();
    (match out with
    | None -> ()
    | Some path ->
        let events =
          (match Obs.Export.trace_header () with Some h -> [ h ] | None -> [])
          @ Obs.Export.span_events roots
          @ Obs.Export.snapshot_events snapshot
        in
        let oc = open_out path in
        output_string oc (Obs.Export.jsonl events);
        close_out oc);
    if trace then begin
      Format.eprintf "@.== span tree ==@.%a" Obs.Export.pp_tree roots;
      Format.eprintf "@.== counters ==@.";
      List.iter
        (fun (name, v) -> Format.eprintf "%-40s %d@." name v)
        snapshot.Obs.Metrics.counters
    end;
    r
  end

let values_of_csv path attr =
  let t = Minidb.Csv.load path in
  List.map Minidb.Value.key (Minidb.Table.distinct_values t attr)

let multiset_of_csv path attr =
  let t = Minidb.Csv.load path in
  List.filter_map
    (fun v -> if v = Minidb.Value.Null then None else Some (Minidb.Value.key v))
    (Minidb.Table.column_values t attr)

let records_of_csv path attr =
  let t = Minidb.Csv.load path in
  List.filter_map
    (fun row ->
      let v = Minidb.Table.get t row attr in
      if v = Minidb.Value.Null then None
      else begin
        let payload =
          String.concat "," (Array.to_list (Array.map Minidb.Value.to_string row))
        in
        Some (Minidb.Value.key v, payload)
      end)
    (Minidb.Table.rows t)

(* ------------------------------------------------------------------ *)
(* intersect                                                           *)
(* ------------------------------------------------------------------ *)

type op = Op_intersection | Op_size | Op_join | Op_join_size

let op_arg =
  let ops =
    [
      ("intersection", Op_intersection);
      ("size", Op_size);
      ("equijoin", Op_join);
      ("join-size", Op_join_size);
    ]
  in
  Arg.(value & opt (enum ops) Op_intersection & info [ "op" ] ~doc:"Operation to run.")

let csv_s_arg =
  Arg.(required & opt (some file) None & info [ "csv-s" ] ~doc:"Sender's CSV table.")

let csv_r_arg =
  Arg.(required & opt (some file) None & info [ "csv-r" ] ~doc:"Receiver's CSV table.")

let attr_arg =
  Arg.(value & opt string "id" & info [ "attr" ] ~doc:"Join attribute column name.")

let report_traffic (o_total : int) = Printf.printf "wire traffic: %d bytes\n" o_total

(* --cache DIR: route the operation through Session.run_incremental so
   repeat runs against slowly-changing CSVs only pay crypto for the
   delta. stdout is byte-identical to what the cold path would print
   for the same session (asserted by tools/cache_smoke.sh); the cache
   diagnostics go to stderr behind --delta. *)
(* The session-shaped form of a CSV operation plus its stdout printer —
   shared by the cached path, the sharded path, and their combination.
   The printed formats match the direct (uncached) branches exactly, so
   every execution engine is byte-identical on stdout (asserted by
   tools/cache_smoke.sh and tools/shard_smoke.sh). *)
let session_op_and_printer op csv_s csv_r attr =
  match op with
    | Op_intersection ->
        let vs = values_of_csv csv_s attr and vr = values_of_csv csv_r attr in
        ( Psi.Session.Intersect { s_values = vs; r_values = vr },
          function
          | Psi.Session.Values inter ->
              Printf.printf "|V_S| = %d, |V_R| = %d, |V_S ∩ V_R| = %d\n" (List.length vs)
                (List.length vr) (List.length inter);
              List.iter (Printf.printf "%s\n") inter
          | _ -> failwith "psi_demo: unexpected session result shape" )
    | Op_size ->
        let vs = values_of_csv csv_s attr and vr = values_of_csv csv_r attr in
        ( Psi.Session.Intersect_size { s_values = vs; r_values = vr },
          function
          | Psi.Session.Size sz ->
              Printf.printf "|V_S ∩ V_R| = %d (|V_S| = %d, |V_R| = %d)\n" sz
                (List.length vs) (List.length vr)
          | _ -> failwith "psi_demo: unexpected session result shape" )
    | Op_join ->
        let records = records_of_csv csv_s attr in
        let vr = values_of_csv csv_r attr in
        let v_s_count =
          List.length (List.sort_uniq String.compare (List.map fst records))
        in
        ( Psi.Session.Equijoin { s_records = records; r_values = vr },
          function
          | Psi.Session.Matches matches ->
              List.iter
                (fun (v, recs) ->
                  Printf.printf "%s:\n" v;
                  List.iter (Printf.printf "  %s\n") recs)
                matches;
              Printf.printf "%d joining value(s); |V_S| = %d\n" (List.length matches)
                v_s_count
          | _ -> failwith "psi_demo: unexpected session result shape" )
    | Op_join_size ->
        let vs = multiset_of_csv csv_s attr and vr = multiset_of_csv csv_r attr in
        ( Psi.Session.Equijoin_size { s_values = vs; r_values = vr },
          function
          | Psi.Session.Size sz -> Printf.printf "|T_S >< T_R| = %d\n" sz
          | _ -> failwith "psi_demo: unexpected session result shape" )

let run_cached cfg ~seed ~keys ~dir ~delta ?shard op csv_s csv_r attr =
  let session_op, print_result = session_op_and_printer op csv_s csv_r attr in
  let r =
    Psi.Session.run_incremental cfg ~seed ~keys ?shard ~cache_dir:dir [ session_op ] ()
  in
  (match r.Psi.Session.report.Psi.Session.results with
  | [ res ] -> print_result res
  | _ -> failwith "psi_demo: unexpected session result count");
  report_traffic r.Psi.Session.report.Psi.Session.total_bytes;
  if delta then begin
    let i = r.Psi.Session.incremental in
    Printf.eprintf "ecache: run=%d cold=%b hits=%d misses=%d added=%d removed=%d unchanged=%d\n"
      i.Psi.Session.run_id i.Psi.Session.cold i.Psi.Session.hits i.Psi.Session.misses
      i.Psi.Session.added i.Psi.Session.removed i.Psi.Session.unchanged
  end

(* --buckets K / --spill-dir: the sharded engine without a cache —
   Session.run with a shard plan, printing through the same formats as
   every other path. *)
let run_sharded cfg ~seed ~shard op csv_s csv_r attr =
  let session_op, print_result = session_op_and_printer op csv_s csv_r attr in
  let r = Psi.Session.run cfg ~seed ~shard [ session_op ] () in
  (match r.Psi.Session.results with
  | [ res ] -> print_result res
  | _ -> failwith "psi_demo: unexpected session result count");
  report_traffic r.Psi.Session.total_bytes

let run_intersect group seed jobs buckets spill_dir op csv_s csv_r attr cache delta
    fresh_keys trace trace_out =
  let cfg = Psi.Protocol.config ~workers:jobs ~domain:("csv:" ^ attr) (Crypto.Group.named group) in
  report_workers ~trace jobs;
  report_kernel ~trace (Crypto.Group.named group);
  report_buckets ~trace buckets spill_dir;
  with_trace ?out:trace_out trace @@ fun () ->
  let shard = shard_plan_of ~buckets ~spill_dir in
  match (cache, shard) with
  | Some dir, _ ->
      run_cached cfg ~seed
        ~keys:(if fresh_keys then `Fresh else `Cached)
        ~dir ~delta ?shard op csv_s csv_r attr
  | None, Some shard -> run_sharded cfg ~seed ~shard op csv_s csv_r attr
  | None, None -> (
      match op with
  | Op_intersection ->
      let vs = values_of_csv csv_s attr and vr = values_of_csv csv_r attr in
      let o = Psi.Intersection.run cfg ~seed ~sender_values:vs ~receiver_values:vr () in
      let r = o.Wire.Runner.receiver_result in
      Printf.printf "|V_S| = %d, |V_R| = %d, |V_S ∩ V_R| = %d\n" r.Psi.Intersection.v_s_count
        (List.length vr)
        (List.length r.Psi.Intersection.intersection);
      List.iter (Printf.printf "%s\n") r.Psi.Intersection.intersection;
      report_traffic o.Wire.Runner.total_bytes
  | Op_size ->
      let vs = values_of_csv csv_s attr and vr = values_of_csv csv_r attr in
      let o = Psi.Intersection_size.run cfg ~seed ~sender_values:vs ~receiver_values:vr () in
      Printf.printf "|V_S ∩ V_R| = %d (|V_S| = %d, |V_R| = %d)\n"
        o.Wire.Runner.receiver_result.Psi.Intersection_size.size
        o.Wire.Runner.receiver_result.Psi.Intersection_size.v_s_count
        (List.length vr);
      report_traffic o.Wire.Runner.total_bytes
  | Op_join ->
      let t_s = Minidb.Csv.load csv_s in
      let records =
        List.filter_map
          (fun row ->
            let v = Minidb.Table.get t_s row attr in
            if v = Minidb.Value.Null then None
            else begin
              let payload =
                String.concat ","
                  (Array.to_list (Array.map Minidb.Value.to_string row))
              in
              Some (Minidb.Value.key v, payload)
            end)
          (Minidb.Table.rows t_s)
      in
      let vr = values_of_csv csv_r attr in
      let o = Psi.Equijoin.run cfg ~seed ~sender_records:records ~receiver_values:vr () in
      let r = o.Wire.Runner.receiver_result in
      List.iter
        (fun (v, recs) ->
          Printf.printf "%s:\n" v;
          List.iter (Printf.printf "  %s\n") recs)
        r.Psi.Equijoin.matches;
      Printf.printf "%d joining value(s); |V_S| = %d\n"
        (List.length r.Psi.Equijoin.matches)
        r.Psi.Equijoin.v_s_count;
      report_traffic o.Wire.Runner.total_bytes
  | Op_join_size ->
      let vs = multiset_of_csv csv_s attr and vr = multiset_of_csv csv_r attr in
      let o = Psi.Equijoin_size.run cfg ~seed ~sender_values:vs ~receiver_values:vr () in
      Printf.printf "|T_S >< T_R| = %d\n" o.Wire.Runner.receiver_result.Psi.Equijoin_size.join_size;
      report_traffic o.Wire.Runner.total_bytes)

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persist per-element crypto work (and a run snapshot) under \
                 $(docv), making repeat runs against slowly-changing tables cost \
                 O(|delta|) crypto instead of O(n). Output is byte-identical to \
                 a cold run; delete the directory at any time to force one.")

let delta_arg =
  Arg.(value & flag
       & info [ "delta" ]
           ~doc:"With --cache: print the incremental statistics (cache \
                 hits/misses, elements added/removed since the last committed \
                 run) to stderr.")

let fresh_keys_arg =
  Arg.(value & flag
       & info [ "fresh-keys" ]
           ~doc:"With --cache: rotate the commutative-encryption keys every run \
                 instead of reusing them. Fresh keys make runs unlinkable but \
                 invalidate all cached ciphertexts by construction — only the \
                 key-independent hashing amortizes (see docs/PROTOCOLS.md, \
                 \"Key reuse across runs\").")

let intersect_cmd =
  let doc = "Run a private set operation between two CSV tables." in
  Cmd.v
    (Cmd.info "intersect" ~doc)
    Term.(const run_intersect $ group_arg $ seed_arg $ jobs_arg $ buckets_arg
          $ spill_dir_arg $ op_arg $ csv_s_arg $ csv_r_arg $ attr_arg $ cache_arg
          $ delta_arg $ fresh_keys_arg $ trace_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* net: two-process mode over a real socket                            *)
(* ------------------------------------------------------------------ *)

(* The listener plays the paper's sender S (it learns nothing); the
   connecting side plays the receiver R and prints the results. Both
   run the same config handshake as in-process sessions, so mismatched
   --group/--attr fail fast instead of producing garbage. *)

let report_net_stats ep =
  let s = Wire.Channel.stats ep in
  Printf.printf "wire traffic: %d bytes sent, %d bytes received (total %d)\n"
    s.Wire.Channel.bytes_sent s.Wire.Channel.bytes_received
    (s.Wire.Channel.bytes_sent + s.Wire.Channel.bytes_received);
  Printf.printf "messages: %d sent, %d received; largest frame %d bytes\n"
    s.Wire.Channel.messages_sent s.Wire.Channel.messages_received
    s.Wire.Channel.max_message_bytes

(* Sharded two-process mode: after the same handshake, drive this
   party's side of the op through the shard engine. Each process roots
   its own spill/checkpoint state (the peers never share a disk). *)
let net_shard_op ~party ~csv ~attr ~op =
  match (party, op) with
  | `Sender, Op_intersection ->
      Psi.Shard.Intersect { s_values = values_of_csv csv attr; r_values = [] }
  | `Sender, Op_size ->
      Psi.Shard.Intersect_size { s_values = values_of_csv csv attr; r_values = [] }
  | `Sender, Op_join ->
      Psi.Shard.Equijoin { s_records = records_of_csv csv attr; r_values = [] }
  | `Sender, Op_join_size ->
      Psi.Shard.Equijoin_size { s_values = multiset_of_csv csv attr; r_values = [] }
  | `Receiver, Op_intersection ->
      Psi.Shard.Intersect { s_values = []; r_values = values_of_csv csv attr }
  | `Receiver, Op_size ->
      Psi.Shard.Intersect_size { s_values = []; r_values = values_of_csv csv attr }
  | `Receiver, Op_join ->
      Psi.Shard.Equijoin { s_records = []; r_values = values_of_csv csv attr }
  | `Receiver, Op_join_size ->
      Psi.Shard.Equijoin_size { s_values = []; r_values = multiset_of_csv csv attr }

let net_sender_sharded cfg shard ~seed ~csv ~attr ~op ep =
  Obs.Span.with_ "party:sender" @@ fun () ->
  let drbg = Crypto.Drbg.split (Crypto.Drbg.create ~seed) ~label:"sender" in
  Psi.Handshake.respond cfg ep;
  let _ops, st =
    Psi.Shard.sender_op cfg shard ~drbg ep (net_shard_op ~party:`Sender ~csv ~attr ~op)
  in
  Printf.printf "sender: sharded run done — %d element(s) over %d bucket(s)%s\n"
    (List.fold_left ( + ) 0 st.Psi.Shard.sizes)
    st.Psi.Shard.buckets
    (if st.Psi.Shard.start > 0 then
       Printf.sprintf ", resumed at bucket %d" st.Psi.Shard.start
     else "")

let net_receiver_sharded cfg shard ~seed ~csv ~attr ~op ep =
  Obs.Span.with_ "party:receiver" @@ fun () ->
  let drbg = Crypto.Drbg.split (Crypto.Drbg.create ~seed) ~label:"receiver" in
  Psi.Handshake.initiate cfg ep;
  let _ops, result, st =
    Psi.Shard.receiver_op cfg shard ~drbg ep (net_shard_op ~party:`Receiver ~csv ~attr ~op)
  in
  let n_r = List.fold_left ( + ) 0 st.Psi.Shard.sizes in
  (match result with
  | Psi.Shard.Values inter ->
      Printf.printf "|V_R| = %d, |V_S ∩ V_R| = %d\n" n_r (List.length inter);
      List.iter (Printf.printf "%s\n") inter
  | Psi.Shard.Size sz -> (
      match op with
      | Op_size -> Printf.printf "|V_S ∩ V_R| = %d (|V_R| = %d)\n" sz n_r
      | _ -> Printf.printf "|T_S >< T_R| = %d\n" sz)
  | Psi.Shard.Matches matches ->
      List.iter
        (fun (v, recs) ->
          Printf.printf "%s:\n" v;
          List.iter (Printf.printf "  %s\n") recs)
        matches;
      Printf.printf "%d joining value(s)\n" (List.length matches))

let net_sender cfg ~seed ~csv ~attr ~op ep =
  (* Same root-span name as the in-process Runner gives this party, so
     psi_trace sees one shape for both deployments. *)
  Obs.Span.with_ "party:sender" @@ fun () ->
  let rng = Crypto.Drbg.to_rng (Crypto.Drbg.split (Crypto.Drbg.create ~seed) ~label:"sender") in
  Psi.Handshake.respond cfg ep;
  (match op with
  | Op_intersection ->
      let vs = values_of_csv csv attr in
      let r = Psi.Intersection.sender cfg ~rng ~values:vs ep in
      Printf.printf "sender: shared %d value(s) obliviously; peer holds %d\n"
        (List.length vs) r.Psi.Intersection.v_r_count
  | Op_size ->
      let vs = values_of_csv csv attr in
      let r = Psi.Intersection_size.sender cfg ~rng ~values:vs ep in
      Printf.printf "sender: intersection-size run done; peer holds %d value(s)\n"
        r.Psi.Intersection_size.v_r_count
  | Op_join ->
      let records = records_of_csv csv attr in
      let r = Psi.Equijoin.sender cfg ~rng ~records ep in
      Printf.printf "sender: equijoin run done over %d record(s); peer holds %d value(s)\n"
        (List.length records) r.Psi.Equijoin.v_r_count
  | Op_join_size ->
      let vs = multiset_of_csv csv attr in
      let r = Psi.Equijoin_size.sender cfg ~rng ~values:vs ep in
      Printf.printf "sender: join-size run done; peer has %d duplicate class(es)\n"
        (List.length r.Psi.Equijoin_size.r_duplicate_distribution))

let net_receiver cfg ~seed ~csv ~attr ~op ep =
  Obs.Span.with_ "party:receiver" @@ fun () ->
  let rng =
    Crypto.Drbg.to_rng (Crypto.Drbg.split (Crypto.Drbg.create ~seed) ~label:"receiver")
  in
  Psi.Handshake.initiate cfg ep;
  match op with
  | Op_intersection ->
      let vr = values_of_csv csv attr in
      let r = Psi.Intersection.receiver cfg ~rng ~values:vr ep in
      Printf.printf "|V_S| = %d, |V_R| = %d, |V_S ∩ V_R| = %d\n"
        r.Psi.Intersection.v_s_count (List.length vr)
        (List.length r.Psi.Intersection.intersection);
      List.iter (Printf.printf "%s\n") r.Psi.Intersection.intersection
  | Op_size ->
      let vr = values_of_csv csv attr in
      let r = Psi.Intersection_size.receiver cfg ~rng ~values:vr ep in
      Printf.printf "|V_S ∩ V_R| = %d (|V_S| = %d, |V_R| = %d)\n"
        r.Psi.Intersection_size.size r.Psi.Intersection_size.v_s_count (List.length vr)
  | Op_join ->
      let vr = values_of_csv csv attr in
      let r = Psi.Equijoin.receiver cfg ~rng ~values:vr ep in
      List.iter
        (fun (v, recs) ->
          Printf.printf "%s:\n" v;
          List.iter (Printf.printf "  %s\n") recs)
        r.Psi.Equijoin.matches;
      Printf.printf "%d joining value(s); |V_S| = %d\n"
        (List.length r.Psi.Equijoin.matches)
        r.Psi.Equijoin.v_s_count
  | Op_join_size ->
      let vr = multiset_of_csv csv attr in
      let r = Psi.Equijoin_size.receiver cfg ~rng ~values:vr ep in
      Printf.printf "|T_S >< T_R| = %d\n" r.Psi.Equijoin_size.join_size

(* Give a just-started listener a moment to bind before giving up. *)
let connect_with_retry ~host ~port =
  let rec go tries =
    match Wire.Transport.Socket.connect ~host ~port with
    | tr -> tr
    | exception Wire.Protocol_error _ when tries > 0 ->
        Unix.sleepf 0.3;
        go (tries - 1)
  in
  go 10

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p -> (host, p)
      | None -> invalid_arg (Printf.sprintf "net: bad port in %S" s))
  | None -> (
      match int_of_string_opt s with
      | Some p -> ("127.0.0.1", p)
      | None -> invalid_arg (Printf.sprintf "net: expected HOST:PORT, got %S" s))

let run_net group seed jobs buckets spill_dir listen connect csv attr op max_conns
    timeout trace trace_out =
  let cfg = Psi.Protocol.config ~workers:jobs ~domain:("csv:" ^ attr) (Crypto.Group.named group) in
  report_workers ~trace jobs;
  report_kernel ~trace (Crypto.Group.named group);
  report_buckets ~trace buckets spill_dir;
  with_trace ?out:trace_out trace @@ fun () ->
  let shard = shard_plan_of ~buckets ~spill_dir in
  let play_sender ep =
    match shard with
    | Some plan -> net_sender_sharded cfg plan ~seed ~csv ~attr ~op ep
    | None -> net_sender cfg ~seed ~csv ~attr ~op ep
  in
  let play_receiver ep =
    match shard with
    | Some plan -> net_receiver_sharded cfg plan ~seed ~csv ~attr ~op ep
    | None -> net_receiver cfg ~seed ~csv ~attr ~op ep
  in
  match (listen, connect) with
  | Some port, None ->
      (* The psid listener, serving connections sequentially: repeated
         --connect runs work against one listener until --max-conns is
         reached or SIGTERM/SIGINT stops the loop. (Before psid this
         branch exited after a single connection.) *)
      let listener = Service.Listener.create ~port () in
      Printf.printf "listening on port %d\n%!" (Service.Listener.port listener);
      let stop _ = Service.Listener.stop listener in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      let max_conns = if max_conns = 0 then None else Some max_conns in
      Service.Listener.run ?max_conns listener (fun conn ->
          let ep = Wire.Channel.of_transport (Service.Listener.transport conn) in
          (* Net mode never inspects transcript views; at --buckets 64
             over large sets the logs would re-materialize every set. *)
          Wire.Channel.set_record_views ep false;
          Wire.Channel.set_timeout ep (Some timeout);
          Fun.protect
            ~finally:(fun () -> Service.Listener.close_conn conn)
            (fun () ->
              match
                play_sender ep;
                Wire.Channel.close ep
              with
              | () -> report_net_stats ep
              | exception (Wire.Protocol_error msg | Failure msg) ->
                  Printf.eprintf "net: session failed: %s\n%!" msg
              | exception Wire.Timeout { what; waited_s } ->
                  Printf.eprintf "net: session timed out (%s after %.1fs)\n%!"
                    what waited_s))
  | None, Some hostport ->
      let host, port = parse_hostport hostport in
      let ep = Wire.Channel.of_transport (connect_with_retry ~host ~port) in
      Wire.Channel.set_record_views ep false;
      Wire.Channel.set_timeout ep (Some timeout);
      play_receiver ep;
      Wire.Channel.close ep;
      report_net_stats ep
  | Some _, Some _ | None, None ->
      Printf.eprintf "error: pass exactly one of --listen PORT / --connect HOST:PORT\n";
      exit 2

let net_cmd =
  let listen =
    Arg.(value & opt (some int) None
         & info [ "listen" ] ~docv:"PORT"
             ~doc:"Listen on loopback $(docv) (0 picks a free port) and play the \
                   sender S. Prints the bound port once listening.")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT"
             ~doc:"Connect to a listening peer and play the receiver R (the party \
                   that learns the result).")
  in
  let csv =
    Arg.(required & opt (some file) None
         & info [ "csv" ] ~doc:"This side's CSV table.")
  in
  let max_conns =
    Arg.(value & opt int 0
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"With --listen: exit after serving $(docv) connections \
                   (0, the default, serves until SIGTERM/SIGINT). Earlier \
                   releases always exited after one connection; pass \
                   --max-conns 1 for that behavior.")
  in
  let timeout =
    Arg.(value & opt float 30.
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Receive deadline per protocol message; a stalled peer fails the \
                   run with a typed timeout instead of hanging.")
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:"Run a protocol between two OS processes over a real socket."
       ~man:
         [
           `S Manpage.s_examples;
           `P "Terminal 1: psi_demo net --listen 7001 --csv s.csv --attr email";
           `P "Terminal 2: psi_demo net --connect 127.0.0.1:7001 --csv r.csv --attr email";
         ])
    Term.(const run_net $ group_arg $ seed_arg $ jobs_arg $ buckets_arg $ spill_dir_arg
          $ listen $ connect $ csv $ attr_arg $ op_arg $ max_conns $ timeout $ trace_arg
          $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* service: client session against a running psid                      *)
(* ------------------------------------------------------------------ *)

(* This process plays the receiver R; the daemon's tenant table plays
   S. Unlike `net`, one connection can carry several operations and is
   admission-controlled and authenticated — exit code 3 means the
   daemon was at capacity (busy), 4 means credentials were refused. *)

(* The whole post-connect exchange, with the client record as a
   parameter: one call site below supplies the DRBG-bearing client, so
   the taint analysis anchors every flow there. *)
let service_session c ~csv ~attr ~op =
  let session_op =
    match op with
    | Op_intersection ->
        Psi.Session.Intersect { s_values = []; r_values = values_of_csv csv attr }
    | Op_size ->
        Psi.Session.Intersect_size
          { s_values = []; r_values = values_of_csv csv attr }
    | Op_join ->
        Psi.Session.Equijoin { s_records = []; r_values = values_of_csv csv attr }
    | Op_join_size ->
        Psi.Session.Equijoin_size
          { s_values = []; r_values = multiset_of_csv csv attr }
  in
  let result, _sender_encryptions = Service.Client.run c session_op in
  (match result with
  | Psi.Session.Values inter ->
      Printf.printf "|V_R| = %d, |V_S ∩ V_R| = %d\n"
        (List.length (values_of_csv csv attr))
        (List.length inter);
      List.iter (Printf.printf "%s\n") inter
  | Psi.Session.Size sz -> Printf.printf "size = %d\n" sz
  | Psi.Session.Matches matches ->
      List.iter
        (fun (v, recs) ->
          Printf.printf "%s:\n" v;
          List.iter (Printf.printf "  %s\n") recs)
        matches;
      Printf.printf "%d joining value(s)\n" (List.length matches));
  Printf.printf "session %s\n" (Service.Client.session_id c);
  let s = Service.Client.stats c in
  Printf.printf "wire traffic: %d bytes sent, %d bytes received (total %d)\n"
    s.Wire.Channel.bytes_sent s.Wire.Channel.bytes_received
    (s.Wire.Channel.bytes_sent + s.Wire.Channel.bytes_received);
  Service.Client.close c

let run_service group seed connect tenant secret csv attr op timeout trace
    trace_out =
  with_trace ?out:trace_out trace @@ fun () ->
  let host, port = parse_hostport connect in
  match
    Service.Client.connect ~timeout_s:timeout ~seed ~host ~port ~tenant ~secret
      ~attr (Crypto.Group.named group)
  with
  | exception Service.Busy reason ->
      (* psi-lint: allow SEC01 — the busy reason is a server-sent policy string (capacity/draining), not key material *)
      Printf.eprintf "service: busy: %s\n" reason;
      exit 3
  | exception Service.Denied reason ->
      (* psi-lint: allow SEC01 — the denial reason is the server's fixed refusal string, not key material *)
      Printf.eprintf "service: denied: %s\n" reason;
      exit 4
  | c ->
      (* psi-lint: allow SEC01 — the client record carries the session DRBG by design; everything printed is the protocol result, which R is entitled to by the paper's Statements 2/4/6 *)
      service_session c ~csv ~attr ~op

let service_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT"
             ~doc:"The psid daemon's protocol endpoint.")
  in
  let tenant =
    Arg.(required & opt (some string) None
         & info [ "tenant" ] ~docv:"ID" ~doc:"Tenant id to authenticate as.")
  in
  let secret =
    Arg.(required & opt (some string) None
         & info [ "secret" ] ~docv:"SECRET"
             ~doc:"The tenant's shared secret (proven via challenge-response; \
                   never sent on the wire).")
  in
  let csv =
    Arg.(required & opt (some file) None
         & info [ "csv" ] ~doc:"This side's CSV table (party R's values).")
  in
  let timeout =
    Arg.(value & opt float 30.
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Receive deadline per message.")
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:"Run one operation as a client session against a psid daemon."
       ~man:
         [
           `S Manpage.s_examples;
           `P "psid serve --port 7100 --tenant hospital:s3cret:ts.csv &";
           `P "psi_demo service --connect 127.0.0.1:7100 --tenant hospital \\";
           `P "  --secret s3cret --csv tr.csv --attr person_id --op size";
         ])
    Term.(const run_service $ group_arg $ seed_arg $ connect $ tenant $ secret
          $ csv $ attr_arg $ op_arg $ timeout $ trace_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* gen-medical / medical                                               *)
(* ------------------------------------------------------------------ *)

let run_gen_medical seed patients out_r out_s =
  let t_r, t_s, _ =
    Psi.Workload.medical_tables ~seed ~n_patients:patients ~p_pattern:0.3 ~p_drug:0.5
      ~p_reaction:0.12
  in
  Minidb.Csv.save out_r t_r;
  Minidb.Csv.save out_s t_s;
  Printf.printf "wrote %s (%d rows) and %s (%d rows)\n" out_r
    (Minidb.Table.cardinality t_r) out_s (Minidb.Table.cardinality t_s)

let gen_medical_cmd =
  let patients = Arg.(value & opt int 500 & info [ "patients" ] ~doc:"Cohort size.") in
  let out_r = Arg.(value & opt string "tr.csv" & info [ "out-r" ] ~doc:"Output for T_R.") in
  let out_s = Arg.(value & opt string "ts.csv" & info [ "out-s" ] ~doc:"Output for T_S.") in
  Cmd.v
    (Cmd.info "gen-medical" ~doc:"Generate a synthetic medical cohort (two CSV tables).")
    Term.(const run_gen_medical $ seed_arg $ patients $ out_r $ out_s)

let run_medical group seed jobs table_r table_s trace =
  let cfg = Psi.Protocol.config ~workers:jobs ~domain:"medical:person_id" (Crypto.Group.named group) in
  let t_r = Minidb.Csv.load table_r and t_s = Minidb.Csv.load table_s in
  report_workers ~trace jobs;
  report_kernel ~trace (Crypto.Group.named group);
  with_trace trace @@ fun () ->
  let report = Psi.Medical.run cfg ~seed ~t_r ~t_s () in
  let c = report.Psi.Medical.counts in
  Printf.printf "pattern & reaction:      %d\n" c.Psi.Medical.pattern_and_reaction;
  Printf.printf "pattern, no reaction:    %d\n" c.Psi.Medical.pattern_no_reaction;
  Printf.printf "no pattern & reaction:   %d\n" c.Psi.Medical.no_pattern_and_reaction;
  Printf.printf "no pattern, no reaction: %d\n" c.Psi.Medical.no_pattern_no_reaction;
  report_traffic report.Psi.Medical.total_bytes

let medical_cmd =
  let table_r =
    Arg.(required & opt (some file) None & info [ "table-r" ] ~doc:"T_R CSV (person_id, pattern).")
  in
  let table_s =
    Arg.(required & opt (some file) None
         & info [ "table-s" ] ~doc:"T_S CSV (person_id, drug, reaction).")
  in
  Cmd.v
    (Cmd.info "medical" ~doc:"Run the Figure-2 medical research query privately.")
    Term.(const run_medical $ group_arg $ seed_arg $ jobs_arg $ table_r $ table_s $ trace_arg)

(* ------------------------------------------------------------------ *)
(* estimate                                                            *)
(* ------------------------------------------------------------------ *)

let run_estimate op vs vr measured group =
  let params =
    if measured then Psi.Cost_model.measured_params (Crypto.Group.named group)
    else Psi.Cost_model.paper_params
  in
  let operation =
    match op with
    | Op_intersection -> Psi.Cost_model.Intersection
    | Op_size -> Psi.Cost_model.Intersection_size
    | Op_join -> Psi.Cost_model.Equijoin
    | Op_join_size -> Psi.Cost_model.Equijoin_size
  in
  let e = Psi.Cost_model.estimate params operation ~v_s:vs ~v_r:vr in
  Printf.printf "parameters: Ce = %g s, k = %d bits, P = %d, bandwidth = %g bit/s%s\n"
    params.Psi.Cost_model.ce_seconds params.Psi.Cost_model.k_bits
    params.Psi.Cost_model.processors params.Psi.Cost_model.bandwidth_bits_per_s
    (if measured then " (measured on this machine)" else " (paper's 2001 constants)");
  Printf.printf "encryptions: %.3g Ce\n" e.Psi.Cost_model.encryptions;
  Printf.printf "computation: %s\n" (Psi.Cost_model.format_seconds e.Psi.Cost_model.comp_seconds);
  Printf.printf "communication: %s (%s)\n"
    (Psi.Cost_model.format_bits e.Psi.Cost_model.comm_bits)
    (Psi.Cost_model.format_seconds e.Psi.Cost_model.comm_seconds)

let estimate_cmd =
  let vs = Arg.(value & opt int 1_000_000 & info [ "vs" ] ~doc:"|V_S|.") in
  let vr = Arg.(value & opt int 1_000_000 & info [ "vr" ] ~doc:"|V_R|.") in
  let measured =
    Arg.(value & flag & info [ "measured" ] ~doc:"Measure Ce on this machine instead of 2001 constants.")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Apply the §6.1 cost model.")
    Term.(const run_estimate $ op_arg $ vs $ vr $ measured $ group_arg)

(* ------------------------------------------------------------------ *)
(* group-by                                                            *)
(* ------------------------------------------------------------------ *)

let run_group_by group seed jobs csv_r csv_s key r_class s_class =
  let cfg = Psi.Protocol.config ~workers:jobs ~domain:("group-by:" ^ key) (Crypto.Group.named group) in
  let t_r = Minidb.Csv.load csv_r and t_s = Minidb.Csv.load csv_s in
  let g =
    Psi.Group_by.run cfg ~seed ~t_r ~r_key:key ~r_class ~t_s ~s_key:key ~s_class ()
  in
  Printf.printf "%-20s %-20s %8s\n" r_class s_class "count";
  List.iter
    (fun ((rc, sc), n) ->
      Printf.printf "%-20s %-20s %8d\n" (Minidb.Value.to_string rc)
        (Minidb.Value.to_string sc) n)
    g.Psi.Group_by.cells;
  report_traffic g.Psi.Group_by.total_bytes

let group_by_cmd =
  let csv_r = Arg.(required & opt (some file) None & info [ "csv-r" ] ~doc:"R's CSV table.") in
  let csv_s = Arg.(required & opt (some file) None & info [ "csv-s" ] ~doc:"S's CSV table.") in
  let key = Arg.(value & opt string "id" & info [ "key" ] ~doc:"Join column (both tables).") in
  let r_class = Arg.(required & opt (some string) None & info [ "r-class" ] ~doc:"R's grouping column.") in
  let s_class = Arg.(required & opt (some string) None & info [ "s-class" ] ~doc:"S's grouping column.") in
  Cmd.v
    (Cmd.info "group-by" ~doc:"Private two-table GROUP BY count (generalized Figure 2).")
    Term.(const run_group_by $ group_arg $ seed_arg $ jobs_arg $ csv_r $ csv_s $ key $ r_class $ s_class)

(* ------------------------------------------------------------------ *)
(* aggregate                                                           *)
(* ------------------------------------------------------------------ *)

let run_aggregate group seed jobs csv_s csv_r attr sum_col =
  let cfg = Psi.Protocol.config ~workers:jobs ~domain:("aggregate:" ^ attr) (Crypto.Group.named group) in
  let t_s = Minidb.Csv.load csv_s in
  let records =
    List.filter_map
      (fun row ->
        let v = Minidb.Table.get t_s row attr in
        let x = Minidb.Table.get t_s row sum_col in
        match (v, x) with
        | Minidb.Value.Null, _ | _, Minidb.Value.Null -> None
        | v, Minidb.Value.Int x -> Some (Minidb.Value.key v, x)
        | _, other ->
            invalid_arg
              (Printf.sprintf "aggregate: column %s must be int, got %s" sum_col
                 (Minidb.Value.to_string other)))
      (Minidb.Table.rows t_s)
  in
  let vr = values_of_csv csv_r attr in
  let o = Psi.Aggregate.run cfg ~seed ~sender_records:records ~receiver_values:vr () in
  let r = o.Wire.Runner.receiver_result in
  Printf.printf "sum(%s) over the %d joining values = %d\n" sum_col
    (List.length r.Psi.Aggregate.intersection)
    r.Psi.Aggregate.sum;
  report_traffic o.Wire.Runner.total_bytes

let aggregate_cmd =
  let sum_col =
    Arg.(value & opt string "amount" & info [ "sum" ] ~doc:"S's integer column to total.")
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Private equijoin SUM of a sender column over the joining values.")
    Term.(const run_aggregate $ group_arg $ seed_arg $ jobs_arg $ csv_s_arg $ csv_r_arg $ attr_arg $ sum_col)

(* ------------------------------------------------------------------ *)
(* sql                                                                 *)
(* ------------------------------------------------------------------ *)

let run_sql group seed jobs query csv_s s_name csv_r r_name explain_only =
  if explain_only then begin
    match Psi.Sql_private.explain ~sender:(Minidb.Csv.load csv_s) ~receiver:(Minidb.Csv.load csv_r)
        ~sql:query ~sender_name:s_name ~receiver_name:r_name () with
    | Ok plan -> Printf.printf "plan: %s\n" plan
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
  end
  else begin
    let cfg = Psi.Protocol.config ~workers:jobs ~domain:("sql:" ^ s_name ^ ":" ^ r_name) (Crypto.Group.named group) in
    let t_s = Minidb.Csv.load csv_s and t_r = Minidb.Csv.load csv_r in
    match
      Psi.Sql_private.run cfg ~seed ~sql:query ~sender:(s_name, t_s) ~receiver:(r_name, t_r) ()
    with
    | Ok o ->
        print_string (Minidb.Csv.to_string o.Psi.Sql_private.table);
        Printf.eprintf "-- %d bytes of protocol traffic, %d encryptions\n"
          o.Psi.Sql_private.total_bytes o.Psi.Sql_private.ops.Psi.Protocol.encryptions
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
  end

let sql_cmd =
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.") in
  let s_name = Arg.(value & opt string "s" & info [ "sender-name" ] ~doc:"Sender table name in the query.") in
  let r_name = Arg.(value & opt string "r" & info [ "receiver-name" ] ~doc:"Receiver table name in the query.") in
  let explain_only = Arg.(value & flag & info [ "explain" ] ~doc:"Only print the protocol plan.") in
  Cmd.v
    (Cmd.info "sql" ~doc:"Privately execute a SQL query spanning two CSV tables.")
    Term.(const run_sql $ group_arg $ seed_arg $ jobs_arg $ query $ csv_s_arg $ s_name $ csv_r_arg $ r_name $ explain_only)

(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "psi_demo" ~version:"1.0.0"
       ~doc:"Information sharing across private databases (SIGMOD 2003 protocols)")
    [
      intersect_cmd; net_cmd; service_cmd; gen_medical_cmd; medical_cmd; estimate_cmd;
      group_by_cmd; aggregate_cmd; sql_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
