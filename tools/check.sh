#!/bin/sh
# Tier-1 gate: everything builds, every test passes, no build artifacts
# are tracked, the telemetry and two-process network smoke tests run end
# to end, and psi_lint reports no new findings.
set -eu
cd "$(dirname "$0")/.."

tracked_artifacts=$(git ls-files | grep -E '^_build/|\.install$|^\.merlin$' || true)
if [ -n "$tracked_artifacts" ]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$tracked_artifacts" >&2
  exit 1
fi

dune build
dune runtest
dune build @obs-smoke
dune build @net-smoke
dune build @par-smoke
dune build @cache-smoke
dune build @lint

# API docs must stay warning-free; odoc is optional in minimal images.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed, skipping @doc" >&2
fi

echo "check.sh: all green"
