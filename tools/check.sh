#!/bin/sh
# Tier-1 gate: everything builds, every test passes, no build artifacts
# are tracked, the telemetry, two-process network, and cross-party
# tracing smoke tests run end to end, psi_lint reports no new findings,
# and fresh benchmarks stay within tolerance of the committed
# BENCH_*.json files.
set -eu
cd "$(dirname "$0")/.."

tracked_artifacts=$(git ls-files | grep -E '^_build/|\.install$|^\.merlin$' || true)
if [ -n "$tracked_artifacts" ]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$tracked_artifacts" >&2
  exit 1
fi

dune build
dune runtest
dune build @obs-smoke
dune build @net-smoke
dune build @service-smoke
dune build @par-smoke
dune build @cache-smoke
dune build @shard-smoke
dune build @trace-smoke
dune build @lint
dune build @lint-selfcheck
dune build @bench-gate

# API docs must stay warning-free; odoc is optional in minimal images.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed, skipping @doc" >&2
fi

echo "check.sh: all green"
