#!/bin/sh
# Service smoke test: boot a real psid daemon on ephemeral ports, run
# three concurrent client sessions over loopback sockets, check that
#   - every client gets the correct result and a distinct session id,
#   - wrong credentials are refused with the typed exit code,
#   - /metrics (scraped with psid scrape) reflects the sessions served,
#   - SIGTERM drains: "psid: drained" on stdout and a clean exit, and
#   - the tenant's encrypted-work cache was flushed under its own dir.
#
# Usage: service_smoke.sh path/to/psid.exe path/to/psi_demo.exe
set -eu

PSID=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
DEMO=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
dir=$(mktemp -d)
spid=
trap 'rm -rf "$dir"; [ -n "$spid" ] && kill "$spid" 2>/dev/null || true' EXIT

cat > "$dir/s.csv" <<'EOF'
id:int,email:text
1,alice@example.org
2,bob@example.org
3,carol@example.org
4,dave@example.org
5,erin@example.org
EOF

cat > "$dir/r.csv" <<'EOF'
id:int,email:text
10,bob@example.org
11,mallory@example.org
12,carol@example.org
13,erin@example.org
EOF

"$PSID" serve --group test64 --port 0 --metrics-port 0 --seed smoke \
  --tenant hospital:s3cret:"$dir/s.csv" --cache-root "$dir/cache" \
  > "$dir/psid.out" 2> "$dir/psid.err" &
spid=$!

port=
mport=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^psid: listening on port \([0-9]*\)$/\1/p' "$dir/psid.out")
  mport=$(sed -n 's/^psid: metrics on port \([0-9]*\)$/\1/p' "$dir/psid.out")
  [ -n "$port" ] && [ -n "$mport" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$port" ] || [ -z "$mport" ]; then
  echo "service_smoke: daemon never reported its ports" >&2
  cat "$dir/psid.out" "$dir/psid.err" >&2
  exit 1
fi

# Three concurrent sessions: two intersections and a size. Distinct
# client seeds give distinct nonces, hence distinct session ids.
client() { # $1 = seed, $2 = op, $3 = out
  "$DEMO" service --group test64 --connect "127.0.0.1:$port" \
    --tenant hospital --secret s3cret --seed "$1" \
    --csv "$dir/r.csv" --attr email --op "$2" > "$3" 2>&1
}
client c1 intersection "$dir/c1.out" &
p1=$!
client c2 size "$dir/c2.out" &
p2=$!
client c3 intersection "$dir/c3.out" &
p3=$!
wait "$p1"; wait "$p2"; wait "$p3"

for out in c1.out c3.out; do
  if ! grep -q '^|V_R| = 4, |V_S ∩ V_R| = 3$' "$dir/$out"; then
    echo "service_smoke: bad intersection in $out" >&2
    cat "$dir/$out" >&2
    exit 1
  fi
done
grep -q '^size = 3$' "$dir/c2.out" || {
  echo "service_smoke: bad size result" >&2
  cat "$dir/c2.out" >&2
  exit 1
}
sids=$(sed -n 's/^session \([0-9a-f]*\)$/\1/p' "$dir"/c?.out | sort -u | wc -l)
if [ "$sids" -ne 3 ]; then
  echo "service_smoke: expected 3 distinct session ids, got $sids" >&2
  exit 1
fi

# Wrong secret must be a typed refusal (exit 4), not a hang or crash.
if "$DEMO" service --group test64 --connect "127.0.0.1:$port" \
    --tenant hospital --secret wrong --seed c4 \
    --csv "$dir/r.csv" --attr email --op size > "$dir/c4.out" 2>&1; then
  echo "service_smoke: wrong secret was accepted" >&2
  exit 1
else
  rc=$?
  if [ "$rc" -ne 4 ]; then
    echo "service_smoke: wrong secret exited $rc, want 4" >&2
    cat "$dir/c4.out" >&2
    exit 1
  fi
fi

# The metrics endpoint must reflect what just happened.
"$PSID" scrape --port "$mport" > "$dir/metrics.out"
for want in \
  'service_sessions 3' \
  'service_ops 3' \
  'service_denied 1' \
  'service_admitted 4' \
  'service_busy_rejects 0' \
  'service_tenant_hospital_sessions 3'; do
  if ! grep -q "^$want\$" "$dir/metrics.out"; then
    echo "service_smoke: /metrics missing \"$want\"" >&2
    cat "$dir/metrics.out" >&2
    exit 1
  fi
done

# Graceful drain: SIGTERM, clean exit, the drained line, and a flushed
# per-tenant cache.
kill -TERM "$spid"
if ! wait "$spid"; then
  echo "service_smoke: psid exited non-zero after SIGTERM" >&2
  cat "$dir/psid.err" >&2
  exit 1
fi
grep -q '^psid: drained$' "$dir/psid.out" || {
  echo "service_smoke: no drained line on stdout" >&2
  cat "$dir/psid.out" >&2
  exit 1
}
if [ ! -f "$dir/cache/hospital/ecache.psi" ]; then
  echo "service_smoke: tenant cache was not flushed" >&2
  find "$dir/cache" >&2 || true
  exit 1
fi

echo "service_smoke: ok (port $port, metrics $mport, 3 sessions, 1 denied)"
