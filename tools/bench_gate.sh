#!/bin/sh
# Perf-regression gate, run by `dune build @bench-gate`.
#
# Two passes of bench/regress.exe over the committed BENCH_*.json files:
# the first must pass (no regression on this box), the second injects a
# synthetic 2x slowdown into every fresh measurement and must FAIL —
# proving the gate actually trips on a real regression instead of
# vacuously succeeding (e.g. because every wall-clock check was skipped
# on a core-count mismatch).
set -eu

regress=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
shift
# Remaining args: BENCH_obs BENCH_parallel BENCH_incremental [BENCH_sharded]

echo "== bench gate: committed BENCH files =="
# --check-bench hardens the metadata checks: a BENCH file whose git_rev
# is not an ancestor of HEAD (it predates the code it claims to
# measure), or whose throughput rows carry no kernel field, fails
# instead of warning.
"$regress" "$@" --check-bench

echo
echo "== bench gate: injected 2x slowdown (must fail) =="
status=0
"$regress" "$@" --inject-slowdown 2 || status=$?
case $status in
  0)
    echo "bench gate: regress did NOT fail under an injected 2x slowdown" >&2
    exit 1
    ;;
  1)
    echo "bench gate: injected regression correctly detected"
    ;;
  3)
    # Core-count mismatch: wall-clock checks were skipped, so injection
    # had nothing to perturb. The count checks above still gate.
    echo "bench gate: wall-clock checks skipped on this box; injection not exercised"
    ;;
  *)
    echo "bench gate: regress exited $status under injection" >&2
    exit 1
    ;;
esac
