#!/bin/sh
# Two-process smoke test: run the intersection protocol between two real
# OS processes over a loopback socket (psi_demo net) and check that
#   - the receiver's intersection matches the in-process run, and
#   - both sides report the same total payload byte count.
#
# Usage: net_smoke.sh path/to/psi_demo.exe
set -eu

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cat > "$dir/s.csv" <<'EOF'
id:int,email:text
1,alice@example.org
2,bob@example.org
3,carol@example.org
4,dave@example.org
5,erin@example.org
EOF

cat > "$dir/r.csv" <<'EOF'
id:int,email:text
10,bob@example.org
11,mallory@example.org
12,carol@example.org
13,erin@example.org
EOF

# Reference: same protocol, same tables, in one process.
"$BIN" intersect --group test64 --csv-s "$dir/s.csv" --csv-r "$dir/r.csv" \
  --attr email > "$dir/ref.out"

# Listener (sender role) on an ephemeral port; it prints the bound port.
# The listener now loops until signalled; --max-conns 1 restores the
# serve-one-then-exit behaviour this script relies on.
"$BIN" net --group test64 --listen 0 --max-conns 1 --csv "$dir/s.csv" \
  --attr email > "$dir/s.out" 2>&1 &
spid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$dir/s.out")
  [ -n "$port" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "net_smoke: listener never reported a port" >&2
  cat "$dir/s.out" >&2
  kill "$spid" 2>/dev/null || true
  exit 1
fi

"$BIN" net --group test64 --connect "127.0.0.1:$port" --csv "$dir/r.csv" \
  --attr email > "$dir/r.out" 2>&1
wait "$spid"

# The receiver's result lines (everything before the traffic report) must
# match the in-process run's result lines.
sed -n '/^|V_S|/,/^wire traffic/p' "$dir/r.out" | grep -v '^wire traffic' > "$dir/net_result"
sed -n '/^|V_S|/,/^wire traffic/p' "$dir/ref.out" | grep -v '^wire traffic' > "$dir/ref_result"
if ! cmp -s "$dir/net_result" "$dir/ref_result"; then
  echo "net_smoke: networked intersection differs from in-process run" >&2
  diff "$dir/ref_result" "$dir/net_result" >&2 || true
  exit 1
fi

# Both sides must agree on the total payload bytes moved.
s_total=$(sed -n 's/.*(total \([0-9]*\)).*/\1/p' "$dir/s.out")
r_total=$(sed -n 's/.*(total \([0-9]*\)).*/\1/p' "$dir/r.out")
if [ -z "$s_total" ] || [ "$s_total" != "$r_total" ]; then
  echo "net_smoke: byte totals disagree (sender=$s_total receiver=$r_total)" >&2
  exit 1
fi

echo "net_smoke: ok (port $port, $s_total bytes each way combined)"
