#!/bin/sh
# Sharded two-process smoke test: run the intersection protocol between
# two real OS processes over a loopback socket with --buckets 8 (each
# side spilling its partition to its own --spill-dir) and check that
#   - the receiver's intersection values match the unsharded in-process
#     run (sharded = monolithic, across processes), and
#   - the single-process sharded run agrees too (same engine, one proc).
#
# Usage: shard_smoke.sh path/to/psi_demo.exe
set -eu

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cat > "$dir/s.csv" <<'EOF'
id:int,email:text
1,alice@example.org
2,bob@example.org
3,carol@example.org
4,dave@example.org
5,erin@example.org
6,frank@example.org
7,grace@example.org
8,heidi@example.org
EOF

cat > "$dir/r.csv" <<'EOF'
id:int,email:text
10,bob@example.org
11,mallory@example.org
12,carol@example.org
13,erin@example.org
14,heidi@example.org
EOF

# Reference: unsharded, in one process.
"$BIN" intersect --group test64 --csv-s "$dir/s.csv" --csv-r "$dir/r.csv" \
  --attr email > "$dir/ref.out"

# Single-process sharded run: stdout must be byte-identical to the
# reference apart from the wire-traffic line (sharding re-tags frames
# and adds the resume exchange, so byte counts legitimately differ).
"$BIN" intersect --group test64 --buckets 8 --spill-dir "$dir/spill" \
  --csv-s "$dir/s.csv" --csv-r "$dir/r.csv" --attr email > "$dir/sharded.out"
grep -v '^wire traffic' "$dir/ref.out" > "$dir/ref.trimmed"
grep -v '^wire traffic' "$dir/sharded.out" > "$dir/sharded.trimmed"
if ! cmp -s "$dir/ref.trimmed" "$dir/sharded.trimmed"; then
  echo "shard_smoke: sharded run differs from unsharded run" >&2
  diff "$dir/ref.out" "$dir/sharded.out" >&2 || true
  exit 1
fi

# The spill directory must contain the committed partition state.
if [ ! -f "$dir/spill/op0-sender.spillmeta" ] || \
   [ ! -f "$dir/spill/op0-receiver.spillmeta" ]; then
  echo "shard_smoke: expected spill meta files under $dir/spill" >&2
  ls "$dir/spill" >&2 || true
  exit 1
fi

# Two-process sharded run over a loopback socket, one spill dir per
# process (the parties never share a disk).
"$BIN" net --group test64 --buckets 8 --spill-dir "$dir/spill-s" \
  --listen 0 --max-conns 1 --csv "$dir/s.csv" --attr email \
  > "$dir/s.out" 2>&1 &
spid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$dir/s.out")
  [ -n "$port" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "shard_smoke: listener never reported a port" >&2
  cat "$dir/s.out" >&2
  kill "$spid" 2>/dev/null || true
  exit 1
fi

"$BIN" net --group test64 --buckets 8 --spill-dir "$dir/spill-r" \
  --connect "127.0.0.1:$port" --csv "$dir/r.csv" --attr email \
  > "$dir/r.out" 2>&1
wait "$spid"

# The intersection values the networked sharded receiver prints must be
# exactly the unsharded reference's (the sharded net header reports
# |V_R| only — the value lines are the parity check).
grep '@example.org$' "$dir/r.out" | sort > "$dir/net_values"
grep '@example.org$' "$dir/ref.out" | sort > "$dir/ref_values"
if ! cmp -s "$dir/net_values" "$dir/ref_values"; then
  echo "shard_smoke: networked sharded intersection differs from reference" >&2
  diff "$dir/ref_values" "$dir/net_values" >&2 || true
  exit 1
fi

count=$(wc -l < "$dir/ref_values")
echo "shard_smoke: ok (port $port, $count matching value(s), 8 buckets)"
