(* Seeded-bad fixture for WIRE01: an attacker-controlled length fed
   straight into an allocator with no bound check. *)

let read_blob buf = read_raw buf (read_varint buf) (* lint-expect: WIRE01 *)

let read_frame buf = Bytes.create (read_u32 buf) (* lint-expect: WIRE01 *)
