(* Seeded-bad fixture for RNG01: Stdlib.Random in protocol code. *)

let weak_nonce () = Random.int 256 (* lint-expect: RNG01 *)

let weak_seed st = Random.State.bits st (* lint-expect: RNG01 *)
