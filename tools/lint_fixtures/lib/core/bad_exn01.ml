(* Seeded-bad fixture for EXN01: a catch-all handler swallowing every
   exception, including typed protocol errors. *)

let swallow f x = try f x with _ -> None (* lint-expect: EXN01 *)
