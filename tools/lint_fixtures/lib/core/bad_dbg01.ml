(* Seeded-bad fixture for DBG01: leftover debug output and assert false
   in library code. *)

let shout x = print_endline x (* lint-expect: DBG01 *)

let trace fmt = Printf.printf fmt (* lint-expect: DBG01 *)

let unreachable () = assert false (* lint-expect: DBG01 *)
