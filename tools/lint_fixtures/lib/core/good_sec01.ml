(* Clean counterpart to bad_sec01.ml: every send passes a sanitizer, so
   SEC01 must stay silent here (any finding fails the selfcheck as
   EXTRA). *)

let send_encrypted g key ep xs =
  let cts = List.map (fun x -> Commutative.encrypt g key x) xs in
  Channel.send_elements_stream ep cts

let send_hashed g ep v =
  let h = Hash_to_group.map g v in
  Channel.send ep h

let send_fingerprint g key ep =
  Channel.send ep (Commutative.fingerprint g key)

let log_digest st =
  let secret = Drbg.generate st 32 in
  let h = Span.enter (Sha256.hex_digest secret) in
  Span.exit h

(* Blinding: g^r is publishable even though r is secret. *)
let send_blinded g rng ep =
  let r = Group.random_exponent g ~rng in
  Channel.send ep (Group.pow g (Group.generator g) r)
