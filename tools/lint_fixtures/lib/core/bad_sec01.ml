(* Seeded-bad fixture for SEC01: secrets reaching sinks without a
   sanitizer. Each violating line carries a lint-expect annotation; the
   selfcheck fails unless psi_lint reports exactly these. *)

let leak_raw_key g rng ep =
  let key = Commutative.gen_key g ~rng in
  Channel.send ep key (* lint-expect: SEC01 *)

let leak_drbg_direct st ep =
  let pad = Drbg.generate st 32 in
  Channel.send ep pad (* lint-expect: SEC01 *)

(* The secret travels through a helper before reaching the sink: the
   interprocedural summary must carry the taint. *)
let forward ep x = Channel.send ep x

let leak_through_helper g rng ep =
  let e = Group.random_exponent g ~rng in
  forward ep e (* lint-expect: SEC01 *)

(* Tuples and lets do not launder taint. *)
let leak_via_tuple st ep =
  let secret = Drbg.generate st 16 in
  let pair = (secret, "label") in
  let v, _tag = pair in
  Channel.send ep v (* lint-expect: SEC01 *)

(* Secrets must not reach error formatting either. *)
let leak_in_error g rng =
  let key = Commutative.gen_key g ~rng in
  failwith key (* lint-expect: SEC01 *)

(* Telemetry attributes are sinks too (the span is exited so OBS01
   stays quiet; the leak is the tainted name). *)
let leak_in_span st =
  let secret = Drbg.generate st 8 in
  let h = Span.enter secret (* lint-expect: SEC01 *) in
  Span.exit h

(* Mapping a raw secret collection onto the wire: the HOF model must
   propagate element taint through List.map. *)
let leak_via_map st ep xs =
  let pads = List.map (fun x -> Drbg.generate st x) xs in
  Channel.send_elements_stream ep pads (* lint-expect: SEC01 *)
