(* Seeded-bad fixture for OBS01: a span entered but never exited within
   the same top-level item. *)

let leaky_span work =
  let _h = Span.enter "leaky" in (* lint-expect: OBS01 *)
  work ()
