(* Clean counterpart to bad_race01.ml: pure per-element closures, and
   shared state mediated by Atomic or a Mutex, are fine. *)

let double pool xs = Pool.map pool (fun x -> x * 2) xs

let tally pool xs =
  let hits = Atomic.make 0 in
  let _ = Pool.map pool (fun x -> Atomic.fetch_and_add hits x) xs in
  Atomic.get hits

let guarded pool lock tbl xs =
  Pool.map pool
    (fun x ->
      Mutex.lock lock;
      Hashtbl.replace tbl x true;
      Mutex.unlock lock)
    xs

(* Reading captured immutable state is not a race. *)
let lookup pool table xs = Pool.map pool (fun x -> List.assoc x table) xs
