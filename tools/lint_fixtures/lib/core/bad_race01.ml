(* Seeded-bad fixture for RACE01: mutable state captured by closures
   handed to the domain pool without Atomic/Mutex mediation. *)

let tally pool xs =
  let hits = ref 0 in
  let _ = Pool.map pool (fun x -> hits := !hits + x) xs (* lint-expect: RACE01 *) in
  !hits

let index pool xs =
  let tbl = Hashtbl.create 16 in
  let _ = Pool.map pool (fun x -> Hashtbl.replace tbl x true) xs (* lint-expect: RACE01 *) in
  tbl

(* In-place mutation of a captured parameter (no mutable constructor in
   sight) must be caught too. *)
let log_async buf =
  Domain.spawn (fun () -> Buffer.add_string buf "x") (* lint-expect: RACE01, DOM01 *)

type counter = { mutable n : int }

let bump pool c xs =
  Pool.map pool (fun x -> c.n <- c.n + x) xs (* lint-expect: RACE01 *)

let fill pool (arr : int array) xs =
  Pool.map_seeded pool ~seed:"s" (fun x -> arr.(x) <- x) xs (* lint-expect: RACE01 *)
