(* Seeded-bad fixture for CT01: polymorphic structural comparison in a
   secret-bearing directory. *)

let cmp a b = Stdlib.compare a b (* lint-expect: CT01 *)

let contains x xs = List.mem x xs (* lint-expect: CT01 *)

let same a b = a == b (* lint-expect: CT01 *)
