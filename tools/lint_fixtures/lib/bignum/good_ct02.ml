(* Clean counterpart to bad_ct02.ml: branches on public values and on
   sanitized secrets are fine. *)

let branch_on_public n = if n = 0 then 0 else 1

let loop_on_public n =
  for i = 0 to n do
    step i
  done

(* A hashed secret is public by the random-oracle argument. *)
let branch_on_digest st =
  let fp = Sha256.hex_digest (Drbg.generate st 32) in
  if fp = "" then 0 else 1
