(* Seeded-bad fixture for CT02: secret-tainted values controlling
   branches, loop bounds, and length-dependent calls inside the
   arithmetic kernels. *)

let branch_on_secret st =
  let secret = Drbg.generate st 32 in
  if secret = "" then 0 else 1 (* lint-expect: CT02 *)

let match_on_secret g rng =
  let r = Group.random_exponent g ~rng in
  match r with (* lint-expect: CT02 *)
  | 0 -> "zero"
  | _ -> "other"

let loop_on_secret st =
  let n = byte_of (Drbg.generate st 1) in
  for _i = 0 to n do (* lint-expect: CT02 *)
    step ()
  done

let length_of_secret st =
  let secret = Drbg.generate st 32 in
  String.length secret (* lint-expect: CT02 *)

(* Helper that branches on its parameter: the branch event lands in the
   summary and must replay at the tainted call site below. *)
let is_empty s = if s = "" then true else false

let branch_via_helper st =
  let secret = Drbg.generate st 16 in
  is_empty secret (* lint-expect: CT02 *)
