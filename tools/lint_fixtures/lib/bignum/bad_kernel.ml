(* Seeded-bad fixture shaped like the fixed-width Montgomery kernels
   (30-bit limb arrays, window tables, arena staging): proves CT01/CT02
   see kernel-idiom code, so a regression in the new modular.ml kernels
   cannot hide from the rules. *)

(* Window digit derived from key material steering the table lookup —
   the shape [run_windows] must never have (its digits come from the
   public-exponent contract, not a sampled secret). *)
let window_mult_on_secret st tab =
  let d = byte_of (Drbg.generate st 1) in
  if d <> 0 then mont_mul tab.(d) else skip () (* lint-expect: CT02 *)

(* Squaring chain bounded by a sampled exponent's width. *)
let scan_secret_exponent st =
  let e = byte_of (Drbg.generate st 1) in
  for _i = 0 to e do (* lint-expect: CT02 *)
    square ()
  done

(* Polymorphic comparison on limb arrays. *)
let limbs_compare (a : int array) (b : int array) =
  Stdlib.compare a b (* lint-expect: CT01 *)

(* Physical equality to detect arena aliasing. *)
let arena_aliases dst src = dst == src (* lint-expect: CT01 *)
