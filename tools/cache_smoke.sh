#!/bin/sh
# Incremental-cache smoke test: the persistent element cache must be
# invisible in every output and visible in every counter. For each of
# the four protocols: run cold against a 200-row pair of tables, mutate
# 1% of the receiver's rows (2 of 200), run warm against the same cache
# directory, and require
#   - the warm stdout to be byte-identical to a cold run (fresh cache
#     directory) over the mutated tables — the cache changes the
#     compute schedule, never the transcript;
#   - the warm protocol results to equal the plain uncached CLI path's
#     (which skips the session handshake, so only its wire-traffic
#     accounting line may differ);
#   - the warm ecache counters to match the delta exactly: 2 added,
#     2 removed, 398 unchanged (200 sender + 198 receiver) — and for
#     the intersection the full 3-lookups-per-element law:
#     misses = 3*|delta| = 6, hits = 3*(200+200) - 6 = 1194.
#
# Usage: cache_smoke.sh path/to/psi_demo.exe
set -eu

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

{
  echo "id:int,email:text"
  i=1
  while [ "$i" -le 200 ]; do
    echo "$i,user$i@example.org"
    i=$((i + 1))
  done
} > "$dir/s.csv"

{
  echo "id:int,email:text"
  i=101
  while [ "$i" -le 300 ]; do
    echo "$i,user$i@example.org"
    i=$((i + 1))
  done
} > "$dir/r.csv"

# 1% churn: replace the receiver's last two attribute values.
sed -e 's/^299,user299@example.org$/299,user1299@example.org/' \
    -e 's/^300,user300@example.org$/300,user1300@example.org/' \
    "$dir/r.csv" > "$dir/r2.csv"

for op in intersection size equijoin join-size; do
  cdir="$dir/cache-$op"

  "$BIN" intersect --group test64 --op "$op" --attr email \
    --csv-s "$dir/s.csv" --csv-r "$dir/r.csv" \
    --cache "$cdir" --delta \
    > "$dir/$op.cold.out" 2> "$dir/$op.cold.err"

  "$BIN" intersect --group test64 --op "$op" --attr email \
    --csv-s "$dir/s.csv" --csv-r "$dir/r2.csv" \
    --cache "$cdir" --delta \
    > "$dir/$op.warm.out" 2> "$dir/$op.warm.err"

  # Reference 1: a cold run (fresh cache directory) over the same
  # mutated inputs. Warm and cold must be byte-identical.
  "$BIN" intersect --group test64 --op "$op" --attr email \
    --csv-s "$dir/s.csv" --csv-r "$dir/r2.csv" \
    --cache "$cdir-ref" --delta \
    > "$dir/$op.ref.out" 2> "$dir/$op.ref.err"

  if ! cmp -s "$dir/$op.warm.out" "$dir/$op.ref.out"; then
    echo "cache_smoke: $op warm output differs from cold reference" >&2
    diff "$dir/$op.warm.out" "$dir/$op.ref.out" >&2 || true
    exit 1
  fi

  # Reference 2: the plain uncached CLI path over the same inputs. It
  # runs the protocol without the session handshake, so strip the
  # traffic-accounting line and compare the protocol results alone.
  "$BIN" intersect --group test64 --op "$op" --attr email \
    --csv-s "$dir/s.csv" --csv-r "$dir/r2.csv" \
    > "$dir/$op.plain.out"

  grep -v '^wire traffic' "$dir/$op.warm.out" > "$dir/$op.warm.res"
  grep -v '^wire traffic' "$dir/$op.plain.out" > "$dir/$op.plain.res"
  if ! cmp -s "$dir/$op.warm.res" "$dir/$op.plain.res"; then
    echo "cache_smoke: $op warm results differ from the uncached CLI path" >&2
    diff "$dir/$op.warm.res" "$dir/$op.plain.res" >&2 || true
    exit 1
  fi

  if ! grep -q 'cold=false' "$dir/$op.warm.err"; then
    echo "cache_smoke: $op warm run did not reuse the snapshot" >&2
    cat "$dir/$op.warm.err" >&2
    exit 1
  fi

  if ! grep -q 'added=2 removed=2 unchanged=398' "$dir/$op.warm.err"; then
    echo "cache_smoke: $op warm delta accounting is wrong (want 2/2/398)" >&2
    cat "$dir/$op.warm.err" >&2
    exit 1
  fi
done

# The intersection's warm counters obey the exact per-element law:
# every element costs 3 lookups (hash-to-group, own encryption, partner
# re-encryption), so a 2-element receiver delta is 6 misses and the
# remaining 3*(200+200) - 6 = 1194 lookups all hit.
if ! grep -q 'hits=1194 misses=6' "$dir/intersection.warm.err"; then
  echo "cache_smoke: intersection warm counters do not match the delta" >&2
  echo "  want: hits=1194 misses=6 (3 lookups/element, |delta|=2)" >&2
  cat "$dir/intersection.warm.err" >&2
  exit 1
fi

echo "cache_smoke: ok (4 ops warm == cold byte-identically; counters match |delta|)"
