#!/bin/sh
# Cross-party tracing smoke test: run the intersection protocol between
# two real OS processes (psi_demo net) with --trace-out on both sides,
# merge the two JSONL streams with psi_trace, and check that
#   - the merge finds exactly one trace shared by exactly two parties,
#   - no span event is orphaned (parent id missing from its stream), and
#   - the --chrome export produces a loadable trace-event document.
#
# Usage: trace_smoke.sh path/to/psi_demo.exe path/to/psi_trace.exe
set -eu

DEMO=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
TRACE=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cat > "$dir/s.csv" <<'EOF'
id:int,email:text
1,alice@example.org
2,bob@example.org
3,carol@example.org
4,dave@example.org
5,erin@example.org
EOF

cat > "$dir/r.csv" <<'EOF'
id:int,email:text
10,bob@example.org
11,mallory@example.org
12,carol@example.org
13,erin@example.org
EOF

# Listener (sender role) on an ephemeral port; it prints the bound port.
# --max-conns 1: serve the one connection below, then exit (the wait
# relies on it).
"$DEMO" net --group test64 --listen 0 --max-conns 1 --csv "$dir/s.csv" \
  --attr email --trace-out "$dir/s.jsonl" > "$dir/s.out" 2>&1 &
spid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$dir/s.out")
  [ -n "$port" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "trace_smoke: listener never reported a port" >&2
  cat "$dir/s.out" >&2
  kill "$spid" 2>/dev/null || true
  exit 1
fi

"$DEMO" net --group test64 --connect "127.0.0.1:$port" --csv "$dir/r.csv" \
  --attr email --trace-out "$dir/r.jsonl" > "$dir/r.out" 2>&1
wait "$spid"

for f in s r; do
  if [ ! -s "$dir/$f.jsonl" ]; then
    echo "trace_smoke: $f side wrote no trace JSONL" >&2
    exit 1
  fi
done

"$TRACE" "$dir/s.jsonl" "$dir/r.jsonl" --chrome "$dir/trace.json" \
  > "$dir/merge.out"

fail() {
  echo "trace_smoke: $1" >&2
  cat "$dir/merge.out" >&2
  exit 1
}

grep -q '^traces: 1$' "$dir/merge.out" \
  || fail "expected exactly one shared trace id"
grep -q '^parties: 2 ' "$dir/merge.out" \
  || fail "expected exactly two parties in the merge"
grep -q '^orphan spans: 0$' "$dir/merge.out" \
  || fail "expected zero orphan spans"

# The two streams must carry the same handshake-derived trace id.
s_tid=$(sed -n 's/.*"type":"trace_header".*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$dir/s.jsonl")
r_tid=$(sed -n 's/.*"type":"trace_header".*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$dir/r.jsonl")
if [ -z "$s_tid" ] || [ "$s_tid" != "$r_tid" ]; then
  echo "trace_smoke: trace ids disagree (sender=$s_tid receiver=$r_tid)" >&2
  exit 1
fi

grep -q '"traceEvents"' "$dir/trace.json" \
  || fail "--chrome output is not a trace-event document"

echo "trace_smoke: ok (port $port, trace $s_tid)"
