#!/bin/sh
# Parallel-parity smoke test: the batch-encryption engine must be
# invisible in every output. Run the same intersection at --jobs 1,
# --jobs 2, and --jobs 4 and require the *entire* output — results and
# wire-traffic accounting — to be byte-identical: the pool changes
# wall-clock only, never results or leakage.
#
# Usage: par_smoke.sh path/to/psi_demo.exe
set -eu

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cat > "$dir/s.csv" <<'EOF'
id:int,email:text
1,alice@example.org
2,bob@example.org
3,carol@example.org
4,dave@example.org
5,erin@example.org
6,frank@example.org
7,grace@example.org
EOF

cat > "$dir/r.csv" <<'EOF'
id:int,email:text
10,bob@example.org
11,mallory@example.org
12,carol@example.org
13,erin@example.org
14,grace@example.org
EOF

for jobs in 1 2 4; do
  "$BIN" intersect --group test64 --jobs "$jobs" \
    --csv-s "$dir/s.csv" --csv-r "$dir/r.csv" --attr email \
    > "$dir/out.$jobs"
done

for jobs in 2 4; do
  if ! cmp -s "$dir/out.1" "$dir/out.$jobs"; then
    echo "par_smoke: output differs between --jobs 1 and --jobs $jobs" >&2
    diff "$dir/out.1" "$dir/out.$jobs" >&2 || true
    exit 1
  fi
done

echo "par_smoke: ok (--jobs 1/2/4 outputs byte-identical)"
