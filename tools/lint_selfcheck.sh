#!/bin/sh
# Lint self-check, run by `dune build @lint-selfcheck`.
#
# Two halves:
#   1. psi_lint --selfcheck over tools/lint_fixtures — a corpus of
#      seeded-bad snippets where every violating line carries a
#      `(* lint-expect: RULE *)` annotation. The run fails unless every
#      expected (file, line, rule) is reported (MISS) and nothing
#      unexpected is (EXTRA), so both false negatives and false
#      positives in the analyses break the build.
#   2. Schema validation of the machine output: `--json` must emit a
#      versioned lint_header as its first line and a versioned summary
#      with per-phase timings as its last, matching the trace_header
#      convention used by the Obs JSONL exports.
#
# Usage: lint_selfcheck.sh path/to/psi_lint.exe workspace_root
set -eu

LINT=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
ROOT=$2
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "== lint selfcheck: seeded fixtures =="
"$LINT" --root "$ROOT" --selfcheck "$ROOT/tools/lint_fixtures"

echo
echo "== lint selfcheck: JSON schema =="
"$LINT" --root "$ROOT" --baseline "$ROOT/tools/lint_baseline.txt" \
  --json "$dir/lint.jsonl" lib bin

fail() {
  echo "lint_selfcheck: $1" >&2
  exit 1
}

head -n 1 "$dir/lint.jsonl" | grep -q '"type":"lint_header"' \
  || fail "first JSON line is not a lint_header"
head -n 1 "$dir/lint.jsonl" | grep -q '"version":1' \
  || fail "lint_header carries no schema version"
head -n 1 "$dir/lint.jsonl" | grep -q '"rules":\[' \
  || fail "lint_header carries no rule catalog"
tail -n 1 "$dir/lint.jsonl" | grep -q '"type":"summary"' \
  || fail "last JSON line is not a summary"
tail -n 1 "$dir/lint.jsonl" | grep -q '"version":1' \
  || fail "summary carries no schema version"
tail -n 1 "$dir/lint.jsonl" | grep -q '"phases":{' \
  || fail "summary carries no per-phase timings"
for phase in lex parse resolve taint classify; do
  tail -n 1 "$dir/lint.jsonl" | grep -q "\"$phase\":" \
    || fail "summary phases missing \"$phase\""
done

echo "lint_selfcheck: ok"
