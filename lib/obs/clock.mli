(** Monotonic nanosecond clock for spans and latency histograms.

    Successive calls never go backwards (a CAS keeps the high-water
    mark), so span durations are always non-negative. *)

val now_ns : unit -> int64
val ns_to_ms : int64 -> float

(** [pp_duration fmt ns] renders ["532ns"], ["1.5us"], ["12.3ms"],
    ["2.10s"]. *)
val pp_duration : Format.formatter -> int64 -> unit
