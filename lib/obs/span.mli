(** Tracing spans with parent/child nesting.

    A span brackets a region of code with monotonic-clock timestamps.
    Nesting is ambient and per-thread: a span opened while another span
    of the same thread is open becomes its child, so each protocol
    party (one thread under {!Wire.Runner}) grows its own subtree.

    When no trace is active — the default — {!with_} calls its function
    directly: one atomic load of overhead, nothing allocated. *)

type t

val name : t -> string
val attrs : t -> (string * string) list

(** Id of the thread the span ran on. *)
val thread : t -> int

val start_ns : t -> int64
val dur_ns : t -> int64

(** Completed children, oldest first. *)
val children : t -> t list

(** {1 Recording} *)

(** [with_ ?attrs name f] runs [f] inside a span when a trace is active,
    and is just [f ()] otherwise. Exception-safe: the span closes even
    if [f] raises. *)
val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [start_trace ()] installs a fresh process-wide trace collector. *)
val start_trace : unit -> unit

(** [stop_trace ()] uninstalls the collector and returns the completed
    root spans in start order (across all threads). Spans still open are
    discarded. Returns [[]] if no trace was active. *)
val stop_trace : unit -> t list

val tracing : unit -> bool

(** [collect f] = start a trace, run [f], stop: [(f (), roots)]. *)
val collect : (unit -> 'a) -> 'a * t list

(** [make] rebuilds a span value (exporter round-trips, tests). *)
val make :
  name:string ->
  attrs:(string * string) list ->
  thread:int ->
  start_ns:int64 ->
  dur_ns:int64 ->
  children:t list ->
  t
