(** Tracing spans with parent/child nesting.

    A span brackets a region of code with monotonic-clock timestamps.
    Nesting is ambient and per-thread: a span opened while another span
    of the same thread is open becomes its child, so each protocol
    party (one thread under {!Wire.Runner}) grows its own subtree.

    When no trace is active — the default — {!with_} calls its function
    directly: one atomic load of overhead, nothing allocated. *)

type t

val name : t -> string
val attrs : t -> (string * string) list

(** Id of the thread the span ran on. *)
val thread : t -> int

val start_ns : t -> int64
val dur_ns : t -> int64

(** Completed children, oldest first. *)
val children : t -> t list

(** {1 Recording} *)

(** [with_ ?attrs name f] runs [f] inside a span when a trace is active,
    and is just [f ()] otherwise (when a {!Ring} is installed, enter and
    exit events are recorded even without a trace). Exception-safe: the
    span closes even if [f] raises.

    Spans that finish as roots are stamped with the ambient
    {!Context} ([trace_id]/[party] attrs); nested spans inherit it
    structurally. *)
val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** {1 Manual bracketing}

    For the rare site where [with_]'s closure is awkward (callback
    seams). Every [enter] must be matched by exactly one [exit] on the
    same thread before the enclosing scope unwinds — [psi_lint]'s OBS01
    flags [Span.enter] in [lib/] without a structurally matching
    [Span.exit]. Prefer {!with_}, which is exception-safe. *)

type handle

(** [enter ?attrs name] opens a span (or just records to the flight
    recorder when no trace is active). *)
val enter : ?attrs:(string * string) list -> string -> handle

(** [exit h] closes the span opened by the matching {!enter}. Calling
    it twice records the span twice — don't. *)
val exit : handle -> unit

(** [start_trace ()] installs a fresh process-wide trace collector. *)
val start_trace : unit -> unit

(** [stop_trace ()] uninstalls the collector and returns the completed
    root spans in start order (across all threads). Spans still open are
    discarded. Returns [[]] if no trace was active. *)
val stop_trace : unit -> t list

val tracing : unit -> bool

(** [collect f] = start a trace, run [f], stop: [(f (), roots)]. *)
val collect : (unit -> 'a) -> 'a * t list

(** [make] rebuilds a span value (exporter round-trips, tests). *)
val make :
  name:string ->
  attrs:(string * string) list ->
  thread:int ->
  start_ns:int64 ->
  dur_ns:int64 ->
  children:t list ->
  t
