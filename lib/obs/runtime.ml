let enabled = Atomic.make false
let is_enabled () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

let with_enabled f =
  let was = Atomic.exchange enabled true in
  Fun.protect ~finally:(fun () -> Atomic.set enabled was) f
