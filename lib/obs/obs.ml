(** Telemetry for the protocol stack: spans, metrics, exporters.

    Everything is off by default — instrumented code pays one atomic
    load per probe — and switched on per-process with {!enable} (or
    {!Runtime.with_enabled} for a scoped region). See
    [docs/OBSERVABILITY.md] for the full tour. *)

module Runtime = Runtime
module Clock = Clock
module Context = Context
module Ring = Ring
module Metrics = Metrics
module Span = Span
module Export = Export
module Merge = Merge
module Report = Report

(** Turn metric recording on process-wide. *)
let enable = Runtime.enable

let disable = Runtime.disable

(** [reset ()] zeroes the default metrics registry. *)
let reset () = Metrics.reset ()

(** [snapshot ()] of the default metrics registry. *)
let snapshot () = Metrics.snapshot ()

(** [trace f] = enable metrics, collect spans around [f]:
    [(result, roots, snapshot)]. Restores the previous enabled state. *)
let trace f =
  Runtime.with_enabled (fun () ->
      let r, roots = Span.collect f in
      (r, roots, Metrics.snapshot ()))
