(** Ambient trace identity: a process-wide [trace_id] and a per-thread
    party label.

    Both are set by [Core.Handshake] once the config fingerprints have
    been exchanged — the id is derived from handshake material both
    sides already hold, so no extra bytes ride on the wire and protocol
    transcripts stay byte-identical whether tracing is on or off.

    {!Span} stamps finished root spans with the current context (attrs
    [trace_id] and [party]), and the JSONL trace header carries the same
    pair, which is what lets [psi_trace] join the two parties' files. *)

(** [set_trace_id id] installs the process-wide trace id. *)
val set_trace_id : string -> unit

val trace_id : unit -> string option

(** [set_party label] tags the calling thread (conventionally ["S"] for
    the sender/responder and ["R"] for the receiver/initiator). *)
val set_party : string -> unit

(** The calling thread's party label, if set. *)
val party : unit -> string option

(** Forget the trace id and all party labels. *)
val clear : unit -> unit

(** Attr keys used when stamping spans: ["trace_id"] and ["party"]. *)
val trace_id_attr : string

val party_attr : string

(** [stamp attrs] prepends the current context as attrs (existing keys
    win; nothing is added for unset context). *)
val stamp : (string * string) list -> (string * string) list
