(** The process-wide telemetry switch.

    Instrumentation throughout the stack is gated on {!is_enabled}: when
    off (the default), every probe is a single atomic load and the
    no-op sink swallows everything, so instrumented code runs at full
    speed. Benches, tests and [psi_demo --trace] flip it on. *)

val is_enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** [with_enabled f] runs [f] with telemetry on, restoring the previous
    state afterwards (exception-safe). *)
val with_enabled : (unit -> 'a) -> 'a
