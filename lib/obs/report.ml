type comparison = {
  label : string;
  predicted_ce : float;
  observed_ce : float;
  ce_rel_error : float;
  predicted_bits : float;
  observed_bits : float;
  bits_rel_error : float;
  tolerance : float;
  within_tolerance : bool;
}

let rel_error ~predicted ~observed =
  if predicted = 0. then if observed = 0. then 0. else Float.infinity
  else Float.abs (observed -. predicted) /. Float.abs predicted

let compare ?(tolerance = 0.10) ~label ~predicted_ce ~observed_ce ~predicted_bits
    ~observed_bits () =
  let ce_rel_error = rel_error ~predicted:predicted_ce ~observed:observed_ce in
  let bits_rel_error = rel_error ~predicted:predicted_bits ~observed:observed_bits in
  {
    label;
    predicted_ce;
    observed_ce;
    ce_rel_error;
    predicted_bits;
    observed_bits;
    bits_rel_error;
    tolerance;
    within_tolerance = ce_rel_error <= tolerance && bits_rel_error <= tolerance;
  }

let pp fmt c =
  Format.fprintf fmt
    "%-16s Ce %8.0f predicted / %8.0f observed (%+.2f%%)  bits %10.0f predicted / %10.0f observed (%+.2f%%)  %s"
    c.label c.predicted_ce c.observed_ce
    (100. *. c.ce_rel_error)
    c.predicted_bits c.observed_bits
    (100. *. c.bits_rel_error)
    (if c.within_tolerance then "OK"
     else Printf.sprintf "DIVERGED (tolerance %.0f%%)" (100. *. c.tolerance))

let to_json c =
  Export.Json.Obj
    [
      ("protocol", Export.Json.Str c.label);
      ("predicted_ce", Export.Json.of_float c.predicted_ce);
      ("observed_ce", Export.Json.of_float c.observed_ce);
      ("ce_rel_error", Export.Json.of_float c.ce_rel_error);
      ("predicted_bits", Export.Json.of_float c.predicted_bits);
      ("observed_bits", Export.Json.of_float c.observed_bits);
      ("bits_rel_error", Export.Json.of_float c.bits_rel_error);
      ("tolerance", Export.Json.of_float c.tolerance);
      ("within_tolerance", Export.Json.Bool c.within_tolerance);
    ]
