type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

(* Fixed log-scale bucket upper bounds: powers of two from 2^0 to 2^39
   (~5.5e11 — covers bytes, counts, and nanosecond latencies up to ~9
   minutes), plus an implicit overflow bucket. Fixed boundaries keep
   histograms mergeable across runs and processes. *)
let bucket_bounds = Array.init 40 (fun i -> Float.pow 2. (float_of_int i))

type histogram = {
  h_name : string;
  mutex : Mutex.t;
  buckets : int array; (* length = |bounds| + 1; last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable max_value : float;
}

type item = C of counter | G of gauge | H of histogram

type registry = {
  r_mutex : Mutex.t;
  tbl : (string, item) Hashtbl.t;
}

let create () = { r_mutex = Mutex.create (); tbl = Hashtbl.create 32 }
let default = create ()

let intern reg name make classify =
  Mutex.lock reg.r_mutex;
  let r =
    match Hashtbl.find_opt reg.tbl name with
    | Some item -> (
        match classify item with
        | Some x -> x
        | None ->
            Mutex.unlock reg.r_mutex;
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered with another type" name))
    | None ->
        let x, item = make () in
        Hashtbl.add reg.tbl name item;
        x
  in
  Mutex.unlock reg.r_mutex;
  r

let counter ?(registry = default) name =
  intern registry name
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

let gauge ?(registry = default) name =
  intern registry name
    (fun () ->
      let g = { g_name = name; g_cell = Atomic.make 0. } in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let histogram ?(registry = default) name =
  intern registry name
    (fun () ->
      let h =
        {
          h_name = name;
          mutex = Mutex.create ();
          buckets = Array.make (Array.length bucket_bounds + 1) 0;
          count = 0;
          sum = 0.;
          max_value = Float.neg_infinity;
        }
      in
      (h, H h))
    (function H h -> Some h | C _ | G _ -> None)

let incr ?(by = 1) c =
  if Runtime.is_enabled () then begin
    ignore (Atomic.fetch_and_add c.cell by);
    if Ring.active () then Ring.record (Ring.Count (c.c_name, by))
  end

let counter_value c = Atomic.get c.cell
let set g v = if Runtime.is_enabled () then Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let bucket_index v =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n then n else if v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Runtime.is_enabled () then begin
    Mutex.lock h.mutex;
    h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v > h.max_value then h.max_value <- v;
    Mutex.unlock h.mutex
  end

let reset ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> Atomic.set c.cell 0
      | G g -> Atomic.set g.g_cell 0.
      | H h ->
          Mutex.lock h.mutex;
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.count <- 0;
          h.sum <- 0.;
          h.max_value <- Float.neg_infinity;
          Mutex.unlock h.mutex)
    registry.tbl;
  Mutex.unlock registry.r_mutex

type hist_snapshot = {
  count : int;
  sum : float;
  max_value : float; (* neg_infinity when empty *)
  buckets : (float * int) list; (* (upper bound, count), overflow = +inf *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name item ->
      match item with
      | C c -> cs := (name, Atomic.get c.cell) :: !cs
      | G g -> gs := (name, Atomic.get g.g_cell) :: !gs
      | H h ->
          Mutex.lock h.mutex;
          let buckets =
            List.init
              (Array.length h.buckets)
              (fun i ->
                let bound =
                  if i < Array.length bucket_bounds then bucket_bounds.(i)
                  else Float.infinity
                in
                (bound, h.buckets.(i)))
          in
          let s =
            { count = h.count; sum = h.sum; max_value = h.max_value; buckets }
          in
          Mutex.unlock h.mutex;
          hs := (name, s) :: !hs)
    registry.tbl;
  Mutex.unlock registry.r_mutex;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

let mean (h : hist_snapshot) = if h.count = 0 then 0. else h.sum /. float_of_int h.count
