(** The three exporters: pretty console span tree, JSONL event stream,
    and Prometheus-style text dump. *)

(** Dependency-free JSON values, used by the JSONL exporter and by
    benches that emit JSON reports. Numbers are kept as raw literals so
    64-bit timestamps survive a round-trip exactly. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of string  (** raw literal *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val of_int : int -> t
  val of_int64 : int64 -> t

  (** Non-finite floats are encoded as the strings ["nan"], ["inf"],
      ["-inf"] (JSON has no literals for them). *)
  val of_float : float -> t

  val to_string : t -> string

  exception Parse_error of string

  (** @raise Parse_error on malformed input. *)
  val of_string : string -> t

  val member : string -> t -> t option
  val to_str : t -> string option
  val to_i : t -> int option
  val to_i64 : t -> int64 option
  val to_f : t -> float option
end

type span_event = {
  id : int;
  parent : int option;
  name : string;
  thread : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

(** One JSONL line each. Span events are emitted pre-order with integer
    ids, children referencing their parent. A [Header_event] — the
    first line of a traced run's stream — carries the stream version
    and the handshake-derived trace identity. *)
type event =
  | Header_event of { version : int; trace_id : string; party : string }
  | Span_event of span_event
  | Counter_event of { name : string; value : int }
  | Gauge_event of { name : string; value : float }
  | Histogram_event of {
      name : string;
      count : int;
      sum : float;
      max_value : float;
      buckets : (float * int) list;  (** only non-empty buckets *)
    }

(** Current trace-header stream version. *)
val trace_header_version : int

(** [trace_header ()] is the header event for the ambient {!Context},
    or [None] when no trace id has been established. *)
val trace_header : unit -> event option

(** [span_events roots] flattens span trees to events, pre-order. *)
val span_events : Span.t list -> event list

val snapshot_events : Metrics.snapshot -> event list

(** [jsonl events] is one JSON object per line (newline-terminated). *)
val jsonl : event list -> string

exception Parse_error of string

(** Inverse of {!jsonl}; blank lines are skipped.
    @raise Parse_error on malformed lines. *)
val events_of_jsonl : string -> event list

(** [spans_of_events events] rebuilds the span forest from its events
    (inverse of {!span_events} up to bucket elision). *)
val spans_of_events : event list -> Span.t list

(** [pp_tree fmt roots] renders an indented span tree with durations and
    attributes, one block per root. *)
val pp_tree : Format.formatter -> Span.t list -> unit

(** [prometheus snapshot] is the text exposition format: counters,
    gauges, and histograms with cumulative [le] buckets. *)
val prometheus : Metrics.snapshot -> string

(** [chrome_trace parties] renders one Chrome trace-event JSON document
    (loadable in Perfetto / [chrome://tracing]) from per-party event
    lists: each [(label, events)] becomes one process named [label];
    span events become ["ph":"X"] duration slices (timestamps in µs).
    Callers align clocks first — timestamps are used as given. *)
val chrome_trace : (string * event list) list -> string

(** [git_rev ()] is the short git revision of the working tree, or
    ["unknown"] outside a checkout. *)
val git_rev : unit -> string

(** [box_profile ()] is a hostname-free description of the machine for
    bench report headers: [cores], [degraded] (single-core box),
    [os_type], [word_size], [ocaml_version], [git_rev]. *)
val box_profile : unit -> (string * Json.t) list
