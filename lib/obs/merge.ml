(* Joining two parties' JSONL streams into one timeline.

   Each side of a protocol run exports its own JSONL file (trace header
   + span events + metric snapshot). This module joins them on the
   handshake-derived trace id, aligns the two clocks using the
   handshake span — both sides bracket the same config-fingerprint
   exchange, so the midpoints of their handshake spans mark (nearly)
   the same instant — and derives the cross-party views the psi_trace
   CLI reports: critical path, compute vs. wire-wait per protocol
   step, pool/ecache counter attribution, and the per-key leakage
   ledger. *)

type party = {
  p_label : string;
  p_source : string;
  p_trace_id : string option;
  p_version : int option;
  p_offset_ns : int64; (* clock shift applied, relative to the reference *)
  p_events : Export.event list; (* span times already shifted *)
  p_spans : Span.t list;
  p_orphans : int;
}

type step = {
  s_party : string;
  s_path : string;
  s_total_ns : int64;
  s_wire_ns : int64; (* wire/recv + wire/send descendants *)
}

type t = {
  traces : string list; (* distinct trace ids, first-seen order *)
  parties : party list;
  steps : step list;
  critical : (string * (string * int64) list) option;
      (* (party, root-to-leaf chain of (name, dur)) *)
}

(* ---------------- per-file digestion ---------------- *)

let span_evs events =
  List.filter_map
    (function Export.Span_event e -> Some e | _ -> None)
    events

let counters events =
  List.filter_map
    (function
      | Export.Counter_event { name; value } -> Some (name, value) | _ -> None)
    events

let header events =
  List.find_map
    (function
      | Export.Header_event { version; trace_id; party } ->
          Some (version, trace_id, party)
      | _ -> None)
    events

let orphan_count events =
  let evs = span_evs events in
  let ids = Hashtbl.create 64 in
  List.iter (fun (e : Export.span_event) -> Hashtbl.replace ids e.id ()) evs;
  List.length
    (List.filter
       (fun (e : Export.span_event) ->
         match e.parent with
         | Some p -> not (Hashtbl.mem ids p)
         | None -> false)
       evs)

let rec find_span name span =
  if String.equal (Span.name span) name then Some span
  else List.find_map (find_span name) (Span.children span)

let find_in_forest name spans = List.find_map (find_span name) spans

let midpoint span =
  Int64.add (Span.start_ns span) (Int64.div (Span.dur_ns span) 2L)

let shift_events offset events =
  if Int64.equal offset 0L then events
  else
    List.map
      (function
        | Export.Span_event e ->
            Export.Span_event { e with start_ns = Int64.add e.start_ns offset }
        | ev -> ev)
      events

let root_attr key spans =
  List.find_map (fun s -> List.assoc_opt key (Span.attrs s)) spans

(* ---------------- merge ---------------- *)

let of_files files =
  let raw =
    List.map
      (fun (source, content) ->
        let events = Export.events_of_jsonl content in
        let spans = Export.spans_of_events events in
        let version, trace_id, party_label =
          match header events with
          | Some (v, tid, p) -> (Some v, Some tid, if p = "" then None else Some p)
          | None -> (None, None, None)
        in
        let label =
          match party_label with
          | Some p -> p
          | None -> (
              (* fall back to root span attrs, then the file name *)
              match root_attr Context.party_attr spans with
              | Some p -> p
              | None -> Filename.basename source)
        in
        let trace_id =
          match trace_id with
          | Some _ as t -> t
          | None -> root_attr Context.trace_id_attr spans
        in
        (source, label, version, trace_id, events, spans))
      files
  in
  (* Clock alignment: shift every party so handshake midpoints agree
     with the reference party (the receiver "R" when present). *)
  let reference =
    match
      List.find_opt (fun (_, label, _, _, _, _) -> String.equal label "R") raw
    with
    | Some r -> Some r
    | None -> ( match raw with r :: _ -> Some r | [] -> None)
  in
  let ref_mid =
    Option.bind reference (fun (_, _, _, _, _, spans) ->
        Option.map midpoint (find_in_forest "handshake" spans))
  in
  let parties =
    List.map
      (fun (source, label, version, trace_id, events, spans) ->
        let offset =
          match (ref_mid, find_in_forest "handshake" spans) with
          | Some r, Some h -> Int64.sub r (midpoint h)
          | _ -> 0L
        in
        let events = shift_events offset events in
        let spans =
          if Int64.equal offset 0L then spans
          else Export.spans_of_events events
        in
        {
          p_label = label;
          p_source = source;
          p_trace_id = trace_id;
          p_version = version;
          p_offset_ns = offset;
          p_events = events;
          p_spans = spans;
          p_orphans = orphan_count events;
        })
      raw
  in
  let traces =
    List.fold_left
      (fun acc p ->
        match p.p_trace_id with
        | Some tid when not (List.mem tid acc) -> acc @ [ tid ]
        | _ -> acc)
      [] parties
  in
  (* Protocol steps: roots and two levels below them, excluding the
     wire spans themselves (those are what we attribute as wait). *)
  let is_wire name =
    String.length name >= 5 && String.equal (String.sub name 0 5) "wire/"
  in
  let rec wire_ns span =
    let own = if is_wire (Span.name span) then Span.dur_ns span else 0L in
    List.fold_left
      (fun acc c -> Int64.add acc (wire_ns c))
      own (Span.children span)
  in
  let steps =
    List.concat_map
      (fun p ->
        let rec walk depth path span acc =
          let name = Span.name span in
          if is_wire name then acc
          else begin
            let full = if path = "" then name else path ^ "/" ^ name in
            let acc =
              {
                s_party = p.p_label;
                s_path = full;
                s_total_ns = Span.dur_ns span;
                s_wire_ns = wire_ns span;
              }
              :: acc
            in
            if depth < 2 then
              List.fold_left (fun acc c -> walk (depth + 1) full c acc) acc
                (Span.children span)
            else acc
          end
        in
        List.rev (List.fold_left (fun acc r -> walk 0 "" r acc) [] p.p_spans))
      parties
  in
  (* Critical path: from the longest root anywhere, follow the longest
     child at each level. With wire waits attributed per step this is
     the chain a latency fix has to shorten. *)
  let longest spans =
    List.fold_left
      (fun best s ->
        match best with
        | Some b when Int64.compare (Span.dur_ns b) (Span.dur_ns s) >= 0 -> best
        | _ -> Some s)
      None spans
  in
  let critical =
    let best =
      List.fold_left
        (fun acc p ->
          match longest p.p_spans with
          | Some s -> (
              match acc with
              | Some (_, b) when Int64.compare (Span.dur_ns b) (Span.dur_ns s) >= 0
                -> acc
              | _ -> Some (p.p_label, s))
          | None -> acc)
        None parties
    in
    Option.map
      (fun (label, root) ->
        let rec chain span acc =
          let acc = (Span.name span, Span.dur_ns span) :: acc in
          match longest (Span.children span) with
          | Some c -> chain c acc
          | None -> List.rev acc
        in
        (label, chain root []))
      best
  in
  { traces; parties; steps; critical }

(* ---------------- derived tables ---------------- *)

let prefixed prefixes (name, _) =
  List.exists
    (fun p ->
      String.length name >= String.length p
      && String.equal (String.sub name 0 (String.length p)) p)
    prefixes

let attribution t =
  List.concat_map
    (fun p ->
      counters p.p_events
      |> List.filter (prefixed [ "pool."; "ecache." ])
      |> List.filter (fun (_, v) -> v <> 0)
      |> List.map (fun (n, v) -> (p.p_label, n, v)))
    t.parties

(* The ledger counters live in one shared registry when both parties
   run in-process, so de-duplicate by counter name taking the max. *)
let leakage t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      counters p.p_events
      |> List.filter (prefixed [ "leakage." ])
      |> List.iter (fun (n, v) ->
             let prev = Option.value ~default:0 (Hashtbl.find_opt tbl n) in
             if v > prev then Hashtbl.replace tbl n v))
    t.parties;
  Hashtbl.fold (fun n v acc -> (n, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_orphans t =
  List.fold_left (fun acc p -> acc + p.p_orphans) 0 t.parties

let chrome t =
  Export.chrome_trace (List.map (fun p -> (p.p_label, p.p_events)) t.parties)

(* ---------------- report ---------------- *)

let pp_ms fmt ns = Format.fprintf fmt "%.3fms" (Int64.to_float ns /. 1e6)

let pp_summary fmt t =
  Format.fprintf fmt "traces: %d@\n" (List.length t.traces);
  List.iter (fun tid -> Format.fprintf fmt "trace_id: %s@\n" tid) t.traces;
  Format.fprintf fmt "parties: %d (%s)@\n" (List.length t.parties)
    (String.concat ", " (List.map (fun p -> p.p_label) t.parties));
  Format.fprintf fmt "orphan spans: %d@\n" (total_orphans t);
  List.iter
    (fun p ->
      if not (Int64.equal p.p_offset_ns 0L) then
        Format.fprintf fmt "clock offset: %s shifted %+.3fus@\n" p.p_label
          (Int64.to_float p.p_offset_ns /. 1e3))
    t.parties;
  (match t.critical with
  | None -> ()
  | Some (label, chain) ->
      Format.fprintf fmt "critical path (%s):@\n" label;
      List.iteri
        (fun i (name, dur) ->
          Format.fprintf fmt "  %s%-36s %a@\n"
            (String.concat "" (List.init i (fun _ -> "  ")))
            name pp_ms dur)
        chain);
  (match t.steps with
  | [] -> ()
  | steps ->
      Format.fprintf fmt "compute vs wire-wait per step:@\n";
      Format.fprintf fmt "  %-5s %-44s %12s %12s %12s %6s@\n" "party" "step"
        "total" "compute" "wire-wait" "wait%";
      List.iter
        (fun s ->
          let compute = Int64.sub s.s_total_ns s.s_wire_ns in
          let pct =
            if Int64.equal s.s_total_ns 0L then 0.
            else Int64.to_float s.s_wire_ns /. Int64.to_float s.s_total_ns *. 100.
          in
          Format.fprintf fmt "  %-5s %-44s %12s %12s %12s %5.1f%%@\n" s.s_party
            s.s_path
            (Format.asprintf "%a" pp_ms s.s_total_ns)
            (Format.asprintf "%a" pp_ms compute)
            (Format.asprintf "%a" pp_ms s.s_wire_ns)
            pct)
        steps);
  (match attribution t with
  | [] -> ()
  | rows ->
      Format.fprintf fmt "pool/ecache attribution:@\n";
      List.iter
        (fun (party, name, v) ->
          Format.fprintf fmt "  [%s] %-40s %d@\n" party name v)
        rows);
  match leakage t with
  | [] -> ()
  | rows ->
      Format.fprintf fmt "leakage ledger:@\n";
      List.iter
        (fun (name, v) -> Format.fprintf fmt "  %-46s %d@\n" name v)
        rows
