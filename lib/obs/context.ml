(* Ambient trace identity shared by both halves of a protocol run.

   The trace id is process-wide (two parties in one process — the
   in-process Runner — share one run and therefore one id); the party
   label is per-thread, because that same in-process run executes the
   sender and receiver on different threads. Neither is ever sent on
   the wire: both sides derive the same id from handshake material they
   already exchange, so transcripts stay byte-identical. *)

let trace_id_cell : string option Atomic.t = Atomic.make None
let mutex = Mutex.create ()
let parties : (int, string) Hashtbl.t = Hashtbl.create 8

let set_trace_id id = Atomic.set trace_id_cell (Some id)
let trace_id () = Atomic.get trace_id_cell

let set_party label =
  Mutex.lock mutex;
  Hashtbl.replace parties (Thread.id (Thread.self ())) label;
  Mutex.unlock mutex

let party () =
  Mutex.lock mutex;
  let r = Hashtbl.find_opt parties (Thread.id (Thread.self ())) in
  Mutex.unlock mutex;
  r

let clear () =
  Atomic.set trace_id_cell None;
  Mutex.lock mutex;
  Hashtbl.reset parties;
  Mutex.unlock mutex

let trace_id_attr = "trace_id"
let party_attr = "party"

let stamp attrs =
  let add k v attrs = if List.mem_assoc k attrs then attrs else (k, v) :: attrs in
  let attrs =
    match party () with None -> attrs | Some p -> add party_attr p attrs
  in
  match trace_id () with None -> attrs | Some t -> add trace_id_attr t attrs
