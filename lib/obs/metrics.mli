(** A process-wide metrics registry: counters, gauges, and log-scale
    histograms.

    Instruments are {e registered} eagerly (typically at module
    initialization) and {e updated} only while {!Runtime.is_enabled} —
    an update when telemetry is off is one atomic load and a branch.
    Counter updates are atomic and histogram updates mutex-protected,
    so probes are safe from [Domain]-parallel workers and [Thread]s
    alike. *)

type counter
type gauge
type histogram

type registry

val create : unit -> registry

(** The registry every probe in the stack uses unless told otherwise. *)
val default : registry

(** [counter ?registry name] finds or creates the counter [name].
    @raise Invalid_argument if [name] is registered as another type. *)
val counter : ?registry:registry -> string -> counter

val gauge : ?registry:registry -> string -> gauge

(** [histogram ?registry name] finds or creates a histogram with fixed
    power-of-two bucket bounds [2^0 .. 2^39] plus an overflow bucket. *)
val histogram : ?registry:registry -> string -> histogram

(** Upper bounds shared by all histograms. *)
val bucket_bounds : float array

(** [incr ?by c] adds [by] (default 1) when telemetry is enabled. *)
val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** [set g v] stores [v] when telemetry is enabled. *)
val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** [observe h v] records [v] into the bucket with the smallest bound
    [>= v] (overflow past [2^39]) when telemetry is enabled. *)
val observe : histogram -> float -> unit

(** [reset ()] zeroes every instrument in the registry (instruments stay
    registered). *)
val reset : ?registry:registry -> unit -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  max_value : float;  (** [neg_infinity] when empty *)
  buckets : (float * int) list;
      (** (upper bound, count) per bucket; the overflow bound is
          [infinity] *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

(** [snapshot ()] is a consistent-enough copy of the registry: each
    instrument is read atomically, the set as a whole is not. *)
val snapshot : ?registry:registry -> unit -> snapshot

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option
val find_histogram : snapshot -> string -> hist_snapshot option

val mean : hist_snapshot -> float
