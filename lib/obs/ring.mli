(** Always-on bounded flight recorder.

    A lock-free fixed-size ring of the most recent telemetry events
    (span enter/exit, counter bumps, free-form notes), intended to stay
    installed in production and be dumped when something goes wrong —
    an exception that exhausts {!Core.Session.run_resilient}'s retry
    budget, or a signal.

    Writers pay one fetch-and-add plus one atomic store; when no ring
    is installed every probe is a single atomic load. {!dump} is
    best-effort under concurrent writing (a slot may briefly hold an
    event newer than its neighbours), which is acceptable for a
    forensic trail. *)

type kind =
  | Enter of string  (** span opened *)
  | Exit of string * int64  (** span closed, with its duration *)
  | Count of string * int  (** counter bumped by [int] *)
  | Note of string  (** free-form marker (retries, reconnects, …) *)

type event = { seq : int; at_ns : int64; thread : int; kind : kind }

(** [install ?capacity ()] starts recording into a fresh ring holding
    the last [capacity] (default 1024) events.
    @raise Invalid_argument if [capacity < 1]. *)
val install : ?capacity:int -> unit -> unit

val uninstall : unit -> unit
val active : unit -> bool

(** [record kind] appends an event if a ring is installed, else no-op.
    Call sites that must build an expensive [kind] should guard with
    {!active} first. *)
val record : kind -> unit

(** [note msg] = [record (Note msg)]. *)
val note : string -> unit

(** The surviving events, oldest first ([[]] if no ring). *)
val dump : unit -> event list

(** [set_sink f] registers the dump consumer invoked by {!trip}. *)
val set_sink : (event list -> unit) option -> unit

(** [trip reason] records [Note reason] and hands {!dump} to the sink —
    the "something went wrong, preserve the trail" entry point. *)
val trip : string -> unit

(** [install_signal signo] makes [signo] call [trip "signal"]. *)
val install_signal : int -> unit

val pp_kind : Format.formatter -> kind -> unit

(** [pp fmt events] renders a dump, one line per event, timestamps
    relative to the oldest surviving event. *)
val pp : Format.formatter -> event list -> unit

(** [dump_to_channel oc] writes [pp (dump ())] to [oc]. *)
val dump_to_channel : out_channel -> unit
