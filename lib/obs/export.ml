(* The three exporters: pretty console span tree, JSONL event stream
   (with a parser, so streams round-trip), Prometheus text format. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON (no external deps)                                     *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of string (* raw literal: preserves int64 exactly *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let of_int i = Num (string_of_int i)
  let of_int64 i = Num (Int64.to_string i)

  let of_float f =
    if Float.is_integer f && Float.abs f < 1e15 then Num (Printf.sprintf "%.0f" f)
    else if Float.is_nan f then Str "nan"
    else if f = Float.infinity then Str "inf"
    else if f = Float.neg_infinity then Str "-inf"
    else Num (Printf.sprintf "%.17g" f)

  let escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num raw -> Buffer.add_string b raw
    | Str s -> escape b s
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            write b x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape b k;
            Buffer.add_char b ':';
            write b v)
          fields;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    write b j;
    Buffer.contents b

  exception Parse_error of string

  let of_string s =
    let pos = ref 0 in
    let len = String.length s in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' -> (
              if !pos >= len then fail "unterminated escape"
              else begin
                let e = s.[!pos] in
                advance ();
                match e with
                | '"' | '\\' | '/' ->
                    Buffer.add_char b e;
                    go ()
                | 'n' ->
                    Buffer.add_char b '\n';
                    go ()
                | 'r' ->
                    Buffer.add_char b '\r';
                    go ()
                | 't' ->
                    Buffer.add_char b '\t';
                    go ()
                | 'b' ->
                    Buffer.add_char b '\b';
                    go ()
                | 'f' ->
                    Buffer.add_char b '\012';
                    go ()
                | 'u' ->
                    if !pos + 4 > len then fail "bad \\u escape"
                    else begin
                      let hex_digit c =
                        match c with
                        | '0' .. '9' -> Char.code c - Char.code '0'
                        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                        | _ -> fail "bad \\u escape"
                      in
                      let code =
                        let d k = hex_digit s.[!pos + k] in
                        (d 0 lsl 12) lor (d 1 lsl 8) lor (d 2 lsl 4) lor d 3
                      in
                      pos := !pos + 4;
                      if code >= 0xD800 && code <= 0xDFFF then
                        fail "surrogate \\u escape unsupported"
                      else if code < 0x80 then Buffer.add_char b (Char.chr code)
                      else if code < 0x800 then begin
                        (* Re-encode as UTF-8 (we emit raw bytes, but
                           accept what other writers produce). *)
                        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                      end
                      else begin
                        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                      end;
                      go ()
                    end
                | _ -> fail "bad escape"
              end)
          | c ->
              Buffer.add_char b c;
              go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number"
      else Num (String.sub s start (!pos - start))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            fields []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            items []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage" else v

  let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

  let to_str = function Str s -> Some s | _ -> None
  let to_i = function Num raw -> int_of_string_opt raw | _ -> None
  let to_i64 = function Num raw -> Int64.of_string_opt raw | _ -> None

  let to_f = function
    | Num raw -> float_of_string_opt raw
    | Str "inf" -> Some Float.infinity
    | Str "-inf" -> Some Float.neg_infinity
    | Str "nan" -> Some Float.nan
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type span_event = {
  id : int;
  parent : int option;
  name : string;
  thread : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

type event =
  | Header_event of { version : int; trace_id : string; party : string }
  | Span_event of span_event
  | Counter_event of { name : string; value : int }
  | Gauge_event of { name : string; value : float }
  | Histogram_event of {
      name : string;
      count : int;
      sum : float;
      max_value : float;
      buckets : (float * int) list;
    }

(* The trace header is the first JSONL line of a traced run: stream
   format version plus the handshake-derived identity. Bump the version
   when the line set or semantics change. *)
let trace_header_version = 1

let trace_header () =
  match Context.trace_id () with
  | None -> None
  | Some trace_id ->
      Some
        (Header_event
           {
             version = trace_header_version;
             trace_id;
             party = Option.value ~default:"" (Context.party ());
           })

let span_events roots =
  let next = ref 0 in
  let rec walk parent span acc =
    let id = !next in
    incr next;
    let ev =
      Span_event
        {
          id;
          parent;
          name = Span.name span;
          thread = Span.thread span;
          start_ns = Span.start_ns span;
          dur_ns = Span.dur_ns span;
          attrs = Span.attrs span;
        }
    in
    List.fold_left (fun acc child -> walk (Some id) child acc) (ev :: acc)
      (Span.children span)
  in
  List.rev (List.fold_left (fun acc root -> walk None root acc) [] roots)

let snapshot_events (s : Metrics.snapshot) =
  List.map (fun (name, value) -> Counter_event { name; value }) s.Metrics.counters
  @ List.map (fun (name, value) -> Gauge_event { name; value }) s.Metrics.gauges
  @ List.map
      (fun (name, (h : Metrics.hist_snapshot)) ->
        Histogram_event
          {
            name;
            count = h.Metrics.count;
            sum = h.Metrics.sum;
            max_value = h.Metrics.max_value;
            buckets = h.Metrics.buckets;
          })
      s.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let json_of_event = function
  | Header_event e ->
      Json.Obj
        [
          ("type", Json.Str "trace_header");
          ("version", Json.of_int e.version);
          ("trace_id", Json.Str e.trace_id);
          ("party", Json.Str e.party);
        ]
  | Span_event e ->
      Json.Obj
        ([ ("type", Json.Str "span"); ("id", Json.of_int e.id) ]
        @ (match e.parent with
          | Some p -> [ ("parent", Json.of_int p) ]
          | None -> [])
        @ [
            ("name", Json.Str e.name);
            ("thread", Json.of_int e.thread);
            ("start_ns", Json.of_int64 e.start_ns);
            ("dur_ns", Json.of_int64 e.dur_ns);
            ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.attrs));
          ])
  | Counter_event e ->
      Json.Obj
        [ ("type", Json.Str "counter"); ("name", Json.Str e.name);
          ("value", Json.of_int e.value) ]
  | Gauge_event e ->
      Json.Obj
        [ ("type", Json.Str "gauge"); ("name", Json.Str e.name);
          ("value", Json.of_float e.value) ]
  | Histogram_event e ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("name", Json.Str e.name);
          ("count", Json.of_int e.count);
          ("sum", Json.of_float e.sum);
          ("max", Json.of_float e.max_value);
          ( "buckets",
            Json.Arr
              (List.filter_map
                 (fun (bound, n) ->
                   if n = 0 then None
                   else Some (Json.Arr [ Json.of_float bound; Json.of_int n ]))
                 e.buckets) );
        ]

let jsonl events =
  String.concat "" (List.map (fun e -> Json.to_string (json_of_event e) ^ "\n") events)

exception Parse_error of string

let get_exn what = function
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing or ill-typed field %S" what))

let event_of_json j =
  let field name conv = Option.bind (Json.member name j) conv in
  match get_exn "type" (field "type" Json.to_str) with
  | "trace_header" ->
      Header_event
        {
          version = get_exn "version" (field "version" Json.to_i);
          trace_id = get_exn "trace_id" (field "trace_id" Json.to_str);
          party = get_exn "party" (field "party" Json.to_str);
        }
  | "span" ->
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj fields) ->
            List.map (fun (k, v) -> (k, get_exn "attr" (Json.to_str v))) fields
        | _ -> []
      in
      Span_event
        {
          id = get_exn "id" (field "id" Json.to_i);
          parent = field "parent" Json.to_i;
          name = get_exn "name" (field "name" Json.to_str);
          thread = get_exn "thread" (field "thread" Json.to_i);
          start_ns = get_exn "start_ns" (field "start_ns" Json.to_i64);
          dur_ns = get_exn "dur_ns" (field "dur_ns" Json.to_i64);
          attrs;
        }
  | "counter" ->
      Counter_event
        {
          name = get_exn "name" (field "name" Json.to_str);
          value = get_exn "value" (field "value" Json.to_i);
        }
  | "gauge" ->
      Gauge_event
        {
          name = get_exn "name" (field "name" Json.to_str);
          value = get_exn "value" (field "value" Json.to_f);
        }
  | "histogram" ->
      let buckets =
        match Json.member "buckets" j with
        | Some (Json.Arr pairs) ->
            List.map
              (function
                | Json.Arr [ bound; n ] ->
                    (get_exn "bound" (Json.to_f bound), get_exn "n" (Json.to_i n))
                | _ -> raise (Parse_error "bad bucket"))
              pairs
        | _ -> []
      in
      Histogram_event
        {
          name = get_exn "name" (field "name" Json.to_str);
          count = get_exn "count" (field "count" Json.to_i);
          sum = get_exn "sum" (field "sum" Json.to_f);
          max_value = get_exn "max" (field "max" Json.to_f);
          buckets;
        }
  | other -> raise (Parse_error (Printf.sprintf "unknown event type %S" other))

let events_of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line ->
         match Json.of_string line with
         | j -> event_of_json j
         | exception Json.Parse_error m -> raise (Parse_error m))

let spans_of_events events =
  (* Children arrive after their parent (pre-order emission), so one
     right fold rebuilds bottom-up: collect each id's children first. *)
  let span_evs =
    List.filter_map (function Span_event e -> Some e | _ -> None) events
  in
  let children_of = Hashtbl.create 16 in
  List.iter
    (fun (e : _) ->
      match e.parent with
      | Some p ->
          Hashtbl.replace children_of p
            (e :: Option.value ~default:[] (Hashtbl.find_opt children_of p))
      | None -> ())
    (List.rev span_evs);
  let rec build e =
    let kids = Option.value ~default:[] (Hashtbl.find_opt children_of e.id) in
    Span.make ~name:e.name ~attrs:e.attrs ~thread:e.thread ~start_ns:e.start_ns
      ~dur_ns:e.dur_ns ~children:(List.map build kids)
  in
  List.filter_map (fun e -> if e.parent = None then Some (build e) else None) span_evs

(* ------------------------------------------------------------------ *)
(* Pretty console span tree                                            *)
(* ------------------------------------------------------------------ *)

let pp_attrs fmt = function
  | [] -> ()
  | attrs ->
      Format.fprintf fmt "  (%s)"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))

let pp_tree fmt roots =
  let rec pp_span prefix is_last span =
    let branch, cont =
      match prefix with
      | None -> ("", "")
      | Some p -> ((p ^ if is_last then "└─ " else "├─ "), p ^ if is_last then "   " else "│  ")
    in
    let label = Format.asprintf "%s%s" branch (Span.name span) in
    Format.fprintf fmt "%-44s %a%a@\n" label Clock.pp_duration (Span.dur_ns span)
      pp_attrs (Span.attrs span);
    let kids = Span.children span in
    let n = List.length kids in
    List.iteri (fun i child -> pp_span (Some cont) (i = n - 1) child) kids
  in
  List.iter
    (fun root ->
      Format.fprintf fmt "[thread %d]@\n" (Span.thread root);
      pp_span None true root)
    roots

(* ------------------------------------------------------------------ *)
(* Prometheus text format                                              *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let prom_float f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus (s : Metrics.snapshot) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (prom_float v)))
    s.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.hist_snapshot)) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      List.iter
        (fun (bound, count) ->
          cumulative := !cumulative + count;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float bound) !cumulative))
        h.Metrics.buckets;
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float h.Metrics.sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.Metrics.count))
    s.Metrics.histograms;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace-event format (Perfetto / chrome://tracing)             *)
(* ------------------------------------------------------------------ *)

let chrome_trace parties =
  (* Microseconds with nanosecond precision, as the format expects. *)
  let us ns = Json.Num (Printf.sprintf "%.3f" (Int64.to_float ns /. 1000.)) in
  let events =
    List.concat
      (List.mapi
         (fun i (party_label, evs) ->
           let pid = i + 1 in
           let meta =
             Json.Obj
               [
                 ("ph", Json.Str "M");
                 ("pid", Json.of_int pid);
                 ("name", Json.Str "process_name");
                 ("args", Json.Obj [ ("name", Json.Str party_label) ]);
               ]
           in
           meta
           :: List.filter_map
                (function
                  | Span_event e ->
                      Some
                        (Json.Obj
                           [
                             ("name", Json.Str e.name);
                             ("cat", Json.Str "psi");
                             ("ph", Json.Str "X");
                             ("ts", us e.start_ns);
                             ("dur", us e.dur_ns);
                             ("pid", Json.of_int pid);
                             ("tid", Json.of_int e.thread);
                             ( "args",
                               Json.Obj
                                 (List.map (fun (k, v) -> (k, Json.Str v)) e.attrs)
                             );
                           ])
                  | _ -> None)
                evs)
         parties)
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ])

(* ------------------------------------------------------------------ *)
(* Box profile for bench reports                                       *)
(* ------------------------------------------------------------------ *)

let git_rev () =
  let read () =
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = match input_line ic with l -> l | exception End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  in
  match read () with
  | rev -> rev
  | exception (Unix.Unix_error _ | Sys_error _) -> "unknown"

let box_profile () =
  let cores = Domain.recommended_domain_count () in
  [
    ("cores", Json.of_int cores);
    ("degraded", Json.Bool (cores <= 1));
    ("os_type", Json.Str Sys.os_type);
    ("word_size", Json.of_int Sys.word_size);
    ("ocaml_version", Json.Str Sys.ocaml_version);
    ("git_rev", Json.Str (git_rev ()));
  ]
