(* Wall clock forced monotone: concurrent readers CAS the latest
   observation so the sequence of returned stamps never decreases, even
   if the system clock steps backwards mid-run. *)

let last = Atomic.make 0L

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec fix () =
    let l = Atomic.get last in
    if Int64.compare t l <= 0 then l
    else if Atomic.compare_and_set last l t then t
    else fix ()
  in
  fix ()

let ns_to_ms ns = Int64.to_float ns /. 1e6

let pp_duration fmt ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Format.fprintf fmt "%.0fns" f
  else if f < 1e6 then Format.fprintf fmt "%.1fus" (f /. 1e3)
  else if f < 1e9 then Format.fprintf fmt "%.1fms" (f /. 1e6)
  else Format.fprintf fmt "%.2fs" (f /. 1e9)
