(** Merge two (or more) parties' exported JSONL streams into one
    cross-party timeline.

    Files are joined on the handshake-derived trace id (from the
    stream's trace header, falling back to root-span attrs), clocks are
    aligned on the midpoint of each side's ["handshake"] span — both
    sides bracket the same fingerprint exchange — and the result feeds
    the [psi_trace] CLI: critical path, compute vs. wire-wait per
    protocol step, [pool.*]/[ecache.*] attribution, the [leakage.*]
    ledger, and a Perfetto-loadable chrome trace. *)

type party = {
  p_label : string;  (** party id from the header ("R"/"S") or fallback *)
  p_source : string;  (** file name the stream came from *)
  p_trace_id : string option;
  p_version : int option;  (** trace-header stream version *)
  p_offset_ns : int64;  (** clock shift applied vs. the reference party *)
  p_events : Export.event list;  (** span times already shifted *)
  p_spans : Span.t list;
  p_orphans : int;  (** span events whose parent id is missing *)
}

type step = {
  s_party : string;
  s_path : string;  (** slash-joined span path, up to three levels deep *)
  s_total_ns : int64;
  s_wire_ns : int64;  (** wire/recv + wire/send descendant time *)
}

type t = {
  traces : string list;  (** distinct trace ids, first-seen order *)
  parties : party list;
  steps : step list;
  critical : (string * (string * int64) list) option;
      (** longest root's party and its longest-child chain *)
}

(** [of_files [(name, jsonl); ...]] parses and joins the streams.
    @raise Export.Parse_error on malformed input. *)
val of_files : (string * string) list -> t

(** Non-zero [pool.*]/[ecache.*] counters as [(party, name, value)]
    rows. *)
val attribution : t -> (string * string * int) list

(** [leakage.*] counters, de-duplicated across parties by max (both
    parties of an in-process run share one registry). *)
val leakage : t -> (string * int) list

val total_orphans : t -> int

(** Chrome trace-event document over the aligned per-party events. *)
val chrome : t -> string

(** Human-readable report; the first lines ([traces: n], [parties: n
    (...)], [orphan spans: n]) are stable and grep-able. *)
val pp_summary : Format.formatter -> t -> unit
