(** Model-vs-measured comparison: the generic core.

    This module knows nothing about the paper's cost model — it takes
    predicted and observed Ce counts and wire bits and reports relative
    errors. [Psi.Obs_report.model_vs_measured] computes the predictions
    from [Psi.Cost_model] and the observations from a metrics snapshot,
    then delegates here. *)

type comparison = {
  label : string;
  predicted_ce : float;
  observed_ce : float;
  ce_rel_error : float;  (** |obs - pred| / pred; [infinity] if pred = 0 *)
  predicted_bits : float;
  observed_bits : float;
  bits_rel_error : float;
  tolerance : float;
  within_tolerance : bool;
}

val compare :
  ?tolerance:float (** default 0.10 *) ->
  label:string ->
  predicted_ce:float ->
  observed_ce:float ->
  predicted_bits:float ->
  observed_bits:float ->
  unit ->
  comparison

val pp : Format.formatter -> comparison -> unit
val to_json : comparison -> Export.Json.t
