(* Bounded flight recorder: a fixed-size ring of recent telemetry
   events, cheap enough to leave on in production. Writers claim a slot
   with one fetch-and-add and store the event with one atomic set — no
   locks, safe from threads and domains alike. Readers ([dump]) get a
   best-effort snapshot: under heavy concurrent writing a slot can hold
   an event newer than its neighbours, which is fine for forensics. *)

type kind =
  | Enter of string
  | Exit of string * int64
  | Count of string * int
  | Note of string

type event = { seq : int; at_ns : int64; thread : int; kind : kind }

type ring = {
  cap : int;
  slots : event option Atomic.t array;
  cursor : int Atomic.t; (* next sequence number *)
}

let current : ring option Atomic.t = Atomic.make None
let sink : (event list -> unit) option Atomic.t = Atomic.make None
let default_capacity = 1024

let install ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Ring.install: capacity must be >= 1";
  Atomic.set current
    (Some
       {
         cap = capacity;
         slots = Array.init capacity (fun _ -> Atomic.make None);
         cursor = Atomic.make 0;
       })

let uninstall () = Atomic.set current None
let active () = Atomic.get current <> None

let record kind =
  match Atomic.get current with
  | None -> ()
  | Some r ->
      let seq = Atomic.fetch_and_add r.cursor 1 in
      Atomic.set r.slots.(seq mod r.cap)
        (Some
           {
             seq;
             at_ns = Clock.now_ns ();
             thread = Thread.id (Thread.self ());
             kind;
           })

let note msg = record (Note msg)

let dump () =
  match Atomic.get current with
  | None -> []
  | Some r ->
      Array.to_list r.slots
      |> List.filter_map Atomic.get
      |> List.sort (fun a b -> Int.compare a.seq b.seq)

let set_sink f = Atomic.set sink f

let trip reason =
  note reason;
  match Atomic.get sink with None -> () | Some f -> f (dump ())

let install_signal signo =
  Sys.set_signal signo (Sys.Signal_handle (fun _ -> trip "signal"))

let pp_kind fmt = function
  | Enter name -> Format.fprintf fmt "enter %s" name
  | Exit (name, dur) ->
      Format.fprintf fmt "exit  %s  %a" name Clock.pp_duration dur
  | Count (name, by) -> Format.fprintf fmt "count %s +%d" name by
  | Note msg -> Format.fprintf fmt "note  %s" msg

let pp fmt events =
  match events with
  | [] -> Format.fprintf fmt "flight recorder: empty@\n"
  | first :: _ ->
      Format.fprintf fmt "flight recorder (%d events, oldest first):@\n"
        (List.length events);
      List.iter
        (fun e ->
          let rel =
            Format.asprintf "%a" Clock.pp_duration (Int64.sub e.at_ns first.at_ns)
          in
          Format.fprintf fmt "  +%-12s [#%d t%d] %a@\n" rel e.seq e.thread
            pp_kind e.kind)
        events

let dump_to_channel oc =
  output_string oc (Format.asprintf "%a" pp (dump ()))
