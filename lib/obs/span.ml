type t = {
  name : string;
  mutable attrs : (string * string) list;
  thread : int;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable rev_children : t list;
}

let name s = s.name
let attrs s = s.attrs
let thread s = s.thread
let start_ns s = s.start_ns
let dur_ns s = s.dur_ns
let children s = List.rev s.rev_children

type trace = {
  mutex : Mutex.t;
  mutable rev_roots : t list;
  stacks : (int, t list) Hashtbl.t; (* thread id -> open-span stack *)
}

let current : trace option Atomic.t = Atomic.make None
let tracing () = Atomic.get current <> None

let start_trace () =
  Atomic.set current
    (Some { mutex = Mutex.create (); rev_roots = []; stacks = Hashtbl.create 8 })

let stop_trace () =
  match Atomic.exchange current None with
  | None -> []
  | Some tr ->
      (* Still-open spans (unbalanced stacks) are dropped; roots are
         returned in start order across threads. *)
      List.sort (fun a b -> Int64.compare a.start_ns b.start_ns) (List.rev tr.rev_roots)

(* Roots carry the ambient trace identity as attrs; children inherit it
   by nesting, so the JSONL stream stays lean. *)
let add_root tr span =
  span.attrs <- Context.stamp span.attrs;
  tr.rev_roots <- span :: tr.rev_roots

type handle = unit -> unit

let idle_handle : handle = fun () -> ()

let enter ?(attrs = []) name =
  if Ring.active () then Ring.record (Ring.Enter name);
  match Atomic.get current with
  | None ->
      if Ring.active () then begin
        let t0 = Clock.now_ns () in
        fun () -> Ring.record (Ring.Exit (name, Int64.sub (Clock.now_ns ()) t0))
      end
      else idle_handle
  | Some tr ->
      let tid = Thread.id (Thread.self ()) in
      let span =
        { name; attrs; thread = tid; start_ns = Clock.now_ns (); dur_ns = 0L; rev_children = [] }
      in
      Mutex.lock tr.mutex;
      let stack = Option.value ~default:[] (Hashtbl.find_opt tr.stacks tid) in
      Hashtbl.replace tr.stacks tid (span :: stack);
      Mutex.unlock tr.mutex;
      fun () ->
        span.dur_ns <- Int64.sub (Clock.now_ns ()) span.start_ns;
        if Ring.active () then Ring.record (Ring.Exit (name, span.dur_ns));
        Mutex.lock tr.mutex;
        (match Hashtbl.find_opt tr.stacks tid with
        | Some (top :: rest) when top == span ->
            Hashtbl.replace tr.stacks tid rest;
            (match rest with
            | parent :: _ -> parent.rev_children <- span :: parent.rev_children
            | [] -> add_root tr span)
        | _ ->
            (* The stack was perturbed (span closed out of order, e.g. by
               an exception in a sibling) — keep the data as a root. *)
            add_root tr span);
        Mutex.unlock tr.mutex

let exit h = h ()

let with_ ?attrs name f =
  (* Fast path: no trace, no flight recorder — just run [f]. *)
  if Atomic.get current = None && not (Ring.active ()) then f ()
  else begin
    let h = enter ?attrs name in
    Fun.protect ~finally:h f
  end

let collect f =
  start_trace ();
  match f () with
  | r -> (r, stop_trace ())
  | exception e ->
      ignore (stop_trace ());
      raise e

(* Rebuilding (tests, JSONL import). *)
let make ~name ~attrs ~thread ~start_ns ~dur_ns ~children =
  { name; attrs; thread; start_ns; dur_ns; rev_children = List.rev children }
