(** Arbitrary-precision natural numbers.

    Values are immutable. The representation is an array of base-[2^26]
    limbs, least significant first, with no leading zero limb; callers
    never see the representation.

    This module replaces zarith (unavailable in this environment) for the
    cryptographic protocols of Agrawal et al., SIGMOD 2003. All operations
    are deterministic and allocation is proportional to operand size. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t

(** {1 Predicates and comparison} *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool

(** [compare a b] is negative, zero or positive as [a] is less than,
    equal to, or greater than [b]. *)
val compare : t -> t -> int

val min : t -> t -> t
val max : t -> t -> t

(** {1 Conversions} *)

(** [of_int n] converts a non-negative [int].
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> t

(** [to_int n] is [Some i] iff [n] fits in a non-negative OCaml [int]. *)
val to_int : t -> int option

(** [to_int_exn n] is [n] as an [int].
    @raise Invalid_argument if [n] does not fit. *)
val to_int_exn : t -> int

(** [of_bytes_be b] interprets [b] as a big-endian unsigned integer.
    The empty string maps to [zero]. *)
val of_bytes_be : string -> t

(** [to_bytes_be ?width n] is the big-endian encoding of [n], left-padded
    with zero bytes to [width] if given.
    @raise Invalid_argument if [n] needs more than [width] bytes. *)
val to_bytes_be : ?width:int -> t -> string

(** [of_hex s] parses a hexadecimal string (case-insensitive; may contain
    underscores and spaces as separators).
    @raise Invalid_argument on other characters or empty input. *)
val of_hex : string -> t

val to_hex : t -> string

(** [of_decimal s] parses a decimal string.
    @raise Invalid_argument on non-digit characters or empty input. *)
val of_decimal : string -> t

val to_decimal : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Bit-level access} *)

(** [num_bits n] is the position of the highest set bit plus one;
    [num_bits zero = 0]. *)
val num_bits : t -> int

(** [test_bit n i] is bit [i] of [n] (bit 0 is least significant). *)
val test_bit : t -> int -> bool

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val succ : t -> t

(** [sub a b] is [a - b].
    @raise Invalid_argument if [a < b]. *)
val sub : t -> t -> t

val pred : t -> t

val mul : t -> t -> t

(** [mul_schoolbook a b] forces the quadratic algorithm (exposed for the
    Karatsuba ablation bench and for cross-checking). *)
val mul_schoolbook : t -> t -> t

val sqr : t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** [divmod_binary a b] computes the same result by shift-and-subtract
    long division; slower but independent of the Knuth-D code path
    (used as a testing oracle). *)
val divmod_binary : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t

(** [pow b e] is [b] raised to the small exponent [e].
    @raise Invalid_argument if [e < 0]. *)
val pow : t -> int -> t

(**/**)

(** Representation access for sibling modules of this library (Montgomery
    arithmetic in {!Modular}). Not part of the public API contract. *)
module Internal : sig
  val base_bits : int
  val base : int
  val base_mask : int

  (** [limbs_padded n width] is a fresh little-endian limb array of length
      [width] (zero-padded).
      @raise Invalid_argument if [n] has more than [width] limbs. *)
  val limbs_padded : t -> int -> int array

  (** [of_limbs w] takes ownership of [w] (little-endian, possibly with
      leading zeros) and returns the value it denotes. *)
  val of_limbs : int array -> t

  val num_limbs : t -> int

  (** [raw_limbs n] is the value's own little-endian limb array, not a
      copy. Callers must treat it as read-only; mutating it corrupts the
      value. Exposed so allocation-free kernels ({!Modular.Mont}'s
      fixed-width arenas) can stage limbs without a fresh array per
      call. *)
  val raw_limbs : t -> int array

  (** Number of times division's add-back correction has fired (test
      observability for Algorithm D's rarest branch). *)
  val add_back_count : int ref
end
