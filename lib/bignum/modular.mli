(** Modular arithmetic over {!Nat}, including Montgomery exponentiation.

    The commutative encryption of Agrawal et al. is the power cipher
    [x^e mod p] over quadratic residues modulo a safe prime; this module
    provides the exponentiation kernel (the paper's dominant cost [Ce]). *)

(** [add a b m], [sub a b m], [mul a b m] reduce their result modulo [m].
    Arguments must already be in [[0, m)]. *)
val add : Nat.t -> Nat.t -> Nat.t -> Nat.t

val sub : Nat.t -> Nat.t -> Nat.t -> Nat.t
val mul : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [pow_binary b e m] is [b^e mod m] by plain square-and-multiply with a
    division-based reduction after every step. Exposed for the
    Montgomery-vs-binary ablation bench and as a testing oracle. *)
val pow_binary : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [pow b e m] is [b^e mod m]. Uses Montgomery multiplication with a
    4-bit window when [m] is odd, falling back to {!pow_binary} for even
    moduli.
    @raise Division_by_zero if [m] is zero. *)
val pow : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [inv a m] is the multiplicative inverse of [a] modulo [m], when
    [gcd(a, m) = 1]. *)
val inv : Nat.t -> Nat.t -> Nat.t option

(** [inv_exn a m] is {!inv}, raising on non-invertible input.
    @raise Invalid_argument if [gcd(a, m) <> 1]. *)
val inv_exn : Nat.t -> Nat.t -> Nat.t

(** {1 Montgomery contexts}

    A context precomputes the constants for a fixed odd modulus so that
    repeated exponentiations (the protocols encrypt thousands of values
    under the same prime) avoid per-call setup. *)

module Mont : sig
  type ctx

  (** [create m] precomputes a context for odd modulus [m] >= 3.
      @raise Invalid_argument if [m] is even or < 3. *)
  val create : Nat.t -> ctx

  val modulus : ctx -> Nat.t

  (** [pow ctx b e] is [b^e mod m] for [b] in [[0, m)]. *)
  val pow : ctx -> Nat.t -> Nat.t -> Nat.t

  (** [mul ctx a b] is [a*b mod m] for [a], [b] in [[0, m)]. *)
  val mul : ctx -> Nat.t -> Nat.t -> Nat.t

  (** [sqr ctx a] is [a*a mod m] via the dedicated Montgomery squaring
      kernel (schoolbook-with-doubling, ~half the limb products of a
      general multiply). Exposed for tests and the squaring ablation
      bench; {!pow} uses it internally for the window-loop squarings. *)
  val sqr : ctx -> Nat.t -> Nat.t

  (** A 4-bit window decomposition of an exponent, precomputed once so
      repeated [pow]s under one fixed exponent (a batch encrypted under
      one key) skip the per-call bit scan. *)
  type exponent

  val precompute_exp : Nat.t -> exponent

  (** [pow_exp ctx b w] is [b^e mod m] where [w = precompute_exp e]. *)
  val pow_exp : ctx -> Nat.t -> exponent -> Nat.t
end
