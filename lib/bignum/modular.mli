(** Modular arithmetic over {!Nat}, including Montgomery exponentiation.

    The commutative encryption of Agrawal et al. is the power cipher
    [x^e mod p] over quadratic residues modulo a safe prime; this module
    provides the exponentiation kernel (the paper's dominant cost [Ce]). *)

(** [add a b m], [sub a b m], [mul a b m] reduce their result modulo [m].
    Arguments must already be in [[0, m)]. *)
val add : Nat.t -> Nat.t -> Nat.t -> Nat.t

val sub : Nat.t -> Nat.t -> Nat.t -> Nat.t
val mul : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [pow_binary b e m] is [b^e mod m] by plain square-and-multiply with a
    division-based reduction after every step. Exposed for the
    Montgomery-vs-binary ablation bench and as a testing oracle. *)
val pow_binary : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [pow b e m] is [b^e mod m]. Uses Montgomery multiplication with a
    4-bit window when [m] is odd, falling back to {!pow_binary} for even
    moduli.
    @raise Division_by_zero if [m] is zero. *)
val pow : Nat.t -> Nat.t -> Nat.t -> Nat.t

(** [inv a m] is the multiplicative inverse of [a] modulo [m], when
    [gcd(a, m) = 1]. *)
val inv : Nat.t -> Nat.t -> Nat.t option

(** [inv_exn a m] is {!inv}, raising on non-invertible input.
    @raise Invalid_argument if [gcd(a, m) <> 1]. *)
val inv_exn : Nat.t -> Nat.t -> Nat.t

(** {1 Montgomery contexts}

    A context precomputes the constants for a fixed odd modulus so that
    repeated exponentiations (the protocols encrypt thousands of values
    under the same prime) avoid per-call setup. *)

module Mont : sig
  type ctx

  (** [create m] precomputes a context for odd modulus [m] >= 3.

      Kernel selection happens here: the hard-coded group widths (256,
      1536 and 2048-bit moduli) get a fixed-width kernel — 30-bit
      limbs, fused multiply-and-reduce, lazy reduction, preallocated
      arenas — and every other width falls back to the generic 26-bit
      path. The choice is invisible everywhere but wall-clock:
      {!kernel_name} reports it, and results are bit-identical across
      kernels (the qcheck parity suite in test/test_bignum.ml pins
      every kernel to the {!pow_binary} oracle).
      @raise Invalid_argument if [m] is even or < 3. *)
  val create : Nat.t -> ctx

  val modulus : ctx -> Nat.t

  (** The kernel [create] chose: ["generic"], ["fixed-256"],
      ["fixed-1536"] or ["fixed-2048"]. *)
  val kernel_name : ctx -> string

  (** [set_force_generic true] makes subsequent {!create} calls select
      the generic kernel regardless of width. Existing contexts
      (including memoized named groups) are unaffected. For tests and
      the kernel-ablation bench. *)
  val set_force_generic : bool -> unit

  val force_generic : unit -> bool

  (** [pow ctx b e] is [b^e mod m] for [b] in [[0, m)]. *)
  val pow : ctx -> Nat.t -> Nat.t -> Nat.t

  (** [mul ctx a b] is [a*b mod m] for [a], [b] in [[0, m)]. *)
  val mul : ctx -> Nat.t -> Nat.t -> Nat.t

  (** [sqr ctx a] is [a*a mod m] via the dedicated Montgomery squaring
      kernel (schoolbook-with-doubling, ~half the limb products of a
      general multiply). Exposed for tests and the squaring ablation
      bench; the generic [pow] path uses it internally for the
      window-loop squarings. *)
  val sqr : ctx -> Nat.t -> Nat.t

  (** The window decompositions of an exponent, precomputed once so
      repeated [pow]s under one fixed exponent (a batch encrypted under
      one key) skip the per-call bit scan. Carries both the 4-bit and
      the 5-bit digit arrays; each kernel picks its width. *)
  type exponent

  val precompute_exp : Nat.t -> exponent

  (** [pow_exp ctx b w] is [b^e mod m] where [w = precompute_exp e]. *)
  val pow_exp : ctx -> Nat.t -> exponent -> Nat.t

  (** [pow_batch ctx bs w] is [List.map (fun b -> pow_exp ctx b w) bs],
      bit for bit — but on a fixed-width kernel the whole batch shares
      one scratch arena and interleaves several bases through a single
      scan of the exponent's digits (simultaneous multi-exponentiation),
      so the steady state allocates nothing but the results. *)
  val pow_batch : ctx -> Nat.t list -> exponent -> Nat.t list

  (** [sqr_batch ctx xs] is [List.map (sqr ctx) xs] with the same
      arena amortization as {!pow_batch} (the hash-to-group hot step). *)
  val sqr_batch : ctx -> Nat.t list -> Nat.t list

  (** Test hooks for the fixed-width kernels: drive the arena stages
      separately so properties can pin each one down (notably zero
      allocation across {!Internal.run_windows}, via a Gc.minor_words
      delta). Not a stable API. *)
  module Internal : sig
    type arena

    (** [arena ctx] is a fresh arena, or [None] on the generic kernel. *)
    val arena : ctx -> arena option

    (** Interleave width of the context's [pow_batch] (1 on generic). *)
    val lanes : ctx -> int

    val load_base : arena -> lane:int -> Nat.t -> unit
    val run_windows : arena -> lanes:int -> exponent -> unit
    val lane_result : arena -> lane:int -> Nat.t
  end
end
