let base_bits = Nat.Internal.base_bits
let base = Nat.Internal.base
let base_mask = Nat.Internal.base_mask

let reduce a m = if Nat.compare a m < 0 then a else Nat.rem a m

let add a b m =
  let s = Nat.add a b in
  if Nat.compare s m >= 0 then Nat.sub s m else s

let sub a b m = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b
let mul a b m = Nat.rem (Nat.mul a b) m

let pow_binary b e m =
  if Nat.is_zero m then raise Division_by_zero
  else begin
    let b = reduce b m in
    let acc = ref (reduce Nat.one m) in
    for i = Nat.num_bits e - 1 downto 0 do
      acc := mul !acc !acc m;
      if Nat.test_bit e i then acc := mul !acc b m
    done;
    !acc
  end

let inv a m =
  let g, x, _ = Integer.egcd (Integer.of_nat a) (Integer.of_nat m) in
  if Integer.equal g Integer.one then
    Some (Integer.to_nat (Integer.erem x (Integer.of_nat m)))
  else None

let inv_exn a m =
  match inv a m with
  | Some r -> r
  | None -> invalid_arg "Modular.inv_exn: not invertible"

module Mont = struct
  (* ================================================================== *)
  (* Generic kernel: 26-bit limbs (Nat's native base), any odd modulus.  *)
  (* ================================================================== *)

  type gctx = {
    m : Nat.t;
    ml : int array; (* modulus limbs, length n *)
    n : int;
    m' : int; (* -m^{-1} mod 2^base_bits *)
    r2 : int array; (* base^(2n) mod m, padded to n limbs *)
    one_m : int array; (* 1 in Montgomery form (= base^n mod m), n limbs *)
  }

  (* Montgomery product into [dst] (CIOS): dst <- a*b*base^(-n) mod m.
     [t] is caller-provided scratch of length >= n+2 (zeroed here);
     [dst] must not alias [a] or [b]. *)
  let mont_mul_into gctx (t : int array) (a : int array) (b : int array)
      (dst : int array) =
    let n = gctx.n and ml = gctx.ml and m' = gctx.m' in
    Array.fill t 0 (n + 2) 0;
    for i = 0 to n - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let v = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- v land base_mask;
        c := v lsr base_bits
      done;
      let v = t.(n) + !c in
      t.(n) <- v land base_mask;
      t.(n + 1) <- t.(n + 1) + (v lsr base_bits);
      let mi = (t.(0) * m') land base_mask in
      let v0 = t.(0) + (mi * ml.(0)) in
      assert (v0 land base_mask = 0);
      let c = ref (v0 lsr base_bits) in
      for j = 1 to n - 1 do
        let v = t.(j) + (mi * ml.(j)) + !c in
        t.(j - 1) <- v land base_mask;
        c := v lsr base_bits
      done;
      let v = t.(n) + !c in
      t.(n - 1) <- v land base_mask;
      let v2 = t.(n + 1) + (v lsr base_bits) in
      t.(n) <- v2 land base_mask;
      t.(n + 1) <- v2 lsr base_bits
    done;
    assert (t.(n + 1) = 0);
    (* Conditional subtraction: result < 2m, so subtract m at most once. *)
    let ge =
      if t.(n) <> 0 then true
      else begin
        let rec cmp i = if i < 0 then true else if t.(i) <> ml.(i) then t.(i) > ml.(i) else cmp (i - 1) in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let v = t.(i) - ml.(i) - !borrow in
        if v < 0 then begin
          dst.(i) <- v + base;
          borrow := 1
        end
        else begin
          dst.(i) <- v;
          borrow := 0
        end
      done;
      assert (t.(n) - !borrow = 0)
    end
    else Array.blit t 0 dst 0 n

  (* Montgomery product of two n-limb arrays; fresh result array. *)
  let mont_mul gctx (a : int array) (b : int array) : int array =
    let t = Array.make (gctx.n + 2) 0 in
    let dst = Array.make gctx.n 0 in
    mont_mul_into gctx t a b dst;
    dst

  (* Full 2n-limb square of an n-limb array into [t] (length 2n+1),
     schoolbook with the doubling trick: cross products are accumulated
     once as 2*a_i*a_j (2*a_i*a_j < 2^53 fits a 63-bit int with room
     for carries), then the diagonal a_i^2 terms are added. *)
  let sqr_full (a : int array) n (t : int array) =
    Array.fill t 0 ((2 * n) + 1) 0;
    for i = 0 to n - 2 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let c = ref 0 in
        for j = i + 1 to n - 1 do
          let v = t.(i + j) + (2 * ai * a.(j)) + !c in
          t.(i + j) <- v land base_mask;
          c := v lsr base_bits
        done;
        let k = ref (i + n) in
        while !c <> 0 do
          let v = t.(!k) + !c in
          t.(!k) <- v land base_mask;
          c := v lsr base_bits;
          incr k
        done
      end
    done;
    let c = ref 0 in
    for i = 0 to n - 1 do
      let v = t.(2 * i) + (a.(i) * a.(i)) + !c in
      t.(2 * i) <- v land base_mask;
      let v1 = t.((2 * i) + 1) + (v lsr base_bits) in
      t.((2 * i) + 1) <- v1 land base_mask;
      c := v1 lsr base_bits
    done;
    if !c <> 0 then t.(2 * n) <- t.(2 * n) + !c

  (* Montgomery reduction of the 2n+1-limb product in [t] into the
     n-limb [dst]: dst <- t * base^(-n) mod m. Destroys [t]. *)
  let mont_reduce_into gctx (t : int array) (dst : int array) =
    let n = gctx.n and ml = gctx.ml and m' = gctx.m' in
    for i = 0 to n - 1 do
      let mi = (t.(i) * m') land base_mask in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let v = t.(i + j) + (mi * ml.(j)) + !c in
        t.(i + j) <- v land base_mask;
        c := v lsr base_bits
      done;
      let k = ref (i + n) in
      while !c <> 0 && !k <= 2 * n do
        let v = t.(!k) + !c in
        t.(!k) <- v land base_mask;
        c := v lsr base_bits;
        incr k
      done;
      assert (!c = 0)
    done;
    (* Result is t[n .. 2n] < 2m: subtract m at most once. *)
    let ge =
      if t.(2 * n) <> 0 then true
      else begin
        let rec cmp i =
          if i < 0 then true
          else if t.(n + i) <> ml.(i) then t.(n + i) > ml.(i)
          else cmp (i - 1)
        in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let v = t.(n + i) - ml.(i) - !borrow in
        if v < 0 then begin
          dst.(i) <- v + base;
          borrow := 1
        end
        else begin
          dst.(i) <- v;
          borrow := 0
        end
      done;
      assert (t.(2 * n) - !borrow = 0)
    end
    else Array.blit t n dst 0 n

  (* Montgomery square into [dst]: dst <- a*a*base^(-n) mod m. [t] is
     scratch of length >= 2n+1; [dst] must not alias [a]. *)
  let mont_sqr_into gctx (t : int array) (a : int array) (dst : int array) =
    sqr_full a gctx.n t;
    mont_reduce_into gctx t dst

  let create_generic m =
    let n = Nat.Internal.num_limbs m in
    let ml = Nat.Internal.limbs_padded m n in
    (* Hensel lifting: invert m mod 2^base_bits. *)
    let invm = ref 1 in
    for _ = 1 to 6 do
      invm := !invm * (2 - (ml.(0) * !invm)) land base_mask
    done;
    assert (ml.(0) * !invm land base_mask = 1);
    let m' = (base - !invm) land base_mask in
    let r2_nat = Nat.rem (Nat.shift_left Nat.one (2 * n * base_bits)) m in
    let r2 = Nat.Internal.limbs_padded r2_nat n in
    let one_arr = Array.make n 0 in
    one_arr.(0) <- 1;
    let ctx0 = { m; ml; n; m'; r2; one_m = [||] } in
    let one_m = mont_mul ctx0 one_arr r2 in
    { ctx0 with one_m }

  let to_mont gctx a = mont_mul gctx (Nat.Internal.limbs_padded a gctx.n) gctx.r2
  let of_nat_arr gctx a = Nat.Internal.limbs_padded a gctx.n

  (* ================================================================== *)
  (* Fixed-width kernels: 30-bit limbs, lazy reduction.                  *)
  (*                                                                     *)
  (* Selected by [create] for the hard-coded group widths (256, 1536     *)
  (* and 2048-bit moduli). Two departures from the generic kernel buy    *)
  (* the throughput:                                                     *)
  (*                                                                     *)
  (* - Limbs are repacked to 30 bits (9 / 52 / 69 limbs instead of       *)
  (*   10 / 60 / 79), and multiply-and-reduce runs as one fused CIOS     *)
  (*   pass: v = t[j] + a_i*b[j] + m_i*ml[j] + c stays under 2^62, so    *)
  (*   the whole inner step is native-int arithmetic.                    *)
  (* - Reduction is lazy: every Montgomery product keeps its result in   *)
  (*   [0, 2m) instead of [0, m). Feeding such values back in is sound   *)
  (*   whenever 4m < 2^(30*fn) — checked at context build — and drops    *)
  (*   the compare-and-subtract pass from every multiply. One final      *)
  (*   subtract at the end of an exponentiation restores [0, m).         *)
  (*                                                                     *)
  (* The conversions to and from Nat's 26-bit limbs happen once per      *)
  (* exponentiation, into preallocated arena buffers.                    *)
  (* ================================================================== *)

  let b30 = 30
  let mask30 = (1 lsl b30) - 1

  (* Repack a staged 26-bit limb array (fixed length) into [dst]'s
     30-bit limbs. Both lengths are fixed by the context, never by the
     value: the scan shape is data-independent. *)
  let repack_into (src26 : int array) (dst : int array) =
    let nd = Array.length dst in
    Array.fill dst 0 nd 0;
    let acc = ref 0 and bits = ref 0 and k = ref 0 in
    for i = 0 to Array.length src26 - 1 do
      acc := !acc lor (Array.unsafe_get src26 i lsl !bits);
      bits := !bits + base_bits;
      if !bits >= b30 then begin
        if !k < nd then Array.unsafe_set dst !k (!acc land mask30);
        incr k;
        acc := !acc lsr b30;
        bits := !bits - b30
      end
    done;
    if !bits > 0 && !k < nd then Array.unsafe_set dst !k (!acc land mask30)

  (* Inverse repack: 30-bit limbs back into a fresh 26-bit limb array of
     length [n26], then into a Nat. Only runs once per exponentiation,
     on a public result. *)
  let unpack_nat (src30 : int array) n26 =
    let out = Array.make n26 0 in
    let acc = ref 0 and bits = ref 0 and k = ref 0 in
    for i = 0 to Array.length src30 - 1 do
      acc := !acc lor (Array.unsafe_get src30 i lsl !bits);
      bits := !bits + b30;
      while !bits >= base_bits do
        if !k < n26 then Array.unsafe_set out !k (!acc land base_mask);
        incr k;
        acc := !acc lsr base_bits;
        bits := !bits - base_bits
      done
    done;
    if !bits > 0 && !k < n26 then Array.unsafe_set out !k (!acc land base_mask);
    Nat.Internal.of_limbs out

  (* Fused CIOS at any 30-bit width: dst <- a*b*2^(-30n) mod m, lazily
     reduced (see the block comment above). [t] is scratch of length
     n+1. [dst] may alias [a] or [b]: the result is staged in [t]. *)
  let mont_mul30_loop ~n ~(ml : int array) ~m' (t : int array)
      (a : int array) (b : int array) (dst : int array) =
    Array.fill t 0 (n + 1) 0;
    for i = 0 to n - 1 do
      let ai = Array.unsafe_get a i in
      let u = Array.unsafe_get t 0 + (ai * Array.unsafe_get b 0) in
      let mi = u * m' land mask30 in
      let c = ref ((u + (mi * Array.unsafe_get ml 0)) lsr b30) in
      for j = 1 to n - 1 do
        let v =
          Array.unsafe_get t j + (ai * Array.unsafe_get b j)
          + (mi * Array.unsafe_get ml j) + !c
        in
        Array.unsafe_set t (j - 1) (v land mask30);
        c := v lsr b30
      done;
      let v = Array.unsafe_get t n + !c in
      Array.unsafe_set t (n - 1) (v land mask30);
      Array.unsafe_set t n (v lsr b30)
    done;
    Array.blit t 0 dst 0 n

  (* Mechanically unrolled from [mont_mul30_loop] at [fn = 9] (256-bit
     moduli): straight-line CIOS with the running value in 9 let-bound
     locals, so the whole reduction lives in registers and the only
     memory traffic is the operand loads and the final 9 stores. The
     carry-bound argument is the same as the loop form's: every
     intermediate fits 62 bits. [dst] may alias [a] or [b] — both
     operands are fully read before the first store. *)
  let mont_mul_w9 ~(ml : int array) ~m' (a : int array) (b : int array)
      (dst : int array) =
    let b0 = Array.unsafe_get b 0 in
    let b1 = Array.unsafe_get b 1 in
    let b2 = Array.unsafe_get b 2 in
    let b3 = Array.unsafe_get b 3 in
    let b4 = Array.unsafe_get b 4 in
    let b5 = Array.unsafe_get b 5 in
    let b6 = Array.unsafe_get b 6 in
    let b7 = Array.unsafe_get b 7 in
    let b8 = Array.unsafe_get b 8 in
    let q0 = Array.unsafe_get ml 0 in
    let q1 = Array.unsafe_get ml 1 in
    let q2 = Array.unsafe_get ml 2 in
    let q3 = Array.unsafe_get ml 3 in
    let q4 = Array.unsafe_get ml 4 in
    let q5 = Array.unsafe_get ml 5 in
    let q6 = Array.unsafe_get ml 6 in
    let q7 = Array.unsafe_get ml 7 in
    let q8 = Array.unsafe_get ml 8 in
    let t0 = 0 in
    let t1 = 0 in
    let t2 = 0 in
    let t3 = 0 in
    let t4 = 0 in
    let t5 = 0 in
    let t6 = 0 in
    let t7 = 0 in
    let t8 = 0 in
    let ai = Array.unsafe_get a 0 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 1 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 2 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 3 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 4 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 5 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 6 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 7 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    let ai = Array.unsafe_get a 8 in
    let u = t0 + (ai * b0) in
    let mi = u * m' land mask30 in
    let c = (u + (mi * q0)) lsr b30 in
    let v = t1 + (ai * b1) + (mi * q1) + c in
    let t0 = v land mask30 in
    let c = v lsr b30 in
    let v = t2 + (ai * b2) + (mi * q2) + c in
    let t1 = v land mask30 in
    let c = v lsr b30 in
    let v = t3 + (ai * b3) + (mi * q3) + c in
    let t2 = v land mask30 in
    let c = v lsr b30 in
    let v = t4 + (ai * b4) + (mi * q4) + c in
    let t3 = v land mask30 in
    let c = v lsr b30 in
    let v = t5 + (ai * b5) + (mi * q5) + c in
    let t4 = v land mask30 in
    let c = v lsr b30 in
    let v = t6 + (ai * b6) + (mi * q6) + c in
    let t5 = v land mask30 in
    let c = v lsr b30 in
    let v = t7 + (ai * b7) + (mi * q7) + c in
    let t6 = v land mask30 in
    let c = v lsr b30 in
    let v = t8 + (ai * b8) + (mi * q8) + c in
    let t7 = v land mask30 in
    let c = v lsr b30 in
    let t8 = c in
    Array.unsafe_set dst 0 t0;
    Array.unsafe_set dst 1 t1;
    Array.unsafe_set dst 2 t2;
    Array.unsafe_set dst 3 t3;
    Array.unsafe_set dst 4 t4;
    Array.unsafe_set dst 5 t5;
    Array.unsafe_set dst 6 t6;
    Array.unsafe_set dst 7 t7;
    Array.unsafe_set dst 8 t8

  (* Which code path a fixed-width context multiplies through. *)
  type fkind = W9 | Loop30

  type fctx = {
    fname : string; (* "fixed-256" … reported by [kernel_name] *)
    fkind : fkind;
    fn : int; (* 30-bit limb count *)
    fml : int array; (* modulus, 30-bit limbs *)
    fm' : int; (* -m^{-1} mod 2^30 *)
    fr2 : int array; (* 2^(60*fn) mod m *)
    fone : int array; (* 2^(30*fn) mod m *)
    fwin : int; (* window width used by this kernel's pow paths *)
    flanes : int; (* pow_batch interleave width *)
  }

  let fmul f (t : int array) a b dst =
    match f.fkind with
    | W9 -> mont_mul_w9 ~ml:f.fml ~m':f.fm' a b dst
    | Loop30 -> mont_mul30_loop ~n:f.fn ~ml:f.fml ~m':f.fm' t a b dst

  (* Final correction out of the lazy domain: after multiplying by plain
     1 the value is <= m, so subtract m at most once (in place). *)
  let fcorrect f (r : int array) =
    let n = f.fn and ml = f.fml in
    let ge =
      let rec cmp i =
        if i < 0 then true
        else begin
          let ri = Array.unsafe_get r i and mi = Array.unsafe_get ml i in
          if ri <> mi then ri > mi else cmp (i - 1)
        end
      in
      cmp (n - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get r i - Array.unsafe_get ml i - !borrow in
        if v < 0 then begin
          Array.unsafe_set r i (v + (1 lsl b30));
          borrow := 1
        end
        else begin
          Array.unsafe_set r i v;
          borrow := 0
        end
      done
    end

  (* Per-call scratch for the fixed kernels. Montgomery contexts are
     shared read-only across pool workers, so arenas deliberately do
     NOT live in the context: each exponentiation call site builds one
     ([pow_batch] amortizes it over the whole batch) and owns it for
     the call's duration. No buffer aliases another; the window loop
     writes only into arena storage, so steady-state runs allocate
     nothing. *)
  type arena = {
    af : fctx;
    an26 : int;
    at : int array; (* fn+1 kernel scratch (Loop30 only) *)
    ax26 : int array; (* 26-bit staging for repack *)
    abase : int array array; (* per-lane base in Montgomery form *)
    aacc : int array array; (* per-lane accumulator *)
    atab : int array array array; (* per-lane window table, 2^fwin rows *)
    aone : int array; (* plain 1, for leaving Montgomery form *)
  }

  let new_arena f ~n26 =
    let mk () = Array.make f.fn 0 in
    let one = mk () in
    one.(0) <- 1;
    {
      af = f;
      an26 = n26;
      at = Array.make (f.fn + 1) 0;
      ax26 = Array.make n26 0;
      abase = Array.init f.flanes (fun _ -> mk ());
      aacc = Array.init f.flanes (fun _ -> mk ());
      atab = Array.init f.flanes (fun _ -> Array.init (1 lsl f.fwin) (fun _ -> mk ()));
      aone = one;
    }

  (* Stage [x] (< m) into lane [l]: repack to 30-bit limbs, enter
     Montgomery form, and fill the lane's window table with
     x^0 .. x^(2^w - 1). Allocation-free. *)
  let load_base ar ~lane x =
    let f = ar.af in
    Array.fill ar.ax26 0 ar.an26 0;
    let xl = Nat.Internal.raw_limbs x in
    Array.blit xl 0 ar.ax26 0 (Array.length xl);
    let b = ar.abase.(lane) in
    repack_into ar.ax26 b;
    fmul f ar.at b f.fr2 b;
    let tab = ar.atab.(lane) in
    Array.blit f.fone 0 tab.(0) 0 f.fn;
    Array.blit b 0 tab.(1) 0 f.fn;
    for i = 2 to (1 lsl f.fwin) - 1 do
      fmul f ar.at tab.(i - 1) b tab.(i)
    done

  (* The shared window scan: one pass over the exponent's digits drives
     all [lanes] accumulators — per digit, every lane squares [fwin]
     times, then every lane multiplies by its own table entry. This is
     the zero-allocation steady state the Gc test pins down. *)
  let run_windows ar ~lanes (digits : int array) =
    let f = ar.af in
    for l = 0 to lanes - 1 do
      Array.blit f.fone 0 ar.aacc.(l) 0 f.fn
    done;
    for k = Array.length digits - 1 downto 0 do
      for _s = 1 to f.fwin do
        for l = 0 to lanes - 1 do
          let acc = Array.unsafe_get ar.aacc l in
          fmul f ar.at acc acc acc
        done
      done;
      let d = Array.unsafe_get digits k in
      if d <> 0 then
        for l = 0 to lanes - 1 do
          let acc = Array.unsafe_get ar.aacc l in
          fmul f ar.at acc (Array.unsafe_get ar.atab l).(d) acc
        done
    done

  (* Leave Montgomery form and the lazy domain; fresh Nat result. *)
  let lane_result ar ~lane =
    let f = ar.af in
    let acc = ar.aacc.(lane) in
    fmul f ar.at acc ar.aone acc;
    fcorrect f acc;
    unpack_nat acc ar.an26

  (* ================================================================== *)
  (* Public contexts: kernel selection at build time.                    *)
  (* ================================================================== *)

  type kernel = Generic | Fixed of fctx

  type ctx = { g : gctx; kernel : kernel }

  let modulus ctx = ctx.g.m

  (* Escape hatch for tests and ablation benches: force newly built
     contexts onto the generic kernel. Read once at [create]; existing
     contexts (including memoized named groups) are unaffected. *)
  let force_generic_flag = ref false
  let set_force_generic b = force_generic_flag := b
  let force_generic () = !force_generic_flag

  (* The three hard-coded group widths get a fixed kernel; anything
     else falls back to the generic path. Window and lane choices per
     width are documented in docs/PERFORMANCE.md: 4-bit windows suit
     256-bit exponents (wider windows cost more table setup than they
     save), 5-bit windows win from ~1536 bits up; lanes trade the
     shared-scan amortization against table footprint in cache. *)
  let fixed_plan bits =
    match bits with
    | 256 -> Some ("fixed-256", W9, 4, 4)
    | 1536 -> Some ("fixed-1536", Loop30, 5, 2)
    | 2048 -> Some ("fixed-2048", Loop30, 5, 2)
    | _ -> None

  let create_fixed g =
    let bits = Nat.num_bits g.m in
    match fixed_plan bits with
    | None -> Generic
    | Some (fname, fkind, fwin, flanes) ->
        let fn = (bits + 2 + (b30 - 1)) / b30 in
        (* Lazy reduction is sound only with two headroom bits. *)
        assert (bits + 2 <= b30 * fn);
        let repack_nat x =
          let dst = Array.make fn 0 in
          repack_into (Nat.Internal.limbs_padded x g.n) dst;
          dst
        in
        let fml = repack_nat g.m in
        let invm = ref 1 in
        for _ = 1 to 6 do
          invm := !invm * (2 - (fml.(0) * !invm)) land mask30
        done;
        assert (fml.(0) * !invm land mask30 = 1);
        let fm' = ((1 lsl b30) - !invm) land mask30 in
        let pow2 k = Nat.rem (Nat.shift_left Nat.one k) g.m in
        Fixed
          {
            fname;
            fkind;
            fn;
            fml;
            fm';
            fr2 = repack_nat (pow2 (2 * b30 * fn));
            fone = repack_nat (pow2 (b30 * fn));
            fwin;
            flanes;
          }

  let create m =
    if Nat.is_even m || Nat.compare m (Nat.of_int 3) < 0 then
      invalid_arg "Modular.Mont.create: modulus must be odd and >= 3"
    else begin
      let g = create_generic m in
      let kernel = if !force_generic_flag then Generic else create_fixed g in
      { g; kernel }
    end

  let kernel_name ctx =
    match ctx.kernel with Generic -> "generic" | Fixed f -> f.fname

  let mul ctx a b =
    let g = ctx.g in
    if Nat.compare a g.m >= 0 || Nat.compare b g.m >= 0 then
      invalid_arg "Modular.Mont.mul: operand out of range"
    else begin
      let ab = mont_mul g (of_nat_arr g a) (of_nat_arr g b) in
      Nat.Internal.of_limbs (mont_mul g ab g.r2)
    end

  let sqr ctx a =
    let g = ctx.g in
    if Nat.compare a g.m >= 0 then
      invalid_arg "Modular.Mont.sqr: operand out of range"
    else begin
      let n = g.n in
      let t = Array.make ((2 * n) + 1) 0 in
      let aa = Array.make n 0 in
      mont_sqr_into g t (of_nat_arr g a) aa;
      let r = Array.make n 0 in
      mont_mul_into g t aa g.r2 r;
      Nat.Internal.of_limbs r
    end

  (* The window decompositions of an exponent, precomputed once per key
     so a batch of exponentiations under the same exponent skips the
     bit scan. Both widths the kernels use are carried: 4-bit digits
     (generic path, fixed-256) and 5-bit digits (fixed-1536/2048). *)
  type exponent = { nib4 : int array; win5 : int array }

  let digits_of ~w e =
    let count = (Nat.num_bits e + w - 1) / w in
    Array.init count (fun k ->
        let d = ref 0 in
        for j = 0 to w - 1 do
          if Nat.test_bit e ((w * k) + j) then d := !d lor (1 lsl j)
        done;
        !d)

  let precompute_exp e = { nib4 = digits_of ~w:4 e; win5 = digits_of ~w:5 e }
  let exp_digits f (w : exponent) = if f.fwin = 5 then w.win5 else w.nib4

  let pow_exp_generic g { nib4 = nibbles; _ } b =
    let n = g.n in
    (* One scratch buffer serves both kernels (2n+1 >= n+2), and the
       accumulator ping-pongs between two n-limb buffers, so the
       window loop allocates nothing. *)
    let scratch = Array.make ((2 * n) + 1) 0 in
    let bm = to_mont g b in
    let table = Array.make 16 g.one_m in
    for i = 1 to 15 do
      table.(i) <- mont_mul g table.(i - 1) bm
    done;
    let acc = ref (Array.copy g.one_m) in
    let tmp = ref (Array.make n 0) in
    let swap () =
      let x = !acc in
      acc := !tmp;
      tmp := x
    in
    for w = Array.length nibbles - 1 downto 0 do
      for _ = 1 to 4 do
        mont_sqr_into g scratch !acc !tmp;
        swap ()
      done;
      let nib = nibbles.(w) in
      if nib <> 0 then begin
        mont_mul_into g scratch !acc table.(nib) !tmp;
        swap ()
      end
    done;
    (* Leave Montgomery form: multiply by 1. *)
    let one_arr = Array.make n 0 in
    one_arr.(0) <- 1;
    mont_mul_into g scratch !acc one_arr !tmp;
    Nat.Internal.of_limbs !tmp

  let pow_exp ctx b w =
    if Nat.compare b ctx.g.m >= 0 then
      invalid_arg "Modular.Mont.pow: base out of range"
    else begin
      match ctx.kernel with
      | Generic -> pow_exp_generic ctx.g w b
      | Fixed f ->
          let ar = new_arena f ~n26:ctx.g.n in
          load_base ar ~lane:0 b;
          run_windows ar ~lanes:1 (exp_digits f w);
          lane_result ar ~lane:0
    end

  let pow ctx b e = pow_exp ctx b (precompute_exp e)

  (* Simultaneous multi-exponentiation: all of [bs] raised to the one
     exponent, interleaving [flanes] bases through a single scan of the
     digit array. One arena serves the whole batch, so per-element cost
     is pure kernel work. Results are in input order and bit-for-bit
     equal to mapping [pow_exp]. *)
  let pow_batch ctx bs w =
    match ctx.kernel with
    | Generic -> List.map (fun b -> pow_exp ctx b w) bs
    | Fixed f ->
        let digits = exp_digits f w in
        let ar = new_arena f ~n26:ctx.g.n in
        let m = ctx.g.m in
        let rec go bs acc =
          match bs with
          | [] -> List.rev acc
          | _ ->
              let rec take k xs =
                match (k, xs) with
                | 0, _ | _, [] -> ([], xs)
                | k, x :: tl ->
                    if Nat.compare x m >= 0 then
                      invalid_arg "Modular.Mont.pow_batch: base out of range"
                    else begin
                      let block, rest = take (k - 1) tl in
                      (x :: block, rest)
                    end
              in
              let block, rest = take f.flanes bs in
              List.iteri (fun l x -> load_base ar ~lane:l x) block;
              run_windows ar ~lanes:(List.length block) digits;
              let out =
                List.mapi (fun l _ -> lane_result ar ~lane:l) block
              in
              go rest (List.rev_append out acc)
        in
        go bs []

  (* Batched modular squaring (the hash-to-group hot step). Same arena
     discipline as [pow_batch]: three kernel multiplies per element,
     no allocation beyond the results. *)
  let sqr_batch ctx xs =
    match ctx.kernel with
    | Generic -> List.map (fun x -> sqr ctx x) xs
    | Fixed f ->
        let ar = new_arena f ~n26:ctx.g.n in
        let m = ctx.g.m in
        List.map
          (fun x ->
            if Nat.compare x m >= 0 then
              invalid_arg "Modular.Mont.sqr_batch: operand out of range"
            else begin
              Array.fill ar.ax26 0 ar.an26 0;
              let xl = Nat.Internal.raw_limbs x in
              Array.blit xl 0 ar.ax26 0 (Array.length xl);
              let b = ar.abase.(0) in
              repack_into ar.ax26 b;
              fmul f ar.at b f.fr2 b;
              fmul f ar.at b b b;
              fmul f ar.at b ar.aone b;
              fcorrect f b;
              unpack_nat b ar.an26
            end)
          xs

  (* Test hooks: the parity suite drives the kernels directly and the
     zero-allocation property pins [run_windows] down with a
     Gc.minor_words delta. Not for production use. *)
  module Internal = struct
    type nonrec arena = arena

    let arena ctx =
      match ctx.kernel with
      | Generic -> None
      | Fixed f -> Some (new_arena f ~n26:ctx.g.n)

    let lanes ctx =
      match ctx.kernel with Generic -> 1 | Fixed f -> f.flanes

    let load_base = load_base

    let run_windows ar ~lanes (w : exponent) =
      run_windows ar ~lanes (exp_digits ar.af w)

    let lane_result = lane_result
  end
end

let pow b e m =
  if Nat.is_zero m then raise Division_by_zero
  else if Nat.is_one m then Nat.zero
  else if Nat.is_even m then pow_binary b e m
  else Mont.pow (Mont.create m) (reduce b m) e
