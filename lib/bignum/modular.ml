let base_bits = Nat.Internal.base_bits
let base = Nat.Internal.base
let base_mask = Nat.Internal.base_mask

let reduce a m = if Nat.compare a m < 0 then a else Nat.rem a m

let add a b m =
  let s = Nat.add a b in
  if Nat.compare s m >= 0 then Nat.sub s m else s

let sub a b m = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b
let mul a b m = Nat.rem (Nat.mul a b) m

let pow_binary b e m =
  if Nat.is_zero m then raise Division_by_zero
  else begin
    let b = reduce b m in
    let acc = ref (reduce Nat.one m) in
    for i = Nat.num_bits e - 1 downto 0 do
      acc := mul !acc !acc m;
      if Nat.test_bit e i then acc := mul !acc b m
    done;
    !acc
  end

let inv a m =
  let g, x, _ = Integer.egcd (Integer.of_nat a) (Integer.of_nat m) in
  if Integer.equal g Integer.one then
    Some (Integer.to_nat (Integer.erem x (Integer.of_nat m)))
  else None

let inv_exn a m =
  match inv a m with
  | Some r -> r
  | None -> invalid_arg "Modular.inv_exn: not invertible"

module Mont = struct
  type ctx = {
    m : Nat.t;
    ml : int array; (* modulus limbs, length n *)
    n : int;
    m' : int; (* -m^{-1} mod 2^base_bits *)
    r2 : int array; (* base^(2n) mod m, padded to n limbs *)
    one_m : int array; (* 1 in Montgomery form (= base^n mod m), n limbs *)
  }

  let modulus ctx = ctx.m

  (* Montgomery product into [dst] (CIOS): dst <- a*b*base^(-n) mod m.
     [t] is caller-provided scratch of length >= n+2 (zeroed here);
     [dst] must not alias [a] or [b]. *)
  let mont_mul_into ctx (t : int array) (a : int array) (b : int array)
      (dst : int array) =
    let n = ctx.n and ml = ctx.ml and m' = ctx.m' in
    Array.fill t 0 (n + 2) 0;
    for i = 0 to n - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let v = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- v land base_mask;
        c := v lsr base_bits
      done;
      let v = t.(n) + !c in
      t.(n) <- v land base_mask;
      t.(n + 1) <- t.(n + 1) + (v lsr base_bits);
      let mi = (t.(0) * m') land base_mask in
      let v0 = t.(0) + (mi * ml.(0)) in
      assert (v0 land base_mask = 0);
      let c = ref (v0 lsr base_bits) in
      for j = 1 to n - 1 do
        let v = t.(j) + (mi * ml.(j)) + !c in
        t.(j - 1) <- v land base_mask;
        c := v lsr base_bits
      done;
      let v = t.(n) + !c in
      t.(n - 1) <- v land base_mask;
      let v2 = t.(n + 1) + (v lsr base_bits) in
      t.(n) <- v2 land base_mask;
      t.(n + 1) <- v2 lsr base_bits
    done;
    assert (t.(n + 1) = 0);
    (* Conditional subtraction: result < 2m, so subtract m at most once. *)
    let ge =
      if t.(n) <> 0 then true
      else begin
        let rec cmp i = if i < 0 then true else if t.(i) <> ml.(i) then t.(i) > ml.(i) else cmp (i - 1) in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let v = t.(i) - ml.(i) - !borrow in
        if v < 0 then begin
          dst.(i) <- v + base;
          borrow := 1
        end
        else begin
          dst.(i) <- v;
          borrow := 0
        end
      done;
      assert (t.(n) - !borrow = 0)
    end
    else Array.blit t 0 dst 0 n

  (* Montgomery product of two n-limb arrays; fresh result array. *)
  let mont_mul ctx (a : int array) (b : int array) : int array =
    let t = Array.make (ctx.n + 2) 0 in
    let dst = Array.make ctx.n 0 in
    mont_mul_into ctx t a b dst;
    dst

  (* Full 2n-limb square of an n-limb array into [t] (length 2n+1),
     schoolbook with the doubling trick: cross products are accumulated
     once as 2*a_i*a_j (2*a_i*a_j < 2^53 fits a 63-bit int with room
     for carries), then the diagonal a_i^2 terms are added. *)
  let sqr_full (a : int array) n (t : int array) =
    Array.fill t 0 ((2 * n) + 1) 0;
    for i = 0 to n - 2 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let c = ref 0 in
        for j = i + 1 to n - 1 do
          let v = t.(i + j) + (2 * ai * a.(j)) + !c in
          t.(i + j) <- v land base_mask;
          c := v lsr base_bits
        done;
        let k = ref (i + n) in
        while !c <> 0 do
          let v = t.(!k) + !c in
          t.(!k) <- v land base_mask;
          c := v lsr base_bits;
          incr k
        done
      end
    done;
    let c = ref 0 in
    for i = 0 to n - 1 do
      let v = t.(2 * i) + (a.(i) * a.(i)) + !c in
      t.(2 * i) <- v land base_mask;
      let v1 = t.((2 * i) + 1) + (v lsr base_bits) in
      t.((2 * i) + 1) <- v1 land base_mask;
      c := v1 lsr base_bits
    done;
    if !c <> 0 then t.(2 * n) <- t.(2 * n) + !c

  (* Montgomery reduction of the 2n+1-limb product in [t] into the
     n-limb [dst]: dst <- t * base^(-n) mod m. Destroys [t]. *)
  let mont_reduce_into ctx (t : int array) (dst : int array) =
    let n = ctx.n and ml = ctx.ml and m' = ctx.m' in
    for i = 0 to n - 1 do
      let mi = (t.(i) * m') land base_mask in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let v = t.(i + j) + (mi * ml.(j)) + !c in
        t.(i + j) <- v land base_mask;
        c := v lsr base_bits
      done;
      let k = ref (i + n) in
      while !c <> 0 && !k <= 2 * n do
        let v = t.(!k) + !c in
        t.(!k) <- v land base_mask;
        c := v lsr base_bits;
        incr k
      done;
      assert (!c = 0)
    done;
    (* Result is t[n .. 2n] < 2m: subtract m at most once. *)
    let ge =
      if t.(2 * n) <> 0 then true
      else begin
        let rec cmp i =
          if i < 0 then true
          else if t.(n + i) <> ml.(i) then t.(n + i) > ml.(i)
          else cmp (i - 1)
        in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let v = t.(n + i) - ml.(i) - !borrow in
        if v < 0 then begin
          dst.(i) <- v + base;
          borrow := 1
        end
        else begin
          dst.(i) <- v;
          borrow := 0
        end
      done;
      assert (t.(2 * n) - !borrow = 0)
    end
    else Array.blit t n dst 0 n

  (* Montgomery square into [dst]: dst <- a*a*base^(-n) mod m. [t] is
     scratch of length >= 2n+1; [dst] must not alias [a]. *)
  let mont_sqr_into ctx (t : int array) (a : int array) (dst : int array) =
    sqr_full a ctx.n t;
    mont_reduce_into ctx t dst

  let create m =
    if Nat.is_even m || Nat.compare m (Nat.of_int 3) < 0 then
      invalid_arg "Modular.Mont.create: modulus must be odd and >= 3"
    else begin
      let n = Nat.Internal.num_limbs m in
      let ml = Nat.Internal.limbs_padded m n in
      (* Hensel lifting: invert m mod 2^base_bits. *)
      let invm = ref 1 in
      for _ = 1 to 6 do
        invm := !invm * (2 - (ml.(0) * !invm)) land base_mask
      done;
      assert (ml.(0) * !invm land base_mask = 1);
      let m' = (base - !invm) land base_mask in
      let r2_nat = Nat.rem (Nat.shift_left Nat.one (2 * n * base_bits)) m in
      let r2 = Nat.Internal.limbs_padded r2_nat n in
      let one_arr = Array.make n 0 in
      one_arr.(0) <- 1;
      let ctx0 = { m; ml; n; m'; r2; one_m = [||] } in
      let one_m = mont_mul ctx0 one_arr r2 in
      { ctx0 with one_m }
    end

  let to_mont ctx a = mont_mul ctx (Nat.Internal.limbs_padded a ctx.n) ctx.r2
  let of_nat_arr ctx a = Nat.Internal.limbs_padded a ctx.n

  let mul ctx a b =
    if Nat.compare a ctx.m >= 0 || Nat.compare b ctx.m >= 0 then
      invalid_arg "Modular.Mont.mul: operand out of range"
    else begin
      let ab = mont_mul ctx (of_nat_arr ctx a) (of_nat_arr ctx b) in
      Nat.Internal.of_limbs (mont_mul ctx ab ctx.r2)
    end

  let sqr ctx a =
    if Nat.compare a ctx.m >= 0 then
      invalid_arg "Modular.Mont.sqr: operand out of range"
    else begin
      let n = ctx.n in
      let t = Array.make ((2 * n) + 1) 0 in
      let aa = Array.make n 0 in
      mont_sqr_into ctx t (of_nat_arr ctx a) aa;
      let r = Array.make n 0 in
      mont_mul_into ctx t aa ctx.r2 r;
      Nat.Internal.of_limbs r
    end

  (* The 4-bit window decomposition of an exponent, nibble [w] covering
     bits [4w .. 4w+3]. Precomputed once per key so a batch of
     exponentiations under the same exponent skips the bit scan. *)
  type exponent = { nibbles : int array }

  let precompute_exp e =
    let nw = (Nat.num_bits e + 3) / 4 in
    {
      nibbles =
        Array.init nw (fun w ->
            (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
            lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
            lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
            lor if Nat.test_bit e (4 * w) then 1 else 0);
    }

  let pow_exp ctx b { nibbles } =
    if Nat.compare b ctx.m >= 0 then invalid_arg "Modular.Mont.pow: base out of range"
    else begin
      let n = ctx.n in
      (* One scratch buffer serves both kernels (2n+1 >= n+2), and the
         accumulator ping-pongs between two n-limb buffers, so the
         window loop allocates nothing. *)
      let scratch = Array.make ((2 * n) + 1) 0 in
      let bm = to_mont ctx b in
      let table = Array.make 16 ctx.one_m in
      for i = 1 to 15 do
        table.(i) <- mont_mul ctx table.(i - 1) bm
      done;
      let acc = ref (Array.copy ctx.one_m) in
      let tmp = ref (Array.make n 0) in
      let swap () =
        let x = !acc in
        acc := !tmp;
        tmp := x
      in
      for w = Array.length nibbles - 1 downto 0 do
        for _ = 1 to 4 do
          mont_sqr_into ctx scratch !acc !tmp;
          swap ()
        done;
        let nib = nibbles.(w) in
        if nib <> 0 then begin
          mont_mul_into ctx scratch !acc table.(nib) !tmp;
          swap ()
        end
      done;
      (* Leave Montgomery form: multiply by 1. *)
      let one_arr = Array.make n 0 in
      one_arr.(0) <- 1;
      mont_mul_into ctx scratch !acc one_arr !tmp;
      Nat.Internal.of_limbs !tmp
    end

  let pow ctx b e = pow_exp ctx b (precompute_exp e)
end

let pow b e m =
  if Nat.is_zero m then raise Division_by_zero
  else if Nat.is_one m then Nat.zero
  else if Nat.is_even m then pow_binary b e m
  else Mont.pow (Mont.create m) (reduce b m) e
