(* Little-endian limbs in base 2^26. 26-bit limbs keep every intermediate
   product (limb * limb + limb + carry) well under the 63-bit native-int
   range, so no intermediate ever overflows. Invariant: no leading zero
   limb; the empty array is zero. *)

type t = int array

let base_bits = 26
let base = 1 lsl base_bits
let base_mask = base - 1

(* ------------------------------------------------------------------ *)
(* Internal helpers                                                    *)
(* ------------------------------------------------------------------ *)

let normalize (w : int array) : t =
  let n = ref (Array.length w) in
  while !n > 0 && w.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length w then w else Array.sub w 0 !n

let check_limbs (w : t) =
  Array.for_all (fun l -> l >= 0 && l < base) w
  && (Array.length w = 0 || w.(Array.length w - 1) <> 0)

(* Number of significant bits in a single limb. *)
let limb_bits l =
  let rec go acc l = if l = 0 then acc else go (acc + 1) (l lsr 1) in
  go 0 l

(* ------------------------------------------------------------------ *)
(* Constants, predicates, comparison                                   *)
(* ------------------------------------------------------------------ *)

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]
let is_zero (a : t) = Array.length a = 0
let is_one (a : t) = Array.length a = 1 && a.(0) = 1
let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  (* psi-lint: allow CT01 — limb counts are public: magnitude length leaks anyway *)
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      (* psi-lint: allow CT01 — ordering must exit on the first differing limb *)
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Conversions: int                                                    *)
(* ------------------------------------------------------------------ *)

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative"
  else if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr base_bits) in
    let len = count 0 n in
    let w = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        w.(i) <- n land base_mask;
        fill (i + 1) (n lsr base_bits)
      end
    in
    fill 0 n;
    w
  end

let to_int (a : t) =
  (* max_int has 62 bits: at most 3 limbs (78 bits) can pretend to fit. *)
  let la = Array.length a in
  if la = 0 then Some 0
  else if (la - 1) * base_bits + limb_bits a.(la - 1) > 62 then None
  else begin
    let v = ref 0 in
    for i = la - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

let to_int_exn a =
  match to_int a with
  | Some v -> v
  | None -> invalid_arg "Nat.to_int_exn: does not fit"

(* ------------------------------------------------------------------ *)
(* Bit access                                                          *)
(* ------------------------------------------------------------------ *)

let num_bits (a : t) =
  let la = Array.length a in
  if la = 0 then 0 else ((la - 1) * base_bits) + limb_bits a.(la - 1)

let test_bit (a : t) i =
  if i < 0 then invalid_arg "Nat.test_bit: negative index"
  else begin
    let li = i / base_bits and off = i mod base_bits in
    li < Array.length a && (a.(li) lsr off) land 1 = 1
  end

let shift_left (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_left: negative shift"
  else if is_zero a || s = 0 then a
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let la = Array.length a in
    let w = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 w limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        w.(i + limb_shift) <- v land base_mask;
        carry := v lsr base_bits
      done;
      w.(la + limb_shift) <- !carry
    end;
    normalize w
  end

let shift_right (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_right: negative shift"
  else if is_zero a || s = 0 then a
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let lw = la - limb_shift in
      let w = Array.make lw 0 in
      if bit_shift = 0 then Array.blit a limb_shift w 0 lw
      else
        for i = 0 to lw - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask
            else 0
          in
          w.(i) <- lo lor hi
        done;
      normalize w
    end
  end

(* ------------------------------------------------------------------ *)
(* Addition / subtraction                                              *)
(* ------------------------------------------------------------------ *)

let add (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let a, b, la, lb = if la >= lb then (a, b, la, lb) else (b, a, lb, la) in
  let w = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = a.(i) + (if i < lb then b.(i) else 0) + !carry in
    w.(i) <- v land base_mask;
    carry := v lsr base_bits
  done;
  w.(la) <- !carry;
  normalize w

let succ a = add a one

let sub (a : t) (b : t) =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result"
  else begin
    let la = Array.length a and lb = Array.length b in
    let w = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let v = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if v < 0 then begin
        w.(i) <- v + base;
        borrow := 1
      end
      else begin
        w.(i) <- v;
        borrow := 0
      end
    done;
    assert (!borrow = 0);
    normalize w
  end

let pred a = sub a one

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

let mul_schoolbook (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let w = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let v = w.(i + j) + (ai * b.(j)) + !carry in
          w.(i + j) <- v land base_mask;
          carry := v lsr base_bits
        done;
        (* Propagate the final carry; cannot run off the end because the
           product is < base^(la+lb). *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let v = w.(!k) + !carry in
          w.(!k) <- v land base_mask;
          carry := v lsr base_bits;
          incr k
        done
      end
    done;
    normalize w
  end

(* Shift left by whole limbs (cheap Karatsuba helper). *)
let shift_limbs (a : t) k =
  if is_zero a || k = 0 then a
  else begin
    let la = Array.length a in
    let w = Array.make (la + k) 0 in
    Array.blit a 0 w k la;
    w
  end

let low_limbs (a : t) k = normalize (Array.sub a 0 (Int.min k (Array.length a)))

let high_limbs (a : t) k =
  let la = Array.length a in
  if k >= la then zero else Array.sub a k (la - k)

(* Below ~384 limbs (~10k bits) the allocation overhead of splitting
   outweighs the saved limb products; measured crossover on this
   representation is near 12k bits. *)
let karatsuba_threshold = 384

let rec mul (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let m = (Int.max la lb + 1) / 2 in
    let a0 = low_limbs a m and a1 = high_limbs a m in
    let b0 = low_limbs b m and b1 = high_limbs b m in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add (shift_limbs z2 (2 * m)) (shift_limbs z1 m)) z0
  end

let sqr a = mul a a

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent"
  else begin
    let rec go acc b e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then mul acc b else acc in
        go acc (sqr b) (e lsr 1)
      end
    in
    go one b e
  end

(* ------------------------------------------------------------------ *)
(* Division                                                            *)
(* ------------------------------------------------------------------ *)

(* Short division by a single limb. *)
let divmod_small (a : t) d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Observability hook for the rare add-back branch of Algorithm D (the
   branch fires with probability ~2/base per quotient digit, so tests
   construct inputs that provoke it and check this counter). *)
let add_back_count = ref 0

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D. *)
let divmod_knuth (a : t) (b : t) =
  let n = Array.length b in
  assert (n >= 2);
  (* Normalize so the divisor's top limb has its high bit set. *)
  let s = base_bits - limb_bits b.(n - 1) in
  let v =
    let v' = shift_left b s in
    assert (Array.length v' = n);
    v'
  in
  let u =
    let u' = shift_left a s in
    let lu = Array.length u' in
    (* Always provide the extra top limb u.(m+n). *)
    let w = Array.make (Int.max (lu + 1) (n + 1)) 0 in
    Array.blit u' 0 w 0 lu;
    w
  in
  let m = Array.length u - 1 - n in
  assert (m >= 0);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num / v.(n - 1)) in
    let rhat = ref (num mod v.(n - 1)) in
    let continue = ref true in
    while
      !continue
      && (!qhat >= base
         || !qhat * v.(n - 2) > (!rhat lsl base_bits) lor u.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + v.(n - 1);
      if !rhat >= base then continue := false
    done;
    (* Multiply and subtract: u[j .. j+n] -= qhat * v. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land base_mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      incr add_back_count;
      u.(j + n) <- d + base;
      q.(j) <- !qhat - 1;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let v' = u.(i + j) + v.(i) + !c in
        u.(i + j) <- v' land base_mask;
        c := v' lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land base_mask
    end
    else begin
      u.(j + n) <- d;
      q.(j) <- !qhat
    end
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else divmod_knuth a b

let divmod_binary (a : t) (b : t) =
  if is_zero b then raise Division_by_zero
  else begin
    let q = ref zero and r = ref zero in
    for i = num_bits a - 1 downto 0 do
      r := shift_left !r 1;
      if test_bit a i then r := add !r one;
      q := shift_left !q 1;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q := add !q one
      end
    done;
    (!q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* ------------------------------------------------------------------ *)
(* Conversions: bytes, hex, decimal                                    *)
(* ------------------------------------------------------------------ *)

let of_bytes_be s =
  let nbytes = String.length s in
  if nbytes = 0 then zero
  else begin
    let nlimbs = ((8 * nbytes) + base_bits - 1) / base_bits in
    let w = Array.make nlimbs 0 in
    for k = 0 to nbytes - 1 do
      let byte = Char.code s.[nbytes - 1 - k] in
      let bitpos = 8 * k in
      let li = bitpos / base_bits and off = bitpos mod base_bits in
      w.(li) <- w.(li) lor ((byte lsl off) land base_mask);
      let hi = byte lsr (base_bits - off) in
      if hi <> 0 then w.(li + 1) <- w.(li + 1) lor hi
    done;
    normalize w
  end

let to_bytes_be ?width (a : t) =
  let nbytes = (num_bits a + 7) / 8 in
  let nbytes = Int.max nbytes 1 in
  let width =
    match width with
    | None -> nbytes
    | Some w ->
        if w < nbytes then invalid_arg "Nat.to_bytes_be: width too small" else w
  in
  let la = Array.length a in
  let byte_at k =
    let bitpos = 8 * k in
    let li = bitpos / base_bits and off = bitpos mod base_bits in
    if li >= la then 0
    else begin
      let v = a.(li) lsr off in
      let v =
        if li + 1 < la && off > base_bits - 8 then
          v lor ((a.(li + 1) lsl (base_bits - off)) land 0xff)
        else v
      in
      v land 0xff
    end
  in
  String.init width (fun i -> Char.chr (byte_at (width - 1 - i)))

let of_hex s =
  let acc = ref zero in
  let seen = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          seen := true;
          acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code '0'))
      | 'a' .. 'f' ->
          seen := true;
          acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code 'a' + 10))
      | 'A' .. 'F' ->
          seen := true;
          acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code 'A' + 10))
      | '_' | ' ' | '\n' | '\t' -> ()
      | _ -> invalid_arg "Nat.of_hex: invalid character")
    s;
  if not !seen then invalid_arg "Nat.of_hex: empty" else !acc

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let started = ref false in
    for i = (num_bits a + 3) / 4 - 1 downto 0 do
      let nib =
        ((if test_bit a ((4 * i) + 3) then 8 else 0)
        lor (if test_bit a ((4 * i) + 2) then 4 else 0)
        lor (if test_bit a ((4 * i) + 1) then 2 else 0)
        lor if test_bit a (4 * i) then 1 else 0)
      in
      if nib <> 0 || !started then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[nib]
      end
    done;
    Buffer.contents buf
  end

let chunk_pow10 = 10_000_000 (* 10^7 < 2^26 *)
let chunk_digits = 7

let of_decimal s =
  let n = String.length s in
  if n = 0 then invalid_arg "Nat.of_decimal: empty"
  else begin
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' -> ()
        | _ -> invalid_arg "Nat.of_decimal: invalid character")
      s;
    let acc = ref zero in
    let i = ref 0 in
    while !i < n do
      let len = Int.min chunk_digits (n - !i) in
      let chunk = int_of_string (String.sub s !i len) in
      let scale = of_int (int_of_float (10. ** float_of_int len)) in
      acc := add (mul !acc scale) (of_int chunk);
      i := !i + len
    done;
    !acc
  end

let to_decimal (a : t) =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_small !cur chunk_pow10 in
      chunks := to_int_exn r :: !chunks;
      cur := q
    done;
    match !chunks with
    (* psi-lint: allow DBG01 — the loop above runs at least once for non-zero a *)
    | [] -> assert false
    | hd :: tl ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int hd);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) tl;
        Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)

let () = assert (check_limbs zero && check_limbs one)

module Internal = struct
  let base_bits = base_bits
  let base = base
  let base_mask = base_mask

  let limbs_padded (a : t) width =
    let la = Array.length a in
    if la > width then invalid_arg "Nat.Internal.limbs_padded: too narrow"
    else begin
      let w = Array.make width 0 in
      Array.blit a 0 w 0 la;
      w
    end

  let of_limbs w = normalize (Array.copy w)
  let num_limbs (a : t) = Array.length a
  let raw_limbs (a : t) : int array = a
  let add_back_count = add_back_count
end
