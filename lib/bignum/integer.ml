(* Sign-magnitude representation. Invariant: [sign = 0] iff the magnitude
   is zero, so zero has a unique form. *)

type t = { sign : int; mag : Nat.t }

let make sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }
let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }
let of_nat n = make 1 n

let to_nat n =
  if n.sign < 0 then invalid_arg "Integer.to_nat: negative" else n.mag

let of_int i = if i >= 0 then make 1 (Nat.of_int i) else make (-1) (Nat.of_int (-i))
let sign n = n.sign
let neg n = make (-n.sign) n.mag
let abs n = make 1 n.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)
let compare a b = if a.sign <> b.sign then Int.compare a.sign b.sign else a.sign * Nat.compare a.mag b.mag
let equal a b = compare a b = 0

let ediv_rem a b =
  if b.sign = 0 then raise Division_by_zero
  else begin
    let q, r = Nat.divmod a.mag b.mag in
    if a.sign >= 0 then (make b.sign q, make 1 r)
    else if Nat.is_zero r then (make (-b.sign) q, zero)
    else
      (* Round the quotient toward -infinity in magnitude terms so the
         remainder lands in [0, |b|). *)
      (make (-b.sign) (Nat.succ q), make 1 (Nat.sub b.mag r))
  end

let erem a b = snd (ediv_rem a b)

let egcd a b =
  (* Iterative extended Euclid on |a|, |b|, then fix the signs. *)
  let rec go r0 r1 s0 s1 t0 t1 =
    if equal r1 zero then (r0, s0, t0)
    else begin
      let q, r = ediv_rem r0 r1 in
      go r1 r s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, x, y = go (abs a) (abs b) one zero zero one in
  let x = if a.sign < 0 then neg x else x in
  let y = if b.sign < 0 then neg y else y in
  (g, x, y)

let to_string n =
  match n.sign with
  | 0 -> "0"
  | s when s > 0 -> Nat.to_decimal n.mag
  | _ -> "-" ^ Nat.to_decimal n.mag

let pp fmt n = Format.pp_print_string fmt (to_string n)
