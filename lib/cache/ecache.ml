module Buf = Wire.Buf
module Sha256 = Crypto.Sha256

(* On-disk layout of <dir>/ecache.psi:

     "PSIECACH" | version u8 | entry*
     entry = u32 body_len | body | 8-byte checksum

   body is Buf-framed (varint-prefixed key, then value); the checksum
   is SHA-256 over the body, domain separated and truncated. The frame
   length lives outside the checksum on purpose: a corrupt body is
   skipped without losing framing, and a corrupt length (or a cut-off
   tail) simply ends the load. Either way the damage degrades to a
   cache miss — never to serving a wrong value. *)

let magic = "PSIECACH"
let version = 1
let checksum_bytes = 8
let checksum body = String.sub (Sha256.digest_concat [ "psi:ecache:v1"; body ]) 0 checksum_bytes
let default_max_entries = 65536

let c_hits = Obs.Metrics.counter "ecache.hits"
let c_misses = Obs.Metrics.counter "ecache.misses"
let c_puts = Obs.Metrics.counter "ecache.puts"
let c_evictions = Obs.Metrics.counter "ecache.evictions"
let c_corrupt = Obs.Metrics.counter "ecache.corrupt_entries"
let c_loaded = Obs.Metrics.counter "ecache.loaded_entries"
let c_flushes = Obs.Metrics.counter "ecache.flushes"

type stats = {
  hits : int;
  misses : int;
  puts : int;
  evictions : int;
  corrupt : int;
  loaded : int;
  entries : int;
}

(* Intrusive doubly-linked list for LRU order: head = most recent. *)
type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  dir : string;
  max_entries : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable count : int;
  mutable dirty : bool;
  mutable closed : bool;
  lock : Mutex.t;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_puts : int;
  mutable s_evictions : int;
  mutable s_corrupt : int;
  mutable s_loaded : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let check_open t = if t.closed then invalid_arg "Ecache: cache is closed"

(* The composite key concatenates the three coordinates with a
   separator that cannot occur inside [ns] or a hex [key_fp], so
   distinct coordinates never alias. *)
let composite ~ns ~key_fp input = String.concat "\x00" [ ns; key_fp; input ]

let unlink t n =
  (match n.prev with None -> t.head <- n.next | Some p -> p.next <- n.next);
  (match n.next with None -> t.tail <- n.prev | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_over_bound t =
  while t.count > t.max_entries do
    match t.tail with
    | None -> t.count <- 0
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.key;
        t.count <- t.count - 1;
        t.s_evictions <- t.s_evictions + 1;
        Obs.Metrics.incr c_evictions
  done

(* Insert without recency bookkeeping beyond push-to-front; caller
   holds the lock. *)
let insert t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n;
      t.dirty <- true
  | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n;
      t.count <- t.count + 1;
      t.s_puts <- t.s_puts + 1;
      Obs.Metrics.incr c_puts;
      t.dirty <- true;
      evict_over_bound t

(* ------------------------------------------------------------------ *)
(* Persistence                                                        *)
(* ------------------------------------------------------------------ *)

let cache_file dir = Filename.concat dir "ecache.psi"

let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if not (String.equal parent d) then ensure_dir parent;
    (* A concurrent creator winning the race is fine; any real failure
       (permissions, name collision with a file) resurfaces at flush. *)
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

let corrupt t =
  t.s_corrupt <- t.s_corrupt + 1;
  Obs.Metrics.incr c_corrupt

(* Decode one frame; [None] means the rest of the file is unusable. *)
let load_entries t data =
  let r = Buf.reader data in
  let _header = Buf.read_raw r (String.length magic + 1) in
  let continue = ref true in
  while !continue && not (Buf.at_end r) do
    match
      let body_len = Buf.read_u32 r in
      if body_len > Buf.max_chunk_bytes then raise (Buf.Parse_error "ecache: oversized entry");
      let body = Buf.read_raw r body_len in
      let sum = Buf.read_raw r checksum_bytes in
      (body, sum)
    with
    | exception Buf.Parse_error _ ->
        (* Truncated or unframeable tail: keep what we have. *)
        corrupt t;
        continue := false
    | body, sum ->
        if not (String.equal sum (checksum body)) then corrupt t
        else begin
          match
            let br = Buf.reader body in
            let key = Buf.read_bytes br in
            let value = Buf.read_bytes br in
            Buf.expect_end br;
            (key, value)
          with
          | exception Buf.Parse_error _ -> corrupt t
          | key, value ->
              insert t key value;
              (* [insert] counted a put; reclassify as a load. *)
              t.s_puts <- t.s_puts - 1;
              t.s_loaded <- t.s_loaded + 1;
              Obs.Metrics.incr c_loaded
        end
  done;
  t.dirty <- false

let load t =
  match read_file (cache_file t.dir) with
  | None -> ()
  | Some data ->
      let header_len = String.length magic + 1 in
      if String.length data < header_len then corrupt t
      else if not (String.equal (String.sub data 0 (String.length magic)) magic) then corrupt t
      else if Char.code data.[String.length magic] <> version then
        (* Stale format: every lookup misses and the next flush
           rewrites the file at the current version. *)
        corrupt t
      else load_entries t data

let write_entry w key value =
  let bw = Buf.writer () in
  Buf.write_bytes bw key;
  Buf.write_bytes bw value;
  let body = Buf.contents bw in
  Buf.write_u32 w (String.length body);
  Buf.write_raw w body;
  Buf.write_raw w (checksum body)

let flush t =
  with_lock t (fun () ->
      if t.dirty && not t.closed then begin
        ensure_dir t.dir;
        let w = Buf.writer () in
        Buf.write_raw w magic;
        Buf.write_u8 w version;
        (* Oldest first, so loading (which pushes to front) restores
           the same recency order. *)
        let rec walk = function
          | None -> ()
          | Some n ->
              write_entry w n.key n.value;
              walk n.prev
        in
        walk t.tail;
        let path = cache_file t.dir in
        let tmp = path ^ ".tmp" in
        Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (Buf.contents w));
        Sys.rename tmp path;
        t.dirty <- false;
        Obs.Metrics.incr c_flushes
      end)

(* ------------------------------------------------------------------ *)
(* API                                                                *)
(* ------------------------------------------------------------------ *)

let open_ ?(max_entries = default_max_entries) ~dir () =
  if max_entries < 1 then invalid_arg "Ecache.open_: max_entries must be >= 1";
  ensure_dir dir;
  let t =
    {
      dir;
      max_entries;
      tbl = Hashtbl.create 1024;
      head = None;
      tail = None;
      count = 0;
      dirty = false;
      closed = false;
      lock = Mutex.create ();
      s_hits = 0;
      s_misses = 0;
      s_puts = 0;
      s_evictions = 0;
      s_corrupt = 0;
      s_loaded = 0;
    }
  in
  with_lock t (fun () -> load t);
  t

let find t ~ns ~key_fp input =
  with_lock t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.tbl (composite ~ns ~key_fp input) with
      | Some n ->
          unlink t n;
          push_front t n;
          t.s_hits <- t.s_hits + 1;
          Obs.Metrics.incr c_hits;
          Some n.value
      | None ->
          t.s_misses <- t.s_misses + 1;
          Obs.Metrics.incr c_misses;
          None)

let put t ~ns ~key_fp input output =
  with_lock t (fun () ->
      check_open t;
      insert t (composite ~ns ~key_fp input) output)

(* Warm-up batch size: bounds how many computed-but-not-yet-stored
   outputs exist at once, so warming a million-element set holds one
   chunk of results, not all of them — and still feeds the pool batches
   large enough to amortize fan-out. *)
let warm_chunk = 4096

let warm t ?pool ~ns ~key_fp ~f inputs =
  (* Peek without touching hit/miss stats: warm-up is provisioning.
     Deduplicate (first occurrence wins) so [f] runs once per element,
     and compute outside the lock so pool workers never contend on it.
     Two racing warm-ups may both compute an element; [put] makes that
     an idempotent overwrite with the identical value. Chunked: each
     [warm_chunk]-sized slice is filtered, computed and stored before
     the next is touched, keeping peak memory O(chunk). *)
  let seen = Hashtbl.create 1024 in
  let rec take n acc l =
    if n = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: tl -> take (n - 1) (x :: acc) tl
  in
  let rec go inputs =
    match inputs with
    | [] -> ()
    | _ ->
        let chunk, rest = take warm_chunk [] inputs in
        let missing =
          with_lock t (fun () ->
              check_open t;
              List.filter
                (fun input ->
                  let k = composite ~ns ~key_fp input in
                  if Hashtbl.mem t.tbl k || Hashtbl.mem seen k then false
                  else begin
                    Hashtbl.replace seen k ();
                    true
                  end)
                chunk)
        in
        let outputs =
          match pool with
          | None -> List.map f missing
          | Some pool -> Parallel.Pool.map pool f missing
        in
        List.iter2 (fun input output -> put t ~ns ~key_fp input output) missing outputs;
        go rest
  in
  go inputs

let close t =
  flush t;
  with_lock t (fun () -> t.closed <- true)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.s_hits;
        misses = t.s_misses;
        puts = t.s_puts;
        evictions = t.s_evictions;
        corrupt = t.s_corrupt;
        loaded = t.s_loaded;
        entries = t.count;
      })

let entries t = with_lock t (fun () -> t.count)
