(** Persistent, content-addressed store of per-element crypto work.

    The paper's cost model (§6.1) is dominated by the [Ce·n] encryption
    term, and both §6.2 applications re-run the same protocol
    periodically against slowly-changing sets. This cache remembers the
    expensive per-element results — hash-to-group outputs and
    commutative-encryption powers — across runs, so a repeat execution
    pays [Ce·|Δ|] instead of [Ce·n].

    {2 Addressing}

    Entries are keyed by [(namespace, key_fingerprint, input)] where all
    three are opaque strings:
    {ul
    {- [ns] separates kinds of work (["h2g:<domain>"] for hash-to-group,
       ["enc"] / ["dec"] for encryption and decryption);}
    {- [key_fp] is {!Crypto.Commutative.fingerprint} for keyed work (and
       [""] for key-independent work such as hashing), so cached
       ciphertexts are only ever served back under the exact key that
       produced them — a fresh key misses everything by construction;}
    {- [input] and the stored output are wire encodings
       ([Crypto.Group.encode_elt] or raw values), so a hit is returned
       byte-for-byte as the cold path would have produced it.}}

    {2 Durability}

    [flush] writes [<dir>/ecache.psi]: a versioned magic header followed
    by length-prefixed entries, each carrying a truncated-SHA-256
    checksum. Loading is forgiving by design: a stale version means
    every lookup misses, a corrupt entry is skipped, and a truncated
    file loads up to the damage — a damaged cache degrades to recompute,
    it {e never} serves a wrong value. Files are replaced atomically
    (write to a temp file, then rename).

    {2 Concurrency}

    All operations take an internal mutex, so one cache may be shared by
    both protocol parties (systhreads) and fed from {!Parallel.Pool}
    workers. {!warm} computes misses outside the lock; two concurrent
    warm-ups may duplicate work but converge to identical entries.

    Telemetry (under [ecache.*], recorded when [Obs] is enabled):
    [ecache.hits], [ecache.misses], [ecache.puts], [ecache.evictions],
    [ecache.corrupt_entries], [ecache.loaded_entries], [ecache.flushes].
    {!stats} is an always-on equivalent scoped to one cache instance. *)

type t

(** Always-on per-instance statistics (independent of [Obs] being
    enabled — the incremental driver reports these even in untraced
    runs). *)
type stats = {
  hits : int;  (** {!find} calls answered from the store *)
  misses : int;  (** {!find} calls that found nothing *)
  puts : int;  (** entries inserted (excluding overwrites) *)
  evictions : int;  (** entries dropped by the LRU bound *)
  corrupt : int;  (** skipped entries + truncations at load time *)
  loaded : int;  (** entries restored from disk at {!open_} *)
  entries : int;  (** current size of the store *)
}

(** [open_ ?max_entries ~dir ()] opens (creating [dir] if needed) the
    cache persisted at [dir/ecache.psi]. A missing, foreign, stale or
    damaged file yields an empty or partial cache, never an error.
    [max_entries] (default [65536]) bounds the store; the least recently
    used entry is evicted first.
    @raise Invalid_argument if [max_entries < 1]. *)
val open_ : ?max_entries:int -> dir:string -> unit -> t

(** [find t ~ns ~key_fp input] returns the cached output, refreshing the
    entry's recency. Counts one hit or one miss.
    @raise Invalid_argument on a closed cache. *)
val find : t -> ns:string -> key_fp:string -> string -> string option

(** [put t ~ns ~key_fp input output] stores (or refreshes) an entry,
    evicting from the LRU tail past [max_entries].
    @raise Invalid_argument on a closed cache. *)
val put : t -> ns:string -> key_fp:string -> string -> string -> unit

(** [warm t ?pool ~ns ~key_fp ~f inputs] computes [f] for every input
    not already present (deduplicated, in parallel across [pool] when
    given) and stores the results. Peeking does not count hits or
    misses — warm-up is provisioning, not protocol work. Inputs are
    processed in bounded chunks (filter → compute → store per chunk), so
    warming arbitrarily large sets keeps peak memory at one chunk of
    outputs plus the cache itself. *)
val warm :
  t ->
  ?pool:Parallel.Pool.t ->
  ns:string ->
  key_fp:string ->
  f:(string -> string) ->
  string list ->
  unit

(** [flush t] persists the store to [dir/ecache.psi] atomically (temp
    file + rename), oldest entry first so a reload preserves recency
    order. No-op if nothing changed since the last flush. *)
val flush : t -> unit

(** [close t] flushes and marks the cache closed; later {!find}/{!put}
    raise [Invalid_argument]. Idempotent. *)
val close : t -> unit

val stats : t -> stats

(** Number of entries currently in the store. *)
val entries : t -> int
