module Group = Crypto.Group
module Commutative = Crypto.Commutative
module Hash_to_group = Crypto.Hash_to_group

type config = {
  group : Group.t;
  domain : string;
  cipher : Crypto.Perfect_cipher.scheme;
  workers : int;
}

let config ?(domain = "default") ?(cipher = Crypto.Perfect_cipher.Stream_cipher)
    ?(workers = 1) group =
  if workers < 1 then invalid_arg "Protocol.config: workers >= 1"
  else { group; domain; cipher; workers }

(* Chunked fork-join over OCaml 5 domains. Spawning costs ~100 us, so
   short lists stay sequential. *)
let parallel_map ~workers f xs =
  let n = List.length xs in
  if workers <= 1 || n < 32 then List.map f xs
  else begin
    let workers = Stdlib.min workers n in
    let arr = Array.of_list xs in
    let out = Array.make n None in
    let chunk = (n + workers - 1) / workers in
    let work lo hi () =
      for i = lo to hi do
        out.(i) <- Some (f arr.(i))
      done
    in
    let domains =
      List.init workers (fun w ->
          let lo = w * chunk in
          let hi = Stdlib.min ((w + 1) * chunk) n - 1 in
          Domain.spawn (work lo hi))
    in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> failwith "Protocol.parallel_map: hole")
         out)
  end

type ops = { mutable hashes : int; mutable encryptions : int; mutable cipher_ops : int }

let new_ops () = { hashes = 0; encryptions = 0; cipher_ops = 0 }

let total a b =
  {
    hashes = a.hashes + b.hashes;
    encryptions = a.encryptions + b.encryptions;
    cipher_ops = a.cipher_ops + b.cipher_ops;
  }

(* Per-protocol telemetry rollup, written by each protocol's [run]:
   gauges [psi.<op>.v_s]/[.v_r] (set sizes of the latest run) and
   counters [psi.<op>.{runs,encryptions,hashes,cipher_ops,wire_bytes}].
   [Obs_report.model_vs_measured] reads these back from a snapshot. *)
let record_run ~op ~v_s ~v_r ~(ops : ops) ~wire_bytes =
  if Obs.Runtime.is_enabled () then begin
    let c name = Obs.Metrics.counter (Printf.sprintf "psi.%s.%s" op name) in
    let g name = Obs.Metrics.gauge (Printf.sprintf "psi.%s.%s" op name) in
    Obs.Metrics.set (g "v_s") (float_of_int v_s);
    Obs.Metrics.set (g "v_r") (float_of_int v_r);
    Obs.Metrics.incr (c "runs");
    Obs.Metrics.incr ~by:ops.encryptions (c "encryptions");
    Obs.Metrics.incr ~by:ops.hashes (c "hashes");
    Obs.Metrics.incr ~by:ops.cipher_ops (c "cipher_ops");
    Obs.Metrics.incr ~by:wire_bytes (c "wire_bytes")
  end

let dedup values = List.sort_uniq String.compare values

let hash_values cfg ops vs =
  let res =
    parallel_map ~workers:cfg.workers
      (fun v -> (v, Hash_to_group.hash_value cfg.group ~domain:cfg.domain v))
      vs
  in
  ops.hashes <- ops.hashes + List.length vs;
  (* §3.2.2: "a collision within V_S or V_R can be detected by the
     server at the start of each protocol by sorting the hashes". With a
     64-bit test group and millions of values this could actually fire;
     failing loudly beats silently corrupting the result. *)
  let sorted =
    List.sort Bignum.Nat.compare (List.map snd res) |> Array.of_list
  in
  for i = 0 to Array.length sorted - 2 do
    if Bignum.Nat.equal sorted.(i) sorted.(i + 1) then
      failwith
        "protocol error: hash collision within this party's value set (use a larger group)"
  done;
  res

let encrypt_elt cfg ops key x =
  ops.encryptions <- ops.encryptions + 1;
  Commutative.encrypt cfg.group key x

let decrypt_elt cfg ops key y =
  ops.encryptions <- ops.encryptions + 1;
  Commutative.decrypt cfg.group key y

let encrypt_batch cfg ops key xs =
  let res = parallel_map ~workers:cfg.workers (fun x -> Commutative.encrypt cfg.group key x) xs in
  ops.encryptions <- ops.encryptions + List.length xs;
  res

let encode cfg x = Group.encode_elt cfg.group x
let decode cfg s = Group.decode_elt cfg.group s

let encrypt_encoded_batch cfg ops key ss =
  let res =
    parallel_map ~workers:cfg.workers
      (fun s -> encode cfg (Commutative.encrypt cfg.group key (decode cfg s)))
      ss
  in
  ops.encryptions <- ops.encryptions + List.length ss;
  res

let decrypt_encoded_batch cfg ops key ss =
  let res =
    parallel_map ~workers:cfg.workers
      (fun s -> Commutative.decrypt cfg.group key (decode cfg s))
      ss
  in
  ops.encryptions <- ops.encryptions + List.length ss;
  res

let sort_encoded ss = List.sort String.compare ss

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as tl) -> String.compare a b <= 0 && is_sorted tl


let recv_tagged ep tag =
  let m = Wire.Channel.recv ep in
  if m.Wire.Message.tag <> tag then
    failwith
      (Printf.sprintf "protocol error: expected message %S, got %S" tag m.Wire.Message.tag)
  else m.Wire.Message.payload

let elements_of = function
  | Wire.Message.Elements es -> es
  | Wire.Message.Element_pairs _ | Wire.Message.Element_triples _
  | Wire.Message.Ciphertext_pairs _ ->
      failwith "protocol error: expected an element list"

let pairs_of = function
  | Wire.Message.Element_pairs ps | Wire.Message.Ciphertext_pairs ps -> ps
  | Wire.Message.Elements _ | Wire.Message.Element_triples _ ->
      failwith "protocol error: expected a pair list"

let triples_of = function
  | Wire.Message.Element_triples ts -> ts
  | Wire.Message.Elements _ | Wire.Message.Element_pairs _
  | Wire.Message.Ciphertext_pairs _ ->
      failwith "protocol error: expected a triple list"
