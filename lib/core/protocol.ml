module Group = Crypto.Group
module Commutative = Crypto.Commutative
module Hash_to_group = Crypto.Hash_to_group

type config = {
  group : Group.t;
  domain : string;
  cipher : Crypto.Perfect_cipher.scheme;
  workers : int;
  ecache : Ecache.t option;
  scope : string;
}

let config ?(domain = "default") ?(cipher = Crypto.Perfect_cipher.Stream_cipher)
    ?(workers = 1) ?ecache ?(scope = "") group =
  if workers < 1 then invalid_arg "Protocol.config: workers >= 1"
  else { group; domain; cipher; workers; ecache; scope }

let with_scope cfg scope = { cfg with scope }

(* The empty scope concatenates to the bare tag, so every pre-sharding
   transcript stays byte-identical. *)
let scoped cfg tag = if cfg.scope = "" then tag else cfg.scope ^ "/" ^ tag

(* [pool cfg] is the shared domain pool for [cfg.workers] — [None] for
   the sequential default, which keeps single-worker runs on the exact
   pre-pool code path. *)
let pool_of cfg = if cfg.workers <= 1 then None else Some (Pool.get cfg.workers)

(* Chunked fork-join over the shared domain pool ([Psi.Pool]; direct
   [Domain.spawn] is banned outside lib/parallel by lint rule DOM01).
   Short lists stay sequential: a chunk dispatch costs more than a few
   exponentiations. *)
let parallel_map ~workers f xs =
  if workers <= 1 || List.length xs < 32 then List.map f xs
  else Pool.map (Pool.get workers) f xs

type ops = { mutable hashes : int; mutable encryptions : int; mutable cipher_ops : int }

let new_ops () = { hashes = 0; encryptions = 0; cipher_ops = 0 }

let total a b =
  {
    hashes = a.hashes + b.hashes;
    encryptions = a.encryptions + b.encryptions;
    cipher_ops = a.cipher_ops + b.cipher_ops;
  }

(* Per-protocol telemetry rollup, written by each protocol's [run]:
   gauges [psi.<op>.v_s]/[.v_r] (set sizes of the latest run) and
   counters [psi.<op>.{runs,encryptions,hashes,cipher_ops,wire_bytes}].
   [Obs_report.model_vs_measured] reads these back from a snapshot. *)
let record_run ~op ~v_s ~v_r ~(ops : ops) ~wire_bytes =
  if Obs.Runtime.is_enabled () then begin
    let c name = Obs.Metrics.counter (Printf.sprintf "psi.%s.%s" op name) in
    let g name = Obs.Metrics.gauge (Printf.sprintf "psi.%s.%s" op name) in
    Obs.Metrics.set (g "v_s") (float_of_int v_s);
    Obs.Metrics.set (g "v_r") (float_of_int v_r);
    Obs.Metrics.incr (c "runs");
    Obs.Metrics.incr ~by:ops.encryptions (c "encryptions");
    Obs.Metrics.incr ~by:ops.hashes (c "hashes");
    Obs.Metrics.incr ~by:ops.cipher_ops (c "cipher_ops");
    Obs.Metrics.incr ~by:wire_bytes (c "wire_bytes")
  end

let dedup values = List.sort_uniq String.compare values

(* Bridge one (namespace, key) slice of the session's Ecache into the
   crypto layer's closure pair. [store] fires exactly once per computed
   miss, on the caller's thread, so threading the per-party [count]
   callback through it keeps the ops tallies meaning "modexps actually
   performed" — the quantity the amortized Ce·|Δ| model is validated
   against. *)
let elt_cache_of cache ~ns ~key_fp ~count =
  {
    Commutative.find = (fun s -> Ecache.find cache ~ns ~key_fp s);
    store =
      (fun s out ->
        count ();
        Ecache.put cache ~ns ~key_fp s out);
  }

(* Hash namespace: key-independent (key_fp = ""), separated per hash
   domain so two attributes never alias. Both parties share it — h(v)
   is the same function on either side. *)
let h2g_ns cfg = "h2g:" ^ cfg.domain

let hash_batch_cached cfg ops cache vs =
  let ns = h2g_ns cfg in
  let looked = List.map (fun v -> (v, Ecache.find cache ~ns ~key_fp:"" v)) vs in
  let missing = List.filter_map (function v, None -> Some v | _, Some _ -> None) looked in
  ops.hashes <- ops.hashes + List.length missing;
  let computed =
    Hash_to_group.hash_batch ?pool:(pool_of cfg) cfg.group ~domain:cfg.domain missing
    |> List.map (fun h -> Group.encode_elt cfg.group h)
  in
  List.iter2 (fun v s -> Ecache.put cache ~ns ~key_fp:"" v s) missing computed;
  let tbl = Hashtbl.create (max 1 (List.length missing)) in
  List.iter2 (Hashtbl.replace tbl) missing computed;
  List.map
    (fun (v, found) ->
      let s = match found with Some s -> s | None -> Hashtbl.find tbl v in
      Group.decode_elt cfg.group s)
    looked

let hash_values cfg ops vs =
  let hs =
    match cfg.ecache with
    | None ->
        ops.hashes <- ops.hashes + List.length vs;
        Hash_to_group.hash_batch ?pool:(pool_of cfg) cfg.group ~domain:cfg.domain vs
    | Some cache -> hash_batch_cached cfg ops cache vs
  in
  let res = List.map2 (fun v h -> (v, h)) vs hs in
  (* §3.2.2: "a collision within V_S or V_R can be detected by the
     server at the start of each protocol by sorting the hashes". With a
     64-bit test group and millions of values this could actually fire;
     failing loudly beats silently corrupting the result. *)
  let sorted =
    List.sort Bignum.Nat.compare (List.map snd res) |> Array.of_list
  in
  for i = 0 to Array.length sorted - 2 do
    if Bignum.Nat.equal sorted.(i) sorted.(i + 1) then
      failwith
        "protocol error: hash collision within this party's value set (use a larger group)"
  done;
  res

let encrypt_elt cfg ops key x =
  ops.encryptions <- ops.encryptions + 1;
  Commutative.encrypt cfg.group key x

let decrypt_elt cfg ops key y =
  ops.encryptions <- ops.encryptions + 1;
  Commutative.decrypt cfg.group key y

let encode cfg x = Group.encode_elt cfg.group x
let decode cfg s = Group.decode_elt cfg.group s

(* Per-key encryption/decryption slices: keyed by the key fingerprint,
   so a `Fresh exponent misses everything by construction and a cached
   ciphertext is only ever served under the exact key that made it. *)
let enc_cache cache ops key =
  elt_cache_of cache ~ns:"enc"
    ~key_fp:(Commutative.fingerprint key)
    ~count:(fun () -> ops.encryptions <- ops.encryptions + 1)

let dec_cache cache ops key =
  elt_cache_of cache ~ns:"dec"
    ~key_fp:(Commutative.fingerprint key)
    ~count:(fun () -> ops.encryptions <- ops.encryptions + 1)

let encrypt_batch cfg ops key xs =
  match cfg.ecache with
  | None ->
      let res = Commutative.encrypt_batch ?pool:(pool_of cfg) cfg.group key xs in
      ops.encryptions <- ops.encryptions + List.length xs;
      res
  | Some cache ->
      Commutative.encrypt_batch_cached ?pool:(pool_of cfg)
        ~cache:(enc_cache cache ops key) cfg.group key
        (List.map (encode cfg) xs)
      |> List.map (decode cfg)

let encrypt_encoded_batch cfg ops key ss =
  match cfg.ecache with
  | None ->
      let res =
        parallel_map ~workers:cfg.workers
          (fun s -> encode cfg (Commutative.encrypt cfg.group key (decode cfg s)))
          ss
      in
      ops.encryptions <- ops.encryptions + List.length ss;
      res
  | Some cache ->
      Commutative.encrypt_batch_cached ?pool:(pool_of cfg)
        ~cache:(enc_cache cache ops key) cfg.group key ss

let decrypt_encoded_batch cfg ops key ss =
  match cfg.ecache with
  | None ->
      let res =
        parallel_map ~workers:cfg.workers
          (fun s -> Commutative.decrypt cfg.group key (decode cfg s))
          ss
      in
      ops.encryptions <- ops.encryptions + List.length ss;
      res
  | Some cache ->
      Commutative.decrypt_batch_cached ?pool:(pool_of cfg)
        ~cache:(dec_cache cache ops key) cfg.group key ss
      |> List.map (decode cfg)

let sort_encoded ss = List.sort String.compare ss

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as tl) -> String.compare a b <= 0 && is_sorted tl

(* ------------------------------------------------------------------ *)
(* Streaming sends: encrypt chunk k+1 while chunk k is on the wire.    *)
(* The frame is byte-identical to the equivalent batch send — same     *)
(* items, same order — so leakage shapes and wire accounting are       *)
(* unchanged; only the production schedule overlaps compute with I/O.  *)
(* ------------------------------------------------------------------ *)

(* Elements per streamed chunk. Big enough that a chunk amortizes the
   pool dispatch, small enough that the peer starts parsing while most
   of the batch is still being encrypted. *)
let stream_chunk = 64

let chunked_producer xs ~of_chunk =
  let rest = ref xs in
  fun () ->
    match !rest with
    | [] -> None
    | l ->
        let rec take k acc l =
          if k = 0 then (List.rev acc, l)
          else
            match l with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (k - 1) (x :: acc) tl
        in
        let chunk, tl = take stream_chunk [] l in
        rest := tl;
        Some (of_chunk chunk)

(* Stream [Elements] under [tag]: each encoded element of [ss] is
   re-encrypted (order-preserving) chunk by chunk as the transport
   drains the previous chunk. *)
let send_encrypted_stream cfg ops key ep ~tag ss =
  Wire.Channel.send_elements_stream ep ~tag
    ~width:(Group.element_bytes cfg.group)
    ~count:(List.length ss)
    (chunked_producer ss ~of_chunk:(encrypt_encoded_batch cfg ops key))

(* Stream already-computed fixed-width elements (I/O chunking only;
   for sends whose shuffle point forces the whole batch to exist
   before the first byte may leave). *)
let send_elements_stream cfg ep ~tag ss =
  Wire.Channel.send_elements_stream ep ~tag
    ~width:(Group.element_bytes cfg.group)
    ~count:(List.length ss)
    (chunked_producer ss ~of_chunk:(fun c -> c))

(* Streamed [Element_pairs] with a per-chunk transform. *)
let send_pairs_stream cfg ep ~tag ~of_chunk ps =
  Wire.Channel.send_pairs_stream ep ~tag
    ~width:(Group.element_bytes cfg.group)
    ~count:(List.length ps)
    (chunked_producer ps ~of_chunk)


let recv_tagged ep tag =
  let m = Wire.Channel.recv ep in
  if m.Wire.Message.tag <> tag then
    failwith
      (Printf.sprintf "protocol error: expected message %S, got %S" tag m.Wire.Message.tag)
  else m.Wire.Message.payload

let elements_of = function
  | Wire.Message.Elements es -> es
  | Wire.Message.Element_pairs _ | Wire.Message.Element_triples _
  | Wire.Message.Ciphertext_pairs _ ->
      failwith "protocol error: expected an element list"

let pairs_of = function
  | Wire.Message.Element_pairs ps | Wire.Message.Ciphertext_pairs ps -> ps
  | Wire.Message.Elements _ | Wire.Message.Element_triples _ ->
      failwith "protocol error: expected a pair list"

let triples_of = function
  | Wire.Message.Element_triples ts -> ts
  | Wire.Message.Elements _ | Wire.Message.Element_pairs _
  | Wire.Message.Ciphertext_pairs _ ->
      failwith "protocol error: expected a triple list"
