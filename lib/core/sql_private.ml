module Sql = Minidb.Sql
module Value = Minidb.Value
module Table = Minidb.Table
module Schema = Minidb.Schema
module Relop = Minidb.Relop
module Buf = Wire.Buf

type outcome = { table : Table.t; total_bytes : int; ops : Protocol.ops }

(* ------------------------------------------------------------------ *)
(* Query analysis                                                      *)
(* ------------------------------------------------------------------ *)

type side = R_side | S_side

type analysis = {
  r_alias : string;
  s_alias : string;
  (* Aligned join columns; several pairs form a composite join key. *)
  r_join_cols : string list;
  s_join_cols : string list;
  r_filters : Sql.predicate list;
  s_filters : Sql.predicate list;
  query : Sql.query;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Which side owns a column reference. *)
let side_of a ~r_schema ~s_schema (q, c) =
  match q with
  | Some q when q = a.r_alias -> R_side
  | Some q when q = a.s_alias -> S_side
  | Some q -> unsupported "unknown table alias %s" q
  | None -> (
      match (Schema.mem r_schema c, Schema.mem s_schema c) with
      | true, false -> R_side
      | false, true -> S_side
      | true, true -> unsupported "ambiguous column %s" c
      | false, false -> unsupported "unknown column %s" c)

let expr_side a ~r_schema ~s_schema = function
  | Sql.Lit _ -> None
  | Sql.Col (q, c) -> Some (side_of a ~r_schema ~s_schema (q, c))

let pred_side a ~r_schema ~s_schema = function
  | Sql.Cmp (_, x, y) -> (
      match (expr_side a ~r_schema ~s_schema x, expr_side a ~r_schema ~s_schema y) with
      | Some R_side, (Some R_side | None) | None, Some R_side -> Some R_side
      | Some S_side, (Some S_side | None) | None, Some S_side -> Some S_side
      | None, None -> None
      | Some R_side, Some S_side | Some S_side, Some R_side ->
          unsupported "cross-table predicate other than the join condition")
  | Sql.And _ -> unsupported "internal: nested And after conjunct flattening"

let rec conjuncts = function
  | Sql.Cmp _ as c -> [ c ]
  | Sql.And (x, y) -> conjuncts x @ conjuncts y

let analyze query ~s_name ~t_s ~r_name ~t_r =
  match query.Sql.from with
  | [ t1; t2 ] ->
      let pick name =
        if t1.Sql.table = name then Some t1
        else if t2.Sql.table = name then Some t2
        else None
      in
      let r_ref =
        match pick r_name with
        | Some t -> t
        | None -> unsupported "query must reference receiver table %s" r_name
      in
      let s_ref =
        match pick s_name with
        | Some t -> t
        | None -> unsupported "query must reference sender table %s" s_name
      in
      if r_ref == s_ref then unsupported "query must reference both tables"
      else begin
        let a0 =
          {
            r_alias = r_ref.Sql.alias;
            s_alias = s_ref.Sql.alias;
            r_join_cols = [];
            s_join_cols = [];
            r_filters = [];
            s_filters = [];
            query;
          }
        in
        let r_schema = Table.schema t_r and s_schema = Table.schema t_s in
        let atoms = match query.Sql.where with None -> [] | Some w -> conjuncts w in
        (* Cross-table equalities form the (possibly composite) join key. *)
        let joins, rest =
          List.partition
            (function
              | Sql.Cmp (Sql.Eq, Sql.Col (qa, ca), Sql.Col (qb, cb)) -> (
                  match
                    ( side_of a0 ~r_schema ~s_schema (qa, ca),
                      side_of a0 ~r_schema ~s_schema (qb, cb) )
                  with
                  | R_side, S_side | S_side, R_side -> true
                  | R_side, R_side | S_side, S_side -> false)
              | Sql.Cmp _ -> false
              | Sql.And _ -> unsupported "internal: nested And after conjunct flattening")
            atoms
        in
        let pairs =
          List.map
            (function
              | Sql.Cmp (Sql.Eq, Sql.Col (qa, ca), Sql.Col (_, cb)) -> (
                  match side_of a0 ~r_schema ~s_schema (qa, ca) with
                  | R_side -> (ca, cb)
                  | S_side -> (cb, ca))
              | Sql.Cmp _ | Sql.And _ -> unsupported "internal: join atom is not a cross-side column equality")
            joins
        in
        if pairs = [] then unsupported "no join condition between %s and %s" r_name s_name
        else begin
          let r_filters, s_filters =
            List.fold_left
              (fun (rf, sf) atom ->
                match pred_side a0 ~r_schema ~s_schema atom with
                | Some R_side -> (atom :: rf, sf)
                | Some S_side -> (rf, atom :: sf)
                | None -> unsupported "constant-only predicate unsupported")
              ([], []) rest
          in
          {
            a0 with
            r_join_cols = List.map fst pairs;
            s_join_cols = List.map snd pairs;
            r_filters;
            s_filters;
          }
        end
      end
  | [ _ ] | [] -> unsupported "query must join the two private tables"
  | _ -> unsupported "more than two tables"

(* Evaluate a single-table predicate (used for the local filters). *)
let eval_local t pred row =
  let rec expr = function
    | Sql.Lit v -> v
    | Sql.Col (_, c) -> Table.get t row c
  and go = function
    | Sql.And (a, b) -> go a && go b
    | Sql.Cmp (op, x, y) ->
        let a = expr x and b = expr y in
        if a = Value.Null || b = Value.Null then false
        else begin
          let c = Value.compare a b in
          match op with
          | Sql.Eq -> c = 0
          | Sql.Ne -> c <> 0
          | Sql.Lt -> c < 0
          | Sql.Le -> c <= 0
          | Sql.Gt -> c > 0
          | Sql.Ge -> c >= 0
        end
  in
  go pred

let apply_filters t filters =
  List.fold_left (fun t p -> Relop.select (fun t row -> eval_local t p row) t) t filters

(* ------------------------------------------------------------------ *)
(* Composite join keys                                                 *)
(* ------------------------------------------------------------------ *)

(* Single columns use Value.key directly (typed and invertible); tuples
   are Buf-framed lists of Value.keys. Rows with NULL in any join
   column never join (SQL semantics). *)
let key_of_row t cols row =
  let vs = List.map (fun c -> Table.get t row c) cols in
  if List.exists (fun v -> v = Value.Null) vs then None
  else
    match vs with
    | [ v ] -> Some (Value.key v)
    | vs ->
        let w = Buf.writer () in
        List.iter (fun v -> Buf.write_bytes w (Value.key v)) vs;
        Some (Buf.contents w)

let decode_key cols s =
  match cols with
  | [ _ ] -> [ Value.of_key s ]
  | cols ->
      let r = Buf.reader s in
      let vs = List.map (fun _ -> Value.of_key (Buf.read_bytes r)) cols in
      Buf.expect_end r;
      vs

let values_of t cols =
  Table.rows t |> List.filter_map (key_of_row t cols) |> List.sort_uniq String.compare

let multiset_of t cols = Table.rows t |> List.filter_map (key_of_row t cols)

(* ------------------------------------------------------------------ *)
(* Shape recognition                                                   *)
(* ------------------------------------------------------------------ *)

type join_field = Key of int (* index into the join tuple *) | Pay of string (* S column *)

type shape =
  | Sh_intersect of { out_names : string list; idxs : int list }
  | Sh_join_size of string
  | Sh_sum of { s_col : string; out : string }
  | Sh_join of { fields : join_field list; out_names : string list }
  | Sh_group_by of { r_class : string; s_class : string; names : string * string * string }

let item_out_name default = function
  | Sql.Column (_, Some a) | Sql.Count_star (Some a) | Sql.Sum (_, Some a) -> a
  | Sql.Column (Sql.Col (_, c), None) -> c
  | Sql.Column (Sql.Lit _, None) | Sql.Star -> default
  | Sql.Count_star None -> "count"
  | Sql.Sum (Sql.Col (_, c), None) -> "sum_" ^ c
  | Sql.Sum (Sql.Lit _, None) -> default

let index_in l x =
  let rec go i = function
    | [] -> None
    | h :: _ when h = x -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 l

let recognize a ~r_schema ~s_schema =
  let q = a.query in
  let side e =
    match e with
    | Sql.Col (qual, c) -> (side_of a ~r_schema ~s_schema (qual, c), c)
    | Sql.Lit _ -> unsupported "literal select items unsupported"
  in
  (* Which join-tuple position (if any) a (side, col) refers to. *)
  let join_index = function
    | R_side, c -> index_in a.r_join_cols c
    | S_side, c -> index_in a.s_join_cols c
  in
  match (q.Sql.select, q.Sql.group_by) with
  | [ Sql.Count_star _ ], [] -> Sh_join_size (item_out_name "count" (List.hd q.Sql.select))
  | [ Sql.Sum (e, _) ], [] -> (
      match side e with
      | S_side, c -> Sh_sum { s_col = c; out = item_out_name "sum" (List.hd q.Sql.select) }
      | R_side, _ -> unsupported "SUM must range over the sender's column")
  | items, [] -> (
      (* Columns: join-tuple positions and/or sender payload columns. *)
      let fields =
        List.map
          (fun itm ->
            match itm with
            | Sql.Column (e, _) -> (
                let s = side e in
                match join_index s with
                | Some i -> (Key i, item_out_name (snd s) itm)
                | None -> (
                    match s with
                    | S_side, c -> (Pay c, item_out_name c itm)
                    | R_side, c ->
                        unsupported "receiver column %s not available in an equijoin" c))
            | Sql.Star -> unsupported "* unsupported across private tables"
            | Sql.Count_star _ | Sql.Sum _ ->
                unsupported "aggregates cannot mix with columns without GROUP BY")
          items
      in
      let out_names = List.map snd fields in
      let fields = List.map fst fields in
      let n_join = List.length a.r_join_cols in
      let all_key = List.for_all (function Key _ -> true | Pay _ -> false) fields in
      if all_key then begin
        (* Pure intersection: the select must cover the whole join tuple
           (else values would be revealed at finer granularity than the
           protocol computes). *)
        let idxs = List.map (function Key i -> i | Pay _ -> unsupported "internal: payload field in an all-key select") fields in
        if List.equal Int.equal (List.sort_uniq Int.compare idxs) (List.init n_join (fun i -> i))
        then
          Sh_intersect { out_names; idxs }
        else unsupported "intersection must select the full join key"
      end
      else Sh_join { fields; out_names })
  | items, [ g1; g2 ] -> (
      if List.length a.r_join_cols > 1 then
        unsupported "GROUP BY with a composite join key is not supported"
      else begin
        let g_side e = side e in
        let s1, c1 = g_side g1 and s2, c2 = g_side g2 in
        let r_class, s_class =
          match (s1, s2) with
          | R_side, S_side -> (c1, c2)
          | S_side, R_side -> (c2, c1)
          | _ -> unsupported "GROUP BY must name one column from each table"
        in
        let names =
          match items with
          | [ Sql.Column (e1, _); Sql.Column (e2, _); Sql.Count_star _ ] -> (
              match (g_side e1, g_side e2) with
              | (R_side, rc), (S_side, sc) when rc = r_class && sc = s_class ->
                  ( item_out_name rc (List.nth items 0),
                    item_out_name sc (List.nth items 1),
                    item_out_name "count" (List.nth items 2) )
              | (S_side, sc), (R_side, rc) when rc = r_class && sc = s_class ->
                  ( item_out_name rc (List.nth items 1),
                    item_out_name sc (List.nth items 0),
                    item_out_name "count" (List.nth items 2) )
              | _ -> unsupported "SELECT must list the GROUP BY columns and COUNT( * )")
          | _ -> unsupported "SELECT must list the GROUP BY columns and COUNT( * )"
        in
        match names with
        | rn, sn, cn -> Sh_group_by { r_class; s_class; names = (rn, sn, cn) }
      end)
  | _, _ -> unsupported "unsupported GROUP BY shape"

let shape_name = function
  | Sh_intersect _ -> "intersection (§3.3)"
  | Sh_join_size _ -> "equijoin size (§5.2)"
  | Sh_sum _ -> "private equijoin SUM (§7 extension)"
  | Sh_join _ -> "equijoin (§4.3)"
  | Sh_group_by _ -> "private GROUP BY (Figure 2 generalized)"

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let execute cfg ~seed a ~t_s ~t_r shape =
  let t_r = apply_filters t_r a.r_filters in
  let t_s = apply_filters t_s a.s_filters in
  let r_col_ty c = Schema.column_type (Table.schema t_r) c in
  let s_col_ty c = Schema.column_type (Table.schema t_s) c in
  match shape with
  | Sh_intersect { out_names; idxs } ->
      let o =
        Intersection.run cfg ~seed
          ~sender_values:(values_of t_s a.s_join_cols)
          ~receiver_values:(values_of t_r a.r_join_cols)
          ()
      in
      let r = o.Wire.Runner.receiver_result in
      let cols =
        List.map2
          (fun name i -> Schema.col ~nullable:true name (r_col_ty (List.nth a.r_join_cols i)))
          out_names idxs
      in
      let rows =
        List.map
          (fun key ->
            let tuple = decode_key a.r_join_cols key in
            Array.of_list (List.map (fun i -> List.nth tuple i) idxs))
          r.Intersection.intersection
      in
      {
        table = Table.create (Schema.make cols) rows;
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Intersection.ops o.Wire.Runner.sender_result.Intersection.ops;
      }
  | Sh_join_size out ->
      let o =
        Equijoin_size.run cfg ~seed
          ~sender_values:(multiset_of t_s a.s_join_cols)
          ~receiver_values:(multiset_of t_r a.r_join_cols)
          ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        table =
          Table.create
            (Schema.make [ Schema.col out Value.TInt ])
            [ [| Value.Int r.Equijoin_size.join_size |] ];
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Equijoin_size.ops o.Wire.Runner.sender_result.Equijoin_size.ops;
      }
  | Sh_sum { s_col; out } ->
      (match s_col_ty s_col with
      | Value.TInt -> ()
      | Value.TBool | Value.TFloat | Value.TText ->
          unsupported "private SUM supports integer columns");
      let records =
        List.filter_map
          (fun row ->
            match (key_of_row t_s a.s_join_cols row, Table.get t_s row s_col) with
            | None, _ | _, Value.Null -> None
            | Some k, Value.Int x -> Some (k, x)
            | Some _, (Value.Bool _ | Value.Float _ | Value.Text _) -> None)
          (Table.rows t_s)
      in
      let o =
        Aggregate.run cfg ~seed ~sender_records:records
          ~receiver_values:(values_of t_r a.r_join_cols)
          ()
      in
      let r = o.Wire.Runner.receiver_result in
      {
        table =
          Table.create
            (Schema.make [ Schema.col ~nullable:true out Value.TInt ])
            [ [| Value.Int r.Aggregate.sum |] ];
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Aggregate.ops o.Wire.Runner.sender_result.Aggregate.ops;
      }
  | Sh_join { fields; out_names } ->
      let payload_cols =
        List.filter_map (function Pay c -> Some c | Key _ -> None) fields
      in
      let encode_payload row =
        let w = Buf.writer () in
        List.iter
          (fun c -> Buf.write_bytes w (Value.key (Table.get t_s row c)))
          payload_cols;
        Buf.contents w
      in
      let decode_payload s =
        let rd = Buf.reader s in
        let vs = List.map (fun _ -> Value.of_key (Buf.read_bytes rd)) payload_cols in
        Buf.expect_end rd;
        vs
      in
      let records =
        List.filter_map
          (fun row ->
            Option.map (fun k -> (k, encode_payload row)) (key_of_row t_s a.s_join_cols row))
          (Table.rows t_s)
      in
      let o =
        Equijoin.run cfg ~seed ~sender_records:records
          ~receiver_values:(values_of t_r a.r_join_cols)
          ()
      in
      let r = o.Wire.Runner.receiver_result in
      let cols =
        List.map2
          (fun f name ->
            match f with
            | Key i -> Schema.col ~nullable:true name (r_col_ty (List.nth a.r_join_cols i))
            | Pay c -> Schema.col ~nullable:true name (s_col_ty c))
          fields out_names
      in
      let rows =
        List.concat_map
          (fun (v, recs) ->
            let tuple = decode_key a.r_join_cols v in
            List.map
              (fun rec_payload ->
                let pay = decode_payload rec_payload in
                let pay_at =
                  let arr = Array.of_list pay in
                  let i = ref (-1) in
                  fun () ->
                    incr i;
                    arr.(!i)
                in
                Array.of_list
                  (List.map
                     (function Key i -> List.nth tuple i | Pay _ -> pay_at ())
                     fields))
              recs)
          r.Equijoin.matches
      in
      {
        table = Table.create (Schema.make cols) rows;
        total_bytes = o.Wire.Runner.total_bytes;
        ops = Protocol.total r.Equijoin.ops o.Wire.Runner.sender_result.Equijoin.ops;
      }
  | Sh_group_by { r_class; s_class; names = rn, sn, cn } ->
      let r_key = List.hd a.r_join_cols and s_key = List.hd a.s_join_cols in
      let g = Group_by.run cfg ~seed ~t_r ~r_key ~r_class ~t_s ~s_key ~s_class () in
      {
        table =
          Table.create
            (Schema.make
               [
                 Schema.col ~nullable:true rn (r_col_ty r_class);
                 Schema.col ~nullable:true sn (s_col_ty s_class);
                 Schema.col cn Value.TInt;
               ])
            (* SQL GROUP BY yields only non-empty groups; the protocol
               computes every class pair, so drop the zero cells. *)
            (List.filter_map
               (fun ((rv, sv), n) ->
                 if n = 0 then None else Some [| rv; sv; Value.Int n |])
               g.Group_by.cells);
        total_bytes = g.Group_by.total_bytes;
        ops = g.Group_by.ops;
      }

let run cfg ?(seed = "sql-private") ~sql ~sender:(s_name, t_s) ~receiver:(r_name, t_r) () =
  match
    let query = Sql.parse sql in
    let a = analyze query ~s_name ~t_s ~r_name ~t_r in
    let shape = recognize a ~r_schema:(Table.schema t_r) ~s_schema:(Table.schema t_s) in
    execute cfg ~seed a ~t_s ~t_r shape
  with
  | outcome -> Ok outcome
  | exception Sql.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Unsupported msg -> Error ("unsupported query: " ^ msg)
  | exception Invalid_argument msg -> Error msg

let explain ?sender ?receiver ~sql ~sender_name ~receiver_name () =
  let empty = Table.empty (Schema.make []) in
  let t_s = Option.value ~default:empty sender in
  let t_r = Option.value ~default:empty receiver in
  match
    let query = Sql.parse sql in
    let a = analyze query ~s_name:sender_name ~t_s ~r_name:receiver_name ~t_r in
    recognize a ~r_schema:(Table.schema t_r) ~s_schema:(Table.schema t_s)
  with
  | shape -> Ok (shape_name shape)
  | exception Sql.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Unsupported msg -> Error ("unsupported query: " ^ msg)
  | exception Invalid_argument msg -> Error msg
