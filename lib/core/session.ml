(* The operation vocabulary is shared with the sharded driver — one
   [op]/[result] type, two execution engines. *)
type op = Shard.op =
  | Intersect of { s_values : string list; r_values : string list }
  | Intersect_size of { s_values : string list; r_values : string list }
  | Equijoin of { s_records : (string * string) list; r_values : string list }
  | Equijoin_size of { s_values : string list; r_values : string list }

type result = Shard.result =
  | Values of string list
  | Size of int
  | Matches of (string * string list) list

type report = { results : result list; total_bytes : int; ops : Protocol.ops }

let op_name = Shard.op_name

(* Per-operation rollups under the session namespace, plus a span per
   operation on each party's thread. *)
let record_op op =
  Obs.Metrics.incr (Obs.Metrics.counter "session.operations");
  Obs.Metrics.incr (Obs.Metrics.counter ("session." ^ op_name op ^ ".runs"))

let m_retries = Obs.Metrics.counter "session.retries"
let m_reconnects = Obs.Metrics.counter "session.reconnects"
let m_replays = Obs.Metrics.counter "session.replays"

(* One operation, sender side; returns the op tallies. *)
let sender_op cfg ~rng ep op =
  Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
  match op with
  | Intersect { s_values; _ } ->
      (Intersection.sender cfg ~rng ~values:s_values ep).Intersection.ops
  | Intersect_size { s_values; _ } ->
      (Intersection_size.sender cfg ~rng ~values:s_values ep).Intersection_size.ops
  | Equijoin { s_records; _ } ->
      (Equijoin.sender cfg ~rng ~records:s_records ep).Equijoin.ops
  | Equijoin_size { s_values; _ } ->
      (Equijoin_size.sender cfg ~rng ~values:s_values ep).Equijoin_size.ops

(* One operation, receiver side; returns the tallies and the output. *)
let receiver_op cfg ~rng ep op =
  record_op op;
  Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
  match op with
  | Intersect { r_values; _ } ->
      let r = Intersection.receiver cfg ~rng ~values:r_values ep in
      (r.Intersection.ops, Values r.Intersection.intersection)
  | Intersect_size { r_values; _ } ->
      let r = Intersection_size.receiver cfg ~rng ~values:r_values ep in
      (r.Intersection_size.ops, Size r.Intersection_size.size)
  | Equijoin { r_values; _ } ->
      let r = Equijoin.receiver cfg ~rng ~values:r_values ep in
      (r.Equijoin.ops, Matches r.Equijoin.matches)
  | Equijoin_size { r_values; _ } ->
      let r = Equijoin_size.receiver cfg ~rng ~values:r_values ep in
      (r.Equijoin_size.ops, Size r.Equijoin_size.join_size)

(* Sharded counterparts: same span/counter behavior, but each op runs
   through the sharded driver with per-bucket keys forked from the
   party's [drbg] and per-op state under the plan's [state_dir]. *)
let sender_op_sharded cfg shard ~drbg ~op_index ep op =
  Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
  fst (Shard.sender_op cfg shard ~drbg ~op_index ep op)

let receiver_op_sharded cfg shard ~drbg ~op_index ep op =
  record_op op;
  Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
  let ops, result, _stats = Shard.receiver_op cfg shard ~drbg ~op_index ep op in
  (ops, result)

let run cfg ?(seed = "session") ?shard operations () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_drbg = Crypto.Drbg.split drbg ~label:"sender" in
  let r_drbg = Crypto.Drbg.split drbg ~label:"receiver" in
  let outcome =
    match shard with
    | None ->
        let s_rng = Crypto.Drbg.to_rng s_drbg in
        let r_rng = Crypto.Drbg.to_rng r_drbg in
        Wire.Runner.run
          ~sender:(fun ep ->
            Handshake.respond cfg ep;
            List.fold_left
              (fun acc op -> Protocol.total acc (sender_op cfg ~rng:s_rng ep op))
              (Protocol.new_ops ()) operations)
          ~receiver:(fun ep ->
            Handshake.initiate cfg ep;
            List.fold_left_map
              (fun acc op ->
                let o, res = receiver_op cfg ~rng:r_rng ep op in
                (Protocol.total acc o, res))
              (Protocol.new_ops ()) operations)
    | Some plan ->
        Wire.Runner.run
          ~sender:(fun ep ->
            Handshake.respond cfg ep;
            List.fold_left
              (fun (acc, i) op ->
                ( Protocol.total acc
                    (sender_op_sharded cfg plan ~drbg:s_drbg ~op_index:i ep op),
                  i + 1 ))
              (Protocol.new_ops (), 0) operations
            |> fst)
          ~receiver:(fun ep ->
            Handshake.initiate cfg ep;
            let (acc, _), results =
              List.fold_left_map
                (fun (acc, i) op ->
                  let o, res =
                    receiver_op_sharded cfg plan ~drbg:r_drbg ~op_index:i ep op
                  in
                  ((Protocol.total acc o, i + 1), res))
                (Protocol.new_ops (), 0) operations
            in
            (acc, results))
  in
  let s_ops = outcome.Wire.Runner.sender_result in
  let r_ops, results = outcome.Wire.Runner.receiver_result in
  let ops = Protocol.total s_ops r_ops in
  Obs.Metrics.incr ~by:ops.Protocol.encryptions (Obs.Metrics.counter "session.encryptions");
  Obs.Metrics.incr ~by:outcome.Wire.Runner.total_bytes
    (Obs.Metrics.counter "session.wire_bytes");
  { results; total_bytes = outcome.Wire.Runner.total_bytes; ops }

(* ------------------------------------------------------------------ *)
(* Incremental sessions: persistent cache + snapshot diffing           *)
(* ------------------------------------------------------------------ *)

type incremental_stats = {
  cold : bool;
  added : int;
  removed : int;
  unchanged : int;
  hits : int;
  misses : int;
  run_id : int;
}

type incremental_report = { report : report; incremental : incremental_stats }

let snapshot_file dir = Filename.concat dir "session.snap"

(* The per-op element sets the incremental layer diffs: exactly what
   the protocols hash and encrypt (deduplicated join-attribute values;
   for the equijoin, the sender's distinct keys). *)
let op_elements = function
  | Intersect { s_values; r_values }
  | Intersect_size { s_values; r_values }
  | Equijoin_size { s_values; r_values } ->
      (Protocol.dedup s_values, Protocol.dedup r_values)
  | Equijoin { s_records; r_values } ->
      (Protocol.dedup (List.map fst s_records), Protocol.dedup r_values)

(* Merge-walk two sorted unique lists, tallying (added, removed,
   unchanged) relative to [prev]. *)
let diff_counts prev cur =
  let rec go added removed unchanged prev cur =
    match (prev, cur) with
    | [], [] -> (added, removed, unchanged)
    | [], _ :: cs -> go (added + 1) removed unchanged [] cs
    | _ :: ps, [] -> go added (removed + 1) unchanged ps []
    | p :: ps, c :: cs ->
        let cmp = String.compare p c in
        if cmp = 0 then go added removed (unchanged + 1) ps cs
        else if cmp < 0 then go added (removed + 1) unchanged ps cur
        else go (added + 1) removed unchanged prev cs
  in
  go 0 0 0 prev cur

(* A previous snapshot is usable only for the same operation sequence
   under the same key material; anything else is a cold run (the cache
   still deduplicates whatever happens to match). *)
let snapshot_compatible ~key_fp prev cur_ops =
  List.length prev.Wire.Snapshot.entries = List.length cur_ops
  && List.for_all2
       (fun e op ->
         String.equal e.Wire.Snapshot.op (op_name op)
         && String.equal e.Wire.Snapshot.key_fp key_fp)
       prev.Wire.Snapshot.entries cur_ops

let run_incremental cfg ?(seed = "session") ?(keys = `Cached) ?max_entries ?shard
    ~cache_dir operations () =
  (* A sharded incremental session roots its per-bucket state (spills,
     checkpoints, per-bucket caches) next to the session cache unless
     the plan already chose a home. *)
  let shard =
    Option.map
      (fun p -> Shard.with_default_state_dir p (Filename.concat cache_dir "shard"))
      shard
  in
  let cache = Ecache.open_ ?max_entries ~dir:cache_dir () in
  Fun.protect ~finally:(fun () -> Ecache.close cache) @@ fun () ->
  let path = snapshot_file cache_dir in
  let prev = Wire.Snapshot.load ~path in
  let run_id = match prev with None -> 1 | Some p -> p.Wire.Snapshot.run_id + 1 in
  (* Key policy: the whole session's key material derives from the Drbg
     seed, and key derivation consumes the rng independently of the data
     — so replaying the same seed reproduces the same keys (`Cached,
     cache hits possible but runs linkable through reused keys), while
     folding the run counter into the seed yields fresh keys whose
     fingerprints miss every cached ciphertext by construction
     (`Fresh). *)
  let effective_seed =
    match keys with `Cached -> seed | `Fresh -> Printf.sprintf "%s/run-%d" seed run_id
  in
  let key_fp =
    String.sub
      (Crypto.Sha256.hexdigest ("psi:session-keys:v1\x00" ^ effective_seed))
      0 32
  in
  let elements = List.map op_elements operations in
  let cold =
    match prev with
    | Some p when snapshot_compatible ~key_fp p operations -> false
    | Some _ | None -> true
  in
  let added, removed, unchanged =
    if cold then
      ( List.fold_left (fun n (s, r) -> n + List.length s + List.length r) 0 elements,
        0,
        0 )
    else
      let p = Option.get prev in
      List.fold_left2
        (fun (a, d, u) e (s, r) ->
          let a1, d1, u1 = diff_counts e.Wire.Snapshot.s_elements s in
          let a2, d2, u2 = diff_counts e.Wire.Snapshot.r_elements r in
          (a + a1 + a2, d + d1 + d2, u + u1 + u2))
        (0, 0, 0) p.Wire.Snapshot.entries elements
  in
  let before = Ecache.stats cache in
  let report =
    run { cfg with Protocol.ecache = Some cache } ~seed:effective_seed ?shard operations ()
  in
  let after = Ecache.stats cache in
  (* Leakage ledger: cumulative exposure per key fingerprint. Each run
     reveals its newly-processed elements ([added] — everything on a
     cold run) under [key_fp]; with `Cached keys the same fingerprint
     accrues across runs (runs stay linkable through reused keys),
     while `Fresh lands every run on a new fingerprint. psi_trace
     renders these counters as the per-key ledger. *)
  let fp12 = String.sub key_fp 0 12 in
  Obs.Metrics.incr (Obs.Metrics.counter ("leakage.key." ^ fp12 ^ ".runs"));
  Obs.Metrics.incr ~by:added
    (Obs.Metrics.counter ("leakage.key." ^ fp12 ^ ".elements"));
  Obs.Metrics.incr
    (Obs.Metrics.counter
       (match keys with
       | `Cached -> "leakage.cached_key_runs"
       | `Fresh -> "leakage.fresh_key_runs"));
  Wire.Snapshot.save ~path
    {
      Wire.Snapshot.run_id;
      entries =
        List.map2
          (fun op (s, r) ->
            { Wire.Snapshot.op = op_name op; key_fp; s_elements = s; r_elements = r })
          operations elements;
    };
  {
    report;
    incremental =
      {
        cold;
        added;
        removed;
        unchanged;
        hits = after.Ecache.hits - before.Ecache.hits;
        misses = after.Ecache.misses - before.Ecache.misses;
        run_id;
      };
  }

(* ------------------------------------------------------------------ *)
(* Resilient sessions: checkpoint, reconnect, resume                   *)
(* ------------------------------------------------------------------ *)

type resilience = {
  max_attempts : int;
  backoff_s : float;
  max_backoff_s : float;
  recv_timeout_s : float option;
}

let default_resilience =
  { max_attempts = 5; backoff_s = 0.1; max_backoff_s = 2.0; recv_timeout_s = Some 5.0 }

type resilient_report = {
  report : report;
  attempts : int;
  replays : int;
  receiver_views : Wire.Message.t list list;
}

let resume_tag = "session/resume"

let send_resume ep n =
  Wire.Channel.send ep
    (Wire.Message.make ~tag:resume_tag (Wire.Message.Elements [ string_of_int n ]))

let recv_resume ep =
  match Wire.Channel.recv ep with
  | { Wire.Message.tag; payload = Wire.Message.Elements [ s ] }
    when String.equal tag resume_tag -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> failwith "session resume failed: malformed checkpoint index")
  | _ -> failwith "session resume failed: unexpected message"

(* Accumulate [src] into the mutable tally [dst]. Field updates are
   single read-add-store sequences, safe under systhreads. *)
let add_ops dst (src : Protocol.ops) =
  dst.Protocol.hashes <- dst.Protocol.hashes + src.Protocol.hashes;
  dst.Protocol.encryptions <- dst.Protocol.encryptions + src.Protocol.encryptions;
  dst.Protocol.cipher_ops <- dst.Protocol.cipher_ops + src.Protocol.cipher_ops

(* Errors a reconnect can plausibly cure: a peer (or fault proxy)
   closing, a deadline expiring, a frame mangled in flight, a protocol
   step detecting divergence. Everything else is a programming error
   and propagates immediately. *)
let transient = function
  | Wire.Errors.Protocol_error _ | Wire.Errors.Timeout _ | Wire.Buf.Parse_error _
  | Failure _ ->
      true
  | _ -> false

let run_resilient ?(resilience = default_resilience) cfg ?(seed = "session") ?shard
    ~connect operations =
  let ops_arr = Array.of_list operations in
  let n_ops = Array.length ops_arr in
  let drbg = Crypto.Drbg.create ~seed in
  (* Checkpoints: how many operations each party has fully completed.
     In a two-process deployment each party persists its own; here they
     live on either side of the thread boundary. *)
  let s_done = ref 0 and r_done = ref 0 in
  let results = Array.make (max n_ops 1) None in
  let replays = ref 0 in
  let total_bytes = ref 0 in
  let acc_ops = Protocol.new_ops () in
  let views = ref [] in
  let attempts = ref 0 in
  let replay i done_count =
    if i < done_count then begin
      incr replays;
      Obs.Metrics.incr m_replays;
      if Obs.Ring.active () then
        Obs.Ring.note (Printf.sprintf "session: replaying op %d" i)
    end
  in
  let rec attempt () =
    incr attempts;
    let a = !attempts in
    let s_ep, r_ep = connect ~attempt:a in
    Wire.Channel.set_timeout s_ep resilience.recv_timeout_s;
    Wire.Channel.set_timeout r_ep resilience.recv_timeout_s;
    (* Fresh per-attempt streams: a replayed operation must not reuse
       the encryption keys the interrupted attempt already derived. *)
    let party_drbg label = Crypto.Drbg.split drbg ~label:(Printf.sprintf "%s#%d" label a) in
    let s_drbg = party_drbg "sender" and r_drbg = party_drbg "receiver" in
    let s_rng = Crypto.Drbg.to_rng s_drbg and r_rng = Crypto.Drbg.to_rng r_drbg in
    (* With a shard plan, each operation runs through the sharded driver:
       an interrupted op resumes at its first unfinished bucket (the
       plan's state_dir holds the per-bucket checkpoints), and replayed
       buckets draw fresh per-attempt keys from the forked drbg. *)
    let run_sender_op ep i op =
      match shard with
      | None -> sender_op cfg ~rng:s_rng ep op
      | Some plan -> sender_op_sharded cfg plan ~drbg:s_drbg ~op_index:i ep op
    in
    let run_receiver_op ep i op =
      match shard with
      | None -> receiver_op cfg ~rng:r_rng ep op
      | Some plan -> receiver_op_sharded cfg plan ~drbg:r_drbg ~op_index:i ep op
    in
    let finish () =
      total_bytes :=
        !total_bytes
        + (Wire.Channel.stats s_ep).Wire.Channel.bytes_sent
        + (Wire.Channel.stats r_ep).Wire.Channel.bytes_sent;
      views := Wire.Channel.received r_ep :: !views;
      Wire.Channel.close s_ep;
      Wire.Channel.close r_ep
    in
    match
      Wire.Runner.run_on (s_ep, r_ep)
        ~sender:(fun ep ->
          Handshake.respond cfg ep;
          let theirs = recv_resume ep in
          send_resume ep !s_done;
          for i = min !s_done theirs to n_ops - 1 do
            replay i !s_done;
            add_ops acc_ops (run_sender_op ep i ops_arr.(i));
            s_done := max !s_done (i + 1)
          done)
        ~receiver:(fun ep ->
          Handshake.initiate cfg ep;
          send_resume ep !r_done;
          let theirs = recv_resume ep in
          for i = min !r_done theirs to n_ops - 1 do
            let is_replay = i < !r_done in
            replay i !r_done;
            let o, res = run_receiver_op ep i ops_arr.(i) in
            add_ops acc_ops o;
            (* Idempotent replay: the first completed result wins; a
               replayed operation only re-derives it for the peer. *)
            if not is_replay then results.(i) <- Some res;
            r_done := max !r_done (i + 1)
          done)
    with
    | _outcome -> finish ()
    | exception e when transient e ->
        finish ();
        Obs.Metrics.incr m_retries;
        (* Flight-recorder trail: every retry/reconnect leaves a note;
           exhausting the budget trips the ring so the sink preserves
           the whole window around the failure. *)
        if Obs.Ring.active () then
          Obs.Ring.note
            (Printf.sprintf "session: attempt %d/%d failed: %s" a
               resilience.max_attempts (Printexc.to_string e));
        if !attempts >= resilience.max_attempts then begin
          Obs.Ring.trip "session: retry budget exhausted";
          raise e
        end;
        let backoff =
          Float.min resilience.max_backoff_s
            (resilience.backoff_s *. (2. ** float_of_int (a - 1)))
        in
        if backoff > 0. then Thread.delay backoff;
        Obs.Metrics.incr m_reconnects;
        if Obs.Ring.active () then
          Obs.Ring.note (Printf.sprintf "session: reconnecting (attempt %d)" (a + 1));
        attempt ()
  in
  attempt ();
  let results =
    List.init n_ops (fun i ->
        match results.(i) with
        | Some r -> r
        | None -> failwith "session: operation completed without a result")
  in
  Obs.Metrics.incr ~by:acc_ops.Protocol.encryptions
    (Obs.Metrics.counter "session.encryptions");
  Obs.Metrics.incr ~by:!total_bytes (Obs.Metrics.counter "session.wire_bytes");
  {
    report = { results; total_bytes = !total_bytes; ops = acc_ops };
    attempts = !attempts;
    replays = !replays;
    receiver_views = List.rev !views;
  }
