type op =
  | Intersect of { s_values : string list; r_values : string list }
  | Intersect_size of { s_values : string list; r_values : string list }
  | Equijoin of { s_records : (string * string) list; r_values : string list }
  | Equijoin_size of { s_values : string list; r_values : string list }

type result =
  | Values of string list
  | Size of int
  | Matches of (string * string list) list

type report = { results : result list; total_bytes : int; ops : Protocol.ops }

let op_name = function
  | Intersect _ -> "intersect"
  | Intersect_size _ -> "intersect_size"
  | Equijoin _ -> "equijoin"
  | Equijoin_size _ -> "equijoin_size"

(* Per-operation rollups under the session namespace, plus a span per
   operation on each party's thread. *)
let record_op op =
  Obs.Metrics.incr (Obs.Metrics.counter "session.operations");
  Obs.Metrics.incr (Obs.Metrics.counter ("session." ^ op_name op ^ ".runs"))

let run cfg ?(seed = "session") operations () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  let outcome =
    Wire.Runner.run
      ~sender:(fun ep ->
        Handshake.respond cfg ep;
        List.fold_left
          (fun acc op ->
            Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
            let o =
              match op with
              | Intersect { s_values; _ } ->
                  (Intersection.sender cfg ~rng:s_rng ~values:s_values ep).Intersection.ops
              | Intersect_size { s_values; _ } ->
                  (Intersection_size.sender cfg ~rng:s_rng ~values:s_values ep)
                    .Intersection_size.ops
              | Equijoin { s_records; _ } ->
                  (Equijoin.sender cfg ~rng:s_rng ~records:s_records ep).Equijoin.ops
              | Equijoin_size { s_values; _ } ->
                  (Equijoin_size.sender cfg ~rng:s_rng ~values:s_values ep).Equijoin_size.ops
            in
            Protocol.total acc o)
          (Protocol.new_ops ()) operations)
      ~receiver:(fun ep ->
        Handshake.initiate cfg ep;
        List.fold_left_map
          (fun acc op ->
            record_op op;
            Obs.Span.with_ ("session/" ^ op_name op) @@ fun () ->
            match op with
            | Intersect { r_values; _ } ->
                let r = Intersection.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Intersection.ops, Values r.Intersection.intersection)
            | Intersect_size { r_values; _ } ->
                let r = Intersection_size.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Intersection_size.ops, Size r.Intersection_size.size)
            | Equijoin { r_values; _ } ->
                let r = Equijoin.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Equijoin.ops, Matches r.Equijoin.matches)
            | Equijoin_size { r_values; _ } ->
                let r = Equijoin_size.receiver cfg ~rng:r_rng ~values:r_values ep in
                (Protocol.total acc r.Equijoin_size.ops, Size r.Equijoin_size.join_size))
          (Protocol.new_ops ()) operations)
  in
  let s_ops = outcome.Wire.Runner.sender_result in
  let r_ops, results = outcome.Wire.Runner.receiver_result in
  let ops = Protocol.total s_ops r_ops in
  Obs.Metrics.incr ~by:ops.Protocol.encryptions (Obs.Metrics.counter "session.encryptions");
  Obs.Metrics.incr ~by:outcome.Wire.Runner.total_bytes
    (Obs.Metrics.counter "session.wire_bytes");
  { results; total_bytes = outcome.Wire.Runner.total_bytes; ops }
