module Message = Wire.Message
module Channel = Wire.Channel
module Commutative = Crypto.Commutative
module Paillier = Crypto.Paillier
module Nat = Bignum.Nat

type sender_report = { v_r_count : int; ops : Protocol.ops }

type receiver_report = {
  intersection : string list;
  sum : int;
  v_s_count : int;
  ops : Protocol.ops;
}

let tag_y_r = "aggregate/Y_R"
let tag_pub = "aggregate/pub"
let tag_y_r_enc = "aggregate/Y_R_enc"
let tag_pairs = "aggregate/pairs"
let tag_blinded = "aggregate/blinded"
let tag_sum = "aggregate/sum"

(* Group records and total the per-value contributions. *)
let totals records =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (v, x) ->
      if x < 0 then invalid_arg "Aggregate: negative contribution"
      else Hashtbl.replace tbl v (x + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    records;
  Hashtbl.fold (fun v x acc -> (v, x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sender cfg ~rng ?(key_bits = 512) ~records ep =
  let ops = Protocol.new_ops () in
  let grouped = totals records in
  let e_s = Commutative.gen_key cfg.Protocol.group ~rng in
  let pub, sec = Paillier.keygen ~rng ~bits:key_bits in
  (* Step 1: receive Y_R; publish the Paillier key. *)
  let y_r = Protocol.elements_of (Protocol.recv_tagged ep tag_y_r) in
  Channel.send ep (Message.make ~tag:tag_pub (Message.Elements [ Paillier.encode_public pub ]));
  (* Step 2: second layer on R's set, Y_R order. *)
  let y_r_enc = Protocol.encrypt_encoded_batch cfg ops e_s y_r in
  Channel.send ep (Message.make ~tag:tag_y_r_enc (Message.Elements y_r_enc));
  (* Step 3: (f_eS(h(v)), Enc(x_v)) sorted by the first component. *)
  let hashed = Protocol.hash_values cfg ops (List.map fst grouped) in
  let pairs =
    List.map2
      (fun (v, x) (v', h) ->
        assert (String.equal v v');
        ( Protocol.encode cfg (Protocol.encrypt_elt cfg ops e_s h),
          Paillier.encode_ciphertext pub (Paillier.encrypt pub ~rng (Nat.of_int x)) ))
      grouped hashed
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  ops.Protocol.cipher_ops <- ops.Protocol.cipher_ops + List.length grouped;
  Channel.send ep (Message.make ~tag:tag_pairs (Message.Ciphertext_pairs pairs));
  (* Step 5: decrypt the blinded aggregate and return the plaintext. *)
  let blinded =
    match Protocol.elements_of (Protocol.recv_tagged ep tag_blinded) with
    | [ c ] -> Paillier.decode_ciphertext pub c
    | _ -> failwith "protocol error: expected one blinded ciphertext"
  in
  let masked_sum = Paillier.decrypt sec blinded in
  Channel.send ep
    (Message.make ~tag:tag_sum (Message.Elements [ Nat.to_bytes_be masked_sum ]));
  { v_r_count = List.length y_r; ops }

let receiver cfg ~rng ~values ep =
  let ops = Protocol.new_ops () in
  let v_r = Protocol.dedup values in
  let e_r = Commutative.gen_key cfg.Protocol.group ~rng in
  let hashed = Protocol.hash_values cfg ops v_r in
  let encoded =
    Protocol.encrypt_batch cfg ops e_r (List.map snd hashed)
    |> List.map2 (fun (v, _) c -> (Protocol.encode cfg c, v)) hashed
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Channel.send ep (Message.make ~tag:tag_y_r (Message.Elements (List.map fst encoded)));
  let pub =
    match Protocol.elements_of (Protocol.recv_tagged ep tag_pub) with
    | [ p ] -> Paillier.decode_public p
    | _ -> failwith "protocol error: expected one public key"
  in
  (* Strip our layer to obtain f_eS(h(v)) for our own values. *)
  let y_r_enc = Protocol.elements_of (Protocol.recv_tagged ep tag_y_r_enc) in
  if List.length y_r_enc <> List.length encoded then
    failwith "protocol error: Y_R_enc count mismatch"
  else begin
    let index = Hashtbl.create (List.length encoded) in
    List.iter2
      (fun z (_, v) ->
        let fes_h = Protocol.decrypt_elt cfg ops e_r (Protocol.decode cfg z) in
        Hashtbl.replace index (Protocol.encode cfg fes_h) v)
      y_r_enc encoded;
    let pairs = Protocol.pairs_of (Protocol.recv_tagged ep tag_pairs) in
    let matched =
      List.filter_map
        (fun (key_part, ct) ->
          Option.map (fun v -> (v, ct)) (Hashtbl.find_opt index key_part))
        pairs
    in
    (* Homomorphically sum the matched ciphertexts, blind, and ask S to
       decrypt. *)
    let rho = Bignum.Nat_rand.below ~rng (Paillier.modulus pub) in
    let acc = ref (Paillier.encrypt pub ~rng rho) in
    List.iter
      (fun (_, ct) -> acc := Paillier.add pub !acc (Paillier.decode_ciphertext pub ct))
      matched;
    ops.Protocol.cipher_ops <- ops.Protocol.cipher_ops + List.length matched + 1;
    Channel.send ep
      (Message.make ~tag:tag_blinded
         (Message.Elements [ Paillier.encode_ciphertext pub !acc ]));
    let masked_sum =
      match Protocol.elements_of (Protocol.recv_tagged ep tag_sum) with
      | [ s ] -> Nat.of_bytes_be s
      | _ -> failwith "protocol error: expected one sum"
    in
    let n = Paillier.modulus pub in
    let sum = Bignum.Modular.sub (Nat.rem masked_sum n) rho n in
    {
      intersection = List.sort String.compare (List.map fst matched);
      sum = Nat.to_int_exn sum;
      v_s_count = List.length pairs;
      ops;
    }
  end

let exact_ops ~v_s ~v_r ~intersection =
  (v_s + v_r, v_s + (3 * v_r), v_s + intersection + 1)

let estimate (p : Cost_model.params) ?(paillier_ratio = 4.0) ~v_s ~v_r () =
  let v_s_f = float_of_int v_s and v_r_f = float_of_int v_r in
  let ce = v_s_f +. (3. *. v_r_f) in
  (* Paillier work: |V_S| encryptions + 1 decryption + 1 blinding, at
     paillier_ratio x Ce each; homomorphic adds are negligible. *)
  let paillier = (v_s_f +. 2.) *. paillier_ratio in
  let comm_bits =
    ((v_s_f +. (2. *. v_r_f)) *. float_of_int p.Cost_model.k_bits)
    (* ciphertexts are 2x the Paillier modulus (n^2); take k as the
       modulus class *)
    +. ((v_s_f +. 2.) *. 2. *. float_of_int p.Cost_model.k_bits)
  in
  let encryptions = ce +. paillier in
  {
    Cost_model.encryptions;
    comp_seconds =
      encryptions *. p.Cost_model.ce_seconds /. float_of_int p.Cost_model.processors;
    comm_bits;
    comm_seconds = comm_bits /. p.Cost_model.bandwidth_bits_per_s;
  }

let run cfg ?(seed = "aggregate-seed") ?key_bits ~sender_records ~receiver_values () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  Wire.Runner.run
    (* psi-lint: allow SEC01 — rng feeds Paillier keygen/encryption inside the party; only public keys and ciphertexts reach the channel *)
    ~sender:(fun ep -> sender cfg ~rng:s_rng ?key_bits ~records:sender_records ep)
    (* psi-lint: allow SEC01 — rng feeds Paillier encryption inside the party; only ciphertexts reach the channel *)
    ~receiver:(fun ep -> receiver cfg ~rng:r_rng ~values:receiver_values ep)
