module Message = Wire.Message
module Channel = Wire.Channel
module Buf = Wire.Buf
module Snapshot = Wire.Snapshot
module Drbg = Crypto.Drbg

type op =
  | Intersect of { s_values : string list; r_values : string list }
  | Intersect_size of { s_values : string list; r_values : string list }
  | Equijoin of { s_records : (string * string) list; r_values : string list }
  | Equijoin_size of { s_values : string list; r_values : string list }

type result =
  | Values of string list
  | Size of int
  | Matches of (string * string list) list

let op_name = function
  | Intersect _ -> "intersect"
  | Intersect_size _ -> "intersect_size"
  | Equijoin _ -> "equijoin"
  | Equijoin_size _ -> "equijoin_size"

type plan = {
  buckets : int;
  state_dir : string option;
  cache : bool;
  cache_max_entries : int;
  prefetch : bool;
}

let max_buckets = 4096

let plan ?state_dir ?(cache = false) ?(cache_max_entries = 65536) ?(prefetch = true)
    ~buckets () =
  if buckets < 1 || buckets > max_buckets then
    invalid_arg (Printf.sprintf "Shard.plan: buckets must be in 1..%d" max_buckets);
  if cache && state_dir = None then invalid_arg "Shard.plan: ~cache requires ~state_dir";
  if cache_max_entries < 1 then invalid_arg "Shard.plan: cache_max_entries >= 1";
  { buckets; state_dir; cache; cache_max_entries; prefetch }

let buckets p = p.buckets
let state_dir p = p.state_dir

let with_default_state_dir p dir =
  match p.state_dir with Some _ -> p | None -> { p with state_dir = Some dir }

(* Telemetry: one namespace for the sharded driver. *)
let m_buckets_run = Obs.Metrics.counter "shard.buckets_run"
let m_replays = Obs.Metrics.counter "shard.replays"
let m_resumes = Obs.Metrics.counter "shard.resumes"
let m_restored = Obs.Metrics.counter "shard.results_restored"
let m_spilled_bytes = Obs.Metrics.counter "shard.spilled_bytes"

(* ------------------------------------------------------------------ *)
(* Bucket assignment                                                   *)
(* ------------------------------------------------------------------ *)

(* First 64 bits of the fixed-width big-endian encoding of h(v),
   reduced mod the bucket count. h is uniform over the group (§3.1
   random-oracle style), so bucket sizes concentrate around n/k; and
   because the assignment depends on h(v) alone, two values with
   colliding hashes share a bucket, keeping the per-bucket §3.2.2
   collision check equivalent to the global one. *)
let bucket_of cfg ~buckets v =
  if buckets = 1 then 0
  else begin
    let h =
      Crypto.Hash_to_group.hash_value cfg.Protocol.group ~domain:cfg.Protocol.domain v
    in
    let s = Crypto.Group.encode_elt cfg.Protocol.group h in
    let n = min 8 (String.length s) in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := ((!acc lsl 8) lor Char.code s.[i]) land max_int
    done;
    !acc mod buckets
  end

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let write_file path data =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let append_file path data =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Stateful-reader-safe List.init: elements read in index order. *)
let read_list n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

(* Equijoin sender entries carry the record payload alongside the
   bucketing key. *)
let encode_record (v, r) =
  let w = Buf.writer () in
  Buf.write_bytes w v;
  Buf.write_bytes w r;
  Buf.contents w

let decode_record s =
  let r = Buf.reader s in
  let v = Buf.read_bytes r in
  let payload = Buf.read_bytes r in
  Buf.expect_end r;
  (v, payload)

(* Merge-walk diff of two sorted unique lists (same walk as the session
   layer's), tallying (added, removed, unchanged) vs [prev]. *)
let diff_counts prev cur =
  let rec go added removed unchanged prev cur =
    match (prev, cur) with
    | [], [] -> (added, removed, unchanged)
    | [], _ :: cs -> go (added + 1) removed unchanged [] cs
    | _ :: ps, [] -> go added (removed + 1) unchanged ps []
    | p :: ps, c :: cs ->
        let cmp = String.compare p c in
        if cmp = 0 then go added removed (unchanged + 1) ps cs
        else if cmp < 0 then go added (removed + 1) unchanged ps cur
        else go (added + 1) removed unchanged prev cs
  in
  go 0 0 0 prev cur

(* ------------------------------------------------------------------ *)
(* Spill: per-bucket on-disk partitions                                *)
(* ------------------------------------------------------------------ *)

module Spill = struct
  let magic = "PSISPIL1"
  let meta_magic = "PSISPILM"

  let bucket_file dir ~label b =
    Filename.concat dir (Printf.sprintf "%s.b%d.spill" label b)

  let meta_file dir ~label = Filename.concat dir (label ^ ".spillmeta")

  (* Per-bucket in-memory buffers flushed by append once they pass this
     bound: spilling n elements into k buckets holds at most k buffers
     of ~1 MiB and exactly one open file descriptor at a time. *)
  let flush_threshold = 1 lsl 20

  let add_varint buf n =
    let rec go n =
      if n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    if n < 0 then invalid_arg "Spill.add_varint: negative" else go n

  (* [write cfg ~dir ~label ~buckets ~kind entries] partitions a
     [(bucket_key, encoded_entry)] stream into bucket files, computing
     bucket sizes and the rolling input fingerprint as it goes, then
     commits them in a meta file (temp + rename, written last, so a
     torn spill is simply not visible). Returns (sizes, fingerprint). *)
  let write cfg ~dir ~label ~buckets ~kind entries =
    mkdirs dir;
    let bufs = Array.init buckets (fun _ -> Buffer.create 64) in
    let started = Array.make buckets false in
    let sizes = Array.make buckets 0 in
    let ctx = Crypto.Sha256.init () in
    let spilled = ref 0 in
    let flush b =
      if Buffer.length bufs.(b) > 0 then begin
        let data = Buffer.contents bufs.(b) in
        let payload = if started.(b) then data else magic ^ data in
        (if started.(b) then append_file else write_file)
          (bucket_file dir ~label b) payload;
        started.(b) <- true;
        spilled := !spilled + String.length payload;
        Buffer.clear bufs.(b)
      end
    in
    Seq.iter
      (fun (key, entry) ->
        let b = bucket_of cfg ~buckets key in
        let buf = bufs.(b) in
        add_varint buf (String.length entry);
        Buffer.add_string buf entry;
        sizes.(b) <- sizes.(b) + 1;
        Crypto.Sha256.update ctx (string_of_int (String.length entry));
        Crypto.Sha256.update ctx entry;
        if Buffer.length buf >= flush_threshold then flush b)
      entries;
    for b = 0 to buckets - 1 do
      flush b;
      (* Drop a stale bucket file left by a previous spill under the
         same label whose bucket happens to be empty this time. *)
      if (not started.(b)) && Sys.file_exists (bucket_file dir ~label b) then
        Sys.remove (bucket_file dir ~label b)
    done;
    Obs.Metrics.incr ~by:!spilled m_spilled_bytes;
    let fp = hex (Crypto.Sha256.finalize ctx) in
    let w = Buf.writer () in
    Buf.write_raw w meta_magic;
    Buf.write_u8 w (match kind with `Plain -> 0 | `Records -> 1);
    Buf.write_varint w buckets;
    Array.iter (Buf.write_varint w) sizes;
    Buf.write_bytes w fp;
    let tmp = meta_file dir ~label ^ ".tmp" in
    write_file tmp (Buf.contents w);
    Sys.rename tmp (meta_file dir ~label);
    (sizes, fp)

  let load_meta dir ~label =
    let path = meta_file dir ~label in
    if not (Sys.file_exists path) then None
    else
      match
        let r = Buf.reader (read_file path) in
        if not (String.equal (Buf.read_raw r (String.length meta_magic)) meta_magic)
        then None
        else begin
          let kind =
            match Buf.read_u8 r with
            | 0 -> `Plain
            | 1 -> `Records
            | _ -> raise (Buf.Parse_error "spill meta kind")
          in
          let buckets = Buf.read_varint r in
          if buckets < 1 || buckets > max_buckets then None
          else begin
            let sizes = Array.of_list (read_list buckets (fun _ -> Buf.read_varint r)) in
            let fp = Buf.read_bytes r in
            Buf.expect_end r;
            Some (kind, sizes, fp)
          end
        end
      with
      | m -> m
      | exception (Buf.Parse_error _ | Sys_error _) -> None

  (* Load one bucket back. A missing file is an empty bucket (only
     non-empty buckets are materialized). *)
  let read_bucket dir ~label b =
    let path = bucket_file dir ~label b in
    if not (Sys.file_exists path) then []
    else begin
      let data = read_file path in
      let r = Buf.reader data in
      if not (String.equal (Buf.read_raw r (String.length magic)) magic) then
        raise (Buf.Parse_error "spill magic mismatch");
      let acc = ref [] in
      while not (Buf.at_end r) do
        acc := Buf.read_bytes r ~max:(String.length data) :: !acc
      done;
      List.rev !acc
    end
end

(* ------------------------------------------------------------------ *)
(* Own-side partition source                                           *)
(* ------------------------------------------------------------------ *)

let party_name = function `Sender -> "sender" | `Receiver -> "receiver"
let spill_label ~op_index party = Printf.sprintf "op%d-%s" op_index (party_name party)

type source = {
  fetch : int -> string list;  (* encoded entries of bucket b *)
  sizes : int array;
  input_fp : string;  (* rolling fingerprint of the full input stream *)
}

let spill_entries cfg p party ~op_index ~kind entries =
  match p.state_dir with
  | None -> invalid_arg "Shard.spill: the plan has no state_dir"
  | Some dir ->
      let n = ref 0 in
      let counted =
        Seq.map
          (fun e ->
            incr n;
            e)
          entries
      in
      let _ =
        Spill.write cfg ~dir ~label:(spill_label ~op_index party) ~buckets:p.buckets
          ~kind counted
      in
      !n

let spill_values cfg p party ?(op_index = 0) vs =
  spill_entries cfg p party ~op_index ~kind:`Plain (Seq.map (fun v -> (v, v)) vs)

let spill_records cfg p party ?(op_index = 0) rs =
  spill_entries cfg p party ~op_index ~kind:`Records
    (Seq.map (fun (v, r) -> (v, encode_record (v, r))) rs)

(* In-memory partition for planless runs: same sizes and fingerprint as
   the spilled path would produce. *)
let partition_in_memory cfg ~buckets entries =
  let parts = Array.make buckets [] in
  let sizes = Array.make buckets 0 in
  let ctx = Crypto.Sha256.init () in
  Seq.iter
    (fun (key, entry) ->
      let b = bucket_of cfg ~buckets key in
      parts.(b) <- entry :: parts.(b);
      sizes.(b) <- sizes.(b) + 1;
      Crypto.Sha256.update ctx (string_of_int (String.length entry));
      Crypto.Sha256.update ctx entry)
    entries;
  (Array.map List.rev parts, sizes, hex (Crypto.Sha256.finalize ctx))

(* Build the per-bucket entry source for one party's side of an op. A
   non-empty input list wins (re-spilled when the plan has a state_dir,
   so a resumed run streams identical partitions back); an empty list
   falls back to previously spilled buckets — how the bench pushes a
   million elements through without materializing them. *)
let make_source cfg p party ~op_index ~kind ~entries ~have_input =
  match p.state_dir with
  | None ->
      let parts, sizes, input_fp = partition_in_memory cfg ~buckets:p.buckets entries in
      { fetch = (fun b -> parts.(b)); sizes; input_fp }
  | Some dir ->
      let label = spill_label ~op_index party in
      if have_input || Spill.load_meta dir ~label = None then
        ignore (Spill.write cfg ~dir ~label ~buckets:p.buckets ~kind entries);
      let meta_kind, sizes, input_fp =
        match Spill.load_meta dir ~label with
        | Some m -> m
        | None -> failwith "shard: spill meta unreadable"
      in
      if meta_kind <> kind || Array.length sizes <> p.buckets then
        failwith "shard: spilled buckets do not match the plan (bucket count or kind)";
      let read b = Spill.read_bucket dir ~label b in
      let fetch =
        if p.prefetch && p.buckets > 1 then begin
          let pl = Parallel.Pipeline.create ~fetch:read ~limit:p.buckets ~start:0 in
          fun b -> Parallel.Pipeline.next pl b
        end
        else read
      in
      { fetch; sizes; input_fp }

(* ------------------------------------------------------------------ *)
(* Per-bucket state files (Wire.Snapshot containers)                   *)
(* ------------------------------------------------------------------ *)

let prog_file dir ~op_index party =
  Filename.concat dir (Printf.sprintf "op%d-%s.prog" op_index (party_name party))

let epoch_file dir ~op_index party =
  Filename.concat dir (Printf.sprintf "op%d-%s.epoch" op_index (party_name party))

let result_file dir ~op_index b =
  Filename.concat dir (Printf.sprintf "op%d-b%d.result" op_index b)

let inputs_file dir ~op_index party b =
  Filename.concat dir (Printf.sprintf "op%d-%s-b%d.inputs" op_index (party_name party) b)

(* Context fingerprint: which (operation, bucket count, party, input
   stream) a checkpoint belongs to. Purely local — it validates this
   party's own state files and never crosses the wire (a deterministic
   commitment to the input set would be leakage the monolithic
   protocol does not have). *)
let ctx_fp ~op ~op_index ~buckets ~party ~input_fp =
  hex
    (Crypto.Sha256.digest_concat
       [
         "psi:shard-ck:v1";
         op;
         string_of_int op_index;
         string_of_int buckets;
         party_name party;
         input_fp;
       ])

(* Progress: run_id = completed bucket count; the single entry pins the
   op, the context fingerprint, and the run tokens (own, peer's). *)
let load_progress ~path ~op ~buckets ~fp =
  match Snapshot.load ~path with
  | Some { Snapshot.run_id; entries = [ e ] }
    when run_id >= 0 && run_id <= buckets
         && String.equal e.Snapshot.op op
         && String.equal e.Snapshot.key_fp fp -> (
      match e.Snapshot.s_elements with
      | [ token; peer_token ] -> Some (run_id, token, peer_token)
      | _ -> None)
  | _ -> None

let save_progress ~path ~op ~fp ~done_ ~token ~peer_token =
  Snapshot.save ~path
    {
      Snapshot.run_id = done_;
      entries =
        [ { Snapshot.op; key_fp = fp; s_elements = [ token; peer_token ]; r_elements = [] } ];
    }

let encode_result res =
  let w = Buf.writer () in
  (match res with
  | Values vs ->
      Buf.write_u8 w 0;
      Buf.write_varint w (List.length vs);
      List.iter (Buf.write_bytes w) vs
  | Size n ->
      Buf.write_u8 w 1;
      Buf.write_varint w n
  | Matches ms ->
      Buf.write_u8 w 2;
      Buf.write_varint w (List.length ms);
      List.iter
        (fun (v, rs) ->
          Buf.write_bytes w v;
          Buf.write_varint w (List.length rs);
          List.iter (Buf.write_bytes w) rs)
        ms);
  Buf.contents w

let decode_result s =
  let max = String.length s in
  match
    let r = Buf.reader s in
    let bounded n = if n > max then raise (Buf.Parse_error "shard result count") else n in
    let res =
      match Buf.read_u8 r with
      | 0 ->
          let n = bounded (Buf.read_varint r) in
          Values (read_list n (fun _ -> Buf.read_bytes ~max r))
      | 1 -> Size (Buf.read_varint r)
      | 2 ->
          let n = bounded (Buf.read_varint r) in
          Matches
            (read_list n (fun _ ->
                 let v = Buf.read_bytes ~max r in
                 let k = bounded (Buf.read_varint r) in
                 (v, read_list k (fun _ -> Buf.read_bytes ~max r))))
      | _ -> raise (Buf.Parse_error "shard result kind")
    in
    Buf.expect_end r;
    res
  with
  | res -> Some res
  | exception Buf.Parse_error _ -> None

let save_result ~path ~op ~fp b res =
  Snapshot.save ~path
    {
      Snapshot.run_id = b;
      entries =
        [ { Snapshot.op; key_fp = fp; s_elements = [ encode_result res ]; r_elements = [] } ];
    }

let load_result ~path ~op ~fp b =
  match Snapshot.load ~path with
  | Some { Snapshot.run_id; entries = [ e ] }
    when run_id = b && String.equal e.Snapshot.op op && String.equal e.Snapshot.key_fp fp
    -> (
      match e.Snapshot.s_elements with [ s ] -> decode_result s | _ -> None)
  | _ -> None

(* Committed per-bucket inputs, diffed on the next run for per-bucket
   delta accounting (key_fp is empty: inputs are key-independent). *)
let save_inputs ~path ~op b elems =
  Snapshot.save ~path
    {
      Snapshot.run_id = b;
      entries = [ { Snapshot.op; key_fp = ""; s_elements = elems; r_elements = [] } ];
    }

let load_inputs ~path ~op b =
  match Snapshot.load ~path with
  | Some { Snapshot.run_id; entries = [ e ] }
    when run_id = b && String.equal e.Snapshot.op op ->
      Some e.Snapshot.s_elements
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Resume exchange                                                     *)
(* ------------------------------------------------------------------ *)

(* Run tokens make cross-party staleness detectable without leaking a
   commitment to anyone's data: a token is minted fresh every time a
   party starts an op from scratch (epoch counter + DRBG fork + local
   fingerprint, hashed), and only reused while resuming that same
   attempt. If my stored peer token no longer matches what the peer
   announces, the peer restarted (possibly with different inputs), so
   my per-bucket results are stale and I start from bucket 0. *)
let mint_token drbg ~op_index ~fp ~epoch =
  let bytes =
    Drbg.generate (Drbg.fork drbg ~label:(Printf.sprintf "shard/op%d/token" op_index)) 16
  in
  hex
    (String.sub
       (Crypto.Sha256.digest_concat
          [ "psi:shard-token:v1"; bytes; fp; string_of_int epoch ])
       0 16)

let next_epoch path =
  let prev =
    if Sys.file_exists path then
      match int_of_string_opt (String.trim (read_file path)) with
      | Some n when n >= 0 -> n
      | _ -> 0
    else 0
  in
  let e = prev + 1 in
  write_file path (string_of_int e);
  e

type hello = { done_ : int; token : string; peer_token : string }

let resume_tag = "shard/resume"

let send_hello cfg ep h =
  Channel.send ep
    (Message.make ~tag:(Protocol.scoped cfg resume_tag)
       (Message.Elements [ string_of_int h.done_; h.token; h.peer_token ]))

let recv_hello cfg ep =
  match Protocol.recv_tagged ep (Protocol.scoped cfg resume_tag) with
  | Message.Elements [ d; token; peer_token ] -> (
      match int_of_string_opt d with
      | Some n when n >= 0 && n <= max_buckets -> { done_ = n; token; peer_token }
      | _ -> failwith "shard resume failed: malformed bucket count")
  | _ -> failwith "shard resume failed: unexpected message"

(* ------------------------------------------------------------------ *)
(* Per-bucket sub-protocol plumbing                                    *)
(* ------------------------------------------------------------------ *)

(* (own entry encoding, protocol kind) of one party's side of an op. *)
let side_of party op =
  match (party, op) with
  | `Sender, Intersect { s_values; _ } -> (`Plain, `K_intersect, s_values)
  | `Sender, Intersect_size { s_values; _ } -> (`Plain, `K_size, s_values)
  | `Sender, Equijoin_size { s_values; _ } -> (`Plain, `K_join_size, s_values)
  | `Receiver, Intersect { r_values; _ } -> (`Plain, `K_intersect, r_values)
  | `Receiver, Intersect_size { r_values; _ } -> (`Plain, `K_size, r_values)
  | `Receiver, Equijoin { r_values; _ } -> (`Plain, `K_join, r_values)
  | `Receiver, Equijoin_size { r_values; _ } -> (`Plain, `K_join_size, r_values)
  (* Unreachable: entry_seq_of intercepts the equijoin sender before
     dispatching here. *)
  | `Sender, Equijoin _ -> invalid_arg "Shard.side_of: equijoin sender"

let entry_seq_of party op =
  match (party, op) with
  | `Sender, Equijoin { s_records; _ } ->
      (`Records, `K_join,
       List.to_seq s_records |> Seq.map (fun (v, r) -> (v, encode_record (v, r))),
       s_records <> [])
  | _ ->
      let kind, pkind, values = side_of party op in
      (kind, pkind, List.to_seq values |> Seq.map (fun v -> (v, v)), values <> [])

(* The deduplicated join-attribute values of one bucket — what the
   incremental layer snapshots and diffs (mirrors Session.op_elements). *)
let bucket_elements ~kind entries =
  match kind with
  | `Plain -> Protocol.dedup entries
  | `Records -> Protocol.dedup (List.map (fun e -> fst (decode_record e)) entries)

(* Bucket config: tags move into the bucket's namespace ("b<i>", frames
   are bucket-tagged on the wire); with plan cache, the element cache is
   a dedicated per-bucket store opened for just this bucket's lifetime. *)
let bucket_cache_dir dir ~op_index party b =
  List.fold_left Filename.concat dir
    [ "cache"; Printf.sprintf "op%d-%s" op_index (party_name party); Printf.sprintf "b%d" b ]

let with_bucket_cfg cfg p ~party ~op_index b f =
  let cfg = Protocol.with_scope cfg (Protocol.scoped cfg (Printf.sprintf "b%d" b)) in
  match (p.cache, p.state_dir) with
  | true, Some dir ->
      let cdir = bucket_cache_dir dir ~op_index party b in
      mkdirs cdir;
      let c = Ecache.open_ ~max_entries:p.cache_max_entries ~dir:cdir () in
      Fun.protect
        ~finally:(fun () -> Ecache.close c)
        (fun () ->
          let r = f { cfg with Protocol.ecache = Some c } in
          let st = Ecache.stats c in
          (r, st.Ecache.hits, st.Ecache.misses))
  | _ ->
      let r = f cfg in
      (r, 0, 0)

let run_sender_bucket cfg ~rng ep ~pkind entries =
  match pkind with
  | `K_intersect -> (Intersection.sender cfg ~rng ~values:entries ep).Intersection.ops
  | `K_size -> (Intersection_size.sender cfg ~rng ~values:entries ep).Intersection_size.ops
  | `K_join ->
      (Equijoin.sender cfg ~rng ~records:(List.map decode_record entries) ep).Equijoin.ops
  | `K_join_size ->
      (Equijoin_size.sender cfg ~rng ~values:entries ep).Equijoin_size.ops

let run_receiver_bucket cfg ~rng ep ~pkind entries =
  match pkind with
  | `K_intersect ->
      let r = Intersection.receiver cfg ~rng ~values:entries ep in
      (r.Intersection.ops, Values r.Intersection.intersection)
  | `K_size ->
      let r = Intersection_size.receiver cfg ~rng ~values:entries ep in
      (r.Intersection_size.ops, Size r.Intersection_size.size)
  | `K_join ->
      let r = Equijoin.receiver cfg ~rng ~values:entries ep in
      (r.Equijoin.ops, Matches r.Equijoin.matches)
  | `K_join_size ->
      let r = Equijoin_size.receiver cfg ~rng ~values:entries ep in
      (r.Equijoin_size.ops, Size r.Equijoin_size.join_size)

let add_ops dst (src : Protocol.ops) =
  dst.Protocol.hashes <- dst.Protocol.hashes + src.Protocol.hashes;
  dst.Protocol.encryptions <- dst.Protocol.encryptions + src.Protocol.encryptions;
  dst.Protocol.cipher_ops <- dst.Protocol.cipher_ops + src.Protocol.cipher_ops

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  buckets : int;
  sizes : int list;
  start : int;
  replayed : int;
  restored : int;
  cache_hits : int;
  cache_misses : int;
  cold_buckets : int;
  added : int;
  removed : int;
  unchanged : int;
}

let drive cfg (p : plan) ~drbg ~op_index ~party ep op =
  let name = op_name op in
  Obs.Span.with_ ("shard/" ^ name)
    ~attrs:[ ("buckets", string_of_int p.buckets) ]
  @@ fun () ->
  Obs.Metrics.set (Obs.Metrics.gauge "shard.buckets") (float_of_int p.buckets);
  let dir = p.state_dir in
  Option.iter mkdirs dir;
  let kind, pkind, entries, have_input = entry_seq_of party op in
  let src = make_source cfg p party ~op_index ~kind ~entries ~have_input in
  let fp = ctx_fp ~op:name ~op_index ~buckets:p.buckets ~party ~input_fp:src.input_fp in
  (* Own checkpointed progress, valid only for this exact context. *)
  let raw_done, own_token, stored_peer =
    match
      Option.bind dir (fun d ->
          load_progress ~path:(prog_file d ~op_index party) ~op:name ~buckets:p.buckets
            ~fp)
    with
    | Some (d, tok, ptok) -> (d, Some tok, ptok)
    | None -> (0, None, "")
  in
  (* The receiver only trusts progress it can back with decodable
     result checkpoints: announce the longest valid prefix. *)
  let restored_results = Hashtbl.create 8 in
  let raw_done =
    match (party, dir) with
    | `Receiver, Some d when raw_done > 0 ->
        let rec go b =
          if b >= raw_done then b
          else
            match load_result ~path:(result_file d ~op_index b) ~op:name ~fp b with
            | Some res ->
                Hashtbl.add restored_results b res;
                go (b + 1)
            | None -> b
        in
        go 0
    | `Receiver, None -> 0
    | _ -> raw_done
  in
  let token =
    match own_token with
    | Some t when raw_done > 0 -> t
    | _ ->
        let epoch =
          match dir with
          | Some d -> next_epoch (epoch_file d ~op_index party)
          | None -> 0
        in
        mint_token drbg ~op_index ~fp ~epoch
  in
  (* Resume exchange (receiver sends first, mirroring the session
     handshake direction). Reveals only bucket-completion counts and
     opaque run tokens. *)
  let mine = { done_ = raw_done; token; peer_token = stored_peer } in
  let theirs =
    match party with
    | `Receiver ->
        send_hello cfg ep mine;
        recv_hello cfg ep
    | `Sender ->
        let t = recv_hello cfg ep in
        send_hello cfg ep mine;
        t
  in
  (* My checkpoints are valid only if the peer is still the run I made
     them against; the peer's count only counts if it was made against
     my current run. Both sides compute both, symmetrically. *)
  let mine_eff = if String.equal theirs.token stored_peer then raw_done else 0 in
  let theirs_eff = if String.equal theirs.peer_token token then theirs.done_ else 0 in
  let start = min mine_eff theirs_eff in
  if start > 0 then Obs.Metrics.incr m_resumes;
  let acc = Protocol.new_ops () in
  let results = Array.make (max p.buckets 1) None in
  for b = 0 to mine_eff - 1 do
    results.(b) <- Hashtbl.find_opt restored_results b
  done;
  if party = `Receiver && mine_eff > 0 then Obs.Metrics.incr ~by:mine_eff m_restored;
  let replayed = ref 0 in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  let cold_buckets = ref 0 in
  let added = ref 0 and removed = ref 0 and unchanged = ref 0 in
  for b = 0 to p.buckets - 1 do
    let entries = src.fetch b in
    let elems = bucket_elements ~kind entries in
    (* Per-bucket delta vs the last committed inputs. *)
    (match dir with
    | Some d -> (
        match load_inputs ~path:(inputs_file d ~op_index party b) ~op:name b with
        | Some prev ->
            let a, r, u = diff_counts prev elems in
            added := !added + a;
            removed := !removed + r;
            unchanged := !unchanged + u
        | None ->
            incr cold_buckets;
            added := !added + List.length elems)
    | None ->
        incr cold_buckets;
        added := !added + List.length elems);
    if b >= start then begin
      let is_replay = b < mine_eff in
      if is_replay then begin
        incr replayed;
        Obs.Metrics.incr m_replays
      end;
      let (res : result option), h, m =
        with_bucket_cfg cfg p ~party ~op_index b @@ fun bcfg ->
        Obs.Span.with_
          (Printf.sprintf "shard/b%d" b)
          ~attrs:[ ("n", string_of_int (List.length entries)) ]
        @@ fun () ->
        let rng =
          Drbg.to_rng (Drbg.fork drbg ~label:(Printf.sprintf "shard/op%d/b%d" op_index b))
        in
        match party with
        | `Sender ->
            add_ops acc (run_sender_bucket bcfg ~rng ep ~pkind entries);
            None
        | `Receiver ->
            let o, res = run_receiver_bucket bcfg ~rng ep ~pkind entries in
            add_ops acc o;
            Some res
      in
      cache_hits := !cache_hits + h;
      cache_misses := !cache_misses + m;
      Obs.Metrics.incr m_buckets_run;
      (match res with
      | Some r when not is_replay ->
          (* Idempotent replay: the first completed result wins. *)
          results.(b) <- Some r;
          Option.iter
            (fun d -> save_result ~path:(result_file d ~op_index b) ~op:name ~fp b r)
            dir
      | _ -> ());
      Option.iter
        (fun d ->
          save_progress
            ~path:(prog_file d ~op_index party)
            ~op:name ~fp
            ~done_:(max mine_eff (b + 1))
            ~token ~peer_token:theirs.token)
        dir
    end;
    Option.iter
      (fun d -> save_inputs ~path:(inputs_file d ~op_index party b) ~op:name b elems)
      dir
  done;
  (* The op completed: crash-recovery state is consumed, never reused
     as a cross-run memo (a later identical run re-executes the
     protocol; the element cache is what makes it cheap). *)
  Option.iter
    (fun d ->
      remove_if_exists (prog_file d ~op_index party);
      if party = `Receiver then
        for b = 0 to p.buckets - 1 do
          remove_if_exists (result_file d ~op_index b)
        done)
    dir;
  let stats =
    {
      buckets = p.buckets;
      sizes = Array.to_list src.sizes;
      start;
      replayed = !replayed;
      restored = (if party = `Receiver then mine_eff else 0);
      cache_hits = !cache_hits;
      cache_misses = !cache_misses;
      cold_buckets = !cold_buckets;
      added = !added;
      removed = !removed;
      unchanged = !unchanged;
    }
  in
  (acc, results, stats)

let merge op results =
  let shape_error () = failwith "shard: per-bucket result shape mismatch" in
  let all =
    List.map (function Some r -> r | None -> failwith "shard: missing bucket result")
      (Array.to_list results)
  in
  match op with
  | Intersect _ ->
      Values
        (List.concat_map (function Values vs -> vs | _ -> shape_error ()) all
        |> List.sort String.compare)
  | Intersect_size _ | Equijoin_size _ ->
      Size (List.fold_left (fun n -> function Size s -> n + s | _ -> shape_error ()) 0 all)
  | Equijoin _ ->
      Matches
        (List.concat_map (function Matches ms -> ms | _ -> shape_error ()) all
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let sender_op cfg p ~drbg ?(op_index = 0) ep op =
  let ops, _, stats = drive cfg p ~drbg ~op_index ~party:`Sender ep op in
  (ops, stats)

let receiver_op cfg (p : plan) ~drbg ?(op_index = 0) ep op =
  let ops, results, stats = drive cfg p ~drbg ~op_index ~party:`Receiver ep op in
  let results = Array.sub results 0 p.buckets in
  (ops, merge op results, stats)

type report = {
  result : result;
  total_bytes : int;
  ops : Protocol.ops;
  sender_stats : stats;
  receiver_stats : stats;
}

let run cfg ?(seed = "shard") ?(record_views = true) p op =
  let drbg = Drbg.create ~seed in
  let s_drbg = Drbg.split drbg ~label:"sender" in
  let r_drbg = Drbg.split drbg ~label:"receiver" in
  let s_ep, r_ep = Channel.create () in
  if not record_views then begin
    Channel.set_record_views s_ep false;
    Channel.set_record_views r_ep false
  end;
  let o =
    Wire.Runner.run_on (s_ep, r_ep)
      ~sender:(fun ep ->
        Handshake.respond cfg ep;
        sender_op cfg p ~drbg:s_drbg ep op)
      ~receiver:(fun ep ->
        Handshake.initiate cfg ep;
        receiver_op cfg p ~drbg:r_drbg ep op)
  in
  let s_ops, s_stats = o.Wire.Runner.sender_result in
  let r_ops, result, r_stats = o.Wire.Runner.receiver_result in
  {
    result;
    total_bytes = o.Wire.Runner.total_bytes;
    ops = Protocol.total s_ops r_ops;
    sender_stats = s_stats;
    receiver_stats = r_stats;
  }
