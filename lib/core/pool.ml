include Parallel.Pool
