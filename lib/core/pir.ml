module Message = Wire.Message
module Channel = Wire.Channel
module Buf = Wire.Buf
module Paillier = Crypto.Paillier
module Nat = Bignum.Nat

type sender_report = { record_count : int; record_bytes : int }
type receiver_report = { record : string }

let tag_query = "pir/query"
let tag_reply = "pir/reply"

(* Plaintext chunks must stay below the Paillier modulus. *)
let chunk_bytes pub = ((Nat.num_bits (Paillier.modulus pub) - 2) / 8) - 1

(* Records are framed (length-prefixed) then padded to a common public
   width, so the retrieved record's true length is recoverable. *)
let frame record =
  let w = Buf.writer () in
  Buf.write_bytes w record;
  Buf.contents w

let unframe s =
  let r = Buf.reader s in
  Buf.read_bytes r (* trailing padding is permitted *)

let sender ~rng ~records ep =
  let framed = List.map frame records in
  let width = List.fold_left (fun acc s -> Stdlib.max acc (String.length s)) 1 framed in
  let padded =
    List.map (fun s -> s ^ String.make (width - String.length s) '\x00') framed
  in
  let pub, query =
    match Protocol.elements_of (Protocol.recv_tagged ep tag_query) with
    | pub_enc :: cts ->
        let pub = Paillier.decode_public pub_enc in
        (pub, List.map (Paillier.decode_ciphertext pub) cts)
    | [] -> failwith "pir: empty query"
  in
  if List.length query <> List.length records then failwith "pir: query length mismatch"
  else begin
    let cb = chunk_bytes pub in
    let n_chunks = (width + cb - 1) / cb in
    (* chunk value of record j, chunk k *)
    let chunk_of s k =
      let lo = k * cb in
      let len = Stdlib.min cb (width - lo) in
      Nat.of_bytes_be (String.sub s lo len)
    in
    let reply_chunks =
      List.init n_chunks (fun k ->
          let acc =
            List.fold_left2
              (fun acc q s -> Paillier.add pub acc (Paillier.mul_plain pub q (chunk_of s k)))
              (Paillier.zero pub ~rng) query padded
          in
          Paillier.encode_ciphertext pub acc)
    in
    let header =
      let w = Buf.writer () in
      Buf.write_varint w width;
      Buf.contents w
    in
    Channel.send ep (Message.make ~tag:tag_reply (Message.Elements (header :: reply_chunks)));
    { record_count = List.length records; record_bytes = width }
  end

let receiver ~rng ?(key_bits = 512) ~count ~index ep =
  if index < 0 || index >= count then invalid_arg "Pir.receiver: index out of range"
  else begin
    let pub, sec = Paillier.keygen ~rng ~bits:key_bits in
    let query =
      List.init count (fun j ->
          Paillier.encode_ciphertext pub
            (Paillier.encrypt pub ~rng (if j = index then Nat.one else Nat.zero)))
    in
    Channel.send ep
      (Message.make ~tag:tag_query (Message.Elements (Paillier.encode_public pub :: query)));
    match Protocol.elements_of (Protocol.recv_tagged ep tag_reply) with
    | header :: chunks ->
        let width =
          let r = Buf.reader header in
          let w = Buf.read_varint r in
          Buf.expect_end r;
          w
        in
        let cb = chunk_bytes pub in
        let buf = Buffer.create width in
        List.iteri
          (fun k ct ->
            let lo = k * cb in
            let len = Stdlib.min cb (width - lo) in
            let v = Paillier.decrypt sec (Paillier.decode_ciphertext pub ct) in
            Buffer.add_string buf (Nat.to_bytes_be ~width:len v))
          chunks;
        { record = unframe (Buffer.contents buf) }
    | [] -> failwith "pir: empty reply"
  end

let run ?(seed = "pir-seed") ?key_bits ~records ~index () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  Wire.Runner.run
    (* psi-lint: allow SEC01 — rng feeds Paillier reply encryption inside the party; only ciphertexts cross the wire *)
    ~sender:(fun ep -> sender ~rng:s_rng ~records ep)
    ~receiver:(fun ep ->
      (* psi-lint: allow SEC01 — rng feeds Paillier query keygen/encryption; only the public key and ciphertexts cross the wire *)
      receiver ~rng:r_rng ?key_bits ~count:(List.length records) ~index ep)
