(** The persistent encrypted-set cache, re-exported from [psi.cache] so
    protocol code and callers can say [Psi.Ecache]. [Psi.Ecache.t] {e is}
    [Cache.Ecache.t] — the same cache plugs into {!Protocol.config} and
    feeds {!Session.run_incremental}. See {!Cache.Ecache} for the full
    documentation. *)

include module type of struct
  include Cache.Ecache
end
