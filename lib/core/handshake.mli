(** Configuration agreement check.

    The protocols silently assume both parties use the same group, hash
    domain and [K] cipher — a mismatch yields an empty intersection, not
    an error. This optional one-round handshake exchanges a fingerprint
    of the shared configuration and fails loudly on mismatch. Run it on
    a fresh channel before the protocol when the configs were not
    distributed out of band.

    The fingerprint commits to: wire-format version, group modulus,
    hash domain, cipher choice. It deliberately excludes [workers]
    (local parallelism does not affect the protocol). *)

(** The handshake also anchors distributed tracing: each side runs
    under a ["handshake"] span (psi_trace aligns the two parties'
    clocks on it) and, once fingerprints are exchanged, installs the
    ambient {!Obs.Context} — party ["R"] for the initiator, ["S"] for
    the responder, and a shared 128-bit trace id derived from the
    exchanged fingerprints. No extra bytes ride on the wire, so
    protocol transcripts are byte-identical with tracing on or off. *)

(** [fingerprint cfg] is a 32-byte digest of the protocol-relevant
    configuration. *)
val fingerprint : Protocol.config -> string

(** [trace_id ~initiator_fp ~responder_fp] is the 32-hex-char (128-bit)
    trace id both parties derive from the exchanged fingerprints. *)
val trace_id : initiator_fp:string -> responder_fp:string -> string

(** [initiate cfg ep] sends this side's fingerprint, waits for the
    peer's, and checks. Installs trace context as party ["R"].
    @raise Failure on mismatch. *)
val initiate : Protocol.config -> Wire.Channel.endpoint -> unit

(** [respond cfg ep] is the passive side (party ["S"]).
    @raise Failure on mismatch. *)
val respond : Protocol.config -> Wire.Channel.endpoint -> unit
