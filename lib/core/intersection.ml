module Message = Wire.Message
module Channel = Wire.Channel
module Commutative = Crypto.Commutative

type sender_report = { v_r_count : int; ops : Protocol.ops }

type receiver_report = {
  intersection : string list;
  v_s_count : int;
  ops : Protocol.ops;
}

let tag_y_r = "intersection/Y_R"
let tag_y_s = "intersection/Y_S"
let tag_y_r_enc = "intersection/Y_R_enc"

let sender cfg ~rng ~values ep =
  Obs.Span.with_ "intersection/sender" @@ fun () ->
  let ops = Protocol.new_ops () in
  let v_s = Protocol.dedup values in
  let attrs = [ ("n", string_of_int (List.length v_s)) ] in
  let e_s = Commutative.gen_key cfg.Protocol.group ~rng in
  (* Step 1-2: hash and encrypt own set. *)
  let hashed =
    Obs.Span.with_ ~attrs "hash" (fun () ->
        Protocol.hash_values cfg ops v_s |> List.map snd)
  in
  let y_s =
    Obs.Span.with_ ~attrs "encrypt-own" (fun () ->
        Protocol.encrypt_batch cfg ops e_s hashed |> List.map (Protocol.encode cfg))
    |> fun encoded -> Obs.Span.with_ "reorder" (fun () -> Protocol.sort_encoded encoded)
  in
  (* Step 3: receive Y_R. *)
  let y_r = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_r)) in
  (* Step 4(a): ship Y_S (fully computed — the sort is a shuffle point —
     so this streams for I/O chunking only). *)
  Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_s) y_s;
  (* Step 4(b): encrypt each y in Y_R, preserving R's order (the §6.1
     optimization: no need to echo y itself). Streamed: chunk k+1 is
     encrypted while chunk k is on the wire. *)
  Obs.Span.with_ "encrypt-peer"
    ~attrs:[ ("n", string_of_int (List.length y_r)) ]
    (fun () -> Protocol.send_encrypted_stream cfg ops e_s ep ~tag:(Protocol.scoped cfg tag_y_r_enc) y_r);
  { v_r_count = List.length y_r; ops }

let receiver cfg ~rng ~values ep =
  Obs.Span.with_ "intersection/receiver" @@ fun () ->
  let ops = Protocol.new_ops () in
  let v_r = Protocol.dedup values in
  let attrs = [ ("n", string_of_int (List.length v_r)) ] in
  let e_r = Commutative.gen_key cfg.Protocol.group ~rng in
  (* Step 1-2: hash and encrypt own set, remembering which encoding
     belongs to which value. *)
  let hashed = Obs.Span.with_ ~attrs "hash" (fun () -> Protocol.hash_values cfg ops v_r) in
  let encoded =
    Obs.Span.with_ ~attrs "encrypt-own" (fun () ->
        Protocol.encrypt_batch cfg ops e_r (List.map snd hashed)
        |> List.map2 (fun (v, _) c -> (Protocol.encode cfg c, v)) hashed)
    |> fun pairs ->
    Obs.Span.with_ "reorder" (fun () ->
        List.sort (fun (a, _) (b, _) -> String.compare a b) pairs)
  in
  (* Step 3: send Y_R reordered lexicographically. *)
  Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_r) (List.map fst encoded);
  (* Step 4(a): receive Y_S. *)
  let y_s = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_s)) in
  (* Step 5: Z_S = f_eR(Y_S). *)
  let z_s =
    Obs.Span.with_ "encrypt-peer"
      ~attrs:[ ("n", string_of_int (List.length y_s)) ]
      (fun () ->
        List.fold_left
          (fun acc z -> Sset.add z acc)
          Sset.empty
          (Protocol.encrypt_encoded_batch cfg ops e_r y_s))
  in
  (* Step 4(b) arrival: f_eS(f_eR(h(v))) in the order of our sorted Y_R,
     so position i corresponds to the i-th entry of [encoded]. *)
  let y_r_enc = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_r_enc)) in
  if List.length y_r_enc <> List.length encoded then
    failwith "protocol error: Y_R_enc count mismatch"
  else begin
    (* Step 6: v in the intersection iff f_eS(f_eR(h(v))) in Z_S. *)
    let intersection =
      Obs.Span.with_ "match" (fun () ->
          List.fold_left2
            (fun acc z (_, v) -> if Sset.mem z z_s then v :: acc else acc)
            [] y_r_enc encoded
          |> List.sort String.compare)
    in
    { intersection; v_s_count = List.length y_s; ops }
  end

let run cfg ?(seed = "intersection-seed") ~sender_values ~receiver_values () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  let o =
    Wire.Runner.run
      ~sender:(fun ep -> sender cfg ~rng:s_rng ~values:sender_values ep)
      ~receiver:(fun ep -> receiver cfg ~rng:r_rng ~values:receiver_values ep)
  in
  Protocol.record_run ~op:"intersection" ~v_s:o.Wire.Runner.receiver_result.v_s_count
    ~v_r:o.Wire.Runner.sender_result.v_r_count
    ~ops:
      (Protocol.total o.Wire.Runner.sender_result.ops o.Wire.Runner.receiver_result.ops)
    ~wire_bytes:o.Wire.Runner.total_bytes;
  o
