module Message = Wire.Message
module Channel = Wire.Channel
module Commutative = Crypto.Commutative

type sender_report = { v_r_count : int; ops : Protocol.ops }
type receiver_report = { size : int; v_s_count : int; ops : Protocol.ops }

let tag_y_r = "intersection_size/Y_R"
let tag_y_s = "intersection_size/Y_S"
let tag_z_r = "intersection_size/Z_R"

let hash_encrypt_sort label cfg ops key values =
  let attrs = [ ("n", string_of_int (List.length values)) ] in
  Obs.Span.with_ label @@ fun () ->
  Obs.Span.with_ ~attrs "hash" (fun () ->
      Protocol.hash_values cfg ops values |> List.map snd)
  |> (fun hs ->
       Obs.Span.with_ ~attrs "encrypt-own" (fun () ->
           Protocol.encrypt_batch cfg ops key hs |> List.map (Protocol.encode cfg)))
  |> fun encoded -> Obs.Span.with_ "reorder" (fun () -> Protocol.sort_encoded encoded)

let sender cfg ~rng ~values ep =
  Obs.Span.with_ "intersection_size/sender" @@ fun () ->
  let ops = Protocol.new_ops () in
  let v_s = Protocol.dedup values in
  let e_s = Commutative.gen_key cfg.Protocol.group ~rng in
  let y_s = hash_encrypt_sort "own-set" cfg ops e_s v_s in
  let y_r = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_r)) in
  Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_s) y_s;
  (* Step 4(b): crucially re-sorted, destroying the pairing with Y_R. *)
  let z_r =
    Obs.Span.with_ "encrypt-peer"
      ~attrs:[ ("n", string_of_int (List.length y_r)) ]
      (fun () -> Protocol.encrypt_encoded_batch cfg ops e_s y_r)
    |> fun es -> Obs.Span.with_ "reorder" (fun () -> Protocol.sort_encoded es)
  in
  Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_z_r) z_r;
  { v_r_count = List.length y_r; ops }

let receiver cfg ~rng ~values ep =
  Obs.Span.with_ "intersection_size/receiver" @@ fun () ->
  let ops = Protocol.new_ops () in
  let v_r = Protocol.dedup values in
  let e_r = Commutative.gen_key cfg.Protocol.group ~rng in
  let y_r = hash_encrypt_sort "own-set" cfg ops e_r v_r in
  Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_r) y_r;
  let y_s = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_s)) in
  let z_s =
    Obs.Span.with_ "encrypt-peer"
      ~attrs:[ ("n", string_of_int (List.length y_s)) ]
      (fun () ->
        List.fold_left
          (fun acc z -> Sset.add z acc)
          Sset.empty
          (Protocol.encrypt_encoded_batch cfg ops e_r y_s))
  in
  let z_r = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_z_r)) in
  let size =
    Obs.Span.with_ "match" (fun () ->
        List.length (List.filter (fun z -> Sset.mem z z_s) z_r))
  in
  { size; v_s_count = List.length y_s; ops }

let run cfg ?(seed = "intersection-size-seed") ~sender_values ~receiver_values () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  let o =
    Wire.Runner.run
      ~sender:(fun ep -> sender cfg ~rng:s_rng ~values:sender_values ep)
      ~receiver:(fun ep -> receiver cfg ~rng:r_rng ~values:receiver_values ep)
  in
  Protocol.record_run ~op:"intersection_size"
    ~v_s:o.Wire.Runner.receiver_result.v_s_count
    ~v_r:o.Wire.Runner.sender_result.v_r_count
    ~ops:
      (Protocol.total o.Wire.Runner.sender_result.ops o.Wire.Runner.receiver_result.ops)
    ~wire_bytes:o.Wire.Runner.total_bytes;
  o

(* ------------------------------------------------------------------ *)
(* Figure 2 variant: Z_R and Z_S go to the researcher T.               *)
(* ------------------------------------------------------------------ *)

type third_party_report = { size : int; total_bytes : int; ops : Protocol.ops }

let tag_z_r_to_t = "intersection_size/Z_R->T"
let tag_z_s_to_t = "intersection_size/Z_S->T"

let run_to_third_party cfg ?(seed = "intersection-size-3p") ~sender_values ~receiver_values
    () =
  let drbg = Crypto.Drbg.create ~seed in
  let s_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"sender") in
  let r_rng = Crypto.Drbg.to_rng (Crypto.Drbg.split drbg ~label:"receiver") in
  let outcome =
    Wire.Runner.run
      ~sender:(fun ep ->
        Obs.Span.with_ "intersection_size_3p/sender" @@ fun () ->
        let ops = Protocol.new_ops () in
        let e_s = Commutative.gen_key cfg.Protocol.group ~rng:s_rng in
        let y_s = hash_encrypt_sort "own-set" cfg ops e_s (Protocol.dedup sender_values) in
        let y_r = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_r)) in
        Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_s) y_s;
        let z_r =
          Obs.Span.with_ "encrypt-peer"
            ~attrs:[ ("n", string_of_int (List.length y_r)) ]
            (fun () -> Protocol.encrypt_encoded_batch cfg ops e_s y_r)
          |> fun es -> Obs.Span.with_ "reorder" (fun () -> Protocol.sort_encoded es)
        in
        (z_r, ops))
      ~receiver:(fun ep ->
        Obs.Span.with_ "intersection_size_3p/receiver" @@ fun () ->
        let ops = Protocol.new_ops () in
        let e_r = Commutative.gen_key cfg.Protocol.group ~rng:r_rng in
        let y_r = hash_encrypt_sort "own-set" cfg ops e_r (Protocol.dedup receiver_values) in
        Protocol.send_elements_stream cfg ep ~tag:(Protocol.scoped cfg tag_y_r) y_r;
        let y_s = Protocol.elements_of (Protocol.recv_tagged ep (Protocol.scoped cfg tag_y_s)) in
        let z_s =
          Obs.Span.with_ "encrypt-peer"
            ~attrs:[ ("n", string_of_int (List.length y_s)) ]
            (fun () -> Protocol.encrypt_encoded_batch cfg ops e_r y_s)
          |> fun es -> Obs.Span.with_ "reorder" (fun () -> Protocol.sort_encoded es)
        in
        (z_s, ops))
  in
  let z_r, s_ops = outcome.Wire.Runner.sender_result in
  let z_s, r_ops = outcome.Wire.Runner.receiver_result in
  (* Ship both Z sets to T and account the bytes those messages occupy. *)
  let to_t_r = Message.make ~tag:(Protocol.scoped cfg tag_z_r_to_t) (Message.Elements z_r) in
  let to_t_s = Message.make ~tag:(Protocol.scoped cfg tag_z_s_to_t) (Message.Elements z_s) in
  let z_s_set = List.fold_left (fun acc z -> Sset.add z acc) Sset.empty z_s in
  let total_bytes =
    outcome.Wire.Runner.total_bytes + Message.size to_t_r + Message.size to_t_s
  in
  let ops = Protocol.total s_ops r_ops in
  let size =
    Obs.Span.with_ "match" (fun () ->
        List.length (List.filter (fun z -> Sset.mem z z_s_set) z_r))
  in
  (* Distinct op name: the third-party variant ships Z_R and Z_S to T on
     top of the two-party traffic, so its comm bits are (2|V_S| +
     2|V_R|) k rather than the §6.1 two-party figure. *)
  Protocol.record_run ~op:"intersection_size_3p"
    ~v_s:(List.length z_s) ~v_r:(List.length z_r) ~ops ~wire_bytes:total_bytes;
  { size; total_bytes; ops }
