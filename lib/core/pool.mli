(** The domain pool, re-exported from [psi.parallel] so protocol code
    and callers can say [Psi.Pool]. [Psi.Pool.t] {e is}
    [Parallel.Pool.t] — the same pools flow through the crypto batch
    APIs. See {!Parallel.Pool} for the full documentation. *)

include module type of struct
  include Parallel.Pool
end
