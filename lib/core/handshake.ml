module Message = Wire.Message
module Channel = Wire.Channel

let tag = "handshake/config"

let fingerprint cfg =
  Crypto.Sha256.digest_concat
    [
      "psi-config-v1";
      Bignum.Nat.to_bytes_be (Crypto.Group.p cfg.Protocol.group);
      cfg.Protocol.domain;
      Crypto.Perfect_cipher.scheme_to_string cfg.Protocol.cipher;
    ]

let check mine theirs =
  if not (String.equal mine theirs) then
    failwith
      "handshake failed: parties disagree on group/domain/cipher configuration"

let recv_fp ep =
  match Channel.recv ep with
  | { Message.tag = t; payload = Message.Elements [ fp ] } when t = tag -> fp
  | _ -> failwith "handshake failed: unexpected message"

(* Both sides derive the same 128-bit trace id from the fingerprints
   they exchange anyway — zero extra wire bytes, transcripts stay
   byte-identical whether tracing is on or off. (With the handshake's
   config fingerprints as the only shared material, the id names the
   configuration pairing, not an individual run; psi_trace separates
   runs by file and parties by label.) *)
let trace_id ~initiator_fp ~responder_fp =
  let digest =
    Crypto.Sha256.digest_concat [ "psi:trace-id:v1"; initiator_fp; responder_fp ]
  in
  String.concat ""
    (List.init 16 (fun i -> Printf.sprintf "%02x" (Char.code digest.[i])))

let set_context ~party ~initiator_fp ~responder_fp =
  Obs.Context.set_trace_id (trace_id ~initiator_fp ~responder_fp);
  Obs.Context.set_party party

let initiate cfg ep =
  Obs.Span.with_ "handshake" @@ fun () ->
  let mine = fingerprint cfg in
  Channel.send ep (Message.make ~tag (Message.Elements [ mine ]));
  let theirs = recv_fp ep in
  set_context ~party:"R" ~initiator_fp:mine ~responder_fp:theirs;
  check mine theirs

let respond cfg ep =
  Obs.Span.with_ "handshake" @@ fun () ->
  let mine = fingerprint cfg in
  let theirs = recv_fp ep in
  Channel.send ep (Message.make ~tag (Message.Elements [ mine ]));
  set_context ~party:"S" ~initiator_fp:theirs ~responder_fp:mine;
  check mine theirs
