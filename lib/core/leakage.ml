let duplicate_classes values =
  let m = Sset.Multi.of_list values in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let d = Sset.Multi.count m v in
      Hashtbl.replace tbl d (v :: Option.value ~default:[] (Hashtbl.find_opt tbl d)))
    (Sset.Multi.distinct m);
  Hashtbl.fold (fun d vs acc -> (d, List.sort String.compare vs) :: acc) tbl []
  |> List.sort (fun (d1, _) (d2, _) -> Int.compare d1 d2)

let class_intersections ~r_values ~s_values =
  let mr = Sset.Multi.of_list r_values in
  let ms = Sset.Multi.of_list s_values in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d' = Sset.Multi.count ms v in
      if d' > 0 then begin
        let d = Sset.Multi.count mr v in
        Hashtbl.replace tbl (d, d') (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (d, d')))
      end)
    (Sset.Multi.distinct mr);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun ((a, b), _) ((c, d), _) ->
         match Int.compare a c with 0 -> Int.compare b d | o -> o)

let identified_values ~r_values ~s_values =
  let mr = Sset.Multi.of_list r_values in
  let ms = Sset.Multi.of_list s_values in
  (* Count shared values per class pair, then count values of R per class
     pair that could explain a cell; R identifies a value v when the cell
     (d, d') containing v has its intersection count equal to the number
     of R values in class d... conservatively: cell count = 1 and R has
     exactly one candidate is the clear-cut case; more generally R learns
     v in V_S when every R value of class d that could land in (d, d')
     must be shared, i.e. cell count equals the number of R values in
     class d. We implement that general rule. *)
  let shared_per_cell = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d' = Sset.Multi.count ms v in
      if d' > 0 then begin
        let d = Sset.Multi.count mr v in
        Hashtbl.replace shared_per_cell (d, d')
          (1 + Option.value ~default:0 (Hashtbl.find_opt shared_per_cell (d, d')))
      end)
    (Sset.Multi.distinct mr);
  let r_class_size = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d = Sset.Multi.count mr v in
      Hashtbl.replace r_class_size d (1 + Option.value ~default:0 (Hashtbl.find_opt r_class_size d)))
    (Sset.Multi.distinct mr);
  (* Total shared values in R's class d across all d' cells. *)
  let shared_per_class = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (d, _) n ->
      Hashtbl.replace shared_per_class d
        (n + Option.value ~default:0 (Hashtbl.find_opt shared_per_class d)))
    shared_per_cell;
  List.filter
    (fun v ->
      let d' = Sset.Multi.count ms v in
      d' > 0
      &&
      let d = Sset.Multi.count mr v in
      (* Every R value of class d is shared -> membership of v is certain. *)
      Option.value ~default:0 (Hashtbl.find_opt shared_per_class d)
      = Option.value ~default:0 (Hashtbl.find_opt r_class_size d))
    (Sset.Multi.distinct mr)
  |> List.sort String.compare

let join_size ~r_values ~s_values =
  Sset.Multi.join_size (Sset.Multi.of_list r_values) (Sset.Multi.of_list s_values)
